#!/bin/sh
# allocs_gate.sh — per-tick heap-allocation budgets for both engines.
#
# BenchmarkPerTickAllocs steps each engine at the flagship operating point
# (8x8 grid, 20 Hz, 128 syn/neuron, settled past the delay-ring transient)
# and -benchmem reports steady-state allocs/op, where one op is one tick.
# This gate pins those numbers from both sides:
#
#   over budget  — FAIL: a buffer stopped being reused, or a closure or
#                  slice started escaping. Fix the regression.
#   more than RATCHET_SLACK below budget — FAIL: the engine got cheaper
#                  and the budget is now stale. Lower it so the headroom
#                  cannot silently erode back.
#
# Budgets:
#   chip    — 0, exactly: the sequential kernel must not touch the heap
#             per tick. tnproof statically proves the hot set is
#             escape-free; this pins the dynamic side to match.
#   compass — 20 (measures 18): the parallel engine spawns one goroutine
#             + one emit closure per worker per tick (4 workers here), an
#             inherent cost of its fork-join tick. The slack absorbs
#             scheduler-dependent variance only.
#
# The static complements are tnlint's hotalloc analyzer and tnproof's
# escape-diagnostic goldens; this script catches what escape analysis
# decides at build time, which no syntactic check can.
set -eu
cd "$(dirname "$0")/.."

CHIP_BUDGET=${CHIP_BUDGET:-0}
COMPASS_BUDGET=${COMPASS_BUDGET:-20}
RATCHET_SLACK=${RATCHET_SLACK:-2}

out=$(go test -run '^$' -bench '^BenchmarkPerTickAllocs$' -benchmem -benchtime 2000x .)
echo "$out"

check() {
	name=$1
	budget=$2
	allocs=$(echo "$out" | awk -v n="^BenchmarkPerTickAllocs/$name" '$1 ~ n { print $(NF-1) }')
	if [ -z "$allocs" ]; then
		echo "allocs_gate: no benchmark result for $name" >&2
		exit 1
	fi
	if [ "$allocs" -gt "$budget" ]; then
		echo "allocs_gate: FAIL $name allocates $allocs/tick (budget $budget)" >&2
		exit 1
	fi
	if [ $((budget - allocs)) -gt "$RATCHET_SLACK" ]; then
		echo "allocs_gate: FAIL $name allocates only $allocs/tick but the budget is $budget;" >&2
		echo "allocs_gate: the budget is stale — ratchet it down in scripts/allocs_gate.sh" >&2
		exit 1
	fi
	echo "allocs_gate: $name $allocs allocs/tick (budget $budget)"
}

check chip "$CHIP_BUDGET"
check compass "$COMPASS_BUDGET"
