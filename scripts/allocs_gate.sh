#!/bin/sh
# allocs_gate.sh — per-tick heap-allocation budgets for both engines.
#
# BenchmarkPerTickAllocs steps each engine at the flagship operating point
# (8x8 grid, 20 Hz, 128 syn/neuron, settled past the delay-ring transient)
# and -benchmem reports steady-state allocs/op, where one op is one tick.
# This gate pins those numbers:
#
#   chip    — 0 budgeted as 2: the sequential kernel must not touch the
#             heap per tick; the slack absorbs future toolchain noise only.
#   compass — 24: the parallel engine spawns one goroutine + one emit
#             closure per worker per tick (4 workers here), an inherent
#             cost of its fork-join tick. Anything above the budget means
#             a buffer stopped being reused.
#
# The static complement is tnlint's hotalloc analyzer; this script catches
# what escape analysis decides at build time, which no syntactic check can.
set -eu
cd "$(dirname "$0")/.."

CHIP_BUDGET=${CHIP_BUDGET:-2}
COMPASS_BUDGET=${COMPASS_BUDGET:-24}

out=$(go test -run '^$' -bench '^BenchmarkPerTickAllocs$' -benchmem -benchtime 2000x .)
echo "$out"

check() {
	name=$1
	budget=$2
	allocs=$(echo "$out" | awk -v n="^BenchmarkPerTickAllocs/$name" '$1 ~ n { print $(NF-1) }')
	if [ -z "$allocs" ]; then
		echo "allocs_gate: no benchmark result for $name" >&2
		exit 1
	fi
	if [ "$allocs" -gt "$budget" ]; then
		echo "allocs_gate: FAIL $name allocates $allocs/tick (budget $budget)" >&2
		exit 1
	fi
	echo "allocs_gate: $name $allocs allocs/tick (budget $budget)"
}

check chip "$CHIP_BUDGET"
check compass "$COMPASS_BUDGET"
