#!/bin/sh
# race_stress.sh — the concurrency packages under the race detector at
# hostile schedules. `make race` (inside check.sh) runs each package once
# at the default GOMAXPROCS; this harness reruns the four goroutine-heavy
# packages (runtime, serve, compass, sim) -count times each at
# GOMAXPROCS=1, 2, and 8, because the bugs the static concurrency gate
# reasons about (lock-order inversions, send-on-closed races, WaitGroup
# Add/Wait races) surface at different schedules: GOMAXPROCS=1 serializes
# into starvation shapes, 8 maximizes genuine preemption on CI runners.
# -count=N (default 3) also defeats single-run scheduling luck and catches
# cross-iteration state leaks.
#
# The session runtime has two servicer shapes — the legacy goroutine-per-
# session loop and the pooled timing-wheel Scheduler — promising identical
# observable semantics. Each schedule therefore runs internal/runtime a
# second time with TN_RUNTIME_SCHED=1, which reroutes every newSession-
# based test through a shared Scheduler (see runtime_test.go).
#
# Environment:
#   RACE_STRESS_COUNT  test -count value per (package, GOMAXPROCS) cell
#                      (default 3)
#   RACE_STRESS_LOG    when set, a directory to write one log file per
#                      GOMAXPROCS value (CI uploads these as artifacts)
set -eu
cd "$(dirname "$0")/.."

count=${RACE_STRESS_COUNT:-3}
log_dir=${RACE_STRESS_LOG:-}
[ -n "$log_dir" ] && mkdir -p "$log_dir"

pkgs="./internal/runtime/... ./internal/serve/... ./internal/compass/... ./internal/sim/..."

for procs in 1 2 8; do
	echo "==> go test -race -count=$count (GOMAXPROCS=$procs) $pkgs"
	if [ -n "$log_dir" ]; then
		# Log to a file (not a tee pipeline: POSIX sh would take tee's exit
		# status) and replay it on failure so the breakage is in the CI log
		# as well as the artifact.
		log="$log_dir/race-stress-p$procs.log"
		# shellcheck disable=SC2086 # pkgs is a deliberate word list
		if ! GOMAXPROCS=$procs go test -race -count="$count" $pkgs >"$log" 2>&1; then
			cat "$log"
			exit 1
		fi
		if ! TN_RUNTIME_SCHED=1 GOMAXPROCS=$procs go test -race -count="$count" ./internal/runtime/... >>"$log" 2>&1; then
			cat "$log"
			exit 1
		fi
		grep -c '^ok' "$log" | sed 's/$/ package results ok/'
	else
		# shellcheck disable=SC2086
		GOMAXPROCS=$procs go test -race -count="$count" $pkgs
		TN_RUNTIME_SCHED=1 GOMAXPROCS=$procs go test -race -count="$count" ./internal/runtime/...
	fi
done

echo "race-stress: all schedules clean"
