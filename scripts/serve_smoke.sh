#!/bin/sh
# serve_smoke.sh — end-to-end proof that serving a model does not change
# what it computes. Boots tnserved, drives one session through an async
# paced run, a mid-flight pause/resume, and a checkpoint/overshoot/restore,
# and requires the session's drained output stream to be byte-identical to
# batch tnsim runs of the same model on BOTH engines. Run via
# `make serve-smoke` or scripts/check.sh.
set -eu
cd "$(dirname "$0")/.."

work="$(mktemp -d)"
server_pid=""
cleanup() {
	[ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

echo "==> build tnsim + tnserved"
go build -o "$work/tnsim" ./cmd/tnsim
go build -o "$work/tnserved" ./cmd/tnserved

# One model everywhere: the tapped 4x4 characterization network, seed 46.
gen_flags="-grid 4 -rate 90 -syn 64 -seed 46 -outputs 16 -warmup 0 -ticks 120"

echo "==> batch reference runs (chip and compass)"
"$work/tnsim" -engine chip $gen_flags -spikes-out "$work/chip.aer" >/dev/null
"$work/tnsim" -engine compass $gen_flags -spikes-out "$work/compass.aer" >/dev/null
cmp "$work/chip.aer" "$work/compass.aer"
[ -s "$work/chip.aer" ] || { echo "FAIL: reference stream is empty"; exit 1; }

echo "==> boot tnserved on an ephemeral port"
"$work/tnserved" -addr 127.0.0.1:0 >"$work/server.log" 2>&1 &
server_pid=$!
base=""
i=0
while [ $i -lt 100 ]; do
	base="$(sed -n 's#^tnserved listening on \(http://[^ ]*\)$#\1#p' "$work/server.log")"
	[ -n "$base" ] && break
	i=$((i + 1))
	sleep 0.1
done
[ -n "$base" ] || { echo "FAIL: server never announced its address"; cat "$work/server.log"; exit 1; }

post() { curl -sSf -X POST -H 'Content-Type: application/json' -d "$2" "$base$1"; }
get() { curl -sSf "$base$1"; }
# json_int RESPONSE FIELD — extract a top-level integer field.
json_int() { printf '%s' "$1" | sed -n "s/.*\"$2\":\([0-9][0-9]*\).*/\1/p"; }

echo "==> create a compass session of the same model, paced at 50 Hz"
create='{"engine":"compass","tick_rate_hz":50,"netgen":{"grid":4,"rate_hz":90,"syn_per_neuron":64,"seed":46,"output_every":16}}'
resp="$(post /v1/sessions "$create")"
sid="$(printf '%s' "$resp" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$sid" ] || { echo "FAIL: create: $resp"; exit 1; }
s="/v1/sessions/$sid"

echo "==> async run, pause mid-flight, resume free-running to tick 90"
post "$s/run" '{"until":2000}' >/dev/null
sleep 0.3
resp="$(post "$s/pause" '{}')"
t1="$(json_int "$resp" tick)"
[ -n "$t1" ] && [ "$t1" -ge 1 ] && [ "$t1" -lt 90 ] ||
	{ echo "FAIL: pause landed at tick '$t1', not mid-run in (0,90): $resp"; exit 1; }
echo "    paused at tick $t1"
post "$s/rate" '{"hz":0}' >/dev/null
post "$s/run" '{"until":90,"wait":true}' >/dev/null
get "$s/outputs?format=aer" >"$work/part1.aer"

echo "==> checkpoint at tick 90, overshoot 20 ticks, restore"
get "$s/checkpoint" >"$work/ckpt.bin"
[ -s "$work/ckpt.bin" ] || { echo "FAIL: empty checkpoint"; exit 1; }
post "$s/run" '{"ticks":20,"wait":true}' >/dev/null
resp="$(curl -sSf -X POST --data-binary @"$work/ckpt.bin" "$base$s/restore")"
t2="$(json_int "$resp" tick)"
[ "$t2" = "90" ] || { echo "FAIL: restore landed at tick '$t2', want 90: $resp"; exit 1; }

echo "==> finish to tick 120 and compare streams"
post "$s/run" '{"until":120,"wait":true}' >/dev/null
get "$s/outputs?format=aer" >"$work/part2.aer"
cat "$work/part1.aer" "$work/part2.aer" >"$work/session.aer"
cmp "$work/chip.aer" "$work/session.aer" ||
	{ echo "FAIL: served session stream diverged from the batch run"; exit 1; }

echo "==> metrics and teardown"
get /metrics | grep -q '^truenorth_sessions 1$' || { echo "FAIL: metrics"; exit 1; }
curl -sSf -X DELETE "$base$s" >/dev/null
get /healthz | grep -q '"sessions":0' || { echo "FAIL: healthz after delete"; exit 1; }

spikes="$(wc -l <"$work/session.aer")"
echo "==> serve smoke OK: $spikes spikes byte-identical across chip batch, compass batch, and the paused/restored session"
