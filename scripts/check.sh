#!/bin/sh
# check.sh — the repo's full verification gate, run by CI and `make check`:
#
#   1. go build      — everything compiles
#   2. go vet        — stdlib static analysis
#   3. tnlint        — the determinism invariants (see internal/lint):
#                      no math/rand or time.Now in kernel packages, no
#                      order-dependent map iteration, no float ==, no
#                      goroutines outside the Compass worker pattern
#   4. tnverify      — whole-model static verification (see
#                      internal/modelcheck) over a sample of the generated
#                      characterization networks: routability,
#                      reachability, potential intervals, NoC load bounds,
#                      stochastic-mode consistency
#   5. go test       — the full suite, including chip<->Compass equivalence
#                      and the cross-engine bitwise-reproducibility assay
#   6. go test -race — the parallel Compass engine and the cross-engine
#                      determinism tests under the race detector
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> tnlint ./..."
go run ./cmd/tnlint ./...

echo "==> tnverify (characterization sweep sample)"
go run ./cmd/tnverify -sweep-grid 4 -sweep-every 8 -assume-inputs=false -v

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./internal/compass/... ./internal/sim/..."
go test -race ./internal/compass/... ./internal/sim/...

echo "==> all checks passed"
