#!/bin/sh
# check.sh — the repo's full verification gate, run by CI and `make check`:
#
#   1. go build      — everything compiles
#   2. go vet        — stdlib static analysis
#   3. tnlint        — the in-repo analyzer suite (see internal/lint):
#                      determinism invariants (detrand/maporder/floatcmp/
#                      ticksafe) plus hot-path allocation, lock-safety,
#                      goroutine-lifecycle, and channel-ownership checks,
#                      the whole-program concurrency gate (lockorder/
#                      chanflow/wgsafe/atomicmix) over the module call
#                      graph, and the static API-contract gate
#                      (apienvelope/wiretag/boundconv + the apisurface
#                      golden, DESIGN.md §14) over the serving surface;
#                      run with -json so CI logs are machine-readable. Set
#                      CHECK_REPORT_DIR to also keep the JSON — and the
#                      rendered lock-order hierarchy and extracted v1 API
#                      surface — as files. (go vet's copylocks overlaps
#                      locksafe's by-value checks; both run, vet as
#                      backstop.)
#   4. tnproof       — compiler-proof perf gate (see internal/perfproof):
#                      replays `go build -m -m -d=ssa/check_bce` over the
#                      kernel packages and diffs escape/bounds-check
#                      diagnostics in //perf:hot functions against the
#                      golden budgets in testdata/perfproof/
#   5. tnverify      — whole-model static verification (see
#                      internal/modelcheck) over a sample of the generated
#                      characterization networks: routability,
#                      reachability, potential intervals, NoC load bounds,
#                      stochastic-mode consistency
#   6. go test       — the full suite with -shuffle=on (test-order
#                      coupling is a bug), including chip<->Compass
#                      equivalence and the bitwise-reproducibility assay
#   7. go test -race — the parallel Compass engine, the cross-engine
#                      determinism tests, and the session-runtime/serving
#                      layers under the race detector
#   8. allocs gate   — per-tick heap-allocation budgets for both engines,
#                      ratcheted from both sides (the dynamic complement
#                      to tnlint's hotalloc and tnproof's goldens)
#   9. serve smoke   — boot tnserved, pause/resume and checkpoint/restore
#                      a live session, and require its output stream to be
#                      byte-identical to batch tnsim runs on both engines
#  10. bench smoke   — run tnbench's small configuration end to end: every
#                      operating point measures three arms (active-neuron
#                      chip, forced full scan, compass) whose event counts
#                      must agree exactly, and the JSON report must land
#  11. bench-serve smoke — run the serving sweep's small configuration:
#                      both session-servicer arms (pooled scheduler and
#                      goroutine-per-session) hold paced sessions at rate
#                      with the command-latency probe running, and the
#                      BENCH_SERVE JSON report must land
set -eu
cd "$(dirname "$0")/.."

# When CHECK_REPORT_DIR is set (CI does this), machine-readable reports
# from tnlint and tnproof are written there for artifact upload.
report_dir=${CHECK_REPORT_DIR:-}
if [ -n "$report_dir" ]; then
	mkdir -p "$report_dir"
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> tnlint -json ./..."
lockorder_flag=""
apisurface_flag=""
if [ -n "$report_dir" ]; then
	lockorder_flag="-lockorder-out=$report_dir/lockorder.txt"
	apisurface_flag="-apisurface-out=$report_dir/apisurface.txt"
fi
if ! lint_out=$(go run ./cmd/tnlint -json $lockorder_flag $apisurface_flag ./...); then
	echo "$lint_out"
	[ -n "$report_dir" ] && printf '%s\n' "$lint_out" >"$report_dir/tnlint.json"
	echo "tnlint: unsuppressed findings (full suite; see internal/lint)" >&2
	exit 1
fi
[ -n "$report_dir" ] && printf '%s\n' "$lint_out" >"$report_dir/tnlint.json"
# The golden-diff belt-and-suspenders: the checked-in hierarchy must match
# what the linter just rendered (the golden test also enforces this; here
# the mismatch shows up in the artifact diff too).
if [ -n "$report_dir" ] && ! diff -u internal/lint/testdata/lockorder/hierarchy.golden "$report_dir/lockorder.txt" >"$report_dir/lockorder.diff" 2>&1; then
	echo "check.sh: lock-order hierarchy drifted from testdata/lockorder/hierarchy.golden (see lockorder.diff artifact)" >&2
	exit 1
fi
# Same belt-and-suspenders for the API surface: the checked-in v1 golden
# must match the spec the linter just extracted (TestAPISurfaceGolden
# enforces this with file:line diagnostics; the artifact diff makes the
# drift reviewable from CI too).
if [ -n "$report_dir" ] && ! diff -u internal/lint/testdata/apisurface/v1.golden "$report_dir/apisurface.txt" >"$report_dir/apisurface.diff" 2>&1; then
	echo "check.sh: v1 API surface drifted from testdata/apisurface/v1.golden (see apisurface.diff artifact; re-bless with make api-gate-update)" >&2
	exit 1
fi

echo "==> tnproof (escape/bounds-check budgets for //perf:hot functions)"
if [ -n "$report_dir" ]; then
	go run ./cmd/tnproof -json "$report_dir/tnproof.json"
else
	go run ./cmd/tnproof
fi

echo "==> tnverify (characterization sweep sample)"
go run ./cmd/tnverify -sweep-grid 4 -sweep-every 8 -assume-inputs=false -v

echo "==> go test -shuffle=on ./..."
go test -shuffle=on ./...

echo "==> go test -race ./internal/compass/... ./internal/sim/... ./internal/runtime/... ./internal/serve/..."
go test -race ./internal/compass/... ./internal/sim/... ./internal/runtime/... ./internal/serve/...

echo "==> go test -race ./internal/runtime/... ./internal/sim/... (TN_RUNTIME_SCHED=1: pooled-scheduler servicer)"
TN_RUNTIME_SCHED=1 go test -race ./internal/runtime/... ./internal/sim/...

echo "==> allocs gate (per-tick heap budgets)"
./scripts/allocs_gate.sh

echo "==> serve smoke (tnserved end-to-end)"
./scripts/serve_smoke.sh

echo "==> bench smoke (tnbench small sweep)"
bench_out=$(mktemp)
serve_bench_out=$(mktemp)
trap 'rm -f "$bench_out" "$serve_bench_out"' EXIT
go run ./cmd/tnbench -smoke -q -o "$bench_out"

echo "==> bench-serve smoke (tnbench serving sweep, both servicer arms)"
go run ./cmd/tnbench -serve -smoke -q -o "$serve_bench_out"

echo "==> all checks passed"
