#!/bin/sh
# check.sh — the repo's full verification gate, run by CI and `make check`:
#
#   1. go build      — everything compiles
#   2. go vet        — stdlib static analysis
#   3. tnlint        — the in-repo analyzer suite (see internal/lint):
#                      determinism invariants (detrand/maporder/floatcmp/
#                      ticksafe) plus hot-path allocation, lock-safety,
#                      goroutine-lifecycle, and channel-ownership checks;
#                      run with -json so CI logs are machine-readable.
#                      (go vet's copylocks overlaps locksafe's by-value
#                      checks; both run, vet as backstop.)
#   4. tnverify      — whole-model static verification (see
#                      internal/modelcheck) over a sample of the generated
#                      characterization networks: routability,
#                      reachability, potential intervals, NoC load bounds,
#                      stochastic-mode consistency
#   5. go test       — the full suite, including chip<->Compass equivalence
#                      and the cross-engine bitwise-reproducibility assay
#   6. go test -race — the parallel Compass engine, the cross-engine
#                      determinism tests, and the session-runtime/serving
#                      layers under the race detector
#   7. allocs gate   — per-tick heap-allocation budgets for both engines
#                      (the dynamic complement to tnlint's hotalloc)
#   8. serve smoke   — boot tnserved, pause/resume and checkpoint/restore
#                      a live session, and require its output stream to be
#                      byte-identical to batch tnsim runs on both engines
#   9. bench smoke   — run tnbench's small configuration end to end: every
#                      operating point measures three arms (active-neuron
#                      chip, forced full scan, compass) whose event counts
#                      must agree exactly, and the JSON report must land
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> tnlint -json ./..."
if ! lint_out=$(go run ./cmd/tnlint -json ./...); then
	echo "$lint_out"
	echo "tnlint: unsuppressed findings (full suite; see internal/lint)" >&2
	exit 1
fi

echo "==> tnverify (characterization sweep sample)"
go run ./cmd/tnverify -sweep-grid 4 -sweep-every 8 -assume-inputs=false -v

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./internal/compass/... ./internal/sim/... ./internal/runtime/... ./internal/serve/..."
go test -race ./internal/compass/... ./internal/sim/... ./internal/runtime/... ./internal/serve/...

echo "==> allocs gate (per-tick heap budgets)"
./scripts/allocs_gate.sh

echo "==> serve smoke (tnserved end-to-end)"
./scripts/serve_smoke.sh

echo "==> bench smoke (tnbench small sweep)"
bench_out=$(mktemp)
trap 'rm -f "$bench_out"' EXIT
go run ./cmd/tnbench -smoke -q -o "$bench_out"

echo "==> all checks passed"
