// Spikinglogic: the Turing-completeness demonstration — build Boolean
// gates and a 3-bit ripple-carry adder out of neurons, and compute sums
// spike-for-spike on the neurosynaptic substrate.
//
//	go run ./examples/spikinglogic
package main

import (
	"fmt"
	"log"

	"truenorth/internal/chip"
	"truenorth/internal/corelet"
	"truenorth/internal/router"
)

func main() {
	fmt.Println("3-bit ripple-carry adder on spiking neurons (a 1 = a spike at the aligned tick)")
	fmt.Println()
	for _, tc := range []struct{ x, y int }{{2, 3}, {5, 6}, {7, 7}, {1, 0}} {
		sum := addOnChip(tc.x, tc.y)
		status := "ok"
		if sum != tc.x+tc.y {
			status = "WRONG"
		}
		fmt.Printf("  %d + %d = %d   [%s]\n", tc.x, tc.y, sum, status)
		if sum != tc.x+tc.y {
			log.Fatal("spiking adder disagreed with arithmetic")
		}
	}
	fmt.Println("\nevery sum was computed by AND/OR/XOR gates made of leak-integrate-fire neurons,")
	fmt.Println("with axonal delays aligning the carry chain — the substrate is Turing-complete.")
}

// addOnChip builds a fresh 3-bit adder circuit, injects x and y as spike
// patterns, and reads the 4-bit sum off the output sinks.
func addOnChip(x, y int) int {
	net := corelet.NewNet()
	l := corelet.AddLogic(net)
	var xs, ys [3]corelet.Signal
	for i := 0; i < 3; i++ {
		xs[i] = l.Input(fmt.Sprintf("x%d", i))
		ys[i] = l.Input(fmt.Sprintf("y%d", i))
	}
	zero := l.Input("zero") // constant 0: an input never driven
	carry := zero
	outTick := map[int]int{}
	for i := 0; i < 3; i++ {
		xi, yi := xs[i], ys[i]
		var err error
		if carry.T() > xi.T() {
			if xi, err = l.Delay(xi, carry.T()-xi.T()); err != nil {
				log.Fatal(err)
			}
			if yi, err = l.Delay(yi, carry.T()-yi.T()); err != nil {
				log.Fatal(err)
			}
		}
		var sum corelet.Signal
		if sum, carry, err = l.FullAdder(xi, yi, carry); err != nil {
			log.Fatal(err)
		}
		outTick[i] = l.Output(sum, "sum", i)
	}
	outTick[3] = l.Output(carry, "sum", 3)

	side := 1
	for side*side < net.NumCores() {
		side++
	}
	p, err := corelet.Place(net, router.Mesh{W: side, H: side})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := chip.New(p.Mesh, p.Configs)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if x&(1<<i) != 0 {
			must(p.Inject(eng, fmt.Sprintf("x%d", i), 0, 0))
		}
		if y&(1<<i) != 0 {
			must(p.Inject(eng, fmt.Sprintf("y%d", i), 0, 0))
		}
	}
	maxTick := 0
	for _, v := range outTick {
		if v > maxTick {
			maxTick = v
		}
	}
	eng.Run(maxTick + 4)
	sum := 0
	for _, s := range eng.DrainOutputs() {
		ref, ok := p.Decode(s.ID)
		if !ok || ref.Name != "sum" {
			continue
		}
		if int(s.Tick) == outTick[ref.Index] {
			sum |= 1 << ref.Index
		}
	}
	return sum
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
