// Visionpipeline: stream synthetic video through two of the paper's
// applications — Haar feature extraction and the saliency map — and render
// their outputs as ASCII heat maps, with the energy model reporting what
// the same computation costs on TrueNorth silicon.
//
//	go run ./examples/visionpipeline
package main

import (
	"fmt"
	"log"

	"truenorth/internal/apps/haar"
	"truenorth/internal/apps/saliency"
	"truenorth/internal/chip"
	"truenorth/internal/corelet"
	"truenorth/internal/energy"
	"truenorth/internal/router"
	"truenorth/internal/vision"
)

const (
	imgW, imgH = 64, 32
	frames     = 5
)

func main() {
	scene := vision.NewScene(imgW, imgH, 4, 42)

	fmt.Println("=== Scene (frame 0) ===")
	printFrame(scene.Render())

	runSaliency(scene)
	runHaar()
}

func runSaliency(scene *vision.Scene) {
	app, err := saliency.Build(saliency.Params{ImgW: imgW, ImgH: imgH})
	if err != nil {
		log.Fatal(err)
	}
	eng, p := place(app.Net)
	tr := vision.DefaultTransducer()
	run, err := vision.RunVideo(eng, p, saliency.InputName, scene, tr, frames)
	if err != nil {
		log.Fatal(err)
	}
	counts := vision.CountByName(p, run.PerFrame[frames-1], saliency.OutputName, app.NumCells())

	fmt.Printf("\n=== Saliency map (frame %d), %d cores, %d neurons ===\n",
		frames-1, app.Net.NumCores(), app.Net.NumNeurons())
	printMap(counts, app.CellsX, app.CellsY)
	reportEnergy("saliency", eng, run.Ticks)
}

func runHaar() {
	app, err := haar.Build(haar.Params{ImgW: imgW, ImgH: imgH})
	if err != nil {
		log.Fatal(err)
	}
	eng, p := place(app.Net)
	scene := vision.NewScene(imgW, imgH, 4, 42)
	tr := vision.DefaultTransducer()
	run, err := vision.RunVideo(eng, p, haar.InputName, scene, tr, frames)
	if err != nil {
		log.Fatal(err)
	}
	counts := vision.CountByName(p, run.PerFrame[frames-1], haar.OutputName, app.NumOutputs())

	// Fig. 4(b) of the paper shows the horizontal-line response map;
	// feature 0 is our horizontal-edge filter.
	m := make([]int, app.PatchesX*app.PatchesY)
	for py := 0; py < app.PatchesY; py++ {
		for px := 0; px < app.PatchesX; px++ {
			m[py*app.PatchesX+px] = counts[app.Response(px, py, 0)]
		}
	}
	fmt.Printf("\n=== Haar horizontal-edge response map, %d cores, %d neurons ===\n",
		app.Net.NumCores(), app.Net.NumNeurons())
	printMap(m, app.PatchesX, app.PatchesY)
	reportEnergy("haar", eng, run.Ticks)
}

func place(net *corelet.Net) (*chip.Model, *corelet.Placement) {
	side := 1
	for side*side < net.NumCores() {
		side++
	}
	p, err := corelet.Place(net, router.Mesh{W: side, H: side})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := chip.New(p.Mesh, p.Configs)
	if err != nil {
		log.Fatal(err)
	}
	return eng, p
}

func reportEnergy(name string, eng *chip.Model, ticks int) {
	l := energy.LoadFrom(eng.Counters(), eng.NoC(), uint64(ticks))
	model := energy.TrueNorth()
	fmt.Printf("%s on TrueNorth at real time: %.3f mW active+passive, %.1f MSOPS, %.1f pJ/synop\n",
		name, model.PowerW(l, 1000, 0.75)*1e3, l.SOPS(1000)/1e6, model.ActivePJPerSynEvent(l, 0.75))
}

func printFrame(f *vision.Frame) {
	const ramp = " .:-=+*#%@"
	for y := 0; y < f.H; y += 2 { // 2:1 aspect correction
		for x := 0; x < f.W; x++ {
			fmt.Print(string(ramp[int(f.At(x, y))*9/255]))
		}
		fmt.Println()
	}
}

func printMap(m []int, w, h int) {
	maxV := 1
	for _, v := range m {
		if v > maxV {
			maxV = v
		}
	}
	const ramp = " .:-=+*#%@"
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fmt.Print(string(ramp[m[y*w+x]*9/maxV]))
		}
		fmt.Println()
	}
}
