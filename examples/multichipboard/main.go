// Multichipboard: tile chips into a board (Section VII), send spikes
// across the merge/split chip boundaries, disable a core mid-run and watch
// the mesh route around it — the architecture's fault tolerance.
//
//	go run ./examples/multichipboard
package main

import (
	"fmt"
	"log"

	"truenorth/internal/core"
	"truenorth/internal/energy"
	"truenorth/internal/multichip"
	"truenorth/internal/neuron"
)

func main() {
	// A 2×2 board of small 8×8-core "chips" (the real board uses 64×64
	// tiles; the semantics are identical). A relay chain zig-zags through
	// all four chips.
	board := multichip.Board{ChipsX: 2, ChipsY: 2, TileW: 8, TileH: 8}
	mesh := board.Mesh()

	// Chain of relays across chips: (2,2) → (12,2) → (12,12) → (2,12) → out.
	waypoints := [][2]int{{2, 2}, {12, 2}, {12, 12}, {2, 12}}
	configs := make([]*core.Config, mesh.W*mesh.H)
	for i, wp := range waypoints {
		cfg := core.InertConfig()
		cfg.Synapses[0].Set(0)
		cfg.Neurons[0] = neuron.Identity()
		if i == len(waypoints)-1 {
			cfg.Targets[0] = core.Target{Valid: true, Output: true, OutputID: 99}
		} else {
			next := waypoints[i+1]
			cfg.Targets[0] = core.Target{
				Valid: true,
				DX:    int16(next[0] - wp[0]),
				DY:    int16(next[1] - wp[1]),
				Axon:  0,
				Delay: 1,
			}
		}
		configs[wp[1]*mesh.W+wp[0]] = cfg
		// Populate the core we will later disable.
		configs[2*mesh.W+8] = core.InertConfig()
		_ = i
	}

	m, err := board.New(configs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("board: %d chips of %dx%d cores — %d neurons, %d synapses\n",
		board.Chips(), board.TileW, board.TileH, board.Neurons(), board.Synapses())

	m.Inject(2, 2, 0, 0)
	m.Run(8)
	out := m.DrainOutputs()
	noc := m.NoC()
	fmt.Printf("healthy: %d output spike(s), %d hops, %d chip-boundary crossings (merge/split)\n",
		len(out), noc.Hops, noc.Crossings)

	// Kill the core sitting on the first leg's dimension-order path.
	m.DisableCore(8, 2)
	m.Inject(2, 2, 0, 0)
	m.Run(8)
	out = m.DrainOutputs()
	noc2 := m.NoC()
	fmt.Printf("with core (8,2) disabled: %d output spike(s), +%d hops, %d detoured packet(s)\n",
		len(out), noc2.Hops-noc.Hops, noc2.Detours)
	if len(out) != 1 {
		log.Fatal("spike lost despite rerouting")
	}
	fmt.Println("the mesh routed around the failed core — local failures do not disrupt global usability.")

	// Link utilization accounting for the merge/split blocks.
	crossPerTick := float64(noc2.Crossings) / 16
	fmt.Printf("inter-chip link utilization at this traffic: %.6f%%\n",
		100*board.Utilization(multichip.DefaultLink(), crossPerTick))

	// The Section VII power story for real 64×64 chips on this board.
	pm := multichip.DefaultPower()
	real4x4 := multichip.FourByFour()
	load := energy.TrueNorth().SyntheticLoad(20, 128)
	fmt.Printf("\na real 4x4 board running 16M neurons at 20Hz/128syn, 1.0V: %.2f W total (paper: 7.2 W)\n",
		pm.BoardPowerW(real4x4, load, 1000, 1.0))
}
