// Cognition: the paper's non-vision application classes in one tour —
// a liquid state machine classifying temporal rhythms, a restricted
// Boltzmann machine completing corrupted patterns, and a hidden Markov
// model filter tracking a hidden state, all as spiking networks with
// off-line-trained or off-line-derived readouts.
//
//	go run ./examples/cognition
package main

import (
	"fmt"
	"log"

	"truenorth/internal/apps/hmm"
	"truenorth/internal/apps/lsm"
	"truenorth/internal/apps/rbm"
	"truenorth/internal/prng"
)

func main() {
	lsmDemo()
	rbmDemo()
	hmmDemo()
}

func lsmDemo() {
	fmt.Println("=== Liquid state machine: temporal rhythm classification ===")
	rig, err := lsm.NewRig(lsm.DefaultParams())
	if err != nil {
		log.Fatal(err)
	}
	// The repo's frozen-stream generator keeps the demo replayable across
	// Go releases, which math/rand does not guarantee.
	rng := prng.NewRand(5)
	pattern := func(class int) lsm.Pattern {
		p := lsm.Pattern{SpikesAt: map[int][]int{}, Ticks: 50}
		period := []int{3, 8}[class]
		chans := [][]int{{0, 1, 2}, {4, 5, 6}}[class]
		for _, ch := range chans {
			for t := ch % period; t < 50; t += period {
				tt := t + rng.Intn(3) - 1
				if tt >= 0 && tt < 50 {
					p.SpikesAt[tt] = append(p.SpikesAt[tt], ch)
				}
			}
		}
		return p
	}
	var x [][]float64
	var y []int
	for c := 0; c < 2; c++ {
		for i := 0; i < 8; i++ {
			f, err := rig.Features(pattern(c))
			if err != nil {
				log.Fatal(err)
			}
			x = append(x, f)
			y = append(y, c)
		}
	}
	clf := lsm.TrainReadout(x, y, 2, 30)
	correct, total := 0, 0
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			f, err := rig.Features(pattern(c))
			if err != nil {
				log.Fatal(err)
			}
			if clf.Predict(f) == c {
				correct++
			}
			total++
		}
	}
	fmt.Printf("256-neuron reservoir + off-line perceptron: %d/%d rhythms classified\n\n", correct, total)
}

func rbmDemo() {
	fmt.Println("=== Restricted Boltzmann machine: associative pattern completion ===")
	protos := [][]bool{
		bits("11111111111111110000000000000000"),
		bits("00000000000000001111111111111111"),
		bits("10101010101010101010101010101010"),
	}
	rig, err := rbm.NewRig(rbm.Params{Visible: 32, Prototypes: protos, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	corrupted := append([]bool(nil), protos[0]...)
	corrupted[3] = false
	corrupted[9] = false
	corrupted[20] = true
	res, err := rig.Infer(corrupted)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored    : %s\n", str(protos[0]))
	fmt.Printf("corrupted : %s (3 bits flipped)\n", str(corrupted))
	fmt.Printf("completed : %s (hidden rates: %.2f %.2f %.2f)\n\n",
		str(res.Recon), res.HiddenRates[0], res.HiddenRates[1], res.HiddenRates[2])
}

func hmmDemo() {
	fmt.Println("=== Hidden Markov model: spiking forward filter ===")
	model := hmm.Model{
		A:  [][]float64{{0.85, 0.15}, {0.15, 0.85}},
		B:  [][]float64{{0.7, 0.25, 0.05}, {0.05, 0.25, 0.7}},
		Pi: []float64{0.5, 0.5},
	}
	rig, err := hmm.NewRig(hmm.Params{Model: model, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	obs := []int{0, 0, 0, 2, 2, 2, 2, 0, 0, 0}
	names := []string{"walk", "shop", "clean"}
	states := []string{"Sunny", "Rainy"}
	_, est, err := rig.Filter(obs)
	if err != nil {
		log.Fatal(err)
	}
	ref := model.Forward(obs)
	fmt.Println("obs      spiking-filter  exact-filter")
	for t, o := range obs {
		exact := 0
		if ref[t][1] > ref[t][0] {
			exact = 1
		}
		mark := ""
		if est[t] == exact {
			mark = "agrees"
		}
		fmt.Printf("%-8s %-15s %-13s %s\n", names[o], states[est[t]], states[exact], mark)
	}
}

func bits(s string) []bool {
	out := make([]bool, len(s))
	for i, c := range s {
		out[i] = c == '1'
	}
	return out
}

func str(b []bool) string {
	out := make([]byte, len(b))
	for i, v := range b {
		if v {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}
