// Quickstart: build a tiny neurosynaptic network with the corelet API,
// place it on a mesh, run it on both kernel expressions — the silicon
// model (chip) and the parallel simulator (compass) — and verify they
// agree spike for spike.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"truenorth/internal/chip"
	"truenorth/internal/compass"
	"truenorth/internal/corelet"
	"truenorth/internal/neuron"
	"truenorth/internal/router"
	"truenorth/internal/sim"
)

func main() {
	// A three-stage network: an input relay, a coincidence detector that
	// fires when both of its inputs arrive within one tick, and a tonic
	// "pacemaker" neuron that drives one input at a steady 100 Hz from its
	// leak alone.
	net := corelet.NewNet()

	relay := net.AddCore()
	net.SetSynapse(relay, 0, 0)
	net.SetNeuron(relay, 0, neuron.Identity())
	net.AddInput("in", relay, 0)

	detector := net.AddCore()
	// Axon 0: the external relay path; axon 1: the pacemaker. Both
	// excitatory (type 0, weight +1); threshold 2 → fires only on
	// coincidence.
	net.SetSynapse(detector, 0, 0)
	net.SetSynapse(detector, 1, 0)
	net.SetNeuron(detector, 0, neuron.Params{
		Weights:   [neuron.NumAxonTypes]int32{1, 0, 0, 0},
		Threshold: 2,
		Reset:     neuron.ResetToV,
	})
	net.Connect(relay, 0, detector, 0, 1)
	net.ConnectOutput(detector, 0, "coincidence", 0)

	pacemaker := net.AddCore()
	// Leak 1, threshold 10 → one spike every 10 ticks (100 Hz at 1 kHz).
	net.SetNeuron(pacemaker, 0, neuron.Params{
		Leak:      1,
		Threshold: 10,
		Reset:     neuron.ResetToV,
	})
	net.Connect(pacemaker, 0, detector, 1, 1)

	placement, err := corelet.Place(net, router.Mesh{W: 3, H: 1})
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, eng sim.Engine) []sim.OutputSpike {
		// Inject external spikes every 5 ticks: they coincide with the
		// pacemaker only when both land on the detector in the same tick.
		for tick := 0; tick < 100; tick += 5 {
			if err := placement.Inject(eng, "in", 0, tick); err != nil {
				log.Fatal(err)
			}
		}
		eng.Run(110)
		out := eng.DrainOutputs()
		c := eng.Counters()
		fmt.Printf("%-8s %3d coincidences, %4d total spikes, %4d synaptic events, %3d mesh hops\n",
			name, len(out), c.Spikes, c.SynEvents, eng.NoC().Hops)
		return out
	}

	hw, err := chip.New(placement.Mesh, placement.Configs)
	if err != nil {
		log.Fatal(err)
	}
	sw, err := compass.New(placement.Mesh, placement.Configs, sim.WithWorkers(3))
	if err != nil {
		log.Fatal(err)
	}
	a := run("chip", hw)
	b := run("compass", sw)

	if len(a) != len(b) {
		log.Fatalf("expressions disagree: %d vs %d output spikes", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			log.Fatalf("spike %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	fmt.Println("\nchip and compass agree spike-for-spike — the paper's one-to-one equivalence.")
	fmt.Print("coincidence ticks:")
	for _, s := range a {
		fmt.Printf(" %d", s.Tick)
	}
	fmt.Println()
}
