// Recurrentnet: generate one of the paper's probabilistic recurrent
// characterization networks, run it on the parallel Compass engine, and
// walk the operating space of Fig. 5 — power, efficiency, and maximum tick
// rate across voltages and speeds.
//
//	go run ./examples/recurrentnet
package main

import (
	"fmt"
	"log"

	"truenorth/internal/compass"
	"truenorth/internal/core"
	"truenorth/internal/energy"
	"truenorth/internal/experiments"
	"truenorth/internal/netgen"
	"truenorth/internal/router"
)

func main() {
	grid := router.Mesh{W: 16, H: 16}
	params := netgen.Params{Grid: grid, RateHz: 20, SynPerNeuron: 128, Seed: 7}
	configs, err := netgen.Build(params)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := compass.New(grid, configs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recurrent network: %d cores, %d neurons, target %.0f Hz x %d synapses/neuron, %d workers\n",
		grid.W*grid.H, grid.W*grid.H*core.NeuronsPerCore, params.RateHz, params.SynPerNeuron, eng.Workers())

	eng.Run(50)
	l := energy.MeasureLoad(eng, 200)
	neurons := float64(grid.W * grid.H * core.NeuronsPerCore)
	fmt.Printf("measured: %.1f Hz mean rate, %.1f synaptic events/spike, load imbalance %.2f\n",
		l.Spikes/neurons*1000, l.SynEvents/l.Spikes, eng.LoadImbalance())

	full := experiments.ScaleLoadToChip(l, grid)
	model := energy.TrueNorth()
	fmt.Printf("\nscaled to one TrueNorth chip (4,096 cores, 1M neurons):\n")
	fmt.Printf("%-22s %10s %10s %12s\n", "operating point", "power mW", "GSOPS", "GSOPS/W")
	for _, op := range []struct {
		name   string
		tickHz float64
		v      float64
	}{
		{"real time @0.75V", 1000, 0.75},
		{"5x real time @0.75V", 5000, 0.75},
		{"real time @0.70V", 1000, 0.70},
		{"real time @1.05V", 1000, 1.05},
	} {
		fmt.Printf("%-22s %10.1f %10.2f %12.1f\n", op.name,
			model.PowerW(full, op.tickHz, op.v)*1e3,
			full.SOPS(op.tickHz)/1e9,
			model.GSOPSPerWatt(full, op.tickHz, op.v))
	}
	fmt.Printf("\nmax tick rate at 0.75V: %.1f kHz (real time is 1 kHz)\n", model.MaxTickHz(full, 0.75)/1000)
	fmt.Printf("active energy: %.1f pJ per synaptic event (paper: ~10 pJ)\n", model.ActivePJPerSynEvent(full, 0.75))
}
