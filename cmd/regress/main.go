// Command regress reproduces the Section VI-A one-to-one equivalence
// methodology: the chip model (the "silicon") and the Compass parallel
// engine run the same stochastically rich recurrent networks for a chosen
// horizon, and every output spike, counter, and NoC statistic must match
// exactly — "not a single spike mismatch".
//
// Usage:
//
//	regress [-grid N] [-steps N] [-nets N] [-workers N] [-seed S]
//
// The paper ran regressions from 10k to 100M time steps; -steps sets the
// horizon (long horizons take proportionally long — the 1:1 property is
// checked incrementally, so any divergence aborts immediately).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	// Engine expressions self-register with the sim engine registry.
	_ "truenorth/internal/chip"
	_ "truenorth/internal/compass"
	"truenorth/internal/energy"
	"truenorth/internal/experiments"
	"truenorth/internal/modelcheck"
	"truenorth/internal/netgen"
	"truenorth/internal/router"
	"truenorth/internal/sim"
)

func main() {
	grid := flag.Int("grid", 8, "core grid edge")
	steps := flag.Int("steps", 10000, "regression horizon in ticks")
	nets := flag.Int("nets", 4, "number of stochastic recurrent networks")
	workers := flag.Int("workers", 0, "Compass workers (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "network seed")
	force := flag.Bool("force", false, "run even when static model verification reports findings")
	flag.Parse()

	mesh := router.Mesh{W: *grid, H: *grid}
	checkEvery := *steps / 100
	if checkEvery < 1 {
		checkEvery = 1
	}
	//lint:ignore tnlint/detrand wall-clock elapsed time is the reported measurement, not simulation state
	start := time.Now()
	totalSpikes := uint64(0)
	for n := 0; n < *nets; n++ {
		// Stochastic dynamics make the networks "a sensitive assay for any
		// deviation from perfect correspondence".
		rate := []float64{25, 75, 130, 200}[n%4]
		syn := []int{51, 128, 179, 256}[n%4]
		configs, err := netgen.Build(netgen.Params{
			Grid: mesh, RateHz: rate, SynPerNeuron: syn,
			Seed: *seed + int64(n), Stochastic: true,
		})
		if err != nil {
			fail(err)
		}
		if !*force {
			// A regression against a structurally broken model proves
			// nothing; the gate is the same one the simulation service
			// applies at model upload.
			if err := modelcheck.Verify(mesh, configs, modelcheck.Options{}); err != nil {
				fail(fmt.Errorf("net %d: %w (rerun with -force)", n, err))
			}
		}
		hw, err := sim.NewEngine("chip", mesh, configs)
		if err != nil {
			fail(err)
		}
		sw, err := sim.NewEngine("compass", mesh, configs, sim.WithWorkers(*workers))
		if err != nil {
			fail(err)
		}
		for tick := 0; tick < *steps; tick += checkEvery {
			n := checkEvery
			if tick+n > *steps {
				n = *steps - tick
			}
			hw.Run(n)
			sw.Run(n)
			if hc, sc := hw.Counters(), sw.Counters(); hc != sc {
				fail(fmt.Errorf("MISMATCH at tick %d: chip %+v vs compass %+v", tick+n, hc, sc))
			}
			if hn, sn := hw.NoC(), sw.NoC(); hn != sn {
				fail(fmt.Errorf("NoC MISMATCH at tick %d: %+v vs %+v", tick+n, hn, sn))
			}
		}
		c := hw.Counters()
		totalSpikes += c.Spikes
		fmt.Printf("net %d (rate %3.0f Hz, %3d syn): %d ticks, %d spikes, %d synaptic events — 100%% agreement\n",
			n, rate, syn, *steps, c.Spikes, c.SynEvents)
	}
	fmt.Printf("\nAll %d regressions matched spike-for-spike over %d ticks (%d total spikes) in %.1fs.\n",
		*nets, *steps, totalSpikes, time.Since(start).Seconds())

	// The paper's single-core and full-chip regressions instanced up to
	// 2,048 cores; the published 27.7-hour/74-day wall-clock pair implies
	// a sub-chip network on the legacy server. Model it as 1/8 of a chip
	// (512 cores) at a moderate operating point.
	full := energy.TrueNorth().SyntheticLoad(20, 64)
	load := energy.Load{
		SynEvents:     full.SynEvents / 8,
		NeuronUpdates: full.NeuronUpdates / 8,
		Spikes:        full.Spikes / 8,
		Hops:          full.Hops / 8,
	}
	if err := experiments.RegressionSummary(load).Fprint(os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "regress:", err)
	os.Exit(1)
}
