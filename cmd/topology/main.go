// Command topology runs the communication-locality study: recurrent
// networks from uniform-random to strongly clustered (cortex-like)
// connectivity on a multi-chip board, measuring mesh hops, merge/split
// crossings, link utilization, and the communication share of active
// energy — Compass's stated use of "benchmarking inter-core communication
// on different neural network topologies" (Section III-B).
//
// Usage:
//
//	topology [-chips N] [-tile N] [-rate Hz] [-syn N]
package main

import (
	"flag"
	"fmt"
	"os"

	"truenorth/internal/experiments"
	"truenorth/internal/multichip"
)

func main() {
	cfg := experiments.DefaultTopologyConfig()
	chips := flag.Int("chips", cfg.Board.ChipsX, "board edge in chips (N×N)")
	tile := flag.Int("tile", cfg.Board.TileW, "chip edge in cores")
	rate := flag.Float64("rate", cfg.RateHz, "target firing rate (Hz)")
	syn := flag.Int("syn", cfg.Syn, "active synapses per neuron")
	flag.Parse()

	cfg.Board = multichip.Board{ChipsX: *chips, ChipsY: *chips, TileW: *tile, TileH: *tile}
	cfg.RateHz = *rate
	cfg.Syn = *syn
	points, err := experiments.TopologySweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topology:", err)
		os.Exit(1)
	}
	if err := experiments.TopologyTable(points).Fprint(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topology:", err)
		os.Exit(1)
	}
}
