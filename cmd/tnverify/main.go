// Command tnverify statically verifies compiled network models — the
// upload-time gate of the simulation service: a model that fails
// verification is rejected before it can burn a simulation slot.
//
// Usage:
//
//	tnverify [-json] [-checks a,b] [-suppress file] [-assume-inputs]
//	         [-capacity N] [-v] model.tnm...
//	tnverify -sweep-grid N [-sweep-every K]   # generated characterization nets
//	tnverify -list
//
// Subjects are TNMDL1 model files (tnsim -save writes them) or, with
// -sweep-grid, the netgen characterization suite generated in-process.
// Model files carry no I/O table, so by default every axon is treated as a
// potential external injection point (-assume-inputs=true); pass
// -assume-inputs=false for closed recurrent models with no external
// inputs, which enables the undriven-axon analysis.
//
// Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"truenorth/internal/core"
	"truenorth/internal/model"
	"truenorth/internal/modelcheck"
	"truenorth/internal/netgen"
	"truenorth/internal/router"
)

func main() {
	jsonOut := flag.Bool("json", false, "machine-readable JSON report")
	checks := flag.String("checks", "", "comma-separated checks to run (default all)")
	suppress := flag.String("suppress", "", "suppression list file (see internal/modelcheck)")
	assume := flag.Bool("assume-inputs", true, "treat every axon as externally injectable (model files carry no I/O table)")
	capacity := flag.Int("capacity", 0, "per-link worst-case packet budget per tick (0 = no hotspot warnings)")
	sweepGrid := flag.Int("sweep-grid", 0, "verify the generated characterization sweep on an NxN grid instead of model files")
	sweepEvery := flag.Int("sweep-every", 1, "with -sweep-grid, verify every K-th of the 88 sweep networks")
	list := flag.Bool("list", false, "list available checks and exit")
	verbose := flag.Bool("v", false, "print per-model summaries even when clean")
	flag.Parse()

	if *list {
		for _, c := range modelcheck.Checks() {
			fmt.Printf("%-14s %s\n", c.Name, c.Doc)
		}
		return
	}

	opts := modelcheck.Options{
		AssumeExternalInput: *assume,
		LinkCapacity:        *capacity,
	}
	if *checks != "" {
		opts.Checks = strings.Split(*checks, ",")
	}
	exit := 0
	if *suppress != "" {
		f, err := os.Open(*suppress)
		if err != nil {
			fail(err)
		}
		sups, diags := modelcheck.ParseSuppressions(f)
		f.Close()
		opts.Suppressions = sups
		for _, d := range diags {
			fmt.Printf("%s: %s\n", *suppress, d)
			exit = 1
		}
	}

	type subject struct {
		name    string
		mesh    router.Mesh
		configs []*core.Config
	}
	var subjects []subject
	switch {
	case *sweepGrid > 0:
		mesh := router.Mesh{W: *sweepGrid, H: *sweepGrid}
		step := *sweepEvery
		if step < 1 {
			step = 1
		}
		for n := 0; n < len(netgen.SweepPoints()); n += step {
			configs, pt, err := netgen.BuildSweep(mesh, n, 1)
			if err != nil {
				fail(err)
			}
			subjects = append(subjects, subject{
				name:    fmt.Sprintf("sweep[%d] rate=%gHz syn=%d", n, pt.RateHz, pt.Syn),
				mesh:    mesh,
				configs: configs,
			})
		}
		// The characterization networks are closed recurrent systems: every
		// axon has exactly one internal driver, so the full analysis applies.
		opts.AssumeExternalInput = false
	case flag.NArg() > 0:
		for _, path := range flag.Args() {
			f, err := os.Open(path)
			if err != nil {
				fail(err)
			}
			mesh, configs, err := model.ReadModel(f)
			f.Close()
			if err != nil {
				fail(err)
			}
			subjects = append(subjects, subject{name: path, mesh: mesh, configs: configs})
		}
	default:
		fmt.Fprintln(os.Stderr, "tnverify: no subjects; pass model files or -sweep-grid N (see -h)")
		os.Exit(2)
	}

	type result struct {
		Model  string             `json:"model"`
		Report *modelcheck.Report `json:"report"`
	}
	var results []result
	for _, s := range subjects {
		rep, err := modelcheck.Analyze(s.mesh, s.configs, opts)
		if err != nil {
			fail(err)
		}
		results = append(results, result{Model: s.name, Report: rep})
		findings := rep.Findings()
		if len(findings) > 0 {
			exit = 1
		}
		if *jsonOut {
			continue
		}
		for _, d := range rep.Diags {
			fmt.Printf("%s: %s\n", s.name, d)
		}
		if *verbose || len(findings) > 0 {
			fmt.Printf("%s: %d finding(s), %d suppressed; worst-case NoC: %d packets/tick, mean hops %.2f, max link load %d\n",
				s.name, len(findings), rep.Suppressed, rep.NoC.Packets, rep.NoC.MeanHops, rep.NoC.MaxLinkLoad)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fail(err)
		}
	}
	os.Exit(exit)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tnverify:", err)
	os.Exit(2)
}
