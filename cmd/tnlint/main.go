// Command tnlint is the repo's determinism-and-correctness static analyzer
// suite. It machine-checks the invariants behind the chip↔Compass
// one-to-one equivalence claim (no unseeded randomness, no wall clock, no
// map-iteration-order leakage, no goroutines outside the sanctioned Compass
// worker pattern), the serving stack's real-time safety (no per-tick heap
// traffic in the kernel, no locks across blocking calls, no leakable
// goroutines, channel-ownership discipline), and whole-program concurrency
// protocol over the call graph (lock-order cycles, blocking helpers under
// locks, channel close races, WaitGroup misuse, atomic/plain mixing). See
// internal/lint.
//
// Usage:
//
//	tnlint [-only a,b] [-skip a,b] [-<analyzer>=false] [-json] [-list] [-lockorder-out file] [-apisurface-out file] [packages]
//
// Every analyzer also has its own boolean flag (-hotalloc=false disables
// hotalloc); -only and -skip apply on top for CI one-liners. Packages are
// ./-relative patterns as for the go tool ("./...",
// "./internal/compass/...", "./internal/chip"); the default is ./... from
// the enclosing module root. Findings print as
//
//	file:line: analyzer: message
//
// or, with -json, as a JSON array of {file, line, column, analyzer,
// message} objects (always an array — "[]" when clean). With
// -lockorder-out, the rendered lock-order hierarchy (the same report the
// golden test pins) is additionally written to the named file — CI uploads
// it as a reviewable artifact; -apisurface-out does the same for the
// extracted v1 API surface spec (the report TestAPISurfaceGolden pins
// against testdata/apisurface/v1.golden). Findings are suppressed by a
// `//lint:ignore tnlint/<analyzer> reason` comment on the same or
// preceding line. Exit status: 0 clean, 1 findings, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"truenorth/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	skip := flag.String("skip", "", "comma-separated analyzer names to skip")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	list := flag.Bool("list", false, "list analyzers and exit")
	lockOrderOut := flag.String("lockorder-out", "", "write the rendered lock-order hierarchy to this file")
	apiSurfaceOut := flag.String("apisurface-out", "", "write the extracted v1 API surface spec to this file")
	all := lint.Analyzers()
	enabled := map[string]*bool{}
	for _, a := range all {
		enabled[a.Name] = flag.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	flag.Parse()

	analyzers := selectAnalyzers(all, *only, *skip, enabled)
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
			if a.Packages != nil {
				fmt.Printf("%-10s   applies to: %s\n", "", strings.Join(a.Packages, ", "))
			}
		}
		return 0
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(os.Stderr, "tnlint: no analyzers selected")
		return 2
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tnlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tnlint:", err)
		return 2
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := resolve(loader, cwd, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tnlint:", err)
		return 2
	}

	var pkgs []*lint.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tnlint:", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}

	// The loader's cache now holds the targets plus every module-internal
	// dependency type-checking pulled in; handing those to the run as
	// call-graph context makes the interprocedural analyzers whole-module
	// even when only a subset of packages is being linted.
	diags := lint.RunWithContext(pkgs, loader.Loaded(), analyzers)
	if *lockOrderOut != "" || *apiSurfaceOut != "" {
		prog := lint.NewProgram(loader.Loaded())
		if *lockOrderOut != "" {
			g := lint.NewLockGraph(prog, lint.ConcurrencyPackages)
			if err := os.WriteFile(*lockOrderOut, []byte(g.Render()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "tnlint:", err)
				return 2
			}
		}
		if *apiSurfaceOut != "" {
			surf, err := lint.ExtractSurface(prog, loader.Loaded())
			if err != nil {
				fmt.Fprintln(os.Stderr, "tnlint:", err)
				return 2
			}
			if err := os.WriteFile(*apiSurfaceOut, []byte(surf.Render()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "tnlint:", err)
				return 2
			}
		}
	}
	rel := func(file string) string {
		if r, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return file
	}
	if *asJSON {
		if err := lint.WriteJSON(os.Stdout, diags, rel); err != nil {
			fmt.Fprintln(os.Stderr, "tnlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tnlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// selectAnalyzers applies the per-analyzer boolean flags, then -only/-skip.
func selectAnalyzers(all []*lint.Analyzer, only, skip string, enabled map[string]*bool) []*lint.Analyzer {
	set := func(csv string) map[string]bool {
		m := map[string]bool{}
		for _, n := range strings.Split(csv, ",") {
			if n = strings.TrimSpace(n); n != "" {
				m[n] = true
			}
		}
		return m
	}
	onlySet, skipSet := set(only), set(skip)
	var out []*lint.Analyzer
	for _, a := range all {
		if on := enabled[a.Name]; on != nil && !*on {
			continue
		}
		if len(onlySet) > 0 && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out
}

// resolve expands go-style package patterns into module import paths.
func resolve(loader *lint.Loader, cwd string, patterns []string) ([]string, error) {
	all, err := loader.AllImportPaths()
	if err != nil {
		return nil, err
	}
	toImport := func(dir string) (string, error) {
		abs, err := filepath.Abs(filepath.Join(cwd, dir))
		if err != nil {
			return "", err
		}
		rel, err := filepath.Rel(loader.ModuleRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return "", fmt.Errorf("pattern %q is outside module %s", dir, loader.ModulePath)
		}
		if rel == "." {
			return loader.ModulePath, nil
		}
		return loader.ModulePath + "/" + filepath.ToSlash(rel), nil
	}
	seen := map[string]bool{}
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			if rest == "." || rest == "" {
				rest = "."
			}
			prefix, err := toImport(rest)
			if err != nil {
				return nil, err
			}
			matched := false
			for _, p := range all {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
					matched = true
				}
			}
			if !matched {
				return nil, fmt.Errorf("pattern %q matched no packages", pat)
			}
			continue
		}
		p, err := toImport(pat)
		if err != nil {
			return nil, err
		}
		add(p)
	}
	return out, nil
}
