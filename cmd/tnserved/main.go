// Command tnserved serves simulation sessions over HTTP/JSON: create a
// model (generated or loaded), run it paced or free-running, stream spikes
// in and out, checkpoint and restore — many sessions concurrently, each on
// its own engine. See the README for the endpoint reference.
//
// Usage:
//
//	tnserved [-addr host:port] [-max-sessions N] [-max-rate HZ] [-workers N]
//	         [-engine chip|compass] [-legacy-sessions]
//
// The listen address is printed once the socket is bound, so scripts can
// use -addr 127.0.0.1:0 and parse the assigned port.
//
// On SIGINT or SIGTERM the server stops accepting connections, lets
// in-flight requests finish (bounded by a drain timeout), and closes every
// session so periodic checkpoints flush before exit.
//
// The command is a thin shell by design: all timing and concurrency live
// in internal/runtime and internal/serve, keeping this entry point within
// the determinism rules tnlint enforces on cmd packages.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	// Engine expressions self-register with the sim engine registry.
	_ "truenorth/internal/chip"
	_ "truenorth/internal/compass"
	"truenorth/internal/serve"
	"truenorth/internal/sim"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8484", "listen address (use :0 for an ephemeral port)")
	maxSessions := flag.Int("max-sessions", 0, "maximum concurrently live sessions (0 = scheduler default)")
	maxRate := flag.Float64("max-rate", 0, "aggregate paced ticks/sec admitted across all sessions (0 = unlimited)")
	workers := flag.Int("workers", 0, "scheduler worker pool size (0 = GOMAXPROCS)")
	legacy := flag.Bool("legacy-sessions", false, "run each session on its own goroutine instead of the shared scheduler")
	engine := flag.String("engine", "compass", "default engine for sessions that don't pick one: "+strings.Join(sim.EngineNames(), "|"))
	drain := flag.Duration("drain", 5*time.Second, "how long to wait for in-flight requests on shutdown")
	flag.Parse()

	srv := serve.NewServer(serve.Config{
		MaxSessions:    *maxSessions,
		MaxTicksPerSec: *maxRate,
		Workers:        *workers,
		LegacySessions: *legacy,
		DefaultEngine:  *engine,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	fmt.Printf("tnserved listening on http://%s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	//lint:ignore tnlint/ticksafe HTTP serving is wall-clock I/O, not tick-domain parallelism
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)

	select {
	case sig := <-sigs:
		fmt.Printf("tnserved: %s, shutting down\n", sig)
		// Tell long-lived handlers (open /stream responses) to finish so
		// graceful Shutdown isn't pinned by slow readers past the drain
		// window; new session creation starts refusing with 503.
		srv.BeginShutdown()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		if err := httpSrv.Shutdown(ctx); err != nil {
			// Stragglers past the drain window (e.g. an open spike stream)
			// are cut off; session state is still closed cleanly below.
			fmt.Fprintln(os.Stderr, "tnserved: drain incomplete:", err)
		}
		cancel()
		srv.Close()
	case err := <-serveErr:
		if !errors.Is(err, http.ErrServerClosed) {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tnserved:", err)
	os.Exit(1)
}
