// Command tnproof runs the compiler-diagnostics perf gate: it proves, from
// `go build -gcflags='-m -m -d=ssa/check_bce/debug=1'` output, that every
// //perf:hot function in the kernel packages stays within its golden
// escape/bounds-check budget (testdata/perfproof/*.golden).
//
// Usage:
//
//	tnproof [flags] [packages...]
//
// With no packages it gates the kernel hot set (the same packages tnlint's
// hotalloc analyzer watches). Exit status is 1 when any budget is violated;
// each violation prints a file:line diagnostic.
//
//	tnproof                  # gate against checked-in goldens
//	tnproof -update          # bless the current compiler output as the budget
//	tnproof -json report.json # also write the machine-readable report
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"truenorth/internal/lint"
	"truenorth/internal/perfproof"
)

func main() {
	update := flag.Bool("update", false, "rewrite the golden budgets from current compiler output")
	jsonPath := flag.String("json", "", "write the full report as JSON to this file ('-' for stdout)")
	modRoot := flag.String("C", ".", "module root to run in")
	goldenDir := flag.String("golden", "testdata/perfproof", "golden budget directory, relative to the module root")
	flag.Parse()

	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = lint.HotPackages
	}
	dir := *goldenDir
	if !os.IsPathSeparator(dir[0]) {
		dir = *modRoot + string(os.PathSeparator) + dir
	}

	reports, err := perfproof.Run(*modRoot, dir, pkgs, *update)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		data = append(data, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	fail := false
	for _, r := range reports {
		if *update {
			fmt.Printf("tnproof: blessed %s (%d hot funcs, %d budgeted findings)\n",
				r.Pkg, len(r.Hot), len(r.Findings))
			continue
		}
		for _, v := range r.Violations {
			fmt.Fprintln(os.Stderr, "tnproof: "+v)
			fail = true
		}
	}
	if fail {
		fmt.Fprintln(os.Stderr, "tnproof: FAIL — hot-path perf budgets violated (bless intentional changes with -update)")
		os.Exit(1)
	}
	if !*update {
		hot, findings := 0, 0
		for _, r := range reports {
			hot += len(r.Hot)
			findings += len(r.Findings)
		}
		fmt.Printf("tnproof: ok — %d packages, %d hot functions, %d budgeted findings, 0 violations\n",
			len(reports), hot, findings)
	}
}
