// Command future regenerates the Section VII projections: the 16-chip
// board power split, the rat-scale quarter rack, and the 1%-human-scale
// rack, with the paper's claimed energy reductions alongside the values
// our models compute.
package main

import (
	"fmt"
	"os"

	"truenorth/internal/energy"
	"truenorth/internal/experiments"
	"truenorth/internal/multichip"
)

func main() {
	if err := experiments.FutureTable(experiments.FutureSystems()).Fprint(os.Stdout); err != nil {
		fail(err)
	}
	// The 4×4 board power split (Section VII-C: 7.2 W = 2.5 W array at
	// 1.0 V + 4.7 W support).
	pm := multichip.DefaultPower()
	b := multichip.FourByFour()
	load := energy.TrueNorth().SyntheticLoad(20, 128)
	total := pm.BoardPowerW(b, load, 1000, 1.0)
	fmt.Printf("4x4 board at 1.0V, real time: total %.2f W = %.2f W TrueNorth array + %.2f W support logic\n",
		total, total-pm.SupportW, pm.SupportW)
	fmt.Printf("(paper: 7.2 W = 2.5 W + 4.7 W)\n")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "future:", err)
	os.Exit(1)
}
