// Command scaling regenerates Fig. 8: single-chip Neovision strong scaling
// on Blue Gene/Q (1-32 hosts × 8-64 threads) and the x86 reference points,
// plus a measured strong-scaling sweep of the Go Compass engine on this
// host.
//
// Usage:
//
//	scaling [-grid N] [-ticks N] [-measure]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"truenorth/internal/experiments"
	"truenorth/internal/router"
)

func main() {
	grid := flag.Int("grid", 16, "core grid edge for the measured Go sweep")
	ticks := flag.Int("ticks", 200, "measured ticks per worker count")
	measure := flag.Bool("measure", true, "also measure Go Compass scaling on this host")
	flag.Parse()

	if err := experiments.ScalingTable(experiments.BGQScaling()).Fprint(os.Stdout); err != nil {
		fail(err)
	}
	if !*measure {
		return
	}
	mesh := router.Mesh{W: *grid, H: *grid}
	var sweep []int
	for w := 1; w <= runtime.GOMAXPROCS(0); w *= 2 {
		sweep = append(sweep, w)
	}
	fmt.Printf("Measuring Go Compass strong scaling (%dx%d grid, %d ticks, workers %v)...\n\n", *grid, *grid, *ticks, sweep)
	rows, err := experiments.MeasureGoScaling(mesh, *ticks, sweep, 1)
	if err != nil {
		fail(err)
	}
	if err := experiments.MeasuredScalingTable(rows, mesh).Fprint(os.Stdout); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "scaling:", err)
	os.Exit(1)
}
