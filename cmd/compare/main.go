// Command compare regenerates the TrueNorth-versus-Compass comparisons:
// Fig. 6 (speedup and energy improvement over the 88-network space against
// Blue Gene/Q and x86) and Fig. 7 (the five computer-vision applications),
// plus the Section IV-B application table.
//
// Usage:
//
//	compare [-grid N] [-apps] [-frames N] [-aperture WxH] [-workers N]
package main

import (
	"flag"
	"fmt"
	"os"

	"truenorth/internal/experiments"
	"truenorth/internal/router"
)

func main() {
	grid := flag.Int("grid", 16, "core grid edge for the 88-network sweep")
	apps := flag.Bool("apps", false, "also run the five vision applications (Fig. 7)")
	frames := flag.Int("frames", 6, "video frames per application")
	apW := flag.Int("aperture-w", 64, "application aperture width")
	apH := flag.Int("aperture-h", 32, "application aperture height")
	workers := flag.Int("workers", 0, "Compass workers (0 = GOMAXPROCS)")
	force := flag.Bool("force", false, "run even when static model verification reports findings")
	flag.Parse()

	cfg := experiments.DefaultCharConfig()
	cfg.Grid = router.Mesh{W: *grid, H: *grid}
	cfg.Workers = *workers
	cfg.Verify = !*force
	fmt.Printf("Fig 6: comparing TrueNorth vs Compass over the 88-network space (%dx%d grid)...\n\n", *grid, *grid)
	points, err := experiments.Characterize(cfg)
	if err != nil {
		fail(err)
	}
	for _, t := range experiments.CompareTables(points) {
		if err := t.Fprint(os.Stdout); err != nil {
			fail(err)
		}
	}
	if !*apps {
		return
	}
	appCfg := experiments.DefaultAppRunConfig()
	appCfg.Frames = *frames
	appCfg.ImgW, appCfg.ImgH = *apW, *apH
	appCfg.Workers = *workers
	appCfg.Verify = !*force
	fmt.Printf("Fig 7: running five vision applications at %dx%d for %d frames each...\n\n", *apW, *apH, *frames)
	results, err := experiments.RunApps(appCfg)
	if err != nil {
		fail(err)
	}
	for _, t := range experiments.AppTables(results) {
		if err := t.Fprint(os.Stdout); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "compare:", err)
	os.Exit(1)
}
