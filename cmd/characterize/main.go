// Command characterize regenerates the TrueNorth characterization figures
// (Fig. 5a-f) and the headline operating-point table: the 88
// probabilistically generated recurrent networks are run on the Compass
// engine, their activity is scaled to full-chip load, and the calibrated
// energy model reports computation, timing, power, and efficiency.
//
// Usage:
//
//	characterize [-grid N] [-ticks N] [-warmup N] [-workers N] [-voltage V] [-seed S]
//
// The default 16×16 grid sweeps all 88 networks in seconds; -grid 64
// simulates the full 4,096-core chip.
package main

import (
	"flag"
	"fmt"
	"os"

	"truenorth/internal/experiments"
	"truenorth/internal/router"
)

func main() {
	cfg := experiments.DefaultCharConfig()
	grid := flag.Int("grid", cfg.Grid.W, "core grid edge (64 = full TrueNorth chip)")
	ticks := flag.Int("ticks", cfg.Ticks, "measurement window in ticks")
	warmup := flag.Int("warmup", cfg.Warmup, "settling window in ticks")
	workers := flag.Int("workers", 0, "Compass workers (0 = GOMAXPROCS)")
	voltage := flag.Float64("voltage", cfg.Voltage, "supply voltage for Figs. 5a/5b/5d/5e")
	seed := flag.Int64("seed", cfg.Seed, "network generation seed")
	flag.Parse()

	cfg.Grid = router.Mesh{W: *grid, H: *grid}
	cfg.Ticks = *ticks
	cfg.Warmup = *warmup
	cfg.Workers = *workers
	cfg.Voltage = *voltage
	cfg.Seed = *seed

	fmt.Printf("Characterizing 88 recurrent networks on a %dx%d grid (%d warmup + %d measured ticks)...\n\n",
		cfg.Grid.W, cfg.Grid.H, cfg.Warmup, cfg.Ticks)
	points, err := experiments.Characterize(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
	tables := experiments.CharTables(points)
	tables = append(tables, experiments.VoltageSweep()...)
	tables = append(tables, experiments.Headline(), experiments.BreakdownTable())
	for _, t := range tables {
		if err := t.Fprint(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "characterize:", err)
			os.Exit(1)
		}
	}
}
