// Command faults runs the fault-tolerance sweep: increasing fractions of
// cores are disabled in a recurrent network and the mesh's rerouting keeps
// the surviving system functional — the Section III-C robustness claim
// ("if a core fails, we disable it and route spike events around it";
// "local core failures do not disrupt global usability").
//
// Usage:
//
//	faults [-grid N] [-rate Hz] [-syn N] [-ticks N]
package main

import (
	"flag"
	"fmt"
	"os"

	"truenorth/internal/experiments"
	"truenorth/internal/router"
)

func main() {
	cfg := experiments.DefaultFaultConfig()
	grid := flag.Int("grid", cfg.Grid.W, "core grid edge")
	rate := flag.Float64("rate", cfg.RateHz, "target firing rate (Hz)")
	syn := flag.Int("syn", cfg.Syn, "active synapses per neuron")
	ticks := flag.Int("ticks", cfg.Ticks, "measurement ticks per point")
	flag.Parse()

	cfg.Grid = router.Mesh{W: *grid, H: *grid}
	cfg.RateHz = *rate
	cfg.Syn = *syn
	cfg.Ticks = *ticks
	points, err := experiments.FaultSweep(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faults:", err)
		os.Exit(1)
	}
	if err := experiments.FaultTable(points).Fprint(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "faults:", err)
		os.Exit(1)
	}
}
