// Command tnbench measures simulator throughput across the paper's
// operating grid (firing rate × active synapses per neuron, Section V) and
// writes the dated evidence file BENCH_<date>.json.
//
// Each operating point runs three arms on identical networks: the chip
// engine with the active-neuron Neuron-phase kernel, the same engine with
// the dense full-scan baseline forced (isolating the kernel's speedup), and
// the parallel compass engine. The arms are cross-checked event-for-event;
// a throughput number from a diverged simulation is an error, not a result.
//
// With -serve it instead measures the serving plane: how many
// concurrently paced sessions one process holds at rate on the pooled
// timing-wheel scheduler versus the legacy goroutine-per-session shape,
// with p99 command latency — written to BENCH_SERVE_<date>.json.
//
// Usage:
//
//	tnbench                  # full sweep, writes BENCH_<date>.json
//	tnbench -smoke           # small CI configuration
//	tnbench -grid 4 -rates 2,20 -syns 0,64 -o /tmp/bench.json
//	tnbench -serve           # serving sweep, writes BENCH_SERVE_<date>.json
//	tnbench -serve -smoke    # serving smoke (CI)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"truenorth/internal/bench"
)

func main() {
	var (
		serveMode = flag.Bool("serve", false, "run the serving sweep (sessions × ticks/sec × command latency) instead of the engine sweep")
		sessions  = flag.String("sessions", "", "-serve: comma-separated session counts, ascending (empty: configuration default)")
		rate      = flag.Float64("rate", 0, "-serve: per-session paced rate in Hz (0: configuration default)")
		window    = flag.Duration("window", 0, "-serve: measured window per point (0: configuration default)")
		grid    = flag.Int("grid", 0, "core mesh edge N for an N×N grid (0: configuration default)")
		rates   = flag.String("rates", "", "comma-separated firing rates in Hz (empty: configuration default)")
		syns    = flag.String("syns", "", "comma-separated synapse counts per neuron (empty: configuration default)")
		driven  = flag.Float64("driven", -1, "fraction of event-driven relay neurons, 0..1 (-1: configuration default)")
		settle  = flag.Int("settle", -1, "settling ticks before measurement (-1: configuration default)")
		measure = flag.Int("measure", -1, "measured ticks per arm (-1: configuration default)")
		workers = flag.Int("workers", 0, "compass worker count (0: configuration default)")
		seed    = flag.Int64("seed", 0, "network construction seed (0: configuration default)")
		smoke   = flag.Bool("smoke", false, "run the small CI smoke configuration")
		out     = flag.String("o", "", "output path (empty: BENCH_<date>.json in the working directory)")
		quiet   = flag.Bool("q", false, "suppress per-point progress lines")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	if *serveMode {
		runServe(*smoke, *sessions, *rate, *window, *workers, *out, logf)
		return
	}

	cfg := bench.DefaultConfig()
	if *smoke {
		cfg = bench.SmokeConfig()
	}
	if *grid > 0 {
		cfg.Grid.W, cfg.Grid.H = *grid, *grid
	}
	if *rates != "" {
		v, err := parseFloats(*rates)
		if err != nil {
			fatalf("-rates: %v", err)
		}
		cfg.Rates = v
	}
	if *syns != "" {
		v, err := parseInts(*syns)
		if err != nil {
			fatalf("-syns: %v", err)
		}
		cfg.Syns = v
	}
	if *driven >= 0 {
		cfg.DrivenFraction = *driven
	}
	if *settle >= 0 {
		cfg.SettleTicks = *settle
	}
	if *measure >= 0 {
		cfg.MeasureTicks = *measure
	}
	if *workers > 0 {
		cfg.Workers = *workers
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	rep, err := bench.Run(cfg, logf)
	if err != nil {
		fatalf("%v", err)
	}

	path := *out
	if path == "" {
		path = bench.Filename()
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("wrote %s: grid %s (%d neurons), %d points\n", path, rep.Grid, rep.Neurons, len(rep.Points))
	fmt.Printf("kernel speedup (chip vs full scan): %.2fx at sparse points, %.2fx best\n",
		rep.Summary.SparseKernelSpeedup, rep.Summary.BestKernelSpeedup)
	fmt.Printf("peak chip throughput: %.3g SOPS\n", rep.Summary.PeakChipSOPS)
}

// runServe executes the serving sweep and writes BENCH_SERVE_<date>.json.
func runServe(smoke bool, sessions string, rate float64, window time.Duration, workers int, out string, logf func(string, ...any)) {
	cfg := bench.DefaultServeConfig()
	if smoke {
		cfg = bench.ServeSmokeConfig()
	}
	if sessions != "" {
		v, err := parseInts(sessions)
		if err != nil {
			fatalf("-sessions: %v", err)
		}
		cfg.Sessions = v
	}
	if rate > 0 {
		cfg.RateHz = rate
	}
	if window > 0 {
		cfg.Window = window
	}
	if workers > 0 {
		cfg.Workers = workers
	}
	rep, err := bench.RunServe(cfg, logf)
	if err != nil {
		fatalf("%v", err)
	}
	path := out
	if path == "" {
		path = bench.ServeFilename()
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fatalf("%v", err)
	}
	s := rep.Summary
	fmt.Printf("wrote %s: %d points at %.0f Hz/session\n", path, len(rep.Points), rep.RateHz)
	fmt.Printf("sustained sessions at rate: scheduler %d vs goroutine %d (%.1fx)\n",
		s.SchedulerMaxSessions, s.GoroutineMaxSessions, s.SessionCapacityRatio)
	fmt.Printf("peak aggregate ticks/sec: scheduler %.3g vs goroutine %.3g (%.1fx); p99 at capacity %.2f ms vs %.2f ms\n",
		s.SchedulerPeakTicksPerSec, s.GoroutinePeakTicksPerSec, s.ThroughputRatio,
		s.SchedulerP99AtMaxMs, s.GoroutineP99AtMaxMs)
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tnbench: "+format+"\n", args...)
	os.Exit(1)
}
