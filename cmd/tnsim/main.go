// Command tnsim runs one recurrent network on a chosen engine and reports
// activity, SOPS, power, and efficiency — a quick-look tool for exploring
// the operating space.
//
// Usage:
//
//	tnsim [-engine chip|compass] [-grid N] [-rate Hz] [-syn N] [-ticks N]
//	      [-voltage V] [-tickrate Hz] [-workers N] [-stochastic]
//	      [-outputs N] [-spikes-out FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	// Engine expressions self-register with the sim engine registry.
	_ "truenorth/internal/chip"
	_ "truenorth/internal/compass"
	"truenorth/internal/core"
	"truenorth/internal/diag"
	"truenorth/internal/energy"
	"truenorth/internal/experiments"
	"truenorth/internal/model"
	"truenorth/internal/modelcheck"
	"truenorth/internal/netgen"
	"truenorth/internal/router"
	"truenorth/internal/sim"
	"truenorth/internal/spikeio"
)

func main() {
	engine := flag.String("engine", "compass", "engine: "+strings.Join(sim.EngineNames(), "|"))
	grid := flag.Int("grid", 16, "core grid edge (64 = full TrueNorth chip)")
	rate := flag.Float64("rate", 20, "target mean firing rate (Hz)")
	syn := flag.Int("syn", 128, "active synapses per neuron (0-256)")
	outputs := flag.Int("outputs", 0, "tap every Nth neuron per core to an external output sink (0 = closed network)")
	spikesOut := flag.String("spikes-out", "", "write output spikes captured during the measured window as an AER stream to this file")
	ticks := flag.Int("ticks", 200, "ticks to simulate")
	warmup := flag.Int("warmup", 50, "settling ticks before measurement")
	voltage := flag.Float64("voltage", 0.75, "supply voltage")
	tickrate := flag.Float64("tickrate", 1000, "operating tick rate (Hz); 1000 = real time")
	workers := flag.Int("workers", 0, "compass workers (0 = GOMAXPROCS)")
	stochastic := flag.Bool("stochastic", false, "enable stochastic threshold jitter")
	seed := flag.Int64("seed", 1, "network seed")
	save := flag.String("save", "", "write the generated model to this file and exit")
	load := flag.String("load", "", "load the model from this file instead of generating one")
	heatmap := flag.Bool("heatmap", false, "print a per-core activity heatmap and utilization summary")
	saveState := flag.String("savestate", "", "write a checkpoint after the run (resume with -loadstate)")
	loadState := flag.String("loadstate", "", "resume from a checkpoint before the run (same model and grid)")
	force := flag.Bool("force", false, "run even when static model verification reports findings")
	flag.Parse()

	mesh := router.Mesh{W: *grid, H: *grid}
	var configs []*core.Config
	var err error
	if *load != "" {
		// Loaded models are verified at read time; the file carries no I/O
		// table, so every axon counts as a potential external input.
		verify := func(mesh router.Mesh, configs []*core.Config) error {
			return modelcheck.Verify(mesh, configs, modelcheck.Options{AssumeExternalInput: true})
		}
		if *force {
			verify = nil
		}
		f, ferr := os.Open(*load)
		if ferr != nil {
			fail(ferr)
		}
		mesh, configs, err = model.ReadModelVerified(f, verify)
		f.Close()
		if err != nil {
			fail(err)
		}
		*grid = mesh.W
	} else {
		configs, err = netgen.Build(netgen.Params{
			Grid: mesh, RateHz: *rate, SynPerNeuron: *syn, Seed: *seed, Stochastic: *stochastic,
			OutputEvery: *outputs,
		})
		if err != nil {
			fail(err)
		}
		if !*force {
			// Generated networks are closed recurrent systems and get the
			// full analysis; tapping outputs opens the system (the tapped
			// neurons' former target axons lose their driver), so tapped
			// networks are verified like loaded models.
			opts := modelcheck.Options{AssumeExternalInput: *outputs > 0}
			if err := modelcheck.Verify(mesh, configs, opts); err != nil {
				fail(fmt.Errorf("%w (rerun with -force to simulate anyway)", err))
			}
		}
	}
	if *save != "" {
		f, ferr := os.Create(*save)
		if ferr != nil {
			fail(ferr)
		}
		if err := model.WriteModel(f, mesh, configs); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("model written to %s (%d cores)\n", *save, mesh.W*mesh.H)
		return
	}
	eng, err := sim.NewEngine(*engine, mesh, configs, sim.WithWorkers(*workers))
	if err != nil {
		fail(err)
	}

	if *loadState != "" {
		ckpt, ok := eng.(model.CheckpointableEngine)
		if !ok {
			fail(fmt.Errorf("engine %q does not support checkpoints", *engine))
		}
		f, ferr := os.Open(*loadState)
		if ferr != nil {
			fail(ferr)
		}
		err = model.ReadCheckpoint(f, ckpt)
		f.Close()
		if err != nil {
			fail(err)
		}
		fmt.Printf("resumed from %s at tick %d\n", *loadState, eng.Tick())
		*warmup = 0 // the checkpoint already carries settled state
	}

	eng.Run(*warmup)
	eng.DrainOutputs() // the recorded stream covers the measured window only
	l := energy.MeasureLoad(eng, *ticks)
	if *spikesOut != "" {
		f, ferr := os.Create(*spikesOut)
		if ferr != nil {
			fail(ferr)
		}
		events := spikeio.FromOutputs(eng.DrainOutputs())
		err = spikeio.Write(f, events)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d output spikes to %s\n", len(events), *spikesOut)
	}
	scaled := experiments.ScaleLoadToChip(l, mesh)
	neurons := float64(*grid * *grid * core.NeuronsPerCore)
	em := energy.TrueNorth()
	if err := em.CheckVoltage(*voltage); err != nil {
		fail(err)
	}

	fmt.Printf("engine:            %s (%dx%d cores, %d neurons)\n", *engine, *grid, *grid, int(neurons))
	fmt.Printf("measured rate:     %.1f Hz (target %.1f)\n", l.Spikes/neurons*1000, *rate)
	if l.Spikes > 0 {
		fmt.Printf("syn events/spike:  %.1f (target %d)\n", l.SynEvents/l.Spikes, *syn)
	}
	fmt.Printf("per full chip at %.0f Hz ticks, %.2f V:\n", *tickrate, *voltage)
	fmt.Printf("  SOPS:            %.2f GSOPS\n", scaled.SOPS(*tickrate)/1e9)
	fmt.Printf("  power:           %.1f mW\n", em.PowerW(scaled, *tickrate, *voltage)*1e3)
	fmt.Printf("  efficiency:      %.1f GSOPS/W\n", em.GSOPSPerWatt(scaled, *tickrate, *voltage))
	fmt.Printf("  max tick rate:   %.2f kHz\n", em.MaxTickHz(scaled, *voltage)/1000)
	fmt.Printf("  active energy:   %.1f pJ/synaptic event\n", em.ActivePJPerSynEvent(scaled, *voltage))
	bd := em.PowerBreakdown(scaled, *tickrate, *voltage)
	fmt.Printf("  power breakdown: passive %.1f + neurons %.1f + synapses %.1f + hops %.1f mW\n",
		bd.PassiveW*1e3, bd.NeuronW*1e3, bd.SynapseW*1e3, bd.HopW*1e3)

	if *saveState != "" {
		ckpt, ok := eng.(model.CheckpointableEngine)
		if !ok {
			fail(fmt.Errorf("engine %q does not support checkpoints", *engine))
		}
		f, ferr := os.Create(*saveState)
		if ferr != nil {
			fail(ferr)
		}
		err = model.WriteCheckpoint(f, ckpt)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("checkpoint written to %s at tick %d\n", *saveState, eng.Tick())
	}

	if *heatmap {
		fmt.Println()
		if err := diag.Heatmap(os.Stdout, eng, diag.SynEvents); err != nil {
			fail(err)
		}
		fmt.Println()
		if err := diag.Summarize(eng).Fprint(os.Stdout); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tnsim:", err)
	os.Exit(1)
}
