// Package truenorth reproduces "Real-time Scalable Cortical Computing at
// 46 Giga-Synaptic OPS/Watt with ~100x Speedup in Time-to-Solution and
// ~100,000x Reduction in Energy-to-Solution" (Cassidy et al., SC 2014): the
// TrueNorth neurosynaptic processor and the Compass parallel simulator —
// two functionally one-to-one expressions of the same event-driven
// neurosynaptic kernel — together with the characterization networks,
// computer-vision applications, energy/performance models, and experiment
// harnesses that regenerate every table and figure of the paper's
// evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-versus-measured
// results. The root bench suite (bench_test.go) has one benchmark per
// table/figure.
package truenorth
