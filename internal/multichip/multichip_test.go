package multichip

import (
	"testing"

	"truenorth/internal/core"
	"truenorth/internal/energy"
	"truenorth/internal/netgen"
	"truenorth/internal/neuron"
)

func TestBoardGeometry(t *testing.T) {
	b := FourByFour()
	if b.Chips() != 16 {
		t.Fatalf("4×4 board has %d chips", b.Chips())
	}
	if got := b.Neurons(); got != 16*1_048_576 {
		t.Fatalf("neurons = %d, want 16M (the paper's '16 million neurons')", got)
	}
	if got := b.Synapses(); got != 16*268_435_456 {
		t.Fatalf("synapses = %d, want 4G (the paper's '4 billion synapses')", got)
	}
	m := b.Mesh()
	if m.W != 256 || m.H != 256 || m.TileW != 64 || m.TileH != 64 {
		t.Fatalf("mesh = %+v", m)
	}
	if FourByOne().Chips() != 4 {
		t.Fatal("4×1 board chip count")
	}
}

func TestBoundaryLinks(t *testing.T) {
	if got := FourByOne().boundaryLinks(); got != 3 {
		t.Fatalf("4×1 board has %d internal boundaries, want 3", got)
	}
	if got := FourByFour().boundaryLinks(); got != 24 {
		t.Fatalf("4×4 board has %d internal boundaries, want 24 (12 vertical + 12 horizontal)", got)
	}
}

func TestUtilization(t *testing.T) {
	b := FourByFour()
	l := DefaultLink()
	if got := b.Utilization(l, 0); got != 0 {
		t.Fatalf("zero traffic utilization = %f", got)
	}
	full := float64(b.boundaryLinks()) * l.PacketsPerTick
	if got := b.Utilization(l, full); got != 1 {
		t.Fatalf("saturating traffic utilization = %f, want 1", got)
	}
	single := Board{ChipsX: 1, ChipsY: 1, TileW: 64, TileH: 64}
	if got := single.Utilization(l, 100); got != 0 {
		t.Fatalf("single-chip board utilization = %f, want 0 (no links)", got)
	}
}

func TestCrossChipSpikeOnSmallBoard(t *testing.T) {
	// A 2×1 board of 4×4-core tiles; a relay crosses the chip boundary.
	b := Board{ChipsX: 2, ChipsY: 1, TileW: 4, TileH: 4}
	configs := make([]*core.Config, b.Mesh().W*b.Mesh().H)
	src := core.InertConfig()
	src.Synapses[0].Set(0)
	src.Neurons[0] = neuron.Identity()
	src.Targets[0] = core.Target{Valid: true, DX: 6, Axon: 0, Delay: 1}
	configs[0] = src
	dst := core.InertConfig()
	dst.Synapses[0].Set(0)
	dst.Neurons[0] = neuron.Identity()
	dst.Targets[0] = core.Target{Valid: true, Output: true, OutputID: 9}
	configs[6] = dst
	m, err := b.New(configs)
	if err != nil {
		t.Fatal(err)
	}
	m.Inject(0, 0, 0, 0)
	m.Run(3)
	out := m.DrainOutputs()
	if len(out) != 1 || out[0].ID != 9 {
		t.Fatalf("cross-chip relay outputs = %v", out)
	}
	if got := m.NoC().Crossings; got != 1 {
		t.Fatalf("crossings = %d, want 1 merge/split traversal", got)
	}
}

func TestBoardNewValidation(t *testing.T) {
	b := Board{ChipsX: 0, ChipsY: 1, TileW: 4, TileH: 4}
	if _, err := b.New(nil); err == nil {
		t.Fatal("zero-chip board accepted")
	}
}

func TestSixteenChipBoardPower(t *testing.T) {
	// Section VII-C: "Total board power, while running a 16M neuron
	// network at real time is 7.2W, divided 2.5W and 4.7W between the
	// TrueNorth array operating at 1.0V and the supporting logic."
	p := DefaultPower()
	b := FourByFour()
	load := p.Chip.SyntheticLoad(20, 128) // per chip
	got := p.BoardPowerW(b, load, 1000, 1.0)
	if got < 5.5 || got > 9.0 {
		t.Fatalf("4×4 board power = %.2f W, want ≈7.2 W", got)
	}
	array := got - p.SupportW
	if array < 1.5 || array > 4.0 {
		t.Fatalf("array power = %.2f W, want ≈2.5 W", array)
	}
}

func TestSectionVIISystems(t *testing.T) {
	systems := SectionVIISystems()
	if len(systems) != 3 {
		t.Fatalf("%d projected systems, want 3", len(systems))
	}
	rack := systems[2]
	if rack.Chips != 4096 {
		t.Fatalf("rack chips = %d, want 4096", rack.Chips)
	}
	if rack.Synapses != int64(4096)*268_435_456 {
		t.Fatalf("rack synapses = %d, want ≈1 trillion", rack.Synapses)
	}
	if rack.Synapses < 1_000_000_000_000 {
		t.Fatalf("rack synapses = %d, want ≥1e12 (the paper's 'one trillion synapses')", rack.Synapses)
	}
	if rack.EnergyGain != 128000 {
		t.Fatalf("rack energy gain = %.0f, want 128,000×", rack.EnergyGain)
	}
	if systems[1].EnergyGain != 6400 {
		t.Fatalf("rat-scale energy gain = %.0f, want 6,400×", systems[1].EnergyGain)
	}
}

func TestProjectedRackPowerWithinBudget(t *testing.T) {
	// The 4,096-chip rack must land near (and not wildly above) the 4 kW
	// budget with its ~300 W of TrueNorth silicon.
	p := DefaultPower()
	rack := SectionVIISystems()[2]
	load := p.Chip.SyntheticLoad(20, 128)
	got := p.ProjectedPowerW(rack, load, 1000, 0.75)
	if got > rack.BudgetW {
		t.Fatalf("projected rack power %.0f W exceeds the %.0f W budget", got, rack.BudgetW)
	}
	silicon := float64(rack.Chips) * p.Chip.PowerW(load, 1000, 0.75)
	if silicon < 150 || silicon > 500 {
		t.Fatalf("rack silicon power = %.0f W, want ≈300 W (the paper's '~300 Watts attributed to TrueNorth processors')", silicon)
	}
}

func TestBoardWideRecurrentNetwork(t *testing.T) {
	// A recurrent network spanning a 2×2 board of 6×6-core chips: spikes
	// cross chip boundaries through the merge/split blocks natively, and
	// the links stay far from saturation at realistic rates — the paper's
	// "native multi-chip communication" demonstration scaled down.
	b := Board{ChipsX: 2, ChipsY: 2, TileW: 6, TileH: 6}
	mesh := b.Mesh()
	configs, err := netgen.Build(netgen.Params{Grid: mesh, RateHz: 50, SynPerNeuron: 64, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	m, err := b.New(configs)
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 200
	m.Run(ticks)
	noc := m.NoC()
	if noc.Crossings == 0 {
		t.Fatal("no chip-boundary crossings on a board-spanning network")
	}
	// Uniform random targets: roughly half of all packets cross at least
	// one boundary on a 2×2 board.
	crossFrac := float64(noc.Crossings) / float64(noc.RoutedSpikes)
	if crossFrac < 0.3 || crossFrac > 1.5 {
		t.Fatalf("crossings per packet = %.2f, want ≈0.5-1", crossFrac)
	}
	util := b.Utilization(DefaultLink(), float64(noc.Crossings)/ticks)
	if util <= 0 || util >= 0.5 {
		t.Fatalf("link utilization %.4f, want positive and far from saturation", util)
	}
}

func TestEnergyLoadScalesWithChips(t *testing.T) {
	one := energy.TrueNorth()
	sixteen := one.Scaled(16)
	l1 := one.SyntheticLoad(20, 128)
	l16 := sixteen.SyntheticLoad(20, 128)
	if l16.SynEvents != 16*l1.SynEvents {
		t.Fatalf("synaptic events did not scale: %g vs %g", l16.SynEvents, l1.SynEvents)
	}
}
