// Package multichip models tiled TrueNorth arrays (Sections III-C and
// VII): "individual chips also tile in 2D, with the routing network
// extending across chip boundaries through peripheral merge and split
// blocks", with no auxiliary communication circuitry. The paper
// demonstrates a 4×1 board, a 4×4 board (16 million neurons, 4 billion
// synapses, 7.2 W total), and projects quarter-rack, rack, and
// "human-scale" systems built from the same tiling.
//
// A board is simply a larger mesh whose tiles are chips; the chip engine
// already routes across tile boundaries and counts merge/split crossings.
// This package adds the board constructors, the inter-chip link capacity
// model (merge/split blocks serialize packets onto shared pins), and the
// board/rack power model used by the Section VII projections.
package multichip

import (
	"fmt"

	"truenorth/internal/chip"
	"truenorth/internal/core"
	"truenorth/internal/energy"
	"truenorth/internal/router"
)

// Board describes a tiled array of TrueNorth chips.
type Board struct {
	// ChipsX, ChipsY is the array arrangement.
	ChipsX, ChipsY int
	// TileW, TileH are the per-chip core dimensions (64×64 for real
	// silicon; tests use smaller tiles).
	TileW, TileH int
}

// FourByOne is the paper's 4×1 array board (Fig. 1g, Section VII-B).
func FourByOne() Board { return Board{ChipsX: 4, ChipsY: 1, TileW: chip.GridW, TileH: chip.GridH} }

// FourByFour is the paper's 4×4 array board (Fig. 9, Section VII-C):
// 16 million neurons and 4 billion synapses.
func FourByFour() Board { return Board{ChipsX: 4, ChipsY: 4, TileW: chip.GridW, TileH: chip.GridH} }

// Chips returns the chip count.
func (b Board) Chips() int { return b.ChipsX * b.ChipsY }

// Mesh returns the board's global core mesh.
func (b Board) Mesh() router.Mesh {
	return router.Mesh{
		W: b.ChipsX * b.TileW, H: b.ChipsY * b.TileH,
		TileW: b.TileW, TileH: b.TileH,
	}
}

// Neurons returns the total neuron count.
func (b Board) Neurons() int {
	return b.Chips() * b.TileW * b.TileH * core.NeuronsPerCore
}

// Synapses returns the total synapse count.
func (b Board) Synapses() int {
	return b.Chips() * b.TileW * b.TileH * core.NeuronsPerCore * core.AxonsPerCore
}

// New builds the functional model of the board: configs are row-major over
// the global core grid (nil entries unpopulated).
func (b Board) New(configs []*core.Config) (*chip.Model, error) {
	if b.ChipsX <= 0 || b.ChipsY <= 0 || b.TileW <= 0 || b.TileH <= 0 {
		return nil, fmt.Errorf("multichip: invalid board %+v", b)
	}
	return chip.New(b.Mesh(), configs)
}

// LinkModel captures the merge/split serialization constraint: packets
// leaving a chip edge share one physical link ("packets leaving the mesh
// are tagged with their row before being merged onto a shared link").
type LinkModel struct {
	// PacketsPerTick is the per-link, per-direction capacity in spike
	// packets per 1 kHz tick.
	PacketsPerTick float64
}

// DefaultLink returns the nominal inter-chip link capacity. The
// asynchronous peripheral bus carries tens of thousands of packets per
// millisecond tick.
func DefaultLink() LinkModel { return LinkModel{PacketsPerTick: 20000} }

// boundaryLinks counts the physical chip-boundary links on the board
// (internal edges only; each edge is a pair of opposing links).
func (b Board) boundaryLinks() int {
	return (b.ChipsX-1)*b.ChipsY + (b.ChipsY-1)*b.ChipsX
}

// Utilization returns the mean fraction of inter-chip link capacity used
// by the measured crossing rate (crossings per tick spread over the
// board's boundary links). Values near or above 1 indicate the merge/split
// blocks are saturated and the board cannot sustain real time.
func (b Board) Utilization(l LinkModel, crossingsPerTick float64) float64 {
	links := b.boundaryLinks()
	if links == 0 || l.PacketsPerTick == 0 {
		return 0
	}
	return crossingsPerTick / (float64(links) * l.PacketsPerTick)
}

// PowerModel is the board/system power decomposition of Section VII.
type PowerModel struct {
	// Chip is the per-chip silicon model.
	Chip energy.Model
	// SupportW is the fixed support-logic power per board (FPGAs, network
	// interface): the 4×4 board dissipates 4.7 W of support against 2.5 W
	// of TrueNorth array power.
	SupportW float64
}

// DefaultPower returns the Section VII board power model.
func DefaultPower() PowerModel {
	return PowerModel{Chip: energy.TrueNorth(), SupportW: 4.7}
}

// BoardPowerW returns total board power for a per-chip load at the given
// tick rate and supply voltage (the paper ran the 4×4 board at 1.0 V).
func (p PowerModel) BoardPowerW(b Board, perChipLoad energy.Load, tickHz, volts float64) float64 {
	return float64(b.Chips())*p.Chip.PowerW(perChipLoad, tickHz, volts) + p.SupportW
}

// SystemSpec is one of the Section VII large-scale system projections.
type SystemSpec struct {
	Name       string
	Chips      int
	BudgetW    float64 // the paper's stated power budget
	Neurons    int64
	Synapses   int64
	Replicates string  // the prior simulation this system would replicate
	EnergyGain float64 // the paper's claimed energy reduction vs. that simulation
}

// SectionVIISystems returns the paper's projected systems: the 16-chip
// board, the quarter-rack backplane ("rat-scale", 6,400× less energy than
// 32 racks of Blue Gene/L), and the 4,096-chip rack ("1% human-scale",
// 128,000× less energy than 16 racks of Blue Gene/P).
func SectionVIISystems() []SystemSpec {
	const perChipNeurons = int64(chip.NeuronsPerChip)
	const perChipSynapses = int64(chip.SynapsesPerChip)
	mk := func(name string, chips int, budget float64, repl string, gain float64) SystemSpec {
		return SystemSpec{
			Name: name, Chips: chips, BudgetW: budget,
			Neurons:    int64(chips) * perChipNeurons,
			Synapses:   int64(chips) * perChipSynapses,
			Replicates: repl, EnergyGain: gain,
		}
	}
	return []SystemSpec{
		mk("4x4 board", 16, 10, "", 0),
		mk("quarter-rack (rat-scale)", 1024, 1000, "32 racks Blue Gene/L (10x slower than real time)", 6400),
		mk("rack (1% human-scale)", 4096, 4000, "16 racks Blue Gene/P (400x slower than real time)", 128000),
	}
}

// ProjectedPowerW estimates a system's power from the chip model plus
// per-board support overhead, for comparison against the paper's budget.
func (p PowerModel) ProjectedPowerW(s SystemSpec, perChipLoad energy.Load, tickHz, volts float64) float64 {
	boards := (s.Chips + 15) / 16
	return float64(s.Chips)*p.Chip.PowerW(perChipLoad, tickHz, volts) + float64(boards)*p.SupportW
}
