package modelcheck

import (
	"fmt"

	"truenorth/internal/core"
	"truenorth/internal/router"
)

// nocLoadCheck bounds worst-case per-tick NoC traffic without simulating:
// every neuron that can fire (per the interval analysis) is assumed to
// emit one packet per tick, and its packet is walked along the
// dimension-order route, accumulating per-directed-link loads, hop totals
// (the paper's mean-hop-distance characterization axis), and chip-boundary
// merge/split crossings. With a configured per-link capacity, overloaded
// links become warnings; the aggregate summary always lands in the report.
//
// With fault-disabled cores present, hop and crossing totals follow the
// detour routes, but per-link attribution is skipped (detour paths are an
// engine implementation detail); the summary still bounds total traffic.
func nocLoadCheck() *Check {
	return &Check{
		Name: "nocload",
		Doc:  "worst-case per-link packet loads along DOR routes, mean hop distance, and tile-boundary crossing pressure",
		Run: func(m *Model, report func(Diagnostic)) {
			var s NoCSummary
			dead := m.deadFunc()
			// Directed link loads: for each core, one counter per exit
			// direction (+x, -x, +y, -y).
			dirs := [4]router.Point{{X: 1}, {X: -1}, {Y: 1}, {Y: -1}}
			links := make([][4]int32, m.Mesh.W*m.Mesh.H)

			m.eachLive(func(p router.Point, idx int, cfg *core.Config) {
				iv := m.neuronIntervals(idx, cfg)
				for j := range cfg.Targets {
					t := cfg.Targets[j]
					if !t.Valid || t.Output || !iv[j].canFire {
						continue
					}
					dst := p.Add(int(t.DX), int(t.DY))
					if !m.Mesh.Contains(dst) || !m.live(dst) {
						continue // routability's findings; nothing is delivered
					}
					s.Packets++
					if dead != nil {
						r := m.Mesh.RouteAvoiding(p, dst, dead)
						if r.OK {
							s.Hops += int64(r.Hops)
							s.Crossings += int64(r.Crossings)
						}
						continue
					}
					// Walk the x-then-y DOR path, loading each directed link.
					cur := p
					for cur != dst {
						var step router.Point
						if cur.X != dst.X {
							step = dirs[0]
							if dst.X < cur.X {
								step = dirs[1]
							}
						} else {
							step = dirs[2]
							if dst.Y < cur.Y {
								step = dirs[3]
							}
						}
						di := 0
						for k, d := range dirs {
							if d == step {
								di = k
							}
						}
						links[cur.Y*m.Mesh.W+cur.X][di]++
						next := router.Point{X: cur.X + step.X, Y: cur.Y + step.Y}
						s.Hops++
						if m.Mesh.TileW > 0 && m.Mesh.TileH > 0 && m.Mesh.ChipOf(cur) != m.Mesh.ChipOf(next) {
							s.Crossings++
						}
						cur = next
					}
				}
			})

			// Scan links in deterministic order for the hotspot and any
			// over-capacity warnings.
			for i := range links {
				from := router.Point{X: i % m.Mesh.W, Y: i / m.Mesh.W}
				for di, load := range links[i] {
					if load == 0 {
						continue
					}
					to := router.Point{X: from.X + dirs[di].X, Y: from.Y + dirs[di].Y}
					if int(load) > s.MaxLinkLoad {
						s.MaxLinkLoad = int(load)
						s.MaxLinkFrom, s.MaxLinkTo = from, to
					}
					if m.Opts.LinkCapacity > 0 && int(load) > m.Opts.LinkCapacity {
						s.SaturatedLinks++
						report(Diagnostic{
							Check: "nocload", Severity: Warning, Core: from, Neuron: -1, Axon: -1,
							Message: fmt.Sprintf("worst-case load %d packets/tick on link %v->%v exceeds the configured capacity %d", load, from, to, m.Opts.LinkCapacity),
						})
					}
				}
			}
			if s.Packets > 0 {
				s.MeanHops = float64(s.Hops) / float64(s.Packets)
			}
			m.noc = s
		},
	}
}
