package modelcheck

import (
	"fmt"

	"truenorth/internal/core"
	"truenorth/internal/neuron"
	"truenorth/internal/router"
)

// This file implements the potential-interval analysis: an abstract
// interpretation of the neuron datapath (integrate → leak → threshold/fire
// → negative threshold → 20-bit clamp) over the interval domain. For each
// neuron it computes a sound over-approximation of the set of membrane
// potentials reachable under ANY input spike pattern, by iterating the
// interval transfer function to a fixpoint. Because the result is an
// over-approximation, "can never fire" and "always fires" verdicts are
// proofs; the saturation verdict is a may-warning (see DESIGN.md).

const (
	vMax = int64(neuron.VMax)
	vMin = int64(neuron.VMin)
)

func clamp64(v int64) int64 {
	if v > vMax {
		return vMax
	}
	if v < vMin {
		return vMin
	}
	return v
}

// neuronDrive aggregates, for one neuron, the per-tick synaptic drive
// bounds and fan-in counts derived from the crossbar, axon types, and the
// driven-axon map. Each axon delivers at most one event per tick (the
// delay ring merges same-tick arrivals), so the bounds are sums over
// driven connected axons of each event's best/worst contribution.
type neuronDrive struct {
	maxDrive int64 // ≥ 0: sum of best-case event contributions
	minDrive int64 // ≤ 0: sum of worst-case event contributions
	// conn counts connected axons by type; drivenConn those that can
	// also receive events.
	conn       [neuron.NumAxonTypes]int32
	drivenConn [neuron.NumAxonTypes]int32
	connTotal  int32
}

// coreDrives computes (and memoizes) the per-neuron drive aggregates for
// the core at slot idx.
func (m *Model) coreDrives(idx int, cfg *core.Config) *[core.NeuronsPerCore]neuronDrive {
	if d, ok := m.drives[idx]; ok {
		return d
	}
	d := new([core.NeuronsPerCore]neuronDrive)
	for a := 0; a < core.AxonsPerCore; a++ {
		g := cfg.AxonType[a]
		driven := m.driven[idx].Get(a) || m.Opts.AssumeExternalInput
		cfg.Synapses[a].ForEach(func(j int) {
			nd := &d[j]
			nd.conn[g]++
			nd.connTotal++
			if !driven {
				return
			}
			nd.drivenConn[g]++
			p := &cfg.Neurons[j]
			w := int64(p.Weights[g])
			if p.StochSyn[g] {
				// Stochastic synapse: each event adds sign(w) with
				// probability |w|/256 — a unit step at most.
				if w > 0 {
					nd.maxDrive++
				} else if w < 0 {
					nd.minDrive--
				}
				return
			}
			if w > 0 {
				nd.maxDrive += w
			} else {
				nd.minDrive += w
			}
		})
	}
	m.drives[idx] = d
	return d
}

// vInterval is the fixpoint result for one neuron.
type vInterval struct {
	// lo, hi bound the post-tick membrane potential.
	lo, hi int64
	// checkLo, checkHi bound the pre-threshold (post-integrate, post-leak)
	// potential at the fixpoint — the value the threshold comparison sees.
	checkLo, checkHi int64
	// canFire: some reachable check potential meets the minimum effective
	// threshold. Its negation is a proof the neuron never fires.
	canFire bool
	// alwaysFires: every reachable check potential meets the maximum
	// effective threshold — the neuron fires every tick regardless of
	// input.
	alwaysFires bool
	// satHi, satLo: the worst-case drive pushes the pre-clamp potential
	// past the ±2^19 rails (intended dynamics clipped by the hardware).
	satHi, satLo bool
	// widened: the fixpoint iteration hit its pass budget and the interval
	// was widened to the rails; saturation verdicts are unreliable and
	// suppressed for this neuron.
	widened bool
}

// leakBounds returns a sound per-tick bound on the leak contribution.
func leakBounds(p *neuron.Params) (lo, hi int64) {
	l := int64(p.Leak)
	if p.StochLeak {
		// Unit step with probability |leak|/256 (sign tracks v under
		// LeakReversal, so reversal widens to both directions).
		switch {
		case l == 0:
			return 0, 0
		case p.LeakReversal:
			return -1, 1
		case l > 0:
			return 0, 1
		default:
			return -1, 0
		}
	}
	if p.LeakReversal {
		// Effective leak is ±Leak depending on sign(v); decay stops at
		// zero, which only shrinks the step — [-|l|, |l|] covers it.
		if l < 0 {
			return l, -l
		}
		return -l, l
	}
	return l, l
}

// analyzeNeuron iterates the interval transfer function for one neuron to
// a fixpoint. The iteration only ever grows the interval and terminates
// when the transfer adds nothing new, so the result is a post-fixpoint
// containing every reachable potential; linear-regime jumps and the
// widening fallback inflate intermediate iterates, which keeps the result
// sound (Tarski: any A with F(A) ⊆ A contains the least fixpoint).
func analyzeNeuron(p *neuron.Params, initV int64, d *neuronDrive) vInterval {
	leakLo, leakHi := leakBounds(p)
	thMin := int64(p.Threshold)
	thMax := thMin
	if p.ThresholdMask != 0 {
		thMax += int64(p.ThresholdMask & 0xFF)
	}
	floor := -int64(p.NegThreshold)
	resetV := int64(p.ResetV)
	loGain := d.minDrive + leakLo // per-tick worst-case downward drift
	hiGain := d.maxDrive + leakHi // per-tick best-case upward drift
	loStop := floor
	if loStop < vMin {
		loStop = vMin
	}

	lo, hi := initV, initV
	var r vInterval
	const maxPasses = 512
	for pass := 0; ; pass++ {
		lo1 := clamp64(lo + loGain)
		hi1 := clamp64(hi + hiGain)
		canFire := hi1 >= thMin
		mustFire := lo1 >= thMax

		// Split on the fire decision and join the branch results.
		first := true
		var blo, bhi int64
		add := func(l, h int64) {
			if first {
				blo, bhi, first = l, h, false
				return
			}
			if l < blo {
				blo = l
			}
			if h > bhi {
				bhi = h
			}
		}
		if !mustFire {
			nfHi := hi1
			if thMax-1 < nfHi {
				nfHi = thMax - 1
			}
			add(lo1, nfHi)
		}
		if canFire {
			switch p.Reset {
			case neuron.ResetToV:
				add(resetV, resetV)
			case neuron.ResetSubtract:
				// Fired means v ≥ drawn threshold, and the same drawn
				// threshold is subtracted: the result is in [0, hi1-thMin].
				add(0, hi1-thMin)
			case neuron.ResetNone:
				fl := lo1
				if thMin > fl {
					fl = thMin
				}
				add(fl, hi1)
			}
		}

		// Negative-threshold mapping: values below -β saturate there or
		// reset to -R.
		if blo < floor {
			if p.NegSaturate {
				blo = floor
				if bhi < floor {
					bhi = floor
				}
			} else {
				nr := -resetV
				if bhi < floor {
					blo, bhi = nr, nr
				} else {
					blo = floor
					if nr < blo {
						blo = nr
					}
					if nr > bhi {
						bhi = nr
					}
				}
			}
		}
		blo, bhi = clamp64(blo), clamp64(bhi)

		nlo, nhi := lo, hi
		if blo < nlo {
			nlo = blo
		}
		if bhi > nhi {
			nhi = bhi
		}
		if nlo == lo && nhi == hi {
			// Fixpoint: F([lo,hi]) ⊆ [lo,hi]. Record verdicts from this
			// final evaluation.
			r.lo, r.hi = lo, hi
			r.checkLo, r.checkHi = lo1, hi1
			r.canFire = canFire
			r.alwaysFires = mustFire
			r.satHi = hi+hiGain > vMax
			r.satLo = lo+loGain < vMin
			return r
		}
		lo, hi = nlo, nhi

		if pass >= maxPasses {
			// Widening fallback: jump to the rails and converge there.
			// Sound but imprecise; saturation verdicts are suppressed.
			r.widened = true
			lo, hi = vMin, vMax
			continue
		}

		// Acceleration: in linear regimes (climbing toward threshold, or
		// an unbounded reset-none climb; drifting down toward the negative
		// floor) the transfer moves the bounds by a constant per pass.
		// Jump several passes at once; over-jumping only inflates the
		// iterate, which stays sound.
		const noJump = int64(1 << 62)
		khi, klo := noJump, noJump
		if hiGain > 0 && hi1 < thMin {
			khi = (thMin - hi1 + hiGain - 1) / hiGain
		} else if hiGain > 0 && canFire && p.Reset == neuron.ResetNone && hi1 < vMax {
			khi = (vMax - hi1 + hiGain - 1) / hiGain
		}
		if !mustFire && loGain < 0 && lo1 > loStop {
			klo = (lo1 - loStop + (-loGain) - 1) / (-loGain)
		}
		// The two bounds' recurrences are independent (each transfer output
		// bound is a function of the same input bound), so each side jumps
		// only while ITS regime is linear; over-jumping by a step merely
		// inflates the iterate.
		if khi != noJump && khi > 1 {
			hi = clamp64(hi + khi*hiGain)
		}
		if klo != noJump && klo > 1 {
			lo = clamp64(lo + klo*loGain)
		}
	}
}

// neuronIntervals computes (and memoizes) the interval results for every
// neuron of the core at slot idx.
func (m *Model) neuronIntervals(idx int, cfg *core.Config) *[core.NeuronsPerCore]vInterval {
	if iv, ok := m.intervals[idx]; ok {
		return iv
	}
	d := m.coreDrives(idx, cfg)
	iv := new([core.NeuronsPerCore]vInterval)
	for j := range cfg.Neurons {
		iv[j] = analyzeNeuron(&cfg.Neurons[j], int64(cfg.InitV[j]), &d[j])
	}
	m.intervals[idx] = iv
	return iv
}

// potentialCheck is the interval-analysis front end: it turns fixpoint
// verdicts into diagnostics.
func potentialCheck() *Check {
	return &Check{
		Name: "potential",
		Doc:  "abstract interpretation of the membrane datapath: neurons that can never fire, fire every tick, or clip at the ±2^19 saturation rails",
		Run: func(m *Model, report func(Diagnostic)) {
			m.eachLive(func(p router.Point, idx int, cfg *core.Config) {
				iv := m.neuronIntervals(idx, cfg)
				d := m.coreDrives(idx, cfg)
				for j := range cfg.Neurons {
					r := &iv[j]
					t := cfg.Targets[j]
					if t.Valid && !r.canFire {
						report(Diagnostic{
							Check: "potential", Severity: Warning, Core: p, Neuron: j, Axon: -1,
							Message: fmt.Sprintf("neuron can never reach threshold %d: membrane potential is bounded to [%d,%d]", cfg.Neurons[j].Threshold, r.checkLo, r.checkHi),
						})
					}
					if t.Valid && r.alwaysFires {
						report(Diagnostic{
							Check: "potential", Severity: Warning, Core: p, Neuron: j, Axon: -1,
							Message: fmt.Sprintf("neuron fires every tick regardless of input: check potential never drops below the maximum effective threshold %d", thMaxOf(&cfg.Neurons[j])),
						})
					}
					if !r.widened && (t.Valid || d[j].connTotal > 0) {
						if r.satHi {
							report(Diagnostic{
								Check: "potential", Severity: Warning, Core: p, Neuron: j, Axon: -1,
								Message: fmt.Sprintf("worst-case drive pushes the potential past the +%d saturation rail: intended dynamics are clipped", neuron.VMax),
							})
						}
						if r.satLo {
							report(Diagnostic{
								Check: "potential", Severity: Warning, Core: p, Neuron: j, Axon: -1,
								Message: fmt.Sprintf("worst-case drive pushes the potential past the %d saturation rail: intended dynamics are clipped", neuron.VMin),
							})
						}
					}
				}
			})
		},
	}
}

// thMaxOf returns the maximum effective threshold (base plus jitter mask).
func thMaxOf(p *neuron.Params) int64 {
	th := int64(p.Threshold)
	if p.ThresholdMask != 0 {
		th += int64(p.ThresholdMask & 0xFF)
	}
	return th
}
