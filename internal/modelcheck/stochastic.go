package modelcheck

import (
	"fmt"

	"truenorth/internal/core"
	"truenorth/internal/neuron"
	"truenorth/internal/router"
)

// stochasticCheck flags PRNG-consuming neuron modes whose draws can never
// be exercised or can never have an effect. These are not miscomputations
// — the engines execute them deterministically — but they waste per-tick
// work, defeat the event-driven fast path, and silently perturb the core's
// PRNG stream, so edits that merely *touch* such a mode change every
// stochastic result downstream on that core.
func stochasticCheck() *Check {
	return &Check{
		Name: "stochastic",
		Doc:  "stochastic synapse/leak/threshold modes configured where their PRNG draws can never be exercised or never have an effect",
		Run: func(m *Model, report func(Diagnostic)) {
			m.eachLive(func(p router.Point, idx int, cfg *core.Config) {
				d := m.coreDrives(idx, cfg)
				for j := range cfg.Neurons {
					np := &cfg.Neurons[j]
					for g := 0; g < neuron.NumAxonTypes; g++ {
						if !np.StochSyn[g] {
							continue
						}
						switch {
						case d[j].conn[g] == 0:
							report(Diagnostic{
								Check: "stochastic", Severity: Warning, Core: p, Neuron: j, Axon: -1,
								Message: fmt.Sprintf("stochastic synapse mode on axon type %d but no connected axon of that type: the mode can never be exercised", g),
							})
						case d[j].drivenConn[g] == 0:
							report(Diagnostic{
								Check: "stochastic", Severity: Warning, Core: p, Neuron: j, Axon: -1,
								Message: fmt.Sprintf("stochastic synapse mode on axon type %d but no connected axon of that type ever receives spikes", g),
							})
						case np.Weights[g] == 0:
							report(Diagnostic{
								Check: "stochastic", Severity: Warning, Core: p, Neuron: j, Axon: -1,
								Message: fmt.Sprintf("stochastic synapse mode on axon type %d with zero weight: every event consumes a PRNG draw to no effect", g),
							})
						}
					}
					if np.StochLeak && np.Leak == 0 {
						report(Diagnostic{
							Check: "stochastic", Severity: Warning, Core: p, Neuron: j, Axon: -1,
							Message: "stochastic leak with zero leak: one PRNG draw per tick to no effect",
						})
					}
					if np.ThresholdMask != 0 && np.ThresholdMask&0xFF == 0 {
						report(Diagnostic{
							Check: "stochastic", Severity: Warning, Core: p, Neuron: j, Axon: -1,
							Message: fmt.Sprintf("threshold mask %#x has no low 8 bits: one PRNG draw per tick with jitter always zero", np.ThresholdMask),
						})
					}
				}
			})
		},
	}
}
