package modelcheck

import (
	"fmt"

	"truenorth/internal/core"
	"truenorth/internal/router"
)

// routabilityCheck walks every neuron target against the mesh, the
// populated-core map, and the fault set. Engines silently drop spikes that
// exit the board or address an absent or disabled core (chip.Model.route
// counts them in NoCStats.Dropped); statically these are Errors — the
// model cannot run as intended.
func routabilityCheck() *Check {
	return &Check{
		Name: "routability",
		Doc:  "every spike target must land on a populated, enabled core via a realizable route; off-board and dropped-spike targets are errors",
		Run: func(m *Model, report func(Diagnostic)) {
			dead := m.deadFunc()
			m.eachLive(func(p router.Point, _ int, cfg *core.Config) {
				for j := range cfg.Targets {
					t := cfg.Targets[j]
					if !t.Valid || t.Output {
						continue
					}
					if t.Delay < core.MinDelay || t.Delay > core.MaxDelay {
						report(Diagnostic{
							Check: "routability", Severity: Error, Core: p, Neuron: j, Axon: -1,
							Message: fmt.Sprintf("target delay %d out of range [%d,%d]", t.Delay, core.MinDelay, core.MaxDelay),
						})
					}
					dst := p.Add(int(t.DX), int(t.DY))
					switch {
					case !m.Mesh.Contains(dst):
						report(Diagnostic{
							Check: "routability", Severity: Error, Core: p, Neuron: j, Axon: -1,
							Message: fmt.Sprintf("target Δ(%+d,%+d) exits the %dx%d mesh at %v: spike would leave the board", t.DX, t.DY, m.Mesh.W, m.Mesh.H, dst),
						})
					case m.at(dst.X, dst.Y) == nil:
						report(Diagnostic{
							Check: "routability", Severity: Error, Core: p, Neuron: j, Axon: -1,
							Message: fmt.Sprintf("target core %v is unpopulated: spike would be dropped", dst),
						})
					case m.dead[dst]:
						report(Diagnostic{
							Check: "routability", Severity: Error, Core: p, Neuron: j, Axon: -1,
							Message: fmt.Sprintf("target core %v is fault-disabled: spike would be dropped", dst),
						})
					case dead != nil:
						if r := m.Mesh.RouteAvoiding(p, dst, dead); !r.OK {
							report(Diagnostic{
								Check: "routability", Severity: Error, Core: p, Neuron: j, Axon: -1,
								Message: fmt.Sprintf("no route from %v to %v around the fault-disabled cores", p, dst),
							})
						}
					}
				}
			})
		},
	}
}
