package modelcheck

import (
	"fmt"
	"sort"

	"truenorth/internal/core"
	"truenorth/internal/router"
)

// reachabilityCheck builds the core-level spike graph and flags structural
// dead ends: axons that receive spikes but connect to nothing, connected
// axons nothing ever drives, neurons that can fire but have no configured
// target, and colliding external output ids.
func reachabilityCheck() *Check {
	return &Check{
		Name: "reachability",
		Doc:  "spike-graph dead ends: driven axons with empty crossbar rows, connected axons nothing drives, firing neurons without targets, output-id collisions",
		Run: func(m *Model, report func(Diagnostic)) {
			type outRef struct {
				core   router.Point
				neuron int
			}
			outputs := map[int32][]outRef{}
			var outIDs []int32

			m.eachLive(func(p router.Point, idx int, cfg *core.Config) {
				// Axon-level structure. A core whose crossbar is entirely
				// empty is a pure traffic sink by design (the netgen
				// characterization sweep's syn=0 point drives every axon
				// of such cores); the dead-axon finding applies only when
				// the core computes at all.
				anyConnected := false
				for a := 0; a < core.AxonsPerCore; a++ {
					if !cfg.Synapses[a].Empty() {
						anyConnected = true
						break
					}
				}
				for a := 0; a < core.AxonsPerCore; a++ {
					empty := cfg.Synapses[a].Empty()
					driven := m.driven[idx].Get(a)
					if driven && empty && anyConnected {
						report(Diagnostic{
							Check: "reachability", Severity: Warning, Core: p, Neuron: -1, Axon: a,
							Message: "axon receives spikes but has no crossbar connections: every delivery is wasted",
						})
					}
					if !empty && !driven && !m.Opts.AssumeExternalInput {
						report(Diagnostic{
							Check: "reachability", Severity: Warning, Core: p, Neuron: -1, Axon: a,
							Message: "axon has crossbar connections but no neuron or external injection ever drives it",
						})
					}
				}

				// Neuron-level structure.
				iv := m.neuronIntervals(idx, cfg)
				for j := range cfg.Neurons {
					t := cfg.Targets[j]
					if !t.Valid && iv[j].canFire {
						report(Diagnostic{
							Check: "reachability", Severity: Warning, Core: p, Neuron: j, Axon: -1,
							Message: "neuron can fire but has no configured target: spikes are discarded and the core loses its event-driven fast path",
						})
					}
					if t.Valid && t.Output {
						if _, seen := outputs[t.OutputID]; !seen {
							outIDs = append(outIDs, t.OutputID)
						}
						outputs[t.OutputID] = append(outputs[t.OutputID], outRef{core: p, neuron: j})
					}
				}
			})

			// Output-id collisions: engines tag output spikes with the id
			// only, so two producers are indistinguishable downstream.
			sort.Slice(outIDs, func(i, j int) bool { return outIDs[i] < outIDs[j] })
			for _, id := range outIDs {
				refs := outputs[id]
				if len(refs) < 2 {
					continue
				}
				first := refs[0]
				for _, ref := range refs[1:] {
					report(Diagnostic{
						Check: "reachability", Severity: Error, Core: ref.core, Neuron: ref.neuron, Axon: -1,
						Message: fmt.Sprintf("external output id %d collides with core %v neuron %d: the two spike streams are indistinguishable", id, first.core, first.neuron),
					})
				}
			}
		},
	}
}
