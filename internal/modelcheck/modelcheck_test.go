package modelcheck

import (
	"bytes"
	"strings"
	"testing"

	"truenorth/internal/core"
	"truenorth/internal/corelet"
	"truenorth/internal/netgen"
	"truenorth/internal/neuron"
	"truenorth/internal/router"
)

// inertMesh returns a w×h mesh with every slot populated by an inert core:
// the quiet baseline each golden fixture seeds exactly one defect into.
func inertMesh(w, h int) (router.Mesh, []*core.Config) {
	configs := make([]*core.Config, w*h)
	for i := range configs {
		configs[i] = core.InertConfig()
	}
	return router.Mesh{W: w, H: h}, configs
}

// wireIdentity programs neuron j of cfg as an identity relay fed by axon j —
// the canonical provably-fireable neuron — aiming at the given relative
// target. The caller declares axon j as an external input to drive it.
func wireIdentity(cfg *core.Config, j, dx, dy, axon int) {
	cfg.Synapses[j].Set(j)
	cfg.Neurons[j] = neuron.Identity()
	cfg.Targets[j] = core.Target{
		Valid: true, DX: int16(dx), DY: int16(dy),
		Axon: uint8(axon), Delay: core.MinDelay,
	}
}

// analyzeOne runs a single named check over the model.
func analyzeOne(t *testing.T, check string, mesh router.Mesh, configs []*core.Config, opts Options) *Report {
	t.Helper()
	opts.Checks = []string{check}
	rep, err := Analyze(mesh, configs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// wantDiags asserts the report's diagnostics render exactly as want, in
// order — the golden contract for each analysis.
func wantDiags(t *testing.T, rep *Report, want ...string) {
	t.Helper()
	var got []string
	for _, d := range rep.Diags {
		got = append(got, d.String())
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diagnostic %d:\n got %q\nwant %q", i, got[i], want[i])
		}
	}
}

// --- routability fixtures ---

func TestFixtureOffMeshTarget(t *testing.T) {
	mesh, cfgs := inertMesh(2, 2)
	wireIdentity(cfgs[0], 0, 5, 0, 0)
	rep := analyzeOne(t, "routability", mesh, cfgs, Options{ExternalInputs: []AxonRef{{X: 0, Y: 0, Axon: 0}}})
	wantDiags(t, rep,
		"core (0,0) neuron 0: routability: error: target Δ(+5,+0) exits the 2x2 mesh at (5,0): spike would leave the board")
}

func TestFixtureUnpopulatedTarget(t *testing.T) {
	mesh, cfgs := inertMesh(2, 1)
	cfgs[1] = nil
	wireIdentity(cfgs[0], 0, 1, 0, 0)
	rep := analyzeOne(t, "routability", mesh, cfgs, Options{ExternalInputs: []AxonRef{{X: 0, Y: 0, Axon: 0}}})
	wantDiags(t, rep,
		"core (0,0) neuron 0: routability: error: target core (1,0) is unpopulated: spike would be dropped")
}

func TestFixtureFaultDisabledTarget(t *testing.T) {
	mesh, cfgs := inertMesh(2, 1)
	wireIdentity(cfgs[0], 0, 1, 0, 0)
	rep := analyzeOne(t, "routability", mesh, cfgs, Options{
		Dead:           []router.Point{{X: 1, Y: 0}},
		ExternalInputs: []AxonRef{{X: 0, Y: 0, Axon: 0}},
	})
	wantDiags(t, rep,
		"core (0,0) neuron 0: routability: error: target core (1,0) is fault-disabled: spike would be dropped")
}

func TestFixtureNoDetourRoute(t *testing.T) {
	// A 3x1 mesh with its middle core disabled leaves no detour plane:
	// the end-to-end route is unrealizable even though both endpoints live.
	mesh, cfgs := inertMesh(3, 1)
	wireIdentity(cfgs[0], 0, 2, 0, 0)
	rep := analyzeOne(t, "routability", mesh, cfgs, Options{
		Dead:           []router.Point{{X: 1, Y: 0}},
		ExternalInputs: []AxonRef{{X: 0, Y: 0, Axon: 0}},
	})
	wantDiags(t, rep,
		"core (0,0) neuron 0: routability: error: no route from (0,0) to (2,0) around the fault-disabled cores")
}

func TestFixtureBadDelay(t *testing.T) {
	mesh, cfgs := inertMesh(1, 1)
	cfgs[0].Synapses[0].Set(0)
	cfgs[0].Neurons[0] = neuron.Identity()
	cfgs[0].Targets[0] = core.Target{Valid: true, Axon: 1, Delay: 0}
	rep := analyzeOne(t, "routability", mesh, cfgs, Options{ExternalInputs: []AxonRef{{X: 0, Y: 0, Axon: 0}}})
	wantDiags(t, rep,
		"core (0,0) neuron 0: routability: error: target delay 0 out of range [1,15]")
}

// --- reachability fixtures ---

func TestFixtureDeadAxon(t *testing.T) {
	mesh, cfgs := inertMesh(2, 1)
	// (0,0) neuron 0 fires into (1,0) axon 5, whose crossbar row is empty;
	// (1,0) neuron 7 makes that core a computing core (an all-empty crossbar
	// is a sanctioned traffic sink and would not warn).
	wireIdentity(cfgs[0], 0, 1, 0, 5)
	wireIdentity(cfgs[1], 7, -1, 0, 0)
	rep := analyzeOne(t, "reachability", mesh, cfgs, Options{
		ExternalInputs: []AxonRef{{X: 0, Y: 0, Axon: 0}, {X: 1, Y: 0, Axon: 7}},
	})
	wantDiags(t, rep,
		"core (1,0) axon 5: reachability: warning: axon receives spikes but has no crossbar connections: every delivery is wasted")
}

func TestFixtureUndrivenAxon(t *testing.T) {
	mesh, cfgs := inertMesh(1, 1)
	cfgs[0].Synapses[3].Set(9)
	rep := analyzeOne(t, "reachability", mesh, cfgs, Options{})
	wantDiags(t, rep,
		"core (0,0) axon 3: reachability: warning: axon has crossbar connections but no neuron or external injection ever drives it")

	// Declaring the axon an external injection point clears the finding.
	rep = analyzeOne(t, "reachability", mesh, cfgs, Options{ExternalInputs: []AxonRef{{X: 0, Y: 0, Axon: 3}}})
	wantDiags(t, rep)
}

func TestFixtureFiringNeuronWithoutTarget(t *testing.T) {
	mesh, cfgs := inertMesh(1, 1)
	cfgs[0].Synapses[0].Set(0)
	cfgs[0].Neurons[0] = neuron.Identity()
	rep := analyzeOne(t, "reachability", mesh, cfgs, Options{ExternalInputs: []AxonRef{{X: 0, Y: 0, Axon: 0}}})
	wantDiags(t, rep,
		"core (0,0) neuron 0: reachability: warning: neuron can fire but has no configured target: spikes are discarded and the core loses its event-driven fast path")
}

func TestFixtureOutputIDCollision(t *testing.T) {
	mesh, cfgs := inertMesh(2, 1)
	for i, j := range []int{1, 2} {
		cfgs[i].Synapses[j].Set(j)
		cfgs[i].Neurons[j] = neuron.Identity()
		cfgs[i].Targets[j] = core.Target{Valid: true, Output: true, OutputID: 7}
	}
	rep := analyzeOne(t, "reachability", mesh, cfgs, Options{
		ExternalInputs: []AxonRef{{X: 0, Y: 0, Axon: 1}, {X: 1, Y: 0, Axon: 2}},
	})
	wantDiags(t, rep,
		"core (1,0) neuron 2: reachability: error: external output id 7 collides with core (0,0) neuron 1: the two spike streams are indistinguishable")
}

// --- potential-interval fixtures ---

func TestFixtureNeverFires(t *testing.T) {
	mesh, cfgs := inertMesh(1, 1)
	// No connections and no leak: the membrane potential is pinned at its
	// initial zero, provably below the threshold.
	cfgs[0].Neurons[0] = neuron.Params{Threshold: 10, Reset: neuron.ResetToV}
	cfgs[0].Targets[0] = core.Target{Valid: true, Axon: 1, Delay: core.MinDelay}
	rep := analyzeOne(t, "potential", mesh, cfgs, Options{})
	wantDiags(t, rep,
		"core (0,0) neuron 0: potential: warning: neuron can never reach threshold 10: membrane potential is bounded to [0,0]")
}

func TestFixtureAlwaysFires(t *testing.T) {
	mesh, cfgs := inertMesh(1, 1)
	// Leak 1 with threshold 1: the check potential is exactly 1 every tick,
	// so the neuron fires unconditionally.
	cfgs[0].Neurons[0] = neuron.Params{Leak: 1, Threshold: 1, Reset: neuron.ResetToV}
	cfgs[0].Targets[0] = core.Target{Valid: true, Axon: 1, Delay: core.MinDelay}
	rep := analyzeOne(t, "potential", mesh, cfgs, Options{})
	wantDiags(t, rep,
		"core (0,0) neuron 0: potential: warning: neuron fires every tick regardless of input: check potential never drops below the maximum effective threshold 1")
}

func TestFixtureSaturatingNeuron(t *testing.T) {
	mesh, cfgs := inertMesh(1, 1)
	// A maximal-weight driven axon with a rail-high threshold and
	// non-resetting fire: worst-case drive walks the potential into the
	// +2^19-1 clamp.
	cfgs[0].Synapses[0].Set(0)
	cfgs[0].Neurons[0] = neuron.Params{
		Weights:   [neuron.NumAxonTypes]int32{neuron.WeightMax, 0, 0, 0},
		Threshold: neuron.VMax,
		Reset:     neuron.ResetNone,
	}
	cfgs[0].Targets[0] = core.Target{Valid: true, Axon: 1, Delay: core.MinDelay}
	rep := analyzeOne(t, "potential", mesh, cfgs, Options{ExternalInputs: []AxonRef{{X: 0, Y: 0, Axon: 0}}})
	wantDiags(t, rep,
		"core (0,0) neuron 0: potential: warning: worst-case drive pushes the potential past the +524287 saturation rail: intended dynamics are clipped")
}

// --- stochastic fixtures ---

func TestFixtureStochasticWaste(t *testing.T) {
	mesh, cfgs := inertMesh(1, 1)
	// Neuron 4: stochastic synapse on a type with no connected axon.
	cfgs[0].Neurons[4].StochSyn[1] = true
	cfgs[0].Neurons[4].Weights[1] = 1
	// Neuron 5: stochastic leak that can never step.
	cfgs[0].Neurons[5].StochLeak = true
	// Neuron 6: threshold jitter mask whose drawn low byte is always zero.
	cfgs[0].Neurons[6].ThresholdMask = 0x300
	// Neuron 7: the stochastic type is connected (axon 10) but never driven.
	cfgs[0].Synapses[10].Set(7)
	cfgs[0].Neurons[7].StochSyn[0] = true
	cfgs[0].Neurons[7].Weights[0] = 1
	// Neuron 8: connected and driven (axon 11), but the weight is zero.
	cfgs[0].Synapses[11].Set(8)
	cfgs[0].Neurons[8].StochSyn[0] = true
	rep := analyzeOne(t, "stochastic", mesh, cfgs, Options{ExternalInputs: []AxonRef{{X: 0, Y: 0, Axon: 11}}})
	wantDiags(t, rep,
		"core (0,0) neuron 4: stochastic: warning: stochastic synapse mode on axon type 1 but no connected axon of that type: the mode can never be exercised",
		"core (0,0) neuron 5: stochastic: warning: stochastic leak with zero leak: one PRNG draw per tick to no effect",
		"core (0,0) neuron 6: stochastic: warning: threshold mask 0x300 has no low 8 bits: one PRNG draw per tick with jitter always zero",
		"core (0,0) neuron 7: stochastic: warning: stochastic synapse mode on axon type 0 but no connected axon of that type ever receives spikes",
		"core (0,0) neuron 8: stochastic: warning: stochastic synapse mode on axon type 0 with zero weight: every event consumes a PRNG draw to no effect")
}

// --- NoC load fixtures ---

func TestFixtureNoCOverload(t *testing.T) {
	mesh, cfgs := inertMesh(3, 1)
	// Two fireable neurons on (0,0) both target (2,0): their packets share
	// both directed links of the x-walk, exceeding a capacity of 1.
	wireIdentity(cfgs[0], 0, 2, 0, 0)
	wireIdentity(cfgs[0], 1, 2, 0, 1)
	cfgs[2].Synapses[0].Set(0)
	cfgs[2].Synapses[1].Set(1)
	rep := analyzeOne(t, "nocload", mesh, cfgs, Options{
		ExternalInputs: []AxonRef{{X: 0, Y: 0, Axon: 0}, {X: 0, Y: 0, Axon: 1}},
		LinkCapacity:   1,
	})
	wantDiags(t, rep,
		"core (0,0): nocload: warning: worst-case load 2 packets/tick on link (0,0)->(1,0) exceeds the configured capacity 1",
		"core (1,0): nocload: warning: worst-case load 2 packets/tick on link (1,0)->(2,0) exceeds the configured capacity 1")
	noc := rep.NoC
	if noc.Packets != 2 || noc.Hops != 4 || noc.MaxLinkLoad != 2 || noc.SaturatedLinks != 2 {
		t.Fatalf("NoC summary = %+v", noc)
	}
	if noc.MeanHops < 1.999 || noc.MeanHops > 2.001 {
		t.Fatalf("MeanHops = %v, want 2", noc.MeanHops)
	}
	if (noc.MaxLinkFrom != router.Point{X: 0, Y: 0}) || (noc.MaxLinkTo != router.Point{X: 1, Y: 0}) {
		t.Fatalf("hotspot link %v->%v, want (0,0)->(1,0)", noc.MaxLinkFrom, noc.MaxLinkTo)
	}
}

// --- suppression, selection, and report plumbing ---

func TestSuppressionMatching(t *testing.T) {
	mesh, cfgs := inertMesh(1, 1)
	cfgs[0].Synapses[3].Set(9)
	rep := analyzeOne(t, "reachability", mesh, cfgs, Options{
		Suppressions: []Suppression{{
			Check: "reachability", Core: router.Point{X: 0, Y: 0},
			Neuron: -1, Axon: 3, Reason: "fixture axon is fed by a harness",
		}},
	})
	wantDiags(t, rep)
	if rep.Suppressed != 1 {
		t.Fatalf("Suppressed = %d, want 1", rep.Suppressed)
	}
	// A suppression without a reason matches nothing.
	rep = analyzeOne(t, "reachability", mesh, cfgs, Options{
		Suppressions: []Suppression{{Check: "*", AllCores: true, Neuron: -1, Axon: -1}},
	})
	if len(rep.Diags) != 1 || rep.Suppressed != 0 {
		t.Fatalf("reasonless suppression took effect: %+v", rep)
	}
}

func TestParseSuppressions(t *testing.T) {
	in := strings.Join([]string{
		"# comment",
		"",
		"routability core=(3,4) neuron=7 known detour gap on the scrapped tile",
		"* core=* axon=12 harness-driven axon",
		"potential core=*",                // missing reason
		"potential core=5,5 some reason",  // bad coordinate syntax
		"potential neuron=1 some reason",  // second field not core=
		"potential core=(1,1) neuron=x r", // bad neuron index
	}, "\n")
	sups, diags := ParseSuppressions(strings.NewReader(in))
	if len(sups) != 2 {
		t.Fatalf("got %d suppressions, want 2: %+v", len(sups), sups)
	}
	want0 := Suppression{
		Check: "routability", Core: router.Point{X: 3, Y: 4},
		Neuron: 7, Axon: -1, Reason: "known detour gap on the scrapped tile",
	}
	if sups[0] != want0 {
		t.Fatalf("suppression 0 = %+v, want %+v", sups[0], want0)
	}
	if !sups[1].AllCores || sups[1].Axon != 12 || sups[1].Check != "*" {
		t.Fatalf("suppression 1 = %+v", sups[1])
	}
	if len(diags) != 4 {
		t.Fatalf("got %d malformed-line findings, want 4: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Check != "ignore" || d.Severity != Error {
			t.Fatalf("malformed-line finding should be an ignore error: %v", d)
		}
	}
	if got := diags[0].String(); got != "model: ignore: error: suppressions line 5: suppression without a reason; the reason is mandatory" {
		t.Fatalf("malformed-line format = %q", got)
	}
}

func TestSelectChecksUnknown(t *testing.T) {
	mesh, cfgs := inertMesh(1, 1)
	_, err := Analyze(mesh, cfgs, Options{Checks: []string{"bogus"}})
	if err == nil || !strings.Contains(err.Error(), `unknown check "bogus"`) {
		t.Fatalf("err = %v", err)
	}
}

func TestReportErrSummarizes(t *testing.T) {
	rep := &Report{}
	if err := rep.Err(); err != nil {
		t.Fatalf("clean report errored: %v", err)
	}
	for i := 0; i < 7; i++ {
		rep.Diags = append(rep.Diags, Diagnostic{
			Check: "reachability", Severity: Warning,
			Core: router.Point{X: i, Y: 0}, Neuron: -1, Axon: i,
			Message: "axon receives spikes but has no crossbar connections: every delivery is wasted",
		})
	}
	err := rep.Err()
	if err == nil {
		t.Fatal("report with findings returned nil")
	}
	msg := err.Error()
	if !strings.HasPrefix(msg, "model verification failed: 7 finding(s); core (0,0) axon 0: reachability: warning:") {
		t.Fatalf("err = %q", msg)
	}
	if !strings.HasSuffix(msg, "; and 2 more") {
		t.Fatalf("err should elide past the first 5 findings: %q", msg)
	}
}

func TestReportJSONShape(t *testing.T) {
	mesh, cfgs := inertMesh(1, 1)
	cfgs[0].Synapses[3].Set(9)
	rep := analyzeOne(t, "reachability", mesh, cfgs, Options{})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"diagnostics"`, `"severity": "warning"`, `"check": "reachability"`, `"noc"`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("JSON output missing %s:\n%s", want, buf.String())
		}
	}
}

// --- clean-model assertions ---

// TestCleanNetgenSample asserts zero findings over characterization-sweep
// operating points: the generator's networks are the paper's measurement
// substrate and must verify clean by construction.
func TestCleanNetgenSample(t *testing.T) {
	for _, tc := range []struct {
		rate       float64
		syn        int
		stochastic bool
	}{
		{50, 40, false},
		{100, 128, true},
		{200, 256, false},
	} {
		mesh := router.Mesh{W: 4, H: 4}
		configs, err := netgen.Build(netgen.Params{
			Grid: mesh, RateHz: tc.rate, SynPerNeuron: tc.syn,
			Seed: 9, Stochastic: tc.stochastic,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(mesh, configs, Options{}); err != nil {
			t.Errorf("rate %v syn %d stochastic %v: %v", tc.rate, tc.syn, tc.stochastic, err)
		}
	}
}

// TestCleanCoreletPlacement asserts zero findings over a corelet-built
// network (the quickstart topology) with its placed input pins declared as
// external injection points.
func TestCleanCoreletPlacement(t *testing.T) {
	net := corelet.NewNet()

	relay := net.AddCore()
	net.SetSynapse(relay, 0, 0)
	net.SetNeuron(relay, 0, neuron.Identity())
	net.AddInput("in", relay, 0)

	detector := net.AddCore()
	net.SetSynapse(detector, 0, 0)
	net.SetSynapse(detector, 1, 0)
	net.SetNeuron(detector, 0, neuron.Params{
		Weights:   [neuron.NumAxonTypes]int32{1, 0, 0, 0},
		Threshold: 2,
		Reset:     neuron.ResetToV,
	})
	net.Connect(relay, 0, detector, 0, 1)
	net.ConnectOutput(detector, 0, "coincidence", 0)

	pacemaker := net.AddCore()
	net.SetNeuron(pacemaker, 0, neuron.Params{Leak: 1, Threshold: 10, Reset: neuron.ResetToV})
	net.Connect(pacemaker, 0, detector, 1, 1)

	placement, err := corelet.Place(net, router.Mesh{W: 3, H: 1})
	if err != nil {
		t.Fatal(err)
	}
	var ext []AxonRef
	for _, pin := range placement.Inputs["in"] {
		ext = append(ext, AxonRef{X: pin.X, Y: pin.Y, Axon: pin.Axon})
	}
	if err := Verify(placement.Mesh, placement.Configs, Options{ExternalInputs: ext}); err != nil {
		t.Fatal(err)
	}
}
