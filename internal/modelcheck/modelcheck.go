// Package modelcheck implements tnverify, the whole-model static analyzer
// for compiled neurosynaptic networks. Where tnlint's subject is this
// repository's Go source, tnverify's subject is the *other* program in the
// system: the network model (mesh + per-core configurations) that the
// Corelet toolchain emits and that both kernel expressions — the silicon
// model and Compass — consume (Section VI-A of the paper). core.Config
// validates fields in isolation; nothing before this package checked the
// cross-core properties the paper's methodology depends on: every emitted
// spike must land on a populated core's axon via dimension-order routing,
// the 20-bit saturating membrane datapath must not silently clip intended
// dynamics, and the characterization sweep is parameterized by exactly the
// quantities (fan-in, hop distance, firing drive) a static pass can bound
// before a single tick runs.
//
// Five analyses, each an independently selectable Check:
//
//   - routability:  walk every neuron target's (Δx, Δy) against the mesh,
//     the populated-core map, and the fault set; flag spikes that exit the
//     board, land on absent or disabled cores, or have no route around
//     dead cores.
//   - reachability: build the core-level spike graph; flag axons that
//     receive spikes but have no crossbar connections, connected axons no
//     neuron or external input ever drives, neurons that can fire but have
//     no configured target, and colliding external output ids.
//   - potential:    abstract interpretation of the neuron datapath over
//     intervals: from per-type fan-in, 9-bit weights, and leak, bound each
//     neuron's reachable membrane potential to prove neurons that can
//     never reach threshold, neurons that fire every tick, and potentials
//     that hit the ±2^19 saturation rails (intended dynamics clipped by
//     the hardware). See DESIGN.md for the domain's soundness caveats.
//   - nocload:     accumulate worst-case per-link packet counts along each
//     target's dimension-order route — hotspot links, mean hop distance
//     (the paper's 21.66-hop characterization axis), and tile-boundary
//     crossing pressure, without simulating.
//   - stochastic:  PRNG-consuming modes (stochastic synapse/leak/threshold)
//     configured where their draws can never be exercised or never have an
//     effect — wasted per-tick work and a determinism hazard when configs
//     are edited.
//
// A finding is suppressed by an entry in a suppression list (the CLI loads
// one from a file); like tnlint's //lint:ignore directives, a suppression
// without a reason is itself a finding.
package modelcheck

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"truenorth/internal/core"
	"truenorth/internal/router"
)

// Severity ranks a diagnostic. Errors are models the engines would
// mis-execute (dropped spikes, dead destinations); warnings are models
// that run but provably waste work or clip dynamics; infos are advisory.
type Severity int

// Severity levels, least severe first.
const (
	Info Severity = iota
	Warning
	Error
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Diagnostic is one finding against a model.
type Diagnostic struct {
	// Check names the analysis that produced the finding.
	Check string `json:"check"`
	// Severity ranks it.
	Severity Severity `json:"severity"`
	// Core is the core coordinate, or (-1,-1) for model-level findings.
	Core router.Point `json:"core"`
	// Neuron is the neuron index, or -1 when not applicable.
	Neuron int `json:"neuron"`
	// Axon is the axon index, or -1 when not applicable.
	Axon int `json:"axon"`
	// Message describes the defect.
	Message string `json:"message"`
}

// Location renders the diagnostic's position within the model.
func (d Diagnostic) Location() string {
	if d.Core.X < 0 {
		return "model"
	}
	s := fmt.Sprintf("core (%d,%d)", d.Core.X, d.Core.Y)
	if d.Neuron >= 0 {
		s += fmt.Sprintf(" neuron %d", d.Neuron)
	}
	if d.Axon >= 0 {
		s += fmt.Sprintf(" axon %d", d.Axon)
	}
	return s
}

// String renders the canonical "location: check: severity: message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s: %s", d.Location(), d.Check, d.Severity, d.Message)
}

// AxonRef names one input axon of the model, used to declare external
// injection points (corelet placements know these as input pins).
type AxonRef struct {
	X, Y, Axon int
}

// Options configures an analysis run.
type Options struct {
	// Checks selects analyses by name; nil runs all of them.
	Checks []string
	// Dead marks fault-disabled cores: they neither compute nor accept
	// packets, and routing must detour around them.
	Dead []router.Point
	// ExternalInputs lists axons that may receive external injections
	// (e.g. a placement's input pins); they count as driven.
	ExternalInputs []AxonRef
	// AssumeExternalInput treats every axon as a potential external
	// injection point. Model files carry no I/O table, so the CLI sets
	// this for models whose input surface is unknown; it disables the
	// undriven-axon analysis and widens worst-case drive bounds.
	AssumeExternalInput bool
	// LinkCapacity is the per-link worst-case packet budget per tick for
	// the nocload analysis; 0 disables hotspot warnings (the load summary
	// is always computed).
	LinkCapacity int
	// Suppressions filters findings; see ParseSuppressions.
	Suppressions []Suppression
}

// Check is one independently selectable analysis.
type Check struct {
	Name string
	Doc  string
	Run  func(m *Model, report func(Diagnostic))
}

// Checks returns the full tnverify suite.
func Checks() []*Check {
	return []*Check{
		routabilityCheck(),
		reachabilityCheck(),
		potentialCheck(),
		nocLoadCheck(),
		stochasticCheck(),
	}
}

// NoCSummary is the static worst-case communication bound the nocload
// analysis computes: every fireable neuron emitting one packet per tick.
type NoCSummary struct {
	// Packets is the worst-case packets injected per tick.
	Packets int `json:"packets"`
	// Hops is the worst-case router traversals per tick.
	Hops int64 `json:"hops"`
	// MeanHops is Hops/Packets — the paper's hop-distance axis.
	MeanHops float64 `json:"mean_hops"`
	// Crossings is the worst-case tile-boundary (merge/split) traversals
	// per tick.
	Crossings int64 `json:"crossings"`
	// MaxLinkLoad is the heaviest single directed link's packets per tick.
	MaxLinkLoad int `json:"max_link_load"`
	// MaxLinkFrom and MaxLinkTo locate that link.
	MaxLinkFrom router.Point `json:"max_link_from"`
	MaxLinkTo   router.Point `json:"max_link_to"`
	// SaturatedLinks counts links over Options.LinkCapacity (0 when no
	// capacity was configured).
	SaturatedLinks int `json:"saturated_links"`
}

// Report is the result of one analysis run.
type Report struct {
	// Diags holds the surviving findings, sorted by core, neuron, axon,
	// check, and message.
	Diags []Diagnostic `json:"diagnostics"`
	// Suppressed counts findings removed by suppressions.
	Suppressed int `json:"suppressed"`
	// NoC is the worst-case communication summary (zero if the nocload
	// check was deselected).
	NoC NoCSummary `json:"noc"`
}

// Findings returns the diagnostics at Warning severity or above — the set
// that gates model acceptance. Infos are advisory only.
func (r *Report) Findings() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Severity >= Warning {
			out = append(out, d)
		}
	}
	return out
}

// WriteJSON renders the report in the machine-readable output mode.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Model is the analysis subject plus memoized derived state shared by the
// checks. Construct with NewModel; checks read, never mutate.
type Model struct {
	Mesh    router.Mesh
	Configs []*core.Config
	Opts    Options

	dead map[router.Point]bool
	// driven[i] marks the axons of core slot i that at least one live
	// neuron targets or an external input feeds.
	driven []core.RowMask
	// drives caches per-core per-neuron drive/fan-in aggregates.
	drives map[int]*[core.NeuronsPerCore]neuronDrive
	// intervals caches per-core potential-interval results.
	intervals map[int]*[core.NeuronsPerCore]vInterval
	// noc caches the nocload summary for the report.
	noc NoCSummary
}

// NewModel prepares the analysis subject. configs is row-major over mesh
// (nil entries unpopulated) and may be shorter than the grid.
func NewModel(mesh router.Mesh, configs []*core.Config, opts Options) (*Model, error) {
	if mesh.W <= 0 || mesh.H <= 0 {
		return nil, fmt.Errorf("modelcheck: invalid mesh %dx%d", mesh.W, mesh.H)
	}
	if n := mesh.W * mesh.H; len(configs) > n {
		return nil, fmt.Errorf("modelcheck: %d configs for %d core slots", len(configs), n)
	}
	m := &Model{
		Mesh:      mesh,
		Configs:   configs,
		Opts:      opts,
		dead:      map[router.Point]bool{},
		drives:    map[int]*[core.NeuronsPerCore]neuronDrive{},
		intervals: map[int]*[core.NeuronsPerCore]vInterval{},
	}
	for _, p := range opts.Dead {
		if mesh.Contains(p) {
			m.dead[p] = true
		}
	}
	m.buildDriven()
	return m, nil
}

// at returns the config at slot (x,y), or nil.
func (m *Model) at(x, y int) *core.Config {
	if x < 0 || x >= m.Mesh.W || y < 0 || y >= m.Mesh.H {
		return nil
	}
	i := y*m.Mesh.W + x
	if i >= len(m.Configs) {
		return nil
	}
	return m.Configs[i]
}

// live reports whether the core at p is populated and not fault-disabled.
func (m *Model) live(p router.Point) bool {
	return m.at(p.X, p.Y) != nil && !m.dead[p]
}

// deadFunc returns a router.DeadFunc for the fault set, or nil.
func (m *Model) deadFunc() router.DeadFunc {
	if len(m.dead) == 0 {
		return nil
	}
	return func(p router.Point) bool { return m.dead[p] }
}

// eachLive calls f for every populated, non-disabled core in row-major
// order — the deterministic iteration backbone of every check.
func (m *Model) eachLive(f func(p router.Point, idx int, cfg *core.Config)) {
	for i, cfg := range m.Configs {
		if cfg == nil {
			continue
		}
		p := router.Point{X: i % m.Mesh.W, Y: i / m.Mesh.W}
		if m.dead[p] {
			continue
		}
		f(p, i, cfg)
	}
}

// buildDriven computes, for every core slot, the set of axons that can
// receive spike events: targeted by a live neuron whose packet is
// deliverable, or declared an external input.
func (m *Model) buildDriven() {
	m.driven = make([]core.RowMask, m.Mesh.W*m.Mesh.H)
	m.eachLive(func(p router.Point, _ int, cfg *core.Config) {
		for j := range cfg.Targets {
			t := cfg.Targets[j]
			if !t.Valid || t.Output {
				continue
			}
			dst := p.Add(int(t.DX), int(t.DY))
			if !m.Mesh.Contains(dst) || m.dead[dst] || m.at(dst.X, dst.Y) == nil {
				continue // routability reports these
			}
			m.driven[dst.Y*m.Mesh.W+dst.X].Set(int(t.Axon))
		}
	})
	if m.Opts.AssumeExternalInput {
		for i := range m.driven {
			for w := range m.driven[i] {
				m.driven[i][w] = ^uint64(0)
			}
		}
		return
	}
	for _, in := range m.Opts.ExternalInputs {
		if in.Axon < 0 || in.Axon >= core.AxonsPerCore {
			continue
		}
		p := router.Point{X: in.X, Y: in.Y}
		if m.Mesh.Contains(p) {
			m.driven[p.Y*m.Mesh.W+p.X].Set(in.Axon)
		}
	}
}

// Analyze runs the selected checks over the model and returns the report.
func Analyze(mesh router.Mesh, configs []*core.Config, opts Options) (*Report, error) {
	m, err := NewModel(mesh, configs, opts)
	if err != nil {
		return nil, err
	}
	selected, err := selectChecks(opts.Checks)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	suppressed := 0
	report := func(d Diagnostic) {
		for _, s := range opts.Suppressions {
			if s.matches(d) {
				suppressed++
				return
			}
		}
		diags = append(diags, d)
	}
	for _, c := range selected {
		c.Run(m, report)
	}
	sortDiags(diags)
	return &Report{Diags: diags, Suppressed: suppressed, NoC: m.noc}, nil
}

// selectChecks resolves names (nil = all) against the suite.
func selectChecks(names []string) ([]*Check, error) {
	all := Checks()
	if names == nil {
		return all, nil
	}
	byName := map[string]*Check{}
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []*Check
	for _, n := range names {
		c, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("modelcheck: unknown check %q", n)
		}
		out = append(out, c)
	}
	return out, nil
}

// sortDiags orders findings deterministically: model-level first, then by
// core (row-major), neuron, axon, check, message.
func sortDiags(diags []Diagnostic) {
	key := func(d Diagnostic) (int, int, int) {
		if d.Core.X < 0 {
			return -1, d.Neuron, d.Axon
		}
		return d.Core.Y*(1<<20) + d.Core.X, d.Neuron, d.Axon
	}
	sort.SliceStable(diags, func(i, j int) bool {
		ci, ni, ai := key(diags[i])
		cj, nj, aj := key(diags[j])
		if ci != cj {
			return ci < cj
		}
		if ni != nj {
			return ni < nj
		}
		if ai != aj {
			return ai < aj
		}
		if diags[i].Check != diags[j].Check {
			return diags[i].Check < diags[j].Check
		}
		return diags[i].Message < diags[j].Message
	})
}

// Verify is the gate form: it runs every check with default options plus
// opts and returns an error summarizing the first findings, or nil for a
// clean model. Engines and CLIs call this before accepting a model.
func Verify(mesh router.Mesh, configs []*core.Config, opts Options) error {
	rep, err := Analyze(mesh, configs, opts)
	if err != nil {
		return err
	}
	return rep.Err()
}

// Err folds the report's gating findings into a single error, or nil.
func (r *Report) Err() error {
	findings := r.Findings()
	if len(findings) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "model verification failed: %d finding(s)", len(findings))
	const show = 5
	for i, d := range findings {
		if i == show {
			fmt.Fprintf(&b, "; and %d more", len(findings)-show)
			break
		}
		b.WriteString("; ")
		b.WriteString(d.String())
	}
	return fmt.Errorf("%s", b.String())
}

// Suppression filters findings by check name and location. The zero value
// matches nothing; use ParseSuppressions or fill every field.
type Suppression struct {
	// Check is an analysis name, or "*" for any.
	Check string
	// AllCores matches any location; otherwise Core must equal the
	// diagnostic's core coordinate.
	AllCores bool
	Core     router.Point
	// Neuron and Axon restrict to one index; -1 matches any.
	Neuron, Axon int
	// Reason documents why the finding is accepted; mandatory.
	Reason string
}

func (s Suppression) matches(d Diagnostic) bool {
	if s.Reason == "" {
		return false
	}
	if s.Check != "*" && s.Check != d.Check {
		return false
	}
	if !s.AllCores && s.Core != d.Core {
		return false
	}
	if s.Neuron != -1 && s.Neuron != d.Neuron {
		return false
	}
	if s.Axon != -1 && s.Axon != d.Axon {
		return false
	}
	return true
}

// ParseSuppressions reads a suppression list, one entry per line:
//
//	<check|*> <core=(x,y)|core=*> [neuron=N] [axon=N] reason...
//
// Blank lines and #-comments are ignored. Mirroring tnlint's directive
// rules, the reason is mandatory: a malformed line becomes a finding of
// the pseudo-check "ignore" rather than a silent no-op.
func ParseSuppressions(r io.Reader) ([]Suppression, []Diagnostic) {
	var sups []Suppression
	var diags []Diagnostic
	malformed := func(line int, msg string) {
		diags = append(diags, Diagnostic{
			Check: "ignore", Severity: Error, Core: router.Point{X: -1, Y: -1},
			Neuron: -1, Axon: -1,
			Message: fmt.Sprintf("suppressions line %d: %s", line, msg),
		})
	}
	data, err := io.ReadAll(r)
	if err != nil {
		malformed(0, err.Error())
		return nil, diags
	}
	for i, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			malformed(i+1, "want: <check|*> <core=(x,y)|core=*> [neuron=N] [axon=N] reason")
			continue
		}
		s := Suppression{Check: fields[0], Neuron: -1, Axon: -1}
		loc, ok := strings.CutPrefix(fields[1], "core=")
		if !ok {
			malformed(i+1, fmt.Sprintf("second field %q: want core=(x,y) or core=*", fields[1]))
			continue
		}
		if loc == "*" {
			s.AllCores = true
		} else {
			var x, y int
			if _, err := fmt.Sscanf(loc, "(%d,%d)", &x, &y); err != nil {
				malformed(i+1, fmt.Sprintf("bad core coordinate %q", loc))
				continue
			}
			s.Core = router.Point{X: x, Y: y}
		}
		rest := fields[2:]
		for len(rest) > 0 {
			if v, ok := strings.CutPrefix(rest[0], "neuron="); ok {
				n, err := strconv.Atoi(v)
				if err != nil {
					malformed(i+1, fmt.Sprintf("bad neuron index %q", v))
					n = -2
				}
				s.Neuron = n
				rest = rest[1:]
				continue
			}
			if v, ok := strings.CutPrefix(rest[0], "axon="); ok {
				n, err := strconv.Atoi(v)
				if err != nil {
					malformed(i+1, fmt.Sprintf("bad axon index %q", v))
					n = -2
				}
				s.Axon = n
				rest = rest[1:]
				continue
			}
			break
		}
		if s.Neuron == -2 || s.Axon == -2 {
			continue
		}
		s.Reason = strings.Join(rest, " ")
		if s.Reason == "" {
			malformed(i+1, "suppression without a reason; the reason is mandatory")
			continue
		}
		sups = append(sups, s)
	}
	return sups, diags
}
