// Package vision provides the visual front-end and evaluation harness for
// the paper's computer-vision applications (Section IV-B): synthetic
// streaming video with ground truth (substituting for the DARPA Neovision2
// Tower dataset and lab cameras — see DESIGN.md §2), pixel-to-spike
// transduction, spike readout, and precision/recall scoring.
//
// Frames of streaming video drive all applications; the transducer converts
// pixel intensities into spike trains injected into input axons, spread over
// the ticks of each frame (30 fps at 1 kHz ticks ≈ 33 ticks per frame).
package vision

import (
	"fmt"
	"math"

	"truenorth/internal/corelet"
	"truenorth/internal/prng"
	"truenorth/internal/sim"
)

// Frame is a grayscale image.
type Frame struct {
	W, H int
	Pix  []uint8 // row-major
}

// NewFrame allocates a black frame.
func NewFrame(w, h int) *Frame {
	return &Frame{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the intensity at (x, y); out-of-bounds reads return 0.
func (f *Frame) At(x, y int) uint8 {
	if x < 0 || x >= f.W || y < 0 || y >= f.H {
		return 0
	}
	return f.Pix[y*f.W+x]
}

// Set writes the intensity at (x, y); out-of-bounds writes are ignored.
func (f *Frame) Set(x, y int, v uint8) {
	if x < 0 || x >= f.W || y < 0 || y >= f.H {
		return
	}
	f.Pix[y*f.W+x] = v
}

// Class enumerates the Neovision2 Tower object classes.
type Class int

// The five Neovision2 Tower classes.
const (
	Person Class = iota
	Cyclist
	Car
	Bus
	Truck
	NumClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Person:
		return "Person"
	case Cyclist:
		return "Cyclist"
	case Car:
		return "Car"
	case Bus:
		return "Bus"
	case Truck:
		return "Truck"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// shape gives each class a distinctive footprint and intensity so that
// size, aspect ratio, and brightness are discriminative features — the
// axes our What network classifies on.
type shape struct {
	w, h      int
	intensity uint8
}

// classShapes lists per-class rendering parameters (pixels).
var classShapes = [NumClasses]shape{
	Person:  {w: 6, h: 14, intensity: 240},
	Cyclist: {w: 10, h: 12, intensity: 190},
	Car:     {w: 16, h: 8, intensity: 150},
	Bus:     {w: 24, h: 12, intensity: 110},
	Truck:   {w: 20, h: 16, intensity: 75},
}

// Shape returns the rendering parameters of class c.
func Shape(c Class) (w, h int, intensity uint8) {
	s := classShapes[c]
	return s.w, s.h, s.intensity
}

// Object is one moving scene element.
type Object struct {
	Class  Class
	X, Y   float64 // top-left corner
	VX, VY float64 // pixels per frame
}

// Box is an axis-aligned labeled bounding box (inclusive-exclusive).
type Box struct {
	X0, Y0, X1, Y1 int
	Class          Class
}

// Area returns the box area in pixels.
func (b Box) Area() int {
	w, h := b.X1-b.X0, b.Y1-b.Y0
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// IoU returns intersection-over-union of two boxes.
func IoU(a, b Box) float64 {
	ix0, iy0 := max(a.X0, b.X0), max(a.Y0, b.Y0)
	ix1, iy1 := min(a.X1, b.X1), min(a.Y1, b.Y1)
	iw, ih := ix1-ix0, iy1-iy0
	if iw <= 0 || ih <= 0 {
		return 0
	}
	inter := iw * ih
	union := a.Area() + b.Area() - inter
	if union <= 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Scene is a deterministic synthetic video source with ground truth:
// moving and stationary people, cyclists, cars, buses, and trucks, like
// the Neovision2 Tower sequences.
type Scene struct {
	W, H       int
	Background uint8
	Noise      uint8 // uniform ±Noise/2 per pixel per frame
	Objects    []Object
	rng        *prng.Rand
	frame      int
}

// NewScene creates a scene with n objects cycling through the classes,
// placed and directed deterministically from seed. Like the tower-camera
// footage the paper evaluates on, objects travel in horizontal lanes and
// do not overlap: each object gets its own vertical band, moving objects
// slide along it, and roughly a third are stationary (the dataset contains
// both).
func NewScene(w, h, n int, seed int64) *Scene {
	s := &Scene{W: w, H: h, Background: 30, Noise: 6, rng: prng.NewRand(seed)}
	// Lane height fits the tallest class.
	laneH := 0
	for _, sh := range classShapes {
		if sh.h > laneH {
			laneH = sh.h
		}
	}
	laneH += 2 // separation margin
	lanes := max(1, h/laneH)
	perLane := (n + lanes - 1) / lanes
	for i := 0; i < n; i++ {
		c := Class(i % int(NumClasses))
		sh := classShapes[c]
		lane := i % lanes
		slot := i / lanes
		y := lane*laneH + (laneH-sh.h)/2
		if y+sh.h > h {
			y = h - sh.h
		}
		// Lane-mates start in distinct horizontal slots and share the
		// lane's velocity, so they never collide.
		slotW := max(sh.w+2, w/perLane)
		x := slot*slotW + s.rng.Intn(max(1, slotW-sh.w))
		if x+sh.w > w {
			x = w - sh.w
		}
		o := Object{
			Class: c,
			X:     float64(max(0, x)),
			Y:     float64(max(0, y)),
		}
		if lane%3 != 0 || n < 3 { // moving lanes; lane 0 holds stationary objects
			// Velocity is a deterministic property of the lane, so
			// lane-mates keep their spacing forever.
			v := float64(lane%3+1) / 2
			if lane%2 == 1 {
				v = -v
			}
			o.VX = v
		}
		s.Objects = append(s.Objects, o)
	}
	return s
}

// Advance moves objects one frame. Horizontal motion wraps around the
// aperture (objects leave one side and re-enter the other, like traffic
// passing a fixed camera), preserving lane spacing; any vertical motion
// bounces.
func (s *Scene) Advance() {
	s.frame++
	for i := range s.Objects {
		o := &s.Objects[i]
		sh := classShapes[o.Class]
		o.X += o.VX
		o.Y += o.VY
		if o.X > float64(s.W-sh.w) {
			o.X = 0
		}
		if o.X < 0 {
			o.X = float64(s.W - sh.w)
		}
		if o.Y < 0 || o.Y+float64(sh.h) > float64(s.H) {
			o.VY = -o.VY
			o.Y = clamp(o.Y, 0, float64(s.H-sh.h))
		}
	}
}

// Render draws the current frame.
func (s *Scene) Render() *Frame {
	f := NewFrame(s.W, s.H)
	for i := range f.Pix {
		v := int(s.Background)
		if s.Noise > 0 {
			v += s.rng.Intn(int(s.Noise)+1) - int(s.Noise)/2
		}
		f.Pix[i] = clamp8(v)
	}
	for i := range s.Objects {
		o := &s.Objects[i]
		sh := classShapes[o.Class]
		x0, y0 := int(o.X), int(o.Y)
		for y := y0; y < y0+sh.h; y++ {
			for x := x0; x < x0+sh.w; x++ {
				f.Set(x, y, sh.intensity)
			}
		}
	}
	return f
}

// GroundTruth returns the current labeled boxes.
func (s *Scene) GroundTruth() []Box {
	boxes := make([]Box, len(s.Objects))
	for i := range s.Objects {
		o := &s.Objects[i]
		sh := classShapes[o.Class]
		boxes[i] = Box{X0: int(o.X), Y0: int(o.Y), X1: int(o.X) + sh.w, Y1: int(o.Y) + sh.h, Class: o.Class}
	}
	return boxes
}

// PrecisionRecall scores predictions against ground truth with greedy IoU
// matching: a prediction is a true positive when it overlaps an unmatched
// truth box of the same class with IoU ≥ thresh.
func PrecisionRecall(pred, truth []Box, thresh float64) (precision, recall float64) {
	matched := make([]bool, len(truth))
	tp := 0
	for _, p := range pred {
		bestIoU, bestIdx := 0.0, -1
		for i, g := range truth {
			if matched[i] || g.Class != p.Class {
				continue
			}
			if iou := IoU(p, g); iou > bestIoU {
				bestIoU, bestIdx = iou, i
			}
		}
		if bestIdx >= 0 && bestIoU >= thresh {
			matched[bestIdx] = true
			tp++
		}
	}
	if len(pred) > 0 {
		precision = float64(tp) / float64(len(pred))
	}
	if len(truth) > 0 {
		recall = float64(tp) / float64(len(truth))
	}
	return precision, recall
}

// Transducer converts frames into spike trains: a pixel at full intensity
// produces MaxSpikes spikes spread uniformly over the TicksPerFrame ticks
// of a frame (rate coding). At 30 fps and 1 kHz ticks, TicksPerFrame is 33.
type Transducer struct {
	TicksPerFrame int
	MaxSpikes     int
	// Threshold suppresses transduction of near-background pixels (sparse
	// event-driven input, like a retina).
	Threshold uint8
}

// DefaultTransducer returns the 30 fps configuration.
func DefaultTransducer() Transducer {
	return Transducer{TicksPerFrame: 33, MaxSpikes: 16, Threshold: 40}
}

// SpikeCount returns the number of spikes pixel intensity v produces per
// frame.
func (t Transducer) SpikeCount(v uint8) int {
	if v < t.Threshold {
		return 0
	}
	return int(math.Round(float64(v) / 255 * float64(t.MaxSpikes)))
}

// InjectFrame injects frame f into the named input group (one pin per
// pixel, row-major), starting baseDelay ticks after the engine's next step.
// It returns the number of spikes injected.
func (t Transducer) InjectFrame(eng sim.Engine, p *corelet.Placement, name string, f *Frame, baseDelay int) (int, error) {
	pins, ok := p.Inputs[name]
	if !ok {
		return 0, fmt.Errorf("vision: no input group %q", name)
	}
	if len(pins) != f.W*f.H {
		return 0, fmt.Errorf("vision: input %q has %d pins for %d pixels", name, len(pins), f.W*f.H)
	}
	total := 0
	for i, v := range f.Pix {
		n := t.SpikeCount(v)
		if n == 0 {
			continue
		}
		// Per-pixel phase desynchronizes equal-intensity pixels; without
		// it, every pixel of an object fires on the same ticks and the
		// aggregate drive arrives in synchronized bursts instead of a
		// rate, defeating rate-coded downstream circuits.
		phase := (i * 127) % t.TicksPerFrame
		for k := 0; k < n; k++ {
			off := (k*t.TicksPerFrame/n + phase) % t.TicksPerFrame
			if err := p.Inject(eng, name, i, baseDelay+off); err != nil {
				return total, err
			}
			total++
		}
	}
	return total, nil
}

// CountByName accumulates output spikes of one named group into a dense
// per-index histogram of length n.
func CountByName(p *corelet.Placement, spikes []sim.OutputSpike, name string, n int) []int {
	counts := make([]int, n)
	for _, s := range spikes {
		ref, ok := p.Decode(s.ID)
		if !ok || ref.Name != name {
			continue
		}
		if ref.Index >= 0 && ref.Index < n {
			counts[ref.Index]++
		}
	}
	return counts
}

// VideoRun is the result of streaming frames through a placed network.
type VideoRun struct {
	// PerFrame holds the output spikes emitted during each frame window.
	PerFrame [][]sim.OutputSpike
	// Injected is the total number of transduced input spikes.
	Injected int
	// Ticks is the total simulated tick count.
	Ticks int
}

// RunVideo streams `frames` frames from scene through the placed network:
// each frame is rendered, transduced into the named input group, the engine
// runs one frame interval, and the outputs emitted in that window are
// attributed to the frame. The scene advances between frames. A small
// pipeline latency means responses near a frame boundary may be attributed
// to the neighboring frame; callers score on stable mid-sequence frames.
func RunVideo(eng sim.Engine, p *corelet.Placement, inputName string, scene *Scene, tr Transducer, frames int) (*VideoRun, error) {
	run := &VideoRun{PerFrame: make([][]sim.OutputSpike, frames)}
	for k := 0; k < frames; k++ {
		f := scene.Render()
		n, err := tr.InjectFrame(eng, p, inputName, f, 0)
		if err != nil {
			return nil, err
		}
		run.Injected += n
		eng.Run(tr.TicksPerFrame)
		run.Ticks += tr.TicksPerFrame
		run.PerFrame[k] = eng.DrainOutputs()
		scene.Advance()
	}
	return run, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clamp8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}
