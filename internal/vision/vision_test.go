package vision

import (
	"testing"
	"testing/quick"

	"truenorth/internal/chip"
	"truenorth/internal/corelet"
	"truenorth/internal/neuron"
	"truenorth/internal/router"
)

func TestFrameAtSet(t *testing.T) {
	f := NewFrame(4, 3)
	f.Set(2, 1, 77)
	if got := f.At(2, 1); got != 77 {
		t.Fatalf("At(2,1) = %d, want 77", got)
	}
	if got := f.At(-1, 0); got != 0 {
		t.Fatalf("out-of-bounds At = %d, want 0", got)
	}
	f.Set(10, 10, 5) // ignored
	if got := f.At(3, 2); got != 0 {
		t.Fatalf("stray write landed: %d", got)
	}
}

func TestIoU(t *testing.T) {
	a := Box{X0: 0, Y0: 0, X1: 10, Y1: 10}
	if got := IoU(a, a); got != 1 {
		t.Errorf("IoU(a,a) = %f, want 1", got)
	}
	b := Box{X0: 10, Y0: 0, X1: 20, Y1: 10}
	if got := IoU(a, b); got != 0 {
		t.Errorf("disjoint IoU = %f, want 0", got)
	}
	c := Box{X0: 5, Y0: 0, X1: 15, Y1: 10}
	if got := IoU(a, c); got < 0.33 || got > 0.34 {
		t.Errorf("half-overlap IoU = %f, want 50/150", got)
	}
	if got := IoU(Box{}, a); got != 0 {
		t.Errorf("empty-box IoU = %f, want 0", got)
	}
}

func TestPropertyIoUSymmetricAndBounded(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh uint8) bool {
		a := Box{X0: int(ax), Y0: int(ay), X1: int(ax) + int(aw%40) + 1, Y1: int(ay) + int(ah%40) + 1}
		b := Box{X0: int(bx), Y0: int(by), X1: int(bx) + int(bw%40) + 1, Y1: int(by) + int(bh%40) + 1}
		u, v := IoU(a, b), IoU(b, a)
		return u == v && u >= 0 && u <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrecisionRecallPerfect(t *testing.T) {
	truth := []Box{{0, 0, 10, 10, Person}, {20, 20, 30, 30, Car}}
	p, r := PrecisionRecall(truth, truth, 0.5)
	if p != 1 || r != 1 {
		t.Fatalf("perfect predictions: p=%f r=%f", p, r)
	}
}

func TestPrecisionRecallClassMatters(t *testing.T) {
	truth := []Box{{0, 0, 10, 10, Person}}
	pred := []Box{{0, 0, 10, 10, Car}}
	p, r := PrecisionRecall(pred, truth, 0.5)
	if p != 0 || r != 0 {
		t.Fatalf("wrong class matched: p=%f r=%f", p, r)
	}
}

func TestPrecisionRecallPartial(t *testing.T) {
	truth := []Box{{0, 0, 10, 10, Person}, {50, 50, 60, 60, Car}}
	pred := []Box{{1, 1, 11, 11, Person}, {80, 80, 90, 90, Bus}}
	p, r := PrecisionRecall(pred, truth, 0.5)
	if p != 0.5 || r != 0.5 {
		t.Fatalf("p=%f r=%f, want 0.5 each", p, r)
	}
}

func TestPrecisionRecallNoDoubleMatch(t *testing.T) {
	truth := []Box{{0, 0, 10, 10, Person}}
	pred := []Box{{0, 0, 10, 10, Person}, {0, 0, 10, 10, Person}}
	p, r := PrecisionRecall(pred, truth, 0.5)
	if p != 0.5 || r != 1 {
		t.Fatalf("duplicate predictions: p=%f r=%f, want 0.5/1", p, r)
	}
}

func TestSceneDeterministicAndInBounds(t *testing.T) {
	a := NewScene(100, 80, 6, 42)
	b := NewScene(100, 80, 6, 42)
	for frame := 0; frame < 50; frame++ {
		ga, gb := a.GroundTruth(), b.GroundTruth()
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("frame %d: scenes diverge: %+v vs %+v", frame, ga[i], gb[i])
			}
			if ga[i].X0 < 0 || ga[i].Y0 < 0 || ga[i].X1 > 100 || ga[i].Y1 > 80 {
				t.Fatalf("frame %d: object %d out of bounds: %+v", frame, i, ga[i])
			}
		}
		a.Advance()
		b.Advance()
	}
}

func TestSceneMovesObjects(t *testing.T) {
	s := NewScene(100, 80, 6, 1)
	before := s.GroundTruth()
	for i := 0; i < 10; i++ {
		s.Advance()
	}
	after := s.GroundTruth()
	moved := 0
	for i := range before {
		if before[i] != after[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no object moved in 10 frames")
	}
}

func TestSceneRenderContainsObjects(t *testing.T) {
	s := NewScene(60, 60, 5, 7)
	s.Noise = 0
	f := s.Render()
	for _, b := range s.GroundTruth() {
		_, _, intensity := Shape(b.Class)
		cx, cy := (b.X0+b.X1)/2, (b.Y0+b.Y1)/2
		if got := f.At(cx, cy); got != intensity {
			t.Fatalf("class %v center pixel = %d, want %d", b.Class, got, intensity)
		}
	}
}

func TestClassShapesDistinct(t *testing.T) {
	seen := map[shape]bool{}
	for c := Person; c < NumClasses; c++ {
		w, h, i := Shape(c)
		s := shape{w, h, i}
		if seen[s] {
			t.Fatalf("class %v shares a shape with another class", c)
		}
		seen[s] = true
	}
}

func TestClassString(t *testing.T) {
	if Person.String() != "Person" || Truck.String() != "Truck" {
		t.Fatal("class names wrong")
	}
	if Class(99).String() != "Class(99)" {
		t.Fatal("unknown class formatting wrong")
	}
}

func TestTransducerSpikeCount(t *testing.T) {
	tr := DefaultTransducer()
	if got := tr.SpikeCount(0); got != 0 {
		t.Errorf("SpikeCount(0) = %d", got)
	}
	if got := tr.SpikeCount(39); got != 0 {
		t.Errorf("below threshold: %d spikes", got)
	}
	if got := tr.SpikeCount(255); got != tr.MaxSpikes {
		t.Errorf("SpikeCount(255) = %d, want %d", got, tr.MaxSpikes)
	}
	if a, b := tr.SpikeCount(100), tr.SpikeCount(200); a >= b {
		t.Errorf("spike count not monotone: %d !< %d", a, b)
	}
}

// buildPixelPassthrough builds a 2×2-pixel net where each pixel axon relays
// straight to an output.
func buildPixelPassthrough() (*corelet.Net, int) {
	n := corelet.NewNet()
	id := n.AddCore()
	const px = 4
	for i := 0; i < px; i++ {
		n.SetSynapse(id, i, i)
		n.SetNeuron(id, i, neuron.Identity())
		n.ConnectOutput(id, i, "pix", i)
		n.AddInput("pixels", id, i)
	}
	return n, px
}

func TestInjectFrameEndToEnd(t *testing.T) {
	net, px := buildPixelPassthrough()
	p, err := corelet.Place(net, router.Mesh{W: 1, H: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chip.New(p.Mesh, p.Configs)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFrame(2, 2)
	f.Set(0, 0, 255) // max spikes
	f.Set(1, 0, 128) // half
	f.Set(0, 1, 10)  // below threshold
	tr := DefaultTransducer()
	injected, err := tr.InjectFrame(eng, p, "pixels", f, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantInjected := tr.SpikeCount(255) + tr.SpikeCount(128)
	if injected != wantInjected {
		t.Fatalf("injected %d spikes, want %d", injected, wantInjected)
	}
	eng.Run(tr.TicksPerFrame + 2)
	counts := CountByName(p, eng.DrainOutputs(), "pix", px)
	if counts[0] != tr.SpikeCount(255) {
		t.Fatalf("pixel 0 relayed %d spikes, want %d", counts[0], tr.SpikeCount(255))
	}
	if counts[1] != tr.SpikeCount(128) {
		t.Fatalf("pixel 1 relayed %d spikes, want %d", counts[1], tr.SpikeCount(128))
	}
	if counts[2] != 0 || counts[3] != 0 {
		t.Fatalf("dark pixels produced spikes: %v", counts)
	}
}

func TestInjectFrameErrors(t *testing.T) {
	net, _ := buildPixelPassthrough()
	p, _ := corelet.Place(net, router.Mesh{W: 1, H: 1})
	eng, _ := chip.New(p.Mesh, p.Configs)
	tr := DefaultTransducer()
	if _, err := tr.InjectFrame(eng, p, "nosuch", NewFrame(2, 2), 0); err == nil {
		t.Fatal("unknown input group accepted")
	}
	if _, err := tr.InjectFrame(eng, p, "pixels", NewFrame(3, 3), 0); err == nil {
		t.Fatal("frame/pin size mismatch accepted")
	}
}

func TestCountByNameIgnoresOtherGroups(t *testing.T) {
	net, px := buildPixelPassthrough()
	p, _ := corelet.Place(net, router.Mesh{W: 1, H: 1})
	eng, _ := chip.New(p.Mesh, p.Configs)
	if err := p.Inject(eng, "pixels", 0, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run(2)
	if got := CountByName(p, eng.DrainOutputs(), "wrongname", px); got[0] != 0 {
		t.Fatal("CountByName matched the wrong group")
	}
}
