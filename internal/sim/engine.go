package sim

import (
	"fmt"
	"sort"
	"sync"

	"truenorth/internal/core"
	"truenorth/internal/router"
)

// Options is the engine-neutral construction configuration shared by every
// kernel expression. Individual engines consume the fields that apply to
// them and document the ones they ignore, so call sites stay
// engine-agnostic: the same option list works whether the model runs on the
// silicon model or the parallel simulator.
type Options struct {
	// Workers is the parallel worker count. 0 selects the engine's default
	// (GOMAXPROCS for Compass); the single-threaded chip model accepts and
	// ignores it.
	Workers int
	// Aggregate selects pairwise spike aggregation in the Compass engine
	// (default true); the chip model routes spikes as they occur and has no
	// message layer to aggregate.
	Aggregate bool
}

// Option configures engine construction.
type Option func(*Options)

// BuildOptions folds opts over the defaults. Engine constructors call this;
// applications only construct Option values.
func BuildOptions(opts []Option) Options {
	o := Options{Aggregate: true}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// WithWorkers sets the worker (thread) count for engines with a parallel
// compute phase. 0 (the default) means the engine's own default; values
// below 0 are treated as 1. The canonical chip model is defined to be
// single-threaded — it accepts this option and ignores it, so that a
// worker-tuned call site can switch engines without edits.
func WithWorkers(n int) Option {
	return func(o *Options) { o.Workers = n }
}

// WithAggregation toggles pairwise spike aggregation (default on) in
// engines with a message-passing delivery phase. Results are identical
// either way; only the communication cost differs.
func WithAggregation(on bool) Option {
	return func(o *Options) { o.Aggregate = on }
}

// Factory constructs one engine expression over a mesh and its row-major
// core configurations.
type Factory func(mesh router.Mesh, configs []*core.Config, opts ...Option) (Engine, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register makes an engine expression available to NewEngine under name.
// Engine packages self-register from init, so importing an engine package
// (directly or blank) is what populates the registry — the database/sql
// driver pattern. Register panics on a duplicate or empty name: both are
// build-time wiring mistakes.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || f == nil {
		panic("sim: Register with empty name or nil factory")
	}
	if _, dup := registry[name]; dup {
		panic("sim: duplicate engine registration " + name)
	}
	registry[name] = f
}

// NewEngine constructs the named engine expression. It is the single
// construction path for tools and services: the engine name is data (a
// flag, a JSON field), not a compiled-in switch.
func NewEngine(name string, mesh router.Mesh, configs []*core.Config, opts ...Option) (Engine, error) {
	registryMu.RLock()
	f := registry[name]
	registryMu.RUnlock()
	if f == nil {
		return nil, fmt.Errorf("sim: unknown engine %q (have %v)", name, EngineNames())
	}
	return f(mesh, configs, opts...)
}

// EngineNames returns the registered engine names, sorted.
func EngineNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CheckedInjector is implemented by engines whose Inject has a validating
// twin. Inject is the kernel-internal fast path: it silently drops
// out-of-range spikes (counted in NoC().Dropped), which is the right
// behavior inside the tick loop but wrong at a trust boundary — a service
// accepting spikes from the network must reject a bad address, not absorb
// it. Both kernel expressions implement this interface.
type CheckedInjector interface {
	// InjectChecked is Inject with validation: it returns a descriptive
	// error (and delivers nothing) when (x, y) is outside the mesh or an
	// unpopulated slot, axon is outside [0, 256), or delay is negative.
	InjectChecked(x, y, axon, delay int) error
}

// InjectChecked injects through eng's validating path when it has one and
// falls back to the unchecked Inject otherwise — the helper trust-boundary
// code calls so it never silently drops on a conforming engine.
func InjectChecked(eng Engine, x, y, axon, delay int) error {
	if ci, ok := eng.(CheckedInjector); ok {
		return ci.InjectChecked(x, y, axon, delay)
	}
	eng.Inject(x, y, axon, delay)
	return nil
}
