// Package sim defines the engine-neutral simulation contract shared by the
// two expressions of the neurosynaptic kernel: the silicon model
// (internal/chip) and the parallel software simulator (internal/compass).
//
// Applications, experiments, and the corelet toolchain program against this
// interface, which is what lets any network "run without modification" on
// either expression — the property the paper establishes between Compass and
// TrueNorth.
package sim

import (
	"truenorth/internal/core"
	"truenorth/internal/router"
)

// OutputSpike is a spike captured by an external output sink.
type OutputSpike struct {
	// Tick is the tick at which the source neuron fired.
	Tick uint64
	// ID identifies the output sink (assigned at placement time).
	ID int32
}

// NoCStats accumulates communication-fabric activity, the inputs to the
// communication terms of the energy model.
type NoCStats struct {
	// RoutedSpikes counts packets injected into the mesh.
	RoutedSpikes uint64
	// Hops counts router traversals summed over all packets.
	Hops uint64
	// Crossings counts chip-boundary (merge/split) traversals.
	Crossings uint64
	// Dropped counts packets without a reachable destination (off-mesh or
	// dead cores).
	Dropped uint64
	// Detours counts packets that deviated from pure dimension-order
	// routing to avoid dead cores.
	Detours uint64
}

// Add accumulates o into s.
func (s *NoCStats) Add(o NoCStats) {
	s.RoutedSpikes += o.RoutedSpikes
	s.Hops += o.Hops
	s.Crossings += o.Crossings
	s.Dropped += o.Dropped
	s.Detours += o.Detours
}

// Engine is one expression of the neurosynaptic kernel. Implementations
// must be deterministic: identical configurations, injections, and step
// counts produce identical spikes, outputs, and counters.
type Engine interface {
	// Step advances the system one tick: Synapse, Neuron, then Network
	// phases of the kernel.
	Step()
	// Run calls Step n times.
	Run(n int)
	// Tick returns the next tick to be processed (0 before the first Step).
	Tick() uint64
	// Inject schedules an external spike on the axon of the core at (x, y),
	// arriving delay ticks from the next processed tick (delay ≥ 0: delay 0
	// is integrated by the very next Step).
	Inject(x, y, axon, delay int)
	// DrainOutputs returns and clears the accumulated output spikes.
	DrainOutputs() []OutputSpike
	// Counters returns aggregate core counters.
	Counters() core.Counters
	// NoC returns aggregate communication statistics.
	NoC() NoCStats
	// Core returns the core at (x, y), or nil if the slot is empty.
	Core(x, y int) *core.Core
	// Mesh returns the routing substrate description.
	Mesh() router.Mesh
}
