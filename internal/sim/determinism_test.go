package sim_test

import (
	"fmt"
	"testing"

	"truenorth/internal/chip"
	"truenorth/internal/compass"
	"truenorth/internal/core"
	"truenorth/internal/netgen"
	"truenorth/internal/router"
	"truenorth/internal/sim"
)

// determinismNet builds a stochastic recurrent network with a sample of
// neurons rerouted to output sinks. Stochastic threshold jitter makes the
// dynamics chaotic, so any nondeterminism anywhere in an engine — unseeded
// randomness, map iteration order reaching the spike stream, a racy worker
// — diverges the output within a few ticks ("a sensitive assay for any
// deviation from perfect correspondence").
func determinismNet(t *testing.T, seed int64) (router.Mesh, []*core.Config) {
	t.Helper()
	mesh := router.Mesh{W: 4, H: 4, TileW: 4, TileH: 4}
	configs, err := netgen.Build(netgen.Params{
		Grid: mesh, RateHz: 90, SynPerNeuron: 64, Seed: seed, Stochastic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for ci := range configs {
		for j := 0; j < core.NeuronsPerCore; j += 16 {
			configs[ci].Targets[j] = core.Target{Valid: true, Output: true, OutputID: int32(ci<<8 | j)}
		}
	}
	return mesh, configs
}

// stream runs the engine and returns its full output-spike stream rendered
// tick-for-tick, spike-for-spike as one comparable string.
func stream(t *testing.T, eng sim.Engine, ticks int) string {
	t.Helper()
	eng.Run(ticks)
	out := eng.DrainOutputs()
	s := fmt.Sprintf("%d spikes\n", len(out))
	for _, o := range out {
		s += fmt.Sprintf("%d %d\n", o.Tick, o.ID)
	}
	return s
}

// TestCrossEngineBitwiseReproducibility is the paper's one-to-one
// equivalence claim as an executable test: the same seeded network run
// twice on the silicon model and twice on the parallel Compass engine must
// produce four identical output-spike streams, across multiple seeds and
// worker counts.
func TestCrossEngineBitwiseReproducibility(t *testing.T) {
	const ticks = 120
	for _, seed := range []int64{1, 20140613, 46} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			var streams [4]string
			names := [4]string{"chip run 1", "chip run 2", "compass(3 workers)", "compass(7 workers)"}
			for i := 0; i < 2; i++ {
				mesh, configs := determinismNet(t, seed)
				eng, err := chip.New(mesh, configs)
				if err != nil {
					t.Fatal(err)
				}
				streams[i] = stream(t, eng, ticks)
			}
			for i, workers := range []int{3, 7} {
				mesh, configs := determinismNet(t, seed)
				eng, err := compass.New(mesh, configs, compass.WithWorkers(workers))
				if err != nil {
					t.Fatal(err)
				}
				streams[2+i] = stream(t, eng, ticks)
			}
			if streams[0] == fmt.Sprintf("0 spikes\n") {
				t.Fatal("network produced no output spikes; the assay is vacuous")
			}
			for i := 1; i < 4; i++ {
				if streams[i] != streams[0] {
					t.Errorf("%s diverged from %s (%d vs %d bytes)", names[i], names[0], len(streams[i]), len(streams[0]))
				}
			}
		})
	}
}

// TestBuildIsReproducible pins the construction side: netgen must emit
// byte-identical core configurations for equal seeds (the prng.Rand
// contract), and different seeds must actually differ.
func TestBuildIsReproducible(t *testing.T) {
	grid := router.Mesh{W: 3, H: 3}
	build := func(seed int64) string {
		cfgs, err := netgen.Build(netgen.Params{Grid: grid, RateHz: 50, SynPerNeuron: 32, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		s := ""
		for _, cfg := range cfgs {
			s += fmt.Sprintf("%+v\n", *cfg)
		}
		return s
	}
	if build(7) != build(7) {
		t.Fatal("equal seeds produced different networks")
	}
	if build(7) == build(8) {
		t.Fatal("different seeds produced identical networks")
	}
}
