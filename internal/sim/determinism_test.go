package sim_test

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"truenorth/internal/chip"
	"truenorth/internal/compass"
	"truenorth/internal/core"
	"truenorth/internal/netgen"
	"truenorth/internal/router"
	"truenorth/internal/runtime"
	"truenorth/internal/sim"
)

// determinismNet builds a stochastic recurrent network with a sample of
// neurons rerouted to output sinks. Stochastic threshold jitter makes the
// dynamics chaotic, so any nondeterminism anywhere in an engine — unseeded
// randomness, map iteration order reaching the spike stream, a racy worker
// — diverges the output within a few ticks ("a sensitive assay for any
// deviation from perfect correspondence").
func determinismNet(t *testing.T, seed int64) (router.Mesh, []*core.Config) {
	t.Helper()
	mesh := router.Mesh{W: 4, H: 4, TileW: 4, TileH: 4}
	configs, err := netgen.Build(netgen.Params{
		Grid: mesh, RateHz: 90, SynPerNeuron: 64, Seed: seed, Stochastic: true,
		OutputEvery: 16, // tap neurons 0, 16, 32, … of every core
	})
	if err != nil {
		t.Fatal(err)
	}
	return mesh, configs
}

// render serializes an output-spike stream tick-for-tick, spike-for-spike
// as one comparable string.
func render(out []sim.OutputSpike) string {
	s := fmt.Sprintf("%d spikes\n", len(out))
	for _, o := range out {
		s += fmt.Sprintf("%d %d\n", o.Tick, o.ID)
	}
	return s
}

// stream runs the engine and returns its full rendered output stream.
func stream(t *testing.T, eng sim.Engine, ticks int) string {
	t.Helper()
	eng.Run(ticks)
	return render(eng.DrainOutputs())
}

// TestCrossEngineBitwiseReproducibility is the paper's one-to-one
// equivalence claim as an executable test: the same seeded network run
// twice on the silicon model and twice on the parallel Compass engine must
// produce four identical output-spike streams, across multiple seeds and
// worker counts.
func TestCrossEngineBitwiseReproducibility(t *testing.T) {
	const ticks = 120
	for _, seed := range []int64{1, 20140613, 46} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			var streams [4]string
			names := [4]string{"chip run 1", "chip run 2", "compass(3 workers)", "compass(7 workers)"}
			for i := 0; i < 2; i++ {
				mesh, configs := determinismNet(t, seed)
				eng, err := chip.New(mesh, configs)
				if err != nil {
					t.Fatal(err)
				}
				streams[i] = stream(t, eng, ticks)
			}
			for i, workers := range []int{3, 7} {
				mesh, configs := determinismNet(t, seed)
				eng, err := compass.New(mesh, configs, sim.WithWorkers(workers))
				if err != nil {
					t.Fatal(err)
				}
				streams[2+i] = stream(t, eng, ticks)
			}
			if streams[0] == fmt.Sprintf("0 spikes\n") {
				t.Fatal("network produced no output spikes; the assay is vacuous")
			}
			for i := 1; i < 4; i++ {
				if streams[i] != streams[0] {
					t.Errorf("%s diverged from %s (%d vs %d bytes)", names[i], names[0], len(streams[i]), len(streams[0]))
				}
			}
		})
	}
}

// drivenNet builds the sparse, mostly-driven variant of the assay network:
// seven eighths of each core's neurons are event-driven relays the
// active-neuron kernel may skip on quiet ticks, while the stochastic tonic
// pacemakers keep drawing PRNG jitter every tick — so a single missing,
// extra, or misordered neuron evaluation anywhere desynchronizes the shared
// draw stream and diverges the output within a few ticks.
func drivenNet(t *testing.T, seed int64) (router.Mesh, []*core.Config) {
	t.Helper()
	mesh := router.Mesh{W: 4, H: 4, TileW: 4, TileH: 4}
	configs, err := netgen.Build(netgen.Params{
		Grid: mesh, RateHz: 40, SynPerNeuron: 48, Seed: seed, Stochastic: true,
		DrivenFraction: 0.875, OutputEvery: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return mesh, configs
}

// fullScanner is the per-core dense-baseline knob both engines expose
// through their core slices.
type fullScanner interface {
	Cores() []*core.Core
}

// setFullScan forces the dense Neuron-phase baseline on every core of eng.
func setFullScan(t *testing.T, eng sim.Engine) {
	t.Helper()
	fs, ok := eng.(fullScanner)
	if !ok {
		t.Fatalf("engine %T does not expose Cores()", eng)
	}
	for _, c := range fs.Cores() {
		c.SetFullNeuronScan(true)
	}
}

// TestActiveNeuronKernelCrossEngineReproducibility pins the tentpole
// invariant of the per-neuron event-driven kernel: on a sparse
// mostly-driven network, the masked Neuron phase and the dense full-scan
// baseline must produce bit-identical output streams on both engines —
// while actually evaluating fewer neurons.
func TestActiveNeuronKernelCrossEngineReproducibility(t *testing.T) {
	const ticks = 150
	for _, seed := range []int64{1, 20140613, 46} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			arms := []struct {
				name     string
				engine   string
				opts     []sim.Option
				fullScan bool
			}{
				{"chip active", "chip", nil, false},
				{"chip full-scan", "chip", nil, true},
				{"compass(3) active", "compass", []sim.Option{sim.WithWorkers(3)}, false},
				{"compass(5) full-scan", "compass", []sim.Option{sim.WithWorkers(5)}, true},
			}
			streams := make([]string, len(arms))
			var activeUpdates, fullUpdates uint64
			for i, arm := range arms {
				mesh, configs := drivenNet(t, seed)
				eng, err := sim.NewEngine(arm.engine, mesh, configs, arm.opts...)
				if err != nil {
					t.Fatal(err)
				}
				if arm.fullScan {
					setFullScan(t, eng)
				}
				streams[i] = stream(t, eng, ticks)
				switch i {
				case 0:
					activeUpdates = eng.Counters().NeuronUpdates
				case 1:
					fullUpdates = eng.Counters().NeuronUpdates
				}
			}
			if streams[0] == "0 spikes\n" {
				t.Fatal("network produced no output spikes; the assay is vacuous")
			}
			for i := 1; i < len(arms); i++ {
				if streams[i] != streams[0] {
					t.Errorf("%s diverged from %s (%d vs %d bytes)",
						arms[i].name, arms[0].name, len(streams[i]), len(streams[0]))
				}
			}
			if activeUpdates >= fullUpdates {
				t.Errorf("active kernel evaluated %d neurons, full scan %d: no work skipped",
					activeUpdates, fullUpdates)
			}
		})
	}
}

// TestSessionDriverPreservesSpikeStream re-runs the equivalence claim
// through the session runtime: a run that is paced, paused, resumed,
// checkpointed, over-run, and rewound mid-flight must emit the exact
// output stream of an uninterrupted batch run — on both engines. This is
// what makes live serving trustworthy: *operating* a session (at any
// moment, at any rate) cannot perturb what it computes, because every
// session command lands between ticks, never inside one.
func TestSessionDriverPreservesSpikeStream(t *testing.T) {
	const ticks = 120
	const seed = 46
	ctx := context.Background()

	// Reference: one uninterrupted batch run on the silicon model.
	mesh, configs := determinismNet(t, seed)
	ref, err := sim.NewEngine("chip", mesh, configs)
	if err != nil {
		t.Fatal(err)
	}
	want := stream(t, ref, ticks)
	if want == "0 spikes\n" {
		t.Fatal("network produced no output spikes; the assay is vacuous")
	}

	for _, tc := range []struct {
		name string
		opts []sim.Option
	}{
		{"chip", nil},
		{"compass", []sim.Option{sim.WithWorkers(5)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mesh, configs := determinismNet(t, seed)
			eng, err := sim.NewEngine(tc.name, mesh, configs, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			s, err := runtime.New(eng)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			// Segment 1: a paced asynchronous run, paused somewhere
			// mid-flight (wherever the wall clock lands — determinism must
			// hold for *any* interruption point), then resumed free-running
			// to tick 60.
			if err := s.SetTickRate(ctx, 2000); err != nil {
				t.Fatal(err)
			}
			if err := s.Start(60); err != nil {
				t.Fatal(err)
			}
			time.Sleep(5 * time.Millisecond)
			if _, err := s.Pause(ctx); err != nil {
				t.Fatal(err)
			}
			if err := s.SetTickRate(ctx, 0); err != nil {
				t.Fatal(err)
			}
			if err := s.Resume(ctx); err != nil {
				t.Fatal(err)
			}
			if err := s.Wait(ctx); err != nil {
				t.Fatal(err)
			}
			part1, err := s.Drain(ctx) // ticks [0, 60)
			if err != nil {
				t.Fatal(err)
			}
			// Checkpoint at tick 60, overshoot 25 ticks without draining,
			// and rewind: the overshoot's spikes must vanish without trace.
			var ckpt bytes.Buffer
			if err := s.Checkpoint(ctx, &ckpt); err != nil {
				t.Fatal(err)
			}
			if err := s.Run(ctx, 25); err != nil {
				t.Fatal(err)
			}
			if err := s.Restore(ctx, &ckpt); err != nil {
				t.Fatal(err)
			}
			// Segment 2: finish the run from the restored state.
			if err := s.RunUntil(ctx, ticks); err != nil {
				t.Fatal(err)
			}
			part2, err := s.Drain(ctx) // ticks [60, 120)
			if err != nil {
				t.Fatal(err)
			}
			got := render(append(part1, part2...))
			if got != want {
				t.Errorf("session-driven %s stream diverged from the batch run (%d vs %d bytes)",
					tc.name, len(got), len(want))
			}
		})
	}
}

// TestBuildIsReproducible pins the construction side: netgen must emit
// byte-identical core configurations for equal seeds (the prng.Rand
// contract), and different seeds must actually differ.
func TestBuildIsReproducible(t *testing.T) {
	grid := router.Mesh{W: 3, H: 3}
	build := func(seed int64) string {
		cfgs, err := netgen.Build(netgen.Params{Grid: grid, RateHz: 50, SynPerNeuron: 32, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		s := ""
		for _, cfg := range cfgs {
			s += fmt.Sprintf("%+v\n", *cfg)
		}
		return s
	}
	if build(7) != build(7) {
		t.Fatal("equal seeds produced different networks")
	}
	if build(7) == build(8) {
		t.Fatal("different seeds produced identical networks")
	}
}

// schedMode mirrors the runtime package's TN_RUNTIME_SCHED knob: when set,
// every session in this file is driven by a pooled Scheduler instead of the
// legacy per-session goroutine, so the checkpoint/restore assay below also
// covers the batched servicer (scripts/check.sh runs this package both ways).
var schedMode = os.Getenv("TN_RUNTIME_SCHED") == "1"

func newSession(t *testing.T, eng sim.Engine) *runtime.Session {
	t.Helper()
	var opts []runtime.Option
	if schedMode {
		d := runtime.NewScheduler(runtime.SchedulerConfig{})
		t.Cleanup(d.Close)
		opts = append(opts, runtime.WithScheduler(d))
	}
	s, err := runtime.New(eng, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// quiescentNet is the stress workload for the per-tick pending-core mask:
// the driven assay network with all but two cores converted to pure
// event-driven relay cores (no leak, no jitter, zero initial potential).
// Those cores are completely silent — cold in the engines' activity masks —
// until a spike is routed to them, then go cold again once their delay rings
// drain. The two surviving pacemaker cores keep injecting traffic, so cores
// flap between hot and cold for the whole run, exercising every
// mask-maintenance path: direct injection, pending-slot aliasing, routed
// delivery, and checkpoint/restore mask rebuilds.
func quiescentNet(t *testing.T, seed int64) (router.Mesh, []*core.Config) {
	t.Helper()
	mesh, configs := drivenNet(t, seed)
	for ci, cfg := range configs {
		if ci == 0 || ci == 9 {
			continue // pacemaker cores keep their tonic neurons
		}
		for j := range cfg.Neurons {
			cfg.Neurons[j].Leak = 0
			cfg.Neurons[j].Threshold = 4
			cfg.Neurons[j].ThresholdMask = 0
			cfg.InitV[j] = 0
		}
	}
	return mesh, configs
}

// TestQuiescentCheckpointCrossEngine pins the pending-core mask against the
// session runtime: on a quiescent-heavy network, a checkpointed, over-run,
// and rewound session on either engine must reproduce the uninterrupted
// chip batch run spike-for-spike AND land in the identical final state —
// every core's potentials, delay ring, PRNG, and counters. Restore rebuilds
// the activity masks from core state; any core left wrongly cold after a
// rewind silently drops its pending spikes, which this assay detects.
func TestQuiescentCheckpointCrossEngine(t *testing.T) {
	const ticks = 200
	const seed = 46
	ctx := context.Background()

	mesh, configs := quiescentNet(t, seed)
	ref, err := sim.NewEngine("chip", mesh, configs)
	if err != nil {
		t.Fatal(err)
	}
	want := stream(t, ref, ticks)
	if want == "0 spikes\n" {
		t.Fatal("network produced no output spikes; the assay is vacuous")
	}
	refCores := ref.(fullScanner).Cores()
	// The point of the workload: most Neuron-phase work must be skipped,
	// or the masks were never cold and the assay proves nothing.
	if got, full := ref.Counters().NeuronUpdates, uint64(ticks)*uint64(len(refCores))*core.NeuronsPerCore; got*2 > full {
		t.Fatalf("reference evaluated %d of %d neuron slots — workload not quiescent", got, full)
	}

	for _, tc := range []struct {
		name string
		opts []sim.Option
	}{
		{"chip", nil},
		{"compass", []sim.Option{sim.WithWorkers(5)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mesh, configs := quiescentNet(t, seed)
			eng, err := sim.NewEngine(tc.name, mesh, configs, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			s := newSession(t, eng)
			defer s.Close()
			// Segment 1, then checkpoint mid-run with spikes in flight.
			if err := s.RunUntil(ctx, 80); err != nil {
				t.Fatal(err)
			}
			part1, err := s.Drain(ctx)
			if err != nil {
				t.Fatal(err)
			}
			var ckpt bytes.Buffer
			if err := s.Checkpoint(ctx, &ckpt); err != nil {
				t.Fatal(err)
			}
			// Overshoot 40 ticks — plenty for cores to change hot/cold state
			// — then rewind; the masks must be rebuilt, not remembered.
			if err := s.Run(ctx, 40); err != nil {
				t.Fatal(err)
			}
			if err := s.Restore(ctx, &ckpt); err != nil {
				t.Fatal(err)
			}
			if err := s.RunUntil(ctx, ticks); err != nil {
				t.Fatal(err)
			}
			part2, err := s.Drain(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if got := render(append(part1, part2...)); got != want {
				t.Errorf("checkpointed %s stream diverged from the batch run (%d vs %d bytes)",
					tc.name, len(got), len(want))
			}
			// Final-state equivalence: spike streams only sample tapped
			// neurons; the full per-core state catches silent divergence in
			// untapped cores.
			if a, b := eng.Counters(), ref.Counters(); a.Spikes != b.Spikes || a.SynEvents != b.SynEvents || a.AxonEvents != b.AxonEvents {
				t.Errorf("final counters diverged: %+v vs reference %+v", a, b)
			}
			got := eng.(fullScanner).Cores()
			for i := range got {
				a := fmt.Sprintf("%+v", got[i].SaveState())
				b := fmt.Sprintf("%+v", refCores[i].SaveState())
				if a != b {
					t.Errorf("core %d final state diverged from the batch run", i)
					break
				}
			}
		})
	}
}
