package compass

import (
	"math/rand"
	"testing"
	"testing/quick"

	"truenorth/internal/chip"
	"truenorth/internal/core"
	"truenorth/internal/neuron"
	"truenorth/internal/router"
	"truenorth/internal/sim"
)

// randomNetwork builds a W×H mesh of cores with pseudo-random crossbars,
// stochastic neuron modes, random delays, and random cross-core targets —
// a miniature version of the paper's probabilistically generated recurrent
// networks, which "are a sensitive assay for any deviation from perfect
// correspondence".
func randomNetwork(w, h int, seed int64) []*core.Config {
	rng := rand.New(rand.NewSource(seed))
	configs := make([]*core.Config, w*h)
	for ci := range configs {
		cfg := core.InertConfig()
		cfg.Seed = uint16(rng.Intn(1<<16-1) + 1)
		for a := 0; a < core.AxonsPerCore; a++ {
			cfg.AxonType[a] = uint8(rng.Intn(4))
			for j := 0; j < 8; j++ { // sparse crossbar
				cfg.Synapses[a].Set(rng.Intn(core.NeuronsPerCore))
			}
		}
		for n := 0; n < core.NeuronsPerCore; n++ {
			cfg.Neurons[n] = neuron.Params{
				Weights:       [4]int32{int32(rng.Intn(100)), -int32(rng.Intn(100)), 60, -60},
				StochSyn:      [4]bool{false, false, rng.Intn(2) == 0, false},
				Leak:          int32(rng.Intn(5) - 2),
				StochLeak:     rng.Intn(4) == 0,
				Threshold:     int32(rng.Intn(200) + 20),
				ThresholdMask: uint32(rng.Intn(4)) * 3,
				NegThreshold:  100,
				NegSaturate:   true,
				Reset:         neuron.ResetMode(rng.Intn(3)),
			}
			tx, ty := rng.Intn(w), rng.Intn(h)
			cx, cy := ci%w, ci/w
			cfg.Targets[n] = core.Target{
				Valid: true,
				DX:    int16(tx - cx),
				DY:    int16(ty - cy),
				Axon:  uint8(rng.Intn(core.AxonsPerCore)),
				Delay: uint8(rng.Intn(core.MaxDelay) + 1),
			}
		}
		configs[ci] = cfg
	}
	return configs
}

// kick injects a burst of external spikes to start recurrent activity.
func kick(e sim.Engine, w, h int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < 200; i++ {
		e.Inject(rng.Intn(w), rng.Intn(h), rng.Intn(core.AxonsPerCore), rng.Intn(4))
	}
}

func spikesEqual(t *testing.T, a, b []sim.OutputSpike, labelA, labelB string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s emitted %d output spikes, %s emitted %d", labelA, len(a), labelB, len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output spike %d differs: %s=%+v %s=%+v", i, labelA, a[i], labelB, b[i])
		}
	}
}

// TestOneToOneEquivalenceRandomNetworks is the paper's Section VI-A
// methodology in miniature: the silicon model and Compass must agree 100%,
// with "not a single spike mismatch", on stochastically rich recurrent
// networks.
func TestOneToOneEquivalenceRandomNetworks(t *testing.T) {
	const w, h, ticks = 6, 6, 300
	for seed := int64(1); seed <= 3; seed++ {
		configs := randomNetwork(w, h, seed)
		// Route a sample of neurons to outputs so spike streams are
		// directly comparable.
		for ci := 0; ci < w*h; ci += 3 {
			for n := 0; n < core.NeuronsPerCore; n += 16 {
				configs[ci].Targets[n] = core.Target{Valid: true, Output: true, OutputID: int32(ci<<8 | n)}
			}
		}
		mesh := router.Mesh{W: w, H: h}

		hw, err := chip.New(mesh, configs)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := New(mesh, configs, sim.WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}

		kick(hw, w, h, seed+100)
		kick(sw, w, h, seed+100)
		hw.Run(ticks)
		sw.Run(ticks)

		spikesEqual(t, hw.DrainOutputs(), sw.DrainOutputs(), "chip", "compass")
		if hc, sc := hw.Counters(), sw.Counters(); hc != sc {
			t.Fatalf("seed %d: counters diverge: chip=%+v compass=%+v", seed, hc, sc)
		}
		if hn, sn := hw.NoC(), sw.NoC(); hn != sn {
			t.Fatalf("seed %d: NoC stats diverge: chip=%+v compass=%+v", seed, hn, sn)
		}
		if hw.Counters().Spikes == 0 {
			t.Fatalf("seed %d: network silent; equivalence test is vacuous", seed)
		}
	}
}

func TestEquivalenceAcrossWorkerCounts(t *testing.T) {
	const w, h, ticks = 5, 4, 200
	configs := randomNetwork(w, h, 9)
	for ci := range configs {
		configs[ci].Targets[0] = core.Target{Valid: true, Output: true, OutputID: int32(ci)}
	}
	mesh := router.Mesh{W: w, H: h}

	var ref []sim.OutputSpike
	var refCnt core.Counters
	for _, workers := range []int{1, 2, 3, 7, 16, 64} {
		s, err := New(mesh, configs, sim.WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		kick(s, w, h, 5)
		s.Run(ticks)
		out := s.DrainOutputs()
		cnt := s.Counters()
		if ref == nil {
			ref, refCnt = out, cnt
			if cnt.Spikes == 0 {
				t.Fatal("silent network; test is vacuous")
			}
			continue
		}
		spikesEqual(t, ref, out, "1 worker", "n workers")
		if cnt != refCnt {
			t.Fatalf("workers=%d: counters %+v, want %+v", workers, cnt, refCnt)
		}
	}
}

func TestEquivalenceWithFaults(t *testing.T) {
	const w, h, ticks = 6, 6, 150
	configs := randomNetwork(w, h, 21)
	for ci := range configs {
		configs[ci].Targets[1] = core.Target{Valid: true, Output: true, OutputID: int32(ci)}
	}
	mesh := router.Mesh{W: w, H: h}
	hw, _ := chip.New(mesh, configs)
	sw, _ := New(mesh, configs, sim.WithWorkers(3))
	for _, e := range []sim.Engine{hw, sw} {
		kick(e, w, h, 2)
	}
	hw.DisableCore(3, 3)
	sw.DisableCore(3, 3)
	hw.Run(ticks)
	sw.Run(ticks)
	spikesEqual(t, hw.DrainOutputs(), sw.DrainOutputs(), "chip", "compass")
	if hn, sn := hw.NoC(), sw.NoC(); hn != sn {
		t.Fatalf("NoC stats diverge under faults: chip=%+v compass=%+v", hn, sn)
	}
}

func TestRebalancePreservesBehavior(t *testing.T) {
	const w, h = 5, 4
	configs := randomNetwork(w, h, 33)
	for ci := range configs {
		configs[ci].Targets[2] = core.Target{Valid: true, Output: true, OutputID: int32(ci)}
	}
	mesh := router.Mesh{W: w, H: h}

	a, _ := New(mesh, configs, sim.WithWorkers(4))
	b, _ := New(mesh, configs, sim.WithWorkers(4))
	kick(a, w, h, 3)
	kick(b, w, h, 3)
	a.Run(100)
	b.Run(50)
	b.Rebalance()
	b.Run(50)
	spikesEqual(t, a.DrainOutputs(), b.DrainOutputs(), "no-rebalance", "rebalanced")
	if ac, bc := a.Counters(), b.Counters(); ac != bc {
		t.Fatalf("rebalance changed counters: %+v vs %+v", ac, bc)
	}
}

func TestPartitionCoversAllCores(t *testing.T) {
	configs := randomNetwork(4, 4, 1)
	configs[5] = nil // hole
	s, err := New(router.Mesh{W: 4, H: 4}, configs, sim.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for w, idxs := range s.owned {
		for _, idx := range idxs {
			if seen[idx] {
				t.Fatalf("core %d owned twice", idx)
			}
			seen[idx] = true
			if s.owner[idx] != int32(w) {
				t.Fatalf("owner[%d] = %d, want %d", idx, s.owner[idx], w)
			}
		}
	}
	if len(seen) != 15 {
		t.Fatalf("partition covers %d cores, want 15", len(seen))
	}
	if s.owner[5] != -1 {
		t.Fatal("unpopulated slot has an owner")
	}
}

func TestWorkersClampedToPopulatedCores(t *testing.T) {
	configs := []*core.Config{core.InertConfig(), core.InertConfig()}
	s, err := New(router.Mesh{W: 4, H: 1}, configs, sim.WithWorkers(16))
	if err != nil {
		t.Fatal(err)
	}
	if s.Workers() != 2 {
		t.Fatalf("Workers = %d, want clamped to 2", s.Workers())
	}
}

func TestSpikeToUnpopulatedSlotDropped(t *testing.T) {
	cfg := core.InertConfig()
	cfg.Synapses[0].Set(0)
	cfg.Neurons[0] = neuron.Identity()
	cfg.Targets[0] = core.Target{Valid: true, DX: 1, Axon: 0, Delay: 1}
	s, err := New(router.Mesh{W: 2, H: 1}, []*core.Config{cfg}, sim.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	s.Inject(0, 0, 0, 0)
	s.Run(3)
	if got := s.NoC().Dropped; got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
}

func TestLoadImbalanceReasonable(t *testing.T) {
	const w, h = 8, 4
	configs := randomNetwork(w, h, 77)
	s, _ := New(router.Mesh{W: w, H: h}, configs, sim.WithWorkers(4))
	kick(s, w, h, 8)
	s.Run(100)
	if got := s.LoadImbalance(); got < 1 || got > 4 {
		t.Fatalf("LoadImbalance = %.2f, want in [1, 4]", got)
	}
}

func TestInjectInvalidDropped(t *testing.T) {
	s, _ := New(router.Mesh{W: 2, H: 2}, []*core.Config{core.InertConfig()}, sim.WithWorkers(1))
	s.Inject(9, 9, 0, 0)
	s.Inject(0, 0, 999, 0)
	if got := s.NoC().Dropped; got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(router.Mesh{W: 0, H: 1}, nil); err == nil {
		t.Error("invalid mesh accepted")
	}
	if _, err := New(router.Mesh{W: 1, H: 1}, make([]*core.Config, 5)); err == nil {
		t.Error("too many configs accepted")
	}
	bad := core.InertConfig()
	bad.Neurons[0].Weights[0] = 9999
	if _, err := New(router.Mesh{W: 1, H: 1}, []*core.Config{bad}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestLongRegressionEquivalence(t *testing.T) {
	// A longer-horizon regression (the paper ran 10k to 100M time steps;
	// we run 10k here and leave longer horizons to cmd/regress).
	if testing.Short() {
		t.Skip("10k-tick regression in -short mode")
	}
	const w, h, ticks = 4, 4, 10_000
	configs := randomNetwork(w, h, 55)
	// Make the network self-sustaining: a few tonic drivers.
	for n := 0; n < 32; n++ {
		configs[0].Neurons[n] = neuron.Params{Leak: 5, Threshold: 40, Reset: neuron.ResetToV}
	}
	for ci := range configs {
		configs[ci].Targets[3] = core.Target{Valid: true, Output: true, OutputID: int32(ci)}
	}
	mesh := router.Mesh{W: w, H: h}
	hw, _ := chip.New(mesh, configs)
	sw, _ := New(mesh, configs, sim.WithWorkers(4))
	hw.Run(ticks)
	sw.Run(ticks)
	spikesEqual(t, hw.DrainOutputs(), sw.DrainOutputs(), "chip", "compass")
	if hc, sc := hw.Counters(), sw.Counters(); hc != sc {
		t.Fatalf("counters diverge after %d ticks: %+v vs %+v", ticks, hc, sc)
	}
	if hw.Counters().Spikes == 0 {
		t.Fatal("silent 10k-tick regression is vacuous")
	}
}

func TestPropertyEquivalenceOverRandomNetworks(t *testing.T) {
	// Property: for ANY generated network, seed, and worker count, the two
	// kernel expressions agree on every counter after a short run.
	f := func(seed uint16, workers uint8, stochastic bool) bool {
		grid := router.Mesh{W: 3, H: 3}
		configs, err := netgenBuild(grid, int64(seed), stochastic)
		if err != nil {
			return false
		}
		hw, err := chip.New(grid, configs)
		if err != nil {
			return false
		}
		sw, err := New(grid, configs, sim.WithWorkers(int(workers%6)+1))
		if err != nil {
			return false
		}
		hw.Run(60)
		sw.Run(60)
		return hw.Counters() == sw.Counters() && hw.NoC() == sw.NoC()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// netgenBuild builds a small stochastic recurrent network for the
// equivalence property without importing netgen here (avoiding an import
// cycle is not the issue — keeping the property self-contained is).
func netgenBuild(grid router.Mesh, seed int64, stochastic bool) ([]*core.Config, error) {
	rng := rand.New(rand.NewSource(seed))
	configs := make([]*core.Config, grid.W*grid.H)
	for ci := range configs {
		cfg := core.InertConfig()
		cfg.Seed = uint16(rng.Intn(1<<16-1) + 1)
		for a := 0; a < core.AxonsPerCore; a += 4 {
			cfg.AxonType[a] = uint8(rng.Intn(4))
			for k := 0; k < 4; k++ {
				cfg.Synapses[a].Set(rng.Intn(core.NeuronsPerCore))
			}
		}
		for j := 0; j < core.NeuronsPerCore; j += 2 {
			cfg.Neurons[j] = neuron.Params{
				Weights:      [4]int32{3, -2, 50, -50},
				StochSyn:     [4]bool{false, false, stochastic, stochastic},
				Leak:         int32(rng.Intn(4)),
				Threshold:    int32(rng.Intn(60) + 10),
				Reset:        neuron.ResetMode(rng.Intn(3)),
				NegThreshold: 30,
				NegSaturate:  true,
			}
			if stochastic {
				cfg.Neurons[j].ThresholdMask = 0x03
			}
			cfg.Targets[j] = core.Target{
				Valid: true,
				DX:    int16(rng.Intn(grid.W) - ci%grid.W),
				DY:    int16(rng.Intn(grid.H) - ci/grid.W),
				Axon:  uint8(rng.Intn(core.AxonsPerCore)),
				Delay: uint8(rng.Intn(15) + 1),
			}
		}
		configs[ci] = cfg
	}
	return configs, nil
}

func BenchmarkCompassStep(b *testing.B) {
	const w, h = 8, 8
	configs := randomNetwork(w, h, 5)
	s, err := New(router.Mesh{W: w, H: h}, configs)
	if err != nil {
		b.Fatal(err)
	}
	kick2 := func() {
		for i := 0; i < 500; i++ {
			s.Inject(i%w, (i/w)%h, i%256, i%4)
		}
	}
	kick2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
