// Package compass is the software expression of the neurosynaptic kernel: a
// multi-worker, semi-synchronous parallel simulator of networks of
// neurosynaptic cores, modeled on the Compass simulator of Preissl et al.
// (SC 2012) that the paper benchmarks against TrueNorth.
//
// Compass partitions cores across parallel workers (the paper: MPI processes
// × OpenMP threads; here: goroutines), runs the kernel's three phases per
// tick — Synapse (crossbar propagation + integration), Neuron (leak,
// threshold, fire), Network (spike delivery) — aggregates spikes between
// worker pairs into a single message, uses meticulous load balancing, and
// synchronizes with two barriers per tick.
//
// The engine is deterministic and spike-for-spike identical to the silicon
// model in internal/chip: both drive the same core.Core state machine, walk
// events in the same order, and deliver with the same axonal-delay
// semantics. That is the paper's co-design property — "any model on the
// software simulator runs unchanged on the hardware" — and the equivalence
// test suite verifies it.
package compass

import (
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"

	"truenorth/internal/core"
	"truenorth/internal/router"
	"truenorth/internal/sim"
)

// delivery is one spike event in flight between workers: the Network-phase
// payload after aggregation.
type delivery struct {
	core int32  // destination core, global row-major index
	tick uint64 // absolute integration tick
	axon uint8
}

// Sim is the parallel Compass engine. It implements sim.Engine.
type Sim struct {
	mesh    router.Mesh
	cores   []*core.Core // row-major, nil = absent
	tick    uint64
	dead    map[router.Point]bool
	anyDead bool

	workers int
	// owned[w] lists the core indices owned by worker w (ascending, and
	// worker ranges are in ascending global order, so concatenating
	// per-worker results preserves the canonical row-major order).
	owned [][]int32
	// owner maps a core index to its worker.
	owner []int32
	// outbox[src][dst] accumulates deliveries produced by worker src for
	// cores owned by worker dst during the compute phase.
	outbox [][][]delivery
	// perWorkerOut collects output spikes per worker during a tick.
	perWorkerOut [][]sim.OutputSpike
	// perWorkerNoC collects NoC stats per worker.
	perWorkerNoC []sim.NoCStats

	outputs []sim.OutputSpike
	// pending queues external injections beyond the 15-tick delay ring,
	// keyed by arrival tick (same semantics as chip.Model).
	pending map[uint64][]delivery
	// aggregate selects pairwise message aggregation (default true); see
	// WithAggregation.
	aggregate bool
	// deadFn is the dead-core predicate, built once at construction: it
	// reads s.dead through the receiver at call time, so it stays valid
	// across fault toggles and checkpoint restores while keeping Step free
	// of a per-tick closure allocation.
	deadFn router.DeadFunc
	// wg is the fork-join barrier reused across ticks; a per-tick local
	// would be moved to the heap every Step by the worker closures.
	wg sync.WaitGroup

	// localPos maps a core's global row-major index to its position within
	// its owner's owned slice (-1 when unowned). Pending-core bookkeeping is
	// kept in *local* coordinates so each worker's bitsets are disjoint.
	localPos []int32
	// act holds each worker's pending-core activity masks (the chip engine's
	// hot/pendingAt/stepMask, per worker). During the compute phase a worker
	// reads and writes only its own entry; during the delivery phase worker w
	// marks only cores it owns — so no bitset word is ever shared between
	// goroutines, mirroring how Compass ranks keep private event queues.
	act []workerActivity
}

// workerActivity is one worker's pending-core bookkeeping: hot marks owned
// cores that must step every tick (core.StaysHot), pendingAt[s] marks owned
// cores with a delivery landing in delay slot s (tick mod core.DelaySlots),
// and scratch is the per-tick union. All bitsets index local positions within
// the worker's owned slice.
type workerActivity struct {
	hot       []uint64
	pendingAt [core.DelaySlots][]uint64
	scratch   []uint64
}

func init() {
	sim.Register("compass", func(mesh router.Mesh, configs []*core.Config, opts ...sim.Option) (sim.Engine, error) {
		return New(mesh, configs, opts...)
	})
}

// New builds a Compass simulation over mesh with row-major configs (nil
// entries are unpopulated), exactly as chip.New. It consumes the unified
// engine options: sim.WithWorkers sets the worker (goroutine) count — 0
// means runtime.GOMAXPROCS(0), values below 0 are clamped to 1 — and
// sim.WithAggregation toggles pairwise spike aggregation (default on; with
// it off, every spike is sent through a shared channel one message at a
// time, the naive scheme Compass improves on: "Compass aggregates spikes
// between pairs of processes into a single MPI message". Results are
// identical; only the communication cost differs, and
// BenchmarkAblationAggregation quantifies the gap).
func New(mesh router.Mesh, configs []*core.Config, opts ...sim.Option) (*Sim, error) {
	if mesh.W <= 0 || mesh.H <= 0 {
		return nil, fmt.Errorf("compass: invalid mesh %dx%d", mesh.W, mesh.H)
	}
	if n := mesh.W * mesh.H; len(configs) > n {
		return nil, fmt.Errorf("compass: %d configs for %d core slots", len(configs), n)
	}
	o := sim.BuildOptions(opts)
	workers := o.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers < 1 {
		workers = 1
	}
	s := &Sim{
		mesh:      mesh,
		cores:     make([]*core.Core, mesh.W*mesh.H),
		dead:      make(map[router.Point]bool),
		workers:   workers,
		pending:   make(map[uint64][]delivery),
		aggregate: o.Aggregate,
	}
	s.deadFn = func(p router.Point) bool { return s.dead[p] }
	for i, cfg := range configs {
		if cfg == nil {
			continue
		}
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("compass: core %d (%d,%d): %w", i, i%mesh.W, i/mesh.W, err)
		}
		s.cores[i] = core.New(cfg)
	}
	s.partition(s.staticWeights())
	return s, nil
}

// staticWeights estimates per-core load from configured synapses — the
// information available before any tick runs.
func (s *Sim) staticWeights() []float64 {
	w := make([]float64, len(s.cores))
	for i, c := range s.cores {
		if c != nil {
			w[i] = 1 + float64(c.Cfg.ConfiguredSynapses())/256
		}
	}
	return w
}

// partition assigns populated cores to workers as contiguous runs of
// near-equal total weight ("meticulous load-balancing").
func (s *Sim) partition(weight []float64) {
	var populated []int32
	var total float64
	for i, c := range s.cores {
		if c != nil {
			populated = append(populated, int32(i))
			total += weight[i]
		}
	}
	if s.workers > len(populated) && len(populated) > 0 {
		s.workers = len(populated)
	}
	if s.workers < 1 {
		s.workers = 1
	}
	s.owned = make([][]int32, s.workers)
	s.owner = make([]int32, len(s.cores))
	for i := range s.owner {
		s.owner[i] = -1
	}
	perWorker := total / float64(s.workers)
	w, acc := 0, 0.0
	for _, idx := range populated {
		// Close the current worker's run once it reaches its share, but
		// never leave later workers without cores.
		if acc >= perWorker && w < s.workers-1 && len(s.owned[w]) > 0 {
			w++
			acc = 0
		}
		s.owned[w] = append(s.owned[w], idx)
		s.owner[idx] = int32(w)
		acc += weight[idx]
	}
	s.outbox = make([][][]delivery, s.workers)
	for i := range s.outbox {
		s.outbox[i] = make([][]delivery, s.workers)
	}
	s.perWorkerOut = make([][]sim.OutputSpike, s.workers)
	s.perWorkerNoC = make([]sim.NoCStats, s.workers)

	s.localPos = make([]int32, len(s.cores))
	for i := range s.localPos {
		s.localPos[i] = -1
	}
	s.act = make([]workerActivity, s.workers)
	for w := range s.act {
		nw := (len(s.owned[w]) + 63) / 64
		s.act[w].hot = make([]uint64, nw)
		s.act[w].scratch = make([]uint64, nw)
		for sl := range s.act[w].pendingAt {
			s.act[w].pendingAt[sl] = make([]uint64, nw)
		}
		for p, idx := range s.owned[w] {
			s.localPos[idx] = int32(p)
		}
	}
	s.rebuildActivity()
}

// rebuildActivity re-derives every worker's hot set and per-slot pending
// bitsets from the cores' current state (core.StaysHot, core.RingOccupancy).
// It must run after any core-state change that bypasses Step: construction,
// repartitioning, Reset, checkpoint restore (SetClock), and fault toggles.
func (s *Sim) rebuildActivity() {
	for w := range s.act {
		a := &s.act[w]
		for i := range a.hot {
			a.hot[i] = 0
		}
		for sl := range a.pendingAt {
			for i := range a.pendingAt[sl] {
				a.pendingAt[sl][i] = 0
			}
		}
	}
	for i, c := range s.cores {
		if c == nil {
			continue
		}
		if c.StaysHot() {
			s.markHot(i)
		}
		occ := c.RingOccupancy()
		for sl := 0; occ != 0; sl++ {
			if occ&1 != 0 {
				// slot index == tick mod DelaySlots, so the slot number is a
				// valid tick argument for markPending.
				s.markPending(int32(i), uint64(sl))
			}
			occ >>= 1
		}
	}
}

// markHot flags core idx in its owner's hot bitset.
func (s *Sim) markHot(idx int) {
	if uint(idx) >= uint(len(s.owner)) {
		return
	}
	w := s.owner[idx]
	if w < 0 {
		return
	}
	p := uint(s.localPos[idx])
	hot := s.act[w].hot
	if wi := p >> 6; wi < uint(len(hot)) {
		hot[wi] |= 1 << (p & 63)
	}
}

// markPending flags core idx in its owner's activity slot for tick, so the
// masked compute walk visits it when that tick arrives. It touches only the
// owning worker's bitsets, so concurrent calls are race-free as long as each
// caller acts for the owner of idx — which is how the delivery phase is
// organized (worker w drains exactly the messages addressed to its cores).
//
//perf:hot
func (s *Sim) markPending(idx int32, tick uint64) {
	i := uint(idx)
	if i >= uint(len(s.owner)) || i >= uint(len(s.localPos)) {
		return
	}
	w := s.owner[i]
	if uint(w) >= uint(len(s.act)) {
		return // unowned (-1) or out of range
	}
	p := uint(s.localPos[i])
	slot := s.act[w].pendingAt[tick&(core.DelaySlots-1)]
	if wi := p >> 6; wi < uint(len(slot)) {
		slot[wi] |= 1 << (p & 63)
	}
}

// Rebalance repartitions cores across workers using the measured per-core
// synaptic-event counters accumulated so far. Pending (in-flight) delay-ring
// state stays with each core, so rebalancing between ticks is transparent.
func (s *Sim) Rebalance() {
	w := make([]float64, len(s.cores))
	for i, c := range s.cores {
		if c != nil {
			w[i] = 1 + float64(c.Cnt.SynEvents)
		}
	}
	noc := s.NoC() // preserve aggregate stats across the repartition
	s.partition(w)
	s.perWorkerNoC[0] = noc
}

// Workers returns the active worker count.
func (s *Sim) Workers() int { return s.workers }

// Mesh implements sim.Engine.
func (s *Sim) Mesh() router.Mesh { return s.mesh }

// Tick implements sim.Engine.
func (s *Sim) Tick() uint64 { return s.tick }

// Core implements sim.Engine.
func (s *Sim) Core(x, y int) *core.Core {
	if x < 0 || x >= s.mesh.W || y < 0 || y >= s.mesh.H {
		return nil
	}
	return s.cores[y*s.mesh.W+x]
}

// Inject implements sim.Engine. It must not be called concurrently with
// Step. Out-of-range arguments are silently dropped (counted in
// NoC().Dropped) — the kernel-internal fast path; trust boundaries use
// InjectChecked.
func (s *Sim) Inject(x, y, axon, delay int) {
	if s.Core(x, y) == nil || axon < 0 || axon >= core.AxonsPerCore || delay < 0 {
		s.perWorkerNoC[0].Dropped++
		return
	}
	s.inject(x, y, axon, delay)
}

// InjectChecked implements sim.CheckedInjector: Inject with validation
// instead of silent dropping. Like Inject, it must not be called
// concurrently with Step.
func (s *Sim) InjectChecked(x, y, axon, delay int) error {
	if x < 0 || x >= s.mesh.W || y < 0 || y >= s.mesh.H {
		return fmt.Errorf("compass: inject target (%d,%d) outside %dx%d mesh", x, y, s.mesh.W, s.mesh.H)
	}
	if s.cores[y*s.mesh.W+x] == nil {
		return fmt.Errorf("compass: inject target (%d,%d) is an unpopulated core slot", x, y)
	}
	if axon < 0 || axon >= core.AxonsPerCore {
		return fmt.Errorf("compass: inject axon %d out of range [0, %d)", axon, core.AxonsPerCore)
	}
	if delay < 0 {
		return fmt.Errorf("compass: inject delay %d is negative", delay)
	}
	s.inject(x, y, axon, delay)
	return nil
}

// inject performs a validated injection.
func (s *Sim) inject(x, y, axon, delay int) {
	at := s.tick + uint64(delay)
	idx := int32(y*s.mesh.W + x)
	if delay <= core.MaxDelay {
		// Within the ring horizon (Deliver's contract: s.tick is the next
		// tick Step runs, so at − now = delay ≤ MaxDelay never aliases).
		s.cores[idx].Deliver(axon, at)
		s.markPending(idx, at)
		return
	}
	s.pending[at] = append(s.pending[at], delivery{core: idx, tick: at, axon: uint8(axon)})
}

// DisableCore marks a core failed, as chip.Model.DisableCore.
func (s *Sim) DisableCore(x, y int) {
	p := router.Point{X: x, Y: y}
	if !s.mesh.Contains(p) {
		return
	}
	s.dead[p] = true
	s.anyDead = true
	if c := s.cores[y*s.mesh.W+x]; c != nil {
		c.Disabled = true
		// A disabled core stays hot (its Step clears arriving delay slots).
		s.markHot(y*s.mesh.W + x)
	}
}

// EnableCore reverses DisableCore.
func (s *Sim) EnableCore(x, y int) {
	delete(s.dead, router.Point{X: x, Y: y})
	s.anyDead = len(s.dead) > 0
	if c := s.Core(x, y); c != nil {
		c.Disabled = false
	}
	s.rebuildActivity()
}

// Step implements sim.Engine: one semi-synchronous pass. Compute phase:
// workers step their cores in parallel, performing the Synapse and Neuron
// phases, routing spikes, and aggregating cross-worker deliveries into
// per-pair messages. Barrier. Delivery phase: each worker drains the
// messages addressed to it into its cores' axonal delay rings. Barrier.
//
//perf:hot
func (s *Sim) Step() {
	tick := s.tick
	if inj, ok := s.pending[tick]; ok {
		for _, d := range inj {
			// inject validated the index; the uint guard makes that provable
			// so the drain carries no bounds check.
			if idx := int(d.core); uint(idx) < uint(len(s.cores)) {
				s.cores[idx].Deliver(int(d.axon), d.tick)
				s.markPending(d.core, d.tick)
			}
		}
		delete(s.pending, tick)
	}
	var dead router.DeadFunc
	if s.anyDead {
		dead = s.deadFn
	}

	// Ablation path: without aggregation, spikes travel one message at a
	// time through a shared channel to a single collector. Its per-tick
	// allocations are the point — this arm exists to measure what message
	// aggregation saves (Fig. 7's ablation), not to be fast.
	var naive []delivery
	var naiveCh chan delivery
	var collectorDone chan struct{}
	if !s.aggregate {
		//lint:ignore tnlint/hotalloc ablation arm deliberately pays per-tick channel costs
		naiveCh = make(chan delivery, 1024)
		//lint:ignore tnlint/hotalloc ablation arm deliberately pays per-tick channel costs
		collectorDone = make(chan struct{})
		go func() {
			for d := range naiveCh {
				//lint:ignore tnlint/hotalloc ablation arm deliberately grows an unpooled buffer
				naive = append(naive, d)
			}
			close(collectorDone)
		}()
	}

	// Compute phase (kernel lines 3-19 per core).
	for w := 0; w < s.workers; w++ {
		s.wg.Add(1)
		go func(w int) {
			defer s.wg.Done()
			noc := &s.perWorkerNoC[w]
			out := s.outbox[w]
			// One emit closure per worker per tick, hoisted out of the
			// owned-core loop and parameterized through src: stepping a
			// thousand cores must not allocate a thousand closures.
			var src router.Point
			emit := func(_ int, t core.Target) {
				if t.Output {
					s.perWorkerOut[w] = append(s.perWorkerOut[w], sim.OutputSpike{Tick: tick, ID: t.OutputID})
					return
				}
				dst := src.Add(int(t.DX), int(t.DY))
				if !s.mesh.Contains(dst) {
					noc.Dropped++
					return
				}
				dstIdx := int32(dst.Y*s.mesh.W + dst.X)
				dw := s.owner[dstIdx]
				if dw < 0 {
					noc.Dropped++ // spike to an unpopulated core slot
					return
				}
				var r router.Route
				if dead == nil {
					r = s.mesh.DOR(src, dst)
				} else {
					r = s.mesh.RouteAvoiding(src, dst, dead)
				}
				if !r.OK {
					noc.Dropped++
					return
				}
				noc.RoutedSpikes++
				noc.Hops += uint64(r.Hops)
				noc.Crossings += uint64(r.Crossings)
				if r.Detoured {
					noc.Detours++
				}
				d := delivery{core: dstIdx, tick: tick + uint64(t.Delay), axon: t.Axon}
				if s.aggregate {
					out[dw] = append(out[dw], d)
				} else {
					naiveCh <- d
				}
			}
			// Masked walk over this worker's cores: hot ∪ pending-this-slot,
			// in ascending local position — which is ascending global index,
			// so the canonical order is preserved. The slot is cleared up
			// front; in-tick deliveries only target future slots (delay ≥ 1)
			// of this worker's own bitsets, so there is no cross-worker
			// traffic and nothing lands in the slot being drained.
			a := &s.act[w]
			own := s.owned[w]
			slot := a.pendingAt[tick&(core.DelaySlots-1)]
			scratch, hot := a.scratch, a.hot
			if len(scratch) == len(slot) && len(hot) == len(slot) {
				for i := range slot {
					scratch[i] = hot[i] | slot[i]
					slot[i] = 0
				}
			}
			for wi, word := range scratch {
				for word != 0 {
					b := bits.TrailingZeros64(word)
					word &= word - 1
					p := wi<<6 + b
					if uint(p) >= uint(len(own)) {
						continue
					}
					idx := own[p]
					c := s.cores[idx]
					src = router.Point{X: int(idx) % s.mesh.W, Y: int(idx) / s.mesh.W}
					c.Step(tick, emit)
					if uint(wi) < uint(len(hot)) {
						if c.StaysHot() {
							hot[wi] |= 1 << uint(b)
						} else {
							hot[wi] &^= 1 << uint(b)
						}
					}
				}
			}
		}(w)
	}
	s.wg.Wait() // barrier 1: all computation and message aggregation complete

	// Delivery phase (kernel line 15 completion + line 21 barrier).
	if s.aggregate {
		for w := 0; w < s.workers; w++ {
			s.wg.Add(1)
			go func(w int) {
				defer s.wg.Done()
				for src := 0; src < s.workers; src++ {
					msgs := s.outbox[src][w]
					for _, d := range msgs {
						s.cores[d.core].Deliver(int(d.axon), d.tick)
						// Worker w owns d.core, so this touches only w's
						// bitsets — race-free by ownership.
						s.markPending(d.core, d.tick)
					}
					s.outbox[src][w] = msgs[:0]
				}
			}(w)
		}
		s.wg.Wait() // barrier 2: all deliveries landed; safe to advance time
	} else {
		close(naiveCh)
		<-collectorDone
		for _, d := range naive {
			s.cores[d.core].Deliver(int(d.axon), d.tick)
			s.markPending(d.core, d.tick)
		}
	}

	// Merge per-worker outputs in worker order; since workers own ascending
	// contiguous runs, this preserves the canonical row-major spike order.
	for w := 0; w < s.workers; w++ {
		if len(s.perWorkerOut[w]) > 0 {
			s.outputs = append(s.outputs, s.perWorkerOut[w]...)
			s.perWorkerOut[w] = s.perWorkerOut[w][:0]
		}
	}
	s.tick++
}

// Run implements sim.Engine.
//
//perf:hot
func (s *Sim) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// DrainOutputs implements sim.Engine. The caller receives a copy: the
// accumulation buffer is retained and reslice-reused, so steady-state ticks
// append into already-grown capacity instead of reallocating (the same
// contract as chip.Model.DrainOutputs — the engines must stay economically
// as well as bitwise equivalent).
func (s *Sim) DrainOutputs() []sim.OutputSpike {
	if len(s.outputs) == 0 {
		return nil
	}
	out := append([]sim.OutputSpike(nil), s.outputs...)
	s.outputs = s.outputs[:0]
	return out
}

// Counters implements sim.Engine.
func (s *Sim) Counters() core.Counters {
	var total core.Counters
	for _, c := range s.cores {
		if c != nil {
			total.Add(c.Cnt)
		}
	}
	return total
}

// NoC implements sim.Engine.
func (s *Sim) NoC() sim.NoCStats {
	var total sim.NoCStats
	for i := range s.perWorkerNoC {
		total.Add(s.perWorkerNoC[i])
	}
	return total
}

// SetNoC restores aggregate communication statistics (checkpoint resume):
// the total is assigned to worker 0's ledger.
func (s *Sim) SetNoC(n sim.NoCStats) {
	for i := range s.perWorkerNoC {
		s.perWorkerNoC[i] = sim.NoCStats{}
	}
	s.perWorkerNoC[0] = n
}

// Cores exposes the row-major core array (nil entries are unpopulated) for
// tooling such as checkpointing; callers must not mutate cores while the
// engine is stepping.
func (s *Sim) Cores() []*core.Core { return s.cores }

// SetClock restores the tick counter (checkpoint resume), rebuilds the fault
// set from the cores' Disabled flags, and re-derives the per-worker
// pending-core activity masks from the restored core state.
func (s *Sim) SetClock(tick uint64) {
	s.tick = tick
	s.dead = make(map[router.Point]bool)
	for i, c := range s.cores {
		if c != nil && c.Disabled {
			s.dead[router.Point{X: i % s.mesh.W, Y: i / s.mesh.W}] = true
		}
	}
	s.anyDead = len(s.dead) > 0
	s.rebuildActivity()
}

// LoadImbalance reports max/mean per-worker measured synaptic events, a
// load-balance quality metric (1.0 is perfect).
func (s *Sim) LoadImbalance() float64 {
	loads := make([]float64, s.workers)
	for w, idxs := range s.owned {
		for _, idx := range idxs {
			loads[w] += float64(s.cores[idx].Cnt.SynEvents)
		}
	}
	sort.Float64s(loads)
	var sum float64
	for _, l := range loads {
		sum += l
	}
	if sum == 0 {
		return 1
	}
	mean := sum / float64(s.workers)
	return loads[s.workers-1] / mean
}

var (
	_ sim.Engine          = (*Sim)(nil)
	_ sim.CheckedInjector = (*Sim)(nil)
)
