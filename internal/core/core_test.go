package core

import (
	"testing"
	"testing/quick"

	"truenorth/internal/neuron"
)

func TestRowMaskSetGetClear(t *testing.T) {
	var m RowMask
	for _, i := range []int{0, 1, 63, 64, 127, 128, 200, 255} {
		if m.Get(i) {
			t.Fatalf("fresh mask has bit %d set", i)
		}
		m.Set(i)
		if !m.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if m.Count() != 8 {
		t.Fatalf("Count = %d, want 8", m.Count())
	}
	m.Clear(64)
	if m.Get(64) || m.Count() != 7 {
		t.Fatalf("Clear(64) failed: get=%v count=%d", m.Get(64), m.Count())
	}
	if m.Empty() {
		t.Fatal("non-empty mask reports Empty")
	}
	m = RowMask{}
	if !m.Empty() {
		t.Fatal("zero mask is not Empty")
	}
}

func TestRowMaskForEachAscending(t *testing.T) {
	var m RowMask
	want := []int{3, 64, 65, 130, 255}
	for _, i := range want {
		m.Set(i)
	}
	var got []int
	m.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("ForEach visited %v, want ascending %v", got, want)
		}
	}
}

func TestRowMaskPropertyCountMatchesForEach(t *testing.T) {
	f := func(words [4]uint64) bool {
		m := RowMask(words)
		n := 0
		last := -1
		ok := true
		m.ForEach(func(i int) {
			if i <= last {
				ok = false
			}
			last = i
			n++
		})
		return ok && n == m.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTargetValidate(t *testing.T) {
	if err := (Target{}).Validate(); err != nil {
		t.Errorf("invalid (unused) target should pass: %v", err)
	}
	if err := (Target{Valid: true, Delay: 1}).Validate(); err != nil {
		t.Errorf("delay 1 should pass: %v", err)
	}
	if err := (Target{Valid: true, Delay: 15}).Validate(); err != nil {
		t.Errorf("delay 15 should pass: %v", err)
	}
	if err := (Target{Valid: true, Delay: 0}).Validate(); err == nil {
		t.Error("delay 0 must fail (spikes arrive no earlier than t+1)")
	}
	if err := (Target{Valid: true, Delay: 16}).Validate(); err == nil {
		t.Error("delay 16 must fail")
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := InertConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("inert config invalid: %v", err)
	}
	cfg.AxonType[7] = 4
	if err := cfg.Validate(); err == nil {
		t.Fatal("axon type 4 accepted")
	}
	cfg.AxonType[7] = 0
	cfg.Neurons[3].Weights[0] = 1000
	if err := cfg.Validate(); err == nil {
		t.Fatal("weight 1000 accepted")
	}
	cfg.Neurons[3].Weights[0] = 0
	cfg.Targets[9] = Target{Valid: true, Delay: 0}
	if err := cfg.Validate(); err == nil {
		t.Fatal("bad target delay accepted")
	}
}

// relayConfig builds a core where axon a drives neuron n with an identity
// neuron targeting (dx, dy, axon ta).
func relayConfig(a, n int, tgt Target) *Config {
	cfg := InertConfig()
	cfg.Synapses[a].Set(n)
	cfg.AxonType[a] = 0
	cfg.Neurons[n] = neuron.Identity()
	cfg.Targets[n] = tgt
	return cfg
}

func collectSpikes(c *Core, tick uint64) []int {
	var out []int
	c.Step(tick, func(j int, _ Target) { out = append(out, j) })
	return out
}

func TestCoreRelaySpike(t *testing.T) {
	cfg := relayConfig(5, 9, Target{Valid: true, DX: 1, Axon: 3, Delay: 1})
	c := New(cfg)
	c.Deliver(5, 1)
	if got := collectSpikes(c, 0); len(got) != 0 {
		t.Fatalf("tick 0 fired %v, want none", got)
	}
	got := collectSpikes(c, 1)
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("tick 1 fired %v, want [9]", got)
	}
	if got := collectSpikes(c, 2); len(got) != 0 {
		t.Fatalf("tick 2 fired %v, want none", got)
	}
	if c.Cnt.SynEvents != 1 || c.Cnt.Spikes != 1 || c.Cnt.AxonEvents != 1 {
		t.Fatalf("counters = %+v, want 1 syn event, 1 spike, 1 axon event", c.Cnt)
	}
}

func TestCoreCrossbarFanout(t *testing.T) {
	// One axon event drives all 256 neurons through the crossbar: the
	// communication-bottleneck argument of Section III-A (one event targets
	// all of a core's target synapses).
	cfg := InertConfig()
	for j := 0; j < NeuronsPerCore; j++ {
		cfg.Synapses[0].Set(j)
		cfg.Neurons[j] = neuron.Identity()
		cfg.Targets[j] = Target{Valid: true, Delay: 1}
	}
	c := New(cfg)
	c.Deliver(0, 0)
	got := collectSpikes(c, 0)
	if len(got) != NeuronsPerCore {
		t.Fatalf("one axon event fired %d neurons, want %d", len(got), NeuronsPerCore)
	}
	if c.Cnt.SynEvents != NeuronsPerCore || c.Cnt.AxonEvents != 1 {
		t.Fatalf("counters = %+v, want 256 syn events from 1 axon event", c.Cnt)
	}
}

func TestCoreAxonTypesSelectWeights(t *testing.T) {
	cfg := InertConfig()
	// Axon 0 type 0 (+2), axon 1 type 1 (-1), both drive neuron 0.
	cfg.Synapses[0].Set(0)
	cfg.Synapses[1].Set(0)
	cfg.AxonType[0] = 0
	cfg.AxonType[1] = 1
	cfg.Neurons[0] = neuron.Params{
		Weights:   [neuron.NumAxonTypes]int32{2, -1, 0, 0},
		Threshold: 100, // never fires in this test
	}
	c := New(cfg)
	c.Deliver(0, 0)
	c.Deliver(1, 0)
	c.Step(0, func(int, Target) {})
	if c.V[0] != 1 {
		t.Fatalf("V[0] = %d after +2 and -1 events, want 1", c.V[0])
	}
}

func TestCoreDelayRingAllDelays(t *testing.T) {
	for delay := uint64(MinDelay); delay <= MaxDelay; delay++ {
		cfg := relayConfig(0, 0, Target{Valid: true, Delay: 1})
		c := New(cfg)
		c.Deliver(0, delay) // engine computed arrival tick
		for tick := uint64(0); tick < 20; tick++ {
			got := collectSpikes(c, tick)
			if tick == delay && len(got) != 1 {
				t.Fatalf("delay %d: no spike at tick %d", delay, tick)
			}
			if tick != delay && len(got) != 0 {
				t.Fatalf("delay %d: unexpected spike at tick %d", delay, tick)
			}
		}
	}
}

func TestCoreDelayRingWraparound(t *testing.T) {
	// Deliveries scheduled 15 ticks ahead land in the slot just vacated;
	// run long enough to wrap the 16-slot ring several times.
	cfg := relayConfig(0, 0, Target{Valid: true, Delay: 1})
	c := New(cfg)
	fires := 0
	for tick := uint64(0); tick < 160; tick++ {
		c.Deliver(0, tick+MaxDelay)
		c.Step(tick, func(int, Target) { fires++ })
	}
	// Spikes delivered for ticks 15..174; ticks 15..159 processed: 145.
	if fires != 145 {
		t.Fatalf("fired %d times, want 145", fires)
	}
}

func TestCoreDisabled(t *testing.T) {
	cfg := relayConfig(0, 0, Target{Valid: true, Delay: 1})
	c := New(cfg)
	c.Disabled = true
	c.Deliver(0, 0)
	if got := collectSpikes(c, 0); len(got) != 0 {
		t.Fatalf("disabled core fired %v", got)
	}
	if c.Cnt.SynEvents != 0 || c.Cnt.NeuronUpdates != 0 {
		t.Fatalf("disabled core did work: %+v", c.Cnt)
	}
	// The pending event must be consumed, not left to fire after re-enable
	// 16 ticks later.
	c.Disabled = false
	for tick := uint64(1); tick < 40; tick++ {
		if got := collectSpikes(c, tick); len(got) != 0 {
			t.Fatalf("stale event fired at tick %d after re-enable", tick)
		}
	}
}

func TestCoreEventDrivenFastPath(t *testing.T) {
	// A quiescent core (no leak, zero potentials, positive thresholds) must
	// not accrue neuron updates on ticks with no input: active power is
	// proportional to activity (Section III-C).
	cfg := InertConfig()
	c := New(cfg)
	for tick := uint64(0); tick < 1000; tick++ {
		c.Step(tick, func(int, Target) {})
	}
	if c.Cnt.NeuronUpdates != 0 {
		t.Fatalf("quiescent core performed %d neuron updates", c.Cnt.NeuronUpdates)
	}
}

func TestCoreLeakyNeuronNotSkipped(t *testing.T) {
	// A core with one tonic (leak-driven) neuron must run every tick even
	// with no input.
	cfg := InertConfig()
	cfg.Neurons[0] = neuron.Params{Leak: 1, Threshold: 10, Reset: neuron.ResetToV}
	cfg.Targets[0] = Target{Valid: true, Delay: 1}
	c := New(cfg)
	fires := 0
	for tick := uint64(0); tick < 100; tick++ {
		c.Step(tick, func(int, Target) { fires++ })
	}
	if fires != 10 {
		t.Fatalf("tonic neuron fired %d times in 100 ticks, want 10", fires)
	}
}

func TestCoreFastPathReengagesAfterActivity(t *testing.T) {
	// After a transient input decays, the core should return to the fast
	// path (no neuron updates on idle ticks).
	cfg := relayConfig(0, 0, Target{Valid: true, Delay: 1})
	c := New(cfg)
	c.Deliver(0, 0)
	c.Step(0, func(int, Target) {})
	base := c.Cnt.NeuronUpdates
	for tick := uint64(1); tick < 200; tick++ {
		c.Step(tick, func(int, Target) {})
	}
	if c.Cnt.NeuronUpdates != base {
		t.Fatalf("idle ticks performed %d extra neuron updates", c.Cnt.NeuronUpdates-base)
	}
}

func TestCoreStochasticDeterminism(t *testing.T) {
	// Two cores with the same seed and event sequence agree exactly, even
	// with all stochastic modes enabled — the property that underlies the
	// paper's 100% chip-vs-Compass correspondence.
	mk := func() *Core {
		cfg := InertConfig()
		cfg.Seed = 0xABCD
		for j := 0; j < NeuronsPerCore; j++ {
			cfg.Synapses[j%AxonsPerCore].Set(j)
			cfg.Neurons[j] = neuron.Params{
				Weights:       [neuron.NumAxonTypes]int32{100, -50, 0, 0},
				StochSyn:      [neuron.NumAxonTypes]bool{true, true, false, false},
				Leak:          30,
				StochLeak:     true,
				Threshold:     3,
				ThresholdMask: 0x07,
				Reset:         neuron.ResetToV,
			}
			cfg.Targets[j] = Target{Valid: true, Delay: 1}
		}
		return New(cfg)
	}
	a, b := mk(), mk()
	var fa, fb []int
	for tick := uint64(0); tick < 200; tick++ {
		if tick%3 == 0 {
			a.Deliver(int(tick)%AxonsPerCore, tick)
			b.Deliver(int(tick)%AxonsPerCore, tick)
		}
		a.Step(tick, func(j int, _ Target) { fa = append(fa, int(tick)<<16|j) })
		b.Step(tick, func(j int, _ Target) { fb = append(fb, int(tick)<<16|j) })
	}
	if len(fa) != len(fb) {
		t.Fatalf("spike counts differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("spike %d differs: %x vs %x", i, fa[i], fb[i])
		}
	}
	if len(fa) == 0 {
		t.Fatal("stochastic core produced no spikes; test is vacuous")
	}
}

func TestCoreReset(t *testing.T) {
	cfg := relayConfig(0, 0, Target{Valid: true, Delay: 1})
	cfg.Neurons[0].Threshold = 5 // accumulate without firing
	c := New(cfg)
	c.Deliver(0, 0)
	c.Step(0, func(int, Target) {})
	if c.V[0] == 0 {
		t.Fatal("setup failed: potential did not move")
	}
	c.Deliver(0, 5)
	c.Reset(true)
	if c.V[0] != 0 {
		t.Fatal("Reset did not clear potential")
	}
	if c.Cnt != (Counters{}) {
		t.Fatal("Reset(true) did not clear counters")
	}
	for tick := uint64(0); tick < 20; tick++ {
		if got := collectSpikes(c, tick); len(got) != 0 {
			t.Fatal("Reset did not clear pending deliveries")
		}
	}
}

func TestConfiguredSynapsesAndInDegree(t *testing.T) {
	cfg := InertConfig()
	cfg.Synapses[0].Set(0)
	cfg.Synapses[1].Set(0)
	cfg.Synapses[2].Set(5)
	if got := cfg.ConfiguredSynapses(); got != 3 {
		t.Fatalf("ConfiguredSynapses = %d, want 3", got)
	}
	if got := cfg.InDegree(0); got != 2 {
		t.Fatalf("InDegree(0) = %d, want 2", got)
	}
	if got := cfg.InDegree(5); got != 1 {
		t.Fatalf("InDegree(5) = %d, want 1", got)
	}
	if got := cfg.InDegree(9); got != 0 {
		t.Fatalf("InDegree(9) = %d, want 0", got)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{SynEvents: 1, NeuronUpdates: 2, Spikes: 3, AxonEvents: 4}
	b := Counters{SynEvents: 10, NeuronUpdates: 20, Spikes: 30, AxonEvents: 40}
	a.Add(b)
	want := Counters{SynEvents: 11, NeuronUpdates: 22, Spikes: 33, AxonEvents: 44}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}

func TestMemoryEfficiencyClaim(t *testing.T) {
	// Section III-A: implicit crossbar addressing needs (S/C)·log2(S/C)
	// bits for S synapses in cores of C fanout, versus S·log2(S) for
	// explicit per-synapse addressing. Verify our representation is within
	// the implicit budget for a full core.
	const S = AxonsPerCore * NeuronsPerCore // synapses in one core
	crossbarBits := AxonsPerCore * NeuronsPerCore
	// Our crossbar row storage is exactly 256×256 bits.
	var cfg Config
	gotBits := len(cfg.Synapses) * rowWords * 64
	if gotBits != crossbarBits {
		t.Fatalf("crossbar storage = %d bits, want %d", gotBits, crossbarBits)
	}
	// Explicit addressing would need S*log2(S) = 65536*16 bits — 16× more.
	explicit := S * 16
	if explicit <= gotBits {
		t.Fatalf("explicit addressing (%d bits) should exceed crossbar (%d bits)", explicit, gotBits)
	}
}

func BenchmarkCoreStepIdle(b *testing.B) {
	c := New(InertConfig())
	emit := func(int, Target) {}
	for i := 0; i < b.N; i++ {
		c.Step(uint64(i), emit)
	}
}

func BenchmarkCoreStepFullCrossbar(b *testing.B) {
	cfg := InertConfig()
	for i := 0; i < AxonsPerCore; i++ {
		for j := 0; j < NeuronsPerCore; j++ {
			cfg.Synapses[i].Set(j)
		}
	}
	for j := range cfg.Neurons {
		cfg.Neurons[j] = neuron.Params{Weights: [neuron.NumAxonTypes]int32{1, 1, 1, 1}, Threshold: 1 << 18}
	}
	c := New(cfg)
	emit := func(int, Target) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for a := 0; a < AxonsPerCore; a++ {
			c.Deliver(a, uint64(i))
		}
		c.Step(uint64(i), emit)
	}
	b.ReportMetric(float64(c.Cnt.SynEvents)/float64(b.N), "synops/tick")
}

func BenchmarkCoreStepSparse(b *testing.B) {
	// 20 Hz × 128 synapses per neuron: the paper's headline operating point
	// scaled to one core.
	cfg := InertConfig()
	for i := 0; i < AxonsPerCore; i++ {
		for j := 0; j < 128; j++ {
			cfg.Synapses[i].Set((i + j*2) % NeuronsPerCore)
		}
	}
	for j := range cfg.Neurons {
		cfg.Neurons[j] = neuron.Params{Weights: [neuron.NumAxonTypes]int32{1, 1, 1, 1}, Threshold: 1 << 18}
	}
	c := New(cfg)
	emit := func(int, Target) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// ~5 axon events per tick ≈ 256 neurons × 20 Hz at 1 kHz ticks.
		for a := 0; a < 5; a++ {
			c.Deliver((i*5+a)%AxonsPerCore, uint64(i))
		}
		c.Step(uint64(i), emit)
	}
}
