package core

import (
	"testing"
	"testing/quick"

	"truenorth/internal/neuron"
	"truenorth/internal/prng"
)

func TestRowMaskSetGetClear(t *testing.T) {
	var m RowMask
	for _, i := range []int{0, 1, 63, 64, 127, 128, 200, 255} {
		if m.Get(i) {
			t.Fatalf("fresh mask has bit %d set", i)
		}
		m.Set(i)
		if !m.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if m.Count() != 8 {
		t.Fatalf("Count = %d, want 8", m.Count())
	}
	m.Clear(64)
	if m.Get(64) || m.Count() != 7 {
		t.Fatalf("Clear(64) failed: get=%v count=%d", m.Get(64), m.Count())
	}
	if m.Empty() {
		t.Fatal("non-empty mask reports Empty")
	}
	m = RowMask{}
	if !m.Empty() {
		t.Fatal("zero mask is not Empty")
	}
}

func TestRowMaskForEachAscending(t *testing.T) {
	var m RowMask
	want := []int{3, 64, 65, 130, 255}
	for _, i := range want {
		m.Set(i)
	}
	var got []int
	m.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("ForEach visited %v, want ascending %v", got, want)
		}
	}
}

func TestRowMaskPropertyCountMatchesForEach(t *testing.T) {
	f := func(words [4]uint64) bool {
		m := RowMask(words)
		n := 0
		last := -1
		ok := true
		m.ForEach(func(i int) {
			if i <= last {
				ok = false
			}
			last = i
			n++
		})
		return ok && n == m.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTargetValidate(t *testing.T) {
	if err := (Target{}).Validate(); err != nil {
		t.Errorf("invalid (unused) target should pass: %v", err)
	}
	if err := (Target{Valid: true, Delay: 1}).Validate(); err != nil {
		t.Errorf("delay 1 should pass: %v", err)
	}
	if err := (Target{Valid: true, Delay: 15}).Validate(); err != nil {
		t.Errorf("delay 15 should pass: %v", err)
	}
	if err := (Target{Valid: true, Delay: 0}).Validate(); err == nil {
		t.Error("delay 0 must fail (spikes arrive no earlier than t+1)")
	}
	if err := (Target{Valid: true, Delay: 16}).Validate(); err == nil {
		t.Error("delay 16 must fail")
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := InertConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("inert config invalid: %v", err)
	}
	cfg.AxonType[7] = 4
	if err := cfg.Validate(); err == nil {
		t.Fatal("axon type 4 accepted")
	}
	cfg.AxonType[7] = 0
	cfg.Neurons[3].Weights[0] = 1000
	if err := cfg.Validate(); err == nil {
		t.Fatal("weight 1000 accepted")
	}
	cfg.Neurons[3].Weights[0] = 0
	cfg.Targets[9] = Target{Valid: true, Delay: 0}
	if err := cfg.Validate(); err == nil {
		t.Fatal("bad target delay accepted")
	}
}

// relayConfig builds a core where axon a drives neuron n with an identity
// neuron targeting (dx, dy, axon ta).
func relayConfig(a, n int, tgt Target) *Config {
	cfg := InertConfig()
	cfg.Synapses[a].Set(n)
	cfg.AxonType[a] = 0
	cfg.Neurons[n] = neuron.Identity()
	cfg.Targets[n] = tgt
	return cfg
}

func collectSpikes(c *Core, tick uint64) []int {
	var out []int
	c.Step(tick, func(j int, _ Target) { out = append(out, j) })
	return out
}

func TestCoreRelaySpike(t *testing.T) {
	cfg := relayConfig(5, 9, Target{Valid: true, DX: 1, Axon: 3, Delay: 1})
	c := New(cfg)
	c.Deliver(5, 1)
	if got := collectSpikes(c, 0); len(got) != 0 {
		t.Fatalf("tick 0 fired %v, want none", got)
	}
	got := collectSpikes(c, 1)
	if len(got) != 1 || got[0] != 9 {
		t.Fatalf("tick 1 fired %v, want [9]", got)
	}
	if got := collectSpikes(c, 2); len(got) != 0 {
		t.Fatalf("tick 2 fired %v, want none", got)
	}
	if c.Cnt.SynEvents != 1 || c.Cnt.Spikes != 1 || c.Cnt.AxonEvents != 1 {
		t.Fatalf("counters = %+v, want 1 syn event, 1 spike, 1 axon event", c.Cnt)
	}
}

func TestCoreCrossbarFanout(t *testing.T) {
	// One axon event drives all 256 neurons through the crossbar: the
	// communication-bottleneck argument of Section III-A (one event targets
	// all of a core's target synapses).
	cfg := InertConfig()
	for j := 0; j < NeuronsPerCore; j++ {
		cfg.Synapses[0].Set(j)
		cfg.Neurons[j] = neuron.Identity()
		cfg.Targets[j] = Target{Valid: true, Delay: 1}
	}
	c := New(cfg)
	c.Deliver(0, 0)
	got := collectSpikes(c, 0)
	if len(got) != NeuronsPerCore {
		t.Fatalf("one axon event fired %d neurons, want %d", len(got), NeuronsPerCore)
	}
	if c.Cnt.SynEvents != NeuronsPerCore || c.Cnt.AxonEvents != 1 {
		t.Fatalf("counters = %+v, want 256 syn events from 1 axon event", c.Cnt)
	}
}

func TestCoreAxonTypesSelectWeights(t *testing.T) {
	cfg := InertConfig()
	// Axon 0 type 0 (+2), axon 1 type 1 (-1), both drive neuron 0.
	cfg.Synapses[0].Set(0)
	cfg.Synapses[1].Set(0)
	cfg.AxonType[0] = 0
	cfg.AxonType[1] = 1
	cfg.Neurons[0] = neuron.Params{
		Weights:   [neuron.NumAxonTypes]int32{2, -1, 0, 0},
		Threshold: 100, // never fires in this test
	}
	c := New(cfg)
	c.Deliver(0, 0)
	c.Deliver(1, 0)
	c.Step(0, func(int, Target) {})
	if c.V[0] != 1 {
		t.Fatalf("V[0] = %d after +2 and -1 events, want 1", c.V[0])
	}
}

func TestCoreDelayRingAllDelays(t *testing.T) {
	for delay := uint64(MinDelay); delay <= MaxDelay; delay++ {
		cfg := relayConfig(0, 0, Target{Valid: true, Delay: 1})
		c := New(cfg)
		c.Deliver(0, delay) // engine computed arrival tick
		for tick := uint64(0); tick < 20; tick++ {
			got := collectSpikes(c, tick)
			if tick == delay && len(got) != 1 {
				t.Fatalf("delay %d: no spike at tick %d", delay, tick)
			}
			if tick != delay && len(got) != 0 {
				t.Fatalf("delay %d: unexpected spike at tick %d", delay, tick)
			}
		}
	}
}

func TestCoreDelayRingWraparound(t *testing.T) {
	// Deliveries scheduled 15 ticks ahead land in the slot just vacated;
	// run long enough to wrap the 16-slot ring several times.
	cfg := relayConfig(0, 0, Target{Valid: true, Delay: 1})
	c := New(cfg)
	fires := 0
	for tick := uint64(0); tick < 160; tick++ {
		c.Deliver(0, tick+MaxDelay)
		c.Step(tick, func(int, Target) { fires++ })
	}
	// Spikes delivered for ticks 15..174; ticks 15..159 processed: 145.
	if fires != 145 {
		t.Fatalf("fired %d times, want 145", fires)
	}
}

func TestCoreDisabled(t *testing.T) {
	cfg := relayConfig(0, 0, Target{Valid: true, Delay: 1})
	c := New(cfg)
	c.Disabled = true
	c.Deliver(0, 0)
	if got := collectSpikes(c, 0); len(got) != 0 {
		t.Fatalf("disabled core fired %v", got)
	}
	if c.Cnt.SynEvents != 0 || c.Cnt.NeuronUpdates != 0 {
		t.Fatalf("disabled core did work: %+v", c.Cnt)
	}
	// The pending event must be consumed, not left to fire after re-enable
	// 16 ticks later.
	c.Disabled = false
	for tick := uint64(1); tick < 40; tick++ {
		if got := collectSpikes(c, tick); len(got) != 0 {
			t.Fatalf("stale event fired at tick %d after re-enable", tick)
		}
	}
}

func TestCoreEventDrivenFastPath(t *testing.T) {
	// A quiescent core (no leak, zero potentials, positive thresholds) must
	// not accrue neuron updates on ticks with no input: active power is
	// proportional to activity (Section III-C).
	cfg := InertConfig()
	c := New(cfg)
	for tick := uint64(0); tick < 1000; tick++ {
		c.Step(tick, func(int, Target) {})
	}
	if c.Cnt.NeuronUpdates != 0 {
		t.Fatalf("quiescent core performed %d neuron updates", c.Cnt.NeuronUpdates)
	}
}

func TestCoreLeakyNeuronNotSkipped(t *testing.T) {
	// A core with one tonic (leak-driven) neuron must run every tick even
	// with no input.
	cfg := InertConfig()
	cfg.Neurons[0] = neuron.Params{Leak: 1, Threshold: 10, Reset: neuron.ResetToV}
	cfg.Targets[0] = Target{Valid: true, Delay: 1}
	c := New(cfg)
	fires := 0
	for tick := uint64(0); tick < 100; tick++ {
		c.Step(tick, func(int, Target) { fires++ })
	}
	if fires != 10 {
		t.Fatalf("tonic neuron fired %d times in 100 ticks, want 10", fires)
	}
}

func TestCoreFastPathReengagesAfterActivity(t *testing.T) {
	// After a transient input decays, the core should return to the fast
	// path (no neuron updates on idle ticks).
	cfg := relayConfig(0, 0, Target{Valid: true, Delay: 1})
	c := New(cfg)
	c.Deliver(0, 0)
	c.Step(0, func(int, Target) {})
	base := c.Cnt.NeuronUpdates
	for tick := uint64(1); tick < 200; tick++ {
		c.Step(tick, func(int, Target) {})
	}
	if c.Cnt.NeuronUpdates != base {
		t.Fatalf("idle ticks performed %d extra neuron updates", c.Cnt.NeuronUpdates-base)
	}
}

func TestCoreStochasticDeterminism(t *testing.T) {
	// Two cores with the same seed and event sequence agree exactly, even
	// with all stochastic modes enabled — the property that underlies the
	// paper's 100% chip-vs-Compass correspondence.
	mk := func() *Core {
		cfg := InertConfig()
		cfg.Seed = 0xABCD
		for j := 0; j < NeuronsPerCore; j++ {
			cfg.Synapses[j%AxonsPerCore].Set(j)
			cfg.Neurons[j] = neuron.Params{
				Weights:       [neuron.NumAxonTypes]int32{100, -50, 0, 0},
				StochSyn:      [neuron.NumAxonTypes]bool{true, true, false, false},
				Leak:          30,
				StochLeak:     true,
				Threshold:     3,
				ThresholdMask: 0x07,
				Reset:         neuron.ResetToV,
			}
			cfg.Targets[j] = Target{Valid: true, Delay: 1}
		}
		return New(cfg)
	}
	a, b := mk(), mk()
	var fa, fb []int
	for tick := uint64(0); tick < 200; tick++ {
		if tick%3 == 0 {
			a.Deliver(int(tick)%AxonsPerCore, tick)
			b.Deliver(int(tick)%AxonsPerCore, tick)
		}
		a.Step(tick, func(j int, _ Target) { fa = append(fa, int(tick)<<16|j) })
		b.Step(tick, func(j int, _ Target) { fb = append(fb, int(tick)<<16|j) })
	}
	if len(fa) != len(fb) {
		t.Fatalf("spike counts differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("spike %d differs: %x vs %x", i, fa[i], fb[i])
		}
	}
	if len(fa) == 0 {
		t.Fatal("stochastic core produced no spikes; test is vacuous")
	}
}

func TestActiveNeuronKernelSkipsUntouchedNeurons(t *testing.T) {
	// The Neuron phase is event-driven per neuron: a tick that delivers one
	// event into a one-synapse row must evaluate exactly one neuron, not
	// all 256 (Section III: neurons fire sparsely in time).
	cfg := relayConfig(5, 9, Target{Valid: true, Delay: 1})
	cfg.Synapses[7].Set(200) // a second relay that never receives input
	cfg.Neurons[200] = neuron.Identity()
	c := New(cfg)
	for tick := uint64(0); tick < 50; tick++ {
		c.Deliver(5, tick)
		c.Step(tick, func(int, Target) {})
	}
	if c.Cnt.NeuronUpdates != 50 {
		t.Fatalf("50 single-neuron ticks performed %d neuron updates, want 50", c.Cnt.NeuronUpdates)
	}
}

// mixedConfig exercises every mask class at once: tonic leak neurons,
// stochastic-threshold neurons (PRNG draws every tick), and plain driven
// relays with subtractive reset and a negative saturation window.
func mixedConfig() *Config {
	cfg := InertConfig()
	cfg.Seed = 0x5EED
	for j := 0; j < NeuronsPerCore; j++ {
		switch {
		case j < 64:
			cfg.Neurons[j] = neuron.Params{Leak: 1, Threshold: 40 + int32(j), Reset: neuron.ResetToV}
		case j < 128:
			cfg.Neurons[j] = neuron.Params{
				Weights:       [neuron.NumAxonTypes]int32{4, 0, 0, 0},
				Threshold:     6,
				ThresholdMask: 0x03,
				Reset:         neuron.ResetToV,
			}
		default:
			cfg.Neurons[j] = neuron.Params{
				Weights:      [neuron.NumAxonTypes]int32{2, -1, 0, 0},
				Threshold:    3,
				Reset:        neuron.ResetSubtract,
				NegThreshold: 12,
				NegSaturate:  true,
			}
		}
		cfg.Targets[j] = Target{Valid: true, Delay: 1}
	}
	for i := 0; i < AxonsPerCore; i++ {
		cfg.AxonType[i] = uint8(i % 2)
		cfg.Synapses[i].Set((i*3 + 5) % NeuronsPerCore)
		cfg.Synapses[i].Set((i + 128) % NeuronsPerCore)
	}
	return cfg
}

// mixedDrive delivers a deterministic sparse input schedule to c.
func mixedDrive(c *Core, tick uint64) {
	if tick%4 == 0 {
		c.Deliver(int(tick)%AxonsPerCore, tick)
		c.Deliver(int(tick*11)%AxonsPerCore, tick)
	}
}

func TestActiveNeuronKernelMatchesFullScanAndDense(t *testing.T) {
	// Three arms over the same configuration and input schedule: the
	// active-neuron kernel, the dense-baseline knob, and StepDense. Spikes,
	// potentials, PRNG state, and all counters except NeuronUpdates must be
	// bit-identical; NeuronUpdates must show the active kernel did less work.
	type arm struct {
		c      *Core
		spikes []int
		step   func(tick uint64, emit Emit)
	}
	active := &arm{c: New(mixedConfig())}
	full := &arm{c: New(mixedConfig())}
	dense := &arm{c: New(mixedConfig())}
	full.c.SetFullNeuronScan(true)
	active.step = active.c.Step
	full.step = full.c.Step
	dense.step = dense.c.StepDense
	for _, a := range []*arm{active, full, dense} {
		for tick := uint64(0); tick < 400; tick++ {
			mixedDrive(a.c, tick)
			a.step(tick, func(j int, _ Target) { a.spikes = append(a.spikes, int(tick)<<16|j) })
		}
	}
	if len(active.spikes) == 0 {
		t.Fatal("no spikes; test is vacuous")
	}
	for _, other := range []*arm{full, dense} {
		if len(active.spikes) != len(other.spikes) {
			t.Fatalf("spike counts differ: active %d vs %d", len(active.spikes), len(other.spikes))
		}
		for i := range active.spikes {
			if active.spikes[i] != other.spikes[i] {
				t.Fatalf("spike %d differs: %x vs %x", i, active.spikes[i], other.spikes[i])
			}
		}
		if active.c.V != other.c.V {
			t.Fatal("membrane potentials diverged")
		}
		if active.c.RNG.State() != other.c.RNG.State() {
			t.Fatal("PRNG states diverged: draw sequences differ")
		}
		if active.c.Cnt.SynEvents != other.c.Cnt.SynEvents ||
			active.c.Cnt.Spikes != other.c.Cnt.Spikes ||
			active.c.Cnt.AxonEvents != other.c.Cnt.AxonEvents {
			t.Fatalf("counters differ: %+v vs %+v", active.c.Cnt, other.c.Cnt)
		}
	}
	if active.c.Cnt.NeuronUpdates >= full.c.Cnt.NeuronUpdates {
		t.Fatalf("active kernel performed %d updates, full scan %d: no work saved",
			active.c.Cnt.NeuronUpdates, full.c.Cnt.NeuronUpdates)
	}
}

func TestInitialPotentialSeedsDirtyMask(t *testing.T) {
	// A loaded potential already past a threshold must be handled on the
	// first tick even though nothing arrives: InitV seeds the dirty mask.
	cfg := InertConfig()
	cfg.Neurons[3] = neuron.Params{Threshold: 10, Reset: neuron.ResetToV}
	cfg.Targets[3] = Target{Valid: true, Delay: 1}
	cfg.InitV[3] = 15
	cfg.Neurons[7] = neuron.Params{Threshold: 10, NegThreshold: 5, NegSaturate: true}
	cfg.InitV[7] = -8
	c := New(cfg)
	got := collectSpikes(c, 0)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("tick 0 fired %v, want [3]", got)
	}
	if c.V[3] != 0 {
		t.Fatalf("V[3] = %d after reset, want 0", c.V[3])
	}
	if c.V[7] != -5 {
		t.Fatalf("V[7] = %d, want negative saturation at -5", c.V[7])
	}
}

func TestResetNoneOvershootStaysHot(t *testing.T) {
	// A ResetNone neuron keeps its potential after firing; one input must
	// therefore make it fire on every subsequent tick — the dirty mask
	// re-arms while V stays at or past threshold.
	cfg := relayConfig(0, 0, Target{Valid: true, Delay: 1})
	cfg.Neurons[0].Reset = neuron.ResetNone
	c := New(cfg)
	c.Deliver(0, 0)
	fires := 0
	for tick := uint64(0); tick < 50; tick++ {
		c.Step(tick, func(int, Target) { fires++ })
	}
	if fires != 50 {
		t.Fatalf("ResetNone neuron fired %d times in 50 ticks, want 50", fires)
	}
}

func TestDirtyInvariantSurvivesStepDenseSwitch(t *testing.T) {
	// Switching between Step and StepDense mid-run must be unobservable:
	// both maintain the same dirty-mask invariant.
	pure := New(mixedConfig())
	mixed := New(mixedConfig())
	var sp, sm []int
	for tick := uint64(0); tick < 300; tick++ {
		mixedDrive(pure, tick)
		mixedDrive(mixed, tick)
		pure.Step(tick, func(j int, _ Target) { sp = append(sp, int(tick)<<16|j) })
		if tick/100%2 == 1 {
			mixed.StepDense(tick, func(j int, _ Target) { sm = append(sm, int(tick)<<16|j) })
		} else {
			mixed.Step(tick, func(j int, _ Target) { sm = append(sm, int(tick)<<16|j) })
		}
	}
	if len(sp) == 0 || len(sp) != len(sm) {
		t.Fatalf("spike counts differ: %d vs %d", len(sp), len(sm))
	}
	for i := range sp {
		if sp[i] != sm[i] {
			t.Fatalf("spike %d differs: %x vs %x", i, sp[i], sm[i])
		}
	}
	if pure.V != mixed.V {
		t.Fatal("membrane potentials diverged after StepDense interleave")
	}
}

func TestRestoreStateReseedsDirtyMask(t *testing.T) {
	// A snapshot taken with a hot (past-threshold) potential must keep
	// firing after restoration into a fresh core.
	cfg := relayConfig(0, 0, Target{Valid: true, Delay: 1})
	cfg.Neurons[0].Reset = neuron.ResetNone
	src := New(cfg)
	src.Deliver(0, 0)
	src.Step(0, func(int, Target) {})
	if src.V[0] < 1 {
		t.Fatal("setup failed: potential not hot")
	}
	dst := New(cfg)
	dst.RestoreState(src.SaveState())
	fires := 0
	for tick := uint64(1); tick < 11; tick++ {
		dst.Step(tick, func(int, Target) { fires++ })
	}
	if fires != 10 {
		t.Fatalf("restored hot neuron fired %d times in 10 ticks, want 10", fires)
	}
}

func TestCoreReset(t *testing.T) {
	cfg := relayConfig(0, 0, Target{Valid: true, Delay: 1})
	cfg.Neurons[0].Threshold = 5 // accumulate without firing
	c := New(cfg)
	c.Deliver(0, 0)
	c.Step(0, func(int, Target) {})
	if c.V[0] == 0 {
		t.Fatal("setup failed: potential did not move")
	}
	c.Deliver(0, 5)
	c.Reset(true)
	if c.V[0] != 0 {
		t.Fatal("Reset did not clear potential")
	}
	if c.Cnt != (Counters{}) {
		t.Fatal("Reset(true) did not clear counters")
	}
	for tick := uint64(0); tick < 20; tick++ {
		if got := collectSpikes(c, tick); len(got) != 0 {
			t.Fatal("Reset did not clear pending deliveries")
		}
	}
}

func TestConfiguredSynapsesAndInDegree(t *testing.T) {
	cfg := InertConfig()
	cfg.Synapses[0].Set(0)
	cfg.Synapses[1].Set(0)
	cfg.Synapses[2].Set(5)
	if got := cfg.ConfiguredSynapses(); got != 3 {
		t.Fatalf("ConfiguredSynapses = %d, want 3", got)
	}
	if got := cfg.InDegree(0); got != 2 {
		t.Fatalf("InDegree(0) = %d, want 2", got)
	}
	if got := cfg.InDegree(5); got != 1 {
		t.Fatalf("InDegree(5) = %d, want 1", got)
	}
	if got := cfg.InDegree(9); got != 0 {
		t.Fatalf("InDegree(9) = %d, want 0", got)
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{SynEvents: 1, NeuronUpdates: 2, Spikes: 3, AxonEvents: 4}
	b := Counters{SynEvents: 10, NeuronUpdates: 20, Spikes: 30, AxonEvents: 40}
	a.Add(b)
	want := Counters{SynEvents: 11, NeuronUpdates: 22, Spikes: 33, AxonEvents: 44}
	if a != want {
		t.Fatalf("Add = %+v, want %+v", a, want)
	}
}

func TestMemoryEfficiencyClaim(t *testing.T) {
	// Section III-A: implicit crossbar addressing needs (S/C)·log2(S/C)
	// bits for S synapses in cores of C fanout, versus S·log2(S) for
	// explicit per-synapse addressing. Verify our representation is within
	// the implicit budget for a full core.
	const S = AxonsPerCore * NeuronsPerCore // synapses in one core
	crossbarBits := AxonsPerCore * NeuronsPerCore
	// Our crossbar row storage is exactly 256×256 bits.
	var cfg Config
	gotBits := len(cfg.Synapses) * rowWords * 64
	if gotBits != crossbarBits {
		t.Fatalf("crossbar storage = %d bits, want %d", gotBits, crossbarBits)
	}
	// Explicit addressing would need S*log2(S) = 65536*16 bits — 16× more.
	explicit := S * 16
	if explicit <= gotBits {
		t.Fatalf("explicit addressing (%d bits) should exceed crossbar (%d bits)", explicit, gotBits)
	}
}

func BenchmarkCoreStepIdle(b *testing.B) {
	c := New(InertConfig())
	emit := func(int, Target) {}
	for i := 0; i < b.N; i++ {
		c.Step(uint64(i), emit)
	}
}

func BenchmarkCoreStepFullCrossbar(b *testing.B) {
	cfg := InertConfig()
	for i := 0; i < AxonsPerCore; i++ {
		for j := 0; j < NeuronsPerCore; j++ {
			cfg.Synapses[i].Set(j)
		}
	}
	for j := range cfg.Neurons {
		cfg.Neurons[j] = neuron.Params{Weights: [neuron.NumAxonTypes]int32{1, 1, 1, 1}, Threshold: 1 << 18}
	}
	c := New(cfg)
	emit := func(int, Target) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for a := 0; a < AxonsPerCore; a++ {
			c.Deliver(a, uint64(i))
		}
		c.Step(uint64(i), emit)
	}
	b.ReportMetric(float64(c.Cnt.SynEvents)/float64(b.N), "synops/tick")
}

func BenchmarkCoreStepSparse(b *testing.B) {
	// 20 Hz × 128 synapses per neuron: the paper's headline operating point
	// scaled to one core.
	cfg := InertConfig()
	for i := 0; i < AxonsPerCore; i++ {
		for j := 0; j < 128; j++ {
			cfg.Synapses[i].Set((i + j*2) % NeuronsPerCore)
		}
	}
	for j := range cfg.Neurons {
		cfg.Neurons[j] = neuron.Params{Weights: [neuron.NumAxonTypes]int32{1, 1, 1, 1}, Threshold: 1 << 18}
	}
	c := New(cfg)
	emit := func(int, Target) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// ~5 axon events per tick ≈ 256 neurons × 20 Hz at 1 kHz ticks.
		for a := 0; a < 5; a++ {
			c.Deliver((i*5+a)%AxonsPerCore, uint64(i))
		}
		c.Step(uint64(i), emit)
	}
}

// wordTestConfig builds a word-parallel-eligible configuration that exercises
// every moving part of the word kernel: all four axon types, mixed-sign
// weights, an irregular crossbar, and (optionally) threshold jitter — a
// Neuron-phase PRNG draw per neuron per tick, so any extra, missing, or
// reordered draw on the synapse side desynchronizes the stream instantly.
func wordTestConfig(seed uint16, jitter bool) *Config {
	cfg := InertConfig()
	cfg.Seed = seed
	for a := 0; a < AxonsPerCore; a++ {
		cfg.AxonType[a] = uint8(a % neuron.NumAxonTypes)
	}
	for j := 0; j < NeuronsPerCore; j++ {
		for k := 0; k < 16; k++ {
			cfg.Synapses[(j*(2*k+1)+k*k+3)%AxonsPerCore].Set(j)
		}
		cfg.Neurons[j] = neuron.Params{
			Weights:      [neuron.NumAxonTypes]int32{3, -2, 1, -1},
			Threshold:    6,
			NegThreshold: 20,
			NegSaturate:  true,
			Reset:        neuron.ResetToV,
		}
		if jitter {
			cfg.Neurons[j].ThresholdMask = 0x07
		}
		cfg.Targets[j] = Target{Valid: true, Delay: 1}
	}
	return cfg
}

// TestWordSynapseMatchesScalar pins the tentpole invariant: on an eligible
// core the word-parallel Synapse path and the scalar per-event walk produce
// bit-identical potentials, counters, PRNG state, and spike sequences, at
// every input density (the per-tick event count sweeps across
// wordSynEventCutover, so both paths and the boundary are exercised).
func TestWordSynapseMatchesScalar(t *testing.T) {
	for _, jitter := range []bool{true, false} {
		name := "no-jitter"
		if jitter {
			name = "jitter"
		}
		t.Run(name, func(t *testing.T) {
			a := New(wordTestConfig(0x1234, jitter)) // word path (default)
			b := New(wordTestConfig(0x1234, jitter)) // forced scalar reference
			b.SetScalarSynapse(true)
			if !a.WordSynEligible() || !b.WordSynEligible() {
				t.Fatal("test config not word-eligible; the assay is vacuous")
			}
			rng := prng.NewRand(99)
			var fa, fb []int
			for tick := uint64(0); tick < 300; tick++ {
				for k, n := 0, rng.Intn(2*AxonsPerCore)-AxonsPerCore; k < n; k++ {
					ax := rng.Intn(AxonsPerCore)
					a.Deliver(ax, tick)
					b.Deliver(ax, tick)
				}
				a.Step(tick, func(j int, _ Target) { fa = append(fa, int(tick)<<16|j) })
				b.Step(tick, func(j int, _ Target) { fb = append(fb, int(tick)<<16|j) })
			}
			if a.V != b.V {
				t.Error("potentials diverged between word and scalar paths")
			}
			if a.RNG.State() != b.RNG.State() {
				t.Errorf("PRNG state diverged: %04x vs %04x", a.RNG.State(), b.RNG.State())
			}
			if a.Cnt != b.Cnt {
				t.Errorf("counters diverged: word %+v, scalar %+v", a.Cnt, b.Cnt)
			}
			if len(fa) != len(fb) {
				t.Fatalf("spike counts differ: %d vs %d", len(fa), len(fb))
			}
			for i := range fa {
				if fa[i] != fb[i] {
					t.Fatalf("spike %d differs: %x vs %x", i, fa[i], fb[i])
				}
			}
			if a.Cnt.SynEvents == 0 || a.Cnt.Spikes == 0 {
				t.Fatal("no synaptic events or spikes; the assay is vacuous")
			}
			if w := a.WordSynTicks(); w == 0 || w >= 300 {
				t.Fatalf("word path served %d/300 ticks; the cutover sweep is vacuous", w)
			}
			if b.WordSynTicks() != 0 {
				t.Fatal("forced-scalar core took the word path")
			}
		})
	}
}

// TestWordSynEligibility pins the static eligibility rule: stochastic
// synapses on a fed axon type and any reachable intermediate saturation must
// force the scalar path, while harmless configurations stay eligible — and
// the flag is state-aware, so a restored snapshot near the rails disqualifies
// the core until refreshMasks proves the envelope safe again.
func TestWordSynEligibility(t *testing.T) {
	// Stochastic synapse on a fed type: each event draws from the PRNG, so
	// word-batching would skip draws.
	cfg := wordTestConfig(1, false)
	cfg.Neurons[7].StochSyn = [neuron.NumAxonTypes]bool{true, true, true, true}
	if New(cfg).WordSynEligible() {
		t.Error("stochastic synapse on a fed axon type accepted for the word path")
	}
	// Stochastic synapse on an unfed type is unobservable: still eligible.
	cfg2 := InertConfig()
	cfg2.Neurons[0].StochSyn = [neuron.NumAxonTypes]bool{true, true, true, true}
	if !New(cfg2).WordSynEligible() {
		t.Error("stochastic synapse with zero in-degree rejected")
	}
	// Saturation risk: an inert neuron (α = VMax) fed by weight 255 can
	// clamp mid-walk, which the word path cannot reproduce.
	cfg3 := InertConfig()
	cfg3.Synapses[0].Set(0)
	cfg3.Neurons[0].Weights[0] = 255
	if New(cfg3).WordSynEligible() {
		t.Error("saturating configuration accepted for the word path")
	}
	// State-awareness: the same eligible core becomes ineligible when a
	// restored potential sits at the positive rail.
	c := New(wordTestConfig(1, false))
	if !c.WordSynEligible() {
		t.Fatal("baseline config not eligible")
	}
	s := c.SaveState()
	s.V[0] = neuron.VMax
	c.RestoreState(s)
	if c.WordSynEligible() {
		t.Error("potential at VMax with positive weights accepted for the word path")
	}
}

// TestDeliverWrapContractAndDeliverAt is the regression test for the
// delay-ring wrap bug class: Deliver masks the tick unconditionally, so a
// tick ≥ now+DelaySlots silently aliases onto an earlier slot and arrives
// early. The unchecked behavior is documented (and pinned here); DeliverAt is
// the enforced variant boundary code must use.
func TestDeliverWrapContractAndDeliverAt(t *testing.T) {
	c := New(relayConfig(5, 9, Target{Valid: true, Delay: 1}))
	// Documented aliasing: a delivery one full ring beyond "now" lands in
	// the current slot — 16 ticks early.
	c.Deliver(5, DelaySlots) // now = 0
	if slot := c.PendingAt(0); !slot.Get(5) {
		t.Error("wrap contract changed: tick DelaySlots no longer aliases onto slot 0")
	}

	c2 := New(relayConfig(5, 9, Target{Valid: true, Delay: 1}))
	if err := c2.DeliverAt(5, 0, DelaySlots); err == nil {
		t.Error("DeliverAt accepted a tick one past the horizon (the wrap case)")
	}
	if err := c2.DeliverAt(5, 10, 9); err == nil {
		t.Error("DeliverAt accepted a tick in the past")
	}
	if c2.RingOccupancy() != 0 {
		t.Error("rejected deliveries mutated the ring")
	}
	if err := c2.DeliverAt(5, 10, 10); err != nil {
		t.Errorf("DeliverAt rejected a same-tick (delay 0) injection: %v", err)
	}
	if err := c2.DeliverAt(5, 10, 10+MaxDelay); err != nil {
		t.Errorf("DeliverAt rejected the maximum in-horizon delay: %v", err)
	}
	near, far := c2.PendingAt(10), c2.PendingAt(10+MaxDelay)
	if !near.Get(5) || !far.Get(5) {
		t.Error("accepted deliveries did not land in their slots")
	}
}

// TestStaysHotAndRingOccupancy pins the two queries engines build their
// pending-core masks from.
func TestStaysHotAndRingOccupancy(t *testing.T) {
	// A pure relay core is cold at rest...
	c := New(relayConfig(5, 9, Target{Valid: true, Delay: 1}))
	if c.StaysHot() {
		t.Error("quiescent relay core reports hot")
	}
	if c.RingOccupancy() != 0 {
		t.Errorf("empty ring occupancy %04x, want 0", c.RingOccupancy())
	}
	// ...occupancy tracks pending slots exactly...
	c.Deliver(5, 3)
	c.Deliver(5, 14)
	if got := c.RingOccupancy(); got != 1<<3|1<<14 {
		t.Errorf("ring occupancy %04x, want %04x", got, 1<<3|1<<14)
	}
	// ...a disabled core stays hot (its Step clears arriving slots)...
	c.Disabled = true
	if !c.StaysHot() {
		t.Error("disabled core reports cold")
	}
	c.Disabled = false
	// ...and every-tick dynamics (leak) pin a core hot.
	lc := New(wordTestConfig(3, true))
	if !lc.StaysHot() {
		t.Error("core with per-tick PRNG draws reports cold")
	}
}
