// Package core implements the neurosynaptic core, the fundamental data
// structure of the TrueNorth architecture and the Compass simulator
// (Section III-A of the paper).
//
// A core integrates computation, communication, and memory: 256 input axons,
// 256 output neurons, a 256×256 binary synaptic crossbar, a 16-slot axonal
// delay buffer, and one hardware PRNG. Information flows from individually
// addressable axons (rows), through active crossbar crosspoints, into the
// membrane potentials of connected neurons (columns). Axons are driven by
// spike events delivered over the network; neurons that cross threshold emit
// a spike event toward exactly one target axon anywhere in the system.
//
// The Step method implements the per-tick Synapse and Neuron phases of the
// blueprint kernel (Listing 1); the Network phase — delivering emitted
// spikes — belongs to the engines in internal/chip and internal/compass,
// which both operate on this same core type, making the two expressions
// functionally one-to-one by construction.
package core

import (
	"fmt"
	"math/bits"

	"truenorth/internal/neuron"
	"truenorth/internal/prng"
)

// Architectural constants of the neurosynaptic core.
const (
	// AxonsPerCore is the number of input axons (crossbar rows).
	AxonsPerCore = 256
	// NeuronsPerCore is the number of neurons (crossbar columns).
	NeuronsPerCore = 256
	// MaxDelay is the maximum programmable axonal delay in ticks.
	MaxDelay = 15
	// MinDelay is the minimum axonal delay: a spike emitted at tick t is
	// integrated no earlier than tick t+1.
	MinDelay = 1

	// delaySlots is the axonal delay ring size (delays 1..15 need 16 slots).
	delaySlots = MaxDelay + 1
	// rowWords is the number of 64-bit words per crossbar row.
	rowWords = NeuronsPerCore / 64
)

// RowMask is a 256-bit set over neuron (or axon) indices.
//
// The accessors mask the word index to rowWords-1 instead of relying on a
// bounds check: they sit on the per-event kernel path, and the mask makes
// the compiler's bounds-check elimination provable (tnproof pins this).
// Like the hardware's 8-bit axon/neuron addressing, indices wrap modulo 256
// rather than trapping; every caller passes validated 0..255 indices.
type RowMask [rowWords]uint64

// Set marks index i.
//
//perf:hot
func (m *RowMask) Set(i int) { m[(uint(i)>>6)&(rowWords-1)] |= 1 << (uint(i) & 63) }

// Clear unmarks index i.
//
//perf:hot
func (m *RowMask) Clear(i int) { m[(uint(i)>>6)&(rowWords-1)] &^= 1 << (uint(i) & 63) }

// Get reports whether index i is marked.
//
//perf:hot
func (m *RowMask) Get(i int) bool { return m[(uint(i)>>6)&(rowWords-1)]>>(uint(i)&63)&1 == 1 }

// Count returns the number of marked indices.
func (m *RowMask) Count() int {
	n := 0
	for _, w := range m {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no index is marked.
func (m *RowMask) Empty() bool {
	var or uint64
	for _, w := range m {
		or |= w
	}
	return or == 0
}

// ForEach calls f for every marked index in ascending order. Ascending order
// is a correctness requirement, not a convenience: stochastic neuron modes
// consume PRNG draws per event, so every engine must walk events in the same
// order to stay bit-equal.
//
//perf:hot
func (m *RowMask) ForEach(f func(i int)) {
	for w := 0; w < rowWords; w++ {
		word := m[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			f(w<<6 + b)
			word &= word - 1
		}
	}
}

// Target describes where a neuron's spikes go: either a relative core offset
// and axon (the hardware packet contents: Δx, Δy, axon index, delivery
// delay), or a named external output captured by the engine.
type Target struct {
	// Valid distinguishes configured targets from unused neurons.
	Valid bool
	// Output marks an off-system output sink; OutputID identifies it.
	Output bool
	// OutputID indexes the engine's output table when Output is set.
	OutputID int32
	// DX and DY are the relative core offsets (in cores) to the target.
	DX, DY int16
	// Axon is the target axon index on the destination core.
	Axon uint8
	// Delay is the axonal delay in ticks, MinDelay..MaxDelay.
	Delay uint8
}

// Validate reports the first range violation in t, or nil.
func (t Target) Validate() error {
	if !t.Valid || t.Output {
		return nil
	}
	if t.Delay < MinDelay || t.Delay > MaxDelay {
		return fmt.Errorf("core: target delay %d out of range [%d,%d]", t.Delay, MinDelay, MaxDelay)
	}
	return nil
}

// Config is the complete programmable state of a core: the crossbar, axon
// types, neuron parameters, spike targets, and PRNG seed. It corresponds to
// what the Corelet toolchain loads into a physical core.
type Config struct {
	// Synapses holds one 256-bit row per axon; bit j of row i means axon i
	// connects to neuron j.
	Synapses [AxonsPerCore]RowMask
	// AxonType assigns each axon one of the four types G_i; the type
	// selects which per-neuron signed weight a synaptic event applies.
	AxonType [AxonsPerCore]uint8
	// Neurons holds the per-neuron programmable parameters.
	Neurons [NeuronsPerCore]neuron.Params
	// Targets holds each neuron's single spike destination.
	Targets [NeuronsPerCore]Target
	// InitV holds the programmed initial membrane potentials. Like the
	// rest of the neuron state they live in the core SRAM and are loaded
	// with the configuration; nonzero values desynchronize tonic neurons.
	InitV [NeuronsPerCore]int32
	// Seed seeds the core's PRNG.
	Seed uint16
}

// Validate reports the first invalid field in the configuration, or nil.
func (c *Config) Validate() error {
	for i, g := range c.AxonType {
		if g >= neuron.NumAxonTypes {
			return fmt.Errorf("core: axon %d has type %d, want < %d", i, g, neuron.NumAxonTypes)
		}
	}
	for j := range c.Neurons {
		if err := c.Neurons[j].Validate(); err != nil {
			return fmt.Errorf("core: neuron %d: %w", j, err)
		}
		if err := c.Targets[j].Validate(); err != nil {
			return fmt.Errorf("core: neuron %d: %w", j, err)
		}
		if v := c.InitV[j]; v < neuron.VMin || v > neuron.VMax {
			return fmt.Errorf("core: neuron %d: initial potential %d out of 20-bit signed range", j, v)
		}
	}
	return nil
}

// Counters accumulates the event counts that drive both performance
// characterization (SOPS) and the energy model. One SynEvent is the paper's
// fundamental synaptic operation: a conditional weighted accumulate executed
// because a spike arrived on an axon whose crossbar bit for that neuron is
// set.
type Counters struct {
	// SynEvents counts synaptic operations (SOPS numerator).
	SynEvents uint64
	// NeuronUpdates counts per-neuron leak/threshold evaluations.
	NeuronUpdates uint64
	// Spikes counts neuron firings.
	Spikes uint64
	// AxonEvents counts spike deliveries into axons.
	AxonEvents uint64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.SynEvents += o.SynEvents
	c.NeuronUpdates += o.NeuronUpdates
	c.Spikes += o.Spikes
	c.AxonEvents += o.AxonEvents
}

// Core is the runtime state of one neurosynaptic core.
type Core struct {
	// Cfg is the loaded configuration (shared, read-only during stepping).
	Cfg *Config
	// V holds the 256 membrane potentials.
	V [NeuronsPerCore]int32
	// RNG is the core's hardware PRNG.
	RNG prng.LFSR
	// Disabled marks a failed core: it consumes no events and emits no
	// spikes; engines route traffic around it (Section III-C: "if a core
	// fails, we disable it and route spike events around it").
	Disabled bool
	// Cnt accumulates this core's event counters.
	Cnt Counters

	// ring is the axonal delay buffer: ring[t & 15] holds the axons that
	// receive a spike at tick t.
	ring [delaySlots]RowMask

	// everyTickMask marks the neurons that must run the Neuron phase on
	// every tick regardless of input: nonzero leak, stochastic leak,
	// stochastic threshold, or threshold ≤ 0 — anything that draws from the
	// PRNG or can change state without a synaptic event. It is a pure
	// function of the configuration, computed once per (re)load.
	everyTickMask RowMask
	// anyEveryTick caches !everyTickMask.Empty() for the per-core skip.
	anyEveryTick bool
	// dirtyMask marks neurons outside everyTickMask whose potential may
	// have left the quiescent band [-β, α): set word-parallel by the
	// Synapse phase when Integrate touches a row, seeded from InitV or a
	// restored snapshot, and re-armed by the Neuron phase while the
	// post-update potential still satisfies V ≥ α or V < -β. Together the
	// masks make the Neuron phase event-driven per neuron: "because neurons
	// fire sparsely in time, the event-based update loop is significantly
	// more efficient" (Section III).
	dirtyMask RowMask
	// fullNeuronScan disables the per-neuron skip (see SetFullNeuronScan).
	fullNeuronScan bool
}

// New returns a core loaded with cfg. The caller should Validate cfg first;
// New does not re-check ranges.
func New(cfg *Config) *Core {
	c := &Core{Cfg: cfg}
	c.V = cfg.InitV
	c.RNG.Seed(cfg.Seed)
	c.refreshMasks()
	return c
}

// refreshMasks recomputes everyTickMask from the configuration and reseeds
// dirtyMask from the current potentials. A neuron in neither mask is a fixed
// point of the Neuron phase — ApplyLeak is the identity (zero deterministic
// leak) and ThresholdFire neither fires, resets, nor draws while the
// potential stays in [-β, α) — so skipping it is unobservable.
func (c *Core) refreshMasks() {
	c.everyTickMask = RowMask{}
	c.dirtyMask = RowMask{}
	for j := range c.Cfg.Neurons {
		p := &c.Cfg.Neurons[j]
		// Threshold ≤ 0 fires from the resting potential; the others draw
		// from the PRNG or move the potential without any input.
		if p.Leak != 0 || p.StochLeak || p.ThresholdMask != 0 || p.Threshold <= 0 {
			c.everyTickMask.Set(j)
			continue
		}
		if c.V[j] >= p.Threshold || c.V[j] < -p.NegThreshold {
			c.dirtyMask.Set(j)
		}
	}
	c.anyEveryTick = !c.everyTickMask.Empty()
}

// SetFullNeuronScan toggles the dense Neuron-phase baseline: when on, every
// non-skipped tick evaluates all 256 neurons the way the pre-mask kernel did
// instead of walking everyTickMask | dirtyMask. Spikes, potentials, and PRNG
// draws are bit-identical either way — evaluating a quiescent neuron is the
// identity — so only NeuronUpdates and throughput differ. tnbench uses this
// as the ablation baseline arm.
func (c *Core) SetFullNeuronScan(on bool) { c.fullNeuronScan = on }

// Deliver records a spike arrival on axon at tick (the absolute tick at
// which it will be integrated). The engine computes tick = now + delay.
//
//perf:hot
func (c *Core) Deliver(axon int, tick uint64) {
	c.ring[tick&(delaySlots-1)].Set(axon)
}

// PendingAt returns a copy of the axon events scheduled for tick.
func (c *Core) PendingAt(tick uint64) RowMask {
	return c.ring[tick&(delaySlots-1)]
}

// Emit is the callback a core uses to hand a fired neuron's spike to the
// engine's Network phase.
type Emit func(neuronIdx int, tgt Target)

// Step runs the Synapse and Neuron phases for one tick. The engine must call
// Step exactly once per core per tick, then route the emitted spikes.
//
// Ordering contract (bit-equality across engines): active axons are walked
// in ascending index order, set crossbar bits in ascending neuron order, and
// the Neuron phase walks evaluated neurons in ascending index order; all PRNG
// draws happen in that sequence. The active-neuron kernel preserves the draw
// sequence exactly because every drawing neuron is in everyTickMask, and mask
// iteration is ascending.
//
//perf:hot
func (c *Core) Step(tick uint64, emit Emit) {
	slot := &c.ring[tick&(delaySlots-1)]
	if c.Disabled {
		*slot = RowMask{}
		return
	}
	active := *slot
	*slot = RowMask{}

	hasInput := !active.Empty()
	if !hasInput && !c.anyEveryTick && c.dirtyMask.Empty() {
		// Event-driven fast path: nothing arrived, nothing can change.
		return
	}

	cfg := c.Cfg
	// Synapse phase: propagate input spikes from axons through the crossbar
	// and perform synaptic integration (kernel lines 4-8). Every touched
	// neuron is marked dirty word-parallel so the Neuron phase evaluates it.
	if hasInput {
		active.ForEach(func(i int) {
			c.Cnt.AxonEvents++
			// uint8 indices: ForEach yields 0..255, and the conversion makes
			// that provable, so the crossbar walk carries no bounds checks.
			ai := uint8(i)
			row := &cfg.Synapses[ai]
			g := cfg.AxonType[ai]
			row.ForEach(func(j int) {
				nj := uint8(j)
				c.V[nj] = cfg.Neurons[nj].Integrate(c.V[nj], g, &c.RNG)
				c.Cnt.SynEvents++
			})
			for w := range c.dirtyMask {
				c.dirtyMask[w] |= row[w]
			}
		})
	}

	// Neuron phase: leak, threshold, fire, reset (kernel lines 9-18),
	// restricted to neurons that can observably change: the static
	// every-tick set plus anything the Synapse phase (or an earlier tick's
	// overshoot) left outside the quiescent band.
	walk := c.everyTickMask
	for w := range walk {
		walk[w] |= c.dirtyMask[w]
	}
	if c.fullNeuronScan {
		for w := range walk {
			walk[w] = ^uint64(0)
		}
	}
	c.dirtyMask = RowMask{}
	walk.ForEach(func(j int) {
		nj := uint8(j)
		p := &cfg.Neurons[nj]
		v := p.ApplyLeak(c.V[nj], &c.RNG)
		v, spike := p.ThresholdFire(v, &c.RNG)
		c.V[nj] = v
		c.Cnt.NeuronUpdates++
		// Re-arm: a potential still at or past a threshold keeps acting on
		// future ticks without further input (e.g. ResetNone overshoot).
		if v >= p.Threshold || v < -p.NegThreshold {
			c.dirtyMask.Set(j)
		}
		if spike {
			c.Cnt.Spikes++
			if t := cfg.Targets[nj]; t.Valid {
				emit(j, t)
			}
		}
	})
}

// StepDense is the ablation reference for Step: it produces bit-identical
// results but evaluates the update the way a dense simulator would —
// visiting every axon and every crossbar position each tick instead of
// only pending events and set bits. The paper's kernel argues that
// "because neurons fire sparsely in time, the event-based update loop is
// significantly more efficient than an alternative approach that loops
// over all synapses"; BenchmarkAblationDenseVsEventDriven quantifies it.
//
//perf:hot
func (c *Core) StepDense(tick uint64, emit Emit) {
	slot := &c.ring[tick&(delaySlots-1)]
	if c.Disabled {
		*slot = RowMask{}
		return
	}
	active := *slot
	*slot = RowMask{}

	cfg := c.Cfg
	for i := 0; i < AxonsPerCore; i++ {
		hasEvent := active.Get(i)
		if hasEvent {
			c.Cnt.AxonEvents++
		}
		row := &cfg.Synapses[i]
		g := cfg.AxonType[i]
		for j := 0; j < NeuronsPerCore; j++ {
			if !row.Get(j) || !hasEvent {
				continue
			}
			c.V[j] = cfg.Neurons[j].Integrate(c.V[j], g, &c.RNG)
			c.Cnt.SynEvents++
		}
	}
	// The dense walk evaluates everything, so re-arming alone keeps the
	// dirty invariant intact for a later switch back to Step.
	c.dirtyMask = RowMask{}
	for j := range cfg.Neurons {
		p := &cfg.Neurons[j]
		v := p.ApplyLeak(c.V[j], &c.RNG)
		v, spike := p.ThresholdFire(v, &c.RNG)
		c.V[j] = v
		c.Cnt.NeuronUpdates++
		if v >= p.Threshold || v < -p.NegThreshold {
			c.dirtyMask.Set(j)
		}
		if spike {
			c.Cnt.Spikes++
			if t := cfg.Targets[j]; t.Valid {
				emit(j, t)
			}
		}
	}
}

// Reset returns the core to its post-configuration state: potentials zeroed,
// delay buffers cleared, PRNG reseeded, counters preserved unless
// clearCounters is set.
func (c *Core) Reset(clearCounters bool) {
	c.V = c.Cfg.InitV
	c.ring = [delaySlots]RowMask{}
	c.RNG.Seed(c.Cfg.Seed)
	if clearCounters {
		c.Cnt = Counters{}
	}
	c.refreshMasks()
}

// ConfiguredSynapses returns the number of set crossbar bits, used for
// load-balancing estimates and memory accounting.
func (c *Config) ConfiguredSynapses() int {
	n := 0
	for i := range c.Synapses {
		n += c.Synapses[i].Count()
	}
	return n
}

// State is a snapshot of a core's runtime state, sufficient to resume a
// simulation bit-exactly: membrane potentials, the axonal delay ring, the
// PRNG register, the fault flag, and the event counters. Configuration is
// not part of the state; checkpoints pair with the model file.
type State struct {
	V        [NeuronsPerCore]int32
	Ring     [delaySlots]RowMask
	RNG      uint16
	Disabled bool
	Cnt      Counters
}

// SaveState captures the core's runtime state.
func (c *Core) SaveState() State {
	return State{V: c.V, Ring: c.ring, RNG: c.RNG.State(), Disabled: c.Disabled, Cnt: c.Cnt}
}

// RestoreState resumes the core from a snapshot taken on a core with the
// same configuration.
func (c *Core) RestoreState(s State) {
	c.V = s.V
	c.ring = s.Ring
	c.RNG.Seed(s.RNG)
	c.Disabled = s.Disabled
	c.Cnt = s.Cnt
	c.refreshMasks()
}

// InertNeuron returns parameters for an unused neuron slot: no weights, no
// leak, and a maximal threshold, so it never fires, never consumes PRNG
// draws, and keeps the core eligible for the event-driven fast path.
func InertNeuron() neuron.Params {
	return neuron.Params{Threshold: neuron.VMax}
}

// InertConfig returns a configuration whose 256 neurons are all inert.
// Builders start from this and program only the slots they use.
func InertConfig() *Config {
	cfg := &Config{Seed: 1}
	for j := range cfg.Neurons {
		cfg.Neurons[j] = InertNeuron()
	}
	return cfg
}

// InDegree returns the number of axons connected to neuron j.
func (c *Config) InDegree(j int) int {
	n := 0
	for i := range c.Synapses {
		if c.Synapses[i].Get(j) {
			n++
		}
	}
	return n
}
