// Package core implements the neurosynaptic core, the fundamental data
// structure of the TrueNorth architecture and the Compass simulator
// (Section III-A of the paper).
//
// A core integrates computation, communication, and memory: 256 input axons,
// 256 output neurons, a 256×256 binary synaptic crossbar, a 16-slot axonal
// delay buffer, and one hardware PRNG. Information flows from individually
// addressable axons (rows), through active crossbar crosspoints, into the
// membrane potentials of connected neurons (columns). Axons are driven by
// spike events delivered over the network; neurons that cross threshold emit
// a spike event toward exactly one target axon anywhere in the system.
//
// The Step method implements the per-tick Synapse and Neuron phases of the
// blueprint kernel (Listing 1); the Network phase — delivering emitted
// spikes — belongs to the engines in internal/chip and internal/compass,
// which both operate on this same core type, making the two expressions
// functionally one-to-one by construction.
package core

import (
	"fmt"
	"math/bits"

	"truenorth/internal/neuron"
	"truenorth/internal/prng"
)

// Architectural constants of the neurosynaptic core.
const (
	// AxonsPerCore is the number of input axons (crossbar rows).
	AxonsPerCore = 256
	// NeuronsPerCore is the number of neurons (crossbar columns).
	NeuronsPerCore = 256
	// MaxDelay is the maximum programmable axonal delay in ticks.
	MaxDelay = 15
	// MinDelay is the minimum axonal delay: a spike emitted at tick t is
	// integrated no earlier than tick t+1.
	MinDelay = 1

	// DelaySlots is the axonal delay ring size (delays 1..15 need 16 slots).
	// Engines that mirror the ring — e.g. per-slot pending-core masks — key
	// their structures by tick mod DelaySlots, exactly like Deliver.
	DelaySlots = MaxDelay + 1

	// delaySlots is the internal alias for the ring size.
	delaySlots = DelaySlots
	// rowWords is the number of 64-bit words per crossbar row.
	rowWords = NeuronsPerCore / 64

	// wordSynEventCutover is the minimum number of synaptic events in a tick
	// for which the word-parallel Synapse path beats the scalar per-event
	// walk. The word path pays per *touched neuron × fed type* (a popcount
	// and a multiply each) regardless of how many events that neuron
	// actually received, so at low event counts the scalar walk's
	// one-add-per-event is cheaper; the break-even sits around a few events
	// per neuron column. The event count is exact (a per-axon fanout table
	// summed over the active mask), so the decision — and therefore the
	// path taken — is a pure function of core state, identical across
	// engines. Both paths are bit-identical, so the constant is pure
	// throughput tuning.
	wordSynEventCutover = 3 * NeuronsPerCore
)

// RowMask is a 256-bit set over neuron (or axon) indices.
//
// The accessors mask the word index to rowWords-1 instead of relying on a
// bounds check: they sit on the per-event kernel path, and the mask makes
// the compiler's bounds-check elimination provable (tnproof pins this).
// Like the hardware's 8-bit axon/neuron addressing, indices wrap modulo 256
// rather than trapping; every caller passes validated 0..255 indices.
type RowMask [rowWords]uint64

// Set marks index i.
//
//perf:hot
func (m *RowMask) Set(i int) { m[(uint(i)>>6)&(rowWords-1)] |= 1 << (uint(i) & 63) }

// Clear unmarks index i.
//
//perf:hot
func (m *RowMask) Clear(i int) { m[(uint(i)>>6)&(rowWords-1)] &^= 1 << (uint(i) & 63) }

// Get reports whether index i is marked.
//
//perf:hot
func (m *RowMask) Get(i int) bool { return m[(uint(i)>>6)&(rowWords-1)]>>(uint(i)&63)&1 == 1 }

// Count returns the number of marked indices.
func (m *RowMask) Count() int {
	n := 0
	for _, w := range m {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether no index is marked.
func (m *RowMask) Empty() bool {
	var or uint64
	for _, w := range m {
		or |= w
	}
	return or == 0
}

// ForEach calls f for every marked index in ascending order. Ascending order
// is a correctness requirement, not a convenience: stochastic neuron modes
// consume PRNG draws per event, so every engine must walk events in the same
// order to stay bit-equal.
//
//perf:hot
func (m *RowMask) ForEach(f func(i int)) {
	for w := 0; w < rowWords; w++ {
		word := m[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			f(w<<6 + b)
			word &= word - 1
		}
	}
}

// Target describes where a neuron's spikes go: either a relative core offset
// and axon (the hardware packet contents: Δx, Δy, axon index, delivery
// delay), or a named external output captured by the engine.
type Target struct {
	// Valid distinguishes configured targets from unused neurons.
	Valid bool
	// Output marks an off-system output sink; OutputID identifies it.
	Output bool
	// OutputID indexes the engine's output table when Output is set.
	OutputID int32
	// DX and DY are the relative core offsets (in cores) to the target.
	DX, DY int16
	// Axon is the target axon index on the destination core.
	Axon uint8
	// Delay is the axonal delay in ticks, MinDelay..MaxDelay.
	Delay uint8
}

// Validate reports the first range violation in t, or nil.
func (t Target) Validate() error {
	if !t.Valid || t.Output {
		return nil
	}
	if t.Delay < MinDelay || t.Delay > MaxDelay {
		return fmt.Errorf("core: target delay %d out of range [%d,%d]", t.Delay, MinDelay, MaxDelay)
	}
	return nil
}

// Config is the complete programmable state of a core: the crossbar, axon
// types, neuron parameters, spike targets, and PRNG seed. It corresponds to
// what the Corelet toolchain loads into a physical core.
type Config struct {
	// Synapses holds one 256-bit row per axon; bit j of row i means axon i
	// connects to neuron j.
	Synapses [AxonsPerCore]RowMask
	// AxonType assigns each axon one of the four types G_i; the type
	// selects which per-neuron signed weight a synaptic event applies.
	AxonType [AxonsPerCore]uint8
	// Neurons holds the per-neuron programmable parameters.
	Neurons [NeuronsPerCore]neuron.Params
	// Targets holds each neuron's single spike destination.
	Targets [NeuronsPerCore]Target
	// InitV holds the programmed initial membrane potentials. Like the
	// rest of the neuron state they live in the core SRAM and are loaded
	// with the configuration; nonzero values desynchronize tonic neurons.
	InitV [NeuronsPerCore]int32
	// Seed seeds the core's PRNG.
	Seed uint16
}

// Validate reports the first invalid field in the configuration, or nil.
func (c *Config) Validate() error {
	for i, g := range c.AxonType {
		if g >= neuron.NumAxonTypes {
			return fmt.Errorf("core: axon %d has type %d, want < %d", i, g, neuron.NumAxonTypes)
		}
	}
	for j := range c.Neurons {
		if err := c.Neurons[j].Validate(); err != nil {
			return fmt.Errorf("core: neuron %d: %w", j, err)
		}
		if err := c.Targets[j].Validate(); err != nil {
			return fmt.Errorf("core: neuron %d: %w", j, err)
		}
		if v := c.InitV[j]; v < neuron.VMin || v > neuron.VMax {
			return fmt.Errorf("core: neuron %d: initial potential %d out of 20-bit signed range", j, v)
		}
	}
	return nil
}

// Counters accumulates the event counts that drive both performance
// characterization (SOPS) and the energy model. One SynEvent is the paper's
// fundamental synaptic operation: a conditional weighted accumulate executed
// because a spike arrived on an axon whose crossbar bit for that neuron is
// set.
type Counters struct {
	// SynEvents counts synaptic operations (SOPS numerator).
	SynEvents uint64
	// NeuronUpdates counts per-neuron leak/threshold evaluations.
	NeuronUpdates uint64
	// Spikes counts neuron firings.
	Spikes uint64
	// AxonEvents counts spike deliveries into axons.
	AxonEvents uint64
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.SynEvents += o.SynEvents
	c.NeuronUpdates += o.NeuronUpdates
	c.Spikes += o.Spikes
	c.AxonEvents += o.AxonEvents
}

// Core is the runtime state of one neurosynaptic core.
type Core struct {
	// Cfg is the loaded configuration (shared, read-only during stepping).
	Cfg *Config
	// V holds the 256 membrane potentials.
	V [NeuronsPerCore]int32
	// RNG is the core's hardware PRNG.
	RNG prng.LFSR
	// Disabled marks a failed core: it consumes no events and emits no
	// spikes; engines route traffic around it (Section III-C: "if a core
	// fails, we disable it and route spike events around it").
	Disabled bool
	// Cnt accumulates this core's event counters.
	Cnt Counters

	// ring is the axonal delay buffer: ring[t & 15] holds the axons that
	// receive a spike at tick t.
	ring [delaySlots]RowMask

	// everyTickMask marks the neurons that must run the Neuron phase on
	// every tick regardless of input: nonzero leak, stochastic leak,
	// stochastic threshold, or threshold ≤ 0 — anything that draws from the
	// PRNG or can change state without a synaptic event. It is a pure
	// function of the configuration, computed once per (re)load.
	everyTickMask RowMask
	// anyEveryTick caches !everyTickMask.Empty() for the per-core skip.
	anyEveryTick bool
	// dirtyMask marks neurons outside everyTickMask whose potential may
	// have left the quiescent band [-β, α): set word-parallel by the
	// Synapse phase when Integrate touches a row, seeded from InitV or a
	// restored snapshot, and re-armed by the Neuron phase while the
	// post-update potential still satisfies V ≥ α or V < -β. Together the
	// masks make the Neuron phase event-driven per neuron: "because neurons
	// fire sparsely in time, the event-based update loop is significantly
	// more efficient" (Section III).
	dirtyMask RowMask
	// fullNeuronScan disables the per-neuron skip (see SetFullNeuronScan).
	fullNeuronScan bool

	// cols is the column-major (SoA) view of the crossbar, derived from the
	// configuration at load: cols[j] masks the axons feeding neuron j — the
	// transpose of Cfg.Synapses. The word-parallel Synapse path intersects
	// these columns with the active-axon mask instead of walking rows bit by
	// bit.
	cols [NeuronsPerCore]RowMask
	// typeMask[g] masks the axons of type g; the four masks partition the
	// axon space, so intersecting the active mask with each yields the
	// per-type event counts the word path multiplies by the per-type weight.
	typeMask [neuron.NumAxonTypes]RowMask
	// wordW is the weight matrix in SoA order: wordW[g][j] is neuron j's
	// signed weight for axon type g (a transposed copy of
	// Cfg.Neurons[j].Weights[g], laid out so the per-neuron inner loop of the
	// word path strides unit-contiguous memory per type).
	wordW [neuron.NumAxonTypes][NeuronsPerCore]int32
	// wordSynOK marks the core eligible for the word-parallel Synapse path:
	// statically proven (refreshWordSyn) to have fully deterministic synaptic
	// integration — no per-synapse PRNG draw and no reachable intermediate
	// saturation — so batching 64 synapses per popcount is bit-identical to
	// the per-event scalar walk.
	wordSynOK bool
	// rowDeg[i] is the fanout of axon i (popcount of its crossbar row),
	// derived at load. Summed over the active mask it gives the tick's exact
	// synaptic event count, which picks the Synapse path (wordSynEventCutover).
	rowDeg [AxonsPerCore]uint16
	// scalarSynapse forces the scalar Synapse walk (see SetScalarSynapse).
	scalarSynapse bool
	// wordSynTicks counts ticks served by the word-parallel path. It is a
	// diagnostic, deliberately outside Counters: the path choice must not
	// show up in any cross-engine equality check, but tests need it to prove
	// the word path actually ran (and benchmarks to attribute throughput).
	wordSynTicks uint64
}

// New returns a core loaded with cfg. The caller should Validate cfg first;
// New does not re-check ranges.
func New(cfg *Config) *Core {
	c := &Core{Cfg: cfg}
	c.V = cfg.InitV
	c.RNG.Seed(cfg.Seed)
	c.buildSynLayout()
	c.refreshMasks()
	return c
}

// buildSynLayout derives the column-major crossbar view (cols, typeMask,
// wordW) from the configuration. The configuration is immutable once loaded,
// so this runs once per core; refreshMasks re-derives only the state-dependent
// eligibility flag.
func (c *Core) buildSynLayout() {
	c.cols = [NeuronsPerCore]RowMask{}
	c.typeMask = [neuron.NumAxonTypes]RowMask{}
	for i := range c.Cfg.Synapses {
		c.typeMask[c.Cfg.AxonType[i]&(neuron.NumAxonTypes-1)].Set(i)
		row := &c.Cfg.Synapses[i]
		deg := 0
		for w := 0; w < rowWords; w++ {
			deg += bits.OnesCount64(row[w])
		}
		c.rowDeg[i] = uint16(deg)
		row.ForEach(func(j int) {
			c.cols[uint8(j)].Set(i)
		})
	}
	for j := range c.Cfg.Neurons {
		for g := 0; g < neuron.NumAxonTypes; g++ {
			c.wordW[g][j] = c.Cfg.Neurons[j].Weights[g]
		}
	}
}

// refreshMasks recomputes everyTickMask from the configuration and reseeds
// dirtyMask from the current potentials. A neuron in neither mask is a fixed
// point of the Neuron phase — ApplyLeak is the identity (zero deterministic
// leak) and ThresholdFire neither fires, resets, nor draws while the
// potential stays in [-β, α) — so skipping it is unobservable.
func (c *Core) refreshMasks() {
	c.everyTickMask = RowMask{}
	c.dirtyMask = RowMask{}
	for j := range c.Cfg.Neurons {
		p := &c.Cfg.Neurons[j]
		// Threshold ≤ 0 fires from the resting potential; the others draw
		// from the PRNG or move the potential without any input.
		if p.Leak != 0 || p.StochLeak || p.ThresholdMask != 0 || p.Threshold <= 0 {
			c.everyTickMask.Set(j)
			continue
		}
		if c.V[j] >= p.Threshold || c.V[j] < -p.NegThreshold {
			c.dirtyMask.Set(j)
		}
	}
	c.anyEveryTick = !c.everyTickMask.Empty()
	c.refreshWordSyn()
}

// refreshWordSyn recomputes the word-parallel Synapse eligibility flag. A
// core is eligible when its synaptic integration is provably deterministic
// and saturation-free for *every* reachable potential:
//
//  1. No neuron has a stochastic synapse on an axon type with nonzero
//     in-degree — stochastic integration draws from the PRNG per event, so
//     only the ordered scalar walk reproduces the hardware draw stream.
//  2. No intermediate clamp can fire: for each neuron, the potential at the
//     start of any Synapse phase lies in [lo, hi] (the inductive envelope
//     from synPhaseBounds, widened to include the current potential so
//     restored snapshots and programmed InitV are covered), and every prefix
//     of the tick's synaptic deltas stays within [VMin, VMax] because
//     hi + Σ positive weights·in-degree ≤ VMax and lo − Σ |negative| ≥ VMin.
//
// Under these conditions clampV is the identity at every step of the scalar
// walk, so one unclamped word-accumulated add per neuron produces the same
// potential, the same counters, and the same (absent) PRNG draws — the word
// path is bit-identical by construction, and the ablation suite pins it.
func (c *Core) refreshWordSyn() {
	c.wordSynOK = false
	for j := range c.Cfg.Neurons {
		p := &c.Cfg.Neurons[j]
		col := &c.cols[j]
		var pos, neg int64
		for g := 0; g < neuron.NumAxonTypes; g++ {
			deg := 0
			for w := 0; w < rowWords; w++ {
				deg += bits.OnesCount64(col[w] & c.typeMask[g][w])
			}
			if deg == 0 {
				continue
			}
			if p.StochSyn[g] {
				return
			}
			if w0 := int64(p.Weights[g]); w0 >= 0 {
				pos += w0 * int64(deg)
			} else {
				neg -= w0 * int64(deg)
			}
		}
		lo, hi := synPhaseBounds(p)
		if v := int64(c.V[j]); v < lo {
			lo = v
		}
		if v := int64(c.V[j]); v > hi {
			hi = v
		}
		if hi+pos > neuron.VMax || lo-neg < neuron.VMin {
			return
		}
	}
	c.wordSynOK = true
}

// synPhaseBounds returns the envelope [lo, hi] of a neuron's potential at the
// start of any Synapse phase, as a pure function of its parameters. The
// envelope is inductive: a neuron evaluated by the Neuron phase leaves
// ThresholdFire inside it, and a neuron skipped by the event-driven kernel
// was untouched (the Synapse phase marks every touched neuron dirty, so it is
// always evaluated the same tick), keeping its previous in-envelope value.
func synPhaseBounds(p *neuron.Params) (lo, hi int64) {
	var jit int64
	if p.ThresholdMask != 0 {
		// The jitter is an 8-bit draw ANDed with the mask's low byte.
		jit = int64(p.ThresholdMask & 0xFF)
	}
	// Not fired: v < α + jitter, so v ≤ α + jitMax − 1.
	hi = int64(p.Threshold) + jit - 1
	switch p.Reset {
	case neuron.ResetToV:
		if r := int64(p.ResetV); r > hi {
			hi = r
		}
	case neuron.ResetSubtract:
		// v − (α + jit) with v ≤ VMax and jit ≥ 0.
		if s := int64(neuron.VMax) - int64(p.Threshold); s > hi {
			hi = s
		}
	default:
		// ResetNone leaves any overshoot in place: no bound below VMax.
		hi = neuron.VMax
	}
	lo = -int64(p.NegThreshold)
	if !p.NegSaturate {
		// The negative-threshold reset jumps to −R, of either sign.
		if r := -int64(p.ResetV); r < lo {
			lo = r
		}
		if r := -int64(p.ResetV); r > hi {
			hi = r
		}
	}
	if p.Reset == neuron.ResetToV {
		if r := int64(p.ResetV); r < lo {
			lo = r
		}
	}
	if hi > neuron.VMax {
		hi = neuron.VMax
	}
	if lo < neuron.VMin {
		lo = neuron.VMin
	}
	return lo, hi
}

// WordSynEligible reports whether the core qualifies for the word-parallel
// Synapse path at its current state (see refreshWordSyn).
func (c *Core) WordSynEligible() bool { return c.wordSynOK }

// SetScalarSynapse forces the per-event scalar Synapse walk even on cores
// eligible for the word-parallel path. Results, counters, and PRNG state are
// bit-identical either way — that is the eligibility contract — so this is an
// ablation and verification knob, like SetFullNeuronScan.
func (c *Core) SetScalarSynapse(on bool) { c.scalarSynapse = on }

// WordSynTicks reports how many ticks the word-parallel Synapse path served.
// Diagnostic only — never part of any cross-engine equality — but the assays
// that claim to exercise the word path assert it is nonzero.
func (c *Core) WordSynTicks() uint64 { return c.wordSynTicks }

// SetFullNeuronScan toggles the dense Neuron-phase baseline: when on, every
// non-skipped tick evaluates all 256 neurons the way the pre-mask kernel did
// instead of walking everyTickMask | dirtyMask. Spikes, potentials, and PRNG
// draws are bit-identical either way — evaluating a quiescent neuron is the
// identity — so only NeuronUpdates and throughput differ. tnbench uses this
// as the ablation baseline arm.
func (c *Core) SetFullNeuronScan(on bool) { c.fullNeuronScan = on }

// Deliver records a spike arrival on axon at tick (the absolute tick at
// which it will be integrated). The engine computes tick = now + delay.
//
// Contract: tick must lie within the core's 16-slot delay horizon —
// now ≤ tick < now + DelaySlots, where "now" is the next tick the engine will
// Step. Deliver indexes the ring modulo DelaySlots without checking, exactly
// like the silicon's 4-bit slot addressing: a tick outside the horizon
// silently aliases onto an earlier slot and the event arrives tick mod 16
// ticks early. Every in-repo caller satisfies the contract structurally —
// engine inject() queues arrivals beyond MaxDelay outside the ring and routed
// Target.Delay is validated to 1..15 at configuration load — and the engines
// must also notify their pending-core masks of every delivery, so external
// code (multichip merges, fault injectors) goes through engine Inject or uses
// DeliverAt, which enforces the horizon instead of wrapping.
//
//perf:hot
func (c *Core) Deliver(axon int, tick uint64) {
	c.ring[tick&(delaySlots-1)].Set(axon)
}

// DeliverAt is Deliver with the horizon contract enforced: it rejects, rather
// than silently aliases, an arrival tick outside [now, now+DelaySlots). now is
// the next tick the engine will Step.
func (c *Core) DeliverAt(axon int, now, tick uint64) error {
	if tick < now || tick-now >= DelaySlots {
		return fmt.Errorf("core: delivery at tick %d outside delay horizon [%d, %d): would alias onto slot %d and arrive early",
			tick, now, now+DelaySlots, tick&(delaySlots-1))
	}
	c.Deliver(axon, tick)
	return nil
}

// StaysHot reports whether an engine must run Step for this core on the next
// tick even if no spike is delivered to it: every-tick neuron dynamics (leak,
// stochastic draws, threshold ≤ 0), a non-empty dirty set from an earlier
// tick, or the core being disabled (a disabled Step still clears the arriving
// delay slot, so skipping it would change observable ring state). Engines
// combine StaysHot with their per-slot pending-delivery masks to walk only
// active cores; a core with StaysHot() == false and no pending deliveries is
// provably a fixed point of Step.
//
//perf:hot
func (c *Core) StaysHot() bool {
	return c.Disabled || c.anyEveryTick || !c.dirtyMask.Empty()
}

// RingOccupancy returns a 16-bit mask of delay-ring slots holding pending
// axon events: bit s covers ticks ≡ s mod DelaySlots. Engines rebuild their
// pending-core masks from it after checkpoint restore or reconfiguration.
func (c *Core) RingOccupancy() uint16 {
	var occ uint16
	for s := range c.ring {
		if !c.ring[s].Empty() {
			occ |= 1 << uint(s)
		}
	}
	return occ
}

// PendingAt returns a copy of the axon events scheduled for tick.
func (c *Core) PendingAt(tick uint64) RowMask {
	return c.ring[tick&(delaySlots-1)]
}

// Emit is the callback a core uses to hand a fired neuron's spike to the
// engine's Network phase.
type Emit func(neuronIdx int, tgt Target)

// Step runs the Synapse and Neuron phases for one tick. The engine must call
// Step exactly once per core per tick, then route the emitted spikes.
//
// Ordering contract (bit-equality across engines): active axons are walked
// in ascending index order, set crossbar bits in ascending neuron order, and
// the Neuron phase walks evaluated neurons in ascending index order; all PRNG
// draws happen in that sequence. The active-neuron kernel preserves the draw
// sequence exactly because every drawing neuron is in everyTickMask, and mask
// iteration is ascending.
//
//perf:hot
func (c *Core) Step(tick uint64, emit Emit) {
	slot := &c.ring[tick&(delaySlots-1)]
	if c.Disabled {
		*slot = RowMask{}
		return
	}
	active := *slot
	*slot = RowMask{}

	hasInput := !active.Empty()
	if !hasInput && !c.anyEveryTick && c.dirtyMask.Empty() {
		// Event-driven fast path: nothing arrived, nothing can change.
		return
	}

	cfg := c.Cfg
	// Synapse phase: propagate input spikes from axons through the crossbar
	// and perform synaptic integration (kernel lines 4-8). Every touched
	// neuron is marked dirty word-parallel so the Neuron phase evaluates it.
	// Eligible cores (refreshWordSyn) batch the crossbar 64 synapses at a
	// time; the scalar per-event walk is the reference and the fallback.
	if hasInput {
		if c.wordSynOK && !c.scalarSynapse && c.synEvents(&active) >= wordSynEventCutover {
			c.stepSynapsesWord(&active)
		} else {
			c.stepSynapsesScalar(&active)
		}
	}

	// Neuron phase: leak, threshold, fire, reset (kernel lines 9-18),
	// restricted to neurons that can observably change: the static
	// every-tick set plus anything the Synapse phase (or an earlier tick's
	// overshoot) left outside the quiescent band.
	walk := c.everyTickMask
	for w := range walk {
		walk[w] |= c.dirtyMask[w]
	}
	if c.fullNeuronScan {
		for w := range walk {
			walk[w] = ^uint64(0)
		}
	}
	c.dirtyMask = RowMask{}
	walk.ForEach(func(j int) {
		nj := uint8(j)
		p := &cfg.Neurons[nj]
		v := p.ApplyLeak(c.V[nj], &c.RNG)
		v, spike := p.ThresholdFire(v, &c.RNG)
		c.V[nj] = v
		c.Cnt.NeuronUpdates++
		// Re-arm: a potential still at or past a threshold keeps acting on
		// future ticks without further input (e.g. ResetNone overshoot).
		if v >= p.Threshold || v < -p.NegThreshold {
			c.dirtyMask.Set(j)
		}
		if spike {
			c.Cnt.Spikes++
			if t := cfg.Targets[nj]; t.Valid {
				emit(j, t)
			}
		}
	})
}

// stepSynapsesScalar is the per-event Synapse walk: active axons in ascending
// order, set crossbar bits in ascending neuron order, one Integrate (and any
// stochastic PRNG draw) per synaptic event. It is the semantic reference the
// word path must match bit-for-bit, and the only valid path for cores with
// stochastic synapses.
//
// synEvents returns the exact number of synaptic events the active-axon mask
// will produce — the per-axon fanouts summed over the set bits. It costs one
// table add per active axon and drives the Synapse-path choice.
//
//perf:hot
func (c *Core) synEvents(active *RowMask) int {
	ev := 0
	for w := 0; w < rowWords; w++ {
		word := active[w]
		base := w << 6
		for word != 0 {
			b := bits.TrailingZeros64(word)
			word &= word - 1
			ev += int(c.rowDeg[uint8(base+b)])
		}
	}
	return ev
}

//perf:hot
func (c *Core) stepSynapsesScalar(active *RowMask) {
	cfg := c.Cfg
	active.ForEach(func(i int) {
		c.Cnt.AxonEvents++
		// uint8 indices: ForEach yields 0..255, and the conversion makes
		// that provable, so the crossbar walk carries no bounds checks.
		ai := uint8(i)
		row := &cfg.Synapses[ai]
		g := cfg.AxonType[ai]
		row.ForEach(func(j int) {
			nj := uint8(j)
			c.V[nj] = cfg.Neurons[nj].Integrate(c.V[nj], g, &c.RNG)
			c.Cnt.SynEvents++
		})
		for w := range c.dirtyMask {
			c.dirtyMask[w] |= row[w]
		}
	})
}

// stepSynapsesWord is the word-parallel Synapse walk for eligible cores
// (wordSynOK): crossbar rows are evaluated 64 synapses at a time with word
// ANDs and popcounts instead of per-bit Integrate calls.
//
// Per tick it intersects the active-axon mask with each axon-type mask, takes
// the union of the active rows as the touched-neuron set, and for each
// touched neuron accumulates popcount(column ∩ active_type) × weight[type]
// in one add. Eligibility proves no per-event clamp can fire and no PRNG draw
// is consumed, so the result, SynEvents (each set (axon, neuron) crosspoint
// of an active axon counted exactly once — the types partition the axon
// space), AxonEvents, and the dirty mask are bit-identical to the scalar
// walk.
//
//perf:hot
func (c *Core) stepSynapsesWord(active *RowMask) {
	cfg := c.Cfg
	c.wordSynTicks++
	var act [neuron.NumAxonTypes]RowMask
	var nonEmpty [neuron.NumAxonTypes]bool
	for g := 0; g < neuron.NumAxonTypes; g++ {
		var or uint64
		for w := 0; w < rowWords; w++ {
			v := active[w] & c.typeMask[g][w]
			act[g][w] = v
			or |= v
		}
		nonEmpty[g] = or != 0
	}
	c.Cnt.AxonEvents += uint64(active.Count())
	var touched RowMask
	active.ForEach(func(i int) {
		row := &cfg.Synapses[uint8(i)]
		for w := 0; w < rowWords; w++ {
			touched[w] |= row[w]
		}
	})
	var syn uint64
	touched.ForEach(func(j int) {
		nj := uint8(j)
		col := &c.cols[nj]
		var delta int32
		for g := 0; g < neuron.NumAxonTypes; g++ {
			if !nonEmpty[g] {
				continue
			}
			n := 0
			for w := 0; w < rowWords; w++ {
				n += bits.OnesCount64(col[w] & act[g][w])
			}
			if n != 0 {
				syn += uint64(n)
				delta += int32(n) * c.wordW[g][nj]
			}
		}
		// Eligibility proved no intermediate saturation, so the unclamped
		// accumulated add equals the scalar per-event sequence.
		c.V[nj] += delta
	})
	c.Cnt.SynEvents += syn
	for w := 0; w < rowWords; w++ {
		c.dirtyMask[w] |= touched[w]
	}
}

// StepDense is the ablation reference for Step: it produces bit-identical
// results but evaluates the update the way a dense simulator would —
// visiting every axon and every crossbar position each tick instead of
// only pending events and set bits. The paper's kernel argues that
// "because neurons fire sparsely in time, the event-based update loop is
// significantly more efficient than an alternative approach that loops
// over all synapses"; BenchmarkAblationDenseVsEventDriven quantifies it.
//
//perf:hot
func (c *Core) StepDense(tick uint64, emit Emit) {
	slot := &c.ring[tick&(delaySlots-1)]
	if c.Disabled {
		*slot = RowMask{}
		return
	}
	active := *slot
	*slot = RowMask{}

	cfg := c.Cfg
	for i := 0; i < AxonsPerCore; i++ {
		hasEvent := active.Get(i)
		if hasEvent {
			c.Cnt.AxonEvents++
		}
		row := &cfg.Synapses[i]
		g := cfg.AxonType[i]
		for j := 0; j < NeuronsPerCore; j++ {
			if !row.Get(j) || !hasEvent {
				continue
			}
			c.V[j] = cfg.Neurons[j].Integrate(c.V[j], g, &c.RNG)
			c.Cnt.SynEvents++
		}
	}
	// The dense walk evaluates everything, so re-arming alone keeps the
	// dirty invariant intact for a later switch back to Step.
	c.dirtyMask = RowMask{}
	for j := range cfg.Neurons {
		p := &cfg.Neurons[j]
		v := p.ApplyLeak(c.V[j], &c.RNG)
		v, spike := p.ThresholdFire(v, &c.RNG)
		c.V[j] = v
		c.Cnt.NeuronUpdates++
		if v >= p.Threshold || v < -p.NegThreshold {
			c.dirtyMask.Set(j)
		}
		if spike {
			c.Cnt.Spikes++
			if t := cfg.Targets[j]; t.Valid {
				emit(j, t)
			}
		}
	}
}

// Reset returns the core to its post-configuration state: potentials zeroed,
// delay buffers cleared, PRNG reseeded, counters preserved unless
// clearCounters is set.
func (c *Core) Reset(clearCounters bool) {
	c.V = c.Cfg.InitV
	c.ring = [delaySlots]RowMask{}
	c.RNG.Seed(c.Cfg.Seed)
	if clearCounters {
		c.Cnt = Counters{}
	}
	c.refreshMasks()
}

// ConfiguredSynapses returns the number of set crossbar bits, used for
// load-balancing estimates and memory accounting.
func (c *Config) ConfiguredSynapses() int {
	n := 0
	for i := range c.Synapses {
		n += c.Synapses[i].Count()
	}
	return n
}

// State is a snapshot of a core's runtime state, sufficient to resume a
// simulation bit-exactly: membrane potentials, the axonal delay ring, the
// PRNG register, the fault flag, and the event counters. Configuration is
// not part of the state; checkpoints pair with the model file.
type State struct {
	V        [NeuronsPerCore]int32
	Ring     [delaySlots]RowMask
	RNG      uint16
	Disabled bool
	Cnt      Counters
}

// SaveState captures the core's runtime state.
func (c *Core) SaveState() State {
	return State{V: c.V, Ring: c.ring, RNG: c.RNG.State(), Disabled: c.Disabled, Cnt: c.Cnt}
}

// RestoreState resumes the core from a snapshot taken on a core with the
// same configuration.
func (c *Core) RestoreState(s State) {
	c.V = s.V
	c.ring = s.Ring
	c.RNG.Seed(s.RNG)
	c.Disabled = s.Disabled
	c.Cnt = s.Cnt
	c.refreshMasks()
}

// InertNeuron returns parameters for an unused neuron slot: no weights, no
// leak, and a maximal threshold, so it never fires, never consumes PRNG
// draws, and keeps the core eligible for the event-driven fast path.
func InertNeuron() neuron.Params {
	return neuron.Params{Threshold: neuron.VMax}
}

// InertConfig returns a configuration whose 256 neurons are all inert.
// Builders start from this and program only the slots they use.
func InertConfig() *Config {
	cfg := &Config{Seed: 1}
	for j := range cfg.Neurons {
		cfg.Neurons[j] = InertNeuron()
	}
	return cfg
}

// InDegree returns the number of axons connected to neuron j.
func (c *Config) InDegree(j int) int {
	n := 0
	for i := range c.Synapses {
		if c.Synapses[i].Get(j) {
			n++
		}
	}
	return n
}
