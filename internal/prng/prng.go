// Package prng implements the deterministic per-core pseudo-random number
// generator used by neurosynaptic cores for stochastic synapse, leak, and
// threshold modes.
//
// TrueNorth places a small hardware PRNG in every core; stochastic neural
// dynamics are therefore exactly reproducible given the seed, which is what
// makes the chip and the Compass simulator bit-equal even for stochastic
// networks. We model it as a 16-bit Fibonacci linear-feedback shift register
// with the maximal-length polynomial x^16 + x^15 + x^13 + x^4 + 1
// (taps 16, 15, 13, 4), giving a period of 2^16-1.
package prng

// LFSR is a 16-bit maximal-length Fibonacci linear-feedback shift register.
// The zero value is invalid (an all-zero LFSR is stuck); use New or Seed.
type LFSR struct {
	state uint16
}

// New returns an LFSR seeded with seed. A zero seed is mapped to 1 so that
// the register never enters the stuck all-zero state.
func New(seed uint16) *LFSR {
	l := &LFSR{}
	l.Seed(seed)
	return l
}

// Seed resets the register state. A zero seed is mapped to 1.
func (l *LFSR) Seed(seed uint16) {
	if seed == 0 {
		seed = 1
	}
	l.state = seed
}

// State returns the current register contents, for checkpointing.
func (l *LFSR) State() uint16 { return l.state }

// NextBit advances the register one step and returns the output bit.
func (l *LFSR) NextBit() uint16 {
	// Fibonacci LFSR, taps at bit positions 16, 15, 13, 4 (1-indexed).
	s := l.state
	bit := (s ^ (s >> 1) ^ (s >> 3) ^ (s >> 12)) & 1
	l.state = s>>1 | bit<<15
	return bit
}

// Next8 returns the next 8 pseudo-random bits as an unsigned byte value.
func (l *LFSR) Next8() uint8 {
	var v uint8
	for i := 0; i < 8; i++ {
		v = v<<1 | uint8(l.NextBit())
	}
	return v
}

// Next16 returns the next 16 pseudo-random bits.
func (l *LFSR) Next16() uint16 {
	return uint16(l.Next8())<<8 | uint16(l.Next8())
}

// Draw returns a uniformly distributed value in [0, 256) used by the
// stochastic synapse and leak modes: an event with probability parameter p
// (0..255) is applied when Draw() < p... see neuron.Params for the exact
// comparison conventions.
func (l *LFSR) Draw() int32 {
	return int32(l.Next8())
}
