package prng

import (
	"math"
	"testing"
)

// TestRandDeterministic pins the construction-PRNG stream: these values are
// part of the repo's reproducibility contract (golden spike streams depend
// on them). If this test fails, every netgen-derived golden file is invalid.
func TestRandDeterministic(t *testing.T) {
	r := NewRand(42)
	want := []uint64{
		0xbdd732262feb6e95,
		0x28efe333b266f103,
		0x47526757130f9f52,
		0x581ce1ff0e4ae394,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("Uint64 #%d = %#x, want %#x", i, got, w)
		}
	}
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("equal seeds diverged at draw %d", i)
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds produced the same first draw")
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(1)
	for _, n := range []int{1, 2, 3, 7, 256, 1 << 20} {
		for i := 0; i < 200; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
	for _, n := range []int32{1, 5, 1 << 16} {
		for i := 0; i < 200; i++ {
			if v := r.Int31n(n); v < 0 || v >= n {
				t.Fatalf("Int31n(%d) = %d out of range", n, v)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Uniform(t *testing.T) {
	r := NewRand(3)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of %d draws = %.4f, want ~0.5", n, mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(9)
	for _, n := range []int{0, 1, 2, 17, 4096} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) is not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
	// Uniformity smoke test: position of element 0 should be roughly uniform.
	counts := make([]int, 8)
	for trial := 0; trial < 8000; trial++ {
		p := r.Perm(8)
		for pos, v := range p {
			if v == 0 {
				counts[pos]++
			}
		}
	}
	for pos, c := range counts {
		if c < 700 || c > 1300 { // expect ~1000
			t.Fatalf("element 0 landed at position %d in %d/8000 trials", pos, c)
		}
	}
}

func TestShuffle(t *testing.T) {
	r := NewRand(11)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make([]bool, len(xs))
	for _, v := range xs {
		if v < 0 || v >= len(seen) || seen[v] {
			t.Fatalf("Shuffle broke the multiset: %v", xs)
		}
		seen[v] = true
	}
	same := true
	for i, v := range xs {
		if v != i {
			same = false
		}
	}
	if same {
		t.Fatal("Shuffle of 8 elements left them in order (astronomically unlikely)")
	}
}
