package prng

import (
	"testing"
	"testing/quick"
)

func TestZeroSeedMapsToOne(t *testing.T) {
	l := New(0)
	if l.State() == 0 {
		t.Fatal("zero seed must not produce the stuck all-zero state")
	}
	if got, want := New(0).State(), New(1).State(); got != want {
		t.Fatalf("New(0) state = %#x, want same as New(1) = %#x", got, want)
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(0xBEEF), New(0xBEEF)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Next16(), b.Next16(); av != bv {
			t.Fatalf("step %d: %#x != %#x", i, av, bv)
		}
	}
}

func TestSeedResetsSequence(t *testing.T) {
	l := New(42)
	first := make([]uint8, 64)
	for i := range first {
		first[i] = l.Next8()
	}
	l.Seed(42)
	for i := range first {
		if got := l.Next8(); got != first[i] {
			t.Fatalf("after reseed, byte %d = %#x, want %#x", i, got, first[i])
		}
	}
}

func TestMaximalPeriod(t *testing.T) {
	// A maximal-length 16-bit LFSR visits all 2^16-1 non-zero states before
	// repeating. This validates the tap polynomial.
	l := New(1)
	start := l.State()
	period := 0
	for {
		l.NextBit()
		period++
		if l.State() == start {
			break
		}
		if period > 1<<16 {
			t.Fatal("period exceeds 2^16: not a permutation of states")
		}
	}
	if period != 1<<16-1 {
		t.Fatalf("period = %d, want %d", period, 1<<16-1)
	}
}

func TestNeverZeroState(t *testing.T) {
	l := New(0x8000)
	for i := 0; i < 1<<16; i++ {
		l.NextBit()
		if l.State() == 0 {
			t.Fatalf("entered all-zero state at step %d", i)
		}
	}
}

func TestDrawRange(t *testing.T) {
	l := New(7)
	for i := 0; i < 4096; i++ {
		if v := l.Draw(); v < 0 || v > 255 {
			t.Fatalf("Draw() = %d, want in [0,255]", v)
		}
	}
}

func TestDrawApproximatelyUniform(t *testing.T) {
	// Over a full period every byte value appears nearly the same number of
	// times. We check a coarse chi-square-like bound over 64k draws.
	l := New(3)
	var hist [256]int
	const n = 1 << 16
	for i := 0; i < n; i++ {
		hist[l.Draw()]++
	}
	want := n / 256
	for v, c := range hist {
		if c < want/2 || c > want*2 {
			t.Fatalf("value %d drawn %d times, want near %d", v, c, want)
		}
	}
}

func TestBitBalance(t *testing.T) {
	l := New(0x1234)
	ones := 0
	const n = 1 << 16
	for i := 0; i < n; i++ {
		ones += int(l.NextBit())
	}
	if ones < n*45/100 || ones > n*55/100 {
		t.Fatalf("ones = %d of %d, want roughly balanced", ones, n)
	}
}

func TestPropertySeedDeterminism(t *testing.T) {
	f := func(seed uint16, steps uint8) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < int(steps); i++ {
			if a.Next8() != b.Next8() {
				return false
			}
		}
		return a.State() == b.State()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyStateNeverZero(t *testing.T) {
	f := func(seed uint16, steps uint16) bool {
		l := New(seed)
		for i := 0; i < int(steps%2048); i++ {
			l.NextBit()
			if l.State() == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNext8(b *testing.B) {
	l := New(1)
	for i := 0; i < b.N; i++ {
		_ = l.Next8()
	}
}
