package prng

// Rand is the repo's deterministic software pseudo-random generator for
// network *construction* (netgen wiring, scene synthesis, fault placement) —
// distinct from the 16-bit hardware LFSR that drives stochastic neural
// dynamics at runtime. Kernel packages must not use math/rand: its stream is
// not part of this repo's contract and a silent algorithm change upstream
// would invalidate every golden spike stream. Rand's stream is frozen here
// (SplitMix64, Vigna 2015: a 64-bit bijective state advance with an
// avalanching output mix), so identical seeds reproduce identical networks
// on every Go release. The tnlint detrand analyzer enforces the ban.
//
// The zero value is a valid generator seeded with 0; use NewRand for the
// conventional explicit-seed construction.
type Rand struct {
	state uint64
}

// NewRand returns a generator with the given seed. Equal seeds yield equal
// streams, forever.
func NewRand(seed int64) *Rand {
	return &Rand{state: uint64(seed)}
}

// Seed resets the generator state.
func (r *Rand) Seed(seed int64) { r.state = uint64(seed) }

// Uint64 returns the next 64 pseudo-random bits (SplitMix64).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative 63-bit pseudo-random integer.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with n <= 0")
	}
	return int(r.uint64n(uint64(n)))
}

// Int31n returns a uniform int32 in [0, n). It panics if n <= 0.
func (r *Rand) Int31n(n int32) int32 {
	if n <= 0 {
		panic("prng: Int31n with n <= 0")
	}
	return int32(r.uint64n(uint64(n)))
}

// uint64n returns a uniform value in [0, n) by rejection sampling, so small
// ranges carry no modulo bias.
func (r *Rand) uint64n(n uint64) uint64 {
	if n&(n-1) == 0 { // power of two
		return r.Uint64() & (n - 1)
	}
	// Largest multiple of n that fits in 64 bits; resample above it.
	max := ^uint64(0) - ^uint64(0)%n
	v := r.Uint64()
	for v >= max {
		v = r.Uint64()
	}
	return v % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	// 53 high bits scaled by 2^-53, the standard full-precision construction.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniform pseudo-random permutation of [0, n) (inside-out
// Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements through swap, as
// math/rand.Shuffle. It panics if n < 0.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("prng: Shuffle with n < 0")
	}
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
