// Package spikeio records and replays spike streams in an address-event
// representation (AER): one event per line, `tick id`, the lingua franca
// of neuromorphic tooling. The paper's measurement flow is exactly this —
// spikes in from transduced sensors, spikes out to off-chip analysis — and
// regression testing compares recorded streams ("not a single spike
// mismatch").
//
// Two stream kinds share the format:
//
//   - output streams: id is the output-sink id of a captured spike;
//   - input streams: id encodes an injection (x, y, axon) target via
//     Encode/Decode, and tick is the absolute delivery tick.
package spikeio

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"truenorth/internal/sim"
)

// Event is one address-event.
type Event struct {
	Tick uint64
	ID   int32
}

// Write serializes events, one `tick id` pair per line.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range events {
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.Tick, e.ID); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a stream written by Write. Parsing is strict: every
// non-blank line must be exactly two integer fields (`tick id`) — trailing
// garbage, missing fields, and out-of-range values are rejected with the
// offending line number, since a stream that half-parses would silently
// change a regression comparison. Blank and whitespace-only lines are
// skipped.
func Read(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("spikeio: line %d: want `tick id`, got %d fields", line, len(fields))
		}
		tick, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("spikeio: line %d: bad tick %q: %w", line, fields[0], err)
		}
		id, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("spikeio: line %d: bad id %q: %w", line, fields[1], err)
		}
		events = append(events, Event{Tick: tick, ID: int32(id)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}

// FromOutputs converts captured output spikes to events.
func FromOutputs(spikes []sim.OutputSpike) []Event {
	out := make([]Event, len(spikes))
	for i, s := range spikes {
		out[i] = Event{Tick: s.Tick, ID: s.ID}
	}
	return out
}

// Recorder accumulates an engine's output spikes across a run.
type Recorder struct {
	Events []Event
}

// Drain appends the engine's pending outputs to the recording.
func (r *Recorder) Drain(eng sim.Engine) {
	r.Events = append(r.Events, FromOutputs(eng.DrainOutputs())...)
}

// Equal reports whether two streams are identical after canonical
// ordering (tick-major, id-minor) — the regression comparison.
func Equal(a, b []Event) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := canonical(a), canonical(b)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

func canonical(e []Event) []Event {
	out := append([]Event(nil), e...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Tick != out[j].Tick {
			return out[i].Tick < out[j].Tick
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Input-stream addressing: id packs (x, y) with 12 bits each and axon
// with 8 — enough for a 4,096-wide board and the 256 axons.
const (
	axonBits  = 8
	coordBits = 12

	// MaxCoord and MaxAxon bound the packable address space. Encode masks
	// to the field widths, so a value at or above these bounds does not
	// fail — it aliases another address. Trust boundaries (the inject
	// endpoint, stream replays) must validate against them before
	// encoding.
	MaxCoord = 1 << coordBits
	MaxAxon  = 1 << axonBits
)

// Encode packs an injection target into an event id (the 12+12+8 bits
// fill the uint32 exactly; ids of input streams may therefore print as
// negative numbers — Decode treats the word as unsigned).
func Encode(x, y, axon int) int32 {
	return int32(uint32(x)<<(axonBits+coordBits) | uint32(y)<<axonBits | uint32(axon))
}

// Decode unpacks an injection target.
func Decode(id int32) (x, y, axon int) {
	u := uint32(id)
	return int(u >> (axonBits + coordBits)), int(u>>axonBits) & (1<<coordBits - 1), int(u & (1<<axonBits - 1))
}

// Replay injects an input stream into an engine. Events are delivered at
// their absolute ticks relative to the engine's current tick (events whose
// tick has already passed are dropped and counted in the return value).
// Replay is a trust boundary — streams come from files and network peers —
// so it goes through the engine's validating injection path: an event
// addressing an absent core, out-of-range axon, or off-mesh coordinate
// aborts the replay with an error rather than being silently absorbed.
func Replay(eng sim.Engine, events []Event) (dropped int, err error) {
	now := eng.Tick()
	for i, e := range events {
		if e.Tick < now {
			dropped++
			continue
		}
		delta := e.Tick - now
		if delta > uint64(math.MaxInt) {
			// The delay would wrap negative in the int conversion below,
			// turning a far-future event into a corrupt injection.
			return dropped, fmt.Errorf("spikeio: event %d (tick %d): delivery %d ticks past current tick %d overflows the scheduler", i, e.Tick, delta, now)
		}
		x, y, axon := Decode(e.ID)
		if err := sim.InjectChecked(eng, x, y, axon, int(delta)); err != nil {
			return dropped, fmt.Errorf("spikeio: event %d (tick %d): %w", i, e.Tick, err)
		}
	}
	return dropped, nil
}
