package spikeio

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"truenorth/internal/chip"
	"truenorth/internal/core"
	"truenorth/internal/neuron"
	"truenorth/internal/router"
)

func TestWriteReadRoundTrip(t *testing.T) {
	events := []Event{{0, 5}, {3, 1}, {3, 2}, {1000000, 2147483647}}
	var buf bytes.Buffer
	if err := Write(&buf, events); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	for _, tc := range []struct {
		name  string
		input string
		want  []Event
		errAt string // substring the error must contain; "" means no error
	}{
		{"ok", "12 7\n", []Event{{12, 7}}, ""},
		{"blank lines skipped", "\n\n", nil, ""},
		{"whitespace-only skipped", "   \t  \n5 1\n", []Event{{5, 1}}, ""},
		{"extra interior whitespace ok", "  5 \t 1  \n", []Event{{5, 1}}, ""},
		{"non-numeric id", "12 abc\n", nil, "line 1"},
		{"non-numeric tick", "abc 12\n", nil, "line 1"},
		{"trailing garbage", "12 7 junk\n", nil, "line 1"},
		{"trailing garbage later line", "12 7\n13 8 junk\n", nil, "line 2"},
		{"missing id", "12\n", nil, "line 1"},
		{"negative tick", "-1 7\n", nil, "line 1"},
		{"tick overflow", "18446744073709551616 7\n", nil, "line 1"},
		{"id overflow", "12 2147483648\n", nil, "line 1"},
		{"negative id ok", "12 -5\n", []Event{{12, -5}}, ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Read(strings.NewReader(tc.input))
			if tc.errAt != "" {
				if err == nil {
					t.Fatalf("Read(%q) accepted, want error mentioning %q", tc.input, tc.errAt)
				}
				if !strings.Contains(err.Error(), tc.errAt) {
					t.Fatalf("Read(%q) error %q does not name %q", tc.input, err, tc.errAt)
				}
				return
			}
			if err != nil {
				t.Fatalf("Read(%q): %v", tc.input, err)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("Read(%q) = %v, want %v", tc.input, got, tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("Read(%q)[%d] = %+v, want %+v", tc.input, i, got[i], tc.want[i])
				}
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(x, y uint16, axon uint8) bool {
		gx, gy, ga := Decode(Encode(int(x%4096), int(y%4096), int(axon)))
		return gx == int(x%4096) && gy == int(y%4096) && ga == int(axon)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEqualCanonicalOrdering(t *testing.T) {
	a := []Event{{1, 2}, {1, 1}, {0, 9}}
	b := []Event{{0, 9}, {1, 1}, {1, 2}}
	if !Equal(a, b) {
		t.Fatal("same multiset in different order reported unequal")
	}
	if Equal(a, a[:2]) {
		t.Fatal("different lengths reported equal")
	}
	c := []Event{{1, 2}, {1, 1}, {0, 8}}
	if Equal(a, c) {
		t.Fatal("different events reported equal")
	}
}

// relayChip builds a 2×1 mesh: injecting axon 0 on (0,0) emits output 7
// one core later.
func relayChip(t *testing.T) *chip.Model {
	t.Helper()
	a := core.InertConfig()
	a.Synapses[0].Set(0)
	a.Neurons[0] = neuron.Identity()
	a.Targets[0] = core.Target{Valid: true, DX: 1, Axon: 0, Delay: 1}
	b := core.InertConfig()
	b.Synapses[0].Set(0)
	b.Neurons[0] = neuron.Identity()
	b.Targets[0] = core.Target{Valid: true, Output: true, OutputID: 7}
	m, err := chip.New(router.Mesh{W: 2, H: 1}, []*core.Config{a, b})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRecordAndReplayEndToEnd(t *testing.T) {
	// Record an input stream, replay it into a fresh engine, and compare
	// output recordings — the regression-testing workflow.
	stim := []Event{
		{Tick: 0, ID: Encode(0, 0, 0)},
		{Tick: 5, ID: Encode(0, 0, 0)},
		{Tick: 40, ID: Encode(0, 0, 0)}, // beyond the delay ring: pending queue
	}
	run := func() []Event {
		eng := relayChip(t)
		dropped, err := Replay(eng, stim)
		if err != nil {
			t.Fatal(err)
		}
		if dropped != 0 {
			t.Fatalf("dropped %d events", dropped)
		}
		var rec Recorder
		eng.Run(50)
		rec.Drain(eng)
		return rec.Events
	}
	first := run()
	second := run()
	if !Equal(first, second) {
		t.Fatal("replayed run diverged from the original")
	}
	if len(first) != 3 {
		t.Fatalf("recorded %d outputs, want 3", len(first))
	}
	// Output ticks: injection at t integrates at t on core 0 (fires at t),
	// arrives core 1 at t+1 (fires → output at t+1).
	wantTicks := []uint64{1, 6, 41}
	for i, e := range first {
		if e.Tick != wantTicks[i] || e.ID != 7 {
			t.Fatalf("output %d = %+v, want tick %d id 7", i, e, wantTicks[i])
		}
	}
}

func TestReplayDropsPastEvents(t *testing.T) {
	eng := relayChip(t)
	eng.Run(10)
	dropped, err := Replay(eng, []Event{
		{Tick: 3, ID: Encode(0, 0, 0)},  // in the past
		{Tick: 12, ID: Encode(0, 0, 0)}, // future
	})
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("dropped %d, want 1", dropped)
	}
	eng.Run(10)
	if out := eng.DrainOutputs(); len(out) != 1 {
		t.Fatalf("outputs = %v, want the single future event", out)
	}
}

func TestReplayRejectsOverflowingDelivery(t *testing.T) {
	// An event so far in the future that (tick - now) no longer fits in an
	// int would wrap negative in the delay conversion. Replay is a trust
	// boundary, so that is an error, not a silent drop. The largest
	// representable delta is accepted (it lands in the pending queue).
	eng := relayChip(t)
	eng.Run(10)
	now := eng.Tick()
	for _, tc := range []struct {
		name string
		tick uint64
		ok   bool
	}{
		{"max representable delta", now + uint64(math.MaxInt), true},
		{"one past max", now + uint64(math.MaxInt) + 1, false},
		{"far future", math.MaxUint64, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dropped, err := Replay(eng, []Event{{Tick: tc.tick, ID: Encode(0, 0, 0)}})
			if tc.ok {
				if err != nil {
					t.Fatalf("delta math.MaxInt rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("tick %d accepted; want overflow error", tc.tick)
			}
			if dropped != 0 {
				t.Fatalf("overflowing event counted as dropped (%d)", dropped)
			}
			if !strings.Contains(err.Error(), "overflow") {
				t.Fatalf("error %q does not mention overflow", err)
			}
		})
	}
}

func TestReplayRejectsInvalidAddresses(t *testing.T) {
	// Replay is a trust boundary: an event addressing an off-mesh core must
	// abort with an error from the engine's validating injection path, not
	// vanish into the dropped-packet counter.
	eng := relayChip(t)
	_, err := Replay(eng, []Event{{Tick: 0, ID: Encode(5, 0, 0)}})
	if err == nil {
		t.Fatal("replay of an off-mesh event succeeded; want validation error")
	}
	if noc := eng.NoC(); noc.Dropped != 0 {
		t.Fatalf("invalid event was absorbed as a dropped packet (%d)", noc.Dropped)
	}
}
