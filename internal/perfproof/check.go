package perfproof

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Diagnose compiles pkg with escape-analysis and bounds-check diagnostics
// enabled and returns the classified findings (hot and cold alike; pass the
// result through Attribute). The build cache replays diagnostics for
// unchanged packages, so repeated gate runs cost almost nothing.
func Diagnose(modRoot, pkg string) ([]Finding, error) {
	cmd := exec.Command("go", "build",
		fmt.Sprintf("-gcflags=%s=-m -m -d=ssa/check_bce/debug=1", pkg), pkg)
	cmd.Dir = modRoot
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("perfproof: go build %s: %w\n%s", pkg, err, out)
	}
	return ParseDiagnostics(string(out)), nil
}

// modulePathRe extracts the module path from a go.mod file.
var modulePathRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// PackageDir maps an import path inside the module rooted at modRoot to its
// source directory, without shelling out to `go list`.
func PackageDir(modRoot, pkg string) (string, error) {
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("perfproof: %w", err)
	}
	m := modulePathRe.FindSubmatch(data)
	if m == nil {
		return "", fmt.Errorf("perfproof: no module line in %s/go.mod", modRoot)
	}
	module := string(m[1])
	if pkg == module {
		return modRoot, nil
	}
	if !strings.HasPrefix(pkg, module+"/") {
		return "", fmt.Errorf("perfproof: package %s is outside module %s", pkg, module)
	}
	return filepath.Join(modRoot, filepath.FromSlash(strings.TrimPrefix(pkg, module+"/"))), nil
}

// GoldenPath returns the budget file for pkg under goldenDir: the import
// path with slashes and dots flattened to underscores.
func GoldenPath(goldenDir, pkg string) string {
	flat := strings.NewReplacer("/", "_", ".", "_").Replace(pkg)
	return filepath.Join(goldenDir, flat+".golden")
}

// PackageReport is the gate's result for one package; it serializes to the
// CI artifact JSON.
type PackageReport struct {
	Pkg        string    `json:"pkg"`
	Hot        []HotFunc `json:"hot"`
	Findings   []Finding `json:"findings"`
	Violations []string  `json:"violations,omitempty"`
	Pass       bool      `json:"pass"`
}

// CheckPackage diffs the live hot set and findings against the golden
// budget. Every returned violation carries a live file:line (or the golden
// path for stale records) so CI failures are directly actionable. The gate
// is a two-sided ratchet: exceeding a budget fails, and so does beating one
// — improvements must be blessed with -update so budgets stay tight.
func CheckPackage(pkg string, hot []HotFunc, findings []Finding, b *Budget) []string {
	var violations []string

	// Hot-set pinning: the golden and the source must agree on what is
	// guarded, in both directions.
	liveHot := make(map[string]HotFunc, len(hot))
	for _, h := range hot {
		liveHot[h.Name] = h
	}
	goldenHot := make(map[string]bool, len(b.Hot))
	for _, name := range b.Hot {
		goldenHot[name] = true
		if _, ok := liveHot[name]; !ok {
			violations = append(violations, fmt.Sprintf(
				"%s: hot function %s pinned in golden but no longer carries %s (restore the directive or bless with -update)",
				pkg, name, Directive))
		}
	}
	for _, h := range hot {
		if !goldenHot[h.Name] {
			violations = append(violations, fmt.Sprintf(
				"%s:%d: new hot function %s is not in the golden budget (bless with -update)",
				h.File, h.StartLine, h.Name))
		}
	}

	// Budget diff, keyed by (func, kind, message) with positions retained
	// for the diagnostics.
	liveCount := make(map[AllowKey]int)
	livePos := make(map[AllowKey][]string)
	for _, f := range findings {
		k := AllowKey{Func: f.Func, Kind: f.Kind, Message: f.Message}
		liveCount[k]++
		livePos[k] = append(livePos[k], f.Pos())
	}
	keys := make([]AllowKey, 0, len(liveCount))
	for k := range liveCount {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return livePos[keys[i]][0] < livePos[keys[j]][0] })
	for _, k := range keys {
		allowed := b.Allow[k]
		if liveCount[k] > allowed {
			violations = append(violations, fmt.Sprintf(
				"%s: %s in hot %s.%s: %q ×%d exceeds budget %d",
				strings.Join(livePos[k], " "), k.Kind, shortPkg(pkg), k.Func, k.Message, liveCount[k], allowed))
		}
	}
	for k, allowed := range b.Allow {
		if n := liveCount[k]; n < allowed {
			violations = append(violations, fmt.Sprintf(
				"golden %s: stale allowance 'allow %d %s %s %s' (live count %d — tighten with -update)",
				pkg, allowed, k.Kind, k.Func, k.Message, n))
		}
	}
	sort.Strings(violations)
	return violations
}

// shortPkg trims the module prefix for readable diagnostics.
func shortPkg(pkg string) string {
	if i := strings.LastIndex(pkg, "/"); i >= 0 {
		return pkg[i+1:]
	}
	return pkg
}

// Run executes the full gate over pkgs for the module at modRoot, diffing
// against (or, when update is set, rewriting) the goldens in goldenDir.
func Run(modRoot, goldenDir string, pkgs []string, update bool) ([]PackageReport, error) {
	var reports []PackageReport
	for _, pkg := range pkgs {
		dir, err := PackageDir(modRoot, pkg)
		if err != nil {
			return reports, err
		}
		hot, err := ScanHot(modRoot, dir)
		if err != nil {
			return reports, err
		}
		all, err := Diagnose(modRoot, pkg)
		if err != nil {
			return reports, err
		}
		findings := Attribute(all, hot)
		rep := PackageReport{Pkg: pkg, Hot: hot, Findings: findings}

		path := GoldenPath(goldenDir, pkg)
		if update {
			if err := os.MkdirAll(goldenDir, 0o755); err != nil {
				return reports, fmt.Errorf("perfproof: %w", err)
			}
			if err := os.WriteFile(path, BuildBudget(pkg, hot, findings).Format(), 0o644); err != nil {
				return reports, fmt.Errorf("perfproof: %w", err)
			}
			rep.Pass = true
			reports = append(reports, rep)
			continue
		}
		data, err := os.ReadFile(path)
		if err != nil {
			rep.Violations = []string{fmt.Sprintf(
				"%s: no golden budget for %s (generate with -update)", path, pkg)}
			rep.Pass = false
			reports = append(reports, rep)
			continue
		}
		budget, err := ParseBudget(pkg, data)
		if err != nil {
			return reports, err
		}
		rep.Violations = CheckPackage(pkg, hot, findings, budget)
		rep.Pass = len(rep.Violations) == 0
		reports = append(reports, rep)
	}
	return reports, nil
}
