package perfproof

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// AllowKey identifies one budgeted diagnostic class within a package: the
// hot function it lands in, the kind, and the compiler's message. Line
// numbers are deliberately not part of the key so unrelated edits that shift
// code do not invalidate budgets; counts catch real regressions.
type AllowKey struct {
	Func    string
	Kind    Kind
	Message string
}

// Budget is the parsed golden file for one package: the pinned hot set and
// the allowed diagnostic counts. A missing allowance means zero tolerance.
type Budget struct {
	Pkg   string
	Hot   []string
	Allow map[AllowKey]int
}

// ParseBudget reads a golden budget file. Format, one record per line:
//
//	# comment
//	hot <func>
//	allow <count> <kind> <func> <message...>
func ParseBudget(pkg string, data []byte) (*Budget, error) {
	b := &Budget{Pkg: pkg, Allow: make(map[AllowKey]int)}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "hot":
			if len(fields) != 2 {
				return nil, fmt.Errorf("perfproof: golden line %d: want 'hot <func>'", lineNo)
			}
			b.Hot = append(b.Hot, fields[1])
		case "allow":
			if len(fields) < 5 {
				return nil, fmt.Errorf("perfproof: golden line %d: want 'allow <count> <kind> <func> <message>'", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("perfproof: golden line %d: bad count %q", lineNo, fields[1])
			}
			kind := Kind(fields[2])
			if kind != KindEscape && kind != KindBounds {
				return nil, fmt.Errorf("perfproof: golden line %d: unknown kind %q", lineNo, fields[2])
			}
			key := AllowKey{Func: fields[3], Kind: kind, Message: strings.Join(fields[4:], " ")}
			if _, dup := b.Allow[key]; dup {
				return nil, fmt.Errorf("perfproof: golden line %d: duplicate allowance", lineNo)
			}
			b.Allow[key] = n
		default:
			return nil, fmt.Errorf("perfproof: golden line %d: unknown record %q", lineNo, fields[0])
		}
	}
	sort.Strings(b.Hot)
	return b, nil
}

// BuildBudget derives the budget a live scan would bless: the current hot
// set plus the attributed findings grouped into allowance counts.
func BuildBudget(pkg string, hot []HotFunc, findings []Finding) *Budget {
	b := &Budget{Pkg: pkg, Allow: make(map[AllowKey]int)}
	for _, h := range hot {
		b.Hot = append(b.Hot, h.Name)
	}
	sort.Strings(b.Hot)
	for _, f := range findings {
		b.Allow[AllowKey{Func: f.Func, Kind: f.Kind, Message: f.Message}]++
	}
	return b
}

// Format renders the budget in canonical golden-file form.
func (b *Budget) Format() []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# perfproof golden budget for %s.\n", b.Pkg)
	sb.WriteString("# hot lines pin the //perf:hot set; allow lines budget compiler findings.\n")
	sb.WriteString("# Regenerate after an intentional change: make proof-update\n")
	for _, h := range b.Hot {
		fmt.Fprintf(&sb, "hot %s\n", h)
	}
	keys := make([]AllowKey, 0, len(b.Allow))
	for k := range b.Allow {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, c := keys[i], keys[j]
		if a.Func != c.Func {
			return a.Func < c.Func
		}
		if a.Kind != c.Kind {
			return a.Kind < c.Kind
		}
		return a.Message < c.Message
	})
	for _, k := range keys {
		fmt.Fprintf(&sb, "allow %d %s %s %s\n", b.Allow[k], k.Kind, k.Func, k.Message)
	}
	return []byte(sb.String())
}
