package perfproof

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ScanHot parses the non-test Go sources in dir and returns the functions
// whose doc comment carries the //perf:hot directive. File paths in the
// result are reported relative to modRoot so they line up with the
// compiler's diagnostic positions (go build runs from the module root).
func ScanHot(modRoot, dir string) ([]HotFunc, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("perfproof: %w", err)
	}
	fset := token.NewFileSet()
	var hot []HotFunc
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("perfproof: parse %s: %w", path, err)
		}
		rel, err := filepath.Rel(modRoot, path)
		if err != nil {
			return nil, fmt.Errorf("perfproof: %w", err)
		}
		rel = filepath.ToSlash(rel)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !hasDirective(fn.Doc) {
				continue
			}
			hot = append(hot, HotFunc{
				Name:      funcKey(fn),
				File:      rel,
				StartLine: fset.Position(fn.Pos()).Line,
				EndLine:   fset.Position(fn.End()).Line,
			})
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].File != hot[j].File {
			return hot[i].File < hot[j].File
		}
		return hot[i].StartLine < hot[j].StartLine
	})
	return hot, nil
}

// hasDirective reports whether a doc comment contains a //perf:hot line.
// Directive comments are exact-match whole lines, per go/ast convention.
func hasDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == Directive {
			return true
		}
	}
	return false
}

// funcKey renders a FuncDecl's stable budget key: "Name" for package
// functions, "Recv.Name" for methods with pointer stars stripped.
func funcKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = u.X
		case *ast.IndexListExpr:
			t = u.X
		case *ast.Ident:
			return u.Name + "." + fn.Name.Name
		default:
			return fn.Name.Name
		}
	}
}
