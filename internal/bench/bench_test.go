package bench

import (
	"encoding/json"
	"regexp"
	"testing"

	"truenorth/internal/router"
)

// tinyConfig is a sweep small enough for unit tests.
func tinyConfig() Config {
	return Config{
		Grid:           router.Mesh{W: 2, H: 2},
		Rates:          []float64{2, 50},
		Syns:           []int{16},
		DrivenFraction: 0.875,
		SettleTicks:    5,
		MeasureTicks:   40,
		Workers:        2,
		Seed:           7,
	}
}

func TestRunProducesCompleteReport(t *testing.T) {
	rep, err := Run(tinyConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != 1 {
		t.Fatalf("schema version %d, want 1", rep.SchemaVersion)
	}
	if rep.Neurons != 2*2*256 {
		t.Fatalf("neurons = %d, want 1024", rep.Neurons)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("%d points, want 2", len(rep.Points))
	}
	// Host metadata: a benchmark number without the parallelism it ran at
	// is not comparable across machines or CI runners.
	if rep.GoVersion == "" || rep.GOOS == "" || rep.GOARCH == "" {
		t.Fatalf("host metadata incomplete: %q %q %q", rep.GoVersion, rep.GOOS, rep.GOARCH)
	}
	if rep.CPUs <= 0 || rep.GOMAXPROCS <= 0 {
		t.Fatalf("cpu metadata not populated: cpus=%d gomaxprocs=%d", rep.CPUs, rep.GOMAXPROCS)
	}
	for _, pt := range rep.Points {
		if len(pt.Engines) != len(Arms) {
			t.Fatalf("point %.0fx%d has %d arms, want %d", pt.RateHz, pt.Syn, len(pt.Engines), len(Arms))
		}
		for _, arm := range Arms {
			r, ok := pt.Engines[arm]
			if !ok {
				t.Fatalf("point %.0fx%d missing arm %q", pt.RateHz, pt.Syn, arm)
			}
			if r.TicksPerSec <= 0 || r.NsPerTick <= 0 {
				t.Fatalf("arm %q reported non-positive throughput: %+v", arm, r)
			}
		}
		if pt.KernelSpeedup <= 0 {
			t.Fatalf("point %.0fx%d kernel speedup %.3f not positive", pt.RateHz, pt.Syn, pt.KernelSpeedup)
		}
		// The active kernel must actually evaluate fewer neurons than the
		// forced full scan on this mostly-driven workload.
		if a, f := pt.Engines["chip"].NeuronUpdatesPerTick, pt.Engines["chip-full-scan"].NeuronUpdatesPerTick; a >= f {
			t.Fatalf("point %.0fx%d: active kernel %f updates/tick, full scan %f — no work skipped", pt.RateHz, pt.Syn, a, f)
		}
	}
	if rep.Summary.BestKernelSpeedup <= 0 || rep.Summary.SparseKernelSpeedup <= 0 {
		t.Fatalf("summary not populated: %+v", rep.Summary)
	}
	if rep.Summary.PeakChipSOPS <= 0 {
		t.Fatal("peak SOPS not populated")
	}
}

// TestLowRateMeasurementMatchesRequested is the regression test for the
// "2 Hz point reads 0.247 Hz" bug: the harness normalized the spike count
// over the whole population although at DrivenFraction 0.875 only 1/8 of the
// neurons are tonic pacemakers holding the programmed rate — an exactly 8×
// understatement that looked like a pacing shortfall. At syn = 0 the network
// is purely tonic pacemakers firing deterministically every ⌈α/λ⌉ ticks, so
// the pacemaker-normalized rate must match the requested rate tightly, and
// the population rate must sit at requested × (1 − DrivenFraction).
func TestLowRateMeasurementMatchesRequested(t *testing.T) {
	cfg := Config{
		Grid:           router.Mesh{W: 2, H: 2},
		Rates:          []float64{2},
		Syns:           []int{0},
		DrivenFraction: 0.875,
		SettleTicks:    40,
		// 4 whole 500-tick firing periods: every pacemaker fires exactly 4
		// times in any 2000-tick window regardless of its initial phase.
		MeasureTicks: 2000,
		Workers:      2,
		Seed:         20140613,
	}
	rep, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	pt := rep.Points[0]
	if got, want := pt.PacemakerRateHz, 2.0; got < want*0.95 || got > want*1.05 {
		t.Errorf("pacemaker rate %.4f Hz, want %.1f Hz ± 5%%: low-rate measurement off", got, want)
	}
	if got, want := pt.MeasuredRateHz, 2.0*(1-cfg.DrivenFraction); got < want*0.95 || got > want*1.05 {
		t.Errorf("population rate %.4f Hz, want %.3f Hz ± 5%% (rate × pacemaker fraction)", got, want)
	}
	// Same requested rate with no relays: both figures coincide and match.
	cfg.DrivenFraction = 0
	rep, err = Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	pt = rep.Points[0]
	if pt.PacemakerRateHz != pt.MeasuredRateHz {
		t.Errorf("all-tonic: pacemaker %.4f Hz ≠ population %.4f Hz", pt.PacemakerRateHz, pt.MeasuredRateHz)
	}
	if got := pt.MeasuredRateHz; got < 1.9 || got > 2.1 {
		t.Errorf("all-tonic measured rate %.4f Hz, want ≈ 2 Hz", got)
	}
}

func TestReportRoundTripsThroughJSON(t *testing.T) {
	cfg := tinyConfig()
	cfg.Rates = []float64{10}
	rep, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Grid != "2x2" || len(back.Points) != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Points[0].Engines["chip"].TicksPerSec != rep.Points[0].Engines["chip"].TicksPerSec {
		t.Fatal("round trip changed a measurement")
	}
}

func TestConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"bad grid", func(c *Config) { c.Grid.W = 0 }},
		{"no rates", func(c *Config) { c.Rates = nil }},
		{"no syns", func(c *Config) { c.Syns = nil }},
		{"zero measure", func(c *Config) { c.MeasureTicks = 0 }},
		{"negative settle", func(c *Config) { c.SettleTicks = -1 }},
		{"zero workers", func(c *Config) { c.Workers = 0 }},
	} {
		cfg := tinyConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if err := tinyConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	if err := SmokeConfig().Validate(); err != nil {
		t.Errorf("smoke config rejected: %v", err)
	}
}

func TestFilenameShape(t *testing.T) {
	if ok, _ := regexp.MatchString(`^BENCH_\d{4}-\d{2}-\d{2}\.json$`, Filename()); !ok {
		t.Fatalf("Filename() = %q, want BENCH_YYYY-MM-DD.json", Filename())
	}
}
