// Serving sweep: how many concurrently paced sessions one process can
// hold at rate, and at what command latency.
//
// The unit under test is the session servicer, so the sweep drives
// internal/runtime directly on two arms over identical workloads:
//
//   - "goroutine": the legacy shape — every session owns a goroutine and
//     a timer, and the Go scheduler multiplexes N timer wakeups per
//     second per session;
//   - "scheduler": the pooled shape — one timing-wheel Scheduler steps
//     every due session from a fixed worker pool, batching sub-quantum
//     periods into multi-tick dispatches.
//
// Each point starts N sessions paced at RateHz (1000 Hz = the biological
// real-time tick) on a minimal one-core relay model, measures the
// aggregate achieved ticks/sec over a wall-clock window, and probes
// command latency (Stats round-robin) throughout. A point is "sustained"
// when achieved/requested stays at or above Threshold AND command p99
// stays within MaxCmdP99 — the SLO matters because a behind-schedule
// paced session sprints to catch up, so throughput alone reads ≈ 1 long
// past real capacity. Each arm's sweep walks the session axis upward
// until it fails, so the report ends with the capacity frontier of both
// arms and their ratio — the acceptance figure for the batched-scheduler
// refactor.
//
// The model is deliberately quiescent: with the active-neuron kernel a
// tick of an idle relay core costs almost nothing, so the sweep isolates
// the pacing machinery itself, which is the only thing the two arms do
// differently.
package bench

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"truenorth/internal/core"
	"truenorth/internal/neuron"
	"truenorth/internal/router"
	rt "truenorth/internal/runtime"
	"truenorth/internal/sim"
)

// ServeArms are the servicer configurations, in report order.
var ServeArms = []string{"goroutine", "scheduler"}

// ServeConfig parameterizes one serving sweep.
type ServeConfig struct {
	// Sessions is the ascending session-count axis. Each arm walks it
	// upward until a point fails to sustain Threshold.
	Sessions []int
	// RateHz paces every session (1000 = real time).
	RateHz float64
	// Window is the measured wall-clock interval per point, after Warmup.
	Window time.Duration
	// Warmup runs before measurement so pacing transients settle.
	Warmup time.Duration
	// Threshold is the achieved/requested ratio at or above which a point
	// counts as sustained.
	Threshold float64
	// MaxCmdP99 is the command-latency SLO that completes the sustained
	// criterion. Mean throughput alone cannot detect overload: a paced
	// session that falls behind sprints to catch up, so an oversubscribed
	// arm holds ratio ≈ 1 long past its real capacity while timeliness
	// collapses — the latency tail is where saturation first becomes
	// observable.
	MaxCmdP99 time.Duration
	// ProbeEvery is the command-latency probe period.
	ProbeEvery time.Duration
	// Workers sizes the scheduler arm's pool (0 = GOMAXPROCS).
	Workers int
}

// DefaultServeConfig is the full sweep cmd/tnbench -serve runs: a
// power-of-two session axis from well under to well over a one-core
// host's per-goroutine capacity, at the real-time rate.
func DefaultServeConfig() ServeConfig {
	return ServeConfig{
		Sessions:   []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192},
		RateHz:     1000,
		Window:     2 * time.Second,
		Warmup:     500 * time.Millisecond,
		Threshold:  0.9,
		MaxCmdP99:  20 * time.Millisecond,
		ProbeEvery: 5 * time.Millisecond,
	}
}

// ServeSmokeConfig is the CI configuration: two tiny points per arm,
// sub-second windows, no capacity claims — it exercises both arms, the
// probe, and the JSON schema.
func ServeSmokeConfig() ServeConfig {
	return ServeConfig{
		Sessions:   []int{2, 8},
		RateHz:     500,
		Window:     400 * time.Millisecond,
		Warmup:     100 * time.Millisecond,
		Threshold:  0.5,
		MaxCmdP99:  500 * time.Millisecond,
		ProbeEvery: 20 * time.Millisecond,
	}
}

// Validate reports the first invalid sweep parameter, or nil.
func (c ServeConfig) Validate() error {
	if len(c.Sessions) == 0 {
		return fmt.Errorf("bench: empty session axis")
	}
	last := 0
	for _, n := range c.Sessions {
		if n <= last {
			return fmt.Errorf("bench: session axis must be ascending and positive, got %v", c.Sessions)
		}
		last = n
	}
	if c.RateHz <= 0 {
		return fmt.Errorf("bench: serve rate %g must be positive", c.RateHz)
	}
	if c.Window <= 0 {
		return fmt.Errorf("bench: window %v must be positive", c.Window)
	}
	if c.Threshold <= 0 || c.Threshold > 1 {
		return fmt.Errorf("bench: threshold %g must be in (0, 1]", c.Threshold)
	}
	if c.MaxCmdP99 <= 0 {
		return fmt.Errorf("bench: command-latency SLO %v must be positive", c.MaxCmdP99)
	}
	if c.ProbeEvery <= 0 {
		return fmt.Errorf("bench: probe period %v must be positive", c.ProbeEvery)
	}
	return nil
}

// ServePoint is one (arm, session count) measurement.
type ServePoint struct {
	Arm      string `json:"arm"`
	Sessions int    `json:"sessions"`
	// RequestedTicksPerSec is Sessions × RateHz; AchievedTicksPerSec is
	// the aggregate tick throughput observed over the window.
	RequestedTicksPerSec float64 `json:"requested_ticks_per_sec"`
	AchievedTicksPerSec  float64 `json:"achieved_ticks_per_sec"`
	Ratio                float64 `json:"ratio"`
	Sustained            bool    `json:"sustained"`
	// CmdP50Ms / CmdP99Ms are command (Stats) latency percentiles over
	// the probes issued during the window.
	CmdP50Ms      float64 `json:"cmd_p50_ms"`
	CmdP99Ms      float64 `json:"cmd_p99_ms"`
	Probes        int     `json:"probes"`
	ProbeTimeouts int     `json:"probe_timeouts"`
}

// ServeSummary condenses the sweep into the acceptance figures.
type ServeSummary struct {
	// GoroutineMaxSessions / SchedulerMaxSessions are each arm's largest
	// sustained point on the session axis (0 = none sustained).
	GoroutineMaxSessions int `json:"goroutine_max_sessions"`
	SchedulerMaxSessions int `json:"scheduler_max_sessions"`
	// SessionCapacityRatio is scheduler over goroutine — the refactor's
	// headline figure (≥5 is the acceptance gate).
	SessionCapacityRatio float64 `json:"session_capacity_ratio"`
	// Peak aggregate achieved ticks/sec per arm, across all its points.
	GoroutinePeakTicksPerSec float64 `json:"goroutine_peak_ticks_per_sec"`
	SchedulerPeakTicksPerSec float64 `json:"scheduler_peak_ticks_per_sec"`
	ThroughputRatio          float64 `json:"throughput_ratio"`
	// P99 command latency at each arm's largest sustained point.
	GoroutineP99AtMaxMs float64 `json:"goroutine_p99_at_max_ms"`
	SchedulerP99AtMaxMs float64 `json:"scheduler_p99_at_max_ms"`
}

// ServeReport is the schema of BENCH_SERVE_<date>.json.
type ServeReport struct {
	SchemaVersion int          `json:"schema_version"`
	GeneratedAt   string       `json:"generated_at"`
	GoVersion     string       `json:"go_version"`
	GOOS          string       `json:"goos"`
	GOARCH        string       `json:"goarch"`
	CPUs          int          `json:"cpus"`
	GOMAXPROCS    int          `json:"gomaxprocs"`
	Workers       int          `json:"workers"`
	RateHz        float64      `json:"rate_hz"`
	WindowMs      float64      `json:"window_ms"`
	Threshold     float64      `json:"threshold"`
	MaxCmdP99Ms   float64      `json:"max_cmd_p99_ms"`
	Points        []ServePoint `json:"points"`
	Summary       ServeSummary `json:"summary"`
}

// ServeFilename returns the dated evidence-file name,
// BENCH_SERVE_YYYY-MM-DD.json.
func ServeFilename() string {
	return "BENCH_SERVE_" + time.Now().Format("2006-01-02") + ".json"
}

// serveModel is the minimal one-core relay: a single identity neuron
// wired straight to an output sink. Ticking it while quiescent costs the
// active-neuron kernel nothing, which is the point — the sweep measures
// pacing overhead, not simulation throughput.
func serveModel() []*core.Config {
	c := core.InertConfig()
	c.Synapses[0].Set(0)
	c.Neurons[0] = neuron.Identity()
	c.Targets[0] = core.Target{Valid: true, Output: true, OutputID: 0}
	return []*core.Config{c}
}

// measureServePoint runs one (arm, N) point: N paced sessions held at
// rate for the window, with the latency probe running throughout.
func (c ServeConfig) measureServePoint(arm string, n int) (ServePoint, error) {
	pt := ServePoint{
		Arm:                  arm,
		Sessions:             n,
		RequestedTicksPerSec: float64(n) * c.RateHz,
	}
	var sched *rt.Scheduler
	if arm == "scheduler" {
		sched = rt.NewScheduler(rt.SchedulerConfig{Workers: c.Workers, MaxSessions: n})
		defer sched.Close()
	} else if arm != "goroutine" {
		return pt, fmt.Errorf("bench: unknown serve arm %q", arm)
	}

	sessions := make([]*rt.Session, 0, n)
	defer func() {
		// The scheduler arm's sessions die with sched.Close (deferred
		// above); legacy sessions each need their own Close.
		if sched == nil {
			for _, s := range sessions {
				s.Close() //nolint:errcheck // teardown of a measured arm
			}
		}
	}()
	cfgs := serveModel()
	for i := 0; i < n; i++ {
		eng, err := sim.NewEngine("chip", router.Mesh{W: 1, H: 1}, cfgs)
		if err != nil {
			return pt, err
		}
		opts := []rt.Option{rt.WithTickRate(c.RateHz)}
		if sched != nil {
			opts = append(opts, rt.WithScheduler(sched))
		}
		s, err := rt.New(eng, opts...)
		if err != nil {
			return pt, err
		}
		sessions = append(sessions, s)
		if err := s.StartUntil(math.MaxUint64); err != nil {
			return pt, err
		}
	}
	time.Sleep(c.Warmup)

	// The probe issues Stats round-robin until stopped, recording each
	// command's latency. Commands land between ticks, so this is the
	// latency a serving frontend would see for any control operation.
	stop := make(chan struct{})
	probeDone := make(chan []float64, 1)
	timeouts := make(chan int, 1)
	//lint:ignore tnlint/ticksafe wall-clock latency probe of the serving path
	go func() {
		var samples []float64
		nTimeout := 0
		i := 0
		for {
			select {
			case <-stop:
				probeDone <- samples
				timeouts <- nTimeout
				return
			case <-time.After(c.ProbeEvery):
			}
			s := sessions[i%len(sessions)]
			i++
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			t0 := time.Now()
			_, err := s.Stats(ctx)
			lat := time.Since(t0)
			cancel()
			if err != nil {
				nTimeout++
			}
			samples = append(samples, lat.Seconds()*1e3)
		}
	}()

	// Tick throughput: per-session tick deltas over per-session measured
	// intervals. Each snapshot is timestamped individually because on a
	// saturated host the snapshot passes themselves take real time —
	// dividing every delta by the nominal window would book ticks accrued
	// during a slow pass as window throughput and overstate a failing arm.
	// The passes issue every Stats concurrently: on an oversubscribed
	// point a command waits up to a full ready-queue rotation, so a
	// sequential pass would cost N rotations — hours at the axis top —
	// where a concurrent one costs about one.
	ctx := context.Background()
	snapshot := func() ([]uint64, []time.Time, error) {
		ticks := make([]uint64, n)
		at := make([]time.Time, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for i, s := range sessions {
			wg.Add(1)
			go func() {
				defer wg.Done()
				st, err := s.Stats(ctx)
				if err != nil {
					errs[i] = err
					return
				}
				ticks[i], at[i] = st.Tick, time.Now()
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, nil, err
			}
		}
		return ticks, at, nil
	}
	before, beforeAt, err := snapshot()
	if err != nil {
		return pt, err
	}
	time.Sleep(c.Window)
	after, afterAt, err := snapshot()
	if err != nil {
		return pt, err
	}
	var agg float64
	for i := range sessions {
		dt := afterAt[i].Sub(beforeAt[i]).Seconds()
		if dt <= 0 {
			return pt, fmt.Errorf("bench: serve point measured a non-positive interval")
		}
		agg += float64(after[i]-before[i]) / dt
	}
	close(stop)
	samples := <-probeDone
	pt.ProbeTimeouts = <-timeouts
	pt.Probes = len(samples)

	pt.AchievedTicksPerSec = agg
	pt.Ratio = pt.AchievedTicksPerSec / pt.RequestedTicksPerSec
	pt.CmdP50Ms = percentile(samples, 0.50)
	pt.CmdP99Ms = percentile(samples, 0.99)
	pt.Sustained = pt.Ratio >= c.Threshold && pt.CmdP99Ms <= c.MaxCmdP99.Seconds()*1e3
	return pt, nil
}

// percentile returns the p-quantile of samples (nearest-rank on a sorted
// copy), or 0 when empty.
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return s[int(p*float64(len(s)-1)+0.5)]
}

// RunServe executes the serving sweep and assembles the report. Each arm
// walks the session axis upward until its first unsustained point (which
// is still recorded — it pins where and how the arm fails).
func RunServe(cfg ServeConfig, logf func(format string, args ...any)) (*ServeReport, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := &ServeReport{
		SchemaVersion: 1,
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		CPUs:          runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workers:       workers,
		RateHz:        cfg.RateHz,
		WindowMs:      float64(cfg.Window.Milliseconds()),
		Threshold:     cfg.Threshold,
		MaxCmdP99Ms:   cfg.MaxCmdP99.Seconds() * 1e3,
	}
	for _, arm := range ServeArms {
		for _, n := range cfg.Sessions {
			pt, err := cfg.measureServePoint(arm, n)
			if err != nil {
				return nil, fmt.Errorf("bench: serve %s × %d sessions: %w", arm, n, err)
			}
			rep.Points = append(rep.Points, pt)
			if logf != nil {
				logf("%-9s %5d sessions: %9.0f/%9.0f ticks/s (%.2f), p99 %6.2f ms%s",
					arm, n, pt.AchievedTicksPerSec, pt.RequestedTicksPerSec, pt.Ratio,
					pt.CmdP99Ms, map[bool]string{true: "", false: "  [not sustained]"}[pt.Sustained])
			}
			if !pt.Sustained {
				break // the capacity frontier for this arm
			}
		}
	}
	rep.Summary = summarizeServe(rep.Points)
	return rep, nil
}

// summarizeServe computes the acceptance figures from the measured points.
func summarizeServe(pts []ServePoint) ServeSummary {
	var s ServeSummary
	for _, pt := range pts {
		switch pt.Arm {
		case "goroutine":
			if pt.Sustained && pt.Sessions > s.GoroutineMaxSessions {
				s.GoroutineMaxSessions = pt.Sessions
				s.GoroutineP99AtMaxMs = pt.CmdP99Ms
			}
			if pt.AchievedTicksPerSec > s.GoroutinePeakTicksPerSec {
				s.GoroutinePeakTicksPerSec = pt.AchievedTicksPerSec
			}
		case "scheduler":
			if pt.Sustained && pt.Sessions > s.SchedulerMaxSessions {
				s.SchedulerMaxSessions = pt.Sessions
				s.SchedulerP99AtMaxMs = pt.CmdP99Ms
			}
			if pt.AchievedTicksPerSec > s.SchedulerPeakTicksPerSec {
				s.SchedulerPeakTicksPerSec = pt.AchievedTicksPerSec
			}
		}
	}
	if s.GoroutineMaxSessions > 0 {
		s.SessionCapacityRatio = float64(s.SchedulerMaxSessions) / float64(s.GoroutineMaxSessions)
	}
	if s.GoroutinePeakTicksPerSec > 0 {
		s.ThroughputRatio = s.SchedulerPeakTicksPerSec / s.GoroutinePeakTicksPerSec
	}
	return s
}
