// Package bench measures simulator throughput across the paper's operating
// grid — mean firing rate × active synapses per neuron (Section V) — and
// produces the machine-readable evidence file (BENCH_<date>.json) that
// cmd/tnbench writes at the repository root.
//
// Every operating point is run on three arms over identical networks and
// tick counts:
//
//   - "chip": the sequential silicon model with the active-neuron
//     Neuron-phase kernel (the production configuration);
//   - "chip-full-scan": the same engine with the dense Neuron-phase
//     baseline forced on every core (core.SetFullNeuronScan), isolating the
//     kernel's contribution — KernelSpeedup is chip over chip-full-scan;
//   - "compass": the parallel engine at the configured worker count.
//
// The arms must agree event-for-event — Run cross-checks SynEvents, Spikes,
// and AxonEvents across all three and fails on any mismatch — so the
// reported speedups can never come from computing something different.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"truenorth/internal/core"
	"truenorth/internal/netgen"
	"truenorth/internal/router"
	"truenorth/internal/sim"

	// The engines register themselves with the sim registry.
	_ "truenorth/internal/chip"
	_ "truenorth/internal/compass"
)

// Arms are the engine configurations measured at every operating point, in
// report order.
var Arms = []string{"chip", "chip-full-scan", "compass"}

// Config parameterizes one sweep.
type Config struct {
	// Grid is the core mesh of every generated network.
	Grid router.Mesh
	// Rates and Syns span the operating grid; every (rate, syn) pair is one
	// measured point.
	Rates []float64
	Syns  []int
	// DrivenFraction is passed to netgen: the fraction of each core's
	// neurons built as event-driven relays instead of tonic oscillators.
	// Zero reproduces the paper's all-tonic construction, on which the
	// active-neuron kernel cannot skip anything by design.
	DrivenFraction float64
	// SettleTicks run before measurement on each arm (warm caches, drain
	// the initial-potential transient); MeasureTicks are timed.
	SettleTicks  int
	MeasureTicks int
	// Workers is the compass arm's worker count.
	Workers int
	// Seed drives network construction; the same seed is used at every
	// point so arms are comparable across the grid.
	Seed int64
}

// DefaultConfig is the sweep cmd/tnbench runs when no flags narrow it: a
// rate × synapse grid spanning the paper's sparse-to-saturated range on an
// 8×8-core mesh.
func DefaultConfig() Config {
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	return Config{
		Grid:           router.Mesh{W: 8, H: 8},
		Rates:          []float64{2, 10, 25, 50, 100, 200},
		Syns:           []int{0, 32, 128, 256},
		DrivenFraction: 0.875,
		SettleTicks:    40,
		MeasureTicks:   360,
		Workers:        workers,
		Seed:           20140613,
	}
}

// SmokeConfig is the CI configuration: small enough to finish in seconds
// while still exercising every arm, the cross-arm equality check, and the
// JSON schema.
func SmokeConfig() Config {
	return Config{
		Grid:           router.Mesh{W: 4, H: 4},
		Rates:          []float64{2, 100},
		Syns:           []int{32},
		DrivenFraction: 0.875,
		SettleTicks:    10,
		MeasureTicks:   80,
		Workers:        4,
		Seed:           20140613,
	}
}

// Validate reports the first invalid sweep parameter, or nil.
func (c Config) Validate() error {
	if c.Grid.W <= 0 || c.Grid.H <= 0 {
		return fmt.Errorf("bench: invalid grid %dx%d", c.Grid.W, c.Grid.H)
	}
	if len(c.Rates) == 0 || len(c.Syns) == 0 {
		return fmt.Errorf("bench: empty operating grid (%d rates × %d syns)", len(c.Rates), len(c.Syns))
	}
	if c.MeasureTicks <= 0 {
		return fmt.Errorf("bench: measure ticks %d must be positive", c.MeasureTicks)
	}
	if c.SettleTicks < 0 {
		return fmt.Errorf("bench: settle ticks %d is negative", c.SettleTicks)
	}
	if c.Workers <= 0 {
		return fmt.Errorf("bench: workers %d must be positive", c.Workers)
	}
	return nil
}

// EngineResult is one arm's measurement at one operating point.
type EngineResult struct {
	// TicksPerSec is simulated ticks per wall-clock second.
	TicksPerSec float64 `json:"ticks_per_sec"`
	// NsPerTick is the inverse in nanoseconds, for easy eyeballing.
	NsPerTick float64 `json:"ns_per_tick"`
	// SOPS is synaptic operations per wall-clock second, the paper's
	// throughput figure of merit.
	SOPS float64 `json:"sops"`
	// SpeedupVsRealTime is TicksPerSec over the 1 kHz biological tick rate:
	// above 1 the simulation outruns real time.
	SpeedupVsRealTime float64 `json:"speedup_vs_real_time"`
	// AllocsPerTick is heap allocations per tick during measurement (from
	// runtime.MemStats.Mallocs; the chip arm must stay at ~0).
	AllocsPerTick float64 `json:"allocs_per_tick"`
	// SynEventsPerTick and NeuronUpdatesPerTick characterize the measured
	// load; NeuronUpdates is where the active-neuron kernel's savings show.
	SynEventsPerTick     float64 `json:"syn_events_per_tick"`
	NeuronUpdatesPerTick float64 `json:"neuron_updates_per_tick"`
}

// PointResult is one operating point: the shared workload descriptors plus
// one EngineResult per arm.
type PointResult struct {
	RateHz float64 `json:"rate_hz"`
	Syn    int     `json:"syn_per_neuron"`
	// MeasuredRateHz is the realized mean firing rate over the *whole*
	// population, relays included. With a nonzero DrivenFraction only the
	// pacemaker subpopulation is programmed to fire at RateHz — relays fire
	// on synaptic drive alone — so this population mean sits below RateHz by
	// roughly the driven fraction (at DrivenFraction 0.875 a perfectly paced
	// 2 Hz point reads ≈ 0.25 Hz here). That is normalization, not an engine
	// or pacing shortfall; PacemakerRateHz is the figure to compare against
	// RateHz.
	MeasuredRateHz float64 `json:"measured_rate_hz"`
	// PacemakerRateHz is the spike count normalized over the pacemaker
	// subpopulation (netgen.PacemakersPerCore). At syn = 0 it is exactly the
	// realized tonic rate and must track RateHz; at syn > 0 relay spikes are
	// included, so it can sit above RateHz.
	PacemakerRateHz float64                 `json:"pacemaker_rate_hz"`
	Engines         map[string]EngineResult `json:"engines"`
	// KernelSpeedup is chip ticks/sec over chip-full-scan ticks/sec: the
	// isolated contribution of the active-neuron Neuron-phase kernel.
	KernelSpeedup float64 `json:"kernel_speedup"`
}

// Summary condenses the sweep for the acceptance gate and the README table.
type Summary struct {
	// SparseKernelSpeedup is the mean KernelSpeedup over the lowest
	// firing-rate row of the grid — the sparse operating points where the
	// event-driven argument predicts the largest win.
	SparseKernelSpeedup float64 `json:"sparse_kernel_speedup"`
	// BestKernelSpeedup is the maximum KernelSpeedup across the grid.
	BestKernelSpeedup float64 `json:"best_kernel_speedup"`
	// PeakChipSOPS is the highest chip-arm SOPS across the grid.
	PeakChipSOPS float64 `json:"peak_chip_sops"`
}

// Report is the schema of BENCH_<date>.json.
type Report struct {
	SchemaVersion  int           `json:"schema_version"`
	GeneratedAt    string        `json:"generated_at"`
	GoVersion      string        `json:"go_version"`
	GOOS           string        `json:"goos"`
	GOARCH         string        `json:"goarch"`
	CPUs           int           `json:"cpus"`
	GOMAXPROCS     int           `json:"gomaxprocs"`
	Grid           string        `json:"grid"`
	Neurons        int           `json:"neurons"`
	DrivenFraction float64       `json:"driven_fraction"`
	SettleTicks    int           `json:"settle_ticks"`
	MeasureTicks   int           `json:"measure_ticks"`
	Workers        int           `json:"workers"`
	Seed           int64         `json:"seed"`
	Points         []PointResult `json:"points"`
	Summary        Summary       `json:"summary"`
}

// Filename returns the dated evidence-file name, BENCH_YYYY-MM-DD.json.
func Filename() string {
	return "BENCH_" + time.Now().Format("2006-01-02") + ".json"
}

// measurement is one arm's raw numbers before cross-checking.
type measurement struct {
	result EngineResult
	cnt    core.Counters
}

// measureArm builds a fresh engine for the point's network, settles it, and
// times MeasureTicks of free-running simulation.
func (c Config) measureArm(arm string, configs []*core.Config) (measurement, error) {
	name := arm
	var opts []sim.Option
	fullScan := false
	switch arm {
	case "chip":
	case "chip-full-scan":
		name = "chip"
		fullScan = true
	case "compass":
		opts = append(opts, sim.WithWorkers(c.Workers))
	default:
		return measurement{}, fmt.Errorf("bench: unknown arm %q", arm)
	}
	eng, err := sim.NewEngine(name, c.Grid, configs, opts...)
	if err != nil {
		return measurement{}, err
	}
	if fullScan {
		fs, ok := eng.(interface{ Cores() []*core.Core })
		if !ok {
			return measurement{}, fmt.Errorf("bench: engine %q does not expose Cores()", name)
		}
		for _, cr := range fs.Cores() {
			cr.SetFullNeuronScan(true)
		}
	}
	eng.Run(c.SettleTicks)
	before := eng.Counters()

	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	eng.Run(c.MeasureTicks)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)

	after := eng.Counters()
	cnt := core.Counters{
		SynEvents:     after.SynEvents - before.SynEvents,
		NeuronUpdates: after.NeuronUpdates - before.NeuronUpdates,
		Spikes:        after.Spikes - before.Spikes,
		AxonEvents:    after.AxonEvents - before.AxonEvents,
	}
	ticks := float64(c.MeasureTicks)
	secs := elapsed.Seconds()
	if secs <= 0 {
		return measurement{}, fmt.Errorf("bench: %s measured a non-positive duration", arm)
	}
	tps := ticks / secs
	return measurement{
		result: EngineResult{
			TicksPerSec:          tps,
			NsPerTick:            float64(elapsed.Nanoseconds()) / ticks,
			SOPS:                 float64(cnt.SynEvents) / ticks * tps,
			SpeedupVsRealTime:    tps / 1000,
			AllocsPerTick:        float64(m1.Mallocs-m0.Mallocs) / ticks,
			SynEventsPerTick:     float64(cnt.SynEvents) / ticks,
			NeuronUpdatesPerTick: float64(cnt.NeuronUpdates) / ticks,
		},
		cnt: cnt,
	}, nil
}

// Run executes the sweep and assembles the report. logf, when non-nil,
// receives one progress line per measured point.
func Run(cfg Config, logf func(format string, args ...any)) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	neurons := cfg.Grid.W * cfg.Grid.H * core.NeuronsPerCore
	rep := &Report{
		SchemaVersion:  1,
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		CPUs:           runtime.NumCPU(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Grid:           fmt.Sprintf("%dx%d", cfg.Grid.W, cfg.Grid.H),
		Neurons:        neurons,
		DrivenFraction: cfg.DrivenFraction,
		SettleTicks:    cfg.SettleTicks,
		MeasureTicks:   cfg.MeasureTicks,
		Workers:        cfg.Workers,
		Seed:           cfg.Seed,
	}
	for _, rate := range cfg.Rates {
		for _, syn := range cfg.Syns {
			configs, err := netgen.Build(netgen.Params{
				Grid: cfg.Grid, RateHz: rate, SynPerNeuron: syn,
				Seed: cfg.Seed, DrivenFraction: cfg.DrivenFraction,
			})
			if err != nil {
				return nil, err
			}
			pt := PointResult{RateHz: rate, Syn: syn, Engines: make(map[string]EngineResult, len(Arms))}
			var first measurement
			for i, arm := range Arms {
				m, err := cfg.measureArm(arm, configs)
				if err != nil {
					return nil, fmt.Errorf("bench: %.0f Hz × %d syn: %w", rate, syn, err)
				}
				if i == 0 {
					first = m
				} else if m.cnt.SynEvents != first.cnt.SynEvents ||
					m.cnt.Spikes != first.cnt.Spikes ||
					m.cnt.AxonEvents != first.cnt.AxonEvents {
					return nil, fmt.Errorf("bench: %.0f Hz × %d syn: arm %q computed different events than %q (%+v vs %+v): engines diverged",
						rate, syn, arm, Arms[0], m.cnt, first.cnt)
				}
				pt.Engines[arm] = m.result
			}
			pt.MeasuredRateHz = float64(first.cnt.Spikes) / float64(cfg.MeasureTicks) / float64(neurons) * 1000
			if pace := netgen.PacemakersPerCore(cfg.DrivenFraction) * cfg.Grid.W * cfg.Grid.H; pace > 0 {
				pt.PacemakerRateHz = float64(first.cnt.Spikes) / float64(cfg.MeasureTicks) / float64(pace) * 1000
			}
			if full := pt.Engines["chip-full-scan"].TicksPerSec; full > 0 {
				pt.KernelSpeedup = pt.Engines["chip"].TicksPerSec / full
			}
			if logf != nil {
				logf("%6.1f Hz × %3d syn: chip %8.0f ticks/s (%5.2fx kernel), compass %8.0f ticks/s, %4.1f Hz pacemaker (%0.2f Hz population)",
					rate, syn, pt.Engines["chip"].TicksPerSec, pt.KernelSpeedup,
					pt.Engines["compass"].TicksPerSec, pt.PacemakerRateHz, pt.MeasuredRateHz)
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	rep.Summary = summarize(cfg, rep.Points)
	return rep, nil
}

// summarize computes the acceptance-gate figures from the measured points.
func summarize(cfg Config, pts []PointResult) Summary {
	var s Summary
	minRate := cfg.Rates[0]
	for _, r := range cfg.Rates {
		if r < minRate {
			minRate = r
		}
	}
	var sparseSum float64
	var sparseN int
	for _, pt := range pts {
		if pt.KernelSpeedup > s.BestKernelSpeedup {
			s.BestKernelSpeedup = pt.KernelSpeedup
		}
		if sops := pt.Engines["chip"].SOPS; sops > s.PeakChipSOPS {
			s.PeakChipSOPS = sops
		}
		if pt.RateHz == minRate {
			sparseSum += pt.KernelSpeedup
			sparseN++
		}
	}
	if sparseN > 0 {
		s.SparseKernelSpeedup = sparseSum / float64(sparseN)
	}
	return s
}
