// Package diag renders simulation diagnostics: per-core activity
// heatmaps, utilization summaries, and network statistics. These are the
// practical tools for debugging corelet placements and spotting hotspots —
// the software-side counterpart of the visualization work the paper's
// ecosystem grew around (McQuinn et al.'s wiring-diagram visualizations,
// reference [9]).
package diag

import (
	"fmt"
	"io"
	"sort"

	"truenorth/internal/core"
	"truenorth/internal/sim"
)

// ramp is the ASCII intensity scale used by heatmaps.
const ramp = " .:-=+*#%@"

// Metric selects the per-core quantity a heatmap displays.
type Metric int

// Heatmap metrics.
const (
	// Spikes maps each core's emitted spike count.
	Spikes Metric = iota
	// SynEvents maps synaptic operations.
	SynEvents
	// AxonEvents maps delivered axon events.
	AxonEvents
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case Spikes:
		return "spikes"
	case SynEvents:
		return "synaptic events"
	case AxonEvents:
		return "axon events"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// value extracts the metric from counters.
func (m Metric) value(c core.Counters) uint64 {
	switch m {
	case Spikes:
		return c.Spikes
	case SynEvents:
		return c.SynEvents
	default:
		return c.AxonEvents
	}
}

// Heatmap writes an ASCII map of the engine's per-core activity, one
// character per core, dark-to-bright on a log-free linear ramp normalized
// to the busiest core. Unpopulated slots print as '·'.
func Heatmap(w io.Writer, eng sim.Engine, m Metric) error {
	mesh := eng.Mesh()
	var maxV uint64 = 1
	vals := make([]int64, mesh.W*mesh.H)
	for y := 0; y < mesh.H; y++ {
		for x := 0; x < mesh.W; x++ {
			c := eng.Core(x, y)
			if c == nil {
				vals[y*mesh.W+x] = -1
				continue
			}
			v := m.value(c.Cnt)
			vals[y*mesh.W+x] = int64(v)
			if v > maxV {
				maxV = v
			}
		}
	}
	if _, err := fmt.Fprintf(w, "core %s heatmap (%dx%d, max %d)\n", m, mesh.W, mesh.H, maxV); err != nil {
		return err
	}
	for y := 0; y < mesh.H; y++ {
		row := make([]byte, mesh.W)
		for x := 0; x < mesh.W; x++ {
			switch v := vals[y*mesh.W+x]; {
			case v < 0:
				row[x] = '!' // replaced below; '·' is multibyte
			default:
				row[x] = ramp[int(uint64(v)*9/maxV)]
			}
		}
		line := ""
		for x := 0; x < mesh.W; x++ {
			if row[x] == '!' {
				line += "·"
			} else {
				line += string(row[x])
			}
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// Summary aggregates engine statistics for one measurement window.
type Summary struct {
	// PopulatedCores and ActiveCores count configured and spiking cores.
	PopulatedCores, ActiveCores int
	// Totals are the aggregate counters.
	Totals core.Counters
	// NoC is the aggregate communication statistics.
	NoC sim.NoCStats
	// HotCoreShare is the fraction of all synaptic events handled by the
	// busiest 5% of populated cores — a load-skew indicator.
	HotCoreShare float64
	// MeanHopsPerSpike is the average routed distance.
	MeanHopsPerSpike float64
}

// Summarize computes a Summary from the engine's lifetime counters.
func Summarize(eng sim.Engine) Summary {
	mesh := eng.Mesh()
	var s Summary
	var loads []uint64
	for y := 0; y < mesh.H; y++ {
		for x := 0; x < mesh.W; x++ {
			c := eng.Core(x, y)
			if c == nil {
				continue
			}
			s.PopulatedCores++
			if c.Cnt.Spikes > 0 {
				s.ActiveCores++
			}
			s.Totals.Add(c.Cnt)
			loads = append(loads, c.Cnt.SynEvents)
		}
	}
	s.NoC = eng.NoC()
	if s.NoC.RoutedSpikes > 0 {
		s.MeanHopsPerSpike = float64(s.NoC.Hops) / float64(s.NoC.RoutedSpikes)
	}
	if s.Totals.SynEvents > 0 && len(loads) > 0 {
		sort.Slice(loads, func(i, j int) bool { return loads[i] > loads[j] })
		top := len(loads) / 20
		if top < 1 {
			top = 1
		}
		var hot uint64
		for _, v := range loads[:top] {
			hot += v
		}
		s.HotCoreShare = float64(hot) / float64(s.Totals.SynEvents)
	}
	return s
}

// Fprint writes the summary as text.
func (s Summary) Fprint(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"cores: %d populated, %d active\n"+
			"events: %d synaptic, %d spikes, %d axon deliveries, %d neuron updates\n"+
			"noc: %d routed, %.1f hops/spike, %d crossings, %d dropped, %d detours\n"+
			"load skew: top 5%% of cores carry %.0f%% of synaptic events\n",
		s.PopulatedCores, s.ActiveCores,
		s.Totals.SynEvents, s.Totals.Spikes, s.Totals.AxonEvents, s.Totals.NeuronUpdates,
		s.NoC.RoutedSpikes, s.MeanHopsPerSpike, s.NoC.Crossings, s.NoC.Dropped, s.NoC.Detours,
		s.HotCoreShare*100)
	return err
}
