package diag

import (
	"bytes"
	"strings"
	"testing"

	"truenorth/internal/chip"
	"truenorth/internal/core"
	"truenorth/internal/netgen"
	"truenorth/internal/neuron"
	"truenorth/internal/router"
)

func activeEngine(t *testing.T) *chip.Model {
	t.Helper()
	grid := router.Mesh{W: 4, H: 4}
	configs, err := netgen.Build(netgen.Params{Grid: grid, RateHz: 50, SynPerNeuron: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	configs[5] = nil // a hole for the '·' path
	eng, err := chip.New(grid, configs)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(100)
	return eng
}

func TestHeatmapRenders(t *testing.T) {
	eng := activeEngine(t)
	for _, m := range []Metric{Spikes, SynEvents, AxonEvents} {
		var buf bytes.Buffer
		if err := Heatmap(&buf, eng, m); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		if len(lines) != 5 { // header + 4 rows
			t.Fatalf("%v: %d lines, want 5:\n%s", m, len(lines), out)
		}
		if !strings.Contains(lines[0], m.String()) {
			t.Fatalf("%v: header %q missing metric name", m, lines[0])
		}
		if !strings.Contains(out, "·") {
			t.Fatalf("%v: unpopulated slot not marked:\n%s", m, out)
		}
		// Active cores render above the ramp floor.
		if !strings.ContainsAny(out, ".:-=+*#%@") {
			t.Fatalf("%v: all cores render as idle:\n%s", m, out)
		}
	}
}

func TestHeatmapQuiescentEngine(t *testing.T) {
	eng, err := chip.New(router.Mesh{W: 2, H: 2}, []*core.Config{core.InertConfig()})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Heatmap(&buf, eng, Spikes); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "max 1") {
		t.Fatalf("quiescent map should normalize to 1:\n%s", buf.String())
	}
}

func TestSummarize(t *testing.T) {
	eng := activeEngine(t)
	s := Summarize(eng)
	if s.PopulatedCores != 15 {
		t.Fatalf("populated = %d, want 15", s.PopulatedCores)
	}
	if s.ActiveCores == 0 || s.ActiveCores > s.PopulatedCores {
		t.Fatalf("active = %d", s.ActiveCores)
	}
	if s.Totals.Spikes == 0 || s.Totals.SynEvents == 0 {
		t.Fatalf("totals empty: %+v", s.Totals)
	}
	if s.MeanHopsPerSpike <= 0 {
		t.Fatalf("mean hops = %f", s.MeanHopsPerSpike)
	}
	// 15 cores, top-5% bucket = 1 core ≈ 1/15 of uniform load.
	if s.HotCoreShare < 0.03 || s.HotCoreShare > 0.5 {
		t.Fatalf("hot-core share = %f", s.HotCoreShare)
	}
	var buf bytes.Buffer
	if err := s.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"cores:", "events:", "noc:", "load skew"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("summary missing %q:\n%s", want, buf.String())
		}
	}
}

func TestSummarizeLoadSkewDetectsHotspot(t *testing.T) {
	// One tonic core among idle ones: the skew indicator must approach 1.
	configs := make([]*core.Config, 16)
	for i := range configs {
		configs[i] = core.InertConfig()
	}
	hot := core.InertConfig()
	hot.Neurons[0] = neuron.Pacemaker(1)
	hot.Targets[0] = core.Target{Valid: true, DX: 1, Axon: 0, Delay: 1}
	hot.Synapses[0].Set(0) // self loop structure lives on the neighbor; keep local too
	configs[0] = hot
	relay := core.InertConfig()
	relay.Synapses[0].Set(0)
	relay.Neurons[0] = neuron.Identity()
	configs[1] = relay
	eng, err := chip.New(router.Mesh{W: 4, H: 4}, configs)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(50)
	s := Summarize(eng)
	if s.HotCoreShare < 0.9 {
		t.Fatalf("hotspot share = %f, want ≈1", s.HotCoreShare)
	}
	if s.ActiveCores != 2 {
		t.Fatalf("active = %d, want 2 (pacemaker + relay)", s.ActiveCores)
	}
}

func TestMetricString(t *testing.T) {
	if Spikes.String() != "spikes" || SynEvents.String() != "synaptic events" || AxonEvents.String() != "axon events" {
		t.Fatal("metric names wrong")
	}
	if Metric(9).String() != "Metric(9)" {
		t.Fatal("unknown metric formatting")
	}
}
