package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPackages hold the per-tick kernel hot path: the two engine
// expressions, the core state machine, the neuron arithmetic, and the mesh
// router. Session pacing (internal/runtime) is deliberately outside this
// set — it owns the wall clock — but everything it calls per tick is in it.
var HotPackages = []string{
	Module + "/internal/chip",
	Module + "/internal/compass",
	Module + "/internal/core",
	Module + "/internal/neuron",
	Module + "/internal/router",
}

// hotFuncNames are the functions that run every tick (or every spike, which
// is more often): the engine Step/Run loops and their spike-routing
// helpers, the core kernel phases, the neuron arithmetic, and the router's
// per-spike path computations. bfs and the pending-injection queue are
// deliberately absent: they are cold fallbacks (a blocked detour, a >15-tick
// injection) whose allocations are part of their design.
var hotFuncNames = map[string]bool{
	// engines
	"Step": true, "StepDense": true, "Run": true, "route": true,
	// core kernel
	"Deliver": true, "ForEach": true,
	// neuron arithmetic
	"Integrate": true, "ApplyLeak": true, "ThresholdFire": true,
	// router per-spike path
	"DOR": true, "RouteAvoiding": true, "greedyAvoid": true,
	"greedyStep": true, "dorStep": true,
}

// HotAlloc returns the hot-path allocation analyzer. The paper's real-time
// claim (f_max ≈ 1 kHz) holds only while the per-tick kernel stays off the
// garbage collector's ledger: a single allocation per spike turns into
// millions per wall-clock second at operating load, and the resulting GC
// pauses blow the tick deadline that pacing promises. Inside the hot
// functions of the kernel packages, hotalloc flags the Go constructs that
// reach the heap:
//
//  1. fmt (and log) calls — they allocate and box every operand into
//     interfaces; formatting belongs off the tick path.
//  2. make of a slice, map, or channel — a fresh allocation every tick.
//  3. slice/map composite literals and &composite expressions — the
//     literal escapes or reallocates per tick (plain struct/array value
//     literals are register/stack material and stay legal).
//  4. func literals declared inside a per-tick loop — one closure
//     allocation per iteration; hoist the closure above the loop (the
//     func literal launched directly by a `go` statement is exempt:
//     goroutine policy belongs to ticksafe).
//  5. append whose destination buffer is never reslice-reused — growth
//     that the GC must eventually collect. An append is sanctioned when
//     the package resets the same buffer with `buf = buf[:0]` somewhere
//     (the reuse idiom that amortizes to zero steady-state allocations);
//     local := aliases are resolved, so `out := s.outbox[w]` inherits the
//     reset of s.outbox.
//
// The hot set is the named functions above plus any function carrying the
// //perf:hot directive (shared with the perfproof compiler gate), so the
// static and compiler-diagnostic gates watch the same code.
//
// When run with call-graph context (RunWithContext), hotalloc is also
// interprocedural: a hot function calling a helper that allocates — in this
// package or any other module package — is reported at the call site with
// the witness chain. Callees that are themselves hot are skipped (their own
// bodies are checked directly), and the sanctioned cold-path barriers (bfs,
// inject) stop propagation.
//
// hotalloc is deliberately conservative — it cannot run escape analysis,
// so a flagged construct is "heap-shaped", not proven to escape. The
// allocs/op budgets enforced by scripts/allocs_gate.sh and the compiler
// diagnostics proven by cmd/tnproof are the complements that catch what
// this pass cannot see.
func HotAlloc() *Analyzer {
	return &Analyzer{
		Name:     "hotalloc",
		Doc:      "forbid heap-allocating constructs in per-tick kernel hot functions",
		Packages: HotPackages,
		Run:      runHotAlloc,
	}
}

func runHotAlloc(pkg *Package, report ReportFunc) {
	resets := collectResets(pkg)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !(hotFuncNames[fd.Name.Name] || hasPerfHot(fd.Doc)) {
				continue
			}
			aliases := collectAliases(fd.Body)
			checkHotBody(pkg, f, fd.Body, false, aliases, resets, report)
			if pkg.Prog == nil {
				continue
			}
			fn := pkg.Prog.FuncAt(fd.Name.Pos())
			if fn == nil {
				continue
			}
			for _, t := range pkg.Prog.CallTaints(fn, HazardAlloc, func(callee *FuncNode) bool {
				return callee.hot()
			}) {
				report(t.Chain[0].Pos, "call to %s reaches an allocation on the per-tick path: %s",
					t.Chain[0].Name, t.Describe(pkg.Fset))
			}
		}
	}
}

// collectResets scans the whole package for `x = y[:0]`-style assignments
// and returns the terminal names of the reset buffers. A reset anywhere in
// the package sanctions per-tick appends to that buffer: the backing array
// is being reused, so growth amortizes to zero.
func collectResets(pkg *Package) map[string]bool {
	resets := map[string]bool{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) {
					break
				}
				if isResliceToZero(rhs) {
					if name := terminalName(as.Lhs[i]); name != "" {
						resets[name] = true
					}
				}
			}
			return true
		})
	}
	return resets
}

// isResliceToZero reports whether e is `x[:0]` (or `x[0:0]`).
func isResliceToZero(e ast.Expr) bool {
	s, ok := e.(*ast.SliceExpr)
	if !ok || s.Slice3 {
		return false
	}
	if s.Low != nil && !isIntLit(s.Low, "0") {
		return false
	}
	return s.High != nil && isIntLit(s.High, "0")
}

func isIntLit(e ast.Expr, text string) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == text
}

// collectAliases maps local `name := expr` aliases to the terminal name of
// their source, chasing chains (out := s.outbox[w] → out ↦ outbox).
func collectAliases(body *ast.BlockStmt) map[string]string {
	aliases := map[string]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			if src := terminalName(as.Rhs[i]); src != "" && src != id.Name {
				aliases[id.Name] = src
			}
		}
		return true
	})
	return aliases
}

// resolveAlias chases alias links to a fixed point (bounded against cycles).
func resolveAlias(name string, aliases map[string]string) string {
	for i := 0; i < 8; i++ {
		next, ok := aliases[name]
		if !ok {
			return name
		}
		name = next
	}
	return name
}

// checkHotBody walks one hot function body. inLoop tracks whether the walk
// is lexically inside a for/range statement (rule 4). Nested func literals
// stay hot: a closure called from the tick path is the tick path.
func checkHotBody(pkg *Package, f *ast.File, body ast.Node, inLoop bool, aliases map[string]string, resets map[string]bool, report ReportFunc) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			checkHotParts(pkg, f, inLoop, aliases, resets, report, n.Init, n.Cond, n.Post)
			checkHotBody(pkg, f, n.Body, true, aliases, resets, report)
			return false
		case *ast.RangeStmt:
			checkHotParts(pkg, f, inLoop, aliases, resets, report, n.X)
			checkHotBody(pkg, f, n.Body, true, aliases, resets, report)
			return false
		case *ast.GoStmt:
			// The goroutine launch itself is ticksafe's jurisdiction; the
			// spawned worker's body is still hot code.
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				for _, arg := range n.Call.Args {
					checkHotParts(pkg, f, inLoop, aliases, resets, report, arg)
				}
				checkHotBody(pkg, f, fl.Body, false, aliases, resets, report)
				return false
			}
		case *ast.FuncLit:
			if inLoop {
				report(n.Pos(), "func literal inside a per-tick loop allocates a closure every iteration; hoist it above the loop")
			}
			checkHotBody(pkg, f, n.Body, false, aliases, resets, report)
			return false
		case *ast.CallExpr:
			checkHotCall(pkg, f, n, aliases, resets, report)
		case *ast.CompositeLit:
			checkHotComposite(pkg, n, report)
			return false // element literals of a flagged literal are implied
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal escapes to the heap on the per-tick path; reuse a preallocated value")
					return false
				}
			}
		}
		return true
	})
}

// checkHotParts runs the walk over loose expression/statement parts (loop
// headers, go-call arguments) without re-entering loop bodies.
func checkHotParts(pkg *Package, f *ast.File, inLoop bool, aliases map[string]string, resets map[string]bool, report ReportFunc, parts ...ast.Node) {
	for _, p := range parts {
		if p == nil {
			continue
		}
		if e, ok := p.(ast.Expr); ok && e == nil {
			continue
		}
		checkHotBody(pkg, f, p, inLoop, aliases, resets, report)
	}
}

// checkHotCall applies rules 1 (fmt/log), 2 (make), and 5 (append) to one
// call on the hot path.
func checkHotCall(pkg *Package, f *ast.File, call *ast.CallExpr, aliases map[string]string, resets map[string]bool, report ReportFunc) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			report(call.Pos(), "make on the per-tick path allocates every tick; allocate once at construction and reuse")
		case "append":
			if len(call.Args) == 0 {
				return
			}
			base := terminalName(call.Args[0])
			if base == "" {
				return
			}
			if resets[resolveAlias(base, aliases)] {
				return // buffer is reslice-reused somewhere in the package
			}
			report(call.Pos(), "append to %q may grow the heap every tick and the buffer is never reslice-reused; preallocate and reset with %s = %s[:0]", base, base, base)
		}
	case *ast.SelectorExpr:
		for _, pkgPath := range []string{"fmt", "log"} {
			name := importedName(f, pkgPath)
			if name != "" && isPkgSelector(pkg, fun, name, fun.Sel.Name) {
				report(call.Pos(), "%s.%s on the per-tick path allocates and boxes its operands; move formatting off the tick path", name, fun.Sel.Name)
				return
			}
		}
	}
}

// checkHotComposite applies rule 3: slice and map composite literals
// allocate; struct and fixed-size array value literals do not.
func checkHotComposite(pkg *Package, lit *ast.CompositeLit, report ReportFunc) {
	if t := pkg.TypeOf(lit); t != nil {
		switch t.Underlying().(type) {
		case *types.Slice:
			report(lit.Pos(), "slice literal allocates on the per-tick path; use a fixed-size array or a reused buffer")
			return
		case *types.Map:
			report(lit.Pos(), "map literal allocates on the per-tick path; build it once at construction")
			return
		default:
			return
		}
	}
	// Type info unavailable (stubbed import): fall back to syntax.
	switch t := lit.Type.(type) {
	case *ast.ArrayType:
		if t.Len == nil {
			report(lit.Pos(), "slice literal allocates on the per-tick path; use a fixed-size array or a reused buffer")
		}
	case *ast.MapType:
		report(lit.Pos(), "map literal allocates on the per-tick path; build it once at construction")
	}
}
