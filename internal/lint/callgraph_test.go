package lint

import (
	"go/token"
	"strings"
	"testing"
)

// TestStaleSuppressionAudit: a directive that suppresses nothing is itself
// a finding, but only when its analyzer actually ran on the package.
func TestStaleSuppressionAudit(t *testing.T) {
	src := `
package chip

//lint:ignore tnlint/detrand nothing here draws randomness
var x int
`
	pkg, err := CheckSource(kernelPath, map[string]string{"fixture.go": src})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{Detrand()})
	expect(t, diags, 1, "ignore", "stale suppression")

	// Same tree, but detrand is not in the run set: no stale report —
	// narrowed runs must not flag directives they cannot judge.
	pkg2, err := CheckSource(kernelPath, map[string]string{"fixture.go": src})
	if err != nil {
		t.Fatal(err)
	}
	diags = Run([]*Package{pkg2}, []*Analyzer{MapOrder()})
	expect(t, diags, 0, "", "")
}

// TestLiveSuppressionNotStale: a consumed directive never reports.
func TestLiveSuppressionNotStale(t *testing.T) {
	diags := analyze(t, Detrand(), kernelPath, `
package chip

import "time"

func measured() int64 {
	//lint:ignore tnlint/detrand timing harness owns the wall clock
	return time.Now().UnixNano()
}
`)
	expect(t, diags, 0, "", "")
}

// buildProgram compiles a multi-package source set and returns the Program
// with the packages, for direct call-graph assertions.
func buildProgram(t *testing.T, sources map[string]map[string]string) ([]*Package, *Program) {
	t.Helper()
	pkgs, err := CheckPackages(sources)
	if err != nil {
		t.Fatal(err)
	}
	return pkgs, NewProgram(pkgs)
}

func findFunc(t *testing.T, prog *Program, pkg *Package, name string) *FuncNode {
	t.Helper()
	var found *FuncNode
	prog.Funcs(pkg, func(n *FuncNode) {
		if n.Decl.Name.Name == name {
			found = n
		}
	})
	if found == nil {
		t.Fatalf("function %q not in program", name)
	}
	return found
}

func TestProgramCallEdgesAndTaint(t *testing.T) {
	pkgs, prog := buildProgram(t, map[string]map[string]string{
		Module + "/internal/a": {"a.go": `
package a

import "truenorth/internal/b"

func Top() { mid() }
func mid() { b.Leaf() }
func Clean() int { return 1 }
`},
		Module + "/internal/b": {"b.go": `
package b

func Leaf() []int { return make([]int, 8) }
`},
	})
	pkgA := pkgs[0]
	top := findFunc(t, prog, pkgA, "Top")
	if len(top.Calls) != 1 || top.Calls[0].Name != "mid" {
		t.Fatalf("Top edges = %+v, want one edge to mid", top.Calls)
	}

	// Allocation in b.Leaf taints Top through mid, two calls away.
	taints := prog.CallTaints(top, HazardAlloc, nil)
	if len(taints) != 1 {
		t.Fatalf("CallTaints(Top) = %d taints, want 1", len(taints))
	}
	desc := taints[0].Describe(pkgA.Fset)
	if !strings.Contains(desc, "mid → Leaf") || !strings.Contains(desc, "make") {
		t.Errorf("taint description %q missing witness chain", desc)
	}

	clean := findFunc(t, prog, pkgA, "Clean")
	if got := prog.CallTaints(clean, HazardAlloc, nil); len(got) != 0 {
		t.Errorf("Clean tainted: %+v", got)
	}
	// Memoized re-query is consistent.
	if again := prog.CallTaints(top, HazardAlloc, nil); len(again) != 1 {
		t.Errorf("re-query lost the taint")
	}
}

func TestProgramBarrierStopsTaint(t *testing.T) {
	pkgs, prog := buildProgram(t, map[string]map[string]string{
		Module + "/internal/a": {"a.go": `
package a

func Top() { bfs() }
func bfs() []int { return make([]int, 8) }
`},
	})
	top := findFunc(t, prog, pkgs[0], "Top")
	if got := prog.CallTaints(top, HazardAlloc, nil); len(got) != 0 {
		t.Errorf("barrier bfs leaked taint: %+v", got)
	}
}

func TestProgramCycleTerminates(t *testing.T) {
	pkgs, prog := buildProgram(t, map[string]map[string]string{
		Module + "/internal/a": {"a.go": `
package a

func ping(n int) {
	if n > 0 {
		pong(n - 1)
	}
}
func pong(n int) { ping(n); sink() }
func sink() { ch := make(chan int); _ = ch }
`},
	})
	ping := findFunc(t, prog, pkgs[0], "ping")
	taints := prog.CallTaints(ping, HazardAlloc, nil)
	if len(taints) != 1 {
		t.Fatalf("cycle query = %d taints, want 1 (via pong → sink)", len(taints))
	}
	if d := taints[0].Describe(pkgs[0].Fset); !strings.Contains(d, "pong → sink") {
		t.Errorf("witness chain %q, want pong → sink", d)
	}
}

func TestProgramHazardKinds(t *testing.T) {
	pkgs, prog := buildProgram(t, map[string]map[string]string{
		Module + "/internal/a": {"a.go": `
package a

import (
	"math/rand"
	"time"
)

func Draws() int { return rand.Intn(4) }
func Clocks() int64 { return time.Now().UnixNano() }
func Spawns() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
func Closes() func() int { return func() int { return 0 } }
`},
	})
	for name, kind := range map[string]HazardKind{
		"Draws": HazardRand, "Clocks": HazardRand,
		"Spawns": HazardGo, "Closes": HazardAlloc,
	} {
		n := findFunc(t, prog, pkgs[0], name)
		if len(n.hazards[kind]) == 0 {
			t.Errorf("%s: no intrinsic %v hazard recorded", name, kind)
		}
	}
	// A taint query from a caller of each hazard function lands.
	pkgs2, prog2 := buildProgram(t, map[string]map[string]string{
		Module + "/internal/a": {"a.go": `
package a

import "time"

func Caller() int64 { return helper() }
func helper() int64 { return time.Now().UnixNano() }
`},
	})
	caller := findFunc(t, prog2, pkgs2[0], "Caller")
	if got := prog2.CallTaints(caller, HazardRand, nil); len(got) != 1 {
		t.Fatalf("rand taint through helper = %d, want 1", len(got))
	}
	if got := prog2.CallTaints(caller, HazardGo, nil); len(got) != 0 {
		t.Errorf("spurious go taint: %+v", got)
	}
}

// TestPerfHotDirectiveExtendsHotSet: a function outside hotFuncNames but
// carrying //perf:hot is checked by hotalloc like any hot function.
func TestPerfHotDirectiveExtendsHotSet(t *testing.T) {
	diags := analyze(t, HotAlloc(), Module+"/internal/core", `
package core

//perf:hot
func scanRow(n int) []int {
	return make([]int, n)
}
`)
	expect(t, diags, 1, "hotalloc", "make on the per-tick path")
}

func TestFuncNodeName(t *testing.T) {
	pkgs, prog := buildProgram(t, map[string]map[string]string{
		Module + "/internal/a": {"a.go": `
package a

type Core struct{}

func (c *Core) Step() {}
func (c Core) Peek() {}
func Free() {}
`},
	})
	want := map[string]bool{"Core.Step": true, "Core.Peek": true, "Free": true}
	prog.Funcs(pkgs[0], func(n *FuncNode) {
		if !want[n.Name()] {
			t.Errorf("unexpected node name %q", n.Name())
		}
		delete(want, n.Name())
	})
	for missing := range want {
		t.Errorf("node %q not found", missing)
	}
	_ = token.NoPos
}

// TestMethodValueEdge: referencing a method as a value (without calling
// it) records an edge — the reference is how the callee ends up running —
// and hazards flow across it like any direct call.
func TestMethodValueEdge(t *testing.T) {
	pkgs, prog := buildProgram(t, map[string]map[string]string{
		Module + "/internal/a": {"a.go": `
package a

type Core struct{ ch chan int }

func (c *Core) Step() { c.ch <- 1 }

func Hand(c *Core) func() { return c.Step }
`},
	})
	hand := findFunc(t, prog, pkgs[0], "Hand")
	if len(hand.Calls) != 1 || hand.Calls[0].Name != "Step" || hand.Calls[0].InGo {
		t.Fatalf("Hand edges = %+v, want one non-InGo edge to Step", hand.Calls)
	}
	taints := prog.CallTaints(hand, HazardBlock, nil)
	if len(taints) != 1 {
		t.Fatalf("method-value taint = %d, want 1 (Step's channel send)", len(taints))
	}
	if d := taints[0].Describe(pkgs[0].Fset); !strings.Contains(d, "a channel send") {
		t.Errorf("taint %q missing the send hazard", d)
	}
}

// TestDeferredCallEdge: a deferred call is an ordinary edge — it runs on
// the caller's goroutine at return, so blocking hazards are the caller's.
func TestDeferredCallEdge(t *testing.T) {
	pkgs, prog := buildProgram(t, map[string]map[string]string{
		Module + "/internal/a": {"a.go": `
package a

func Top(ch chan int) { defer flush(ch) }
func flush(ch chan int) { ch <- 1 }
`},
	})
	top := findFunc(t, prog, pkgs[0], "Top")
	if len(top.Calls) != 1 || top.Calls[0].Name != "flush" || top.Calls[0].InGo {
		t.Fatalf("Top edges = %+v, want one non-InGo edge to flush", top.Calls)
	}
	if got := prog.CallTaints(top, HazardBlock, nil); len(got) != 1 {
		t.Fatalf("deferred-call block taint = %d, want 1", len(got))
	}
}

// TestSingleImplDevirtualization: a call through a module-declared
// interface with exactly one implementing type resolves to that
// implementation; a second implementation makes the edge ambiguous and it
// stays unresolved rather than attributing one type's hazards to all.
func TestSingleImplDevirtualization(t *testing.T) {
	const single = `
package a

type Sink interface{ Emit() }

type chanSink struct{ ch chan int }

func (s *chanSink) Emit() { s.ch <- 1 }

func Drive(s Sink) { s.Emit() }
`
	pkgs, prog := buildProgram(t, map[string]map[string]string{
		Module + "/internal/a": {"a.go": single},
	})
	drive := findFunc(t, prog, pkgs[0], "Drive")
	if len(drive.Calls) != 1 || drive.Calls[0].Name != "Emit" {
		t.Fatalf("Drive edges = %+v, want one devirtualized edge to Emit", drive.Calls)
	}
	if got := prog.CallTaints(drive, HazardBlock, nil); len(got) != 1 {
		t.Fatalf("devirtualized taint = %d, want 1 (chanSink.Emit sends)", len(got))
	}

	pkgs2, prog2 := buildProgram(t, map[string]map[string]string{
		Module + "/internal/a": {"a.go": single + `
type nopSink struct{}

func (nopSink) Emit() {}
`},
	})
	drive2 := findFunc(t, prog2, pkgs2[0], "Drive")
	if len(drive2.Calls) != 0 {
		t.Fatalf("two-impl interface still produced edges: %+v", drive2.Calls)
	}
	if got := prog2.CallTaints(drive2, HazardBlock, nil); len(got) != 0 {
		t.Errorf("ambiguous call leaked taint: %+v", got)
	}
}

// TestInGoEdgeBlocksOnlyBlockTaint: a call spawned with go gets an InGo
// edge; the spawned callee's blocking is not the caller's blocking, but
// every other hazard kind still flows.
func TestInGoEdgeBlocksOnlyBlockTaint(t *testing.T) {
	pkgs, prog := buildProgram(t, map[string]map[string]string{
		Module + "/internal/a": {"a.go": `
package a

import "time"

func Spawn() { go worker() }
func worker() int64 { time.Sleep(time.Millisecond); return time.Now().UnixNano() }
`},
	})
	spawn := findFunc(t, prog, pkgs[0], "Spawn")
	if len(spawn.Calls) != 1 || !spawn.Calls[0].InGo {
		t.Fatalf("Spawn edges = %+v, want one InGo edge to worker", spawn.Calls)
	}
	if got := prog.CallTaints(spawn, HazardBlock, nil); len(got) != 0 {
		t.Errorf("InGo edge leaked block taint: %+v", got)
	}
	if got := prog.CallTaints(spawn, HazardRand, nil); len(got) != 1 {
		t.Errorf("InGo edge lost rand taint: got %d, want 1", len(got))
	}
}
