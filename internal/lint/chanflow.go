package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// ChanFlow returns the interprocedural channel-protocol analyzer for the
// concurrency packages. chanown checks what one function does to a
// channel; chanflow follows channel facts through the call graph and
// across the functions of a package. Three rules:
//
//  1. No blocking helper under a lock: a call made while a mutex is held,
//     whose callee — any number of calls away — performs a blocking
//     operation (channel send/receive, select with no default arm, range
//     over a channel, time.Sleep, a Wait call), stalls every goroutine
//     that wants the lock. locksafe catches the direct operations; this
//     rule closes the helper loophole, with the witness chain in the
//     message. Go-spawned callees are exempt: they block their own
//     goroutine, not the lock holder.
//  2. No send on a channel some reachable code may close: a send on a
//     struct-field channel that another function of the package closes
//     (directly, or by passing the field to a helper that closes its
//     parameter) panics if the close wins the race. Sends lexically
//     ordered before a close in the closing function itself are the
//     owner's prerogative and stay chanown's business.
//  3. One close per channel: a field channel closed from two different
//     sites panics on the second close unless the sites are provably
//     exclusive — both sites are reported (the later cites the earlier)
//     so the owner structure has to be made explicit or suppressed with
//     the serialization argument spelled out.
//
// Rules 2 and 3 correlate channels by field terminal name, the same unit
// chanown and hotalloc use; local channels stay chanown's lexical domain.
func ChanFlow() *Analyzer {
	return &Analyzer{
		Name:     "chanflow",
		Doc:      "follow channel facts through the call graph: no blocking helpers under locks, no sends on maybe-closed channels, no double-close",
		Packages: ConcurrencyPackages,
		Run:      runChanFlow,
	}
}

func runChanFlow(pkg *Package, report ReportFunc) {
	prog := pkg.Prog
	if prog == nil {
		return
	}
	var nodes []*FuncNode
	prog.Funcs(pkg, func(n *FuncNode) { nodes = append(nodes, n) })
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Decl.Pos() < nodes[j].Decl.Pos() })

	for _, n := range nodes {
		checkBlockingUnderLock(pkg, prog, n, report)
	}
	checkFieldCloses(pkg, prog, nodes, report)
}

// checkBlockingUnderLock applies rule 1 to one function via the held-lock
// walker: every module-local call made with a lock held is taint-queried
// for blocking hazards.
func checkBlockingUnderLock(pkg *Package, prog *Program, n *FuncNode, report ReportFunc) {
	reported := map[token.Pos]bool{}
	walkHeld(pkg, n, nil, func(e CallEdge, held map[string]token.Pos) {
		if reported[e.Pos] {
			return
		}
		t := prog.EdgeTaint(e, HazardBlock)
		if t == nil {
			return
		}
		reported[e.Pos] = true
		locks := make([]string, 0, len(held))
		for h := range held {
			locks = append(locks, lockDisplay(h))
		}
		sort.Strings(locks)
		report(e.Pos, "mutex %s is held across the call to %s, which may block: %s",
			strings.Join(locks, ", "), e.Name, t.Describe(pkg.Fset))
	})
}

// closeSite is one place a field channel is closed: a direct close, or a
// call passing the field to a helper that closes its parameter.
type closeSite struct {
	fn  *FuncNode
	pos token.Pos
	via string // helper chain for indirect closes, "" for direct
}

// fieldChanOps gathers rule 2/3 facts for one package: close sites and
// send sites of field channels, keyed by terminal field name.
type fieldChanOps struct {
	closes map[string][]closeSite
	sends  map[string][]closeSite // reuses the site shape; via unused
}

// checkFieldCloses applies rules 2 and 3 over all functions of a package.
func checkFieldCloses(pkg *Package, prog *Program, nodes []*FuncNode, report ReportFunc) {
	ops := &fieldChanOps{closes: map[string][]closeSite{}, sends: map[string][]closeSite{}}
	closer := newParamCloseIndex(prog)
	for _, n := range nodes {
		collectFieldChanOps(pkg, prog, n, closer, ops)
	}

	// Rule 3: double-close. Sort sites; every site after the first cites
	// the first.
	for name, sites := range ops.closes {
		if len(sites) < 2 {
			continue
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		first := pkg.Fset.Position(sites[0].pos)
		for _, s := range sites[1:] {
			report(s.pos, "channel field %q is closed here and in %s (%s:%d); a channel may be closed at most once — give it one owner or suppress with the serialization argument",
				name, sites[0].fn.Name(), filepath.Base(first.Filename), first.Line)
		}
	}

	// Rule 2: send on a maybe-closed field. The closing function's own
	// sends are chanown's lexical send-after-close domain.
	for name, sends := range ops.sends {
		sites := ops.closes[name]
		if len(sites) == 0 {
			continue
		}
		for _, snd := range sends {
			ownClose := false
			for _, c := range sites {
				if c.fn == snd.fn {
					ownClose = true
					break
				}
			}
			if ownClose {
				continue
			}
			c := sites[0]
			cpos := pkg.Fset.Position(c.pos)
			how := ""
			if c.via != "" {
				how = " via " + c.via
			}
			report(snd.pos, "send on channel field %q, which %s closes%s (%s:%d); send-on-closed panics — prove the send happens-before the close or suppress with that argument",
				name, c.fn.Name(), how, filepath.Base(cpos.Filename), cpos.Line)
		}
	}
}

// collectFieldChanOps records n's close and send sites on field channels,
// including closes delegated to helpers that close their chan parameter.
func collectFieldChanOps(pkg *Package, prog *Program, n *FuncNode, closer *paramCloseIndex, ops *fieldChanOps) {
	edges := map[token.Pos]CallEdge{}
	for _, e := range n.Calls {
		edges[e.Pos] = e
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if name, isField := fieldTerminal(x.Args[0]); isField {
					ops.closes[name] = append(ops.closes[name], closeSite{fn: n, pos: x.Pos()})
				}
				return true
			}
			if e, ok := edges[x.Pos()]; ok {
				callee := prog.FuncAt(e.Callee)
				if callee != nil {
					for i, chain := range closer.closedParams(callee, map[*FuncNode]bool{}) {
						if i >= len(x.Args) {
							continue
						}
						if name, isField := fieldTerminal(x.Args[i]); isField {
							via := e.Name
							if chain != "" {
								via += " → " + chain
							}
							ops.closes[name] = append(ops.closes[name], closeSite{fn: n, pos: x.Pos(), via: via})
						}
					}
				}
			}
		case *ast.SendStmt:
			if name, isField := fieldTerminal(x.Chan); isField {
				ops.sends[name] = append(ops.sends[name], closeSite{fn: n, pos: x.Pos()})
			}
		}
		return true
	})
}

// fieldTerminal reports the terminal name of e when e is a selector chain
// (a struct-field access), the channel unit rules 2 and 3 correlate on.
func fieldTerminal(e ast.Expr) (string, bool) {
	if _, isSel := ast.Unparen(e).(*ast.SelectorExpr); !isSel {
		return "", false
	}
	name := terminalName(e)
	return name, name != ""
}

// paramCloseIndex memoizes, per function, which parameter indices the
// function (or any synchronous callee it forwards the parameter to)
// closes.
type paramCloseIndex struct {
	prog *Program
	memo map[*FuncNode]map[int]string
}

func newParamCloseIndex(prog *Program) *paramCloseIndex {
	return &paramCloseIndex{prog: prog, memo: map[*FuncNode]map[int]string{}}
}

// closedParams maps parameter index → helper chain ("" when the close is
// in the function itself, "g → h" when forwarded).
func (c *paramCloseIndex) closedParams(n *FuncNode, visiting map[*FuncNode]bool) map[int]string {
	if got, ok := c.memo[n]; ok {
		return got
	}
	if visiting[n] {
		return nil
	}
	visiting[n] = true
	defer delete(visiting, n)

	params := map[string]int{}
	i := 0
	for _, field := range n.Decl.Type.Params.List {
		for _, name := range field.Names {
			params[name.Name] = i
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	out := map[int]string{}
	edges := map[token.Pos]CallEdge{}
	for _, e := range n.Calls {
		if !e.InGo {
			edges[e.Pos] = e
		}
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, isIdent := call.Fun.(*ast.Ident); isIdent && id.Name == "close" && len(call.Args) == 1 {
			if arg, isIdent := ast.Unparen(call.Args[0]).(*ast.Ident); isIdent {
				if idx, isParam := params[arg.Name]; isParam {
					if _, have := out[idx]; !have {
						out[idx] = ""
					}
				}
			}
			return true
		}
		if e, isEdge := edges[call.Pos()]; isEdge {
			callee := c.prog.FuncAt(e.Callee)
			if callee == nil {
				return true
			}
			for calleeIdx, chain := range c.closedParams(callee, visiting) {
				if calleeIdx >= len(call.Args) {
					continue
				}
				arg, isIdent := ast.Unparen(call.Args[calleeIdx]).(*ast.Ident)
				if !isIdent {
					continue
				}
				if idx, isParam := params[arg.Name]; isParam {
					if _, have := out[idx]; !have {
						via := e.Name
						if chain != "" {
							via += " → " + chain
						}
						out[idx] = via
					}
				}
			}
		}
		return true
	})
	if len(visiting) == 1 {
		c.memo[n] = out
	}
	return out
}
