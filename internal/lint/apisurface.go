package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the apisurface extractor: it walks the serving package via
// go/types and the module call graph and produces the canonical v1 surface
// spec — every route registration, each handler's reachable error codes
// (with their statuses), and the transitive JSON shape of every wire
// struct. The spec is diffed two-sided against testdata/apisurface/v1.golden
// (TestAPISurfaceGolden; re-bless with -update-apisurface) and rendered
// into README.md's endpoint table, so the docs and the code cannot drift
// apart: adding, removing, or retyping any endpoint, field, or code fails
// the gate with a file:line diagnostic.

// SurfacePackage is the package the extractor walks.
const SurfacePackage = Module + "/internal/serve"

// httpStatusValue maps the status-constant names the serving package uses
// to their numeric values. The lint loader stubs net/http, so the values
// are not resolvable from type information; this table exists purely to
// render human-readable numbers next to the symbolic names.
var httpStatusValue = map[string]int{
	"http.StatusOK":                    200,
	"http.StatusCreated":               201,
	"http.StatusBadRequest":            400,
	"http.StatusNotFound":              404,
	"http.StatusConflict":              409,
	"http.StatusGone":                  410,
	"http.StatusRequestEntityTooLarge": 413,
	"http.StatusTooManyRequests":       429,
	"http.StatusInternalServerError":   500,
	"http.StatusNotImplemented":        501,
	"http.StatusServiceUnavailable":    503,
}

// statusNum renders "409" for "http.StatusConflict", "?" for a name the
// table does not know (which the golden diff will surface for review).
func statusNum(name string) string {
	if v, ok := httpStatusValue[name]; ok {
		return fmt.Sprintf("%d", v)
	}
	return "?"
}

// SurfaceLine is one canonical spec line with the source position it was
// extracted from, so golden drift reports file:line.
type SurfaceLine struct {
	Text string
	Pos  token.Pos
}

// SurfaceError is one (code, status) pair reachable from a handler.
type SurfaceError struct {
	Code   string // registry constant name, e.g. "codeBusy"
	Value  string // the code's wire value, e.g. "busy"
	Status string // rendered status expression
}

// SurfaceResponse is one success payload a handler writes.
type SurfaceResponse struct {
	Type   string
	Status string
}

// SurfaceEndpoint is one registered route.
type SurfaceEndpoint struct {
	Method    string
	Path      string
	Handler   string
	Request   string // request struct decoded from the body, "" if none
	Responses []SurfaceResponse
	Errors    []SurfaceError
	Pos       token.Pos
}

// SurfaceField is one wire-struct field.
type SurfaceField struct {
	Name string
	Tag  string // full json tag ("name,omitempty")
	Type string
	Pos  token.Pos
}

// SurfaceStruct is one wire struct reachable from the endpoints.
type SurfaceStruct struct {
	Name   string
	Fields []SurfaceField
	Pos    token.Pos
}

// SurfaceCode is one registered error code.
type SurfaceCode struct {
	Name   string // constant name
	Value  string // wire value
	Status string
	Pos    token.Pos
}

// Surface is the extracted v1 API contract.
type Surface struct {
	Codes     []SurfaceCode
	Endpoints []SurfaceEndpoint
	Structs   []SurfaceStruct
	fset      *token.FileSet
}

// ExtractSurface builds the surface spec from the loaded program. pkgs
// must contain the serving package; prog provides the call graph that
// resolves each handler's reachable error sites.
func ExtractSurface(prog *Program, pkgs []*Package) (*Surface, error) {
	var serve *Package
	for _, p := range pkgs {
		if p.Path == SurfacePackage {
			serve = p
		}
	}
	if serve == nil {
		return nil, fmt.Errorf("apisurface: package %s not loaded", SurfacePackage)
	}
	ex := &surfaceExtractor{pkg: serve, prog: prog}
	return ex.extract()
}

type surfaceExtractor struct {
	pkg  *Package
	prog *Program
}

func (ex *surfaceExtractor) extract() (*Surface, error) {
	s := &Surface{fset: ex.pkg.Fset}

	// Codes: the codeStatus registry plus each constant's wire value.
	values := ex.codeValues()
	reg := findCodeRegistry(ex.pkg)
	if reg == nil {
		return nil, fmt.Errorf("apisurface: %s has no codeStatus registry", SurfacePackage)
	}
	for name, status := range reg.statusOf {
		s.Codes = append(s.Codes, SurfaceCode{
			Name: name, Value: values[name], Status: status, Pos: reg.keyPos[name],
		})
	}
	sort.Slice(s.Codes, func(i, j int) bool { return s.Codes[i].Value < s.Codes[j].Value })

	// Endpoints: every mux registration in Handler().
	eps, err := ex.endpoints(values)
	if err != nil {
		return nil, err
	}
	s.Endpoints = eps

	// Wire structs: transitive closure over request/response field types.
	s.Structs = ex.wireStructs(eps)
	return s, nil
}

// codeValues maps each package-level "code*" string constant to its wire
// value ("codeBusy" → "busy").
func (ex *surfaceExtractor) codeValues() map[string]string {
	out := map[string]string{}
	for _, f := range ex.pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						continue
					}
					if lit, ok := ast.Unparen(vs.Values[i]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
						out[name.Name] = strings.Trim(lit.Value, `"`)
					}
				}
			}
		}
	}
	return out
}

// endpoints parses every mux.HandleFunc("METHOD /path", handler)
// registration, unwrapping the withSession adapter, and resolves each
// handler's request type, response payloads, and reachable error codes.
func (ex *surfaceExtractor) endpoints(values map[string]string) ([]SurfaceEndpoint, error) {
	var eps []SurfaceEndpoint
	for _, f := range ex.pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name != "Handler" {
				continue
			}
			ast.Inspect(fd.Body, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok || callName(call) != "HandleFunc" || len(call.Args) != 2 {
					return true
				}
				lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				pattern := strings.Trim(lit.Value, `"`)
				method, path, found := strings.Cut(pattern, " ")
				if !found {
					method, path = "*", pattern
				}
				handlers := ex.resolveHandlers(call.Args[1])
				if len(handlers) == 0 {
					return true
				}
				ep := SurfaceEndpoint{Method: method, Path: path, Pos: call.Pos(),
					Handler: handlers[len(handlers)-1].Decl.Name.Name}
				ep.Request = ex.requestType(handlers[len(handlers)-1])
				ep.Responses = ex.responses(handlers[len(handlers)-1])
				ep.Errors = ex.reachableErrors(handlers, values)
				eps = append(eps, ep)
				return true
			})
		}
	}
	if len(eps) == 0 {
		return nil, fmt.Errorf("apisurface: no HandleFunc registrations found in %s.Handler", SurfacePackage)
	}
	sort.Slice(eps, func(i, j int) bool {
		if eps[i].Path != eps[j].Path {
			return eps[i].Path < eps[j].Path
		}
		return eps[i].Method < eps[j].Method
	})
	return eps, nil
}

// resolveHandlers resolves a registration argument to its handler chain:
// s.handleX → [handleX]; s.withSession(s.handleX) → [withSession, handleX].
// The whole chain contributes error sites (withSession 404s unknown ids);
// the last element is the endpoint's named handler.
func (ex *surfaceExtractor) resolveHandlers(arg ast.Expr) []*FuncNode {
	var out []*FuncNode
	add := func(e ast.Expr) {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok || ex.pkg.Info == nil {
			return
		}
		fn, ok := ex.pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return
		}
		if n := ex.prog.FuncAt(fn.Pos()); n != nil {
			out = append(out, n)
		}
	}
	if call, ok := ast.Unparen(arg).(*ast.CallExpr); ok && len(call.Args) >= 1 {
		add(call.Fun)     // the adapter (withSession)
		add(call.Args[0]) // the wrapped handler
		return out
	}
	add(arg)
	return out
}

// requestType finds the named struct the handler decodes its body into.
func (ex *surfaceExtractor) requestType(n *FuncNode) string {
	req := ""
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok || callName(call) != "decodeBody" || len(call.Args) != 2 {
			return true
		}
		un, ok := ast.Unparen(call.Args[1]).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			return true
		}
		if t := ex.pkg.TypeOf(un.X); t != nil {
			req = localTypeName(t)
		}
		return true
	})
	return req
}

// responses collects the handler's direct writeJSON payload types
// (excluding the error envelope, which every endpoint shares).
func (ex *surfaceExtractor) responses(n *FuncNode) []SurfaceResponse {
	var out []SurfaceResponse
	seen := map[string]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok || callName(call) != "writeJSON" || len(call.Args) != 3 {
			return true
		}
		name := ""
		if t := ex.pkg.TypeOf(ast.Unparen(call.Args[2])); t != nil {
			name = renderWireType(t)
		}
		if name == "" || name == "ErrorBody" {
			return true
		}
		status := exprPath(ast.Unparen(call.Args[1]))
		key := name + " " + status
		if !seen[key] {
			seen[key] = true
			out = append(out, SurfaceResponse{Type: name, Status: status})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Type != out[j].Type {
			return out[i].Type < out[j].Type
		}
		return out[i].Status < out[j].Status
	})
	return out
}

// reachableErrors BFSes the call graph from the handler chain, collecting
// every writeError call site with a constant code and every constant
// (status, code) return pair of (int, string) mappers (statusCodeOf).
// Traversal stays inside the serving package: error responses are a
// serving-layer concept, and runtime errors enter through the mappers.
func (ex *surfaceExtractor) reachableErrors(roots []*FuncNode, values map[string]string) []SurfaceError {
	seenFn := map[*FuncNode]bool{}
	queue := append([]*FuncNode{}, roots...)
	pairs := map[string]SurfaceError{}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == nil || seenFn[n] || n.Pkg != ex.pkg {
			continue
		}
		seenFn[n] = true
		ex.errorSites(n, values, pairs)
		for _, e := range n.Calls {
			if callee := ex.prog.FuncAt(e.Callee); callee != nil {
				queue = append(queue, callee)
			}
		}
	}
	out := make([]SurfaceError, 0, len(pairs))
	for _, p := range pairs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// errorSites records n's own writeError calls and mapper return pairs.
func (ex *surfaceExtractor) errorSites(n *FuncNode, values map[string]string, pairs map[string]SurfaceError) {
	mapsStatus := resultsIntString(ex.pkg, n.Decl)
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			if callName(x) != "writeError" || len(x.Args) != 4 {
				return true
			}
			code, ok := ast.Unparen(x.Args[2]).(*ast.Ident)
			if !ok || !isPkgLevelStringConst(ex.pkg, code) {
				return true
			}
			status := exprPath(ast.Unparen(x.Args[1]))
			pairs[code.Name] = SurfaceError{Code: code.Name, Value: values[code.Name], Status: status}
		case *ast.ReturnStmt:
			if !mapsStatus || len(x.Results) != 2 {
				return true
			}
			code, ok := ast.Unparen(x.Results[1]).(*ast.Ident)
			if !ok || !isPkgLevelStringConst(ex.pkg, code) {
				return true
			}
			status := exprPath(ast.Unparen(x.Results[0]))
			pairs[code.Name] = SurfaceError{Code: code.Name, Value: values[code.Name], Status: status}
		}
		return true
	})
}

// localTypeName renders a named type declared in the serving package by
// bare name; anything else via renderWireType.
func localTypeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == SurfacePackage {
		return named.Obj().Name()
	}
	return renderWireType(t)
}

// renderWireType renders a payload type compactly: serving-package names
// stay bare, other module types keep their package, and composite types
// render structurally. The output is what the golden pins.
func renderWireType(t types.Type) string {
	qual := func(p *types.Package) string {
		if p == nil || p.Path() == SurfacePackage {
			return ""
		}
		return p.Name()
	}
	return types.TypeString(t, qual)
}

// wireStructs computes the transitive closure of serving-package named
// structs reachable from the endpoints' request and response types, and
// extracts their JSON shape in declaration order.
func (ex *surfaceExtractor) wireStructs(eps []SurfaceEndpoint) []SurfaceStruct {
	want := map[string]bool{}
	for _, ep := range eps {
		if ep.Request != "" {
			want[ep.Request] = true
		}
		for _, r := range ep.Responses {
			want[r.Type] = true
		}
	}
	// The error envelope is part of every endpoint's contract.
	want["ErrorBody"] = true

	// Index the package's struct declarations.
	decls := map[string]*ast.TypeSpec{}
	for _, f := range ex.pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok {
					if _, isStruct := ts.Type.(*ast.StructType); isStruct {
						decls[ts.Name.Name] = ts
					}
				}
			}
		}
	}

	// Expand the closure: a wanted struct's fields can pull in more.
	var order []string
	added := map[string]bool{}
	var addStruct func(name string)
	addStruct = func(name string) {
		if added[name] {
			return
		}
		ts, ok := decls[name]
		if !ok {
			return
		}
		added[name] = true
		order = append(order, name)
		st := ts.Type.(*ast.StructType)
		for _, field := range st.Fields.List {
			for _, ref := range localStructRefs(ex.pkg, field.Type) {
				addStruct(ref)
			}
		}
	}
	names := make([]string, 0, len(want))
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		addStruct(name)
	}
	sort.Strings(order)

	out := make([]SurfaceStruct, 0, len(order))
	for _, name := range order {
		ts := decls[name]
		ss := SurfaceStruct{Name: name, Pos: ts.Name.Pos()}
		st := ts.Type.(*ast.StructType)
		for _, field := range st.Fields.List {
			tag, hasTag := jsonTagOf(field)
			typeStr := ""
			if t := ex.pkg.TypeOf(field.Type); t != nil {
				typeStr = renderWireType(t)
			}
			for _, fname := range field.Names {
				if !ast.IsExported(fname.Name) {
					continue
				}
				if !hasTag {
					tag = "!untagged"
				}
				ss.Fields = append(ss.Fields, SurfaceField{
					Name: fname.Name, Tag: tag, Type: typeStr, Pos: fname.Pos(),
				})
			}
		}
		out = append(out, ss)
	}
	return out
}

// localStructRefs lists the serving-package named types a field type
// mentions (through pointers, slices, arrays, and maps).
func localStructRefs(pkg *Package, e ast.Expr) []string {
	var out []string
	t := pkg.TypeOf(e)
	if t == nil {
		return nil
	}
	seen := map[types.Type]bool{}
	var walk func(t types.Type)
	walk = func(t types.Type) {
		if t == nil || seen[t] {
			return
		}
		seen[t] = true
		switch x := t.(type) {
		case *types.Named:
			if x.Obj().Pkg() != nil && x.Obj().Pkg().Path() == SurfacePackage {
				out = append(out, x.Obj().Name())
			}
			walk(x.Underlying())
		case *types.Pointer:
			walk(x.Elem())
		case *types.Slice:
			walk(x.Elem())
		case *types.Array:
			walk(x.Elem())
		case *types.Map:
			walk(x.Key())
			walk(x.Elem())
		case *types.Struct:
			for i := 0; i < x.NumFields(); i++ {
				walk(x.Field(i).Type())
			}
		}
	}
	walk(t)
	return out
}

// Lines renders the canonical spec as positioned lines — the unit the
// two-sided golden diff works in.
func (s *Surface) Lines() []SurfaceLine {
	var out []SurfaceLine
	add := func(pos token.Pos, format string, args ...any) {
		out = append(out, SurfaceLine{Text: fmt.Sprintf(format, args...), Pos: pos})
	}
	for _, c := range s.Codes {
		add(c.Pos, "code %s = %s (%s)", c.Value, c.Status, statusNum(c.Status))
	}
	for _, ep := range s.Endpoints {
		add(ep.Pos, "endpoint %s %s handler=%s", ep.Method, ep.Path, ep.Handler)
		if ep.Request != "" {
			add(ep.Pos, "endpoint %s %s request %s", ep.Method, ep.Path, ep.Request)
		}
		for _, r := range ep.Responses {
			add(ep.Pos, "endpoint %s %s response %s %s", ep.Method, ep.Path, r.Type, r.Status)
		}
		for _, e := range ep.Errors {
			add(ep.Pos, "endpoint %s %s error %s %s", ep.Method, ep.Path, e.Value, e.Status)
		}
	}
	for _, st := range s.Structs {
		add(st.Pos, "struct %s", st.Name)
		for _, f := range st.Fields {
			add(f.Pos, "struct %s field %s json=%s type=%s", st.Name, f.Name, f.Tag, f.Type)
		}
	}
	return out
}

// surfaceHeader documents the golden's provenance and re-bless workflow.
const surfaceHeader = `# tnserved v1 API surface — extracted by the apisurface gate (internal/lint).
# One line per fact: codes, endpoints (request/response/reachable errors),
# wire-struct fields. Any drift fails TestAPISurfaceGolden with file:line;
# review the diff, then re-bless deliberately with
#   go test ./internal/lint -run TestAPISurfaceGolden -update-apisurface
`

// Render produces the canonical spec text the golden pins.
func (s *Surface) Render() string {
	var sb strings.Builder
	sb.WriteString(surfaceHeader)
	for _, l := range s.Lines() {
		sb.WriteString(l.Text)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// DiffGolden compares the spec against golden text two-sided and returns
// one diagnostic per drifted line: additions cite the source file:line
// they were extracted from, removals cite the golden line that no longer
// matches anything in the source.
func (s *Surface) DiffGolden(golden string) []string {
	want := map[string]int{} // line text → golden line number
	for i, line := range strings.Split(golden, "\n") {
		line = strings.TrimRight(line, "\r")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if _, dup := want[line]; !dup {
			want[line] = i + 1
		}
	}
	got := s.Lines()
	gotSet := map[string]bool{}
	var diags []string
	for _, l := range got {
		gotSet[l.Text] = true
		if _, ok := want[l.Text]; !ok {
			pos := s.fset.Position(l.Pos)
			diags = append(diags, fmt.Sprintf("%s:%d: surface drift (not in v1.golden): %s",
				filepath.Base(pos.Filename), pos.Line, l.Text))
		}
	}
	type removed struct {
		line int
		text string
	}
	var gone []removed
	for text, line := range want {
		if !gotSet[text] {
			gone = append(gone, removed{line, text})
		}
	}
	sort.Slice(gone, func(i, j int) bool { return gone[i].line < gone[j].line })
	for _, r := range gone {
		diags = append(diags, fmt.Sprintf("v1.golden:%d: pinned surface entry no longer in source: %s", r.line, r.text))
	}
	sort.Strings(diags)
	return diags
}

// MarkdownTables renders the README's generated endpoint and error-code
// tables from the same spec the golden pins.
func (s *Surface) MarkdownTables() string {
	var sb strings.Builder
	sb.WriteString("| Method | Path | Request | Response |\n")
	sb.WriteString("|---|---|---|---|\n")
	for _, ep := range s.Endpoints {
		req := "—"
		if ep.Request != "" {
			req = "`" + ep.Request + "`"
		}
		resp := "—"
		if len(ep.Responses) > 0 {
			parts := make([]string, 0, len(ep.Responses))
			for _, r := range ep.Responses {
				parts = append(parts, fmt.Sprintf("`%s` (%s)", r.Type, statusNum(r.Status)))
			}
			resp = strings.Join(parts, ", ")
		}
		fmt.Fprintf(&sb, "| %s | `%s` | %s | %s |\n", ep.Method, ep.Path, req, resp)
	}
	sb.WriteString("\nError codes (every endpoint fails with the `{\"error\":{code,message}}` envelope):\n\n")
	sb.WriteString("| Code | HTTP status |\n")
	sb.WriteString("|---|---|\n")
	for _, c := range s.Codes {
		fmt.Fprintf(&sb, "| `%s` | %s |\n", c.Value, statusNum(c.Status))
	}
	return sb.String()
}
