package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ServingPackages hold the session control plane: the runtime driver and the
// HTTP serving layer. This is exactly the surface PR 3 added and exactly
// where Go services lose liveness silently — a mutex held across a blocking
// call in a handler stalls every other request; a leaked lock deadlocks the
// server the next time anyone takes it.
var ServingPackages = []string{
	Module + "/internal/runtime",
	Module + "/internal/serve",
}

// LockSafe returns the lock-discipline analyzer for the serving packages.
// Three rules:
//
//  1. No mutex held across a potentially blocking operation: a channel
//     send/receive, a select without a default arm, time.Sleep, a .Wait()
//     call, or a call into the session runtime (every runtime.Session
//     method parks on the session goroutine's command channel). The serving
//     lock protects shared maps for nanoseconds; holding it across a block
//     turns one slow session into a stalled server.
//  2. No path that returns with a lock still held (a deferred Unlock
//     sanctions the path; the lock is still "held" for rule 1, because a
//     deferred unlock releases too late to help a blocked handler).
//  3. No sync primitive copied by value: a by-value receiver or parameter
//     of sync.Mutex/RWMutex/WaitGroup/Once/Cond — or of a struct in this
//     package embedding one — operates on a copy of the lock state. This
//     mirrors go vet's copylocks for the declaration sites vet cannot see
//     when builds run without test files.
//
// The analysis is lexical: it walks each function's statements in source
// order, branching into if/for/select arms with a copy of the held-lock
// set. It cannot see locks taken by callees (a documented "caller must
// hold" helper is invisible), so it is a discipline check, not a proof —
// the -race tier of check.sh remains the dynamic complement.
func LockSafe() *Analyzer {
	return &Analyzer{
		Name:     "locksafe",
		Doc:      "forbid mutexes held across blocking operations, leaked locks, and by-value sync copies",
		Packages: ServingPackages,
		Run:      runLockSafe,
	}
}

// syncTypeNames are the sync primitives that must never be copied.
var syncTypeNames = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true,
}

func runLockSafe(pkg *Package, report ReportFunc) {
	bearers := collectSyncBearers(pkg)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCopiedSync(f, fd, bearers, report)
			if fd.Body == nil {
				continue
			}
			st := newLockState(pkg, f, report)
			st.walkBlock(fd.Body)
			st.checkFallthroughEnd(fd.Body)
		}
	}
}

// collectSyncBearers returns the names of package-local struct types that
// contain a sync primitive (directly or through another local bearer), so a
// by-value copy of them copies lock state.
func collectSyncBearers(pkg *Package) map[string]bool {
	bearers := map[string]bool{}
	// Iterate to a fixed point so bearers embedding bearers resolve
	// regardless of declaration order.
	for changed := true; changed; {
		changed = false
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				s, ok := ts.Type.(*ast.StructType)
				if !ok || bearers[ts.Name.Name] {
					return true
				}
				for _, field := range s.Fields.List {
					if isSyncValueType(f, field.Type, bearers) {
						bearers[ts.Name.Name] = true
						changed = true
						break
					}
				}
				return true
			})
		}
	}
	return bearers
}

// isSyncValueType reports whether t is, by value, a sync primitive or a
// local sync-bearing struct. Pointers never copy lock state.
func isSyncValueType(f *ast.File, t ast.Expr, bearers map[string]bool) bool {
	switch t := t.(type) {
	case *ast.Ident:
		return bearers[t.Name]
	case *ast.SelectorExpr:
		id, ok := t.X.(*ast.Ident)
		return ok && id.Name == importedName(f, "sync") && syncTypeNames[t.Sel.Name]
	case *ast.ArrayType:
		return isSyncValueType(f, t.Elt, bearers)
	}
	return false
}

// checkCopiedSync applies rule 3 to a function signature: by-value
// receivers and parameters of sync-bearing types.
func checkCopiedSync(f *ast.File, fd *ast.FuncDecl, bearers map[string]bool, report ReportFunc) {
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if isSyncValueType(f, field.Type, bearers) {
				report(field.Pos(), "%s copies a sync primitive by value; use a pointer", kind)
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
}

// lockState tracks the held-lock set through one function's lexical walk.
type lockState struct {
	pkg    *Package
	file   *ast.File
	report ReportFunc
	// held maps a lock's expression path ("s.mu") to its Lock() position;
	// exclusive records whether that hold is a write lock (RLock twice is
	// legal, Lock twice deadlocks).
	held      map[string]token.Pos
	exclusive map[string]bool
	deferred  map[string]bool
}

func newLockState(pkg *Package, f *ast.File, report ReportFunc) *lockState {
	return &lockState{
		pkg: pkg, file: f, report: report,
		held:      map[string]token.Pos{},
		exclusive: map[string]bool{},
		deferred:  map[string]bool{},
	}
}

func (st *lockState) clone() *lockState {
	c := newLockState(st.pkg, st.file, st.report)
	for k, v := range st.held {
		c.held[k] = v
	}
	for k, v := range st.exclusive {
		c.exclusive[k] = v
	}
	for k, v := range st.deferred {
		c.deferred[k] = v
	}
	return c
}

// mutexOp decomposes a statement-level call into (lock path, method) when
// it is an argument-less X.Lock/RLock/Unlock/RUnlock call.
func mutexOp(e ast.Expr) (path, op string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		if p := exprPath(sel.X); p != "" {
			return p, sel.Sel.Name, true
		}
	}
	return "", "", false
}

func (st *lockState) walkBlock(b *ast.BlockStmt) {
	for _, s := range b.List {
		st.walkStmt(s)
	}
}

func (st *lockState) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		st.walkBlock(s)
	case *ast.LabeledStmt:
		st.walkStmt(s.Stmt)
	case *ast.ExprStmt:
		if path, op, ok := mutexOp(s.X); ok {
			st.applyMutexOp(path, op, s.Pos())
			return
		}
		st.checkExpr(s.X)
	case *ast.DeferStmt:
		if path, op, ok := mutexOp(s.Call); ok && strings.HasSuffix(op, "Unlock") {
			st.deferred[path] = true
			return
		}
		for _, a := range s.Call.Args {
			st.checkExpr(a)
		}
		// The deferred call itself runs at return; a blocking deferred call
		// never blocks while the lock is held *here*, so only its arguments
		// (evaluated now) are checked.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			newLockState(st.pkg, st.file, st.report).walkBlock(fl.Body)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			st.checkExpr(e)
		}
		for _, e := range s.Lhs {
			st.checkExpr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			st.checkExpr(e)
		}
		st.reportLeaks(s.Pos())
	case *ast.SendStmt:
		st.blockingOp(s.Pos(), "a channel send")
		st.checkExpr(s.Chan)
		st.checkExpr(s.Value)
	case *ast.IfStmt:
		if s.Init != nil {
			st.walkStmt(s.Init)
		}
		st.checkExpr(s.Cond)
		st.clone().walkBlock(s.Body)
		if s.Else != nil {
			st.clone().walkStmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st.walkStmt(s.Init)
		}
		if s.Cond != nil {
			st.checkExpr(s.Cond)
		}
		body := st.clone()
		body.walkBlock(s.Body)
		if s.Post != nil {
			body.walkStmt(s.Post)
		}
	case *ast.RangeStmt:
		st.checkExpr(s.X)
		if t := st.pkg.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				st.blockingOp(s.Pos(), "a range over a channel")
			}
		}
		st.clone().walkBlock(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			st.walkStmt(s.Init)
		}
		if s.Tag != nil {
			st.checkExpr(s.Tag)
		}
		st.walkCases(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st.walkStmt(s.Init)
		}
		st.walkCases(s.Body)
	case *ast.SelectStmt:
		if !selectHasDefault(s) {
			st.blockingOp(s.Pos(), "a select with no default arm")
		}
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			arm := st.clone()
			if cc.Comm != nil {
				// The comm op's blocking nature is the select's, already
				// reported; walk only its operands, not the send/receive
				// itself.
				switch comm := cc.Comm.(type) {
				case *ast.SendStmt:
					arm.checkExpr(comm.Chan)
					arm.checkExpr(comm.Value)
				case *ast.ExprStmt:
					arm.checkCommExpr(comm.X)
				case *ast.AssignStmt:
					for _, e := range comm.Lhs {
						arm.checkExpr(e)
					}
					for _, e := range comm.Rhs {
						arm.checkCommExpr(e)
					}
				default:
					arm.walkStmt(cc.Comm)
				}
			}
			for _, bs := range cc.Body {
				arm.walkStmt(bs)
			}
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			st.checkExpr(a)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// The spawned goroutine has its own stack and its own relation
			// to the lock — analyze it as a fresh scope.
			newLockState(st.pkg, st.file, st.report).walkBlock(fl.Body)
		}
	default:
		if s != nil {
			ast.Inspect(s, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					st.checkExpr(e)
					return false
				}
				return true
			})
		}
	}
}

func (st *lockState) walkCases(body *ast.BlockStmt) {
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		arm := st.clone()
		for _, e := range cc.List {
			arm.checkExpr(e)
		}
		for _, bs := range cc.Body {
			arm.walkStmt(bs)
		}
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func (st *lockState) applyMutexOp(path, op string, pos token.Pos) {
	switch op {
	case "Lock", "RLock":
		if _, already := st.held[path]; already && (op == "Lock" || st.exclusive[path]) {
			st.report(pos, "mutex %s locked again without an intervening unlock (self-deadlock)", path)
		}
		st.held[path] = pos
		st.exclusive[path] = op == "Lock"
	case "Unlock", "RUnlock":
		delete(st.held, path)
		delete(st.exclusive, path)
	}
}

// checkExpr scans one expression for blocking operations performed while a
// lock is held. Func literals are fresh scopes.
// checkCommExpr checks a select comm-clause expression: a top-level
// channel receive is the select's blocking point (already reported once
// for the whole select), so only its operand is inspected.
func (st *lockState) checkCommExpr(e ast.Expr) {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		st.checkExpr(u.X)
		return
	}
	st.checkExpr(e)
}

func (st *lockState) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			newLockState(st.pkg, st.file, st.report).walkBlock(n.Body)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				st.blockingOp(n.Pos(), "a channel receive")
			}
		case *ast.CallExpr:
			st.checkBlockingCall(n)
		}
		return true
	})
}

// checkBlockingCall applies rule 1's call classification: time.Sleep, any
// .Wait(), and any method call on a runtime-package type (runtime.Session
// methods park on the session goroutine's command channel).
func (st *lockState) checkBlockingCall(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if tn := importedName(st.file, "time"); tn != "" && isPkgSelector(st.pkg, sel, tn, "Sleep") {
		st.blockingOp(call.Pos(), "time.Sleep")
		return
	}
	if sel.Sel.Name == "Wait" {
		st.blockingOp(call.Pos(), "a Wait call")
		return
	}
	if recvPkg := namedTypePkg(st.pkg.TypeOf(sel.X)); recvPkg == Module+"/internal/runtime" {
		st.blockingOp(call.Pos(), "a session runtime call ("+sel.Sel.Name+")")
	}
}

// namedTypePkg returns the declaring package path of t's (possibly
// pointed-to) named type, or "".
func namedTypePkg(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path()
}

// blockingOp reports every held lock at a blocking operation.
func (st *lockState) blockingOp(pos token.Pos, what string) {
	for _, path := range st.heldPaths() {
		st.report(pos, "mutex %s is held across %s; release it before blocking", path, what)
	}
}

// reportLeaks reports rule 2 at a return: held locks with no deferred
// unlock.
func (st *lockState) reportLeaks(pos token.Pos) {
	for _, path := range st.heldPaths() {
		if !st.deferred[path] {
			st.report(pos, "return with mutex %s still locked on this path", path)
		}
	}
}

func (st *lockState) heldPaths() []string {
	paths := make([]string, 0, len(st.held))
	for p := range st.held {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// checkFallthroughEnd applies rule 2 to a function body that falls off the
// closing brace (bodies ending in return are handled at the return).
func (st *lockState) checkFallthroughEnd(body *ast.BlockStmt) {
	if n := len(body.List); n > 0 {
		if _, endsWithReturn := body.List[n-1].(*ast.ReturnStmt); endsWithReturn {
			return
		}
	}
	st.reportLeaks(body.Rbrace)
}
