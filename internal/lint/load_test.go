package lint

import (
	"go/types"
	"testing"
)

func newRepoLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if l.ModulePath != Module {
		t.Fatalf("module path = %q, want %q", l.ModulePath, Module)
	}
	return l
}

func TestLoaderFindsAllPackages(t *testing.T) {
	l := newRepoLoader(t)
	paths, err := l.AllImportPaths()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		Module:                       false, // root package (doc.go)
		Module + "/internal/chip":    false,
		Module + "/internal/compass": false,
		Module + "/cmd/tnlint":       false,
	}
	for _, p := range paths {
		if _, ok := want[p]; ok {
			want[p] = true
		}
	}
	for p, seen := range want {
		if !seen {
			t.Errorf("AllImportPaths missing %s", p)
		}
	}
}

// TestLoaderResolvesModuleTypes verifies the loader's central property:
// types declared inside the module resolve for real (here: a map field of a
// struct from another internal package), which is what maporder and
// floatcmp depend on.
func TestLoaderResolvesModuleTypes(t *testing.T) {
	l := newRepoLoader(t)
	pkg, err := l.Load(Module + "/internal/chip")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tv := range pkg.Info.Types {
		if m, ok := tv.Type.(*types.Map); ok && m.Key().String() == Module+"/internal/router.Point" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("chip's map[router.Point]bool did not type-check to a cross-package map type")
	}
}

// TestRepoLintsClean is the enforced invariant itself: every kernel and
// arithmetic package passes the full analyzer suite. If this fails, either
// fix the finding or add a //lint:ignore tnlint/<name> directive with a
// reason.
func TestRepoLintsClean(t *testing.T) {
	l := newRepoLoader(t)
	paths, err := l.AllImportPaths()
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	for _, d := range Run(pkgs, Analyzers()) {
		t.Errorf("%s", d)
	}
}
