package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmp returns the floating-point-equality analyzer for the neuron and
// energy arithmetic paths. Exact ==/!= between computed floats is almost
// always a latent bug (the neuron path is integer fixed-point precisely so
// state can be compared exactly; the energy path composes products and
// divisions whose last bits are rounding artifacts). Comparison against
// constant zero is allowed: zero is exactly representable and `x == 0` is
// the idiomatic divide-by-zero guard throughout internal/energy.
func FloatCmp() *Analyzer {
	return &Analyzer{
		Name:     "floatcmp",
		Doc:      "forbid ==/!= on floating-point operands in arithmetic paths",
		Packages: ArithmeticPackages,
		Run:      runFloatCmp,
	}
}

func runFloatCmp(pkg *Package, report ReportFunc) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pkg.TypeOf(bin.X)) && !isFloat(pkg.TypeOf(bin.Y)) {
				return true
			}
			if isConstZero(pkg, bin.X) || isConstZero(pkg, bin.Y) {
				return true
			}
			report(bin.OpPos, "floating-point %s comparison; compare with an epsilon tolerance or use fixed-point", bin.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConstZero reports whether e is a compile-time constant equal to zero.
func isConstZero(pkg *Package, e ast.Expr) bool {
	if pkg.Info == nil {
		return false
	}
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	if k := tv.Value.Kind(); k != constant.Int && k != constant.Float {
		return false
	}
	return constant.Sign(tv.Value) == 0
}
