package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"
)

// BoundConvPackages are the trust-boundary packages boundconv gates: the
// HTTP serving surface (JSON bodies, query and path parameters) and the
// AER stream codec (files and network peers). Helpers they call anywhere
// in the module are covered through call-graph summaries.
var BoundConvPackages = []string{
	Module + "/internal/serve",
	Module + "/internal/spikeio",
}

// BoundConv returns the trust-boundary conversion-taint analyzer. A
// client-controlled integer — a field of a JSON-decoded request struct, or
// a strconv.Atoi/ParseInt/ParseUint result on a query or path parameter —
// must pass a range guard before it reaches one of the conversion-shaped
// sinks that turned into real bugs in this repo's history (the StartUntil
// relative-tick overflow, the handleRun/handleInput/Replay delay wraps):
//
//   - a narrowing or sign-changing integer conversion (uint64→int,
//     int→int32, int→uint32, ...), where an overlarge or negative value
//     silently wraps or aliases;
//   - arithmetic (+, -, *) producing a uint64 — tick math, where a wrap
//     turns a far-future target into an immediate or unbounded one;
//   - a make() size or capacity argument — client-sized allocations.
//
// A guard is an ordered comparison (<, <=, >, >=) mentioning the value (or
// the exact field path) earlier in the same function, or passing the value
// (or its root) through a function whose name contains valid/check/verify
// — the repo's validator idiom (Params.Validate, sim.InjectChecked). The
// analysis is call-graph aware: per-function summaries record which
// parameters flow unguarded into a sink, so taint reaching a conversion
// through a helper (even in another package) is reported at the
// trust-boundary call site with the witness chain. Results of
// strconv.ParseInt/ParseUint carry their bitSize as a bound: converting to
// a type at least that wide (with compatible signedness) is not a finding.
func BoundConv() *Analyzer {
	sums := map[*Program]*convSummaries{}
	return &Analyzer{
		Name:     "boundconv",
		Doc:      "client-controlled integers need a range guard before narrowing conversions, tick arithmetic, or make() sizing",
		Packages: BoundConvPackages,
		Run: func(pkg *Package, report ReportFunc) {
			prog := pkg.Prog
			if prog == nil {
				return
			}
			cs, ok := sums[prog]
			if !ok {
				cs = &convSummaries{prog: prog, memo: map[*FuncNode]map[int]*convSink{}}
				sums[prog] = cs
			}
			prog.Funcs(pkg, func(n *FuncNode) {
				seen := map[string]bool{}
				sc := &convScan{
					pkg:  pkg,
					sums: cs,
					node: n,
					onHit: func(pos token.Pos, tv *taintVal, sink string, chain []CallEdge, hazPos token.Pos) {
						msg := renderConvHit(pkg.Fset, tv, sink, chain, hazPos)
						key := fmt.Sprintf("%d:%s", pos, msg)
						if seen[key] {
							return
						}
						seen[key] = true
						report(pos, "%s", msg)
					},
				}
				sc.run(n.Decl, false)
			})
		},
	}
}

// renderConvHit formats one finding: the tainted value, its provenance,
// the sink, and — for interprocedural hits — the witness call chain with
// the hazard's file:line, mirroring Taint.Describe.
func renderConvHit(fset *token.FileSet, tv *taintVal, sink string, chain []CallEdge, hazPos token.Pos) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "client-controlled %s (%s) reaches %s without a range guard", tv.path, tv.src, sink)
	if len(chain) > 0 {
		sb.WriteString(" via ")
		for i, e := range chain {
			if i > 0 {
				sb.WriteString(" → ")
			}
			sb.WriteString(e.Name)
		}
		pos := fset.Position(hazPos)
		fmt.Fprintf(&sb, " (%s:%d)", filepath.Base(pos.Filename), pos.Line)
	}
	return sb.String()
}

// taintVal tracks one client-controlled root: the identifier (or derived
// value) a taint source produced.
type taintVal struct {
	path string // rendered expression path, for messages and guard matching
	src  string // provenance for messages ("strconv.Atoi result", "JSON request body")
	// param is the index of the function parameter this value derives
	// from in summary mode, -1 otherwise.
	param int
	// guarded marks the whole root as range-checked; guardedPaths marks
	// individual field paths ("e.Tick") as checked.
	guarded      bool
	guardedPaths map[string]bool
	// bits/signedBound bound the value when the source guarantees a range
	// (strconv.ParseInt/ParseUint with a literal bitSize): bits is the
	// bitSize, signedBound whether the bound is signed. 0 = unbounded.
	bits        int
	signedBound bool
}

func (tv *taintVal) guardedAt(path string) bool {
	return tv.guarded || tv.guardedPaths[path]
}

func (tv *taintVal) markGuarded(path string) {
	if path == tv.path || path == "" {
		tv.guarded = true
		return
	}
	if tv.guardedPaths == nil {
		tv.guardedPaths = map[string]bool{}
	}
	tv.guardedPaths[path] = true
}

// derive builds the taint record of a value assigned from path of tv.
func (tv *taintVal) derive(newPath string, srcPath string) *taintVal {
	return &taintVal{
		path:        newPath,
		src:         tv.src,
		param:       tv.param,
		guarded:     tv.guardedAt(srcPath),
		bits:        tv.bits,
		signedBound: tv.signedBound,
	}
}

// convSink is one summary entry: a function parameter that flows unguarded
// into a sink inside the function (or transitively through its callees).
type convSink struct {
	pos   token.Pos // the hazard position (innermost sink)
	sink  string    // sink description
	chain []CallEdge
}

// convSummaries memoizes per-function parameter→sink summaries over one
// program, computed with the same body walker the direct analysis uses but
// with parameters as the taint roots.
type convSummaries struct {
	prog *Program
	memo map[*FuncNode]map[int]*convSink
}

// summary returns n's parameter→sink map. Cycles in the call graph
// conservatively stop the recursion (same rule as lockorder.acquires).
func (cs *convSummaries) summary(n *FuncNode, visiting map[*FuncNode]bool) map[int]*convSink {
	if got, ok := cs.memo[n]; ok {
		return got
	}
	if visiting[n] {
		return nil
	}
	visiting[n] = true
	defer delete(visiting, n)

	out := map[int]*convSink{}
	sc := &convScan{
		pkg:      n.Pkg,
		sums:     cs,
		node:     n,
		visiting: visiting,
		onHit: func(pos token.Pos, tv *taintVal, sink string, chain []CallEdge, hazPos token.Pos) {
			if tv.param < 0 {
				return
			}
			if old, ok := out[tv.param]; !ok || hazPos < old.pos {
				out[tv.param] = &convSink{pos: hazPos, sink: sink, chain: chain}
			}
		},
	}
	sc.run(n.Decl, true)
	if len(visiting) == 1 {
		// Memoize only at the outermost frame: inner results computed
		// under a cycle guard may be incomplete.
		cs.memo[n] = out
	}
	return out
}

// convScan walks one function body in source order, tracking client-integer
// taint through assignments and range statements, recording guards, and
// firing onHit at every unguarded sink.
type convScan struct {
	pkg      *Package
	sums     *convSummaries
	node     *FuncNode
	visiting map[*FuncNode]bool // non-nil in summary mode
	onHit    func(pos token.Pos, tv *taintVal, sink string, chain []CallEdge, hazPos token.Pos)

	taints   map[types.Object]*taintVal
	decoders map[types.Object]bool // objects holding a *json.Decoder
}

// run analyzes fd. In summary mode (asSummary), the function's own
// parameters are the taint roots; otherwise taint enters only through the
// in-body sources (strconv parses and JSON decodes).
func (sc *convScan) run(fd *ast.FuncDecl, asSummary bool) {
	sc.taints = map[types.Object]*taintVal{}
	sc.decoders = map[types.Object]bool{}
	if asSummary && fd.Type.Params != nil {
		idx := 0
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if obj := sc.defOf(name); obj != nil {
					sc.taints[obj] = &taintVal{path: name.Name, src: "parameter", param: idx}
				}
				idx++
			}
		}
	}
	if fd.Body != nil {
		sc.walk(fd.Body)
	}
}

func (sc *convScan) defOf(id *ast.Ident) types.Object {
	if sc.pkg.Info == nil {
		return nil
	}
	return sc.pkg.Info.Defs[id]
}

func (sc *convScan) objOf(id *ast.Ident) types.Object {
	if sc.pkg.Info == nil {
		return nil
	}
	if obj := sc.pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return sc.pkg.Info.Defs[id]
}

// rootOf resolves an expression to its root identifier's object, so that
// selector chains and index expressions inherit their base's taint.
func rootOf(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// taintOf returns the taint record of e's root (nil when untainted) and
// e's rendered path for guard matching. Arithmetic expressions carry the
// taint of their first tainted operand.
func (sc *convScan) taintOf(e ast.Expr) (*taintVal, string) {
	if b, ok := ast.Unparen(e).(*ast.BinaryExpr); ok {
		if tv, p := sc.taintOf(b.X); tv != nil {
			return tv, p
		}
		return sc.taintOf(b.Y)
	}
	id := rootOf(e)
	if id == nil {
		return nil, ""
	}
	obj := sc.objOf(id)
	if obj == nil {
		return nil, ""
	}
	tv := sc.taints[obj]
	if tv == nil {
		return nil, ""
	}
	path := exprPath(ast.Unparen(e))
	if path == "" {
		path = id.Name
	}
	return tv, path
}

// walk dispatches the source-order traversal.
func (sc *convScan) walk(root ast.Node) {
	ast.Inspect(root, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.AssignStmt:
			sc.assign(x)
		case *ast.RangeStmt:
			sc.rangeStmt(x)
		case *ast.BinaryExpr:
			sc.binary(x)
		case *ast.CallExpr:
			sc.call(x)
		case *ast.FuncLit:
			// Closures share the enclosing scope; keep walking so taint and
			// guards inside them are tracked with the same state.
			return true
		}
		return true
	})
}

// assign applies taint kills and propagation for one assignment.
func (sc *convScan) assign(a *ast.AssignStmt) {
	// Multi-value call on the RHS: `n, err := strconv.Atoi(v)`.
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			if src, bits, signed := sc.parseSource(call); src != "" {
				if id, ok := a.Lhs[0].(*ast.Ident); ok {
					if obj := sc.objOf(id); obj != nil {
						sc.taints[obj] = &taintVal{path: id.Name, src: src, param: -1, bits: bits, signedBound: signed}
					}
				}
				return
			}
			// Results of other calls are not tainted; kill stale taint on
			// the reassigned names.
			for _, lhs := range a.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := sc.objOf(id); obj != nil {
						delete(sc.taints, obj)
					}
				}
			}
			return
		}
	}
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, lhs := range a.Lhs {
		rhs := ast.Unparen(a.Rhs[i])
		if call, ok := rhs.(*ast.CallExpr); ok {
			// Single-value source call, decoder construction, a type
			// conversion of a tainted value (the converted value is still
			// client-controlled, now bounded by the destination width), or
			// an ordinary call result (untainted).
			if id, ok := lhs.(*ast.Ident); ok {
				obj := sc.objOf(id)
				if obj == nil {
					continue
				}
				if src, bits, signed := sc.parseSource(call); src != "" {
					sc.taints[obj] = &taintVal{path: id.Name, src: src, param: -1, bits: bits, signedBound: signed}
				} else if path, fn, ok := pkgCall(sc.pkg, call); ok && path == "encoding/json" && fn == "NewDecoder" {
					sc.decoders[obj] = true
				} else if ntv := sc.conversionTaint(call, id.Name); ntv != nil {
					sc.taints[obj] = ntv
				} else {
					delete(sc.taints, obj)
				}
			}
			continue
		}
		tv, srcPath := sc.taintOf(rhs)
		switch target := ast.Unparen(lhs).(type) {
		case *ast.Ident:
			obj := sc.objOf(target)
			if obj == nil {
				continue
			}
			if tv != nil {
				sc.taints[obj] = tv.derive(target.Name, srcPath)
			} else {
				delete(sc.taints, obj)
			}
		default:
			// Writing a tainted value into a field or element taints the
			// container's root (events[i] = Event{...tainted...}).
			if tv == nil {
				// Also catch composite literals holding tainted values.
				if !sc.exprCarriesTaint(rhs) {
					continue
				}
				tv, srcPath = sc.compositeTaint(rhs)
				if tv == nil {
					continue
				}
			}
			if rootID := rootOf(lhs); rootID != nil {
				if obj := sc.objOf(rootID); obj != nil {
					if _, already := sc.taints[obj]; !already {
						sc.taints[obj] = tv.derive(rootID.Name, srcPath)
					}
				}
			}
		}
	}
}

// exprCarriesTaint reports whether any subexpression of e is tainted —
// the composite-literal propagation test.
func (sc *convScan) exprCarriesTaint(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := sc.objOf(id); obj != nil && sc.taints[obj] != nil {
				found = true
			}
		}
		return true
	})
	return found
}

// compositeTaint returns the first taint record found inside e.
func (sc *convScan) compositeTaint(e ast.Expr) (*taintVal, string) {
	var tv *taintVal
	var path string
	ast.Inspect(e, func(n ast.Node) bool {
		if tv != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := sc.objOf(id); obj != nil && sc.taints[obj] != nil {
				tv, path = sc.taints[obj], id.Name
			}
		}
		return true
	})
	return tv, path
}

// rangeStmt taints the iteration value (and map key) when ranging over a
// tainted collection.
func (sc *convScan) rangeStmt(r *ast.RangeStmt) {
	tv, srcPath := sc.taintOf(r.X)
	if tv == nil {
		return
	}
	taintIdent := func(e ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if obj := sc.objOf(id); obj != nil {
			sc.taints[obj] = tv.derive(id.Name, srcPath)
		}
	}
	if r.Value != nil {
		taintIdent(r.Value)
	}
	// The key is client data too when ranging over a map; for slices it is
	// a dense index and stays clean.
	if r.Key != nil && sc.pkg.Info != nil {
		if t := sc.pkg.TypeOf(r.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				taintIdent(r.Key)
			}
		}
	}
}

// binary records guards from ordered comparisons and reports tick
// arithmetic on tainted operands.
func (sc *convScan) binary(b *ast.BinaryExpr) {
	switch b.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ:
		for _, op := range []ast.Expr{b.X, b.Y} {
			if tv, path := sc.taintOf(op); tv != nil {
				tv.markGuarded(path)
			}
		}
	case token.ADD, token.SUB, token.MUL:
		t := sc.pkg.TypeOf(b)
		if t == nil {
			return
		}
		basic, ok := t.Underlying().(*types.Basic)
		if !ok || basic.Kind() != types.Uint64 {
			return
		}
		for _, op := range []ast.Expr{b.X, b.Y} {
			if tv, path := sc.taintOf(op); tv != nil && !tv.guardedAt(path) {
				sc.onHit(op.Pos(), tv, "uint64 tick arithmetic (a wrap moves the target)", nil, op.Pos())
			}
		}
	}
}

// call handles every call-shaped event: taint sources, decoder taint
// writers, validator guards, conversion and make sinks, and summary
// propagation into callees.
func (sc *convScan) call(call *ast.CallExpr) {
	// Type conversion sink: T(v).
	if _, isConv := sc.conversionSink(call); isConv {
		return // reported (or proven safe) inside conversionSink
	}

	// make(T, n[, m]) sink.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" && len(call.Args) >= 2 {
		if _, isBuiltin := sc.objOf(id).(*types.Builtin); isBuiltin || sc.objOf(id) == nil {
			for _, arg := range call.Args[1:] {
				if tv, path := sc.taintOf(arg); tv != nil && !tv.guardedAt(path) {
					sc.onHit(arg.Pos(), tv, "a make() size/capacity (client-sized allocation)", nil, arg.Pos())
				}
			}
			return
		}
	}

	// JSON decode taint writers: json.Unmarshal(b, &v), dec.Decode(&v)
	// on a json.NewDecoder, and module-local helpers that forward a
	// pointer parameter to one of those (decodeBody).
	if sc.decodeTarget(call) {
		return
	}

	// Validator guard: passing a tainted value (or its root) to a
	// function whose name contains valid/check/verify range-checks it.
	calleeName := callName(call)
	if isValidatorName(calleeName) {
		sc.guardArgs(call)
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isValidatorName(sel.Sel.Name) {
		// Method form: v.Validate() guards the receiver.
		if tv, path := sc.taintOf(sel.X); tv != nil {
			tv.markGuarded(path)
		}
		sc.guardArgs(call)
		return
	}

	// Interprocedural: a tainted, unguarded argument whose callee summary
	// says the parameter reaches a sink.
	sc.propagate(call)
}

// guardArgs marks every tainted argument of a validator call guarded.
func (sc *convScan) guardArgs(call *ast.CallExpr) {
	for _, arg := range call.Args {
		if tv, path := sc.taintOf(arg); tv != nil {
			tv.markGuarded(path)
		}
	}
}

// callName renders the called function's bare name.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isValidatorName matches the repo's validator idiom.
func isValidatorName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "valid") || strings.Contains(l, "check") || strings.Contains(l, "verify")
}

// parseSource recognizes strconv parse calls and returns the provenance
// string plus the bitSize bound ParseInt/ParseUint guarantee (0 when
// unbounded).
func (sc *convScan) parseSource(call *ast.CallExpr) (src string, bits int, signed bool) {
	path, fn, ok := pkgCall(sc.pkg, call)
	if !ok || path != "strconv" {
		return "", 0, false
	}
	switch fn {
	case "Atoi":
		return "strconv.Atoi result", 0, true
	case "ParseInt", "ParseUint":
		bits := 0
		if len(call.Args) == 3 {
			if lit, ok := ast.Unparen(call.Args[2]).(*ast.BasicLit); ok && lit.Kind == token.INT {
				if n, err := strconv.Atoi(lit.Value); err == nil {
					bits = n
				}
			}
		}
		return "strconv." + fn + " result", bits, fn == "ParseInt"
	}
	return "", 0, false
}

// decodeTarget recognizes JSON-decode calls and taints the pointed-to
// value: json.Unmarshal(b, &v), (json.NewDecoder(...)).Decode(&v),
// dec.Decode(&v) for a tracked decoder, and module-local helpers whose
// summary marks a pointer parameter as a decode output.
func (sc *convScan) decodeTarget(call *ast.CallExpr) bool {
	taintPtrArg := func(arg ast.Expr) bool {
		un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			return false
		}
		id := rootOf(un.X)
		if id == nil {
			return false
		}
		obj := sc.objOf(id)
		if obj == nil {
			return false
		}
		sc.taints[obj] = &taintVal{path: id.Name, src: "JSON request body", param: -1}
		return true
	}
	if path, fn, ok := pkgCall(sc.pkg, call); ok && path == "encoding/json" && fn == "Unmarshal" && len(call.Args) == 2 {
		return taintPtrArg(call.Args[1])
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Decode" && len(call.Args) == 1 {
		if inner, ok := ast.Unparen(sel.X).(*ast.CallExpr); ok {
			if path, fn, ok := pkgCall(sc.pkg, inner); ok && path == "encoding/json" && fn == "NewDecoder" {
				return taintPtrArg(call.Args[0])
			}
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if obj := sc.objOf(id); obj != nil && sc.decoders[obj] {
				return taintPtrArg(call.Args[0])
			}
		}
	}
	// Module-local decode helpers: any call edge whose callee's decode-out
	// summary marks parameter i taints a pointer argument at i.
	if sc.sums != nil && sc.sums.prog != nil {
		prog := sc.sums.prog
		if fn, _, ok := calleeFunc(sc.pkg, call); ok {
			if callee := prog.FuncAt(fn.Pos()); callee != nil {
				outs := decodeOutParams(prog, callee, map[*FuncNode]bool{})
				hit := false
				for i := range call.Args {
					if outs[i] && i < len(call.Args) && taintPtrArg(call.Args[i]) {
						hit = true
					}
				}
				if hit {
					return true
				}
			}
		}
	}
	return false
}

// decodeOutParams reports which parameters of n are JSON-decode outputs:
// the parameter is passed (directly, or through another decode helper) as
// the decode target of a json Unmarshal/Decode call.
func decodeOutParams(prog *Program, n *FuncNode, visiting map[*FuncNode]bool) map[int]bool {
	if visiting[n] {
		return nil
	}
	visiting[n] = true
	defer delete(visiting, n)

	params := map[types.Object]int{}
	idx := 0
	if n.Decl.Type.Params != nil {
		for _, field := range n.Decl.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if n.Pkg.Info != nil {
					if obj := n.Pkg.Info.Defs[name]; obj != nil {
						params[obj] = idx
					}
				}
				idx++
			}
		}
	}
	out := map[int]bool{}
	mark := func(e ast.Expr) {
		id := rootOf(e)
		if id == nil || n.Pkg.Info == nil {
			return
		}
		if obj := n.Pkg.Info.Uses[id]; obj != nil {
			if i, ok := params[obj]; ok {
				out[i] = true
			}
		}
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, fn, ok := pkgCall(n.Pkg, call); ok && path == "encoding/json" && fn == "Unmarshal" && len(call.Args) == 2 {
			mark(call.Args[1])
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Decode" && len(call.Args) == 1 {
			mark(call.Args[0])
			return true
		}
		// Forwarding through another local decode helper.
		if fn, _, ok := calleeFunc(n.Pkg, call); ok {
			if callee := prog.FuncAt(fn.Pos()); callee != nil && callee != n {
				sub := decodeOutParams(prog, callee, visiting)
				for i := range call.Args {
					if sub[i] {
						mark(call.Args[i])
					}
				}
			}
		}
		return true
	})
	return out
}

// conversionSink checks a type-conversion expression T(v). Returns
// (reported, isConversion).
func (sc *convScan) conversionSink(call *ast.CallExpr) (bool, bool) {
	if sc.pkg.Info == nil || len(call.Args) != 1 {
		return false, false
	}
	tval, ok := sc.pkg.Info.Types[call.Fun]
	if !ok || !tval.IsType() {
		return false, false
	}
	dst, dok := basicInt(tval.Type)
	if !dok {
		return false, true
	}
	arg := call.Args[0]
	tv, path := sc.taintOf(arg)
	if tv == nil || tv.guardedAt(path) {
		return false, true
	}
	// The argument's type: a known integer, or unresolved (Invalid) when
	// the value came through a stubbed stdlib call (strconv results) — the
	// taint record still knows its provenance and any bitSize bound.
	var src *types.Basic
	if srcType := sc.pkg.TypeOf(arg); srcType != nil {
		if s, ok := basicInt(srcType); ok {
			src = s
		} else if b, ok := srcType.Underlying().(*types.Basic); !ok || b.Kind() != types.Invalid {
			return false, true // a resolved non-integer: not an integer conversion
		}
	}
	if convSafe(src, dst, tv) {
		return false, true
	}
	srcName := "parsed integer"
	if src != nil {
		srcName = src.Name()
	}
	sc.onHit(arg.Pos(), tv,
		fmt.Sprintf("a %s → %s conversion (overflow wraps or aliases)", srcName, dst.Name()), nil, arg.Pos())
	return true, true
}

// conversionTaint returns the taint record for newName when call is an
// integer type conversion of a tainted value: the result stays
// client-controlled, bounded by the destination's width and signedness
// (the conversion itself was already judged by conversionSink).
func (sc *convScan) conversionTaint(call *ast.CallExpr, newName string) *taintVal {
	if sc.pkg.Info == nil || len(call.Args) != 1 {
		return nil
	}
	tval, ok := sc.pkg.Info.Types[call.Fun]
	if !ok || !tval.IsType() {
		return nil
	}
	dst, ok := basicInt(tval.Type)
	if !ok {
		return nil
	}
	tv, path := sc.taintOf(call.Args[0])
	if tv == nil {
		return nil
	}
	ntv := tv.derive(newName, path)
	ntv.bits, ntv.signedBound = intWidth(dst), intSigned(dst)
	return ntv
}

// basicInt returns t's basic integer form, following named types.
func basicInt(t types.Type) (*types.Basic, bool) {
	basic, ok := t.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 || basic.Info()&types.IsUntyped != 0 {
		return nil, false
	}
	return basic, true
}

// intWidth is the bit width of a basic integer kind (64-bit platform
// assumptions for int/uint/uintptr, matching the serving hosts).
func intWidth(b *types.Basic) int {
	switch b.Kind() {
	case types.Int8, types.Uint8:
		return 8
	case types.Int16, types.Uint16:
		return 16
	case types.Int32, types.Uint32:
		return 32
	default:
		return 64
	}
}

func intSigned(b *types.Basic) bool {
	switch b.Kind() {
	case types.Int, types.Int8, types.Int16, types.Int32, types.Int64:
		return true
	}
	return false
}

// convSafe reports whether converting a tv-tainted value from src to dst
// cannot wrap: widening with identical signedness, or a destination that
// covers the source's proven bitSize bound. src is nil when the source
// type is unresolved (stubbed stdlib); only the bitSize bound applies then.
func convSafe(src, dst *types.Basic, tv *taintVal) bool {
	if src != nil && intSigned(src) == intSigned(dst) && intWidth(dst) >= intWidth(src) {
		return true
	}
	if tv.bits > 0 {
		if intSigned(dst) == tv.signedBound && intWidth(dst) >= tv.bits {
			return true
		}
		// An unsigned bound of b bits fits any signed type wider than b.
		if intSigned(dst) && !tv.signedBound && intWidth(dst) > tv.bits {
			return true
		}
	}
	return false
}

// propagate consults the callee's parameter summary for each tainted,
// unguarded argument and reports the witness chain on a hit.
func (sc *convScan) propagate(call *ast.CallExpr) {
	if sc.sums == nil || sc.sums.prog == nil {
		return
	}
	prog := sc.sums.prog
	fn, _, ok := calleeFunc(sc.pkg, call)
	if !ok {
		return
	}
	callee := prog.FuncAt(fn.Pos())
	if callee == nil || callee.barrier() {
		return
	}
	visiting := sc.visiting
	if visiting == nil {
		visiting = map[*FuncNode]bool{}
	}
	sum := sc.sums.summary(callee, visiting)
	if len(sum) == 0 {
		return
	}
	for i, arg := range call.Args {
		entry, ok := sum[i]
		if !ok {
			continue
		}
		tv, path := sc.taintOf(arg)
		if tv == nil || tv.guardedAt(path) {
			continue
		}
		edge := CallEdge{Pos: call.Pos(), Callee: callee.Decl.Name.Pos(), Name: fn.Name()}
		chain := append([]CallEdge{edge}, entry.chain...)
		sc.onHit(arg.Pos(), tv, entry.sink, chain, entry.pos)
	}
}
