package lint

import (
	"strings"
	"testing"
)

// analyze runs one analyzer over an inline source snippet compiled as
// importPath and returns the surviving diagnostics.
func analyze(t *testing.T, a *Analyzer, importPath, src string) []Diagnostic {
	t.Helper()
	pkg, err := CheckSource(importPath, map[string]string{"fixture.go": src})
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	return Run([]*Package{pkg}, []*Analyzer{a})
}

// expect asserts exactly n findings, all from analyzer name and all
// containing substr.
func expect(t *testing.T, diags []Diagnostic, n int, name, substr string) {
	t.Helper()
	if len(diags) != n {
		t.Fatalf("got %d findings, want %d: %v", len(diags), n, diags)
	}
	for _, d := range diags {
		if d.Analyzer != name {
			t.Fatalf("finding from %q, want %q: %v", d.Analyzer, name, d)
		}
		if !strings.Contains(d.Message, substr) {
			t.Fatalf("finding %q does not mention %q", d.Message, substr)
		}
	}
}

const kernelPath = Module + "/internal/chip"

func TestDetrandPositive(t *testing.T) {
	diags := analyze(t, Detrand(), kernelPath, `
package chip

import "math/rand"

func bad() int { return rand.Intn(4) }
`)
	expect(t, diags, 1, "detrand", "math/rand")
}

func TestDetrandTimeNow(t *testing.T) {
	diags := analyze(t, Detrand(), kernelPath, `
package chip

import "time"

func seed() int64 { return time.Now().UnixNano() }
`)
	expect(t, diags, 1, "detrand", "time.Now")
}

func TestDetrandAliasedImport(t *testing.T) {
	diags := analyze(t, Detrand(), kernelPath, `
package chip

import mr "math/rand/v2"

func bad() int { return mr.IntN(4) }
`)
	expect(t, diags, 1, "detrand", "math/rand/v2")
}

func TestDetrandNegative(t *testing.T) {
	diags := analyze(t, Detrand(), kernelPath, `
package chip

import "truenorth/internal/prng"

// A local method named Now on a non-package value must not trip the
// time.Now check.
type clock struct{}

func (clock) Now() int { return 0 }

func good(seed int64) int {
	var c clock
	return prng.NewRand(seed).Intn(4) + c.Now()
}
`)
	expect(t, diags, 0, "", "")
}

func TestDetrandSkipsNonKernelPackages(t *testing.T) {
	diags := analyze(t, Detrand(), Module+"/internal/apps/lsm", `
package lsm

import "math/rand"

func ok() int { return rand.Intn(4) }
`)
	expect(t, diags, 0, "", "")
}

func TestDetrandAppliesToCommandsAndExamples(t *testing.T) {
	const src = `
package main

import "math/rand"

func main() { _ = rand.Intn(4) }
`
	for _, path := range []string{Module + "/cmd/tnsim", Module + "/examples/cognition"} {
		expect(t, analyze(t, Detrand(), path, src), 1, "detrand", "math/rand")
	}
}

func TestPackagePatternMatching(t *testing.T) {
	a := &Analyzer{Packages: []string{Module + "/internal/chip", Module + "/cmd/..."}}
	for path, want := range map[string]bool{
		Module + "/internal/chip":    true,  // exact entry
		Module + "/internal/neuron":  false, // no entry
		Module + "/cmd":              true,  // pattern root
		Module + "/cmd/tnsim":        true,  // under pattern
		Module + "/cmd/tnsim/sub":    true,  // nested under pattern
		Module + "/cmdextra":         false, // prefix must end at a path boundary
		Module + "/internal/cmdtool": false,
	} {
		if got := a.applies(path); got != want {
			t.Errorf("applies(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestMapOrderPositive(t *testing.T) {
	diags := analyze(t, MapOrder(), kernelPath, `
package chip

func bad(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
`)
	expect(t, diags, 1, "maporder", "append")
}

func TestMapOrderSend(t *testing.T) {
	diags := analyze(t, MapOrder(), kernelPath, `
package chip

func bad(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k
	}
}
`)
	expect(t, diags, 1, "maporder", "channel send")
}

func TestMapOrderNegative(t *testing.T) {
	diags := analyze(t, MapOrder(), kernelPath, `
package chip

// Commutative aggregation over a map is order-independent: no finding.
func good(m map[int]int, xs []int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	for _, x := range xs { // range over a slice may append freely
		xs = append(xs, x)
	}
	return total
}
`)
	expect(t, diags, 0, "", "")
}

const arithPath = Module + "/internal/energy"

func TestFloatCmpPositive(t *testing.T) {
	diags := analyze(t, FloatCmp(), arithPath, `
package energy

func bad(a, b float64) bool { return a == b }
`)
	expect(t, diags, 1, "floatcmp", "floating-point")
}

func TestFloatCmpNamedTypeAndNeq(t *testing.T) {
	diags := analyze(t, FloatCmp(), arithPath, `
package energy

type volts float32

func bad(a, b volts) bool { return a != b }
`)
	expect(t, diags, 1, "floatcmp", "!=")
}

func TestFloatCmpNegative(t *testing.T) {
	diags := analyze(t, FloatCmp(), arithPath, `
package energy

// Integer equality and float-vs-literal-zero guards are fine.
func good(n int, p float64) float64 {
	if n == 3 || p == 0 {
		return 0
	}
	return 1 / p
}
`)
	expect(t, diags, 0, "", "")
}

const compassPath = Module + "/internal/compass"

func TestTickSafeGoroutineOutsideCompass(t *testing.T) {
	diags := analyze(t, TickSafe(), kernelPath, `
package chip

func bad() {
	go func() {}()
}
`)
	expect(t, diags, 1, "ticksafe", "sanctioned only in the Compass engine")
}

func TestTickSafeNoCompletionSignal(t *testing.T) {
	diags := analyze(t, TickSafe(), compassPath, `
package compass

func bad() {
	go func() { println("fire and forget") }()
}
`)
	expect(t, diags, 1, "ticksafe", "completion signal")
}

func TestTickSafeSharedWrite(t *testing.T) {
	diags := analyze(t, TickSafe(), compassPath, `
package compass

import "sync"

type engine struct {
	outputs []int
	perWorker [][]int
}

func (e *engine) step(workers int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.outputs = append(e.outputs, w) // race: not per-worker indexed
		}(w)
	}
	wg.Wait()
}
`)
	expect(t, diags, 1, "ticksafe", "data race")
}

func TestTickSafeWorkerPatternNegative(t *testing.T) {
	diags := analyze(t, TickSafe(), compassPath, `
package compass

import "sync"

type engine struct {
	perWorker [][]int
	total     int
}

// The sanctioned pattern: wg-managed inline workers writing only their own
// indexed slot or worker-local state, plus a channel-closed collector.
func (e *engine) step(workers int, ch chan int) {
	done := make(chan struct{})
	go func() {
		sum := 0
		for v := range ch {
			sum += v
		}
		e.total = sum
		close(done)
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := 0
			local++
			e.perWorker[w] = append(e.perWorker[w], local)
		}(w)
	}
	wg.Wait()
	close(ch)
	<-done
}
`)
	expect(t, diags, 0, "", "")
}

func TestSuppressionDirective(t *testing.T) {
	diags := analyze(t, Detrand(), kernelPath, `
package chip

import "time"

func measured() int64 {
	//lint:ignore tnlint/detrand benchmarking wall time is the point here
	return time.Now().UnixNano()
}
`)
	expect(t, diags, 0, "", "")
}

func TestSuppressionSameLine(t *testing.T) {
	diags := analyze(t, Detrand(), kernelPath, `
package chip

import "time"

func measured() int64 {
	return time.Now().UnixNano() //lint:ignore tnlint/detrand timing harness
}
`)
	expect(t, diags, 0, "", "")
}

func TestSuppressionWrongAnalyzerDoesNotApply(t *testing.T) {
	diags := analyze(t, Detrand(), kernelPath, `
package chip

import "time"

func measured() int64 {
	//lint:ignore tnlint/maporder wrong analyzer name
	return time.Now().UnixNano()
}
`)
	expect(t, diags, 1, "detrand", "time.Now")
}

func TestSuppressionWithoutReasonIsAFinding(t *testing.T) {
	diags := analyze(t, Detrand(), kernelPath, `
package chip

import "time"

func measured() int64 {
	//lint:ignore tnlint/detrand
	return time.Now().UnixNano()
}
`)
	// The malformed directive is reported and does not suppress.
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2 (malformed directive + original): %v", len(diags), diags)
	}
	if diags[0].Analyzer != "ignore" || !strings.Contains(diags[0].Message, "malformed") {
		t.Fatalf("first finding should be the malformed directive: %v", diags[0])
	}
	if diags[1].Analyzer != "detrand" {
		t.Fatalf("second finding should be the unsuppressed detrand: %v", diags[1])
	}
}

func TestDiagnosticFormat(t *testing.T) {
	diags := analyze(t, Detrand(), kernelPath, `
package chip

import "math/rand"

var _ = rand.Int
`)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1", len(diags))
	}
	if got := diags[0].String(); got != "fixture.go:4: detrand: kernel package imports math/rand; use truenorth/internal/prng with an explicit seed" {
		t.Fatalf("diagnostic format = %q", got)
	}
}
