package lint

import (
	"strings"
	"testing"
)

// Detection behavior is pinned by the want-comment fixtures under
// testdata/<analyzer>/ (see fixture_test.go). This file tests the
// framework itself: package-pattern matching, suppression directives,
// diagnostic formatting, and JSON output.

// analyze runs one analyzer over an inline source snippet compiled as
// importPath and returns the surviving diagnostics.
func analyze(t *testing.T, a *Analyzer, importPath, src string) []Diagnostic {
	t.Helper()
	pkg, err := CheckSource(importPath, map[string]string{"fixture.go": src})
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	return Run([]*Package{pkg}, []*Analyzer{a})
}

// expect asserts exactly n findings, all from analyzer name and all
// containing substr.
func expect(t *testing.T, diags []Diagnostic, n int, name, substr string) {
	t.Helper()
	if len(diags) != n {
		t.Fatalf("got %d findings, want %d: %v", len(diags), n, diags)
	}
	for _, d := range diags {
		if d.Analyzer != name {
			t.Fatalf("finding from %q, want %q: %v", d.Analyzer, name, d)
		}
		if !strings.Contains(d.Message, substr) {
			t.Fatalf("finding %q does not mention %q", d.Message, substr)
		}
	}
}

const kernelPath = Module + "/internal/chip"

func TestAnalyzersSuite(t *testing.T) {
	want := []string{
		"detrand", "maporder", "floatcmp", "ticksafe",
		"hotalloc", "locksafe", "goctx", "chanown",
		"lockorder", "chanflow", "wgsafe", "atomicmix",
		"apienvelope", "wiretag", "boundconv",
	}
	all := Analyzers()
	if len(all) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run", a.Name)
		}
	}
}

func TestPackagePatternMatching(t *testing.T) {
	a := &Analyzer{Packages: []string{Module + "/internal/chip", Module + "/cmd/..."}}
	for path, want := range map[string]bool{
		Module + "/internal/chip":    true,  // exact entry
		Module + "/internal/neuron":  false, // no entry
		Module + "/cmd":              true,  // pattern root
		Module + "/cmd/tnsim":        true,  // under pattern
		Module + "/cmd/tnsim/sub":    true,  // nested under pattern
		Module + "/cmdextra":         false, // prefix must end at a path boundary
		Module + "/internal/cmdtool": false,
	} {
		if got := a.applies(path); got != want {
			t.Errorf("applies(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestSuppressionDirective(t *testing.T) {
	diags := analyze(t, Detrand(), kernelPath, `
package chip

import "time"

func measured() int64 {
	//lint:ignore tnlint/detrand benchmarking wall time is the point here
	return time.Now().UnixNano()
}
`)
	expect(t, diags, 0, "", "")
}

func TestSuppressionSameLine(t *testing.T) {
	diags := analyze(t, Detrand(), kernelPath, `
package chip

import "time"

func measured() int64 {
	return time.Now().UnixNano() //lint:ignore tnlint/detrand timing harness
}
`)
	expect(t, diags, 0, "", "")
}

func TestSuppressionWrongAnalyzerDoesNotApply(t *testing.T) {
	diags := analyze(t, Detrand(), kernelPath, `
package chip

import "time"

func measured() int64 {
	//lint:ignore tnlint/maporder wrong analyzer name
	return time.Now().UnixNano()
}
`)
	expect(t, diags, 1, "detrand", "time.Now")
}

func TestSuppressionWithoutReasonIsAFinding(t *testing.T) {
	diags := analyze(t, Detrand(), kernelPath, `
package chip

import "time"

func measured() int64 {
	//lint:ignore tnlint/detrand
	return time.Now().UnixNano()
}
`)
	// The malformed directive is reported and does not suppress.
	if len(diags) != 2 {
		t.Fatalf("got %d findings, want 2 (malformed directive + original): %v", len(diags), diags)
	}
	if diags[0].Analyzer != "ignore" || !strings.Contains(diags[0].Message, "malformed") {
		t.Fatalf("first finding should be the malformed directive: %v", diags[0])
	}
	if diags[1].Analyzer != "detrand" {
		t.Fatalf("second finding should be the unsuppressed detrand: %v", diags[1])
	}
}

func TestSuppressionOfNewAnalyzers(t *testing.T) {
	diags := analyze(t, HotAlloc(), kernelPath, `
package chip

func Step(n int) {
	//lint:ignore tnlint/hotalloc ablation arm pays per-tick costs on purpose
	buf := make([]int, n)
	_ = buf
}
`)
	expect(t, diags, 0, "", "")
}

func TestDiagnosticFormat(t *testing.T) {
	diags := analyze(t, Detrand(), kernelPath, `
package chip

import "math/rand"

var _ = rand.Int
`)
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1", len(diags))
	}
	if got := diags[0].String(); got != "fixture.go:4: detrand: kernel package imports math/rand; use truenorth/internal/prng with an explicit seed" {
		t.Fatalf("diagnostic format = %q", got)
	}
}

func TestWriteJSON(t *testing.T) {
	diags := analyze(t, Detrand(), kernelPath, `
package chip

import "math/rand"

var _ = rand.Int
`)
	var sb strings.Builder
	if err := WriteJSON(&sb, diags, func(f string) string { return "rel/" + f }); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		`"file": "rel/fixture.go"`,
		`"line": 4`,
		`"analyzer": "detrand"`,
		`"message": "kernel package imports math/rand`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("JSON output missing %q:\n%s", want, got)
		}
	}
}

func TestWriteJSONEmptyIsArray(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, nil, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(sb.String()) != "[]" {
		t.Fatalf("clean run must encode as an empty array, got %q", sb.String())
	}
}
