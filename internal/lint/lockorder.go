package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// LockOrder returns the whole-program lock-ordering analyzer for the
// concurrency packages. Per-function lock-acquisition summaries propagate
// through the call graph: holding lock A (directly or via a deferred
// unlock) while acquiring lock B — in the same body or anywhere down the
// call chain — adds the edge A → B to a global lock-order graph over the
// program's named mutexes (struct-field locks like serve.Server.mu,
// package-level locks like sim.registryMu). Any cycle in that graph is a
// potential deadlock: two goroutines entering the cycle from different
// points block each other forever, and no test is guaranteed to catch it
// because the interleaving is timing-dependent. Each edge on a cycle is a
// finding, reported at its witness (the acquisition, or the call that
// leads to it) with the full call chain.
//
// The acyclic graph itself is reviewable output: the golden test in
// lockorder_golden_test.go pins it under testdata/lockorder/, so a new
// edge in the lock hierarchy shows up in review like a perfproof budget
// change. Go-spawned code contributes no edges to its spawner (a goroutine
// holds its own locks); locks the analyzer cannot name (locals, unresolved
// receivers) never become graph nodes.
func LockOrder() *Analyzer {
	graphs := map[*Program]*LockGraph{}
	return &Analyzer{
		Name:     "lockorder",
		Doc:      "propagate lock-acquisition order through the call graph and forbid cycles (potential deadlocks)",
		Packages: ConcurrencyPackages,
		Run: func(pkg *Package, report ReportFunc) {
			prog := pkg.Prog
			if prog == nil {
				return
			}
			g, ok := graphs[prog]
			if !ok {
				g = NewLockGraph(prog, ConcurrencyPackages)
				graphs[prog] = g
			}
			for _, e := range g.CycleEdges() {
				if e.Fn.Pkg != pkg {
					continue
				}
				report(e.Pos(), "acquiring %s while %s is held completes a lock-order cycle (%s); a concurrent acquisition in cycle order deadlocks — witness: %s",
					e.To, e.From, g.cycleString(e), e.witness(pkg.Fset))
			}
		},
	}
}

// LockEdge is one ordered pair in the lock-order graph: To was acquired
// while From was held, in Fn's body (Chain empty) or through the calls in
// Chain starting from Fn.
type LockEdge struct {
	From, To string
	Fn       *FuncNode
	Chain    []CallEdge // call chain from Fn to the acquiring function
	AcqPos   token.Pos  // position of the To acquisition
}

// Pos is where the edge is reported: the call site in Fn for propagated
// edges, the acquisition itself for direct ones.
func (e *LockEdge) Pos() token.Pos {
	if len(e.Chain) > 0 {
		return e.Chain[0].Pos
	}
	return e.AcqPos
}

// witness renders the edge's evidence: "g → h: Lock (file:line)" for a
// propagated edge, "Lock (file:line)" for a direct one.
func (e *LockEdge) witness(fset *token.FileSet) string {
	var sb strings.Builder
	for i, c := range e.Chain {
		if i > 0 {
			sb.WriteString(" → ")
		}
		sb.WriteString(c.Name)
	}
	if len(e.Chain) > 0 {
		sb.WriteString(": ")
	}
	pos := fset.Position(e.AcqPos)
	fmt.Fprintf(&sb, "%s acquired at %s:%d", e.To, filepath.Base(pos.Filename), pos.Line)
	return sb.String()
}

// via renders the stable (line-number-free) provenance used in the golden:
// the walked function plus the call chain.
func (e *LockEdge) via() string {
	parts := []string{e.Fn.Name()}
	for _, c := range e.Chain {
		parts = append(parts, c.Name)
	}
	return strings.Join(parts, " → ")
}

// LockGraph is the global lock-order graph: every named mutex acquired in
// the target packages, and every ordered acquisition pair observed in or
// reachable from their function bodies.
type LockGraph struct {
	Locks []string
	Edges []*LockEdge

	scc map[string]int // lock → strongly-connected-component id
}

// lockAcq is one entry of a function's transitive acquisition summary.
type lockAcq struct {
	pos   token.Pos
	chain []CallEdge
}

// lockGraphBuilder accumulates summaries and edges over one program.
type lockGraphBuilder struct {
	prog  *Program
	memo  map[*FuncNode]map[string]lockAcq
	locks map[string]bool
	edges map[[2]string]*LockEdge
}

// NewLockGraph builds the lock-order graph over every program package
// matching targets. Functions outside the target packages contribute no
// edges of their own but their acquisition summaries propagate into the
// targets' call sites.
func NewLockGraph(prog *Program, targets []string) *LockGraph {
	b := &lockGraphBuilder{
		prog:  prog,
		memo:  map[*FuncNode]map[string]lockAcq{},
		locks: map[string]bool{},
		edges: map[[2]string]*LockEdge{},
	}
	for _, pkg := range prog.Packages() {
		if !pathMatches(targets, pkg.Path) {
			continue
		}
		prog.Funcs(pkg, func(n *FuncNode) { b.walk(pkg, n) })
	}
	g := &LockGraph{}
	for l := range b.locks {
		g.Locks = append(g.Locks, l)
	}
	sort.Strings(g.Locks)
	for _, e := range b.edges {
		g.Edges = append(g.Edges, e)
	}
	sort.Slice(g.Edges, func(i, j int) bool {
		a, c := g.Edges[i], g.Edges[j]
		if a.From != c.From {
			return a.From < c.From
		}
		return a.To < c.To
	})
	g.computeSCC()
	return g
}

// walk generates the edges arising in one function body.
func (b *lockGraphBuilder) walk(pkg *Package, n *FuncNode) {
	walkHeld(pkg, n,
		func(key string, pos token.Pos, held map[string]token.Pos) {
			if strings.HasPrefix(key, localLockPrefix) {
				return
			}
			b.locks[key] = true
			for h := range held {
				if !strings.HasPrefix(h, localLockPrefix) {
					b.addEdge(h, key, n, nil, pos)
				}
			}
		},
		func(e CallEdge, held map[string]token.Pos) {
			callee := b.prog.FuncAt(e.Callee)
			if callee == nil {
				return
			}
			for key, acq := range b.acquires(callee, map[*FuncNode]bool{}) {
				for h := range held {
					if !strings.HasPrefix(h, localLockPrefix) {
						chain := append([]CallEdge{e}, acq.chain...)
						b.addEdge(h, key, n, chain, acq.pos)
					}
				}
			}
		})
}

// addEdge records an edge, keeping the earliest witness for determinism.
func (b *lockGraphBuilder) addEdge(from, to string, fn *FuncNode, chain []CallEdge, acqPos token.Pos) {
	b.locks[from] = true
	b.locks[to] = true
	edge := &LockEdge{From: from, To: to, Fn: fn, Chain: chain, AcqPos: acqPos}
	key := [2]string{from, to}
	if old, ok := b.edges[key]; !ok || edge.Pos() < old.Pos() {
		b.edges[key] = edge
	}
}

// acquires returns the transitive acquisition summary of one function:
// every named lock the function (or anything it synchronously calls)
// acquires, with the earliest witness chain. Go-spawned callees are
// excluded — their acquisitions happen on another goroutine. Cycles in the
// call graph conservatively stop the recursion.
func (b *lockGraphBuilder) acquires(n *FuncNode, visiting map[*FuncNode]bool) map[string]lockAcq {
	if got, ok := b.memo[n]; ok {
		return got
	}
	if visiting[n] {
		return nil
	}
	visiting[n] = true
	defer delete(visiting, n)

	out := map[string]lockAcq{}
	merge := func(key string, acq lockAcq) {
		if old, ok := out[key]; !ok || acq.pos < old.pos {
			out[key] = acq
		}
	}
	for _, site := range directAcquires(n) {
		merge(site.key, lockAcq{pos: site.pos})
	}
	for _, e := range n.Calls {
		if e.InGo {
			continue
		}
		callee := b.prog.FuncAt(e.Callee)
		if callee == nil {
			continue
		}
		for key, acq := range b.acquires(callee, visiting) {
			merge(key, lockAcq{pos: acq.pos, chain: append([]CallEdge{e}, acq.chain...)})
		}
	}
	if len(visiting) == 1 {
		// Memoize only at the outermost frame: inner results computed
		// under a cycle guard may be incomplete (same rule as taint).
		b.memo[n] = out
	}
	return out
}

// acquireSite is one named-lock acquisition in a function body.
type acquireSite struct {
	key string
	pos token.Pos
}

// directAcquires lists the named locks n's own body acquires, excluding
// go-spawned func literals (their acquisitions belong to the goroutine).
func directAcquires(n *FuncNode) []acquireSite {
	var sites []acquireSite
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.GoStmt:
			if _, ok := x.Call.Fun.(*ast.FuncLit); ok {
				return false
			}
		case *ast.CallExpr:
			if _, op, ok := mutexOp(x); ok && (op == "Lock" || op == "RLock") {
				sel := x.Fun.(*ast.SelectorExpr)
				if key := lockKey(n.Pkg, sel.X); key != "" {
					sites = append(sites, acquireSite{key: key, pos: x.Pos()})
				}
			}
		}
		return true
	})
	return sites
}

// computeSCC runs Tarjan's strongly-connected-components algorithm over
// the edge set; edges inside one multi-node component (or self-loops) are
// the cycle edges.
func (g *LockGraph) computeSCC() {
	adj := map[string][]string{}
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	g.scc = map[string]int{}
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next, comp := 0, 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				g.scc[w] = comp
				if w == v {
					break
				}
			}
			comp++
		}
	}
	for _, l := range g.Locks {
		if _, seen := index[l]; !seen {
			strongconnect(l)
		}
	}
}

// CycleEdges returns the edges participating in a lock-order cycle: edges
// whose endpoints share a strongly connected component, including
// self-loops (re-acquiring a held lock through a call chain).
func (g *LockGraph) CycleEdges() []*LockEdge {
	sccSize := map[int]int{}
	for _, c := range g.scc {
		sccSize[c]++
	}
	var out []*LockEdge
	for _, e := range g.Edges {
		if e.From == e.To || (g.scc[e.From] == g.scc[e.To] && sccSize[g.scc[e.From]] > 1) {
			out = append(out, e)
		}
	}
	return out
}

// cycleString renders the lock cycle an edge participates in, starting at
// the lexically smallest member: "A → B → A".
func (g *LockGraph) cycleString(e *LockEdge) string {
	if e.From == e.To {
		return e.From + " → " + e.To
	}
	var members []string
	for _, l := range g.Locks {
		if g.scc[l] == g.scc[e.From] {
			members = append(members, l)
		}
	}
	sort.Strings(members)
	return strings.Join(append(members, members[0]), " → ")
}

// Render emits the reviewable hierarchy report checked in as the lockorder
// golden: every named lock, then every edge with its (line-number-free)
// witness provenance, both sorted. Line numbers are deliberately absent so
// the golden only changes when the lock structure does.
func (g *LockGraph) Render() string {
	var sb strings.Builder
	sb.WriteString("# tnlint lockorder hierarchy\n")
	sb.WriteString("# nodes: named mutexes acquired in runtime/serve/compass/sim\n")
	sb.WriteString("# edge \"A -> B via F\": F acquires B while holding A — review new edges\n")
	sb.WriteString("# like perfproof budgets; cycles fail tnlint outright\n")
	for _, l := range g.Locks {
		fmt.Fprintf(&sb, "lock %s\n", l)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&sb, "edge %s -> %s via %s\n", e.From, e.To, e.via())
	}
	return sb.String()
}
