package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages of this module from disk. It is
// deliberately self-contained (stdlib only): module-internal imports are
// type-checked recursively from source, while stdlib and any other external
// imports are stubbed with empty packages and the checker runs in
// error-tolerant mode. Analyzers therefore see real types for everything
// declared inside the module — which is what the determinism invariants are
// about — without tnlint needing go/packages or export data.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	pkgs    map[string]*Package
	typs    map[string]*types.Package
	stubs   map[string]*types.Package
	loading map[string]bool
}

// NewLoader locates the enclosing module of dir (by walking up to go.mod)
// and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		data, err := os.ReadFile(filepath.Join(root, "go.mod"))
		if err == nil {
			modPath := ""
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					modPath = strings.TrimSpace(rest)
					break
				}
			}
			if modPath == "" {
				return nil, fmt.Errorf("lint: no module directive in %s/go.mod", root)
			}
			return &Loader{
				Fset:       token.NewFileSet(),
				ModuleRoot: root,
				ModulePath: modPath,
				pkgs:       map[string]*Package{},
				typs:       map[string]*types.Package{},
				stubs:      map[string]*types.Package{},
				loading:    map[string]bool{},
			}, nil
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(importPath string) string {
	rel := strings.TrimPrefix(importPath, l.ModulePath)
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(rel, "/")))
}

// AllImportPaths walks the module and returns the import path of every
// directory holding at least one non-test Go file, sorted.
func (l *Loader) AllImportPaths() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		if files, _ := goSources(p); len(files) > 0 {
			rel, err := filepath.Rel(l.ModuleRoot, p)
			if err != nil {
				return err
			}
			ip := l.ModulePath
			if rel != "." {
				ip = l.ModulePath + "/" + filepath.ToSlash(rel)
			}
			paths = append(paths, ip)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

// goSources lists the non-test .go files of dir, sorted.
func goSources(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// Load parses and type-checks the package at importPath (cached).
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	dir := l.dirFor(importPath)
	sources, err := goSources(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", importPath, err)
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("lint: %s: no Go files in %s", importPath, dir)
	}
	var files []*ast.File
	for _, src := range sources {
		f, err := parser.ParseFile(l.Fset, src, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)
	pkg, tpkg := check(l.Fset, importPath, files, l)
	l.pkgs[importPath] = pkg
	l.typs[importPath] = tpkg
	return pkg, nil
}

// Loaded returns every package the loader has parsed and type-checked so
// far, sorted by import path — the explicitly requested targets plus every
// module-internal dependency pulled in to resolve their types. Passing this
// as RunWithContext's context makes interprocedural analysis whole-module
// without loading anything twice.
func (l *Loader) Loaded() []*Package {
	paths := make([]string, 0, len(l.pkgs))
	for p := range l.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		out = append(out, l.pkgs[p])
	}
	return out
}

// Import implements types.Importer: module-internal packages are loaded for
// real; everything else (stdlib, hypothetical external deps) gets an empty
// stub, and the error-tolerant checker shrugs off the unresolved members.
func (l *Loader) Import(path string) (*types.Package, error) {
	internal := path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
	if internal && !l.loading[path] {
		if _, err := l.Load(path); err == nil {
			return l.typs[path], nil
		}
	}
	return stubPackage(l.stubs, path), nil
}

// stubPackage returns (caching in stubs) an empty, complete package whose
// name is the final path element — enough for the checker to resolve the
// import and record ident uses as *types.PkgName.
func stubPackage(stubs map[string]*types.Package, path string) *types.Package {
	if p, ok := stubs[path]; ok {
		return p
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	stubs[path] = p
	return p
}

// check type-checks files in error-tolerant mode and packages the result.
func check(fset *token.FileSet, importPath string, files []*ast.File, imp types.Importer) (*Package, *types.Package) {
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{
		Importer:                 imp,
		Error:                    func(error) {}, // tolerate stubbed imports
		FakeImportC:              true,
		DisableUnusedImportCheck: true,
	}
	tpkg, _ := conf.Check(importPath, fset, files, info)
	return &Package{Path: importPath, Fset: fset, Files: files, Info: info}, tpkg
}

// stubImporter resolves every import to an empty stub — the fixture-test
// configuration, where snippets only import packages by name.
type stubImporter map[string]*types.Package

func (s stubImporter) Import(path string) (*types.Package, error) {
	return stubPackage(s, path), nil
}

// CheckSource parses and type-checks in-memory sources as one package —
// the entry point for analyzer fixture tests. files maps filename to
// source text.
func CheckSource(importPath string, files map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var names []string
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	var parsed []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, files[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	pkg, _ := check(fset, importPath, parsed, stubImporter{})
	return pkg, nil
}

// memLoader type-checks a closed set of in-memory packages that may import
// each other; imports outside the set fall back to stubs. It is the
// multi-package analogue of CheckSource for interprocedural fixtures.
type memLoader struct {
	fset    *token.FileSet
	sources map[string]map[string]string
	pkgs    map[string]*Package
	typs    map[string]*types.Package
	stubs   map[string]*types.Package
	loading map[string]bool
}

func (m *memLoader) load(importPath string) (*Package, error) {
	if p, ok := m.pkgs[importPath]; ok {
		return p, nil
	}
	files := m.sources[importPath]
	var names []string
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	var parsed []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(m.fset, name, files[name], parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	m.loading[importPath] = true
	defer delete(m.loading, importPath)
	pkg, tpkg := check(m.fset, importPath, parsed, m)
	m.pkgs[importPath] = pkg
	m.typs[importPath] = tpkg
	return pkg, nil
}

// Import implements types.Importer over the in-memory set.
func (m *memLoader) Import(path string) (*types.Package, error) {
	if _, ok := m.sources[path]; ok && !m.loading[path] {
		if _, err := m.load(path); err == nil {
			return m.typs[path], nil
		}
	}
	return stubPackage(m.stubs, path), nil
}

// CheckPackages parses and type-checks a set of in-memory packages sharing
// one FileSet, resolving imports between them for real (everything else is
// stubbed). sources maps import path → filename → source text; packages
// come back sorted by import path, ready for RunWithContext.
func CheckPackages(sources map[string]map[string]string) ([]*Package, error) {
	m := &memLoader{
		fset:    token.NewFileSet(),
		sources: sources,
		pkgs:    map[string]*Package{},
		typs:    map[string]*types.Package{},
		stubs:   map[string]*types.Package{},
		loading: map[string]bool{},
	}
	var paths []string
	for p := range sources {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := m.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
