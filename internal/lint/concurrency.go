package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ConcurrencyPackages are the goroutine-heavy packages the whole-program
// concurrency analyzers (lockorder, chanflow, wgsafe) gate: the session
// driver, the HTTP serving layer, the parallel Compass engine, and the
// engine registry. The scale-out roadmap items (sharded engines, batched
// session scheduling) all land inside this set.
var ConcurrencyPackages = []string{
	Module + "/internal/runtime",
	Module + "/internal/serve",
	Module + "/internal/compass",
	Module + "/internal/sim",
}

// pathMatches reports whether path is in patterns, honoring the same
// trailing-/... wildcard Analyzer.Packages uses.
func pathMatches(patterns []string, path string) bool {
	return (&Analyzer{Packages: patterns}).applies(path)
}

// pkgBase returns the last element of an import path — the unit lock and
// field identities are rendered in ("serve.Server.mu", "sim.registryMu").
func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// namedTypeOf strips a pointer and returns t's *types.Named, or nil.
func namedTypeOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// localLockPrefix marks held-set keys for locks without a canonical name
// (locals, unresolved receivers). They count as "a lock is held" for the
// blocking checks but never become lock-order graph nodes.
const localLockPrefix = "#"

// lockKey canonicalizes the mutex expression of a .Lock()/.RLock() call
// into a program-wide identity: "pkg.Type.field" for a struct-field mutex,
// "pkg.var" for a package-level one. Locks that resolve to neither (locals,
// type info missing) return "".
func lockKey(pkg *Package, mutex ast.Expr) string {
	switch e := ast.Unparen(mutex).(type) {
	case *ast.SelectorExpr:
		if named := namedTypeOf(pkg.TypeOf(e.X)); named != nil && named.Obj() != nil && named.Obj().Pkg() != nil {
			return pkgBase(named.Obj().Pkg().Path()) + "." + named.Obj().Name() + "." + e.Sel.Name
		}
	case *ast.Ident:
		if pkg.Info != nil {
			if v, ok := pkg.Info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return pkgBase(v.Pkg().Path()) + "." + v.Name()
			}
		}
	}
	return ""
}

// heldKey returns the held-set key for a mutex expression: the canonical
// identity when one resolves, otherwise a local pseudo-key from the
// expression path.
func heldKey(pkg *Package, mutex ast.Expr, path string) string {
	if k := lockKey(pkg, mutex); k != "" {
		return k
	}
	return localLockPrefix + path
}

// lockDisplay renders a held-set key for messages, stripping the local
// marker.
func lockDisplay(key string) string {
	return strings.TrimPrefix(key, localLockPrefix)
}

// heldWalker drives a lexical walk of one function body tracking the set
// of held locks, branching into if/for/select arms with a copy of the set
// like locksafe does. Two event callbacks feed the interprocedural
// analyzers:
//
//   - onAcquire fires at each Lock/RLock with the set held *before* the
//     acquisition — the direct lock-order edges.
//   - onCall fires at each resolved module-local call edge made while at
//     least one lock is held (go-spawned edges excluded: the callee runs
//     on its own goroutine with its own relation to the locks).
//
// Deferred unlocks keep the lock in the held set: for ordering and
// blocking purposes a deferred release happens too late to matter. Func
// literals — stored, deferred, or go-spawned — walk as fresh scopes with
// an empty held set; they run with whatever is held at their eventual call
// site, which this lexical walk cannot know.
type heldWalker struct {
	pkg   *Package
	node  *FuncNode
	edges map[token.Pos]CallEdge
	held  map[string]token.Pos

	onAcquire func(key string, pos token.Pos, held map[string]token.Pos)
	onCall    func(e CallEdge, held map[string]token.Pos)
}

// walkHeld runs the held-lock walk over one function node.
func walkHeld(
	pkg *Package, node *FuncNode,
	onAcquire func(key string, pos token.Pos, held map[string]token.Pos),
	onCall func(e CallEdge, held map[string]token.Pos),
) {
	w := &heldWalker{
		pkg: pkg, node: node,
		edges:     map[token.Pos]CallEdge{},
		held:      map[string]token.Pos{},
		onAcquire: onAcquire, onCall: onCall,
	}
	for _, e := range node.Calls {
		if !e.InGo {
			w.edges[e.Pos] = e
		}
	}
	w.walkBlock(node.Decl.Body)
}

func (w *heldWalker) fresh() *heldWalker {
	c := *w
	c.held = map[string]token.Pos{}
	return &c
}

func (w *heldWalker) clone() *heldWalker {
	c := *w
	c.held = make(map[string]token.Pos, len(w.held))
	for k, v := range w.held {
		c.held[k] = v
	}
	return &c
}

func (w *heldWalker) walkBlock(b *ast.BlockStmt) {
	for _, s := range b.List {
		w.walkStmt(s)
	}
}

func (w *heldWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.walkBlock(s)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	case *ast.ExprStmt:
		if path, op, ok := mutexOp(s.X); ok {
			w.applyMutexOp(s.X.(*ast.CallExpr), path, op, s.Pos())
			return
		}
		w.scanExpr(s.X)
	case *ast.DeferStmt:
		if _, op, ok := mutexOp(s.Call); ok && strings.HasSuffix(op, "Unlock") {
			return // deferred release: the lock stays held for this walk
		}
		for _, a := range s.Call.Args {
			w.scanExpr(a)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.fresh().walkBlock(fl.Body)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(e)
		}
		for _, e := range s.Lhs {
			w.scanExpr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(e)
		}
	case *ast.SendStmt:
		w.scanExpr(s.Chan)
		w.scanExpr(s.Value)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.scanExpr(s.Cond)
		w.clone().walkBlock(s.Body)
		if s.Else != nil {
			w.clone().walkStmt(s.Else)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Cond != nil {
			w.scanExpr(s.Cond)
		}
		body := w.clone()
		body.walkBlock(s.Body)
		if s.Post != nil {
			body.walkStmt(s.Post)
		}
	case *ast.RangeStmt:
		w.scanExpr(s.X)
		w.clone().walkBlock(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		if s.Tag != nil {
			w.scanExpr(s.Tag)
		}
		w.walkCases(s.Body)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init)
		}
		w.walkCases(s.Body)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			arm := w.clone()
			if cc.Comm != nil {
				arm.walkStmt(cc.Comm)
			}
			for _, bs := range cc.Body {
				arm.walkStmt(bs)
			}
		}
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			w.scanExpr(a)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.fresh().walkBlock(fl.Body)
		}
	default:
		if s != nil {
			ast.Inspect(s, func(n ast.Node) bool {
				if e, ok := n.(ast.Expr); ok {
					w.scanExpr(e)
					return false
				}
				return true
			})
		}
	}
}

func (w *heldWalker) walkCases(body *ast.BlockStmt) {
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		arm := w.clone()
		for _, e := range cc.List {
			arm.scanExpr(e)
		}
		for _, bs := range cc.Body {
			arm.walkStmt(bs)
		}
	}
}

func (w *heldWalker) applyMutexOp(call *ast.CallExpr, path, op string, pos token.Pos) {
	sel := call.Fun.(*ast.SelectorExpr) // mutexOp guarantees the shape
	key := heldKey(w.pkg, sel.X, path)
	switch op {
	case "Lock", "RLock":
		if w.onAcquire != nil {
			w.onAcquire(key, pos, w.held)
		}
		w.held[key] = pos
	case "Unlock", "RUnlock":
		delete(w.held, key)
	}
}

// scanExpr scans one expression for call edges made while locks are held.
// Func literals are fresh scopes.
func (w *heldWalker) scanExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.fresh().walkBlock(n.Body)
			return false
		case *ast.CallExpr:
			if edge, ok := w.edges[n.Pos()]; ok && len(w.held) > 0 && w.onCall != nil {
				w.onCall(edge, w.held)
			}
		}
		return true
	})
}
