package lint

import (
	"go/ast"
	"strings"
)

// Detrand returns the determinism-of-randomness analyzer. Kernel packages
// must draw every random choice from truenorth/internal/prng with an
// explicitly plumbed seed: math/rand (v1 or v2) is banned outright — its
// stream is not part of this repo's reproducibility contract and changes
// across Go releases — and time.Now is banned because tick-domain code that
// reads the wall clock (for seeding or for logic) cannot be replayed.
//
// With call-graph context (RunWithContext), detrand also taints through
// helpers: a function in a core kernel package (the explicitly listed
// entries of KernelPackages, not the cmd/... and examples/... wildcards,
// whose mains may time things legitimately) that calls a module helper
// which draws from math/rand or reads time.Now is reported at the call
// site with the witness chain. Callees in packages detrand checks directly
// are skipped — their own bodies already carry the finding.
func Detrand() *Analyzer {
	return &Analyzer{
		Name:     "detrand",
		Doc:      "forbid math/rand, time.Now, and clock-derived seeding in kernel packages",
		Packages: KernelPackages,
		Run:      runDetrand,
	}
}

func runDetrand(pkg *Package, report ReportFunc) {
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				report(imp.Pos(), "kernel package imports %s; use truenorth/internal/prng with an explicit seed", path)
			}
		}
		timeName := importedName(f, "time")
		if timeName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if isPkgSelector(pkg, sel, timeName, "Now") {
				report(call.Pos(), "kernel package calls time.Now; tick-domain state must not depend on the wall clock")
			}
			return true
		})
	}
	if pkg.Prog == nil || !explicitKernelPackage(pkg.Path) {
		return
	}
	detrandApplies := Detrand().applies
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := pkg.Prog.FuncAt(fd.Name.Pos())
			if fn == nil {
				continue
			}
			for _, t := range pkg.Prog.CallTaints(fn, HazardRand, func(callee *FuncNode) bool {
				return detrandApplies(callee.Pkg.Path)
			}) {
				report(t.Chain[0].Pos, "call to %s reaches nondeterminism from a kernel package: %s",
					t.Chain[0].Name, t.Describe(pkg.Fset))
			}
		}
	}
}

// explicitKernelPackage reports whether path is one of the explicitly
// listed kernel packages (not matched via a /... wildcard).
func explicitKernelPackage(path string) bool {
	for _, p := range KernelPackages {
		if p == path {
			return true
		}
	}
	return false
}
