package lint

import (
	"go/ast"
	"strings"
)

// Detrand returns the determinism-of-randomness analyzer. Kernel packages
// must draw every random choice from truenorth/internal/prng with an
// explicitly plumbed seed: math/rand (v1 or v2) is banned outright — its
// stream is not part of this repo's reproducibility contract and changes
// across Go releases — and time.Now is banned because tick-domain code that
// reads the wall clock (for seeding or for logic) cannot be replayed.
func Detrand() *Analyzer {
	return &Analyzer{
		Name:     "detrand",
		Doc:      "forbid math/rand, time.Now, and clock-derived seeding in kernel packages",
		Packages: KernelPackages,
		Run:      runDetrand,
	}
}

func runDetrand(pkg *Package, report ReportFunc) {
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				report(imp.Pos(), "kernel package imports %s; use truenorth/internal/prng with an explicit seed", path)
			}
		}
		timeName := importedName(f, "time")
		if timeName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if isPkgSelector(pkg, sel, timeName, "Now") {
				report(call.Pos(), "kernel package calls time.Now; tick-domain state must not depend on the wall clock")
			}
			return true
		})
	}
}
