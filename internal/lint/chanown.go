package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ChanOwn returns the channel-ownership analyzer for the serving packages.
// Go's channel rules are asymmetric — close is an owner-only operation,
// send-after-close panics, and a bare send on an unbuffered channel parks
// the sender until a receiver shows up. In a paced tick loop the last one
// is the killer PR 3's starvation fix dealt with: a parked sender inside
// the loop stops the clock for every session behind it. Three rules:
//
//  1. Owner-only close: closing a channel received as a parameter (or
//     typed receive-only) closes someone else's channel — the owner may be
//     mid-send. The creator closes; everyone else stops sending.
//  2. No send after close: a send lexically after a close of the same
//     channel in the same function panics at runtime.
//  3. No bare blocking send on a known-unbuffered channel: a send outside
//     a select arm, on a channel whose in-package make(chan T) has no
//     capacity, can park the sending loop forever. Use a buffered channel,
//     or a select with a default/shutdown arm (the session runtime's
//     subscriber fan-out and command pattern both do). Channels whose
//     construction the analyzer cannot see stay quiet — a caller-provided
//     channel's capacity is the caller's contract.
//
// Rule 2 is lexical (straight-line order, per function); rules 1 and 3
// correlate channels by terminal name, the same unit hotalloc uses for
// buffer resets.
func ChanOwn() *Analyzer {
	return &Analyzer{
		Name:     "chanown",
		Doc:      "enforce owner-only close, no send-after-close, and no bare sends on unbuffered channels",
		Packages: ServingPackages,
		Run:      runChanOwn,
	}
}

func runChanOwn(pkg *Package, report ReportFunc) {
	fieldMakes := collectFieldChanMakes(pkg)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkChanOwnership(pkg, fd, fieldMakes, report)
		}
	}
}

// chanBuf records what is known about a channel's capacity: buffered,
// unbuffered, or (when the same name is made both ways) unknown.
type chanBuf int

const (
	chanUnknown chanBuf = iota
	chanUnbuffered
	chanBuffered
)

// mergeChanBuf folds another observed make into the knowledge for a name.
// Conflicting observations degrade to buffered — the quiet side — because a
// name shared by a buffered and an unbuffered channel identifies neither.
func mergeChanBuf(old, new chanBuf) chanBuf {
	if old == chanUnknown || old == new {
		return new
	}
	return chanBuffered
}

// chanMakeBuf classifies a make(chan ...) call; ok is false for non-channel
// makes.
func chanMakeBuf(call *ast.CallExpr) (chanBuf, bool) {
	id, isIdent := call.Fun.(*ast.Ident)
	if !isIdent || id.Name != "make" || len(call.Args) == 0 {
		return chanUnknown, false
	}
	if _, isChan := call.Args[0].(*ast.ChanType); !isChan {
		return chanUnknown, false
	}
	if len(call.Args) < 2 || isIntLit(call.Args[1], "0") {
		return chanUnbuffered, true
	}
	return chanBuffered, true
}

// collectFieldChanMakes scans the package for channel makes assigned to
// selector targets (struct fields: s.cmds = make(chan func())), keyed by
// terminal name — fields outlive the function that makes them, so sends
// anywhere in the package correlate with them.
func collectFieldChanMakes(pkg *Package) map[string]chanBuf {
	makes := map[string]chanBuf{}
	record := func(lhs, rhs ast.Expr) {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return
		}
		buf, ok := chanMakeBuf(call)
		if !ok {
			return
		}
		if _, isIdent := lhs.(*ast.Ident); isIdent {
			return // locals are collected per function
		}
		if name := terminalName(lhs); name != "" {
			makes[name] = mergeChanBuf(makes[name], buf)
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i < len(n.Lhs) {
						record(n.Lhs[i], rhs)
					}
				}
			case *ast.KeyValueExpr:
				// Composite-literal field init: subscriber{ch: make(...)}.
				if key, ok := n.Key.(*ast.Ident); ok {
					if call, isCall := n.Value.(*ast.CallExpr); isCall {
						if buf, isChan := chanMakeBuf(call); isChan {
							makes[key.Name] = mergeChanBuf(makes[key.Name], buf)
						}
					}
				}
			}
			return true
		})
	}
	return makes
}

// collectLocalChanMakes maps local variable names to their channel make
// within one function body.
func collectLocalChanMakes(body *ast.BlockStmt) map[string]chanBuf {
	makes := map[string]chanBuf{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			id, isIdent := as.Lhs[i].(*ast.Ident)
			if !isIdent {
				continue
			}
			if call, isCall := rhs.(*ast.CallExpr); isCall {
				if buf, isChan := chanMakeBuf(call); isChan {
					makes[id.Name] = mergeChanBuf(makes[id.Name], buf)
				}
			}
		}
		return true
	})
	return makes
}

// collectChanParams returns the names of channel-typed parameters of fd and
// of every func literal inside it — the channels this code does not own.
func collectChanParams(fd *ast.FuncDecl) map[string]bool {
	params := map[string]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if _, isChan := field.Type.(*ast.ChanType); !isChan {
				continue
			}
			for _, name := range field.Names {
				params[name.Name] = true
			}
		}
	}
	addFields(fd.Type.Params)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			addFields(fl.Type.Params)
		}
		return true
	})
	return params
}

// checkChanOwnership applies the three rules to one function.
func checkChanOwnership(pkg *Package, fd *ast.FuncDecl, fieldMakes map[string]chanBuf, report ReportFunc) {
	locals := collectLocalChanMakes(fd.Body)
	params := collectChanParams(fd)
	closed := map[string]token.Pos{} // terminal name → first close position

	// Sends appearing as a select comm clause are guarded: they cannot park
	// the sender unconditionally.
	guarded := map[*ast.SendStmt]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, isComm := c.(*ast.CommClause); isComm {
				if send, isSend := cc.Comm.(*ast.SendStmt); isSend {
					guarded[send] = true
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			id, ok := n.Fun.(*ast.Ident)
			if !ok || id.Name != "close" || len(n.Args) != 1 {
				return true
			}
			arg := n.Args[0]
			name := terminalName(arg)
			if name == "" {
				return true
			}
			if params[name] && locals[name] == chanUnknown {
				report(n.Pos(), "close of channel parameter %q: only the owning creator closes a channel", name)
			} else if ch, isChan := chanTypeOf(pkg, arg); isChan && ch.Dir() == types.RecvOnly {
				report(n.Pos(), "close of receive-only channel %q: the receiving side never owns the close", name)
			}
			if _, already := closed[name]; !already {
				closed[name] = n.Pos()
			}
		case *ast.SendStmt:
			name := terminalName(n.Chan)
			if name == "" {
				return true
			}
			if pos, wasClosed := closed[name]; wasClosed && n.Pos() > pos {
				report(n.Pos(), "send on %q after it was closed above; send-after-close panics", name)
				return true
			}
			if guarded[n] {
				return true
			}
			buf := locals[name]
			if buf == chanUnknown {
				buf = fieldMakes[name]
			}
			if buf == chanUnbuffered {
				report(n.Pos(), "bare send on unbuffered channel %q can park this goroutine forever; buffer the channel or send under a select with a default/shutdown arm", name)
			}
		}
		return true
	})
}

// chanTypeOf returns e's channel type when type info resolves it.
func chanTypeOf(pkg *Package, e ast.Expr) (*types.Chan, bool) {
	t := pkg.TypeOf(e)
	if t == nil {
		return nil, false
	}
	ch, ok := t.Underlying().(*types.Chan)
	return ch, ok
}
