package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// APIEnvelopePackages is the serving surface whose error contract
// apienvelope pins.
var APIEnvelopePackages = []string{Module + "/internal/serve"}

// APIEnvelope returns the error-envelope contract analyzer for the serving
// package. The v1 API promises one error shape — the JSON envelope
// {"error":{code,message}} with nine stable codes — and one code↔status
// mapping, declared once in the package-level codeStatus registry. The
// analyzer enforces that promise at every site:
//
//   - every writeError call passes a registered code constant, and the
//     status expression at the call site matches the registry entry for
//     that code — the mapping cannot fork per call site;
//   - every (status, code) return pair built from constants (the
//     statusCodeOf shape) is consistent with the registry too;
//   - every package-level "code*" string constant is a registry key, so a
//     code cannot be declared and then drift out of the documented table;
//   - no handler writes a raw http.Error — that emits text/plain, not the
//     envelope;
//   - no function except writeJSON calls WriteHeader — committing a status
//     outside the envelope writer bypasses the contract (streaming
//     endpoints that intentionally commit 200 before a non-JSON body carry
//     a reasoned //lint:ignore).
//
// The stdlib is stubbed under this loader, so http.Status* constants have
// no values here; statuses are compared by their rendered expression
// ("http.StatusBadRequest"), which also keeps the diagnostics readable.
func APIEnvelope() *Analyzer {
	return &Analyzer{
		Name:     "apienvelope",
		Doc:      "error responses go through writeError with a registered code; code↔status mapping matches the codeStatus registry everywhere",
		Packages: APIEnvelopePackages,
		Run:      runAPIEnvelope,
	}
}

// codeRegistry is the parsed codeStatus map: code constant name → rendered
// status expression, plus per-entry positions for diagnostics and the
// surface extractor.
type codeRegistry struct {
	pos      token.Pos
	statusOf map[string]string    // "codeBusy" → "http.StatusConflict"
	keyPos   map[string]token.Pos // "codeBusy" → its registry-entry position
}

// findCodeRegistry locates the package-level codeStatus map literal.
func findCodeRegistry(pkg *Package) *codeRegistry {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "codeStatus" || i >= len(vs.Values) {
						continue
					}
					cl, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit)
					if !ok {
						continue
					}
					reg := &codeRegistry{
						pos:      name.Pos(),
						statusOf: map[string]string{},
						keyPos:   map[string]token.Pos{},
					}
					for _, elt := range cl.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := ast.Unparen(kv.Key).(*ast.Ident)
						if !ok {
							continue
						}
						reg.statusOf[key.Name] = exprPath(ast.Unparen(kv.Value))
						reg.keyPos[key.Name] = key.Pos()
					}
					return reg
				}
			}
		}
	}
	return nil
}

func runAPIEnvelope(pkg *Package, report ReportFunc) {
	reg := findCodeRegistry(pkg)

	// Pass 1: declarations. Every package-level "code*" string constant
	// must be a registry key.
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "code") || i >= len(vs.Values) {
						continue
					}
					lit, ok := ast.Unparen(vs.Values[i]).(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					if reg == nil {
						report(name.Pos(), "error code %s declared but the package has no codeStatus registry", name.Name)
						continue
					}
					if _, ok := reg.statusOf[name.Name]; !ok {
						report(name.Pos(), "error code %s is not in the codeStatus registry; every stable code must map to exactly one status", name.Name)
					}
				}
			}
		}
	}

	// Pass 2: call and return sites, per enclosing function.
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkEnvelopeBody(pkg, fd, reg, report)
		}
	}
}

// isPkgLevelStringConst reports whether id names a package-level string
// constant of the analyzed package (registered codes are exactly those).
func isPkgLevelStringConst(pkg *Package, id *ast.Ident) bool {
	if pkg.Info == nil {
		return false
	}
	obj, ok := pkg.Info.Uses[id].(*types.Const)
	if !ok {
		return false
	}
	basic, ok := obj.Type().Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// checkEnvelopeBody checks one function body's error-path sites.
func checkEnvelopeBody(pkg *Package, fd *ast.FuncDecl, reg *codeRegistry, report ReportFunc) {
	// (int, string) results make the function a statusCodeOf-shaped
	// mapper: its constant return pairs are mapping sites too.
	mapsStatus := resultsIntString(pkg, fd)

	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			// Raw http.Error bypasses the envelope entirely.
			if path, sel, ok := pkgCall(pkg, x); ok && path == "net/http" && sel == "Error" {
				report(x.Pos(), "http.Error writes text/plain, not the error envelope; use writeError with a registered code")
				return true
			}
			// WriteHeader belongs to writeJSON alone.
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "WriteHeader" &&
				len(x.Args) == 1 && fd.Name.Name != "writeJSON" {
				report(x.Pos(), "WriteHeader outside writeJSON commits a status without the envelope; route the response through writeJSON/writeError")
				return true
			}
			// writeError(w, status, code, msg) sites.
			if name := callName(x); name == "writeError" && len(x.Args) == 4 {
				checkWriteErrorSite(pkg, x, reg, report)
			}
		case *ast.ReturnStmt:
			if mapsStatus && len(x.Results) == 2 {
				checkStatusPair(pkg, x, reg, report)
			}
		}
		return true
	})
}

// resultsIntString reports whether fd's results are exactly (int, string).
func resultsIntString(pkg *Package, fd *ast.FuncDecl) bool {
	res := fd.Type.Results
	if res == nil || len(res.List) != 2 {
		return false
	}
	kind := func(e ast.Expr) string {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			return id.Name
		}
		return ""
	}
	if len(res.List[0].Names) > 1 || len(res.List[1].Names) > 1 {
		return false
	}
	return kind(res.List[0].Type) == "int" && kind(res.List[1].Type) == "string"
}

// checkWriteErrorSite validates one writeError call: registered code,
// registry-consistent status. Pass-through sites whose code is a variable
// (writeErr forwarding statusCodeOf's result) are skipped — the mapper's
// own return pairs are checked instead.
func checkWriteErrorSite(pkg *Package, call *ast.CallExpr, reg *codeRegistry, report ReportFunc) {
	codeExpr := ast.Unparen(call.Args[2])
	codeID, ok := codeExpr.(*ast.Ident)
	if !ok {
		if lit, isLit := codeExpr.(*ast.BasicLit); isLit && lit.Kind == token.STRING {
			report(call.Args[2].Pos(), "writeError code is a string literal %s; use a registered code constant", lit.Value)
		}
		return
	}
	if !isPkgLevelStringConst(pkg, codeID) {
		return // a forwarded variable: the producing mapper is checked at its returns
	}
	if reg == nil {
		report(call.Args[2].Pos(), "writeError uses code %s but the package has no codeStatus registry", codeID.Name)
		return
	}
	wantStatus, registered := reg.statusOf[codeID.Name]
	if !registered {
		report(call.Args[2].Pos(), "writeError code %s is not in the codeStatus registry", codeID.Name)
		return
	}
	gotStatus := exprPath(ast.Unparen(call.Args[1]))
	if gotStatus != "" && gotStatus != wantStatus {
		report(call.Args[1].Pos(), "writeError status %s does not match the codeStatus registry (%s → %s); one code, one status",
			gotStatus, codeID.Name, wantStatus)
	}
}

// checkStatusPair validates one constant (status, code) return pair
// against the registry.
func checkStatusPair(pkg *Package, ret *ast.ReturnStmt, reg *codeRegistry, report ReportFunc) {
	codeExpr := ast.Unparen(ret.Results[1])
	codeID, ok := codeExpr.(*ast.Ident)
	if !ok || !isPkgLevelStringConst(pkg, codeID) {
		return // "" or a computed code: not a mapping declaration
	}
	if reg == nil {
		report(codeID.Pos(), "status mapper returns code %s but the package has no codeStatus registry", codeID.Name)
		return
	}
	wantStatus, registered := reg.statusOf[codeID.Name]
	if !registered {
		report(codeID.Pos(), "status mapper returns unregistered code %s", codeID.Name)
		return
	}
	gotStatus := exprPath(ast.Unparen(ret.Results[0]))
	if gotStatus != "" && gotStatus != wantStatus {
		report(ret.Results[0].Pos(), "status mapper returns %s for code %s but the codeStatus registry says %s",
			gotStatus, codeID.Name, wantStatus)
	}
}
