package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// orderSensitiveMethods are callee names whose invocation order is
// observable in simulator output: spike delivery and injection mutate the
// tick-ordered event stream, and writers emit bytes in call order.
var orderSensitiveMethods = map[string]bool{
	"Deliver": true, "Inject": true, "Emit": true, "AddRow": true,
	"Write": true, "WriteString": true, "WriteByte": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// MapOrder returns the map-iteration-order analyzer. Go randomizes map
// iteration order on purpose, so a range over a map whose body appends to a
// slice, sends on a channel, delivers spikes, or writes output makes the
// result depend on the runtime's per-process hash seed — the exact
// nondeterminism that would silently break chip↔Compass spike-for-spike
// equivalence. The fix is to collect the keys, sort them, and range over
// the sorted slice. Bodies that only do commutative aggregation (counters,
// sums, set inserts) are fine and not flagged.
func MapOrder() *Analyzer {
	return &Analyzer{
		Name:     "maporder",
		Doc:      "forbid range over maps with order-dependent effects in kernel packages",
		Packages: KernelPackages,
		Run:      runMapOrder,
	}
}

func runMapOrder(pkg *Package, report ReportFunc) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pkg.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if effect := orderEffect(rng.Body); effect != "" {
				report(rng.Pos(), "range over map has order-dependent effect (%s); iterate a sorted key slice instead", effect)
			}
			return true
		})
	}
}

// orderEffect returns a description of the first order-sensitive operation
// in body, or "".
func orderEffect(body *ast.BlockStmt) string {
	var effect string
	ast.Inspect(body, func(n ast.Node) bool {
		if effect != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			effect = "channel send"
			return false
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" {
					effect = "append"
					return false
				}
			case *ast.SelectorExpr:
				if orderSensitiveMethods[fun.Sel.Name] {
					effect = fmt.Sprintf("call to %s", fun.Sel.Name)
					return false
				}
			}
		}
		return true
	})
	return effect
}
