package runtime

import "sync"

type reSrv struct {
	mu sync.Mutex
}

// outer holds mu across a call whose callee re-acquires it: a self-edge in
// the lock graph, and a guaranteed single-goroutine deadlock (sync.Mutex
// is not reentrant). The finding sits on the call, with the acquisition as
// witness.
func (s *reSrv) outer() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grab() // want `acquiring runtime.reSrv.mu while runtime.reSrv.mu is held completes a lock-order cycle \(runtime.reSrv.mu → runtime.reSrv.mu\); a concurrent acquisition in cycle order deadlocks — witness: grab: runtime.reSrv.mu acquired at selfdeadlock.go:\d+`
}

func (s *reSrv) grab() {
	s.mu.Lock()
	defer s.mu.Unlock()
}
