package runtime

import "sync"

type cycSrv struct {
	a sync.Mutex
	b sync.Mutex
}

// lockAB establishes a → b …
func (s *cycSrv) lockAB() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock() // want `acquiring runtime.cycSrv.b while runtime.cycSrv.a is held completes a lock-order cycle \(runtime.cycSrv.a → runtime.cycSrv.b → runtime.cycSrv.a\)`
	s.b.Unlock()
}

// … and lockBA establishes b → a: a two-lock cycle. Two goroutines, one in
// each function, deadlock when each holds its first lock.
func (s *cycSrv) lockBA() {
	s.b.Lock()
	defer s.b.Unlock()
	s.a.Lock() // want `acquiring runtime.cycSrv.a while runtime.cycSrv.b is held completes a lock-order cycle`
	s.a.Unlock()
}
