package runtime

import "sync"

type ordSrv struct {
	state sync.Mutex
	out   sync.Mutex
}

// both and again acquire in the same state → out order everywhere: one
// edge, no cycle.
func (s *ordSrv) both() {
	s.state.Lock()
	defer s.state.Unlock()
	s.out.Lock()
	defer s.out.Unlock()
}

func (s *ordSrv) again() {
	s.state.Lock()
	s.out.Lock()
	s.out.Unlock()
	s.state.Unlock()
}

// spawn holds out while a goroutine takes state: the goroutine holds its
// own locks, so this is not an out → state edge and closes no cycle.
func (s *ordSrv) spawn() {
	s.out.Lock()
	defer s.out.Unlock()
	go func() {
		s.state.Lock()
		s.state.Unlock()
	}()
}

// localOnly nests locks the analyzer cannot name; locals never become
// graph nodes.
func localOnly() {
	var mu sync.Mutex
	var other sync.Mutex
	mu.Lock()
	other.Lock()
	other.Unlock()
	mu.Unlock()
}

// released drops state before taking out in the reverse order: no overlap,
// no edge.
func (s *ordSrv) released() {
	s.out.Lock()
	s.out.Unlock()
	s.state.Lock()
	s.state.Unlock()
}
