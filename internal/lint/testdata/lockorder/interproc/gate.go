//lintfixture:package truenorth/internal/serve
package serve

import (
	"sync"

	"truenorth/internal/runtime"
)

type Gate struct {
	mu sync.Mutex
}

// lockThenCall holds serve.Gate.mu and reaches runtime.Box.Mu through two
// calls into the other package: Gate.mu → Box.Mu.
func (g *Gate) lockThenCall(b *runtime.Box) {
	g.mu.Lock()
	defer g.mu.Unlock()
	runtime.Grab(b) // want `acquiring runtime.Box.Mu while serve.Gate.mu is held completes a lock-order cycle \(runtime.Box.Mu → serve.Gate.mu → runtime.Box.Mu\); a concurrent acquisition in cycle order deadlocks — witness: Grab → grabInner: runtime.Box.Mu acquired at box.go:\d+`
}

// reversed takes the opposite order directly: Box.Mu → Gate.mu, completing
// a cross-package cycle.
func (g *Gate) reversed(b *runtime.Box) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	g.mu.Lock() // want `acquiring serve.Gate.mu while runtime.Box.Mu is held completes a lock-order cycle`
	g.mu.Unlock()
}
