//lintfixture:package truenorth/internal/runtime
package runtime

import "sync"

// Box carries an exported mutex another package orders against.
type Box struct {
	Mu sync.Mutex
}

// Grab reaches the Box.Mu acquisition one call deeper — the edge witness
// must carry the whole chain.
func Grab(b *Box) {
	grabInner(b)
}

func grabInner(b *Box) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
}
