package runtime

type worker struct {
	jobs    chan int
	done    chan struct{}
	closing bool
	n       int
}

func (w *worker) badForever() {
	go func() {
		for { // want `no shutdown arm`
			v := <-w.jobs
			w.n += v
		}
	}()
}

// A select arm on a done channel makes the loop shutdown-aware.
func (w *worker) goodSelect() {
	go func() {
		for {
			select {
			case v := <-w.jobs:
				w.n += v
			case <-w.done:
				return
			}
		}
	}()
}

// `go w.loop()` resolves to the method; its condition loop terminates when
// the closing flag flips.
func (w *worker) goodFlag() {
	go w.loop()
}

func (w *worker) loop() {
	for !w.closing {
		w.n++
	}
}

// Range over a channel ends when the owner closes it.
func (w *worker) goodRange() {
	go func() {
		for v := range w.jobs {
			w.n += v
		}
	}()
}

// A closing-flag check inside the loop body also counts.
func (w *worker) goodBodyCheck() {
	go func() {
		for {
			if w.closing {
				return
			}
			w.n++
		}
	}()
}
