//lintfixture:package truenorth/internal/compass
package compass

func bad() {
	go func() { println("fire and forget") }() // want `no completion signal`
}
