//lintfixture:package truenorth/internal/core
package core

import "truenorth/internal/spawnutil"

// compute launches goroutines through helpers one and two calls away; a
// kernel that spawns through an intermediary is still spawning.
func compute() {
	spawnutil.Parallel() // want `call to Parallel launches a goroutine from kernel package`
	spawnutil.Nested()   // want `call to Nested launches a goroutine from kernel package`
}
