//lintfixture:package truenorth/internal/spawnutil
package spawnutil

// Parallel launches a goroutine one call from the kernel. This package is
// outside the kernel set, so the direct rule stays silent here and the
// finding lands at the kernel's call site.
func Parallel() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// Nested spawns two calls from the kernel.
func Nested() { helper() }

func helper() {
	ch := make(chan struct{})
	go func() { close(ch) }()
	<-ch
}
