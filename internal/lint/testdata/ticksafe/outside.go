package chip

// Goroutines anywhere but the Compass engine break the single-threaded
// tick-accuracy contract.
func bad() {
	go func() {}() // want `sanctioned only in the Compass engine`
}
