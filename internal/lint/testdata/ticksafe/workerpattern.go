//lintfixture:package truenorth/internal/compass
package compass

import "sync"

type engine2 struct {
	perWorker [][]int
	total     int
}

// The sanctioned pattern: wg-managed inline workers writing only their own
// indexed slot or worker-local state, plus a channel-closed collector.
// No findings.
func (e *engine2) step(workers int, ch chan int) {
	done := make(chan struct{})
	go func() {
		sum := 0
		for v := range ch {
			sum += v
		}
		e.total = sum
		close(done)
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := 0
			local++
			e.perWorker[w] = append(e.perWorker[w], local)
		}(w)
	}
	wg.Wait()
	close(ch)
	<-done
}
