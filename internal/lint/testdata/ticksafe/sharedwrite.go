//lintfixture:package truenorth/internal/compass
package compass

import "sync"

type engine struct {
	outputs   []int
	perWorker [][]int
}

func (e *engine) step(workers int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e.outputs = append(e.outputs, w) // want `data race`
		}(w)
	}
	wg.Wait()
}
