//lintfixture:package truenorth/internal/serve
package serve

import (
	"encoding/json"

	"truenorth/internal/codec"
)

type injectEvent struct {
	X int `json:"x"`
	Y int `json:"y"`
}

func handleInject(body []byte) []int32 {
	var events []injectEvent
	if err := json.Unmarshal(body, &events); err != nil {
		return nil
	}
	ids := make([]int32, 0, len(events))
	for _, e := range events {
		ids = append(ids, codec.Pack(e.X, e.Y)) // want `via (codec\.)?Pack` `via (codec\.)?Pack`
	}
	return ids
}

func handleInjectChecked(body []byte) []int32 {
	var events []injectEvent
	if err := json.Unmarshal(body, &events); err != nil {
		return nil
	}
	ids := make([]int32, 0, len(events))
	for _, e := range events {
		if !codec.CheckAddress(e.X, e.Y) {
			continue
		}
		ids = append(ids, codec.Pack(e.X, e.Y)) // validated above: clean
	}
	return ids
}
