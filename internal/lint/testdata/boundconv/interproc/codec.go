//lintfixture:package truenorth/internal/codec
package codec

const coordBits = 12

// Pack packs a coordinate pair into an event id; the uint32 conversions
// mask silently, so callers must validate the range first.
func Pack(x, y int) int32 {
	return int32(uint32(x)<<coordBits | uint32(y))
}

// CheckAddress reports whether the pair packs without aliasing.
func CheckAddress(x, y int) bool {
	return x >= 0 && x < 1<<coordBits && y >= 0 && y < 1<<coordBits
}
