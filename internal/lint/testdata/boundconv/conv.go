package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
)

type runRequest struct {
	Ticks int    `json:"ticks"`
	Until uint64 `json:"until"`
}

func atoiUnguarded(q string) uint64 {
	n, _ := strconv.Atoi(q)
	return uint64(n) // want `parsed integer → uint64 conversion`
}

func atoiGuarded(q string) uint64 {
	n, err := strconv.Atoi(q)
	if err != nil || n < 0 {
		return 0
	}
	return uint64(n) // guarded above: clean
}

func makeSize(q string) []int {
	n, _ := strconv.Atoi(q)
	return make([]int, n) // want `a make\(\) size/capacity`
}

func tickTarget(r *http.Request, now uint64) uint64 {
	var req runRequest
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		return 0
	}
	return now + req.Until // want `uint64 tick arithmetic`
}

func tickGuarded(r *http.Request, now uint64) uint64 {
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return 0
	}
	if req.Until > 1<<40 {
		return 0
	}
	return now + req.Until // guarded above: clean
}

func sizeFromBody(r *http.Request) []int32 {
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil
	}
	return make([]int32, req.Ticks) // want `a make\(\) size/capacity`
}

// checkRun is a validator by name: passing the request through it counts
// as a range guard on everything it was handed.
func checkRun(req *runRequest) bool {
	return req.Ticks >= 0 && req.Until < 1<<40
}

func validated(r *http.Request) uint64 {
	var req runRequest
	if err := json.Unmarshal(nil, &req); err != nil {
		return 0
	}
	if !checkRun(&req) {
		return 0
	}
	return uint64(req.Ticks) // validated above: clean
}

func parseID(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 10, 32)
	if err != nil {
		return 0, err
	}
	return int32(v), nil // ParseInt bitSize 32 bounds the value: clean
}

func parseTick(s string) int {
	v, _ := strconv.ParseUint(s, 10, 64)
	return int(v) // want `parsed integer → int conversion`
}
