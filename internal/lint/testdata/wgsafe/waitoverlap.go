package runtime

import "sync"

type batch struct {
	wg sync.WaitGroup
}

// overlap parks Wait on a goroutine while the spawner keeps Adding: two
// uses of the counter overlap, which the WaitGroup contract forbids.
func (b *batch) overlap() {
	b.wg.Add(1)
	go func() { // want `goroutine calls b.wg.Wait while b.wg.Add continues after the go statement; overlapping uses of a WaitGroup race the counter`
		b.wg.Wait()
	}()
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
	}()
	go func() {
		defer b.wg.Done()
	}()
}
