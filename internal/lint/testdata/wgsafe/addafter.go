package runtime

import "sync"

type pool struct {
	wg sync.WaitGroup
}

// spawnThenAdd reverses the protocol: the goroutine can run and Done
// before the Add lands, so Wait may observe zero and return early.
func (p *pool) spawnThenAdd() {
	go func() { // want `goroutine calls p.wg.Done but no p.wg.Add precedes the go statement`
		defer p.wg.Done()
	}()
	p.wg.Add(1)
	p.wg.Wait()
}

// addFirst is the protocol held.
func (p *pool) addFirst() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
	}()
	p.wg.Wait()
}
