//lintfixture:package truenorth/internal/runtime
package runtime

import (
	"sync"

	"truenorth/internal/serve"
)

// forgotAdd hands wg to a spawning helper without paying the Add first:
// the helper's goroutine can Done before this caller ever Adds.
func forgotAdd() {
	var wg sync.WaitGroup
	serve.Spawn(&wg) // want `call to Spawn spawns a goroutine that calls wg.Done, but no wg.Add precedes the call; Add must happen-before the spawn`
	wg.Add(1)
	wg.Wait()
}

// withAdd pays the debt before the spawn.
func withAdd() {
	var wg sync.WaitGroup
	wg.Add(1)
	serve.Spawn(&wg)
	wg.Wait()
}
