//lintfixture:package truenorth/internal/serve
package serve

import "sync"

// Spawn starts a worker that Dones wg when finished; the Add debt stays
// with the caller — the helper cannot know how many workers the caller
// accounts for.
func Spawn(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
	}()
}
