package runtime

import "sync"

// forkJoin is the compass Step shape: Add before each spawn, Done inside,
// Wait at the barrier. The protocol held — no findings.
func forkJoin(workers int) {
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

type span struct{}

func (s *span) Done() {}

// finish Dones a tracer span on a goroutine: Done without any WaitGroup
// pairing is not WaitGroup protocol and stays silent.
func finish(s *span) {
	go func() {
		defer s.Done()
	}()
}
