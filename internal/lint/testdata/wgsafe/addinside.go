package runtime

import "sync"

// fanOut Adds from inside the waited goroutine: Wait races the Add and may
// return while the nested worker is still being spawned.
func fanOut() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wg.Add(1) // want `wg.Add from inside a spawned goroutine races Wait; hoist the Add before the go statement`
		go func() {
			defer wg.Done()
		}()
	}()
	wg.Wait()
}
