package serve

import "net/http"

const codeLost = "lost_code" // want `no codeStatus registry`

func writeError(w http.ResponseWriter, status int, code, msg string) {}

func lost(w http.ResponseWriter) {
	writeError(w, http.StatusBadRequest, codeLost, "nowhere to check") // want `no codeStatus registry`
}
