package serve

import "net/http"

const (
	codeFine     = "fine_code"
	codeAlsoFine = "also_fine_code"
)

var codeStatus = map[string]int{
	codeFine:     http.StatusBadRequest,
	codeAlsoFine: http.StatusNotFound,
}

func writeError(w http.ResponseWriter, status int, code, msg string) {}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status)
}

func handleThing(w http.ResponseWriter) {
	writeError(w, http.StatusBadRequest, codeFine, "bad input")
	writeError(w, http.StatusNotFound, codeAlsoFine, "no such thing")
}

func mapThing(lost bool) (int, string) {
	if lost {
		return http.StatusNotFound, codeAlsoFine
	}
	return http.StatusBadRequest, codeFine
}
