package serve

import "net/http"

const (
	codeOK      = "ok_code"
	codeMissing = "missing_code" // want `not in the codeStatus registry`
)

var codeStatus = map[string]int{
	codeOK: http.StatusOK,
}

func writeError(w http.ResponseWriter, status int, code, msg string) {}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status) // writeJSON is the one place WriteHeader belongs
}

func good(w http.ResponseWriter) {
	writeError(w, http.StatusOK, codeOK, "consistent with the registry")
}

func wrongStatus(w http.ResponseWriter) {
	writeError(w, http.StatusBadRequest, codeOK, "drifted") // want `does not match the codeStatus registry`
}

func literalCode(w http.ResponseWriter) {
	writeError(w, http.StatusOK, "raw_code", "unregistered") // want `string literal`
}

func rawError(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `text/plain, not the error envelope`
}

func rawHeader(w http.ResponseWriter) {
	w.WriteHeader(http.StatusTeapot) // want `WriteHeader outside writeJSON`
}

func statusCodeOf(err error) (int, string) {
	if err == nil {
		return http.StatusOK, codeOK
	}
	return http.StatusBadRequest, codeOK // want `status mapper returns http.StatusBadRequest for code codeOK`
}

func forwarded(w http.ResponseWriter, err error) {
	status, code := statusCodeOf(err)
	writeError(w, status, code, err.Error()) // pass-through: the mapper is checked at its returns
}
