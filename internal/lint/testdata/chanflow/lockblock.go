package runtime

import (
	"sync"
	"time"
)

type pipeSrv struct {
	mu sync.Mutex
	ch chan int
}

// emit holds mu across a helper whose body sends: locksafe cannot see it
// (the send is in another function), chanflow's taint walk can.
func (s *pipeSrv) emit() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.push(1) // want `mutex runtime.pipeSrv.mu is held across the call to push, which may block: push: a channel send \(lockblock.go:\d+\)`
}

func (s *pipeSrv) push(v int) {
	s.ch <- v
}

// slowPath reaches a time.Sleep two calls down.
func (s *pipeSrv) slowPath() {
	s.mu.Lock()
	s.nap() // want `mutex runtime.pipeSrv.mu is held across the call to nap, which may block: nap → snooze: time.Sleep \(lockblock.go:\d+\)`
	s.mu.Unlock()
}

func (s *pipeSrv) nap()    { s.snooze() }
func (s *pipeSrv) snooze() { time.Sleep(time.Millisecond) }

// afterUnlock calls the same blocking helper with the lock released: fine.
func (s *pipeSrv) afterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.push(2)
}

// spawn hands the helper to a goroutine: it blocks its own goroutine, not
// the lock holder.
func (s *pipeSrv) spawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.push(3)
}
