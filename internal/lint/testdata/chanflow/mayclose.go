package runtime

type feed struct {
	out chan int
}

// producer sends on a field that shutdown closes; if the close wins the
// race the send panics.
func (f *feed) producer(v int) {
	f.out <- v // want `send on channel field .out., which feed.shutdown closes \(mayclose.go:\d+\)`
}

func (f *feed) shutdown() {
	close(f.out)
}

// closeAgain is a second close site for the same field: the later site
// cites the earlier one.
func (f *feed) closeAgain() {
	close(f.out) // want `channel field .out. is closed here and in feed.shutdown \(mayclose.go:\d+\)`
}
