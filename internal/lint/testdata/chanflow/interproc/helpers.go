//lintfixture:package truenorth/internal/serve
package serve

// Shut closes its channel parameter one call deeper; delegating a close
// through it is still a close site of the caller's channel.
func Shut(ch chan int) {
	stop(ch)
}

func stop(ch chan int) {
	close(ch)
}

// Push sends; a caller holding a lock across it stalls every goroutine
// wanting that lock.
func Push(ch chan int, v int) {
	ch <- v
}
