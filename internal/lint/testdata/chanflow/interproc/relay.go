//lintfixture:package truenorth/internal/runtime
package runtime

import (
	"sync"

	"truenorth/internal/serve"
)

type relay struct {
	mu sync.Mutex
	ch chan int
}

// teardown delegates the close of r.ch across the package boundary …
func (r *relay) teardown() {
	serve.Shut(r.ch)
}

// … so a second direct close is a double close, with the delegation chain
// in the citation.
func (r *relay) closeDirect() {
	close(r.ch) // want `channel field .ch. is closed here and in relay.teardown \(relay.go:\d+\)`
}

// … and sends elsewhere race the delegated close.
func (r *relay) send(v int) {
	r.ch <- v // want `send on channel field .ch., which relay.teardown closes via Shut → stop \(relay.go:\d+\)`
}

// blocked holds the lock across a cross-package blocking helper.
func (r *relay) blocked() {
	r.mu.Lock()
	defer r.mu.Unlock()
	serve.Push(r.ch, 1) // want `mutex runtime.relay.mu is held across the call to Push, which may block: Push: a channel send \(helpers.go:\d+\)`
}
