package runtime

import "sync"

type okFeed struct {
	mu  sync.Mutex
	out chan int
}

// run sends and closes in one body: the lexical send-before-close order is
// chanown's domain, and a single close site is the ownership ideal.
func (f *okFeed) run() {
	f.out <- 1
	close(f.out)
}

// local channels stay chanown's lexical business.
func localChan() {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
}

// calm helpers do not block; holding the lock across them is fine.
func (f *okFeed) update() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.compute(2)
}

func (f *okFeed) compute(v int) int { return v * v }
