package chip

func bad(m map[int]string) []string {
	var out []string
	for _, v := range m { // want `order-dependent effect \(append\)`
		out = append(out, v)
	}
	return out
}
