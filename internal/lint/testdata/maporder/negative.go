package chip

// Commutative aggregation over a map is order-independent, and ranging
// over a slice may append freely: no findings.
func good(m map[int]int, xs []int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	for _, x := range xs {
		xs = append(xs, x)
	}
	return total
}
