package chip

func badSend(m map[int]int, ch chan int) {
	for k := range m { // want `order-dependent effect \(channel send\)`
		ch <- k
	}
}
