package runtime

func badParamClose(ch chan int) {
	close(ch) // want `close of channel parameter`
}

type owner struct {
	ch chan int
}

// The creator closes its own channel: no finding.
func (o *owner) goodClose() {
	close(o.ch)
}

func badSendAfterClose() {
	ch := make(chan int, 4)
	close(ch)
	ch <- 1 // want `after it was closed`
}

func badRecvOnlyClose(o *owner) {
	var ch <-chan int = o.ch
	close(ch) // want `close of receive-only channel`
}
