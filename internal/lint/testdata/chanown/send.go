package runtime

type pump struct {
	cmds chan int
	buf  chan int
}

func newPump() *pump {
	return &pump{cmds: make(chan int), buf: make(chan int, 8)}
}

func (p *pump) badBareSend() {
	p.cmds <- 1 // want `bare send on unbuffered channel`
}

func badLocalSend() {
	ch := make(chan int)
	ch <- 1 // want `bare send on unbuffered channel`
}

// A buffered channel absorbs the send: no finding.
func (p *pump) goodBuffered() {
	p.buf <- 1
}

// A select arm cannot park the loop unconditionally: no finding.
func (p *pump) goodSelect(done chan struct{}) {
	select {
	case p.cmds <- 1:
	case <-done:
	}
}

// A caller-provided channel's capacity is the caller's contract: quiet.
func goodUnknown(ch chan int) {
	ch <- 1
}
