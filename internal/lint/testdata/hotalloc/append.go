package chip

type eng struct {
	outputs []int
	reused  []int
	outbox  [][]int
}

func (e *eng) Run(xs []int) {
	for _, x := range xs {
		e.outputs = append(e.outputs, x) // want `never reslice-reused`
		// reused is reset with [:0] in drain: growth amortizes to zero.
		e.reused = append(e.reused, x)
	}
	// A local alias inherits the reset of the buffer it aliases.
	out := e.outbox[0]
	for _, x := range xs {
		out = append(out, x)
	}
	e.outbox[0] = out
}

func (e *eng) drain() []int {
	got := append([]int(nil), e.reused...)
	e.reused = e.reused[:0]
	e.outbox[0] = e.outbox[0][:0]
	return got
}
