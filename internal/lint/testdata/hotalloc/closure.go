package chip

func StepDense(cores []int, visit func(func(int))) {
	// Hoisted above the loop: one closure for the whole tick. No finding.
	var cur int
	emit := func(v int) { cur += v }
	for i := range cores {
		cur = i
		visit(emit)
	}
	for i := range cores {
		visit(func(v int) { cur = i + v }) // want `closure every iteration`
	}
	// A goroutine launch is ticksafe's jurisdiction, not an allocation
	// finding — but its body is still hot code.
	for range cores {
		go func() {
			_ = make([]int, 8) // want `make on the per-tick path`
		}()
	}
}
