package chip

import (
	"fmt"
	"log"
)

func Step(n int) {
	for i := 0; i < n; i++ {
		fmt.Println(i)  // want `fmt.Println on the per-tick path`
		log.Printf("x") // want `log.Printf on the per-tick path`
	}
}

// Formatting off the hot path is fine: no finding.
func describe(n int) string { return fmt.Sprintf("%d cores", n) }
