package chip

type point struct{ x, y int }

func route(n int) int {
	buf := make([]int, n) // want `make on the per-tick path`
	seen := map[int]bool{} // want `map literal allocates`
	ids := []int{1, 2, 3}  // want `slice literal allocates`
	p := point{x: 1, y: 2} // a struct value literal stays on the stack
	q := [4]int{0, 1, 2, 3}
	esc := &point{x: 3} // want `&composite literal escapes`
	_ = seen
	_ = esc
	return len(buf) + len(ids) + p.x + q[0]
}

// The same constructs are free in cold functions: no findings.
func buildTables(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
