//lintfixture:package truenorth/internal/corehelp
package corehelp

// Fill is one call from the hot kernel; the allocation in grow is two calls
// away from the hot function, across a package boundary.
func Fill(n int) {
	grow(n)
}

func grow(n int) []int {
	buf := make([]int, n)
	return buf
}
