//lintfixture:package truenorth/internal/core
package core

import "truenorth/internal/corehelp"

// Step is hot by name; the allocations here live in helpers, not in the
// body, so only the call-graph-aware pass can see them.
func Step(n int) {
	buf := helperAlloc(n) // want `call to helperAlloc reaches an allocation on the per-tick path`
	_ = buf
	corehelp.Fill(n)   // want `call to Fill reaches an allocation on the per-tick path`
	_ = closureMaker() // want `call to closureMaker reaches an allocation on the per-tick path: closureMaker: returns a func literal`
	fast(n)
	_ = bfs(n)
}

// helperAlloc allocates one call away from the hot function.
func helperAlloc(n int) []int {
	return make([]int, n)
}

// closureMaker is the deadFunc shape: building a fresh closure per call.
func closureMaker() func() int {
	x := 0
	return func() int { return x }
}

// fast is a clean helper: calling it from the hot path is fine.
func fast(n int) int { return n * 2 }

// bfs allocates, but it is a sanctioned cold-path barrier by name, so the
// hot caller is not tainted.
func bfs(n int) []int { return make([]int, n) }
