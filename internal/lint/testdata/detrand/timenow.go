package chip

import "time"

func seed() int64 { return time.Now().UnixNano() } // want `kernel package calls time.Now`
