//lintfixture:package truenorth/cmd/tnsim
package main

// Commands are kernel-adjacent: an entry point that seeds from the wall
// clock breaks replayability just as surely as a kernel that does.

import "math/rand" // want `kernel package imports math/rand`

func main() { _ = rand.Intn(4) }
