//lintfixture:package truenorth/internal/apps/lsm
package lsm

// Non-kernel packages may use math/rand freely: no findings.

import "math/rand"

func ok() int { return rand.Intn(4) }
