package chip

import "math/rand" // want `kernel package imports math/rand`

func bad() int { return rand.Intn(4) }
