package chip

import mr "math/rand/v2" // want `kernel package imports math/rand/v2`

func bad2() int { return mr.IntN(4) }
