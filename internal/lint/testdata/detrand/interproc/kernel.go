//lintfixture:package truenorth/internal/core
package core

import (
	"time"

	"truenorth/internal/clockutil"
)

// seedNetwork reaches the wall clock two calls away (Seed → now).
func seedNetwork() int64 {
	return clockutil.Seed() // want `call to Seed reaches nondeterminism from a kernel package`
}

// jitter reaches math/rand one call away.
func jitter() int {
	return clockutil.Jitter() // want `call to Jitter reaches nondeterminism from a kernel package`
}

// localSeed gets no call-site finding: localNow is in a kernel package, so
// the direct rule already reports inside it and taint does not re-report.
func localSeed() int64 {
	return localNow()
}

func localNow() int64 {
	return time.Now().UnixNano() // want `kernel package calls time.Now`
}
