//lintfixture:package truenorth/internal/clockutil
package clockutil

import (
	"math/rand"
	"time"
)

// Seed reads the wall clock two calls from the kernel (via now). This
// package is outside the kernel set, so nothing is reported here — the
// finding lands at the kernel's call site.
func Seed() int64 { return now() }

func now() int64 { return time.Now().UnixNano() }

// Jitter draws from math/rand one call from the kernel.
func Jitter() int { return rand.Intn(8) }
