package chip

import "truenorth/internal/prng"

// A local method named Now on a non-package value must not trip the
// time.Now check, and seeded prng is the sanctioned randomness source.
type clock struct{}

func (clock) Now() int { return 0 }

func good(seed int64) int {
	var c clock
	return prng.NewRand(seed).Intn(4) + c.Now()
}
