package serve

import "net/http"

// GoodResponse is fully explicit: every exported field named, internals
// unexported or excluded.
type GoodResponse struct {
	Name  string `json:"name"`
	Count int    `json:"count,omitempty"`
	Skip  int    `json:"-"`
	note  string
}

type BadResponse struct {
	Name    string            `json:"name"`
	Age     int               // want `has no json tag`
	Blank   string            `json:","`       // want `empty json name`
	Tags    map[string]string `json:"tags"`    // want `contains a map`
	Payload any               `json:"payload"` // want `an interface`
	Err     error             `json:"err"`     // want `an interface`
}

type nestedBad struct {
	Inner []struct { // want `contains a map`
		M map[string]int `json:"m"`
	} `json:"inner"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {}

func handler(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, GoodResponse{Name: "x"})
	writeJSON(w, http.StatusOK, map[string]any{"x": 1}) // want `map literal`
	writeJSON(w, http.StatusOK, struct{ X int }{X: 1})  // want `anonymous struct`
	writeJSON(w, http.StatusOK, &GoodResponse{Name: "p"})
}
