//lintfixture:package truenorth/internal/serve
package serve

import "truenorth/internal/sim"

// snapshot reads the counter plainly from another package — the registry
// of atomic sites is program-wide, so the mix is still visible.
func snapshot(s *sim.Stat) int64 {
	return s.Hits // want `plain access to sim.Stat.Hits, which is accessed atomically at stat.go:\d+`
}
