//lintfixture:package truenorth/internal/sim
package sim

import "sync/atomic"

// Stat exports a counter whose atomicity is a property of the whole
// program, not of the package that declares it.
type Stat struct {
	Hits int64
}

func (s *Stat) Bump() {
	atomic.AddInt64(&s.Hits, 1)
}
