package fixture

import "sync/atomic"

type gauge struct {
	v int64
}

// All-atomic access is the sanctioned protocol.
func (g *gauge) add(d int64) {
	atomic.AddInt64(&g.v, d)
}

func (g *gauge) load() int64 {
	return atomic.LoadInt64(&g.v)
}

type plainBox struct {
	n int64
}

// A field never touched atomically is no one's business.
func (p *plainBox) bumpPlain() {
	p.n++
}
