package fixture

import "sync/atomic"

type counter struct {
	n int64
}

// inc commits the field to the atomic protocol …
func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

// … which the plain read breaks: the racing load can observe a torn or
// stale value and the race detector only fires when the schedule obliges.
func (c *counter) read() int64 {
	return c.n // want `plain access to fixture.counter.n, which is accessed atomically at mixed.go:\d+`
}

var hits int64

func bump() {
	atomic.AddInt64(&hits, 1)
}

// reset writes the package-level counter plainly.
func reset() {
	hits = 0 // want `plain access to fixture.hits, which is accessed atomically at mixed.go:\d+`
}
