package runtime

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) badLeak(v int) int {
	b.mu.Lock()
	if v > 0 {
		return v // want `still locked on this path`
	}
	b.mu.Unlock()
	return b.n
}

func (b *box) badDouble() {
	b.mu.Lock()
	b.mu.Lock() // want `locked again without an intervening unlock`
	b.mu.Unlock()
	b.mu.Unlock()
}

// The deferred unlock sanctions every return path: no finding.
func (b *box) goodDefer(v int) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if v > 0 {
		return v
	}
	return b.n
}

// Branch-balanced lock handling: no finding.
func (b *box) goodBranches(v int) int {
	b.mu.Lock()
	if v > 0 {
		b.mu.Unlock()
		return v
	}
	b.mu.Unlock()
	return b.n
}
