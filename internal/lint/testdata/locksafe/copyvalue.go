package runtime

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

// wrapper embeds a sync-bearing struct by value, so it is itself a bearer.
type wrapper struct {
	g guarded
}

func badParam(g guarded) int { // want `parameter copies a sync primitive`
	return g.n
}

func badDirect(mu sync.Mutex) { // want `parameter copies a sync primitive`
	mu.Lock()
	mu.Unlock()
}

func badNested(w wrapper) int { // want `parameter copies a sync primitive`
	return w.g.n
}

func (g guarded) badRecv() int { return g.n } // want `receiver copies a sync primitive`

// Pointers share the lock state: no findings.
func good(g *guarded) int { return g.n }

func (g *guarded) goodRecv() int { return g.n }
