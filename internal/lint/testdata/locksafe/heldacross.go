package runtime

import (
	"sync"
	"time"
)

type server struct {
	mu sync.Mutex
	wg sync.WaitGroup
	ch chan int
}

func (s *server) badSend() {
	s.mu.Lock()
	s.ch <- 1 // want `held across a channel send`
	s.mu.Unlock()
}

func (s *server) badRecv() {
	s.mu.Lock()
	<-s.ch // want `held across a channel receive`
	s.mu.Unlock()
}

func (s *server) badSleep() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `held across time.Sleep`
	s.mu.Unlock()
}

func (s *server) badWait() {
	s.mu.Lock()
	s.wg.Wait() // want `held across a Wait call`
	s.mu.Unlock()
}

func (s *server) badSelect() {
	s.mu.Lock()
	select { // want `held across a select with no default arm`
	case v := <-s.ch:
		_ = v
	}
	s.mu.Unlock()
}

// A select with a default arm cannot park the holder: no finding.
func (s *server) goodSelect() {
	s.mu.Lock()
	select {
	case s.ch <- 1:
	default:
	}
	s.mu.Unlock()
}

// Release before blocking: no finding.
func (s *server) good() {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1
}
