package neuron

// Named types with a floating-point underlying type compare just as
// nondeterministically as float64 itself.
type volts float32

func badNamed(a, b volts) bool { return a != b } // want `floating-point != comparison`
