package neuron

// Integer equality and float-vs-literal-zero divide guards are fine.
func good(n int, p float64) float64 {
	if n == 3 || p == 0 {
		return 0
	}
	return 1 / p
}
