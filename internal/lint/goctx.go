package lint

import (
	"go/ast"
	"regexp"
)

// GoCtx returns the goroutine-shutdown analyzer for the serving packages.
// Every goroutine the runtime or serving layer spawns must be able to
// exit when its session closes: a session is created per HTTP request, so
// a goroutine that blocks forever is a per-request leak — the serving
// process accretes parked goroutines until it dies, long after every test
// has passed.
//
// goctx resolves each `go` statement to its function body (a func literal,
// or a same-package function/method called by name) and flags any
// condition-less `for { ... }` loop in it that has no shutdown arm. A loop
// is shutdown-aware when its body mentions a cancellation signal: a
// ctx.Done() arm, a receive from a done/quit/stop/close channel, or a
// closing-flag check (`if s.closing { return }`). Loops with a condition
// (`for !s.closing`, `for i < n`) and `range` loops are never flagged — a
// range over a channel ends when the owner closes it, and a conditional
// loop ends when the condition flips.
//
// The check is nominal (it matches identifier names against a
// done/quit/stop/clos.../shutdown/ctx/cancel pattern), so it enforces a
// naming discipline as much as a liveness property: shutdown signals must
// look like shutdown signals.
func GoCtx() *Analyzer {
	return &Analyzer{
		Name:     "goctx",
		Doc:      "require a shutdown arm in every goroutine loop spawned by the serving stack",
		Packages: ServingPackages,
		Run:      runGoCtx,
	}
}

// shutdownNameRe matches identifiers that plausibly carry a cancellation
// signal ("done", "quit", "stop", "closing"/"closed"/"close", "shutdown",
// "ctx", "cancel").
var shutdownNameRe = regexp.MustCompile(`(?i)done|quit|stop|clos|shutdown|ctx|cancel`)

func runGoCtx(pkg *Package, report ReportFunc) {
	// Function and method bodies by name, for `go s.loop()` / `go run()`.
	bodies := map[string]*ast.BlockStmt{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				bodies[fd.Name.Name] = fd.Body
			}
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if body := resolveGoBody(g.Call, bodies); body != nil {
				checkGoBody(body, report)
			}
			return true
		})
	}
}

// resolveGoBody returns the body a `go` statement runs: an inline func
// literal, or a same-package function/method matched by name. Calls into
// other packages resolve to nil and stay quiet — the analyzer only judges
// code it can see.
func resolveGoBody(call *ast.CallExpr, bodies map[string]*ast.BlockStmt) *ast.BlockStmt {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		return bodies[fun.Name]
	case *ast.SelectorExpr:
		return bodies[fun.Sel.Name]
	}
	return nil
}

// checkGoBody flags condition-less loops without a shutdown arm. Nested
// func literals are skipped: they are not this goroutine's loop.
func checkGoBody(body *ast.BlockStmt, report ReportFunc) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if n.Cond == nil && !hasShutdownArm(n.Body) {
				report(n.Pos(), "goroutine loop has no shutdown arm (ctx.Done arm, done-channel receive, or closing-flag check); it leaks when the session closes")
				return false // the fix restructures the loop; don't pile on
			}
		}
		return true
	})
}

// hasShutdownArm reports whether a loop body mentions a cancellation
// signal: any identifier matching shutdownNameRe (s.closing, <-done,
// ctx.Done(), cancel) outside nested func literals.
func hasShutdownArm(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if shutdownNameRe.MatchString(n.Name) {
				found = true
			}
		}
		return true
	})
	return found
}
