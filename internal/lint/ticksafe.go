package lint

import (
	"go/ast"
	"go/token"
)

// TickSafe returns the concurrency-pattern analyzer. The kernel is
// single-threaded everywhere except internal/compass, whose Step runs the
// documented semi-synchronous worker pattern: inline `go func` worker
// literals joined by a sync.WaitGroup (or, for the single collector in the
// no-aggregation ablation, a channel close), with two barriers per tick.
// ticksafe enforces three rules:
//
//  1. No goroutine launches in kernel packages outside internal/compass.
//  2. In internal/compass, every `go` statement is an inline func literal
//     that signals completion: `defer wg.Done()` or a `close(ch)`.
//  3. A WaitGroup-managed worker may assign to captured (outer-scope)
//     variables only through an indexed slot (e.g. perWorker[w] = ...), the
//     share-nothing discipline that makes the compute phase race-free.
//
// With call-graph context (RunWithContext), rule 1 is interprocedural for
// the explicitly listed kernel packages: calling a module helper that
// launches a goroutine is reported at the call site with the witness chain
// (a kernel that spawns through an intermediary is still spawning). Callees
// in packages ticksafe checks directly are skipped, as is everything behind
// the sanctioned cold-path barriers.
func TickSafe() *Analyzer {
	return &Analyzer{
		Name:     "ticksafe",
		Doc:      "restrict goroutines and shared-state writes to the Compass worker pattern",
		Packages: KernelPackages,
		Run:      runTickSafe,
	}
}

func runTickSafe(pkg *Package, report ReportFunc) {
	inCompass := pkg.Path == Module+"/internal/compass"
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !inCompass {
				report(g.Pos(), "goroutine launch in kernel package %s; parallelism is sanctioned only in the Compass engine", pkg.Path)
				return true
			}
			fl, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				report(g.Pos(), "goroutine must be an inline worker func literal with completion signalling")
				return true
			}
			wgManaged := hasDeferDone(fl.Body)
			if !wgManaged && !hasClose(fl.Body) {
				report(g.Pos(), "worker goroutine has no completion signal (defer wg.Done() or close of a done channel)")
			}
			if wgManaged {
				checkWorkerWrites(fl, report)
			}
			return true
		})
	}
	if pkg.Prog == nil || inCompass || !explicitKernelPackage(pkg.Path) {
		return
	}
	ticksafeApplies := TickSafe().applies
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn := pkg.Prog.FuncAt(fd.Name.Pos())
			if fn == nil {
				continue
			}
			for _, t := range pkg.Prog.CallTaints(fn, HazardGo, func(callee *FuncNode) bool {
				return ticksafeApplies(callee.Pkg.Path)
			}) {
				report(t.Chain[0].Pos, "call to %s launches a goroutine from kernel package %s: %s",
					t.Chain[0].Name, pkg.Path, t.Describe(pkg.Fset))
			}
		}
	}
}

// hasDeferDone reports whether body contains `defer x.Done()`.
func hasDeferDone(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasClose reports whether body contains a close(...) call.
func hasClose(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "close" {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkWorkerWrites flags assignments and ++/-- inside a WaitGroup-managed
// worker whose target is a captured variable reached without any index
// expression: `s.outputs = append(...)` races between workers, while
// `s.perWorkerOut[w] = append(...)` is the sanctioned per-worker slot.
func checkWorkerWrites(fl *ast.FuncLit, report ReportFunc) {
	local := localNames(fl)
	flag := func(lhs ast.Expr) {
		root, indexed := lhsRoot(lhs)
		if root == nil || root.Name == "_" || indexed || local[root.Name] {
			return
		}
		report(lhs.Pos(), "worker goroutine writes captured %q without a per-worker indexed slot (data race)", root.Name)
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true // := declares worker-local variables
			}
			for _, lhs := range n.Lhs {
				flag(lhs)
			}
		case *ast.IncDecStmt:
			flag(n.X)
		}
		return true
	})
}

// lhsRoot unwraps an assignment target to its root identifier, reporting
// whether any index expression was crossed on the way.
func lhsRoot(e ast.Expr) (root *ast.Ident, indexed bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, indexed
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			indexed = true
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil, indexed
		}
	}
}

// localNames collects every identifier declared anywhere inside fl —
// parameters, := definitions, var/const/type declarations, range variables,
// and nested function-literal parameters — so writes to them are recognized
// as worker-local. Shadowing a captured name with a local of the same name
// is treated as local (conservatively quiet).
func localNames(fl *ast.FuncLit) map[string]bool {
	names := map[string]bool{}
	addFields := func(fields *ast.FieldList) {
		if fields == nil {
			return
		}
		for _, f := range fields.List {
			for _, n := range f.Names {
				names[n.Name] = true
			}
		}
	}
	addFields(fl.Type.Params)
	addFields(fl.Type.Results)
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						names[id.Name] = true
					}
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						names[id.Name] = true
					}
				}
			}
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				for _, e := range []ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok {
						names[id.Name] = true
					}
				}
			}
		case *ast.FuncLit:
			addFields(n.Type.Params)
			addFields(n.Type.Results)
		}
		return true
	})
	return names
}
