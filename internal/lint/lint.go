// Package lint implements tnlint, the repo-specific static-analyzer suite
// that machine-checks two families of invariants:
//
// Determinism (behind the paper's one-to-one equivalence claim: the silicon
// model in internal/chip and the parallel Compass engine in internal/compass
// are bitwise-identical expressions of the same event-driven kernel):
//
//   - detrand:  no math/rand and no time.Now in kernel packages; random
//     choices go through truenorth/internal/prng with explicit seeds.
//   - maporder: no range over a map whose body has order-dependent effects
//     (append, channel send, spike delivery, output writes).
//   - floatcmp: no ==/!= between floating-point values in the neuron and
//     energy arithmetic paths (comparisons against exactly-representable
//     literal zero are allowed as divide-by-zero guards).
//   - ticksafe: goroutines only inside internal/compass, only as inline
//     worker func literals with completion signalling (defer wg.Done() or a
//     channel close), and WaitGroup-managed workers may write captured state
//     only through per-worker indexed slots.
//
// Real-time serving safety (behind the paper's f_max ≈ 1 kHz operating
// claim: the per-tick hot path must stay allocation-free and the session
// control plane must never stall it):
//
//   - hotalloc: no per-tick heap traffic in the kernel's hot functions —
//     fmt calls, make, slice/map or heap-escaping composite literals,
//     closures built inside per-tick loops, appends to buffers that are
//     never reslice-reused.
//   - locksafe: no mutex held across a channel operation, time.Sleep, or
//     blocking session call; no return path that leaks a lock; no sync
//     primitives copied by value.
//   - goctx:    every goroutine spawned by the runtime/serving layer has a
//     shutdown arm (ctx.Done/close signal/closing flag), so sessions cannot
//     leak goroutines when they close.
//   - chanown:  channels are closed only by their owner, never sent to
//     after close, and paced-loop code never does a bare blocking send on
//     an unbuffered channel.
//
// Whole-program concurrency (behind the same serving claims, but checked
// over the module-wide call graph rather than one function at a time):
//
//   - lockorder: per-function lock-acquisition summaries propagate through
//     the call graph into a global lock-order graph over the named mutexes
//     of the concurrency packages; a cycle is a potential deadlock and is
//     reported with its witness chain. The acyclic hierarchy is checked in
//     as testdata/lockorder/hierarchy.golden and reviewed like a perfproof
//     budget.
//   - chanflow:  channel facts follow the call graph — no call chain that
//     blocks (send, receive, select without default, time.Sleep, Wait)
//     while a mutex is held, no send on a field channel some reachable
//     function may close, no field channel closed from two sites.
//   - wgsafe:    the WaitGroup protocol — Add happens-before the spawning
//     go statement, no Add from inside a waited goroutine, no Wait-reuse
//     overlap between a waiting goroutine and later Adds.
//   - atomicmix: a variable accessed via sync/atomic anywhere must be
//     accessed atomically everywhere; both witness sites are cited.
//
// Static API contract (behind the v1 serving surface: every route, wire
// shape, and reachable error code is extracted from the source and pinned
// in testdata/apisurface/v1.golden; see DESIGN.md §14):
//
//   - apienvelope: every handler error path goes through writeError with a
//     code registered in the codeStatus map at that code's canonical
//     status; no raw http.Error or bare WriteHeader escapes the envelope.
//   - wiretag: every exported field of a struct that crosses the wire has
//     an explicit json tag, and response types carry no map or interface
//     fields (their shape would be invisible to the surface golden).
//   - boundconv: call-graph-aware taint from client-controlled integers
//     (JSON body fields, strconv results) into narrowing conversions,
//     uint64 tick arithmetic, or make() sizes without an intervening range
//     guard — the trust-boundary bug class the serve layer exists to stop.
//
// A finding is suppressed by a directive on the same line or the line
// before:
//
//	//lint:ignore tnlint/<analyzer> reason
//
// The reason is mandatory; a directive without one is itself a finding.
// Every analyzer's detection behavior is pinned by want-comment fixtures
// under testdata/<analyzer>/ (see fixture_test.go). Everything here is
// stdlib only: go/ast, go/parser, go/types.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"regexp"
	"sort"
	"strings"
)

// Module is the import-path root of this repository.
const Module = "truenorth"

// KernelPackages are the packages whose tick-domain behavior must be
// bitwise deterministic: the two engine expressions, the core state machine
// and its parts, everything that constructs or feeds networks, and the
// entry points that drive them — a `cmd` or example that seeds from the
// wall clock breaks replayability just as surely as a kernel that does. A
// trailing "/..." entry matches every package under the prefix.
var KernelPackages = []string{
	Module + "/internal/chip",
	Module + "/internal/compass",
	Module + "/internal/core",
	Module + "/internal/neuron",
	Module + "/internal/router",
	Module + "/internal/netgen",
	Module + "/internal/vision",
	Module + "/internal/experiments",
	Module + "/internal/modelcheck",
	Module + "/cmd/...",
	Module + "/examples/...",
}

// ArithmeticPackages hold the floating-point neuron/energy arithmetic that
// floatcmp guards.
var ArithmeticPackages = []string{
	Module + "/internal/neuron",
	Module + "/internal/energy",
}

// Package is one type-checked package under analysis. Info is best-effort:
// the checker runs in error-tolerant mode (imports outside the module are
// stubbed), so analyzers must degrade gracefully when a type is unresolved.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	// Prog is the module-local call graph the package was analyzed under;
	// set by Run/RunWithContext. Analyzers use it for interprocedural
	// checks and degrade to purely local analysis when it is nil.
	Prog *Program
}

// TypeOf returns the best-effort type of e, or nil.
func (p *Package) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ReportFunc records one finding at pos.
type ReportFunc func(pos token.Pos, format string, args ...any)

// Analyzer is one independently testable pass.
type Analyzer struct {
	Name string
	Doc  string
	// Packages lists the import paths the analyzer applies to; nil means
	// every package.
	Packages []string
	Run      func(pkg *Package, report ReportFunc)
}

func (a *Analyzer) applies(path string) bool {
	if a.Packages == nil {
		return true
	}
	for _, p := range a.Packages {
		if p == path {
			return true
		}
		if prefix, ok := strings.CutSuffix(p, "/..."); ok &&
			(path == prefix || strings.HasPrefix(path, prefix+"/")) {
			return true
		}
	}
	return false
}

// Analyzers returns the full tnlint suite: the four determinism analyzers,
// the four concurrency/hot-path analyzers guarding the serving stack, the
// four whole-program concurrency analyzers, and the three API-contract
// analyzers behind `make api-gate`.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		Detrand(), MapOrder(), FloatCmp(), TickSafe(),
		HotAlloc(), LockSafe(), GoCtx(), ChanOwn(),
		LockOrder(), ChanFlow(), WgSafe(), AtomicMix(),
		APIEnvelope(), WireTag(), BoundConv(),
	}
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the canonical "file:line: analyzer: message" form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// WriteJSON renders diags as a JSON array (always an array — `[]` when
// clean, so CI consumers can gate on array length as well as exit status).
// rel, when non-nil, rewrites filenames (typically to repo-relative paths).
func WriteJSON(w io.Writer, diags []Diagnostic, rel func(string) string) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel != nil {
			file = rel(file)
		}
		out = append(out, jsonDiagnostic{
			File: file, Line: d.Pos.Line, Column: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ignoreRe matches a well-formed suppression directive.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+tnlint/([a-zA-Z0-9_-]+)\s+\S`)

// directive is one //lint:ignore comment, tracked so the stale-suppression
// audit can tell which directives still earn their keep.
type directive struct {
	pos      token.Pos
	analyzer string
	used     bool
}

// suppression records which analyzers are ignored at which lines of a file.
type suppression struct {
	// byLine maps a source line to the directives active there.
	byLine map[int]map[string]*directive
	// directives lists the file's directives in source order.
	directives []*directive
}

// suppressions scans a file's comments for lint:ignore directives. A
// directive suppresses matching findings on its own line and on the line
// after it. Malformed directives (no analyzer, no reason) are reported as
// findings of the pseudo-analyzer "ignore".
func suppressions(fset *token.FileSet, f *ast.File, malformed func(pos token.Pos, msg string)) *suppression {
	s := &suppression{byLine: map[int]map[string]*directive{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, "//lint:ignore") {
				continue
			}
			m := ignoreRe.FindStringSubmatch(text)
			if m == nil {
				malformed(c.Pos(), "malformed suppression directive: want //lint:ignore tnlint/<analyzer> reason")
				continue
			}
			d := &directive{pos: c.Pos(), analyzer: m[1]}
			s.directives = append(s.directives, d)
			line := fset.Position(c.Pos()).Line
			for _, l := range []int{line, line + 1} {
				if s.byLine[l] == nil {
					s.byLine[l] = map[string]*directive{}
				}
				if s.byLine[l][d.analyzer] == nil {
					s.byLine[l][d.analyzer] = d
				}
			}
		}
	}
	return s
}

// suppressed consumes a matching directive for a finding at line, marking
// it live for the stale audit.
func (s *suppression) suppressed(line int, analyzer string) bool {
	d := s.byLine[line][analyzer]
	if d == nil {
		return false
	}
	d.used = true
	return true
}

// Run applies analyzers to pkgs, honors suppression directives, and returns
// the surviving findings sorted by file, line, and analyzer. Purely local:
// interprocedural checks need the call-graph context of RunWithContext.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunWithContext(pkgs, nil, analyzers)
}

// RunWithContext is Run with extra call-graph context: context packages are
// not analyzed themselves, but their function bodies are part of the
// Program, so taint through helpers declared there reaches the analyzed
// packages' call sites. Passing every module package a target imports makes
// the interprocedural detrand/hotalloc/ticksafe checks whole-module.
//
// After all analyzers run, suppression directives that no finding consumed
// are themselves reported (pseudo-analyzer "ignore"): a stale //lint:ignore
// is a license nobody holds, and the tree must not accrete them. A
// directive is only audited when its analyzer actually ran on its package,
// so narrowed runs (-only) never produce false stale reports.
func RunWithContext(pkgs, context []*Package, analyzers []*Analyzer) []Diagnostic {
	all := make([]*Package, 0, len(pkgs)+len(context))
	all = append(all, pkgs...)
	seen := make(map[*Package]bool, len(pkgs))
	for _, p := range pkgs {
		seen[p] = true
	}
	for _, p := range context {
		if !seen[p] {
			all = append(all, p)
		}
	}
	prog := NewProgram(all)

	var diags []Diagnostic
	for _, pkg := range pkgs {
		pkg.Prog = prog
		sup := map[*ast.File]*suppression{}
		for _, f := range pkg.Files {
			sup[f] = suppressions(pkg.Fset, f, func(pos token.Pos, msg string) {
				diags = append(diags, Diagnostic{Pos: pkg.Fset.Position(pos), Analyzer: "ignore", Message: msg})
			})
		}
		ran := map[string]bool{}
		for _, a := range analyzers {
			if !a.applies(pkg.Path) {
				continue
			}
			ran[a.Name] = true
			a.Run(pkg, func(pos token.Pos, format string, args ...any) {
				position := pkg.Fset.Position(pos)
				for _, f := range pkg.Files {
					if pkg.Fset.File(f.Pos()) == pkg.Fset.File(pos) &&
						sup[f].suppressed(position.Line, a.Name) {
						return
					}
				}
				diags = append(diags, Diagnostic{Pos: position, Analyzer: a.Name, Message: fmt.Sprintf(format, args...)})
			})
		}
		for _, f := range pkg.Files {
			for _, d := range sup[f].directives {
				if !d.used && ran[d.analyzer] {
					diags = append(diags, Diagnostic{
						Pos:      pkg.Fset.Position(d.pos),
						Analyzer: "ignore",
						Message: fmt.Sprintf(
							"stale suppression: no tnlint/%s finding on this or the next line; remove the directive", d.analyzer),
					})
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// importedName returns the local identifier under which file f imports
// path, or "" when it does not. Dot and blank imports return "".
func importedName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			if n := imp.Name.Name; n != "." && n != "_" {
				return n
			}
			return ""
		}
		// Default name: the last path element.
		if i := strings.LastIndex(path, "/"); i >= 0 {
			return path[i+1:]
		}
		return path
	}
	return ""
}

// terminalName returns the identifier a storage expression ultimately names:
// the field for a selector chain (s.outbox[w] → "outbox"), the variable for
// a plain or indexed identifier (out[dw] → "out"). It is the unit the
// hotalloc and chanown analyzers use to correlate buffer resets, channel
// makes, and closes with their uses; "" when the expression has no stable
// terminal (e.g. a call result).
func terminalName(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			return x.Sel.Name
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return ""
		}
	}
}

// exprPath renders a lock/channel expression as a dotted path for messages
// and identity matching ("s.mu", "sub.ch"); "" for unrenderable expressions.
func exprPath(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := exprPath(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
	case *ast.ParenExpr:
		return exprPath(x.X)
	case *ast.StarExpr:
		return exprPath(x.X)
	case *ast.IndexExpr:
		if base := exprPath(x.X); base != "" {
			return base + "[]"
		}
	}
	return ""
}

// isPkgSelector reports whether call target sel is a selection pkgName.fn on
// the package imported under pkgName, cross-checked against type info when
// available (so a local variable shadowing the package name doesn't match).
func isPkgSelector(pkg *Package, sel *ast.SelectorExpr, pkgName, fn string) bool {
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != pkgName || sel.Sel.Name != fn {
		return false
	}
	if pkg.Info != nil {
		if obj, ok := pkg.Info.Uses[id]; ok {
			_, isPkg := obj.(*types.PkgName)
			return isPkg
		}
	}
	return true
}
