package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// WgSafe returns the WaitGroup-protocol analyzer for the concurrency
// packages. sync.WaitGroup's contract is positional, not just pairwise:
// the Add must happen-before the goroutine that Dones, or Wait can observe
// a zero counter and return while work is still being spawned. Three
// rules, all of which the compass fork-join already obeys and the batched
// session scheduler will need:
//
//  1. Add before the spawning go: a go statement whose goroutine calls
//     Done on a WaitGroup — in its func literal, or through a named
//     function that Dones a WaitGroup argument — must be preceded
//     (lexically, in the same function) by an Add on that WaitGroup.
//     Calls to helpers that themselves spawn Done-ing goroutines count as
//     the spawn site.
//  2. No Add from inside a waited goroutine: an Add racing a Wait is the
//     canonical WaitGroup bug — Wait may have already returned.
//  3. No Wait-reuse overlap: a goroutine that Waits while the spawning
//     function keeps Adding afterwards overlaps two uses of the counter.
//
// WaitGroups are identified by expression path, by resolved sync.WaitGroup
// type where type info reaches, and by *sync.WaitGroup parameter syntax in
// helper signatures — so the interprocedural rules work in fixture and
// stub contexts alike.
func WgSafe() *Analyzer {
	summaries := map[*Program]*wgSummaries{}
	return &Analyzer{
		Name:     "wgsafe",
		Doc:      "enforce the WaitGroup protocol: Add before the spawning go, no Add inside waited goroutines, no Wait-reuse overlap",
		Packages: ConcurrencyPackages,
		Run: func(pkg *Package, report ReportFunc) {
			prog := pkg.Prog
			if prog == nil {
				return
			}
			sums, ok := summaries[prog]
			if !ok {
				sums = newWgSummaries(prog)
				summaries[prog] = sums
			}
			prog.Funcs(pkg, func(n *FuncNode) { checkWgFunc(pkg, prog, sums, n, report) })
		},
	}
}

// wgUse is one statement-position WaitGroup method call.
type wgUse struct {
	path string // expression path of the WaitGroup ("wg", "s.wg")
	op   string // Add, Done, Wait
	pos  token.Pos
	inGo bool // lexically inside a go-spawned func literal
}

// collectWgUses gathers the statement-position Add/Done/Wait calls of one
// body. Done and Wait are only meaningful as statements (ctx.Done() used
// as a channel operand is not a WaitGroup Done); Add must carry exactly
// one argument.
func collectWgUses(body *ast.BlockStmt) []wgUse {
	var uses []wgUse
	var walk func(n ast.Node, inGo bool)
	record := func(call *ast.CallExpr, inGo bool) bool {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		op := sel.Sel.Name
		switch op {
		case "Add":
			if len(call.Args) != 1 {
				return false
			}
		case "Done", "Wait":
			if len(call.Args) != 0 {
				return false
			}
		default:
			return false
		}
		path := exprPath(sel.X)
		if path == "" {
			return false
		}
		uses = append(uses, wgUse{path: path, op: op, pos: call.Pos(), inGo: inGo})
		return true
	}
	walk = func(n ast.Node, inGo bool) {
		ast.Inspect(n, func(node ast.Node) bool {
			switch x := node.(type) {
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok && record(call, inGo) {
					return false
				}
			case *ast.DeferStmt:
				if record(x.Call, inGo) {
					return false
				}
			case *ast.GoStmt:
				for _, a := range x.Call.Args {
					walk(a, inGo)
				}
				if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
					walk(fl.Body, true)
				}
				return false
			}
			return true
		})
	}
	walk(body, false)
	return uses
}

// wgSummary records how one function interacts with WaitGroups it does
// not own: parameters and receiver fields it Dones synchronously, and
// ones it spawns goroutines to Done.
type wgSummary struct {
	syncDoneParams map[int]bool
	goDoneParams   map[int]bool
	syncDoneFields map[string]bool
	goDoneFields   map[string]bool
}

func (s *wgSummary) empty() bool {
	return len(s.syncDoneParams) == 0 && len(s.goDoneParams) == 0 &&
		len(s.syncDoneFields) == 0 && len(s.goDoneFields) == 0
}

// wgSummaries memoizes per-function WaitGroup summaries over one program.
type wgSummaries struct {
	prog *Program
	memo map[*FuncNode]*wgSummary
}

func newWgSummaries(prog *Program) *wgSummaries {
	return &wgSummaries{prog: prog, memo: map[*FuncNode]*wgSummary{}}
}

// wgParams maps parameter names of fn that are (syntactically or by type)
// *sync.WaitGroup to their indices.
func wgParams(pkg *Package, fd *ast.FuncDecl) map[string]int {
	out := map[string]int{}
	file := fileOf(pkg, fd.Pos())
	idx := 0
	for _, field := range fd.Type.Params.List {
		isWG := isWaitGroupPtrType(pkg, file, field.Type)
		for _, name := range field.Names {
			if isWG {
				out[name.Name] = idx
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	return out
}

// isWaitGroupPtrType reports whether an AST type is *sync.WaitGroup,
// syntactically (works under stubbed imports) or via type info.
func isWaitGroupPtrType(pkg *Package, file *ast.File, t ast.Expr) bool {
	star, ok := t.(*ast.StarExpr)
	if !ok {
		return false
	}
	if sel, ok := star.X.(*ast.SelectorExpr); ok && sel.Sel.Name == "WaitGroup" {
		if id, ok := sel.X.(*ast.Ident); ok && file != nil && id.Name == importedName(file, "sync") {
			return true
		}
	}
	return false
}

// recvName returns the receiver's identifier name, or "".
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// summary computes (memoized, cycle-guarded) fn's WaitGroup summary: which
// WaitGroup parameters / receiver fields it Dones, synchronously or on a
// goroutine it spawns. Calls propagate: passing a WaitGroup parameter to a
// helper inherits the helper's behavior for it, one level deeper per edge.
func (s *wgSummaries) summary(n *FuncNode, visiting map[*FuncNode]bool) *wgSummary {
	if got, ok := s.memo[n]; ok {
		return got
	}
	sum := &wgSummary{
		syncDoneParams: map[int]bool{}, goDoneParams: map[int]bool{},
		syncDoneFields: map[string]bool{}, goDoneFields: map[string]bool{},
	}
	if visiting[n] {
		return sum
	}
	visiting[n] = true
	defer delete(visiting, n)

	pkg := n.Pkg
	params := wgParams(pkg, n.Decl)
	recv := recvName(n.Decl)
	classify := func(path string) (paramIdx int, field string, ok bool) {
		if idx, isParam := params[path]; isParam {
			return idx, "", true
		}
		if recv != "" {
			if rest, isRecv := strings.CutPrefix(path, recv+"."); isRecv && !strings.Contains(rest, ".") {
				return 0, rest, true
			}
		}
		return 0, "", false
	}
	// A function that Adds a WaitGroup itself (outside any goroutine) is
	// internally balanced for it — compass's Step does Add(1)/go/Done/Wait
	// as a self-contained fork-join. Its Dones are not the caller's debt,
	// so they do not export into the summary.
	uses := collectWgUses(n.Decl.Body)
	selfAdds := map[string]bool{}
	for _, u := range uses {
		if u.op == "Add" && !u.inGo {
			selfAdds[u.path] = true
		}
	}
	for _, u := range uses {
		if u.op != "Done" || selfAdds[u.path] {
			continue
		}
		idx, field, ok := classify(u.path)
		if !ok {
			continue
		}
		switch {
		case field == "" && u.inGo:
			sum.goDoneParams[idx] = true
		case field == "":
			sum.syncDoneParams[idx] = true
		case u.inGo:
			sum.goDoneFields[field] = true
		default:
			sum.syncDoneFields[field] = true
		}
	}
	// Propagate through calls: go'd edges turn the callee's synchronous
	// Dones into goroutine Dones of the caller; synchronous edges inherit
	// both kinds as they are.
	for _, e := range n.Calls {
		callee := s.prog.FuncAt(e.Callee)
		if callee == nil {
			continue
		}
		cs := s.summary(callee, visiting)
		if cs.empty() {
			continue
		}
		call := findCall(n.Decl.Body, e.Pos)
		if call == nil {
			continue
		}
		for calleeIdx := range mergeSets(cs.syncDoneParams, cs.goDoneParams) {
			if calleeIdx >= len(call.Args) {
				continue
			}
			path := wgArgPath(call.Args[calleeIdx])
			if path == "" || selfAdds[path] {
				continue
			}
			idx, field, ok := classify(path)
			if !ok {
				continue
			}
			async := e.InGo || cs.goDoneParams[calleeIdx]
			switch {
			case field == "" && async:
				sum.goDoneParams[idx] = true
			case field == "":
				sum.syncDoneParams[idx] = true
			case async:
				sum.goDoneFields[field] = true
			default:
				sum.syncDoneFields[field] = true
			}
		}
		// Method edges on the receiver's own fields: s.helper() where
		// helper Dones s.wg keeps the field association.
		if len(cs.syncDoneFields)+len(cs.goDoneFields) > 0 {
			if base := callReceiverPath(call); base != "" {
				if _, field, ok := classify(base + ".x"); ok && field == "x" {
					// base is the receiver itself (e.g. "s"): fields carry over.
					for f := range cs.syncDoneFields {
						if selfAdds[base+"."+f] {
							continue
						}
						if e.InGo {
							sum.goDoneFields[f] = true
						} else {
							sum.syncDoneFields[f] = true
						}
					}
					for f := range cs.goDoneFields {
						if selfAdds[base+"."+f] {
							continue
						}
						sum.goDoneFields[f] = true
					}
				}
			}
		}
	}
	if len(visiting) == 1 {
		s.memo[n] = sum
	}
	return sum
}

// mergeSets unions two int sets.
func mergeSets(a, b map[int]bool) map[int]bool {
	out := map[int]bool{}
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

// findCall locates the call expression at pos inside body.
func findCall(body *ast.BlockStmt, pos token.Pos) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && call.Pos() == pos {
			found = call
			return false
		}
		return true
	})
	return found
}

// wgArgPath extracts the WaitGroup expression path from a call argument,
// unwrapping a leading &.
func wgArgPath(arg ast.Expr) string {
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
		arg = u.X
	}
	return exprPath(arg)
}

// callReceiverPath returns the path of the receiver of a method call
// ("s" for s.helper()), or "".
func callReceiverPath(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return exprPath(sel.X)
}

// checkWgFunc applies the three rules to one function.
func checkWgFunc(pkg *Package, prog *Program, sums *wgSummaries, n *FuncNode, report ReportFunc) {
	uses := collectWgUses(n.Decl.Body)

	// Candidate WaitGroup paths: seen with two distinct operations (Add
	// and Done/Wait — a lone .Add() could be a metrics counter), or
	// type-resolved to sync.WaitGroup.
	opsByPath := map[string]map[string]bool{}
	for _, u := range uses {
		if opsByPath[u.path] == nil {
			opsByPath[u.path] = map[string]bool{}
		}
		opsByPath[u.path][u.op] = true
	}
	candidate := func(path string) bool {
		ops := opsByPath[path]
		if ops["Done"] && (ops["Add"] || ops["Wait"]) {
			return true
		}
		if ops["Add"] && ops["Wait"] {
			return true
		}
		return false
	}

	addsBefore := func(path string, pos token.Pos) bool {
		for _, u := range uses {
			if u.op == "Add" && u.path == path && !u.inGo && u.pos < pos {
				return true
			}
		}
		return false
	}
	addsAfter := func(path string, pos token.Pos) bool {
		for _, u := range uses {
			if u.op == "Add" && u.path == path && !u.inGo && u.pos > pos {
				return true
			}
		}
		return false
	}

	// Rules 1 and 3 hang off go statements; rule 1 additionally off calls
	// to helpers that spawn Done-ing goroutines.
	edges := map[token.Pos]CallEdge{}
	for _, e := range n.Calls {
		edges[e.Pos] = e
	}
	seen := map[token.Pos]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.GoStmt:
			for _, path := range goDoneTargets(pkg, prog, sums, n, x, candidate) {
				if !addsBefore(path, x.Pos()) {
					report(x.Pos(), "goroutine calls %s.Done but no %s.Add precedes the go statement; Add must happen-before the spawn or Wait can return early", path, path)
				}
			}
			if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
				for _, u := range collectWgUses(fl.Body) {
					switch u.op {
					case "Wait":
						if addsAfter(u.path, x.Pos()) && (candidate(u.path) || isWaitGroupExprAt(pkg, fl.Body, u)) {
							report(x.Pos(), "goroutine calls %s.Wait while %s.Add continues after the go statement; overlapping uses of a WaitGroup race the counter", u.path, u.path)
						}
					case "Add":
						if candidate(u.path) || isWaitGroupExprAt(pkg, fl.Body, u) {
							report(u.pos, "%s.Add from inside a spawned goroutine races Wait; hoist the Add before the go statement", u.path)
						}
					}
				}
			}
			seen[x.Call.Pos()] = true
		case *ast.CallExpr:
			e, ok := edges[x.Pos()]
			if !ok || e.InGo || seen[x.Pos()] {
				return true
			}
			callee := prog.FuncAt(e.Callee)
			if callee == nil {
				return true
			}
			cs := sums.summary(callee, map[*FuncNode]bool{})
			for calleeIdx := range cs.goDoneParams {
				if calleeIdx >= len(x.Args) {
					continue
				}
				path := wgArgPath(x.Args[calleeIdx])
				if path == "" {
					continue
				}
				if !addsBefore(path, x.Pos()) {
					report(x.Pos(), "call to %s spawns a goroutine that calls %s.Done, but no %s.Add precedes the call; Add must happen-before the spawn", e.Name, path, path)
				}
			}
			if len(cs.goDoneFields) > 0 {
				if base := callReceiverPath(x); base != "" {
					for f := range cs.goDoneFields {
						path := base + "." + f
						if !addsBefore(path, x.Pos()) {
							report(x.Pos(), "call to %s spawns a goroutine that calls %s.Done, but no %s.Add precedes the call; Add must happen-before the spawn", e.Name, path, path)
						}
					}
				}
			}
		}
		return true
	})
}

// goDoneTargets lists the WaitGroup paths the goroutine spawned by one go
// statement will Done: direct statement Dones in its func literal,
// synchronous Dones of helpers the literal calls with a WaitGroup, or —
// for `go f(&wg)` — f's synchronous and spawned Dones both (either way
// the Done happens after the spawn). Direct Dones count only when the path
// is a WaitGroup candidate (two-operation heuristic or resolved type) —
// span.Done()-style finalizers are not WaitGroup protocol. Summary-derived
// Dones are already established as WaitGroups by the helper's signature.
func goDoneTargets(pkg *Package, prog *Program, sums *wgSummaries, n *FuncNode, g *ast.GoStmt, candidate func(string) bool) []string {
	targets := map[string]bool{}
	addFromSummary := func(call *ast.CallExpr, cs *wgSummary, includeGo bool) {
		idxs := cs.syncDoneParams
		if includeGo {
			idxs = mergeSets(cs.syncDoneParams, cs.goDoneParams)
		}
		for calleeIdx := range idxs {
			if calleeIdx >= len(call.Args) {
				continue
			}
			if path := wgArgPath(call.Args[calleeIdx]); path != "" {
				targets[path] = true
			}
		}
		fields := cs.syncDoneFields
		if includeGo {
			fields = map[string]bool{}
			for f := range cs.syncDoneFields {
				fields[f] = true
			}
			for f := range cs.goDoneFields {
				fields[f] = true
			}
		}
		if len(fields) > 0 {
			if base := callReceiverPath(call); base != "" {
				for f := range fields {
					targets[base+"."+f] = true
				}
			}
		}
	}

	edges := map[token.Pos]CallEdge{}
	for _, e := range n.Calls {
		edges[e.Pos] = e
	}
	if fl, ok := g.Call.Fun.(*ast.FuncLit); ok {
		for _, u := range collectWgUses(fl.Body) {
			if u.op == "Done" && !u.inGo && (candidate(u.path) || isWaitGroupExprAt(pkg, fl.Body, u)) {
				targets[u.path] = true
			}
		}
		ast.Inspect(fl.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			if e, isEdge := edges[call.Pos()]; isEdge {
				if callee := prog.FuncAt(e.Callee); callee != nil {
					addFromSummary(call, sums.summary(callee, map[*FuncNode]bool{}), false)
				}
			}
			return true
		})
	} else if e, isEdge := edges[g.Call.Pos()]; isEdge {
		if callee := prog.FuncAt(e.Callee); callee != nil {
			addFromSummary(g.Call, sums.summary(callee, map[*FuncNode]bool{}), true)
		}
	}
	out := make([]string, 0, len(targets))
	for t := range targets {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// isWaitGroupExprAt reports whether the use's WaitGroup expression
// resolves to sync.WaitGroup by type — the fallback candidacy signal when
// the two-operation heuristic cannot fire (a lone Add or Wait).
func isWaitGroupExprAt(pkg *Package, body *ast.BlockStmt, u wgUse) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() != u.pos {
			return true
		}
		if sel, isSel := call.Fun.(*ast.SelectorExpr); isSel {
			if named := namedTypeOf(pkg.TypeOf(sel.X)); named != nil && named.Obj() != nil {
				if named.Obj().Name() == "WaitGroup" && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync" {
					found = true
				}
			}
		}
		return false
	})
	return found
}
