package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// AtomicMix returns the atomics-consistency analyzer. Mixing sync/atomic
// operations with plain loads and stores on the same memory is a data
// race the race detector only catches when the schedule cooperates: the
// atomic op promises the compiler and other goroutines a protocol the
// plain access silently breaks. The rule is program-wide — a field
// touched by atomic.AddInt64 in one package must be accessed atomically
// in every package — so the analyzer indexes atomic call sites over the
// whole call-graph program and flags every plain access to the same
// variable, citing the atomic witness site. Initialization-before-publish
// paths that are provably single-goroutine can be suppressed with that
// argument spelled out.
func AtomicMix() *Analyzer {
	registries := map[*Program]map[string]token.Pos{}
	return &Analyzer{
		Name: "atomicmix",
		Doc:  "a variable accessed via sync/atomic anywhere must be accessed atomically everywhere",
		Run: func(pkg *Package, report ReportFunc) {
			prog := pkg.Prog
			if prog == nil {
				return
			}
			atomics, ok := registries[prog]
			if !ok {
				atomics = indexAtomicSites(prog)
				registries[prog] = atomics
			}
			if len(atomics) == 0 {
				return
			}
			checkPlainAccesses(pkg, atomics, report)
		},
	}
}

// atomicAddr returns the address-taken operand of a sync/atomic call
// (`&x.n` in atomic.AddInt64(&x.n, 1)), or nil. Calls are matched by the
// selector's package ident resolving to sync/atomic — via type info when
// present, by import name otherwise (fixture stubs).
func atomicAddr(pkg *Package, file *ast.File, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	if pkg.Info != nil {
		if obj, resolved := pkg.Info.Uses[id]; resolved {
			pn, isPkg := obj.(*types.PkgName)
			if !isPkg || pn.Imported().Path() != "sync/atomic" {
				return nil
			}
		} else if file == nil || id.Name != importedName(file, "sync/atomic") {
			return nil
		}
	} else if file == nil || id.Name != importedName(file, "sync/atomic") {
		return nil
	}
	u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	return ast.Unparen(u.X)
}

// atomicIdentity canonicalizes the operand of an atomic (or plain) access
// into a program-wide variable identity: "pkg.Type.field" for a struct
// field, "pkg.var" for a package-level variable. Locals return "" — a
// local mixing atomics and plain access is visible lexically and is not
// this analyzer's cross-package concern.
func atomicIdentity(pkg *Package, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if named := namedTypeOf(pkg.TypeOf(x.X)); named != nil && named.Obj() != nil && named.Obj().Pkg() != nil {
			return pkgBase(named.Obj().Pkg().Path()) + "." + named.Obj().Name() + "." + x.Sel.Name
		}
	case *ast.Ident:
		if pkg.Info != nil {
			if v, ok := pkg.Info.Uses[x].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return pkgBase(v.Pkg().Path()) + "." + v.Name()
			}
		}
	}
	return ""
}

// indexAtomicSites scans every package of the program for sync/atomic
// calls and returns variable identity → earliest atomic site.
func indexAtomicSites(prog *Program) map[string]token.Pos {
	out := map[string]token.Pos{}
	for _, pkg := range prog.Packages() {
		for _, file := range pkg.Files {
			f := file
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				addr := atomicAddr(pkg, f, call)
				if addr == nil {
					return true
				}
				if id := atomicIdentity(pkg, addr); id != "" {
					if prev, have := out[id]; !have || call.Pos() < prev {
						out[id] = call.Pos()
					}
				}
				return true
			})
		}
	}
	return out
}

// checkPlainAccesses reports every non-atomic access in pkg to a variable
// in the atomic registry. Operands of atomic calls themselves are exempt
// (that is the sanctioned access path); everything else — reads, writes,
// composite-literal field values — mixes the protocols.
func checkPlainAccesses(pkg *Package, atomics map[string]token.Pos, report ReportFunc) {
	for _, file := range pkg.Files {
		f := file
		// Pre-pass: the &x operands of atomic calls in this file are the
		// sanctioned accesses; skip them (and only them) in the main scan.
		sanctioned := map[ast.Expr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if addr := atomicAddr(pkg, f, call); addr != nil {
					sanctioned[addr] = true
				}
			}
			return true
		})
		var hits []ast.Expr
		var scan func(n ast.Node)
		scan = func(root ast.Node) {
			ast.Inspect(root, func(n ast.Node) bool {
				e, ok := n.(ast.Expr)
				if !ok {
					return true
				}
				if sanctioned[e] {
					return false
				}
				switch e.(type) {
				case *ast.SelectorExpr, *ast.Ident:
					if id := atomicIdentity(pkg, e); id != "" {
						if _, isAtomic := atomics[id]; isAtomic {
							hits = append(hits, e)
							return false // x.n matched; don't re-match the inner x
						}
					}
				}
				return true
			})
		}
		scan(f)
		sort.Slice(hits, func(i, j int) bool { return hits[i].Pos() < hits[j].Pos() })
		for _, e := range hits {
			id := atomicIdentity(pkg, e)
			site := pkg.Fset.Position(atomics[id])
			report(e.Pos(), "plain access to %s, which is accessed atomically at %s:%d; mixing sync/atomic with plain loads and stores is a data race — use the atomic API here too",
				id, filepath.Base(site.Filename), site.Line)
		}
	}
}
