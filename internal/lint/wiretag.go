package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// WireTagPackages is the serving surface whose wire shapes wiretag pins.
var WireTagPackages = []string{Module + "/internal/serve"}

// WireTag returns the wire-struct shape analyzer for the serving package.
// The v1 API promises byte-stable JSON: the apisurface golden pins every
// field of every wire struct, and clients parse on exact names. That only
// holds when the shape is fully explicit:
//
//   - every exported field of a wire struct (any struct with at least one
//     json-tagged field) carries an explicit json tag — a missing tag
//     silently wires the Go identifier, and a later rename becomes a
//     breaking API change no diff flags;
//   - wire structs carry no map or interface{} fields, and writeJSON is
//     never handed a map or an anonymous struct — maps marshal in sorted
//     key order (fine) but their shape is invisible to the surface
//     extractor and to clients' static decoding, and interface{} fields
//     have no shape at all. Responses are named structs, extracted into
//     the golden.
func WireTag() *Analyzer {
	return &Analyzer{
		Name:     "wiretag",
		Doc:      "wire structs: explicit json tags on every exported field, no map/interface fields, writeJSON takes named structs",
		Packages: WireTagPackages,
		Run:      runWireTag,
	}
}

func runWireTag(pkg *Package, report ReportFunc) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			switch x := node.(type) {
			case *ast.TypeSpec:
				if st, ok := x.Type.(*ast.StructType); ok && isWireStruct(st) {
					checkWireStruct(pkg, x.Name.Name, st, report)
				}
			case *ast.CallExpr:
				if callName(x) == "writeJSON" && len(x.Args) == 3 {
					checkWirePayload(pkg, x.Args[2], report)
				}
			}
			return true
		})
	}
}

// jsonTagOf returns the json tag of a field, and whether one is present.
func jsonTagOf(field *ast.Field) (string, bool) {
	if field.Tag == nil {
		return "", false
	}
	raw := strings.Trim(field.Tag.Value, "`")
	return reflect.StructTag(raw).Lookup("json")
}

// isWireStruct reports whether st is a wire struct: at least one field
// carries a json tag.
func isWireStruct(st *ast.StructType) bool {
	for _, field := range st.Fields.List {
		if _, ok := jsonTagOf(field); ok {
			return true
		}
	}
	return false
}

// checkWireStruct enforces the shape rules on one wire struct.
func checkWireStruct(pkg *Package, name string, st *ast.StructType, report ReportFunc) {
	for _, field := range st.Fields.List {
		tag, hasTag := jsonTagOf(field)
		for _, fname := range field.Names {
			if !ast.IsExported(fname.Name) {
				continue
			}
			switch {
			case !hasTag:
				report(fname.Pos(), "wire struct %s: exported field %s has no json tag; the wire name must be explicit", name, fname.Name)
			case tag == "" || strings.Split(tag, ",")[0] == "":
				report(fname.Pos(), "wire struct %s: field %s has an empty json name; name it or exclude it with json:\"-\"", name, fname.Name)
			}
		}
		if hasTag && strings.Split(tag, ",")[0] != "-" {
			bad := shapelessType(field.Type)
			if bad == "" {
				// The syntactic walk misses aliases (`any`) and named
				// map/interface types; the resolved type catches those.
				bad = shapelessResolved(pkg.TypeOf(field.Type))
			}
			if bad != "" {
				report(field.Type.Pos(), "wire struct %s: field type contains %s; wire shapes must be fully explicit (use a named struct)", name, bad)
			}
		}
	}
}

// shapelessType reports the first map or interface type inside e ("" when
// clean). Pointers, slices, and arrays are transparent; named types are
// accepted by name (their own declaration is checked where it lives).
func shapelessType(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.MapType:
		return "a map (shape invisible to the surface golden)"
	case *ast.InterfaceType:
		return "an interface (no static shape)"
	case *ast.StarExpr:
		return shapelessType(x.X)
	case *ast.ArrayType:
		return shapelessType(x.Elt)
	case *ast.StructType:
		for _, field := range x.Fields.List {
			if bad := shapelessType(field.Type); bad != "" {
				return bad
			}
		}
	}
	return ""
}

// shapelessResolved is shapelessType over a resolved type: it unwraps
// pointers, slices, and arrays and reports a map or interface underneath.
// Named structs terminate the walk (their declarations are checked where
// they live); unresolved (stubbed) types pass.
func shapelessResolved(t types.Type) string {
	for t != nil {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Slice:
			t = x.Elem()
		case *types.Array:
			t = x.Elem()
		case *types.Named:
			t = x.Underlying()
		case *types.Alias:
			t = types.Unalias(x)
		case *types.Map:
			return "a map (shape invisible to the surface golden)"
		case *types.Interface:
			return "an interface (no static shape)"
		default:
			return ""
		}
	}
	return ""
}

// checkWirePayload enforces that a writeJSON payload is a named shape.
func checkWirePayload(pkg *Package, arg ast.Expr, report ReportFunc) {
	e := ast.Unparen(arg)
	// Syntactic forms first, so fixtures without full type info still
	// catch the common shapes.
	if cl, ok := e.(*ast.CompositeLit); ok {
		switch cl.Type.(type) {
		case *ast.MapType:
			report(arg.Pos(), "writeJSON payload is a map literal; responses are named wire structs so the surface golden can pin their shape")
			return
		case *ast.StructType:
			report(arg.Pos(), "writeJSON payload is an anonymous struct; declare a named wire struct")
			return
		}
	}
	t := pkg.TypeOf(e)
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Map:
		report(arg.Pos(), "writeJSON payload has map type %s; responses are named wire structs so the surface golden can pin their shape", t.String())
	case *types.Struct:
		if _, named := t.(*types.Named); !named && u.NumFields() > 0 {
			report(arg.Pos(), "writeJSON payload is an anonymous struct; declare a named wire struct")
		}
	}
}
