package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestAnalyzerFixtures pins every analyzer's detection behavior with
// want-comment fixtures under testdata/<analyzer>/. Each fixture file is
// compiled as its own single-file package and annotated inline:
//
//	ch <- 1 // want `bare send on unbuffered channel`
//
// A `// want` comment carries one or more quoted regexps; every expected
// diagnostic must be reported on that line, and every reported diagnostic
// must be expected. A fixture without want comments is a negative fixture:
// the analyzer must stay silent on it. Fixtures compile under the first
// package path the analyzer applies to; a fixture that needs a different
// path (proving an analyzer ignores out-of-scope packages, or exercising
// the Compass-only goroutine rules) overrides it with a first-line
//
//	//lintfixture:package <import-path>
//
// directive. The harness fails if an analyzer has no fixture directory or
// no fixture files — detection regressions and missing coverage both fail
// `go test`.
func TestAnalyzerFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name)
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatalf("analyzer %q has no fixture directory: %v", a.Name, err)
			}
			ran := 0
			for _, e := range entries {
				if e.IsDir() {
					ran++
					name := e.Name()
					t.Run(name, func(t *testing.T) {
						runMultiFixture(t, a, filepath.Join(dir, name))
					})
					continue
				}
				if !strings.HasSuffix(e.Name(), ".go") {
					continue
				}
				ran++
				runFixture(t, a, filepath.Join(dir, e.Name()))
			}
			if ran == 0 {
				t.Fatalf("analyzer %q has no fixture files in %s", a.Name, dir)
			}
		})
	}
}

const fixtureDirective = "//lintfixture:package "

// wantArgRe extracts the quoted regexps of one want comment.
var wantArgRe = regexp.MustCompile("[\"`]([^\"`]+)[\"`]")

// wantExpectation is one expected diagnostic.
type wantExpectation struct {
	re      *regexp.Regexp
	matched bool
}

func runFixture(t *testing.T, a *Analyzer, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	src := string(data)
	lines := strings.Split(src, "\n")

	importPath := fixtureImportPath(a)
	if len(lines) > 0 && strings.HasPrefix(lines[0], fixtureDirective) {
		importPath = strings.TrimSpace(strings.TrimPrefix(lines[0], fixtureDirective))
	}

	wants := map[int][]*wantExpectation{}
	for i, line := range lines {
		idx := strings.Index(line, "// want ")
		if idx < 0 {
			continue
		}
		args := wantArgRe.FindAllStringSubmatch(line[idx+len("// want "):], -1)
		if len(args) == 0 {
			t.Fatalf("%s:%d: malformed want comment (need quoted regexps)", path, i+1)
		}
		for _, m := range args {
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
			}
			wants[i+1] = append(wants[i+1], &wantExpectation{re: re})
		}
	}

	pkg, err := CheckSource(importPath, map[string]string{filepath.Base(path): src})
	if err != nil {
		t.Fatalf("%s: parse: %v", path, err)
	}
	for _, d := range Run([]*Package{pkg}, []*Analyzer{a}) {
		matched := false
		for _, w := range wants[d.Pos.Line] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic [%s] %s", path, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	var missed []string
	for line, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				missed = append(missed, fmt.Sprintf("%s:%d: expected diagnostic matching %q was not reported", path, line, w.re))
			}
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}

// runMultiFixture runs one directory-based multi-package fixture: every
// .go file in dir declares its package with a first-line
// //lintfixture:package directive, files group into packages that may
// import each other, and the analyzer runs over all of them with full
// call-graph context — the harness for the interprocedural taint rules,
// where the hazard lives one or two calls away from the reported site.
// Want comments work exactly as in single-file fixtures, matched per file.
func runMultiFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	sources := map[string]map[string]string{}
	wants := map[string]map[int][]*wantExpectation{}
	nfiles := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		nfiles++
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		src := string(data)
		lines := strings.Split(src, "\n")
		if len(lines) == 0 || !strings.HasPrefix(lines[0], fixtureDirective) {
			t.Fatalf("%s: multi-package fixture files need a first-line %s<import-path> directive", path, fixtureDirective)
		}
		importPath := strings.TrimSpace(strings.TrimPrefix(lines[0], fixtureDirective))
		if sources[importPath] == nil {
			sources[importPath] = map[string]string{}
		}
		if _, dup := sources[importPath][e.Name()]; dup {
			t.Fatalf("%s: duplicate filename in package %s", path, importPath)
		}
		sources[importPath][e.Name()] = src
		fileWants := map[int][]*wantExpectation{}
		for i, line := range lines {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			args := wantArgRe.FindAllStringSubmatch(line[idx+len("// want "):], -1)
			if len(args) == 0 {
				t.Fatalf("%s:%d: malformed want comment (need quoted regexps)", path, i+1)
			}
			for _, m := range args {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
				}
				fileWants[i+1] = append(fileWants[i+1], &wantExpectation{re: re})
			}
		}
		wants[e.Name()] = fileWants
	}
	if nfiles == 0 {
		t.Fatalf("multi-package fixture %s has no .go files", dir)
	}
	pkgs, err := CheckPackages(sources)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	for _, d := range RunWithContext(pkgs, nil, []*Analyzer{a}) {
		file := filepath.Base(d.Pos.Filename)
		matched := false
		for _, w := range wants[file][d.Pos.Line] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s/%s:%d: unexpected diagnostic [%s] %s", dir, file, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	var missed []string
	for file, fileWants := range wants {
		for line, ws := range fileWants {
			for _, w := range ws {
				if !w.matched {
					missed = append(missed, fmt.Sprintf("%s/%s:%d: expected diagnostic matching %q was not reported", dir, file, line, w.re))
				}
			}
		}
	}
	sort.Strings(missed)
	for _, m := range missed {
		t.Error(m)
	}
}

// fixtureImportPath picks the package path fixtures compile under: the
// first path the analyzer applies to (sans /... wildcard), or a neutral
// module path for analyzers that apply everywhere.
func fixtureImportPath(a *Analyzer) string {
	if len(a.Packages) == 0 {
		return Module + "/internal/fixture"
	}
	return strings.TrimSuffix(a.Packages[0], "/...")
}
