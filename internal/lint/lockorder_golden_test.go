package lint

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateLockOrder = flag.Bool("update-lockorder", false, "rewrite testdata/lockorder/hierarchy.golden from the current repo")

// TestLockOrderGolden pins the repo's lock hierarchy the way perfproof pins
// allocation budgets: the checked-in golden is the reviewable artifact, a
// diff means the lock structure changed and must be reviewed, and a cycle
// fails outright regardless of the golden. Regenerate deliberately with
//
//	go test ./internal/lint -run TestLockOrderGolden -update-lockorder
func TestLockOrderGolden(t *testing.T) {
	l := newRepoLoader(t)
	paths, err := l.AllImportPaths()
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	prog := NewProgram(pkgs)
	g := NewLockGraph(prog, ConcurrencyPackages)

	for _, e := range g.CycleEdges() {
		t.Errorf("lock-order cycle edge %s -> %s via %s", e.From, e.To, e.via())
	}

	got := g.Render()
	goldenPath := filepath.Join("testdata", "lockorder", "hierarchy.golden")
	if *updateLockOrder {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update-lockorder to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("lock hierarchy changed — review the diff, then regenerate with -update-lockorder\ngot:\n%s\nwant:\n%s", got, want)
	}
}
