package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateAPISurface = flag.Bool("update-apisurface", false,
	"rewrite testdata/apisurface/v1.golden and the README endpoint tables from the current repo")

const (
	apiSurfaceBegin = "<!-- apisurface:begin -->"
	apiSurfaceEnd   = "<!-- apisurface:end -->"
)

// TestAPISurfaceGolden pins the served v1 API: every route, request and
// response shape, reachable error code, and wire-struct field, extracted
// from internal/serve by the apisurface extractor. The diff is two-sided —
// an endpoint or field added without re-blessing fails with the source
// file:line it came from, and a pinned entry that disappears fails with
// the golden line that no longer matches. The README's endpoint tables are
// rendered from the same spec, so docs cannot drift from code. Re-bless
// deliberately with
//
//	go test ./internal/lint -run TestAPISurfaceGolden -update-apisurface
func TestAPISurfaceGolden(t *testing.T) {
	l := newRepoLoader(t)
	paths, err := l.AllImportPaths()
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, pkg)
	}
	prog := NewProgram(pkgs)
	surf, err := ExtractSurface(prog, pkgs)
	if err != nil {
		t.Fatal(err)
	}

	goldenPath := filepath.Join("testdata", "apisurface", "v1.golden")
	readmePath := filepath.Join(l.ModuleRoot, "README.md")

	if *updateAPISurface {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(surf.Render()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		readme, err := os.ReadFile(readmePath)
		if err != nil {
			t.Fatal(err)
		}
		updated, err := replaceSurfaceBlock(string(readme), surf.MarkdownTables())
		if err != nil {
			t.Fatalf("README.md: %v", err)
		}
		if err := os.WriteFile(readmePath, []byte(updated), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote README.md endpoint tables")
		return
	}

	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run with -update-apisurface to create): %v", err)
	}
	for _, d := range surf.DiffGolden(string(golden)) {
		t.Error(d)
	}

	readme, err := os.ReadFile(readmePath)
	if err != nil {
		t.Fatal(err)
	}
	block, err := surfaceBlock(string(readme))
	if err != nil {
		t.Fatalf("README.md: %v", err)
	}
	if strings.TrimSpace(block) != strings.TrimSpace(surf.MarkdownTables()) {
		t.Errorf("README endpoint tables are out of date with the extracted surface — regenerate with -update-apisurface")
	}
}

// surfaceBlock returns the text between the apisurface markers.
func surfaceBlock(readme string) (string, error) {
	i := strings.Index(readme, apiSurfaceBegin)
	j := strings.Index(readme, apiSurfaceEnd)
	if i < 0 || j < 0 || j < i {
		return "", errMissingMarkers
	}
	return readme[i+len(apiSurfaceBegin) : j], nil
}

// replaceSurfaceBlock swaps the marker-delimited block for tables.
func replaceSurfaceBlock(readme, tables string) (string, error) {
	i := strings.Index(readme, apiSurfaceBegin)
	j := strings.Index(readme, apiSurfaceEnd)
	if i < 0 || j < 0 || j < i {
		return "", errMissingMarkers
	}
	return readme[:i+len(apiSurfaceBegin)] + "\n" + tables + readme[j:], nil
}

var errMissingMarkers = &markerErr{}

type markerErr struct{}

func (*markerErr) Error() string {
	return "generated-surface markers <!-- apisurface:begin/end --> not found or out of order"
}
