package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// PerfHotDirective marks a function as part of the proven per-tick hot set.
// It is shared with the perfproof compiler-diagnostics gate (cmd/tnproof):
// functions carrying it get escape/bounds-check budgets there and join
// hotalloc's hot set here, so the two gates watch the same code.
const PerfHotDirective = "//perf:hot"

// coldFuncNames are sanctioned cold-path barriers: module functions whose
// hazards do not taint their callers because reaching them at all means the
// fast path already failed. bfs is the router's blocked-detour fallback
// (allocates a visited map and queue by design); inject is the engines'
// beyond-horizon injection queue (grows pending maps by design). Taint
// propagation stops at a barrier; the barrier's own body is still subject to
// whatever direct checks apply to its package.
var coldFuncNames = map[string]bool{
	"bfs":    true,
	"inject": true,
}

// HazardKind classifies an intrinsic hazard a function body can carry.
type HazardKind uint8

const (
	// HazardAlloc: the body contains a heap-shaped construct (the same
	// rules hotalloc applies to hot bodies, plus returning a func literal).
	HazardAlloc HazardKind = iota
	// HazardRand: the body draws from math/rand or reads time.Now.
	HazardRand
	// HazardGo: the body launches a goroutine.
	HazardGo
	// HazardBlock: the body performs a potentially blocking operation on
	// the calling goroutine — a channel send/receive, a select with no
	// default arm, a range over a channel, time.Sleep, or an argument-less
	// .Wait() call. Operations inside go-spawned func literals do not
	// count: they block the spawned goroutine, not the caller, and the
	// edges into spawned code are tagged InGo so the taint stays put.
	HazardBlock
	numHazardKinds
)

// Hazard is one intrinsic hazard at a position inside some function body.
type Hazard struct {
	Pos token.Pos
	Msg string
}

// FuncNode is one function declaration in the Program's call graph.
type FuncNode struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	// Calls are the module-local calls the body makes, in source order,
	// resolved through type information; calls to stdlib, to stubbed
	// externals, and through function values do not produce edges.
	Calls []CallEdge
	// hazards holds the body's intrinsic hazards per kind.
	hazards [numHazardKinds][]Hazard
}

// Name renders the node's message name: "Func" or "Recv.Func".
func (n *FuncNode) Name() string {
	fd := n.Decl
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr:
			t = u.X
		case *ast.IndexListExpr:
			t = u.X
		case *ast.Ident:
			return u.Name + "." + fd.Name.Name
		default:
			return fd.Name.Name
		}
	}
}

// hot reports whether the node is in hotalloc's hot set: a per-tick kernel
// function by name, or any function carrying the //perf:hot directive.
func (n *FuncNode) hot() bool {
	return hotFuncNames[n.Decl.Name.Name] || hasPerfHot(n.Decl.Doc)
}

// barrier reports whether the node is a sanctioned cold-path fallback.
func (n *FuncNode) barrier() bool { return coldFuncNames[n.Decl.Name.Name] }

// hasPerfHot reports whether a doc comment contains the //perf:hot line.
func hasPerfHot(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == PerfHotDirective {
			return true
		}
	}
	return false
}

// CallEdge is one resolved call site or function-value reference.
type CallEdge struct {
	Pos    token.Pos // position of the call expression or reference
	Callee token.Pos // the callee's declaration-name position (Program key)
	Name   string    // callee name for messages
	// InGo marks an edge whose callee runs on a goroutine the caller
	// spawns: the operand of a go statement, or any call inside a
	// go-spawned func literal. Blocking taint does not flow back across
	// such edges — the spawned goroutine blocking does not block the
	// caller.
	InGo bool
}

// carries reports whether taint of the given kind flows back across the
// edge. Only blocking is goroutine-local; every other hazard (allocation,
// nondeterminism, goroutine launch) is a property of reaching the code at
// all.
func (e CallEdge) carries(kind HazardKind) bool {
	return !e.InGo || kind != HazardBlock
}

// Program is a module-local call graph over a set of type-checked packages
// sharing one FileSet. Analyzers use it to taint hazards through helper
// functions: a hot kernel function calling a helper that allocates (or draws
// nondeterministic randomness, or launches a goroutine) is reported at the
// call site, with the witness chain in the message.
type Program struct {
	pkgs  []*Package
	funcs map[token.Pos]*FuncNode
	memo  map[taintKey]*Taint
	// methods indexes method declarations by name for single-implementation
	// interface devirtualization; built lazily on first interface call.
	methods map[string][]*FuncNode
}

type taintKey struct {
	fn   token.Pos
	kind HazardKind
}

// NewProgram builds the call graph over pkgs. Packages must share a FileSet
// (the Loader and CheckPackages guarantee this); function objects are keyed
// by the position of their declaration name, which is how *types.Func
// objects from any importing package point back at their declaration.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		pkgs:  pkgs,
		funcs: map[token.Pos]*FuncNode{},
		memo:  map[taintKey]*Taint{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				node := &FuncNode{Pkg: pkg, Decl: fd}
				p.funcs[fd.Name.Pos()] = node
			}
		}
	}
	for _, node := range p.funcs {
		p.analyze(node)
	}
	return p
}

// FuncAt returns the node declared at the given name position, or nil.
func (p *Program) FuncAt(pos token.Pos) *FuncNode { return p.funcs[pos] }

// Packages returns the packages the program was built over, targets and
// context alike, in construction order.
func (p *Program) Packages() []*Package { return p.pkgs }

// Funcs calls visit for every function declared in pkg, in no particular
// order; callers needing determinism sort by position.
func (p *Program) Funcs(pkg *Package, visit func(*FuncNode)) {
	for _, n := range p.funcs {
		if n.Pkg == pkg {
			visit(n)
		}
	}
}

// analyze fills a node's call edges and intrinsic hazards.
func (p *Program) analyze(n *FuncNode) {
	pkg := n.Pkg
	p.scan(n, n.Decl.Body, false, map[*ast.Ident]bool{})
	// Alloc hazards reuse hotalloc's body rules: the helper is judged by
	// the same standard a hot body is, so taint and direct findings agree.
	resets := collectResets(pkg)
	aliases := collectAliases(n.Decl.Body)
	record := func(pos token.Pos, format string, args ...any) {
		n.hazards[HazardAlloc] = append(n.hazards[HazardAlloc],
			Hazard{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
	file := fileOf(pkg, n.Decl.Pos())
	checkHotBody(pkg, file, n.Decl.Body, false, aliases, resets, record)
}

// scan walks one subtree of n's body recording call edges and intrinsic
// hazards. inGo marks code running on a goroutine the body spawns: its
// edges are tagged InGo and its channel operations are not blocking
// hazards of n itself. direct collects identifiers that are the operator
// of a resolved call, so the function-value pass does not double-count
// them as reference edges.
func (p *Program) scan(n *FuncNode, root ast.Node, inGo bool, direct map[*ast.Ident]bool) {
	if root == nil {
		return
	}
	pkg := n.Pkg
	ast.Inspect(root, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			p.callSite(n, x, inGo, direct)
		case *ast.Ident:
			// A module-local function referenced as a value (method value,
			// callback argument, struct field init) is an edge too: the
			// reference is how the callee ends up running.
			if direct[x] || pkg.Info == nil {
				return true
			}
			if fn, ok := pkg.Info.Uses[x].(*types.Func); ok {
				if _, local := p.funcs[fn.Pos()]; local {
					n.Calls = append(n.Calls, CallEdge{Pos: x.Pos(), Callee: fn.Pos(), Name: x.Name, InGo: inGo})
				}
			}
		case *ast.GoStmt:
			n.hazards[HazardGo] = append(n.hazards[HazardGo],
				Hazard{Pos: x.Pos(), Msg: "launches a goroutine"})
			// Arguments are evaluated on the calling goroutine; the callee
			// (func literal body or named function) runs on the new one.
			for _, a := range x.Call.Args {
				p.scan(n, a, inGo, direct)
			}
			if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
				p.scan(n, fl.Body, true, direct)
			} else {
				p.callSite(n, x.Call, true, direct)
			}
			return false
		case *ast.SendStmt:
			if !inGo {
				n.hazards[HazardBlock] = append(n.hazards[HazardBlock],
					Hazard{Pos: x.Pos(), Msg: "a channel send"})
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !inGo {
				n.hazards[HazardBlock] = append(n.hazards[HazardBlock],
					Hazard{Pos: x.Pos(), Msg: "a channel receive"})
			}
		case *ast.SelectStmt:
			// A select blocks as a whole unless it has a default arm; the
			// comm operations themselves are the select's blocking point,
			// not separate hazards, so only their operands are scanned.
			if !inGo && !selectHasDefault(x) {
				n.hazards[HazardBlock] = append(n.hazards[HazardBlock],
					Hazard{Pos: x.Pos(), Msg: "a select with no default arm"})
			}
			for _, c := range x.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				switch comm := cc.Comm.(type) {
				case *ast.SendStmt:
					p.scan(n, comm.Chan, inGo, direct)
					p.scan(n, comm.Value, inGo, direct)
				case *ast.ExprStmt:
					p.scanCommExpr(n, comm.X, inGo, direct)
				case *ast.AssignStmt:
					for _, e := range comm.Lhs {
						p.scan(n, e, inGo, direct)
					}
					for _, e := range comm.Rhs {
						p.scanCommExpr(n, e, inGo, direct)
					}
				case nil:
				default:
					p.scan(n, comm, inGo, direct)
				}
				for _, bs := range cc.Body {
					p.scan(n, bs, inGo, direct)
				}
			}
			return false
		case *ast.RangeStmt:
			if !inGo && pkg.Info != nil {
				if t := pkg.TypeOf(x.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						n.hazards[HazardBlock] = append(n.hazards[HazardBlock],
							Hazard{Pos: x.Pos(), Msg: "a range over a channel"})
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if _, ok := res.(*ast.FuncLit); ok {
					n.hazards[HazardAlloc] = append(n.hazards[HazardAlloc],
						Hazard{Pos: res.Pos(), Msg: "returns a func literal (closure allocation)"})
				}
			}
		}
		return true
	})
}

// scanCommExpr scans a select comm-clause expression: a top-level channel
// receive is the select's blocking point, so only its operand is scanned.
func (p *Program) scanCommExpr(n *FuncNode, e ast.Expr, inGo bool, direct map[*ast.Ident]bool) {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		p.scan(n, u.X, inGo, direct)
		return
	}
	p.scan(n, e, inGo, direct)
}

// callSite records the edge and hazards of one call expression.
func (p *Program) callSite(n *FuncNode, call *ast.CallExpr, inGo bool, direct map[*ast.Ident]bool) {
	pkg := n.Pkg
	if fn, id, ok := calleeFunc(pkg, call); ok {
		direct[id] = true
		if _, local := p.funcs[fn.Pos()]; local {
			n.Calls = append(n.Calls, CallEdge{Pos: call.Pos(), Callee: fn.Pos(), Name: fn.Name(), InGo: inGo})
		} else if impl := p.devirtualize(fn); impl != nil {
			n.Calls = append(n.Calls, CallEdge{Pos: call.Pos(), Callee: impl.Decl.Name.Pos(), Name: fn.Name(), InGo: inGo})
		}
	}
	if pkgPath, sel, ok := pkgCall(pkg, call); ok {
		switch {
		case pkgPath == "math/rand" || pkgPath == "math/rand/v2":
			n.hazards[HazardRand] = append(n.hazards[HazardRand],
				Hazard{Pos: call.Pos(), Msg: "draws from " + pkgPath + "." + sel})
		case pkgPath == "time" && sel == "Now":
			n.hazards[HazardRand] = append(n.hazards[HazardRand],
				Hazard{Pos: call.Pos(), Msg: "reads the wall clock (time.Now)"})
		case pkgPath == "time" && sel == "Sleep":
			if !inGo {
				n.hazards[HazardBlock] = append(n.hazards[HazardBlock],
					Hazard{Pos: call.Pos(), Msg: "time.Sleep"})
			}
		}
		return
	}
	if !inGo && len(call.Args) == 0 {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
			n.hazards[HazardBlock] = append(n.hazards[HazardBlock],
				Hazard{Pos: call.Pos(), Msg: "a Wait call"})
		}
	}
}

// devirtualize resolves a module-declared interface method to its concrete
// implementation when exactly one named type in the program implements the
// interface — the common registry/strategy shape where the indirection is
// structural, not behavioral. Two or more implementations stay unresolved:
// guessing an edge would attribute one implementation's hazards to all
// callers.
func (p *Program) devirtualize(fn *types.Func) *FuncNode {
	if fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), Module) {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	if p.methods == nil {
		p.methods = map[string][]*FuncNode{}
		for _, cand := range p.funcs {
			if cand.Decl.Recv != nil && len(cand.Decl.Recv.List) > 0 {
				name := cand.Decl.Name.Name
				p.methods[name] = append(p.methods[name], cand)
			}
		}
	}
	var match *FuncNode
	for _, cand := range p.methods[fn.Name()] {
		recv := receiverType(cand)
		if recv == nil || !implements(recv, iface) {
			continue
		}
		if match != nil && receiverNamed(recv) != receiverNamed(match) {
			return nil // ambiguous: more than one implementing type
		}
		if match == nil {
			match = cand
		}
	}
	return match
}

// receiverType returns the type of a method declaration's receiver via the
// declaring package's type info, or nil.
func receiverType(n *FuncNode) types.Type {
	if n.Pkg.Info == nil {
		return nil
	}
	tf, ok := n.Pkg.Info.Defs[n.Decl.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := tf.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// receiverNamed strips a pointer and returns the receiver's *types.Named,
// so value and pointer methods of one type count as one implementation.
func receiverNamed(v any) *types.Named {
	var t types.Type
	switch x := v.(type) {
	case types.Type:
		t = x
	case *FuncNode:
		t = receiverType(x)
	}
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// implements reports whether the receiver type (or its pointer form)
// satisfies the interface.
func implements(recv types.Type, iface *types.Interface) bool {
	if types.Implements(recv, iface) {
		return true
	}
	if _, isPtr := recv.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(recv), iface)
	}
	return false
}

// fileOf finds the *ast.File of pkg containing pos.
func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// calleeFunc resolves a call expression to the *types.Func it names (and
// the identifier naming it) via type information. Calls through function
// values, stubbed imports, and builtins report ok=false.
func calleeFunc(pkg *Package, call *ast.CallExpr) (*types.Func, *ast.Ident, bool) {
	if pkg.Info == nil {
		return nil, nil, false
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil, nil, false
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok || !fn.Pos().IsValid() {
		return nil, nil, false
	}
	return fn, id, true
}

// pkgCall resolves a call of the form pkgname.Sel(...) to the imported
// package's path, cross-checked against type info so shadowing locals do
// not match.
func pkgCall(pkg *Package, call *ast.CallExpr) (path, sel string, ok bool) {
	se, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := se.X.(*ast.Ident)
	if !isIdent || pkg.Info == nil {
		return "", "", false
	}
	pn, isPkg := pkg.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), se.Sel.Name, true
}

// Taint is a transitive hazard: the chain of calls from the queried
// function down to the function whose body carries the hazard.
type Taint struct {
	Hazard Hazard
	// Chain holds the call edges walked to reach the hazard, outermost
	// first; Chain[0] names the function the queried body calls.
	Chain []CallEdge
}

// Describe renders the taint as "f → g: <hazard> (file:line)" for
// diagnostics. Positions use the base filename so messages stay stable
// across checkouts.
func (t *Taint) Describe(fset *token.FileSet) string {
	var sb strings.Builder
	for i, e := range t.Chain {
		if i > 0 {
			sb.WriteString(" → ")
		}
		sb.WriteString(e.Name)
	}
	pos := fset.Position(t.Hazard.Pos)
	fmt.Fprintf(&sb, ": %s (%s:%d)", t.Hazard.Msg, filepath.Base(pos.Filename), pos.Line)
	return sb.String()
}

// taint returns a hazard of the given kind reachable from (and including)
// the function declared at pos, or nil. Results are memoized; in-progress
// nodes (cycles) conservatively report clean for the re-entrant query, which
// is sound here because any hazard on the cycle is found from the first
// entry point.
func (p *Program) taint(pos token.Pos, kind HazardKind, visiting map[token.Pos]bool) *Taint {
	key := taintKey{fn: pos, kind: kind}
	if t, ok := p.memo[key]; ok {
		return t
	}
	n := p.funcs[pos]
	if n == nil || visiting[pos] {
		return nil
	}
	visiting[pos] = true
	defer delete(visiting, pos)

	var result *Taint
	if hs := n.hazards[kind]; len(hs) > 0 {
		result = &Taint{Hazard: hs[0]}
	} else {
		for _, e := range n.Calls {
			callee := p.funcs[e.Callee]
			if callee == nil || callee.barrier() || !e.carries(kind) {
				continue
			}
			if t := p.taint(e.Callee, kind, visiting); t != nil {
				chain := append([]CallEdge{e}, t.Chain...)
				result = &Taint{Hazard: t.Hazard, Chain: chain}
				break
			}
		}
	}
	if len(visiting) == 1 {
		// Only memoize at the outermost frame of this query tree; inner
		// results computed under a cycle guard may be incomplete.
		p.memo[key] = result
	}
	return result
}

// CallTaints reports, for each call edge of fn whose callee skip() does not
// exclude, the first transitive hazard of the given kind. Intrinsic hazards
// of fn's own body are not reported — the direct analyzers own those.
func (p *Program) CallTaints(fn *FuncNode, kind HazardKind, skip func(*FuncNode) bool) []*Taint {
	var out []*Taint
	for _, e := range fn.Calls {
		callee := p.funcs[e.Callee]
		if callee == nil || (skip != nil && skip(callee)) {
			continue
		}
		if t := p.EdgeTaint(e, kind); t != nil {
			out = append(out, t)
		}
	}
	return out
}

// EdgeTaint reports the first transitive hazard of the given kind reachable
// through one call edge, with the edge prepended to the witness chain, or
// nil when the callee (and everything it reaches) is clean.
func (p *Program) EdgeTaint(e CallEdge, kind HazardKind) *Taint {
	callee := p.funcs[e.Callee]
	if callee == nil || callee.barrier() || !e.carries(kind) {
		return nil
	}
	if t := p.taint(e.Callee, kind, map[token.Pos]bool{}); t != nil {
		return &Taint{Hazard: t.Hazard, Chain: append([]CallEdge{e}, t.Chain...)}
	}
	return nil
}
