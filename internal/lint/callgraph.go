package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// PerfHotDirective marks a function as part of the proven per-tick hot set.
// It is shared with the perfproof compiler-diagnostics gate (cmd/tnproof):
// functions carrying it get escape/bounds-check budgets there and join
// hotalloc's hot set here, so the two gates watch the same code.
const PerfHotDirective = "//perf:hot"

// coldFuncNames are sanctioned cold-path barriers: module functions whose
// hazards do not taint their callers because reaching them at all means the
// fast path already failed. bfs is the router's blocked-detour fallback
// (allocates a visited map and queue by design); inject is the engines'
// beyond-horizon injection queue (grows pending maps by design). Taint
// propagation stops at a barrier; the barrier's own body is still subject to
// whatever direct checks apply to its package.
var coldFuncNames = map[string]bool{
	"bfs":    true,
	"inject": true,
}

// HazardKind classifies an intrinsic hazard a function body can carry.
type HazardKind uint8

const (
	// HazardAlloc: the body contains a heap-shaped construct (the same
	// rules hotalloc applies to hot bodies, plus returning a func literal).
	HazardAlloc HazardKind = iota
	// HazardRand: the body draws from math/rand or reads time.Now.
	HazardRand
	// HazardGo: the body launches a goroutine.
	HazardGo
	numHazardKinds
)

// Hazard is one intrinsic hazard at a position inside some function body.
type Hazard struct {
	Pos token.Pos
	Msg string
}

// FuncNode is one function declaration in the Program's call graph.
type FuncNode struct {
	Pkg  *Package
	Decl *ast.FuncDecl
	// Calls are the module-local calls the body makes, in source order,
	// resolved through type information; calls to stdlib, to stubbed
	// externals, and through function values do not produce edges.
	Calls []CallEdge
	// hazards holds the body's intrinsic hazards per kind.
	hazards [numHazardKinds][]Hazard
}

// Name renders the node's message name: "Func" or "Recv.Func".
func (n *FuncNode) Name() string {
	fd := n.Decl
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch u := t.(type) {
		case *ast.StarExpr:
			t = u.X
		case *ast.IndexExpr:
			t = u.X
		case *ast.IndexListExpr:
			t = u.X
		case *ast.Ident:
			return u.Name + "." + fd.Name.Name
		default:
			return fd.Name.Name
		}
	}
}

// hot reports whether the node is in hotalloc's hot set: a per-tick kernel
// function by name, or any function carrying the //perf:hot directive.
func (n *FuncNode) hot() bool {
	return hotFuncNames[n.Decl.Name.Name] || hasPerfHot(n.Decl.Doc)
}

// barrier reports whether the node is a sanctioned cold-path fallback.
func (n *FuncNode) barrier() bool { return coldFuncNames[n.Decl.Name.Name] }

// hasPerfHot reports whether a doc comment contains the //perf:hot line.
func hasPerfHot(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == PerfHotDirective {
			return true
		}
	}
	return false
}

// CallEdge is one resolved call site.
type CallEdge struct {
	Pos    token.Pos // position of the call expression
	Callee token.Pos // the callee's declaration-name position (Program key)
	Name   string    // callee name for messages
}

// Program is a module-local call graph over a set of type-checked packages
// sharing one FileSet. Analyzers use it to taint hazards through helper
// functions: a hot kernel function calling a helper that allocates (or draws
// nondeterministic randomness, or launches a goroutine) is reported at the
// call site, with the witness chain in the message.
type Program struct {
	funcs map[token.Pos]*FuncNode
	memo  map[taintKey]*Taint
}

type taintKey struct {
	fn   token.Pos
	kind HazardKind
}

// NewProgram builds the call graph over pkgs. Packages must share a FileSet
// (the Loader and CheckPackages guarantee this); function objects are keyed
// by the position of their declaration name, which is how *types.Func
// objects from any importing package point back at their declaration.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		funcs: map[token.Pos]*FuncNode{},
		memo:  map[taintKey]*Taint{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				node := &FuncNode{Pkg: pkg, Decl: fd}
				p.funcs[fd.Name.Pos()] = node
			}
		}
	}
	for _, node := range p.funcs {
		p.analyze(node)
	}
	return p
}

// FuncAt returns the node declared at the given name position, or nil.
func (p *Program) FuncAt(pos token.Pos) *FuncNode { return p.funcs[pos] }

// Funcs calls visit for every function declared in pkg, in no particular
// order; callers needing determinism sort by position.
func (p *Program) Funcs(pkg *Package, visit func(*FuncNode)) {
	for _, n := range p.funcs {
		if n.Pkg == pkg {
			visit(n)
		}
	}
}

// analyze fills a node's call edges and intrinsic hazards.
func (p *Program) analyze(n *FuncNode) {
	pkg := n.Pkg
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			if pos, name, ok := calleeDecl(pkg, x); ok {
				if _, local := p.funcs[pos]; local {
					n.Calls = append(n.Calls, CallEdge{Pos: x.Pos(), Callee: pos, Name: name})
				}
			}
			if pkgPath, sel, ok := pkgCall(pkg, x); ok {
				switch {
				case pkgPath == "math/rand" || pkgPath == "math/rand/v2":
					n.hazards[HazardRand] = append(n.hazards[HazardRand],
						Hazard{Pos: x.Pos(), Msg: "draws from " + pkgPath + "." + sel})
				case pkgPath == "time" && sel == "Now":
					n.hazards[HazardRand] = append(n.hazards[HazardRand],
						Hazard{Pos: x.Pos(), Msg: "reads the wall clock (time.Now)"})
				}
			}
		case *ast.GoStmt:
			n.hazards[HazardGo] = append(n.hazards[HazardGo],
				Hazard{Pos: x.Pos(), Msg: "launches a goroutine"})
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if _, ok := res.(*ast.FuncLit); ok {
					n.hazards[HazardAlloc] = append(n.hazards[HazardAlloc],
						Hazard{Pos: res.Pos(), Msg: "returns a func literal (closure allocation)"})
				}
			}
		}
		return true
	})
	// Alloc hazards reuse hotalloc's body rules: the helper is judged by
	// the same standard a hot body is, so taint and direct findings agree.
	resets := collectResets(pkg)
	aliases := collectAliases(n.Decl.Body)
	record := func(pos token.Pos, format string, args ...any) {
		n.hazards[HazardAlloc] = append(n.hazards[HazardAlloc],
			Hazard{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
	file := fileOf(pkg, n.Decl.Pos())
	checkHotBody(pkg, file, n.Decl.Body, false, aliases, resets, record)
}

// fileOf finds the *ast.File of pkg containing pos.
func fileOf(pkg *Package, pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// calleeDecl resolves a call expression to a declared function's name
// position via type information. Calls through function values, stubbed
// imports, and builtins report ok=false.
func calleeDecl(pkg *Package, call *ast.CallExpr) (token.Pos, string, bool) {
	if pkg.Info == nil {
		return token.NoPos, "", false
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return token.NoPos, "", false
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok || !fn.Pos().IsValid() {
		return token.NoPos, "", false
	}
	return fn.Pos(), fn.Name(), true
}

// pkgCall resolves a call of the form pkgname.Sel(...) to the imported
// package's path, cross-checked against type info so shadowing locals do
// not match.
func pkgCall(pkg *Package, call *ast.CallExpr) (path, sel string, ok bool) {
	se, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := se.X.(*ast.Ident)
	if !isIdent || pkg.Info == nil {
		return "", "", false
	}
	pn, isPkg := pkg.Info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), se.Sel.Name, true
}

// Taint is a transitive hazard: the chain of calls from the queried
// function down to the function whose body carries the hazard.
type Taint struct {
	Hazard Hazard
	// Chain holds the call edges walked to reach the hazard, outermost
	// first; Chain[0] names the function the queried body calls.
	Chain []CallEdge
}

// Describe renders the taint as "f → g: <hazard> (file:line)" for
// diagnostics. Positions use the base filename so messages stay stable
// across checkouts.
func (t *Taint) Describe(fset *token.FileSet) string {
	var sb strings.Builder
	for i, e := range t.Chain {
		if i > 0 {
			sb.WriteString(" → ")
		}
		sb.WriteString(e.Name)
	}
	pos := fset.Position(t.Hazard.Pos)
	fmt.Fprintf(&sb, ": %s (%s:%d)", t.Hazard.Msg, filepath.Base(pos.Filename), pos.Line)
	return sb.String()
}

// taint returns a hazard of the given kind reachable from (and including)
// the function declared at pos, or nil. Results are memoized; in-progress
// nodes (cycles) conservatively report clean for the re-entrant query, which
// is sound here because any hazard on the cycle is found from the first
// entry point.
func (p *Program) taint(pos token.Pos, kind HazardKind, visiting map[token.Pos]bool) *Taint {
	key := taintKey{fn: pos, kind: kind}
	if t, ok := p.memo[key]; ok {
		return t
	}
	n := p.funcs[pos]
	if n == nil || visiting[pos] {
		return nil
	}
	visiting[pos] = true
	defer delete(visiting, pos)

	var result *Taint
	if hs := n.hazards[kind]; len(hs) > 0 {
		result = &Taint{Hazard: hs[0]}
	} else {
		for _, e := range n.Calls {
			callee := p.funcs[e.Callee]
			if callee == nil || callee.barrier() {
				continue
			}
			if t := p.taint(e.Callee, kind, visiting); t != nil {
				chain := append([]CallEdge{e}, t.Chain...)
				result = &Taint{Hazard: t.Hazard, Chain: chain}
				break
			}
		}
	}
	if len(visiting) == 1 {
		// Only memoize at the outermost frame of this query tree; inner
		// results computed under a cycle guard may be incomplete.
		p.memo[key] = result
	}
	return result
}

// CallTaints reports, for each call edge of fn whose callee skip() does not
// exclude, the first transitive hazard of the given kind. Intrinsic hazards
// of fn's own body are not reported — the direct analyzers own those.
func (p *Program) CallTaints(fn *FuncNode, kind HazardKind, skip func(*FuncNode) bool) []*Taint {
	var out []*Taint
	for _, e := range fn.Calls {
		callee := p.funcs[e.Callee]
		if callee == nil || callee.barrier() || (skip != nil && skip(callee)) {
			continue
		}
		if t := p.taint(e.Callee, kind, map[token.Pos]bool{}); t != nil {
			out = append(out, &Taint{Hazard: t.Hazard, Chain: append([]CallEdge{e}, t.Chain...)})
		}
	}
	return out
}
