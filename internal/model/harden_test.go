package model

import (
	"bytes"
	"encoding/binary"
	"testing"

	"truenorth/internal/chip"
	"truenorth/internal/netgen"
	"truenorth/internal/router"
)

// smallModelBytes serializes a one-populated-core model, small enough to
// truncate at every byte offset.
func smallModelBytes(t *testing.T) []byte {
	t.Helper()
	mesh := router.Mesh{W: 2, H: 2}
	configs, err := netgen.Build(netgen.Params{Grid: mesh, RateHz: 50, SynPerNeuron: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	configs[1], configs[2], configs[3] = nil, nil, nil
	var buf bytes.Buffer
	if err := WriteModel(&buf, mesh, configs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// header builds a TNMDL1 header with the given mesh and core count.
func header(w, h, tw, th, n uint32) []byte {
	var buf bytes.Buffer
	buf.Write(modelMagic[:])
	for _, v := range []uint32{w, h, tw, th, n} {
		binary.Write(&buf, binary.LittleEndian, v) //nolint:errcheck // bytes.Buffer
	}
	return buf.Bytes()
}

// TestReadModelTruncatedEverywhere feeds every proper prefix of a valid
// model: each must produce an error, never a panic or a silent success.
func TestReadModelTruncatedEverywhere(t *testing.T) {
	full := smallModelBytes(t)
	if _, _, err := ReadModel(bytes.NewReader(full)); err != nil {
		t.Fatalf("full model rejected: %v", err)
	}
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := ReadModel(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at byte %d of %d accepted", cut, len(full))
		}
	}
}

// TestReadModelHostileHeaders exercises the header validation: a handful of
// bytes must never provoke a large allocation or an out-of-range index.
func TestReadModelHostileHeaders(t *testing.T) {
	cases := []struct {
		name  string
		input []byte
	}{
		{"bad magic", []byte("TNMDL2\n garbage beyond")},
		{"checkpoint magic", append(checkpointMagic[:], header(1, 1, 0, 0, 0)[7:]...)},
		{"zero-size mesh", header(0, 0, 0, 0, 0)},
		{"negative-as-unsigned mesh", header(0xFFFFFFFF, 1, 0, 0, 0)},
		{"mesh edge over 2^14", header(1<<14+1, 1, 0, 0, 0)},
		// Both edges individually legal but the area exceeds maxModelSlots:
		// the 27-byte header must be refused before the slot allocation.
		{"mesh area over slot cap", header(1<<14, 1<<14, 0, 0, 0)},
		{"more cores than slots", header(2, 2, 0, 0, 5)},
		{"core index out of range", append(header(2, 2, 0, 0, 1), 0xFF, 0xFF, 0xFF, 0xFF)},
		{"truncated after header", header(2, 2, 0, 0, 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := ReadModel(bytes.NewReader(tc.input)); err == nil {
				t.Fatalf("accepted: %q", tc.input)
			}
		})
	}
}

// TestReadModelCorruptBody exercises the per-core validation paths on
// surgically corrupted copies of a valid stream.
func TestReadModelCorruptBody(t *testing.T) {
	full := smallModelBytes(t)
	// Body layout after the 27-byte header: core index (4) + axon types
	// (256) + first crossbar row's sparse count (2).
	const rowCountOff = 27 + 4 + 256
	corrupt := func(off int, b ...byte) []byte {
		c := append([]byte(nil), full...)
		copy(c[off:], b)
		return c
	}
	// Two copies of the same core body under one header: a duplicate index.
	duplicated := append([]byte(nil), header(2, 2, 0, 0, 2)...)
	duplicated = append(duplicated, full[27:]...)
	duplicated = append(duplicated, full[27:]...)
	cases := []struct {
		name  string
		input []byte
	}{
		// 0x0101 = 257 entries: over NeuronsPerCore yet not the dense marker.
		{"oversized sparse row count", corrupt(rowCountOff, 0x01, 0x01)},
		{"duplicate core index", duplicated},
		// Declaring one more core than the stream carries must hit EOF.
		{"count exceeds bodies", corrupt(23, 2)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := ReadModel(bytes.NewReader(tc.input)); err == nil {
				t.Fatal("corrupted model accepted")
			}
		})
	}
}

// TestReadCheckpointTruncatedEverywhere is the checkpoint-side analogue.
func TestReadCheckpointTruncatedEverywhere(t *testing.T) {
	mesh := router.Mesh{W: 2, H: 2}
	configs, err := netgen.Build(netgen.Params{Grid: mesh, RateHz: 50, SynPerNeuron: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chip.New(mesh, configs)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(20)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, eng); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if err := ReadCheckpoint(bytes.NewReader(full[:cut]), eng); err == nil {
			t.Fatalf("truncation at byte %d of %d accepted", cut, len(full))
		}
	}
	// The truncation sweep leaves the engine with partially restored state;
	// a full restore must still succeed afterwards.
	if err := ReadCheckpoint(bytes.NewReader(full), eng); err != nil {
		t.Fatalf("full checkpoint rejected after sweep: %v", err)
	}
}

// TestReadCheckpointHostileCounts verifies a hostile populated-core count
// errors instead of looping or indexing out of range.
func TestReadCheckpointHostileCounts(t *testing.T) {
	mesh := router.Mesh{W: 2, H: 2}
	configs, err := netgen.Build(netgen.Params{Grid: mesh, RateHz: 50, SynPerNeuron: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chip.New(mesh, configs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.Write(checkpointMagic[:])
	binary.Write(&buf, binary.LittleEndian, uint64(7))          //nolint:errcheck // bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, eng.NoC())          //nolint:errcheck // bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, uint32(0xFFFFFFFF)) //nolint:errcheck // bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, uint32(99))         //nolint:errcheck // absent core index
	if err := ReadCheckpoint(bytes.NewReader(buf.Bytes()), eng); err == nil {
		t.Fatal("hostile checkpoint accepted")
	}
}

// FuzzReadModel asserts the deserializer's safety contract on arbitrary
// bytes: errors, never panics; and anything it accepts must survive a
// write/read round trip bit-identically.
func FuzzReadModel(f *testing.F) {
	mesh := router.Mesh{W: 2, H: 2}
	configs, err := netgen.Build(netgen.Params{Grid: mesh, RateHz: 50, SynPerNeuron: 40, Seed: 3})
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if err := WriteModel(&valid, mesh, configs); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte("TNMDL1\n"))
	f.Add(header(1<<14, 1<<14, 0, 0, 0))
	f.Add(header(2, 2, 0, 0, 4))
	f.Add(valid.Bytes()[:valid.Len()/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		m, cfgs, err := ReadModel(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteModel(&out, m, cfgs); err != nil {
			t.Fatalf("accepted model failed to serialize: %v", err)
		}
		m2, cfgs2, err := ReadModel(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-read of accepted model failed: %v", err)
		}
		if m2 != m || len(cfgs2) != len(cfgs) {
			t.Fatalf("round trip changed shape: %+v/%d vs %+v/%d", m2, len(cfgs2), m, len(cfgs))
		}
		for i := range cfgs {
			switch {
			case (cfgs[i] == nil) != (cfgs2[i] == nil):
				t.Fatalf("core %d: populated mismatch", i)
			case cfgs[i] != nil && *cfgs[i] != *cfgs2[i]:
				t.Fatalf("core %d: config differs after round trip", i)
			}
		}
	})
}
