package model

import (
	"bytes"
	"testing"

	"truenorth/internal/chip"
	"truenorth/internal/compass"
	"truenorth/internal/core"
	"truenorth/internal/netgen"
	"truenorth/internal/router"
	"truenorth/internal/sim"
)

func testNetwork(t *testing.T) (router.Mesh, []*core.Config) {
	t.Helper()
	mesh := router.Mesh{W: 4, H: 3, TileW: 2, TileH: 3}
	configs, err := netgen.Build(netgen.Params{Grid: mesh, RateHz: 50, SynPerNeuron: 77, Seed: 5, Stochastic: true})
	if err != nil {
		t.Fatal(err)
	}
	// Punch a hole and add an output target to exercise all encodings.
	configs[5] = nil
	configs[0].Targets[3] = core.Target{Valid: true, Output: true, OutputID: 42}
	// A dense crossbar row (over half full) to hit the dense path.
	for j := 0; j < 200; j++ {
		configs[0].Synapses[7].Set(j)
	}
	return mesh, configs
}

func TestModelRoundTrip(t *testing.T) {
	mesh, configs := testNetwork(t)
	var buf bytes.Buffer
	if err := WriteModel(&buf, mesh, configs); err != nil {
		t.Fatal(err)
	}
	mesh2, configs2, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mesh2 != mesh {
		t.Fatalf("mesh round trip: %+v != %+v", mesh2, mesh)
	}
	if len(configs2) != len(configs) {
		t.Fatalf("config count %d != %d", len(configs2), len(configs))
	}
	for i := range configs {
		switch {
		case configs[i] == nil && configs2[i] == nil:
		case configs[i] == nil || configs2[i] == nil:
			t.Fatalf("core %d: populated mismatch", i)
		case *configs[i] != *configs2[i]:
			t.Fatalf("core %d: config differs after round trip", i)
		}
	}
}

func TestModelRoundTripRunsIdentically(t *testing.T) {
	// The decisive test: the decoded model produces the same simulation.
	mesh, configs := testNetwork(t)
	var buf bytes.Buffer
	if err := WriteModel(&buf, mesh, configs); err != nil {
		t.Fatal(err)
	}
	_, configs2, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := chip.New(mesh, configs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := chip.New(mesh, configs2)
	if err != nil {
		t.Fatal(err)
	}
	a.Run(300)
	b.Run(300)
	if ac, bc := a.Counters(), b.Counters(); ac != bc {
		t.Fatalf("decoded model diverges: %+v vs %+v", ac, bc)
	}
	if a.Counters().Spikes == 0 {
		t.Fatal("silent network; test vacuous")
	}
}

func TestReadModelRejectsGarbage(t *testing.T) {
	if _, _, err := ReadModel(bytes.NewReader([]byte("not a model at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, err := ReadModel(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated valid prefix.
	mesh, configs := testNetwork(t)
	var buf bytes.Buffer
	if err := WriteModel(&buf, mesh, configs); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, _, err := ReadModel(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated model accepted")
	}
}

func TestCheckpointResumeSameEngine(t *testing.T) {
	mesh, configs := testNetwork(t)
	ref, err := chip.New(mesh, configs)
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(100)
	var ckpt bytes.Buffer
	if err := WriteCheckpoint(&ckpt, ref); err != nil {
		t.Fatal(err)
	}
	ref.Run(150)
	want := ref.Counters()
	wantOut := ref.DrainOutputs()

	resumed, err := chip.New(mesh, configs)
	if err != nil {
		t.Fatal(err)
	}
	if err := ReadCheckpoint(bytes.NewReader(ckpt.Bytes()), resumed); err != nil {
		t.Fatal(err)
	}
	if resumed.Tick() != 100 {
		t.Fatalf("resumed tick = %d, want 100", resumed.Tick())
	}
	resumed.DrainOutputs() // discard pre-checkpoint outputs (none: fresh engine)
	resumed.Run(150)
	if got := resumed.Counters(); got != want {
		t.Fatalf("resumed counters %+v, want %+v", got, want)
	}
	// Outputs after the checkpoint must match the reference's tail.
	got := resumed.DrainOutputs()
	tail := wantOut
	for len(tail) > 0 && tail[0].Tick < 100 {
		tail = tail[1:]
	}
	if len(got) != len(tail) {
		t.Fatalf("resumed outputs %d, want %d", len(got), len(tail))
	}
	for i := range got {
		if got[i] != tail[i] {
			t.Fatalf("output %d: %+v vs %+v", i, got[i], tail[i])
		}
	}
}

func TestCheckpointCrossEngine(t *testing.T) {
	// Suspend on the silicon model, resume on Compass: the two expressions
	// share identical state semantics, so the continuation is bit-exact.
	mesh, configs := testNetwork(t)
	hw, err := chip.New(mesh, configs)
	if err != nil {
		t.Fatal(err)
	}
	hw.Run(80)
	var ckpt bytes.Buffer
	if err := WriteCheckpoint(&ckpt, hw); err != nil {
		t.Fatal(err)
	}
	hw.Run(120)
	want := hw.Counters()

	sw, err := compass.New(mesh, configs, sim.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := ReadCheckpoint(bytes.NewReader(ckpt.Bytes()), sw); err != nil {
		t.Fatal(err)
	}
	sw.Run(120)
	if got := sw.Counters(); got != want {
		t.Fatalf("cross-engine resume diverged: %+v vs %+v", got, want)
	}
	if want.Spikes == 0 {
		t.Fatal("silent network; test vacuous")
	}
}

func TestCheckpointPreservesFaults(t *testing.T) {
	mesh, configs := testNetwork(t)
	a, err := chip.New(mesh, configs)
	if err != nil {
		t.Fatal(err)
	}
	a.DisableCore(2, 1)
	a.Run(50)
	var ckpt bytes.Buffer
	if err := WriteCheckpoint(&ckpt, a); err != nil {
		t.Fatal(err)
	}
	a.Run(50)

	b, err := chip.New(mesh, configs)
	if err != nil {
		t.Fatal(err)
	}
	if err := ReadCheckpoint(bytes.NewReader(ckpt.Bytes()), b); err != nil {
		t.Fatal(err)
	}
	if !b.Core(2, 1).Disabled {
		t.Fatal("fault flag lost across checkpoint")
	}
	b.Run(50)
	if ac, bc := a.Counters(), b.Counters(); ac != bc {
		t.Fatalf("faulted resume diverged: %+v vs %+v", ac, bc)
	}
	if an, bn := a.NoC(), b.NoC(); an != bn {
		t.Fatalf("NoC stats diverged: %+v vs %+v", an, bn)
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	mesh, configs := testNetwork(t)
	eng, err := chip.New(mesh, configs)
	if err != nil {
		t.Fatal(err)
	}
	if err := ReadCheckpoint(bytes.NewReader([]byte("garbage")), eng); err == nil {
		t.Fatal("garbage checkpoint accepted")
	}
	// A model file is not a checkpoint.
	var buf bytes.Buffer
	if err := WriteModel(&buf, mesh, configs); err != nil {
		t.Fatal(err)
	}
	if err := ReadCheckpoint(bytes.NewReader(buf.Bytes()), eng); err == nil {
		t.Fatal("model file accepted as checkpoint")
	}
}

func TestCheckpointMismatchedTopology(t *testing.T) {
	mesh, configs := testNetwork(t)
	a, err := chip.New(mesh, configs)
	if err != nil {
		t.Fatal(err)
	}
	var ckpt bytes.Buffer
	if err := WriteCheckpoint(&ckpt, a); err != nil {
		t.Fatal(err)
	}
	// An engine with fewer populated cores must reject the snapshot.
	configs2 := make([]*core.Config, len(configs))
	configs2[0] = core.InertConfig()
	b, err := chip.New(mesh, configs2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ReadCheckpoint(bytes.NewReader(ckpt.Bytes()), b); err == nil {
		t.Fatal("topology-mismatched checkpoint accepted")
	}
}

var _ CheckpointableEngine = (*chip.Model)(nil)
var _ CheckpointableEngine = (*compass.Sim)(nil)
var _ sim.Engine = CheckpointableEngine(nil)
