// Package model serializes neurosynaptic network models and simulation
// checkpoints. It is the analogue of the model-file layer of the paper's
// ecosystem: the Corelet toolchain emits a model, Compass and TrueNorth
// both consume the identical model, and long regressions (Section VI-A ran
// up to 100M time steps) can be checkpointed and resumed bit-exactly — on
// either engine, since the two expressions share the same state.
//
// The model format is a little-endian binary stream:
//
//	magic "TNMDL1\n" | mesh (W,H,TileW,TileH as uint32) |
//	populated-core count (uint32) | per core: index (uint32) + config
//
// Crossbar rows use a sparse encoding (count + indices) and fall back to a
// dense 32-byte bitmap when more than half full. Checkpoints ("TNCKP1\n")
// carry the tick, aggregate NoC statistics, and each populated core's
// runtime state (potentials, delay rings, PRNG, fault flag, counters).
package model

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"truenorth/internal/core"
	"truenorth/internal/neuron"
	"truenorth/internal/router"
	"truenorth/internal/sim"
)

var (
	modelMagic      = [7]byte{'T', 'N', 'M', 'D', 'L', '1', '\n'}
	checkpointMagic = [7]byte{'T', 'N', 'C', 'K', 'P', '1', '\n'}
)

// denseRowMarker flags a dense 256-bit row in place of a sparse count.
const denseRowMarker = 0xFFFF

// WriteModel serializes a mesh and its row-major core configurations.
func WriteModel(w io.Writer, mesh router.Mesh, configs []*core.Config) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(modelMagic[:]); err != nil {
		return err
	}
	putU32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) } //nolint:errcheck // buffered; flushed error below
	putU32(uint32(mesh.W))
	putU32(uint32(mesh.H))
	putU32(uint32(mesh.TileW))
	putU32(uint32(mesh.TileH))
	populated := 0
	for _, cfg := range configs {
		if cfg != nil {
			populated++
		}
	}
	putU32(uint32(populated))
	for i, cfg := range configs {
		if cfg == nil {
			continue
		}
		putU32(uint32(i))
		if err := writeConfig(bw, cfg); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// maxModelSlots caps the mesh area a model file may declare. The header
// is 27 bytes; without this cap a hostile stream declaring a 2^14×2^14
// mesh would make ReadModel allocate a quarter-billion slot pointers
// before reading a single core. 2^20 slots is 256 TrueNorth chips — far
// beyond any board this repo models — while keeping the allocation bound
// at a few megabytes.
const maxModelSlots = 1 << 20

// Verifier validates a deserialized model before ReadModelVerified returns
// it; internal/modelcheck's Verify (curried with options) is the intended
// implementation. Keeping it a function type avoids a dependency from the
// serialization layer on the analyzer.
type Verifier func(mesh router.Mesh, configs []*core.Config) error

// ReadModelVerified deserializes a model and, when verify is non-nil,
// rejects it unless the verifier accepts — the upload-time gate: a bad
// model is refused before it can burn a simulation slot.
func ReadModelVerified(r io.Reader, verify Verifier) (router.Mesh, []*core.Config, error) {
	mesh, configs, err := ReadModel(r)
	if err != nil {
		return mesh, configs, err
	}
	if verify != nil {
		if err := verify(mesh, configs); err != nil {
			return router.Mesh{}, nil, fmt.Errorf("model: %w", err)
		}
	}
	return mesh, configs, nil
}

// ReadModel deserializes a model written by WriteModel.
func ReadModel(r io.Reader) (router.Mesh, []*core.Config, error) {
	br := bufio.NewReader(r)
	var magic [7]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return router.Mesh{}, nil, fmt.Errorf("model: reading magic: %w", err)
	}
	if magic != modelMagic {
		return router.Mesh{}, nil, fmt.Errorf("model: bad magic %q", magic)
	}
	var w, h, tw, th, n uint32
	for _, p := range []*uint32{&w, &h, &tw, &th, &n} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return router.Mesh{}, nil, err
		}
	}
	mesh := router.Mesh{W: int(w), H: int(h), TileW: int(tw), TileH: int(th)}
	if mesh.W <= 0 || mesh.H <= 0 || mesh.W > 1<<14 || mesh.H > 1<<14 {
		return router.Mesh{}, nil, fmt.Errorf("model: implausible mesh %dx%d", mesh.W, mesh.H)
	}
	slots := mesh.W * mesh.H
	if slots > maxModelSlots {
		return router.Mesh{}, nil, fmt.Errorf("model: mesh %dx%d exceeds %d core slots", mesh.W, mesh.H, maxModelSlots)
	}
	if int(n) > slots {
		return router.Mesh{}, nil, fmt.Errorf("model: %d cores for %d slots", n, slots)
	}
	configs := make([]*core.Config, slots)
	for k := 0; k < int(n); k++ {
		var idx uint32
		if err := binary.Read(br, binary.LittleEndian, &idx); err != nil {
			return router.Mesh{}, nil, err
		}
		if int(idx) >= slots {
			return router.Mesh{}, nil, fmt.Errorf("model: core index %d out of range", idx)
		}
		if configs[idx] != nil {
			return router.Mesh{}, nil, fmt.Errorf("model: duplicate core %d", idx)
		}
		cfg, err := readConfig(br)
		if err != nil {
			return router.Mesh{}, nil, fmt.Errorf("model: core %d: %w", idx, err)
		}
		if err := cfg.Validate(); err != nil {
			return router.Mesh{}, nil, fmt.Errorf("model: core %d: %w", idx, err)
		}
		configs[idx] = cfg
	}
	return mesh, configs, nil
}

// writeConfig serializes one core configuration.
func writeConfig(w io.Writer, cfg *core.Config) error {
	if _, err := w.Write(cfg.AxonType[:]); err != nil {
		return err
	}
	for a := range cfg.Synapses {
		if err := writeRow(w, &cfg.Synapses[a]); err != nil {
			return err
		}
	}
	for j := range cfg.Neurons {
		if err := writeNeuron(w, &cfg.Neurons[j]); err != nil {
			return err
		}
		if err := writeTarget(w, cfg.Targets[j]); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, cfg.InitV[:]); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, cfg.Seed)
}

func readConfig(r io.Reader) (*core.Config, error) {
	cfg := &core.Config{}
	if _, err := io.ReadFull(r, cfg.AxonType[:]); err != nil {
		return nil, err
	}
	for a := range cfg.Synapses {
		if err := readRow(r, &cfg.Synapses[a]); err != nil {
			return nil, err
		}
	}
	for j := range cfg.Neurons {
		if err := readNeuron(r, &cfg.Neurons[j]); err != nil {
			return nil, err
		}
		var err error
		cfg.Targets[j], err = readTarget(r)
		if err != nil {
			return nil, err
		}
	}
	if err := binary.Read(r, binary.LittleEndian, cfg.InitV[:]); err != nil {
		return nil, err
	}
	return cfg, binary.Read(r, binary.LittleEndian, &cfg.Seed)
}

// writeRow writes one crossbar row, sparse when under half full.
func writeRow(w io.Writer, row *core.RowMask) error {
	n := row.Count()
	if n > core.NeuronsPerCore/2 {
		if err := binary.Write(w, binary.LittleEndian, uint16(denseRowMarker)); err != nil {
			return err
		}
		return binary.Write(w, binary.LittleEndian, row[:])
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(n)); err != nil {
		return err
	}
	var buf []byte
	row.ForEach(func(i int) { buf = append(buf, byte(i)) })
	_, err := w.Write(buf)
	return err
}

func readRow(r io.Reader, row *core.RowMask) error {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if n == denseRowMarker {
		return binary.Read(r, binary.LittleEndian, row[:])
	}
	if int(n) > core.NeuronsPerCore {
		return fmt.Errorf("row with %d entries", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for _, b := range buf {
		row.Set(int(b))
	}
	return nil
}

// neuron flag bits.
const (
	flagStochSyn0 = 1 << iota
	flagStochSyn1
	flagStochSyn2
	flagStochSyn3
	flagStochLeak
	flagNegSaturate
	flagLeakReversal
)

func writeNeuron(w io.Writer, p *neuron.Params) error {
	var flags uint8
	for g := 0; g < neuron.NumAxonTypes; g++ {
		if p.StochSyn[g] {
			flags |= 1 << g
		}
	}
	if p.StochLeak {
		flags |= flagStochLeak
	}
	if p.NegSaturate {
		flags |= flagNegSaturate
	}
	if p.LeakReversal {
		flags |= flagLeakReversal
	}
	fields := []any{
		p.Weights[0], p.Weights[1], p.Weights[2], p.Weights[3],
		p.Leak, p.Threshold, p.ThresholdMask, p.NegThreshold, p.ResetV,
		uint8(p.Reset), flags,
	}
	for _, f := range fields {
		if err := binary.Write(w, binary.LittleEndian, f); err != nil {
			return err
		}
	}
	return nil
}

func readNeuron(r io.Reader, p *neuron.Params) error {
	var reset, flags uint8
	fields := []any{
		&p.Weights[0], &p.Weights[1], &p.Weights[2], &p.Weights[3],
		&p.Leak, &p.Threshold, &p.ThresholdMask, &p.NegThreshold, &p.ResetV,
		&reset, &flags,
	}
	for _, f := range fields {
		if err := binary.Read(r, binary.LittleEndian, f); err != nil {
			return err
		}
	}
	p.Reset = neuron.ResetMode(reset)
	for g := 0; g < neuron.NumAxonTypes; g++ {
		p.StochSyn[g] = flags&(1<<g) != 0
	}
	p.StochLeak = flags&flagStochLeak != 0
	p.NegSaturate = flags&flagNegSaturate != 0
	p.LeakReversal = flags&flagLeakReversal != 0
	return nil
}

// target flag bits.
const (
	flagValid = 1 << iota
	flagOutput
)

func writeTarget(w io.Writer, t core.Target) error {
	var flags uint8
	if t.Valid {
		flags |= flagValid
	}
	if t.Output {
		flags |= flagOutput
	}
	fields := []any{flags, t.OutputID, t.DX, t.DY, t.Axon, t.Delay}
	for _, f := range fields {
		if err := binary.Write(w, binary.LittleEndian, f); err != nil {
			return err
		}
	}
	return nil
}

func readTarget(r io.Reader) (core.Target, error) {
	var t core.Target
	var flags uint8
	fields := []any{&flags, &t.OutputID, &t.DX, &t.DY, &t.Axon, &t.Delay}
	for _, f := range fields {
		if err := binary.Read(r, binary.LittleEndian, f); err != nil {
			return t, err
		}
	}
	t.Valid = flags&flagValid != 0
	t.Output = flags&flagOutput != 0
	return t, nil
}

// CheckpointableEngine is an engine that supports bit-exact suspend and
// resume. Both kernel expressions implement it.
type CheckpointableEngine interface {
	sim.Engine
	Cores() []*core.Core
	SetClock(tick uint64)
	SetNoC(sim.NoCStats)
}

// WriteCheckpoint snapshots a running engine: the tick, aggregate NoC
// statistics, and every populated core's runtime state. Pending external
// injections queued beyond the 15-tick delay horizon are not part of the
// snapshot; checkpoint between frames, not mid-frame.
func WriteCheckpoint(w io.Writer, eng CheckpointableEngine) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(checkpointMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, eng.Tick()); err != nil {
		return err
	}
	noc := eng.NoC()
	if err := binary.Write(bw, binary.LittleEndian, &noc); err != nil {
		return err
	}
	cores := eng.Cores()
	populated := uint32(0)
	for _, c := range cores {
		if c != nil {
			populated++
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, populated); err != nil {
		return err
	}
	for i, c := range cores {
		if c == nil {
			continue
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(i)); err != nil {
			return err
		}
		st := c.SaveState()
		if err := binary.Write(bw, binary.LittleEndian, &st); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCheckpoint resumes eng (already constructed with the same model)
// from a snapshot. The engine's clock, NoC statistics, and per-core states
// are restored; subsequent Steps continue bit-exactly — on either engine
// expression.
func ReadCheckpoint(r io.Reader, eng CheckpointableEngine) error {
	br := bufio.NewReader(r)
	var magic [7]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("checkpoint: reading magic: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("checkpoint: bad magic %q", magic)
	}
	var tick uint64
	if err := binary.Read(br, binary.LittleEndian, &tick); err != nil {
		return err
	}
	var noc sim.NoCStats
	if err := binary.Read(br, binary.LittleEndian, &noc); err != nil {
		return err
	}
	var populated uint32
	if err := binary.Read(br, binary.LittleEndian, &populated); err != nil {
		return err
	}
	cores := eng.Cores()
	seen := uint32(0)
	for k := uint32(0); k < populated; k++ {
		var idx uint32
		if err := binary.Read(br, binary.LittleEndian, &idx); err != nil {
			return err
		}
		if int(idx) >= len(cores) || cores[idx] == nil {
			return fmt.Errorf("checkpoint: state for absent core %d", idx)
		}
		var st core.State
		if err := binary.Read(br, binary.LittleEndian, &st); err != nil {
			return err
		}
		cores[idx].RestoreState(st)
		seen++
	}
	if seen != populated {
		return fmt.Errorf("checkpoint: restored %d of %d cores", seen, populated)
	}
	eng.SetNoC(noc)
	eng.SetClock(tick)
	return nil
}
