package corelet

import (
	"fmt"

	"truenorth/internal/core"
	"truenorth/internal/neuron"
)

// Handle names one neuron of one core in a net — the unit other corelets
// wire from.
type Handle struct {
	Core   CoreID
	Neuron int
}

// Fanout is a splitter corelet. TrueNorth neurons have exactly one output
// target, so any fanout beyond the 256-neuron reach of a single crossbar
// column is built from cores of identity ("splitter") neurons: one axon
// event replicates through the crossbar to F relay neurons, each with its
// own target. Splitter stages are a large fraction of real TrueNorth
// application networks — the reason the paper's vision apps use hundreds of
// thousands of neurons.
type Fanout struct {
	// Pins gives, per input line, the axon to drive with the source spike.
	Pins []InputPin
	// Outs gives, per input line, the fan relay neurons; wire each with
	// net.Connect or net.ConnectOutput.
	Outs [][]Handle
}

// AddFanout builds splitter cores replicating each of `lines` input lines
// to `fan` outputs, packing as many lines per core as the 256×256 crossbar
// allows. Relay latency is one tick.
func AddFanout(n *Net, lines, fan int) (*Fanout, error) {
	if lines <= 0 || fan <= 0 {
		return nil, fmt.Errorf("corelet: fanout needs positive lines and fan, got %d×%d", lines, fan)
	}
	if fan > core.NeuronsPerCore {
		return nil, fmt.Errorf("corelet: fan %d exceeds one core's %d neurons; cascade two fanouts", fan, core.NeuronsPerCore)
	}
	f := &Fanout{
		Pins: make([]InputPin, lines),
		Outs: make([][]Handle, lines),
	}
	linesPerCore := core.NeuronsPerCore / fan
	if linesPerCore > core.AxonsPerCore {
		linesPerCore = core.AxonsPerCore
	}
	var cur CoreID = -1
	used := linesPerCore // force allocation on first line
	for l := 0; l < lines; l++ {
		if used == linesPerCore {
			cur = n.AddCore()
			used = 0
		}
		axon := n.AllocAxon(cur)
		f.Pins[l] = InputPin{Core: cur, Axon: axon}
		outs := make([]Handle, fan)
		for k := 0; k < fan; k++ {
			j := n.AllocNeuron(cur)
			n.SetSynapse(cur, axon, j)
			n.SetNeuron(cur, j, neuron.Identity())
			outs[k] = Handle{Core: cur, Neuron: j}
		}
		f.Outs[l] = outs
		used++
	}
	return f, nil
}

// AddFanoutVar is AddFanout with a per-line fan count: line l replicates to
// fans[l] outputs. Lines are packed greedily into splitter cores.
func AddFanoutVar(n *Net, fans []int) (*Fanout, error) {
	if len(fans) == 0 {
		return nil, fmt.Errorf("corelet: fanout needs at least one line")
	}
	f := &Fanout{
		Pins: make([]InputPin, len(fans)),
		Outs: make([][]Handle, len(fans)),
	}
	var cur CoreID = -1
	neuronsLeft, axonsLeft := 0, 0
	for l, fan := range fans {
		if fan <= 0 || fan > core.NeuronsPerCore {
			return nil, fmt.Errorf("corelet: line %d fan %d out of range [1, %d]", l, fan, core.NeuronsPerCore)
		}
		if fan > neuronsLeft || axonsLeft == 0 {
			cur = n.AddCore()
			neuronsLeft, axonsLeft = core.NeuronsPerCore, core.AxonsPerCore
		}
		axon := n.AllocAxon(cur)
		axonsLeft--
		f.Pins[l] = InputPin{Core: cur, Axon: axon}
		outs := make([]Handle, fan)
		for k := 0; k < fan; k++ {
			j := n.AllocNeuron(cur)
			neuronsLeft--
			n.SetSynapse(cur, axon, j)
			n.SetNeuron(cur, j, neuron.Identity())
			outs[k] = Handle{Core: cur, Neuron: j}
		}
		f.Outs[l] = outs
	}
	return f, nil
}

// WeightedSum is a reduction corelet: one core whose neurons each compute a
// signed weighted sum of up to 256 input axons and emit spikes at a rate
// proportional to max(0, sum)/threshold (subtractive reset). It is the
// workhorse of the vision corelets: box filters, center-surround
// differences, histogram bins.
type WeightedSum struct {
	// Core is the allocated core.
	Core CoreID
	net  *Net
}

// AddWeightedSum allocates a fresh reduction core. Axon types 0 and 1 carry
// weights +we and -wi for every neuron configured through AddUnit.
func AddWeightedSum(n *Net) *WeightedSum {
	return &WeightedSum{Core: n.AddCore(), net: n}
}

// Unit adds one output neuron computing sum(+excite) - sum(inhibit) with
// firing threshold th, and returns its handle, or an error when the core is
// full.
func (w *WeightedSum) Unit(excite, inhibit []int, we, wi, th int32) (Handle, error) {
	j := w.net.AllocNeuron(w.Core)
	if j < 0 {
		return Handle{}, fmt.Errorf("corelet: weighted-sum core %d is full", w.Core)
	}
	w.net.SetNeuron(w.Core, j, neuron.Accumulator(we, wi, th))
	for _, a := range excite {
		w.net.SetAxonType(w.Core, a, 0)
		w.net.SetSynapse(w.Core, a, j)
	}
	for _, a := range inhibit {
		w.net.SetAxonType(w.Core, a, 1)
		w.net.SetSynapse(w.Core, a, j)
	}
	return Handle{Core: w.Core, Neuron: j}, nil
}

// AddWTA builds a winner-take-all corelet over k competing channels on one
// core: each channel accumulates its input; mutual inhibition (every
// channel inhibits every other through a recurrent axon) ensures that the
// first channel to spike suppresses its rivals for a refractory window.
// Used by the saccade corelet's region selection.
//
// Channel i receives external input on axon i (type 0, weight +we), and
// each output spike feeds back inhibition (weight -wi) to all other
// channels through axon k+i. Handles are returned per channel; their
// targets remain to be wired — typically each channel both loops back to
// its inhibition axon through the fanout helper and reports externally. To
// keep the corelet self-contained, AddWTA wires the inhibition loop
// internally using a second relay neuron per channel.
func AddWTA(n *Net, k int, we, wi, th int32) ([]Handle, error) {
	if k <= 0 || 2*k > core.NeuronsPerCore || 2*k > core.AxonsPerCore {
		return nil, fmt.Errorf("corelet: WTA with %d channels exceeds one core (max %d)", k, core.NeuronsPerCore/2)
	}
	id := n.AddCore()
	outs := make([]Handle, k)
	for i := 0; i < k; i++ {
		// Main channel neuron: input axon i excites, axons k+j (j≠i)
		// inhibit.
		main := n.AllocNeuron(id)
		n.SetNeuron(id, main, neuron.Params{
			Weights:      [neuron.NumAxonTypes]int32{we, -wi, 0, 0},
			Threshold:    th,
			Reset:        neuron.ResetToV,
			NegThreshold: wi * 4,
			NegSaturate:  true,
		})
		n.SetAxonType(id, i, 0)
		n.SetSynapse(id, i, main)
		outs[i] = Handle{Core: id, Neuron: main}
	}
	for i := 0; i < k; i++ {
		// Relay neuron: copies channel i's spike onto inhibition axon k+i.
		relay := n.AllocNeuron(id)
		n.SetNeuron(id, relay, neuron.Identity())
		// Drive the relay from the same inputs as the main neuron by
		// splitting: axon i also connects to the relay.
		n.SetSynapse(id, i, relay)
		// Oops-free wiring: the relay spikes when the *input* arrives, so
		// inhibition tracks input competition; connect it to axon k+i.
		n.Connect(id, relay, id, k+i, 1)
		n.SetAxonType(id, k+i, 1)
		// Axon k+i inhibits every other channel's main neuron.
		for j := 0; j < k; j++ {
			if j != i {
				n.SetSynapse(id, k+i, outs[j].Neuron)
			}
		}
	}
	// Register channel inputs as pins so WTA can be used stand-alone.
	for i := 0; i < k; i++ {
		n.AddInput("wta", id, i)
	}
	return outs, nil
}
