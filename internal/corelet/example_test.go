package corelet_test

import (
	"fmt"
	"log"

	"truenorth/internal/chip"
	"truenorth/internal/corelet"
	"truenorth/internal/neuron"
	"truenorth/internal/router"
)

// ExamplePlace shows the complete programming workflow: build a net with
// the corelet API, place it on a mesh, instantiate an engine, inject a
// spike, and decode the output.
func ExamplePlace() {
	net := corelet.NewNet()
	a := net.AddCore()
	net.SetSynapse(a, 0, 0)
	net.SetNeuron(a, 0, neuron.Identity())
	net.ConnectOutput(a, 0, "echo", 0)
	net.AddInput("in", a, 0)

	p, err := corelet.Place(net, router.Mesh{W: 1, H: 1})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := chip.New(p.Mesh, p.Configs)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Inject(eng, "in", 0, 0); err != nil {
		log.Fatal(err)
	}
	eng.Run(2)
	for _, s := range eng.DrainOutputs() {
		ref, _ := p.Decode(s.ID)
		fmt.Printf("%s[%d] fired at tick %d\n", ref.Name, ref.Index, s.Tick)
	}
	// Output: echo[0] fired at tick 0
}

// ExampleLogic_fullAdder builds a one-bit full adder and evaluates 1+1+1.
func ExampleLogic_fullAdder() {
	net := corelet.NewNet()
	l := corelet.AddLogic(net)
	a, b, cin := l.Input("a"), l.Input("b"), l.Input("cin")
	sum, carry, err := l.FullAdder(a, b, cin)
	if err != nil {
		log.Fatal(err)
	}
	st := l.Output(sum, "out", 0)
	ct := l.Output(carry, "out", 1)

	p, err := corelet.Place(net, router.Mesh{W: 4, H: 4})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := chip.New(p.Mesh, p.Configs)
	if err != nil {
		log.Fatal(err)
	}
	for _, in := range []string{"a", "b", "cin"} {
		if err := p.Inject(eng, in, 0, 0); err != nil {
			log.Fatal(err)
		}
	}
	eng.Run(st + 4)
	var sumBit, carryBit int
	for _, s := range eng.DrainOutputs() {
		ref, _ := p.Decode(s.ID)
		if ref.Index == 0 && int(s.Tick) == st {
			sumBit = 1
		}
		if ref.Index == 1 && int(s.Tick) == ct {
			carryBit = 1
		}
	}
	fmt.Printf("1+1+1 = sum %d, carry %d\n", sumBit, carryBit)
	// Output: 1+1+1 = sum 1, carry 1
}

// ExampleAddFanout replicates one spike to four targets through a
// splitter core — the idiom behind every fan-out in a TrueNorth network.
func ExampleAddFanout() {
	net := corelet.NewNet()
	fan, err := corelet.AddFanout(net, 1, 4)
	if err != nil {
		log.Fatal(err)
	}
	net.AddInput("in", fan.Pins[0].Core, fan.Pins[0].Axon)
	for k, h := range fan.Outs[0] {
		net.ConnectOutput(h.Core, h.Neuron, "copy", k)
	}
	p, _ := corelet.Place(net, router.Mesh{W: 1, H: 1})
	eng, _ := chip.New(p.Mesh, p.Configs)
	if err := p.Inject(eng, "in", 0, 0); err != nil {
		log.Fatal(err)
	}
	eng.Run(2)
	fmt.Println("copies:", len(eng.DrainOutputs()))
	// Output: copies: 4
}
