package corelet

import (
	"math/rand"
	"testing"

	"truenorth/internal/chip"
	"truenorth/internal/neuron"
	"truenorth/internal/router"
)

// shuffledChainNet builds a long relay chain whose net-core ids are
// deliberately scrambled, so row-major placement produces long wires while
// a locality-aware placement can recover adjacency.
func shuffledChainNet(t *testing.T, n int, seed int64) *Net {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net := NewNet()
	ids := make([]CoreID, n)
	for i := range ids {
		ids[i] = net.AddCore()
	}
	order := rng.Perm(n) // chain visits cores in scrambled id order
	for k := 0; k < n; k++ {
		id := ids[order[k]]
		net.SetSynapse(id, 0, 0)
		net.SetNeuron(id, 0, neuron.Identity())
		if k == n-1 {
			net.ConnectOutput(id, 0, "out", 0)
		} else {
			net.Connect(id, 0, ids[order[k+1]], 0, 1)
		}
	}
	net.AddInput("in", ids[order[0]], 0)
	return net
}

func TestPlaceGreedyReducesWireLength(t *testing.T) {
	net := shuffledChainNet(t, 36, 3)
	mesh := router.Mesh{W: 6, H: 6}
	rowMajor, err := Place(net, mesh)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := PlaceGreedy(net, mesh)
	if err != nil {
		t.Fatal(err)
	}
	rl, gl := rowMajor.WireLength(), greedy.WireLength()
	if gl >= rl {
		t.Fatalf("greedy wire length %d not below row-major %d", gl, rl)
	}
	// A chain placed along a snake is near-optimal: every link length 1.
	if gl > 2*(36-1) {
		t.Fatalf("greedy wire length %d far from the %d-hop optimum", gl, 36-1)
	}
}

func TestPlaceGreedyPreservesBehavior(t *testing.T) {
	net := shuffledChainNet(t, 25, 7)
	mesh := router.Mesh{W: 5, H: 5}
	for _, place := range []func(*Net, router.Mesh) (*Placement, error){Place, PlaceGreedy} {
		p, err := place(net, mesh)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := chip.New(p.Mesh, p.Configs)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Inject(eng, "in", 0, 0); err != nil {
			t.Fatal(err)
		}
		eng.Run(30)
		out := eng.DrainOutputs()
		if len(out) != 1 {
			t.Fatalf("placement lost the chain spike: %v", out)
		}
		if out[0].Tick != 24 {
			t.Fatalf("chain output at tick %d, want 24 (25 relays)", out[0].Tick)
		}
	}
}

func TestPlaceGreedyHandlesDisconnectedComponents(t *testing.T) {
	// Two independent chains plus an isolated core: greedy must place all.
	net := NewNet()
	mk := func(n int, out string) {
		prev := CoreID(-1)
		for i := 0; i < n; i++ {
			id := net.AddCore()
			net.SetSynapse(id, 0, 0)
			net.SetNeuron(id, 0, neuron.Identity())
			if prev >= 0 {
				net.Connect(prev, 0, id, 0, 1)
			} else {
				net.AddInput(out+"-in", id, 0)
			}
			prev = id
		}
		net.ConnectOutput(prev, 0, out, 0)
	}
	mk(5, "a")
	mk(4, "b")
	net.AddCore() // isolated
	p, err := PlaceGreedy(net, router.Mesh{W: 4, H: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.Used != 10 {
		t.Fatalf("placed %d cores, want 10", p.Used)
	}
	eng, err := chip.New(p.Mesh, p.Configs)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Inject(eng, "a-in", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Inject(eng, "b-in", 0, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run(10)
	if out := eng.DrainOutputs(); len(out) != 2 {
		t.Fatalf("outputs = %v, want both chain ends", out)
	}
}

func TestWireLengthCountsInternalOnly(t *testing.T) {
	net := NewNet()
	a := net.AddCore()
	b := net.AddCore()
	net.SetNeuron(a, 0, neuron.Identity())
	net.Connect(a, 0, b, 0, 1)
	net.SetNeuron(b, 0, neuron.Identity())
	net.ConnectOutput(b, 0, "o", 0) // outputs carry no wire length
	p, err := Place(net, router.Mesh{W: 4, H: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.WireLength(); got != 1 {
		t.Fatalf("wire length = %d, want 1", got)
	}
}
