package corelet

import (
	"fmt"

	"truenorth/internal/core"
	"truenorth/internal/neuron"
)

// Logic builds synchronous Boolean circuits from neurons — the concrete
// content behind the paper's footnote that TrueNorth, "while
// Turing-complete, is efficient for cognitive applications". A logical 1
// at time t is a spike at tick t; gates are single neurons (AND, OR, NOT)
// or two-level sub-circuits (XOR), and signals carry their firing-time
// offset so the builder auto-aligns converging paths with axonal delays.
//
// NOT gates need a constant 1: each allocates its own pacemaker neuron
// (leak-driven, fires every tick) as bias — no global clock tree required.
type Logic struct {
	net *Net
	// cur is the core gates are currently packed onto.
	cur         CoreID
	axonsLeft   int
	neuronsLeft int
}

// Signal is a wire: a neuron handle plus the tick offset at which its
// value for "time 0 inputs" fires. Each Signal drives exactly one gate
// input (TrueNorth neurons have a single target); use Split for fanout.
type Signal struct {
	h Handle
	t int
}

// T returns the signal's firing-tick offset relative to circuit inputs.
func (s Signal) T() int { return s.t }

// AddLogic returns a circuit builder on net.
func AddLogic(n *Net) *Logic {
	l := &Logic{net: n}
	l.newCore()
	return l
}

func (l *Logic) newCore() {
	l.cur = l.net.AddCore()
	l.axonsLeft = core.AxonsPerCore
	l.neuronsLeft = core.NeuronsPerCore
}

// alloc reserves axons and neurons, rolling to a fresh core when the
// current one cannot fit the request.
func (l *Logic) alloc(axons, neurons int) {
	if l.axonsLeft < axons || l.neuronsLeft < neurons {
		l.newCore()
	}
	l.axonsLeft -= axons
	l.neuronsLeft -= neurons
}

// Input declares an external input wire: injecting a spike with delay 0
// into the returned pin group presents a logical 1 at time 0; the input
// relay fires on that same tick, so the returned signal has t = 0.
//
// Wires carry their defined value only at their aligned tick; at other
// ticks they carry idle values (NOT gates idle high from their pacemaker
// bias). Sample each output at exactly its reported tick.
func (l *Logic) Input(name string) Signal {
	l.alloc(1, 1)
	a := l.net.AllocAxon(l.cur)
	j := l.net.AllocNeuron(l.cur)
	l.net.SetAxonType(l.cur, a, 0)
	l.net.SetSynapse(l.cur, a, j)
	l.net.SetNeuron(l.cur, j, neuron.Identity())
	l.net.AddInput(name, l.cur, a)
	return Signal{h: Handle{Core: l.cur, Neuron: j}, t: 0}
}

// connect wires src into (core, axon) arriving exactly at tick `at`
// (src fires at src.t; axonal delay covers the gap). The gap must be
// 1..15; the builder keeps gate depths small enough in practice.
func (l *Logic) connect(src Signal, dst CoreID, axon, at int) error {
	d := at - src.t
	if d < core.MinDelay || d > core.MaxDelay {
		return fmt.Errorf("corelet: cannot align signal at t=%d to t=%d (delay %d outside 1..15)", src.t, at, d)
	}
	l.net.Connect(src.h.Core, src.h.Neuron, dst, axon, d)
	return nil
}

// gate2 builds a two-input gate neuron: weights wa, wb on two fresh axons
// (types 0, 1), threshold th; inputs are aligned to arrive together.
func (l *Logic) gate2(a, b Signal, wa, wb, th int32) (Signal, error) {
	l.alloc(2, 1)
	axA := l.net.AllocAxon(l.cur)
	axB := l.net.AllocAxon(l.cur)
	j := l.net.AllocNeuron(l.cur)
	l.net.SetAxonType(l.cur, axA, 0)
	l.net.SetAxonType(l.cur, axB, 1)
	l.net.SetSynapse(l.cur, axA, j)
	l.net.SetSynapse(l.cur, axB, j)
	l.net.SetNeuron(l.cur, j, neuron.Params{
		Weights:      [neuron.NumAxonTypes]int32{wa, wb, 0, 0},
		Threshold:    th,
		Reset:        neuron.ResetToV,
		NegThreshold: 0,
		NegSaturate:  true, // wipe residue: gates are stateless per tick
	})
	at := max(a.t, b.t) + 1
	if err := l.connect(a, l.cur, axA, at); err != nil {
		return Signal{}, err
	}
	if err := l.connect(b, l.cur, axB, at); err != nil {
		return Signal{}, err
	}
	return Signal{h: Handle{Core: l.cur, Neuron: j}, t: at}, nil
}

// And returns a∧b (latency 1 past the later input).
func (l *Logic) And(a, b Signal) (Signal, error) { return l.gate2(a, b, 1, 1, 2) }

// Or returns a∨b.
func (l *Logic) Or(a, b Signal) (Signal, error) { return l.gate2(a, b, 1, 1, 1) }

// AndNot returns a∧¬b (inhibition gating), the primitive behind Not/Xor.
func (l *Logic) AndNot(a, b Signal) (Signal, error) { return l.gate2(a, b, 1, -2, 1) }

// Not returns ¬a using a private pacemaker bias (fires every tick, so the
// bias is aligned with any input timing).
func (l *Logic) Not(a Signal) (Signal, error) {
	l.alloc(1, 2)
	// Pacemaker bias neuron (no axons; leak-driven).
	bias := l.net.AllocNeuron(l.cur)
	l.net.SetNeuron(l.cur, bias, neuron.Pacemaker(1))
	axBias := l.net.AllocAxon(l.cur)
	l.net.SetAxonType(l.cur, axBias, 0)
	l.net.Connect(l.cur, bias, l.cur, axBias, 1)

	l.alloc(1, 1)
	axA := l.net.AllocAxon(l.cur)
	j := l.net.AllocNeuron(l.cur)
	l.net.SetAxonType(l.cur, axA, 1)
	l.net.SetSynapse(l.cur, axBias, j)
	l.net.SetSynapse(l.cur, axA, j)
	l.net.SetNeuron(l.cur, j, neuron.Params{
		Weights:      [neuron.NumAxonTypes]int32{1, -2, 0, 0},
		Threshold:    1,
		Reset:        neuron.ResetToV,
		NegThreshold: 0,
		NegSaturate:  true,
	})
	at := a.t + 1
	if err := l.connect(a, l.cur, axA, at); err != nil {
		return Signal{}, err
	}
	return Signal{h: Handle{Core: l.cur, Neuron: j}, t: at}, nil
}

// Xor returns a⊕b as (a∨b)∧¬(a∧b): two gate levels, latency 2.
func (l *Logic) Xor(a, b Signal) (Signal, error) {
	a2 := l.Split(a, 2)
	b2 := l.Split(b, 2)
	or, err := l.Or(a2[0], b2[0])
	if err != nil {
		return Signal{}, err
	}
	and, err := l.And(a2[1], b2[1])
	if err != nil {
		return Signal{}, err
	}
	return l.AndNot(or, and)
}

// Split replicates a signal k ways through relay neurons (latency +1),
// since each neuron drives exactly one target.
func (l *Logic) Split(a Signal, k int) []Signal {
	l.alloc(1, k)
	ax := l.net.AllocAxon(l.cur)
	l.net.SetAxonType(l.cur, ax, 0)
	out := make([]Signal, k)
	for i := 0; i < k; i++ {
		j := l.net.AllocNeuron(l.cur)
		l.net.SetSynapse(l.cur, ax, j)
		l.net.SetNeuron(l.cur, j, neuron.Identity())
		out[i] = Signal{h: Handle{Core: l.cur, Neuron: j}, t: a.t + 1}
	}
	// The connect cannot fail: delay is exactly 1.
	l.net.Connect(a.h.Core, a.h.Neuron, l.cur, ax, 1)
	return out
}

// Delay pads a signal by d ticks (1..15 per stage) using relay neurons,
// for manual path balancing beyond what gates auto-align.
func (l *Logic) Delay(a Signal, d int) (Signal, error) {
	for d > 0 {
		step := d
		if step > core.MaxDelay {
			step = core.MaxDelay
		}
		l.alloc(1, 1)
		ax := l.net.AllocAxon(l.cur)
		j := l.net.AllocNeuron(l.cur)
		l.net.SetAxonType(l.cur, ax, 0)
		l.net.SetSynapse(l.cur, ax, j)
		l.net.SetNeuron(l.cur, j, neuron.Identity())
		l.net.Connect(a.h.Core, a.h.Neuron, l.cur, ax, step)
		a = Signal{h: Handle{Core: l.cur, Neuron: j}, t: a.t + step}
		d -= step
	}
	return a, nil
}

// Output routes a signal to a named external sink and returns the tick
// offset at which a time-0 input's result appears there.
func (l *Logic) Output(a Signal, name string, idx int) int {
	l.net.ConnectOutput(a.h.Core, a.h.Neuron, name, idx)
	return a.t
}

// FullAdder builds a 1-bit full adder: sum = a⊕b⊕cin,
// carry = (a∧b) ∨ (cin∧(a⊕b)). Both outputs are time-aligned.
func (l *Logic) FullAdder(a, b, cin Signal) (sum, carry Signal, err error) {
	a2 := l.Split(a, 2)
	b2 := l.Split(b, 2)
	axb, err := l.Xor(a2[0], b2[0])
	if err != nil {
		return Signal{}, Signal{}, err
	}
	axb2 := l.Split(axb, 2)
	cin2 := l.Split(cin, 2)
	sum, err = l.Xor(axb2[0], cin2[0])
	if err != nil {
		return Signal{}, Signal{}, err
	}
	ab, err := l.And(a2[1], b2[1])
	if err != nil {
		return Signal{}, Signal{}, err
	}
	cAxb, err := l.And(axb2[1], cin2[1])
	if err != nil {
		return Signal{}, Signal{}, err
	}
	carry, err = l.Or(ab, cAxb)
	if err != nil {
		return Signal{}, Signal{}, err
	}
	// Align sum and carry to the same tick for downstream composition.
	switch {
	case sum.t < carry.t:
		sum, err = l.Delay(sum, carry.t-sum.t)
	case carry.t < sum.t:
		carry, err = l.Delay(carry, sum.t-carry.t)
	}
	return sum, carry, err
}
