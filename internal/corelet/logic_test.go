package corelet

import (
	"fmt"
	"testing"

	"truenorth/internal/chip"
	"truenorth/internal/router"
	"truenorth/internal/sim"
)

// evalCircuit places the net, injects the given input bits at time 0, runs
// long enough, and returns which output indices of `outName` fired at
// exactly the expected tick.
func evalCircuit(t *testing.T, n *Net, inputs map[string]bool, outName string, outTicks map[int]int, run int) map[int]bool {
	t.Helper()
	side := 1
	for side*side < n.NumCores() {
		side++
	}
	p, err := Place(n, router.Mesh{W: side, H: side})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chip.New(p.Mesh, p.Configs)
	if err != nil {
		t.Fatal(err)
	}
	for name, bit := range inputs {
		if bit {
			if err := p.Inject(eng, name, 0, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng.Run(run)
	// Sample each output at exactly its aligned tick; wires carry idle
	// values at other ticks (NOT gates idle high), which are ignored.
	fired := map[int]bool{}
	for _, s := range eng.DrainOutputs() {
		ref, ok := p.Decode(s.ID)
		if !ok || ref.Name != outName {
			continue
		}
		if want, tracked := outTicks[ref.Index]; tracked && int(s.Tick) == want {
			fired[ref.Index] = true
		}
	}
	return fired
}

func TestGateTruthTables(t *testing.T) {
	type gateFn func(l *Logic, a, b Signal) (Signal, error)
	gates := []struct {
		name  string
		build gateFn
		truth [4]bool // for inputs (a,b) = 00, 01, 10, 11
	}{
		{"AND", func(l *Logic, a, b Signal) (Signal, error) { return l.And(a, b) }, [4]bool{false, false, false, true}},
		{"OR", func(l *Logic, a, b Signal) (Signal, error) { return l.Or(a, b) }, [4]bool{false, true, true, true}},
		{"XOR", func(l *Logic, a, b Signal) (Signal, error) { return l.Xor(a, b) }, [4]bool{false, true, true, false}},
		{"ANDNOT", func(l *Logic, a, b Signal) (Signal, error) { return l.AndNot(a, b) }, [4]bool{false, false, true, false}},
	}
	for _, g := range gates {
		for combo := 0; combo < 4; combo++ {
			aBit, bBit := combo&2 != 0, combo&1 != 0
			t.Run(fmt.Sprintf("%s_%v_%v", g.name, aBit, bBit), func(t *testing.T) {
				n := NewNet()
				l := AddLogic(n)
				a := l.Input("a")
				b := l.Input("b")
				out, err := g.build(l, a, b)
				if err != nil {
					t.Fatal(err)
				}
				tick := l.Output(out, "q", 0)
				fired := evalCircuit(t, n,
					map[string]bool{"a": aBit, "b": bBit}, "q", map[int]int{0: tick}, tick+4)
				if fired[0] != g.truth[combo] {
					t.Fatalf("%s(%v,%v) = %v, want %v", g.name, aBit, bBit, fired[0], g.truth[combo])
				}
			})
		}
	}
}

func TestNotGate(t *testing.T) {
	for _, aBit := range []bool{false, true} {
		n := NewNet()
		l := AddLogic(n)
		a := l.Input("a")
		out, err := l.Not(a)
		if err != nil {
			t.Fatal(err)
		}
		tick := l.Output(out, "q", 0)
		fired := evalCircuit(t, n, map[string]bool{"a": aBit}, "q", map[int]int{0: tick}, tick+4)
		if fired[0] == aBit {
			t.Fatalf("NOT(%v) = %v", aBit, fired[0])
		}
	}
}

func TestFullAdderTruthTable(t *testing.T) {
	for combo := 0; combo < 8; combo++ {
		aBit, bBit, cBit := combo&4 != 0, combo&2 != 0, combo&1 != 0
		n := NewNet()
		l := AddLogic(n)
		a := l.Input("a")
		b := l.Input("b")
		cin := l.Input("cin")
		sum, carry, err := l.FullAdder(a, b, cin)
		if err != nil {
			t.Fatal(err)
		}
		if sum.T() != carry.T() {
			t.Fatalf("adder outputs misaligned: sum t=%d carry t=%d", sum.T(), carry.T())
		}
		st := l.Output(sum, "out", 0)
		ct := l.Output(carry, "out", 1)
		fired := evalCircuit(t, n,
			map[string]bool{"a": aBit, "b": bBit, "cin": cBit},
			"out", map[int]int{0: st, 1: ct}, st+6)
		total := b2i(aBit) + b2i(bBit) + b2i(cBit)
		wantSum, wantCarry := total&1 == 1, total >= 2
		if fired[0] != wantSum || fired[1] != wantCarry {
			t.Fatalf("adder(%v,%v,%v): sum=%v carry=%v, want %v/%v",
				aBit, bBit, cBit, fired[0], fired[1], wantSum, wantCarry)
		}
	}
}

func TestRippleCarryAdder(t *testing.T) {
	// A 3-bit ripple-carry adder: chains three full adders through their
	// aligned carry signals — sequential composition of combinational
	// logic, i.e. real computation on the spiking substrate.
	for _, tc := range []struct{ x, y int }{{0, 0}, {1, 1}, {3, 5}, {7, 7}, {5, 2}, {6, 3}} {
		n := NewNet()
		l := AddLogic(n)
		var xs, ys [3]Signal
		for i := 0; i < 3; i++ {
			xs[i] = l.Input(fmt.Sprintf("x%d", i))
			ys[i] = l.Input(fmt.Sprintf("y%d", i))
		}
		// Bit 0 adder has no carry-in: use a constant 0 (an input never
		// driven).
		zero := l.Input("zero")
		carry := zero
		outTicks := map[int]int{}
		for i := 0; i < 3; i++ {
			// Align operand bits to the current carry time.
			xi, yi := xs[i], ys[i]
			var err error
			if carry.T() > xi.T() {
				xi, err = l.Delay(xi, carry.T()-xi.T())
				if err != nil {
					t.Fatal(err)
				}
				yi, err = l.Delay(yi, carry.T()-yi.T())
				if err != nil {
					t.Fatal(err)
				}
			}
			var sum Signal
			sum, carry, err = l.FullAdder(xi, yi, carry)
			if err != nil {
				t.Fatal(err)
			}
			outTicks[i] = l.Output(sum, "sum", i)
		}
		outTicks[3] = l.Output(carry, "sum", 3)

		inputs := map[string]bool{"zero": false}
		for i := 0; i < 3; i++ {
			inputs[fmt.Sprintf("x%d", i)] = tc.x&(1<<i) != 0
			inputs[fmt.Sprintf("y%d", i)] = tc.y&(1<<i) != 0
		}
		maxTick := 0
		for _, v := range outTicks {
			if v > maxTick {
				maxTick = v
			}
		}
		fired := evalCircuit(t, n, inputs, "sum", outTicks, maxTick+6)
		got := 0
		for bit := 0; bit < 4; bit++ {
			if fired[bit] {
				got |= 1 << bit
			}
		}
		if got != tc.x+tc.y {
			t.Fatalf("%d + %d = %d on the adder, want %d", tc.x, tc.y, got, tc.x+tc.y)
		}
	}
}

func TestSplitReplicates(t *testing.T) {
	n := NewNet()
	l := AddLogic(n)
	a := l.Input("a")
	outs := l.Split(a, 3)
	ticks := map[int]int{}
	for i, s := range outs {
		ticks[i] = l.Output(s, "q", i)
	}
	fired := evalCircuit(t, n, map[string]bool{"a": true}, "q", ticks, 6)
	if len(fired) != 3 {
		t.Fatalf("split produced %d copies, want 3", len(fired))
	}
}

func TestDelayPadding(t *testing.T) {
	n := NewNet()
	l := AddLogic(n)
	a := l.Input("a")
	d, err := l.Delay(a, 40) // needs a 3-relay chain (15+15+10)
	if err != nil {
		t.Fatal(err)
	}
	if d.T() != a.T()+40 {
		t.Fatalf("delayed signal t=%d, want %d", d.T(), a.T()+40)
	}
	tick := l.Output(d, "q", 0)
	fired := evalCircuit(t, n, map[string]bool{"a": true}, "q", map[int]int{0: tick}, tick+4)
	if !fired[0] {
		t.Fatal("delayed spike lost")
	}
}

func TestLogicPacksAcrossCores(t *testing.T) {
	// Enough gates to overflow one core: the builder must roll over and
	// the circuit still works.
	n := NewNet()
	l := AddLogic(n)
	a := l.Input("a")
	sig := a
	var err error
	for i := 0; i < 200; i++ { // 200 NOTs: each uses 2 axons + 3 neurons
		sig, err = l.Not(sig)
		if err != nil {
			t.Fatal(err)
		}
	}
	if n.NumCores() < 2 {
		t.Fatalf("200 NOT gates fit in %d core(s); packing untested", n.NumCores())
	}
	tick := l.Output(sig, "q", 0)
	// Even number of NOTs: output equals input.
	fired := evalCircuit(t, n, map[string]bool{"a": true}, "q", map[int]int{0: tick}, tick+4)
	if !fired[0] {
		t.Fatal("200-deep NOT chain lost the signal")
	}
	fired = evalCircuit(t, n, map[string]bool{"a": false}, "q", map[int]int{0: tick}, tick+4)
	if fired[0] {
		t.Fatal("NOT chain of even depth inverted a 0 to 1")
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

var _ sim.Engine = (*chip.Model)(nil)
