package corelet

import (
	"testing"

	"truenorth/internal/chip"
	"truenorth/internal/compass"
	"truenorth/internal/core"
	"truenorth/internal/neuron"
	"truenorth/internal/router"
	"truenorth/internal/sim"
)

// buildRelayPair returns a net with two cores: input pin → core A neuron →
// core B neuron → output "out"[0].
func buildRelayPair() *Net {
	n := NewNet()
	a := n.AddCore()
	b := n.AddCore()
	n.SetSynapse(a, 0, 0)
	n.SetNeuron(a, 0, neuron.Identity())
	n.Connect(a, 0, b, 0, 1)
	n.SetSynapse(b, 0, 0)
	n.SetNeuron(b, 0, neuron.Identity())
	n.ConnectOutput(b, 0, "out", 0)
	n.AddInput("in", a, 0)
	return n
}

func place(t *testing.T, n *Net, w, h int) (*Placement, *chip.Model) {
	t.Helper()
	p, err := Place(n, router.Mesh{W: w, H: h})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chip.New(p.Mesh, p.Configs)
	if err != nil {
		t.Fatal(err)
	}
	return p, eng
}

func TestPlaceAndRunRelayPair(t *testing.T) {
	n := buildRelayPair()
	p, eng := place(t, n, 4, 1)
	if err := p.Inject(eng, "in", 0, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run(4)
	out := eng.DrainOutputs()
	if len(out) != 1 {
		t.Fatalf("outputs = %v, want 1", out)
	}
	ref, ok := p.Decode(out[0].ID)
	if !ok || ref.Name != "out" || ref.Index != 0 {
		t.Fatalf("Decode(%d) = %+v, %v", out[0].ID, ref, ok)
	}
	if out[0].Tick != 1 {
		t.Fatalf("output tick = %d, want 1 (A fires at 0, B at 1)", out[0].Tick)
	}
}

func TestPlacementReusable(t *testing.T) {
	// Placing and running twice must not share state (configs are copied).
	n := buildRelayPair()
	p1, e1 := place(t, n, 2, 1)
	_, e2 := place(t, n, 2, 1)
	if err := p1.Inject(e1, "in", 0, 0); err != nil {
		t.Fatal(err)
	}
	e1.Run(4)
	e2.Run(4)
	if len(e1.DrainOutputs()) != 1 {
		t.Fatal("first placement missing output")
	}
	if len(e2.DrainOutputs()) != 0 {
		t.Fatal("second placement saw the first's injection")
	}
}

func TestValidateCatchesBadWiring(t *testing.T) {
	n := NewNet()
	a := n.AddCore()
	n.Connect(a, 0, CoreID(5), 0, 1) // missing core
	if err := n.Validate(); err == nil {
		t.Fatal("dangling Connect accepted")
	}

	n2 := NewNet()
	b := n2.AddCore()
	n2.Connect(b, 0, b, 0, 0) // delay 0
	if err := n2.Validate(); err == nil {
		t.Fatal("zero delay accepted")
	}

	n3 := NewNet()
	c := n3.AddCore()
	n3.AddInput("x", c, 300)
	if err := n3.Validate(); err == nil {
		t.Fatal("axon 300 accepted")
	}
}

func TestPlaceTooBig(t *testing.T) {
	n := NewNet()
	for i := 0; i < 5; i++ {
		n.AddCore()
	}
	if _, err := Place(n, router.Mesh{W: 2, H: 2}); err == nil {
		t.Fatal("oversized net placed")
	}
}

func TestInjectErrors(t *testing.T) {
	n := buildRelayPair()
	p, eng := place(t, n, 2, 1)
	if err := p.Inject(eng, "nosuch", 0, 0); err == nil {
		t.Fatal("unknown input group accepted")
	}
	if err := p.Inject(eng, "in", 5, 0); err == nil {
		t.Fatal("out-of-range pin accepted")
	}
}

func TestDecodeOutOfRange(t *testing.T) {
	n := buildRelayPair()
	p, _ := place(t, n, 2, 1)
	if _, ok := p.Decode(-1); ok {
		t.Fatal("Decode(-1) succeeded")
	}
	if _, ok := p.Decode(99); ok {
		t.Fatal("Decode(99) succeeded")
	}
	if p.NumOutputs() != 1 {
		t.Fatalf("NumOutputs = %d, want 1", p.NumOutputs())
	}
}

func TestMergeRemapsWiring(t *testing.T) {
	parent := NewNet()
	parent.AddCore() // occupy id 0 so the merge offset is nonzero
	child := buildRelayPair()
	off := parent.Merge(child, "stage1/")
	if off != 1 {
		t.Fatalf("merge offset = %d, want 1", off)
	}
	p, eng := place(t, parent, 4, 1)
	if err := p.Inject(eng, "stage1/in", 0, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run(4)
	out := eng.DrainOutputs()
	if len(out) != 1 {
		t.Fatalf("merged net outputs = %v, want 1", out)
	}
	ref, _ := p.Decode(out[0].ID)
	if ref.Name != "stage1/out" {
		t.Fatalf("merged output name = %q, want stage1/out", ref.Name)
	}
}

func TestMergeIsDeepCopy(t *testing.T) {
	parent := NewNet()
	child := buildRelayPair()
	parent.Merge(child, "a/")
	// Mutating the child afterwards must not affect the parent.
	child.SetNeuron(0, 0, neuron.Params{Threshold: 12345})
	p, eng := place(t, parent, 2, 1)
	if err := p.Inject(eng, "a/in", 0, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run(4)
	if len(eng.DrainOutputs()) != 1 {
		t.Fatal("parent corrupted by post-merge child mutation")
	}
}

func TestMergeTwice(t *testing.T) {
	parent := NewNet()
	parent.Merge(buildRelayPair(), "a/")
	parent.Merge(buildRelayPair(), "b/")
	p, eng := place(t, parent, 4, 1)
	if err := p.Inject(eng, "a/in", 0, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Inject(eng, "b/in", 0, 1); err != nil {
		t.Fatal(err)
	}
	eng.Run(5)
	out := eng.DrainOutputs()
	if len(out) != 2 {
		t.Fatalf("outputs = %v, want 2", out)
	}
	r0, _ := p.Decode(out[0].ID)
	r1, _ := p.Decode(out[1].ID)
	if r0.Name != "a/out" || r1.Name != "b/out" {
		t.Fatalf("outputs decoded as %q, %q", r0.Name, r1.Name)
	}
}

func TestAllocNeuronAndAxonExhaustion(t *testing.T) {
	n := NewNet()
	id := n.AddCore()
	for i := 0; i < core.NeuronsPerCore; i++ {
		if got := n.AllocNeuron(id); got != i {
			t.Fatalf("AllocNeuron #%d = %d", i, got)
		}
	}
	if got := n.AllocNeuron(id); got != -1 {
		t.Fatalf("AllocNeuron on full core = %d, want -1", got)
	}
	for i := 0; i < core.AxonsPerCore; i++ {
		if got := n.AllocAxon(id); got != i {
			t.Fatalf("AllocAxon #%d = %d", i, got)
		}
	}
	if got := n.AllocAxon(id); got != -1 {
		t.Fatalf("AllocAxon on full core = %d, want -1", got)
	}
}

func TestFanoutReplication(t *testing.T) {
	n := NewNet()
	const lines, fan = 10, 16
	f, err := AddFanout(n, lines, fan)
	if err != nil {
		t.Fatal(err)
	}
	// Wire every relay to a distinct output.
	for l := 0; l < lines; l++ {
		for k, h := range f.Outs[l] {
			n.ConnectOutput(h.Core, h.Neuron, "fan", l*fan+k)
		}
		n.AddInput("lines", f.Pins[l].Core, f.Pins[l].Axon)
	}
	p, eng := place(t, n, 4, 4)
	if err := p.Inject(eng, "lines", 3, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run(2)
	out := eng.DrainOutputs()
	if len(out) != fan {
		t.Fatalf("line 3 fanned out to %d spikes, want %d", len(out), fan)
	}
	seen := map[int]bool{}
	for _, o := range out {
		ref, _ := p.Decode(o.ID)
		if ref.Index < 3*fan || ref.Index >= 4*fan {
			t.Fatalf("fanout output index %d outside line 3's range", ref.Index)
		}
		seen[ref.Index] = true
	}
	if len(seen) != fan {
		t.Fatalf("fanout produced %d distinct outputs, want %d", len(seen), fan)
	}
}

func TestFanoutPacking(t *testing.T) {
	// 16 relays per line → 16 lines per core; 64 lines need 4 cores.
	n := NewNet()
	if _, err := AddFanout(n, 64, 16); err != nil {
		t.Fatal(err)
	}
	if got := n.NumCores(); got != 4 {
		t.Fatalf("fanout used %d cores, want 4", got)
	}
	// 256-way fan → 1 line per core.
	n2 := NewNet()
	if _, err := AddFanout(n2, 3, 256); err != nil {
		t.Fatal(err)
	}
	if got := n2.NumCores(); got != 3 {
		t.Fatalf("256-way fanout used %d cores, want 3", got)
	}
}

func TestFanoutErrors(t *testing.T) {
	n := NewNet()
	if _, err := AddFanout(n, 0, 4); err == nil {
		t.Error("zero lines accepted")
	}
	if _, err := AddFanout(n, 4, 0); err == nil {
		t.Error("zero fan accepted")
	}
	if _, err := AddFanout(n, 1, 257); err == nil {
		t.Error("fan 257 accepted")
	}
}

func TestWeightedSumUnit(t *testing.T) {
	n := NewNet()
	ws := AddWeightedSum(n)
	h, err := ws.Unit([]int{0, 1}, []int{2}, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	n.ConnectOutput(h.Core, h.Neuron, "sum", 0)
	n.AddInput("e0", ws.Core, 0)
	n.AddInput("e1", ws.Core, 1)
	n.AddInput("i0", ws.Core, 2)
	p, eng := place(t, n, 1, 1)

	// Two excitatory events reach threshold 2 → one spike.
	mustInject(t, p, eng, "e0", 0, 0)
	mustInject(t, p, eng, "e1", 0, 0)
	eng.Run(1)
	if out := eng.DrainOutputs(); len(out) != 1 {
		t.Fatalf("2 excitatory events: %d spikes, want 1", len(out))
	}
	// Excitation cancelled by inhibition → silence.
	mustInject(t, p, eng, "e0", 0, 0)
	mustInject(t, p, eng, "i0", 0, 0)
	eng.Run(3)
	if out := eng.DrainOutputs(); len(out) != 0 {
		t.Fatalf("balanced input: %d spikes, want 0", len(out))
	}
}

func TestWeightedSumFillsCore(t *testing.T) {
	n := NewNet()
	ws := AddWeightedSum(n)
	for i := 0; i < core.NeuronsPerCore; i++ {
		if _, err := ws.Unit([]int{0}, nil, 1, 0, 1); err != nil {
			t.Fatalf("unit %d: %v", i, err)
		}
	}
	if _, err := ws.Unit([]int{0}, nil, 1, 0, 1); err == nil {
		t.Fatal("257th unit accepted")
	}
}

func TestWTASelectsStrongestChannel(t *testing.T) {
	n := NewNet()
	outs, err := AddWTA(n, 4, 4, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range outs {
		n.ConnectOutput(h.Core, h.Neuron, "winner", i)
	}
	p, eng := place(t, n, 1, 1)

	// Channel 2 gets 3× the input rate of the others.
	for tick := 0; tick < 60; tick++ {
		mustInject(t, p, eng, "wta", 2, tick)
		if tick%3 == 0 {
			mustInject(t, p, eng, "wta", 0, tick)
			mustInject(t, p, eng, "wta", 1, tick)
			mustInject(t, p, eng, "wta", 3, tick)
		}
	}
	eng.Run(70)
	counts := map[int]int{}
	for _, o := range eng.DrainOutputs() {
		ref, _ := p.Decode(o.ID)
		counts[ref.Index]++
	}
	if counts[2] == 0 {
		t.Fatal("dominant channel never fired")
	}
	for i := 0; i < 4; i++ {
		if i != 2 && counts[i] >= counts[2] {
			t.Fatalf("channel %d (%d spikes) not suppressed below channel 2 (%d)", i, counts[i], counts[2])
		}
	}
}

func TestWTATooBig(t *testing.T) {
	n := NewNet()
	if _, err := AddWTA(n, 129, 1, 1, 1); err == nil {
		t.Fatal("129-channel WTA accepted (needs 258 neurons)")
	}
}

func TestPlacedNetRunsIdenticallyOnBothEngines(t *testing.T) {
	n := NewNet()
	f, err := AddFanout(n, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	ws := AddWeightedSum(n)
	for l := 0; l < 8; l++ {
		n.AddInput("px", f.Pins[l].Core, f.Pins[l].Axon)
		for k, h := range f.Outs[l] {
			a := n.AllocAxon(ws.Core)
			n.Connect(h.Core, h.Neuron, ws.Core, a, 1+k%3)
		}
	}
	for u := 0; u < 8; u++ {
		h, err := ws.Unit([]int{u * 3, u*3 + 1, u*3 + 2}, nil, 1, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		n.ConnectOutput(h.Core, h.Neuron, "resp", u)
	}
	p, err := Place(n, router.Mesh{W: 3, H: 3})
	if err != nil {
		t.Fatal(err)
	}
	hw, err := chip.New(p.Mesh, p.Configs)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := compass.New(p.Mesh, p.Configs, sim.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range []sim.Engine{hw, sw} {
		for tick := 0; tick < 40; tick++ {
			for l := 0; l < 8; l++ {
				if (tick+l)%2 == 0 {
					if err := p.Inject(eng, "px", l, tick); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		eng.Run(60)
	}
	ho, so := hw.DrainOutputs(), sw.DrainOutputs()
	if len(ho) != len(so) {
		t.Fatalf("chip %d outputs vs compass %d", len(ho), len(so))
	}
	for i := range ho {
		if ho[i] != so[i] {
			t.Fatalf("output %d: %+v vs %+v", i, ho[i], so[i])
		}
	}
	if len(ho) == 0 {
		t.Fatal("no outputs; equivalence vacuous")
	}
}

func mustInject(t *testing.T, p *Placement, eng sim.Engine, name string, idx, delay int) {
	t.Helper()
	if err := p.Inject(eng, name, idx, delay); err != nil {
		t.Fatal(err)
	}
}
