// Package corelet is the programming toolchain for neurosynaptic systems —
// the analogue of the paper's Corelet language and Corelet Programming
// Environment (Section IV-A). "Programming the TrueNorth processor consists
// of specifying three things: the dynamics of each neuron, the mapping from
// neuron outputs to axon inputs, and the local synaptic connectivity
// between axons and dendrites."
//
// A Net is a functional encapsulation of a network of neurosynaptic cores:
// cores are created and wired with net-local names, external inputs and
// outputs are named pins, and nets compose hierarchically via Merge. Place
// maps a finished net onto a physical core grid, resolving net-local wiring
// into the relative (Δx, Δy, axon, delay) targets the hardware packets
// carry, and returns the I/O tables applications use to inject and decode
// spikes.
package corelet

import (
	"fmt"
	"sort"

	"truenorth/internal/core"
	"truenorth/internal/neuron"
	"truenorth/internal/router"
	"truenorth/internal/sim"
)

// CoreID identifies a core within a Net.
type CoreID int

// vKind distinguishes virtual target kinds before placement.
type vKind uint8

const (
	vNone vKind = iota
	vInternal
	vOutput
)

// vTarget is a neuron's destination in net-local terms.
type vTarget struct {
	kind  vKind
	core  CoreID
	axon  uint8
	delay uint8
	out   int32 // output id when kind == vOutput
}

// CoreSpec is one core under construction.
type CoreSpec struct {
	cfg     *core.Config
	targets [core.NeuronsPerCore]vTarget
	// nextNeuron and nextAxon support sequential allocation helpers.
	nextNeuron int
	nextAxon   int
}

// InputPin locates an external input (a core axon) in net-local terms.
type InputPin struct {
	Core CoreID
	Axon int
}

// OutputRef describes one registered output sink.
type OutputRef struct {
	// Name is the output group (e.g. "saliency").
	Name string
	// Index is the caller-assigned semantic index within the group (e.g.
	// a pixel position or class label).
	Index int
}

// Net is a composable network of neurosynaptic cores.
type Net struct {
	cores   []*CoreSpec
	inputs  map[string][]InputPin
	outputs []OutputRef
}

// NewNet returns an empty network.
func NewNet() *Net {
	return &Net{inputs: make(map[string][]InputPin)}
}

// NumCores returns the number of cores in the net.
func (n *Net) NumCores() int { return len(n.cores) }

// NumNeurons returns the number of wired (non-inert) neurons: those with an
// internal or external target. This is the figure the paper reports per
// application (e.g. "617,567 neurons in 2,605 cores" for Haar).
func (n *Net) NumNeurons() int {
	total := 0
	for _, s := range n.cores {
		for j := range s.targets {
			if s.targets[j].kind != vNone {
				total++
			}
		}
	}
	return total
}

// AddCore appends a fresh core (all neurons inert) and returns its id.
func (n *Net) AddCore() CoreID {
	n.cores = append(n.cores, &CoreSpec{cfg: core.InertConfig()})
	return CoreID(len(n.cores) - 1)
}

// coreSpec returns the spec for id, panicking on a bad id — corelet wiring
// errors are programming bugs, caught at Validate/Place with errors, but
// direct misuse of ids fails fast.
func (n *Net) coreSpec(id CoreID) *CoreSpec {
	return n.cores[id]
}

// SetSeed sets the PRNG seed of core id.
func (n *Net) SetSeed(id CoreID, seed uint16) { n.coreSpec(id).cfg.Seed = seed }

// SetNeuron programs neuron j of core id.
func (n *Net) SetNeuron(id CoreID, j int, p neuron.Params) {
	n.coreSpec(id).cfg.Neurons[j] = p
}

// SetInitV programs the initial potential of neuron j of core id.
func (n *Net) SetInitV(id CoreID, j int, v int32) {
	n.coreSpec(id).cfg.InitV[j] = v
}

// SetAxonType assigns axon a of core id to type g.
func (n *Net) SetAxonType(id CoreID, a int, g uint8) {
	n.coreSpec(id).cfg.AxonType[a] = g
}

// SetSynapse sets the crossbar bit connecting axon a to neuron j on core id.
func (n *Net) SetSynapse(id CoreID, a, j int) {
	n.coreSpec(id).cfg.Synapses[a].Set(j)
}

// Connect wires neuron j of core src to axon a of core dst with the given
// axonal delay.
func (n *Net) Connect(src CoreID, j int, dst CoreID, a int, delay int) {
	n.coreSpec(src).targets[j] = vTarget{kind: vInternal, core: dst, axon: uint8(a), delay: uint8(delay)}
}

// ConnectOutput routes neuron j of core src to a named external output and
// returns the output id (also recoverable from Placement.Decode).
func (n *Net) ConnectOutput(src CoreID, j int, name string, index int) int32 {
	id := int32(len(n.outputs))
	n.outputs = append(n.outputs, OutputRef{Name: name, Index: index})
	n.coreSpec(src).targets[j] = vTarget{kind: vOutput, out: id}
	return id
}

// AddInput registers axon a of core id as the next pin of the named
// external input group. Pins keep registration order: input index i of the
// group maps to the i-th registered pin.
func (n *Net) AddInput(name string, id CoreID, a int) {
	n.inputs[name] = append(n.inputs[name], InputPin{Core: id, Axon: a})
}

// AllocNeuron returns the next unallocated neuron slot on core id, or -1
// when the core is full.
func (n *Net) AllocNeuron(id CoreID) int {
	s := n.coreSpec(id)
	if s.nextNeuron >= core.NeuronsPerCore {
		return -1
	}
	s.nextNeuron++
	return s.nextNeuron - 1
}

// AllocAxon returns the next unallocated axon slot on core id, or -1 when
// the core is full.
func (n *Net) AllocAxon(id CoreID) int {
	s := n.coreSpec(id)
	if s.nextAxon >= core.AxonsPerCore {
		return -1
	}
	s.nextAxon++
	return s.nextAxon - 1
}

// Merge appends other's cores into n, remapping all internal wiring, and
// merges I/O groups under the given name prefix (use "" to merge
// unprefixed). It returns the core-id offset added to other's ids.
func (n *Net) Merge(other *Net, prefix string) CoreID {
	offset := CoreID(len(n.cores))
	outOffset := int32(len(n.outputs))
	for _, s := range other.cores {
		cp := &CoreSpec{nextNeuron: s.nextNeuron, nextAxon: s.nextAxon}
		cfgCopy := *s.cfg
		cp.cfg = &cfgCopy
		cp.targets = s.targets
		for j := range cp.targets {
			switch cp.targets[j].kind {
			case vInternal:
				cp.targets[j].core += offset
			case vOutput:
				cp.targets[j].out += outOffset
			}
		}
		n.cores = append(n.cores, cp)
	}
	for _, ref := range other.outputs {
		n.outputs = append(n.outputs, OutputRef{Name: prefix + ref.Name, Index: ref.Index})
	}
	for name, pins := range other.inputs {
		for _, p := range pins {
			n.inputs[prefix+name] = append(n.inputs[prefix+name], InputPin{Core: p.Core + offset, Axon: p.Axon})
		}
	}
	return offset
}

// Validate checks all wiring against hardware ranges.
func (n *Net) Validate() error {
	for ci, s := range n.cores {
		for j := range s.targets {
			t := s.targets[j]
			switch t.kind {
			case vInternal:
				if int(t.core) < 0 || int(t.core) >= len(n.cores) {
					return fmt.Errorf("corelet: core %d neuron %d targets missing core %d", ci, j, t.core)
				}
				if t.delay < core.MinDelay || t.delay > core.MaxDelay {
					return fmt.Errorf("corelet: core %d neuron %d delay %d out of range", ci, j, t.delay)
				}
			case vOutput:
				if t.out < 0 || int(t.out) >= len(n.outputs) {
					return fmt.Errorf("corelet: core %d neuron %d references missing output %d", ci, j, t.out)
				}
			}
		}
		if err := s.cfg.Validate(); err != nil {
			return fmt.Errorf("corelet: core %d: %w", ci, err)
		}
	}
	for name, pins := range n.inputs {
		for i, p := range pins {
			if int(p.Core) < 0 || int(p.Core) >= len(n.cores) {
				return fmt.Errorf("corelet: input %q pin %d references missing core %d", name, i, p.Core)
			}
			if p.Axon < 0 || p.Axon >= core.AxonsPerCore {
				return fmt.Errorf("corelet: input %q pin %d axon %d out of range", name, i, p.Axon)
			}
		}
	}
	return nil
}

// PhysPin is a placed input pin.
type PhysPin struct {
	X, Y, Axon int
}

// Placement is a net mapped onto a physical mesh.
type Placement struct {
	// Mesh is the physical substrate.
	Mesh router.Mesh
	// Configs is the row-major core configuration array for chip.New or
	// compass.New (nil entries are unpopulated slots).
	Configs []*core.Config
	// Inputs maps input-group names to placed pins, in registration order.
	Inputs map[string][]PhysPin
	// outputs decodes OutputSpike.ID values.
	outputs []OutputRef
	// Used is the number of populated core slots.
	Used int
}

// Place maps the net onto mesh in row-major order starting at slot 0.
// Each net core occupies one physical core; nets larger than the mesh
// fail. Corelets are built with locality (adjacent stages allocate
// adjacent cores), so sequential assignment keeps most connections short;
// PlaceGreedy optimizes connectivity-poor orderings.
func Place(n *Net, mesh router.Mesh) (*Placement, error) {
	slot := make([]int, len(n.cores))
	for i := range slot {
		slot[i] = i
	}
	return placeWithSlots(n, mesh, slot)
}

// PlaceGreedy maps the net onto mesh with a locality heuristic: cores are
// ordered by a weighted breadth-first traversal of the connection graph
// (heaviest-neighbor first) and laid out along a boustrophedon snake, so
// strongly connected cores land on adjacent slots and spikes travel fewer
// mesh hops. Compare Placement.WireLength against Place.
func PlaceGreedy(n *Net, mesh router.Mesh) (*Placement, error) {
	nc := len(n.cores)
	// Connection weights between net cores.
	weight := make(map[[2]int]int)
	degree := make([]int, nc)
	for ci, s := range n.cores {
		for j := range s.targets {
			t := s.targets[j]
			if t.kind != vInternal || int(t.core) == ci {
				continue
			}
			a, b := ci, int(t.core)
			if a > b {
				a, b = b, a
			}
			weight[[2]int{a, b}]++
			degree[ci]++
			degree[t.core]++
		}
	}
	// Weighted BFS order, heaviest edges first, seeded at max degree.
	order := make([]int, 0, nc)
	visited := make([]bool, nc)
	edgeW := func(a, b int) int {
		if a > b {
			a, b = b, a
		}
		return weight[[2]int{a, b}]
	}
	for len(order) < nc {
		seed, best := -1, -1
		for i := 0; i < nc; i++ {
			if !visited[i] && degree[i] > best {
				seed, best = i, degree[i]
			}
		}
		queue := []int{seed}
		visited[seed] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			order = append(order, cur)
			var nbrs []int
			for i := 0; i < nc; i++ {
				if !visited[i] && edgeW(cur, i) > 0 {
					nbrs = append(nbrs, i)
				}
			}
			sort.Slice(nbrs, func(a, b int) bool { return edgeW(cur, nbrs[a]) > edgeW(cur, nbrs[b]) })
			for _, nb := range nbrs {
				visited[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	// Boustrophedon snake over the mesh keeps consecutive order entries
	// physically adjacent.
	slot := make([]int, nc)
	for k, ci := range order {
		y := k / mesh.W
		x := k % mesh.W
		if y%2 == 1 {
			x = mesh.W - 1 - x
		}
		slot[ci] = y*mesh.W + x
	}
	return placeWithSlots(n, mesh, slot)
}

// placeWithSlots realizes a placement given each net core's physical slot.
func placeWithSlots(n *Net, mesh router.Mesh, slot []int) (*Placement, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	slots := mesh.W * mesh.H
	if len(n.cores) > slots {
		return nil, fmt.Errorf("corelet: net needs %d cores but mesh has %d slots", len(n.cores), slots)
	}
	p := &Placement{
		Mesh:    mesh,
		Configs: make([]*core.Config, slots),
		Inputs:  make(map[string][]PhysPin),
		outputs: append([]OutputRef(nil), n.outputs...),
		Used:    len(n.cores),
	}
	pos := func(id CoreID) (int, int) { return slot[id] % mesh.W, slot[id] / mesh.W }
	for i, s := range n.cores {
		cfg := *s.cfg // copy so the net can be placed repeatedly
		sx, sy := pos(CoreID(i))
		for j := range s.targets {
			t := s.targets[j]
			switch t.kind {
			case vNone:
				cfg.Targets[j] = core.Target{}
			case vInternal:
				tx, ty := pos(t.core)
				cfg.Targets[j] = core.Target{
					Valid: true,
					DX:    int16(tx - sx),
					DY:    int16(ty - sy),
					Axon:  t.axon,
					Delay: t.delay,
				}
			case vOutput:
				cfg.Targets[j] = core.Target{Valid: true, Output: true, OutputID: t.out}
			}
		}
		p.Configs[slot[i]] = &cfg
	}
	for name, pins := range n.inputs {
		placed := make([]PhysPin, len(pins))
		for i, pin := range pins {
			x, y := pos(pin.Core)
			placed[i] = PhysPin{X: x, Y: y, Axon: pin.Axon}
		}
		p.Inputs[name] = placed
	}
	return p, nil
}

// WireLength returns the total Manhattan distance (in mesh hops) summed
// over every internal connection — the placement-quality metric PlaceGreedy
// optimizes. Lower wire length means fewer router traversals per spike and
// less communication energy.
func (p *Placement) WireLength() int {
	total := 0
	for _, cfg := range p.Configs {
		if cfg == nil {
			continue
		}
		for j := range cfg.Targets {
			t := cfg.Targets[j]
			if !t.Valid || t.Output {
				continue
			}
			total += abs(int(t.DX)) + abs(int(t.DY))
		}
	}
	return total
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Decode resolves an output spike id to its registered reference.
func (p *Placement) Decode(id int32) (OutputRef, bool) {
	if id < 0 || int(id) >= len(p.outputs) {
		return OutputRef{}, false
	}
	return p.outputs[id], true
}

// NumOutputs returns the number of registered output sinks.
func (p *Placement) NumOutputs() int { return len(p.outputs) }

// Inject sends an external spike into pin index idx of the named input
// group, arriving delay ticks after the engine's next step.
func (p *Placement) Inject(eng sim.Engine, name string, idx, delay int) error {
	pins, ok := p.Inputs[name]
	if !ok {
		return fmt.Errorf("corelet: no input group %q", name)
	}
	if idx < 0 || idx >= len(pins) {
		return fmt.Errorf("corelet: input %q index %d out of range [0,%d)", name, idx, len(pins))
	}
	pin := pins[idx]
	eng.Inject(pin.X, pin.Y, pin.Axon, delay)
	return nil
}
