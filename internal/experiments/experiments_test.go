package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"truenorth/internal/energy"
	"truenorth/internal/netgen"
	"truenorth/internal/router"
)

// tinyChar returns a fast characterization config for tests.
func tinyChar() CharConfig {
	return CharConfig{
		Grid:    router.Mesh{W: 4, H: 4},
		Warmup:  20,
		Ticks:   40,
		Workers: 4,
		Seed:    1,
		Voltage: 0.75,
	}
}

func TestCharacterizeCovers88Points(t *testing.T) {
	pts, err := Characterize(tinyChar())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 88 {
		t.Fatalf("characterized %d points, want 88", len(pts))
	}
	for _, p := range pts {
		if p.Point.RateHz > 0 && p.MeasuredRateHz == 0 {
			t.Fatalf("point %+v silent", p.Point)
		}
		if p.GSOPSPerW < 0 || math.IsNaN(p.GSOPSPerW) {
			t.Fatalf("point %+v: bad GSOPS/W %f", p.Point, p.GSOPSPerW)
		}
	}
}

func TestCharacterizeRatesTrackTargets(t *testing.T) {
	pts, err := Characterize(tinyChar())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Point.RateHz == 0 {
			continue
		}
		if math.Abs(p.MeasuredRateHz-p.Point.RateHz)/p.Point.RateHz > 0.25 {
			t.Errorf("point %+v: measured %.1f Hz", p.Point, p.MeasuredRateHz)
		}
		if p.Point.Syn > 0 && math.Abs(p.MeasuredSyn-float64(p.Point.Syn))/float64(p.Point.Syn) > 0.2 {
			t.Errorf("point %+v: measured %.1f syn/spike", p.Point, p.MeasuredSyn)
		}
	}
}

func TestCharacterizeContourShape(t *testing.T) {
	// Fig. 5a: GSOPS increases with both firing rate and synapse count;
	// Fig. 5e: the top-right corner is the most efficient.
	pts, err := Characterize(tinyChar())
	if err != nil {
		t.Fatal(err)
	}
	at := func(rate float64, syn int) CharPoint {
		cp, ok := lookup(pts, rate, syn)
		if !ok {
			t.Fatalf("missing point %v/%d", rate, syn)
		}
		return cp
	}
	low := at(10, 51)
	high := at(200, 256)
	if high.GSOPS <= low.GSOPS {
		t.Fatalf("GSOPS not increasing: %.2f !> %.2f", high.GSOPS, low.GSOPS)
	}
	if high.GSOPSPerW <= low.GSOPSPerW {
		t.Fatalf("GSOPS/W not peaking at the top-right: %.1f !> %.1f", high.GSOPSPerW, low.GSOPSPerW)
	}
	if high.EnergyPerTickUJ <= low.EnergyPerTickUJ {
		t.Fatalf("energy per tick not increasing with activity")
	}
	// Fig. 5b: light load allows faster than real time, heavy load less so.
	if low.MaxTickKHz <= high.MaxTickKHz {
		t.Fatalf("max tick frequency not decreasing with load: %.1f !> %.1f", low.MaxTickKHz, high.MaxTickKHz)
	}
	if low.MaxTickKHz < 1 {
		t.Fatalf("light load below real time: %.2f kHz", low.MaxTickKHz)
	}
}

func TestScaleLoadToChip(t *testing.T) {
	l := energy.Load{SynEvents: 100, NeuronUpdates: 200, Spikes: 10, Hops: 50, Crossings: 4}
	s := ScaleLoadToChip(l, router.Mesh{W: 16, H: 16})
	if s.SynEvents != 1600 || s.NeuronUpdates != 3200 || s.Spikes != 160 {
		t.Fatalf("neuron scaling wrong: %+v", s)
	}
	if s.Hops != 50*16*4 {
		t.Fatalf("hop scaling wrong: %g, want %d", s.Hops, 50*16*4)
	}
}

func TestCharAndCompareTablesRender(t *testing.T) {
	pts, err := Characterize(tinyChar())
	if err != nil {
		t.Fatal(err)
	}
	tables := CharTables(pts)
	tables = append(tables, CompareTables(pts)...)
	tables = append(tables, VoltageSweep()...)
	tables = append(tables, Headline())
	if len(tables) != 4+4+2+1 {
		t.Fatalf("%d tables", len(tables))
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		if err := tb.Fprint(&buf); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	for _, want := range []string{"Fig 5a", "Fig 5b", "Fig 5c", "Fig 5d", "Fig 5e", "Fig 5f", "Fig 6a", "Fig 6b", "Fig 6c", "Fig 6d", "Headline"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered tables missing %q", want)
		}
	}
}

func TestCompareAllRatios(t *testing.T) {
	pts, err := Characterize(tinyChar())
	if err != nil {
		t.Fatal(err)
	}
	cmp := CompareAll(pts)
	for _, c := range cmp {
		if c.Point.RateHz < 10 || c.Point.Syn < 51 {
			continue // very light loads sit below the contour floor
		}
		if c.BGQ.Speedup < 3 || c.BGQ.Speedup > 300 {
			t.Errorf("%+v: BGQ speedup %.1f outside one-to-two orders", c.Point, c.BGQ.Speedup)
		}
		if c.X86.Speedup < 50 || c.X86.Speedup > 5000 {
			t.Errorf("%+v: x86 speedup %.0f outside two-to-three orders", c.Point, c.X86.Speedup)
		}
		if c.BGQ.EnergyImprovement < 1e4 || c.X86.EnergyImprovement < 1e4 {
			t.Errorf("%+v: energy improvements %.2g / %.2g below 10^4", c.Point, c.BGQ.EnergyImprovement, c.X86.EnergyImprovement)
		}
	}
}

func TestRunAppsAllFive(t *testing.T) {
	if testing.Short() {
		t.Skip("app sweep in -short mode")
	}
	cfg := DefaultAppRunConfig()
	cfg.Frames = 3
	results, err := RunApps(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("%d app results, want 5", len(results))
	}
	for _, r := range results {
		if r.Neurons == 0 || r.Cores == 0 {
			t.Errorf("%s: empty network", r.Name)
		}
		if r.MeasuredRateHz <= 0 {
			t.Errorf("%s: silent network", r.Name)
		}
		// Fig. 7: speedups of 1-2 orders, energy improvements near 10^5.
		if r.BGQ.Speedup < 3 {
			t.Errorf("%s: BGQ speedup %.1f", r.Name, r.BGQ.Speedup)
		}
		if r.X86.Speedup < 30 {
			t.Errorf("%s: x86 speedup %.1f", r.Name, r.X86.Speedup)
		}
		if r.BGQ.EnergyImprovement < 1e4 || r.X86.EnergyImprovement < 1e4 {
			t.Errorf("%s: energy improvements %.2g / %.2g", r.Name, r.BGQ.EnergyImprovement, r.X86.EnergyImprovement)
		}
	}
	var buf bytes.Buffer
	for _, tb := range AppTables(results) {
		if err := tb.Fprint(&buf); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(buf.String(), "Fig 7b") {
		t.Fatal("app tables missing Fig 7b")
	}
}

func TestBGQScalingShape(t *testing.T) {
	rows := BGQScaling()
	if len(rows) != 6*4+4 {
		t.Fatalf("%d scaling rows", len(rows))
	}
	var best, worst ScalingRow
	best.SecPerTick = math.Inf(1)
	for _, r := range rows {
		if r.System != "BG/Q" {
			continue
		}
		if r.SecPerTick < best.SecPerTick {
			best = r
		}
		if r.SecPerTick > worst.SecPerTick {
			worst = r
		}
	}
	if best.Hosts != 32 || best.Threads != 64 {
		t.Fatalf("best point %+v, want 32 hosts x 64 threads", best)
	}
	slowdown := best.SecPerTick / 1e-3
	if slowdown < 6 || slowdown > 25 {
		t.Fatalf("best point %.1fx slower than real time, want ≈12x", slowdown)
	}
	if worst.SecPerTick/best.SecPerTick < 4 {
		t.Fatalf("scaling range too flat: %.3f..%.3f s/tick", best.SecPerTick, worst.SecPerTick)
	}
	tb := ScalingTable(rows)
	var buf bytes.Buffer
	if err := tb.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureGoScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock scaling in -short mode")
	}
	grid := router.Mesh{W: 8, H: 8}
	rows, err := MeasureGoScaling(grid, 40, []int{1, 2, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Speedup != 1 {
		t.Fatalf("baseline speedup %.2f", rows[0].Speedup)
	}
	var buf bytes.Buffer
	if err := MeasuredScalingTable(rows, grid).Fprint(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFutureSystems(t *testing.T) {
	rows := FutureSystems()
	if len(rows) != 3 {
		t.Fatalf("%d future rows", len(rows))
	}
	for _, r := range rows {
		if r.ProjectedW > r.Spec.BudgetW {
			t.Errorf("%s: projected %.0f W exceeds budget %.0f W", r.Spec.Name, r.ProjectedW, r.Spec.BudgetW)
		}
	}
	// The computed energy gains must reproduce the claimed orders.
	if g := rows[1].ComputedGain; g < 3000 || g > 13000 {
		t.Fatalf("rat-scale computed gain %.0f, want ≈6400", g)
	}
	if g := rows[2].ComputedGain; g < 60000 || g > 260000 {
		t.Fatalf("1%%-human computed gain %.0f, want ≈128000", g)
	}
	var buf bytes.Buffer
	if err := FutureTable(rows).Fprint(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestRegressionSummaryTable(t *testing.T) {
	load := energy.TrueNorth().SyntheticLoad(20, 64)
	tb := RegressionSummary(load)
	var buf bytes.Buffer
	if err := tb.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "27.7 hours") {
		t.Fatal("regression table missing TrueNorth row")
	}
}

func TestNeovisionLoadMatchesPaper(t *testing.T) {
	l := NeovisionLoad()
	if l.NeuronUpdates != 660009 {
		t.Fatalf("neurons = %g", l.NeuronUpdates)
	}
	rate := l.Spikes / l.NeuronUpdates * 1000
	if math.Abs(rate-12.8) > 0.01 {
		t.Fatalf("rate = %.2f Hz, want 12.8", rate)
	}
}

func TestFaultSweepGracefulDegradation(t *testing.T) {
	cfg := DefaultFaultConfig()
	cfg.Grid = router.Mesh{W: 6, H: 6}
	cfg.Fractions = []float64{0, 0.05, 0.20}
	points, err := FaultSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	healthy := points[0]
	if healthy.Delivered != 1 || healthy.DetourFrac != 0 {
		t.Fatalf("healthy baseline impaired: %+v", healthy)
	}
	if healthy.ResidualRate < 40 {
		t.Fatalf("healthy rate %.1f Hz, want ≈50", healthy.ResidualRate)
	}
	mid, heavy := points[1], points[2]
	// Graceful, not catastrophic: delivery falls roughly with the dead
	// fraction (packets addressed to dead cores are lost; packets between
	// live cores still arrive), activity survives, detours appear.
	if mid.Delivered < 0.85 || heavy.Delivered < 0.6 {
		t.Fatalf("delivery collapsed: %.2f at 5%%, %.2f at 20%%", mid.Delivered, heavy.Delivered)
	}
	if heavy.Delivered >= mid.Delivered || mid.Delivered >= healthy.Delivered {
		t.Fatalf("delivery not monotone in faults: %.3f %.3f %.3f", healthy.Delivered, mid.Delivered, heavy.Delivered)
	}
	if heavy.DetourFrac == 0 {
		t.Fatal("no detours at 20% faults; rerouting untested")
	}
	if heavy.MeanHops <= healthy.MeanHops {
		t.Fatalf("detours should lengthen paths: %.2f vs %.2f", heavy.MeanHops, healthy.MeanHops)
	}
	if heavy.ResidualRate < 30 {
		t.Fatalf("surviving activity %.1f Hz collapsed", heavy.ResidualRate)
	}
	var buf bytes.Buffer
	if err := FaultTable(points).Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fault tolerance") {
		t.Fatal("table missing title")
	}
}

func TestTopologySweepLocalityReducesTraffic(t *testing.T) {
	cfg := DefaultTopologyConfig()
	cfg.Localities = []float64{0, 0.9}
	points, err := TopologySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	uniform, clustered := points[0], points[1]
	if clustered.HopsPerSpike >= uniform.HopsPerSpike {
		t.Fatalf("clustered hops %.2f not below uniform %.2f", clustered.HopsPerSpike, uniform.HopsPerSpike)
	}
	if clustered.CrossPerSpike >= uniform.CrossPerSpike {
		t.Fatalf("clustered crossings %.3f not below uniform %.3f", clustered.CrossPerSpike, uniform.CrossPerSpike)
	}
	if clustered.CommEnergyFrac >= uniform.CommEnergyFrac {
		t.Fatalf("clustered comm energy %.3f not below uniform %.3f", clustered.CommEnergyFrac, uniform.CommEnergyFrac)
	}
	if uniform.HopsPerSpike < 4 {
		t.Fatalf("uniform hops/spike %.2f implausibly low for a 12-wide board", uniform.HopsPerSpike)
	}
	var buf bytes.Buffer
	if err := TopologyTable(points).Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Communication topology") {
		t.Fatal("table missing title")
	}
}

func TestBreakdownTable(t *testing.T) {
	tb := BreakdownTable()
	if len(tb.Rows) != 5 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	var buf bytes.Buffer
	if err := tb.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "flagship") {
		t.Fatal("breakdown table missing the flagship row")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow("xxx", "1")
	var buf bytes.Buffer
	if err := tb.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "## T\n") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "xxx  1") {
		t.Fatalf("bad row alignment: %q", out)
	}
}

func TestSweepMatchesNetgen(t *testing.T) {
	if len(netgen.SweepPoints()) != 88 {
		t.Fatal("sweep definition drifted")
	}
}
