package experiments

import (
	"fmt"
	"time"

	"truenorth/internal/compass"
	"truenorth/internal/energy"
	"truenorth/internal/netgen"
	"truenorth/internal/router"
	"truenorth/internal/sim"
	"truenorth/internal/vnperf"
)

// NeovisionLoad is the per-tick activity of the single-chip Neovision
// network the paper strong-scales in Fig. 8: 660,009 neurons at a 12.8 Hz
// mean rate with ~128 active synapses per spike.
func NeovisionLoad() energy.Load {
	const neurons = 660009.0
	spikes := neurons * 12.8 / 1000
	return energy.Load{
		NeuronUpdates: neurons,
		Spikes:        spikes,
		SynEvents:     spikes * 128,
		Hops:          spikes * 20,
	}
}

// ScalingRow is one operating point of Fig. 8.
type ScalingRow struct {
	System         string
	Hosts, Threads int
	// SecPerTick is the modeled run time per simulation tick.
	SecPerTick float64
	// PowerW is the modeled system power.
	PowerW float64
	// JoulePerSpike is the energy per delivered spike (the paper's
	// "Power Watts/spike" axis integrates to this over a tick).
	JoulePerSpike float64
}

// BGQScaling reproduces Fig. 8: Neovision run time and power on Blue
// Gene/Q over 1-32 hosts × 8-64 threads, plus the x86 reference points
// (1 host, 4-12 threads).
func BGQScaling() []ScalingRow {
	l := NeovisionLoad()
	var rows []ScalingRow
	bgq := vnperf.BGQ()
	for _, hosts := range []int{1, 2, 4, 8, 16, 32} {
		for _, threads := range []int{8, 16, 32, 64} {
			cfg := vnperf.Config{Hosts: hosts, Threads: threads}
			t := bgq.TickSeconds(l, cfg)
			p := bgq.PowerW(cfg)
			rows = append(rows, ScalingRow{
				System: "BG/Q", Hosts: hosts, Threads: threads,
				SecPerTick: t, PowerW: p, JoulePerSpike: t * p / l.Spikes,
			})
		}
	}
	x86 := vnperf.X86()
	for _, threads := range []int{4, 6, 8, 12} {
		cfg := vnperf.Config{Hosts: 1, Threads: threads}
		t := x86.TickSeconds(l, cfg)
		p := x86.PowerW(cfg)
		rows = append(rows, ScalingRow{
			System: "x86", Hosts: 1, Threads: threads,
			SecPerTick: t, PowerW: p, JoulePerSpike: t * p / l.Spikes,
		})
	}
	return rows
}

// ScalingTable renders Fig. 8.
func ScalingTable(rows []ScalingRow) *Table {
	t := &Table{
		Title:  "Fig 8: single-chip Neovision run time and power vs hosts and threads (paper: best point 12x slower than real time)",
		Header: []string{"system", "hosts", "threads", "s/tick", "x real time", "power W", "J/spike"},
	}
	for _, r := range rows {
		t.AddRow(r.System, fmt.Sprintf("%d", r.Hosts), fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%.4f", r.SecPerTick), f1(r.SecPerTick/1e-3), f0(r.PowerW), g2(r.JoulePerSpike))
	}
	return t
}

// MeasuredScalingRow is one measured point of the Go Compass simulator's
// strong scaling on this host — the honest hardware-in-hand counterpart of
// Fig. 8's shape (see DESIGN.md §2).
type MeasuredScalingRow struct {
	Workers    int
	SecPerTick float64
	Speedup    float64 // vs 1 worker
}

// MeasureGoScaling runs a recurrent network (Neovision-like activity) on
// the Go Compass engine with increasing worker counts, measuring wall
// clock per tick.
func MeasureGoScaling(grid router.Mesh, ticks int, workerSweep []int, seed int64) ([]MeasuredScalingRow, error) {
	configs, err := netgen.Build(netgen.Params{Grid: grid, RateHz: 12.8, SynPerNeuron: 128, Seed: seed})
	if err != nil {
		return nil, err
	}
	var rows []MeasuredScalingRow
	base := 0.0
	for _, w := range workerSweep {
		eng, err := compass.New(grid, configs, sim.WithWorkers(w))
		if err != nil {
			return nil, err
		}
		eng.Run(ticks / 4) // warm up
		//lint:ignore tnlint/detrand wall-clock here is the measurement itself, not simulation state
		start := time.Now()
		eng.Run(ticks)
		per := time.Since(start).Seconds() / float64(ticks)
		if base == 0 {
			base = per
		}
		rows = append(rows, MeasuredScalingRow{Workers: w, SecPerTick: per, Speedup: base / per})
	}
	return rows, nil
}

// MeasuredScalingTable renders the measured Go strong scaling.
func MeasuredScalingTable(rows []MeasuredScalingRow, grid router.Mesh) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Fig 8 companion: measured Go Compass strong scaling on this host (%dx%d cores, 12.8Hz x 128 syn)", grid.W, grid.H),
		Header: []string{"workers", "s/tick", "speedup vs 1 worker"},
	}
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Workers), fmt.Sprintf("%.5f", r.SecPerTick), f2(r.Speedup))
	}
	return t
}
