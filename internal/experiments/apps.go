package experiments

import (
	"fmt"
	"math"
	"sort"

	"truenorth/internal/apps/haar"
	"truenorth/internal/apps/lbp"
	"truenorth/internal/apps/neovision"
	"truenorth/internal/apps/saccade"
	"truenorth/internal/apps/saliency"
	"truenorth/internal/corelet"
	"truenorth/internal/energy"
	"truenorth/internal/modelcheck"
	"truenorth/internal/router"
	"truenorth/internal/sim"
	"truenorth/internal/vision"
	"truenorth/internal/vnperf"
)

// paperApp records the network sizes and firing rates the paper reports
// for each application (Section IV-B).
type paperApp struct {
	name    string
	neurons int
	cores   int
	rateHz  float64
}

// paperApps lists the Section IV-B table.
var paperApps = []paperApp{
	{"Neovision", 660009, 4018, 12.8},
	{"Haar", 617567, 2605, 135},
	{"LBP", 813978, 3836, 64},
	{"Saccade", 612458, 2571, 5},
	{"Saliency", 889461, 3926, 86},
}

// AppRunConfig controls the application benchmark runs (Fig. 7).
type AppRunConfig struct {
	// ImgW, ImgH is the aperture our builds process (the paper used
	// 100×200 for the feature apps and 240×400 for Neovision; smaller
	// apertures measure the same per-neuron activity faster).
	ImgW, ImgH int
	// Frames is the number of video frames streamed per app.
	Frames int
	// Objects is the synthetic scene population.
	Objects int
	// Engine names the registered engine expression to run on ("" =
	// compass, the parallel simulator).
	Engine string
	// Workers is the parallel worker count (0 = GOMAXPROCS; ignored by the
	// single-threaded chip engine).
	Workers int
	// Seed drives the scene.
	Seed int64
	// Verify statically verifies each placed application model
	// (modelcheck), with the placement's input pins declared as external
	// injection points, and aborts on any finding.
	Verify bool
}

// DefaultAppRunConfig returns a configuration that runs all five apps in
// seconds.
func DefaultAppRunConfig() AppRunConfig {
	return AppRunConfig{ImgW: 64, ImgH: 32, Frames: 6, Objects: 3, Seed: 7}
}

// AppResult is one application's measurement and comparison row.
type AppResult struct {
	// Name labels the app.
	Name string
	// Cores and Neurons describe our build at cfg's aperture.
	Cores, Neurons int
	// PaperNeurons, PaperCores, PaperRateHz echo the Section IV-B table.
	PaperNeurons, PaperCores int
	PaperRateHz              float64
	// MeasuredRateHz is our network's mean wired-neuron firing rate.
	MeasuredRateHz float64
	// Load is the per-tick activity scaled to the paper's network size.
	Load energy.Load
	// BGQHosts is the weak-scaled BG/Q card count (≈64 cores per card,
	// capped at 32 — "≈2 neurosynaptic cores per thread, 32 threads per
	// compute card").
	BGQHosts int
	// BGQ and X86 are the Fig. 7 comparison ratios.
	BGQ, X86 vnperf.Comparison
}

// buildApp constructs one of the five applications at the given aperture
// and returns its net.
func buildApp(name string, w, h int) (*corelet.Net, error) {
	switch name {
	case "Haar":
		a, err := haar.Build(haar.Params{ImgW: w, ImgH: h})
		if err != nil {
			return nil, err
		}
		return a.Net, nil
	case "LBP":
		a, err := lbp.Build(lbp.Params{ImgW: w, ImgH: h})
		if err != nil {
			return nil, err
		}
		return a.Net, nil
	case "Saliency":
		a, err := saliency.Build(saliency.Params{ImgW: w, ImgH: h})
		if err != nil {
			return nil, err
		}
		return a.Net, nil
	case "Saccade":
		a, err := saccade.Build(saccade.Params{ImgW: w, ImgH: h})
		if err != nil {
			return nil, err
		}
		return a.Net, nil
	case "Neovision":
		a, err := neovision.Build(neovision.Params{ImgW: w, ImgH: h})
		if err != nil {
			return nil, err
		}
		return a.Net, nil
	default:
		return nil, fmt.Errorf("experiments: unknown app %q", name)
	}
}

// RunApps builds, places, and streams synthetic video through all five
// applications, measuring activity and computing the Fig. 7 comparisons at
// paper-scale loads.
func RunApps(cfg AppRunConfig) ([]AppResult, error) {
	tn := energy.TrueNorth()
	bgq, x86 := vnperf.BGQ(), vnperf.X86()
	var results []AppResult
	for _, pa := range paperApps {
		net, err := buildApp(pa.name, cfg.ImgW, cfg.ImgH)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pa.name, err)
		}
		side := 1
		for side*side < net.NumCores() {
			side++
		}
		p, err := corelet.Place(net, router.Mesh{W: side, H: side})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pa.name, err)
		}
		if cfg.Verify {
			opts := modelcheck.Options{ExternalInputs: placementInputs(p)}
			if err := modelcheck.Verify(p.Mesh, p.Configs, opts); err != nil {
				return nil, fmt.Errorf("%s: %w", pa.name, err)
			}
		}
		eng, err := sim.NewEngine(engineOrDefault(cfg.Engine), p.Mesh, p.Configs, sim.WithWorkers(cfg.Workers))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pa.name, err)
		}
		scene := vision.NewScene(cfg.ImgW, cfg.ImgH, cfg.Objects, cfg.Seed)
		tr := vision.DefaultTransducer()
		run, err := vision.RunVideo(eng, p, "pixels", scene, tr, cfg.Frames)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pa.name, err)
		}
		cnt := eng.Counters()
		noc := eng.NoC()
		measured := energy.LoadFrom(cnt, noc, uint64(run.Ticks))

		ourNeurons := float64(net.NumNeurons())
		ourCores := float64(net.NumCores())
		r := AppResult{
			Name:         pa.name,
			Cores:        net.NumCores(),
			Neurons:      net.NumNeurons(),
			PaperNeurons: pa.neurons,
			PaperCores:   pa.cores,
			PaperRateHz:  pa.rateHz,
		}
		r.MeasuredRateHz = measured.Spikes / ourNeurons * 1000

		// Scale the measured per-neuron activity to the paper's network
		// size: same rate and fan structure on proportionally more cores;
		// hop distance grows with the core-grid edge.
		nf := float64(pa.neurons) / ourNeurons
		cf := float64(pa.cores) / ourCores
		hopsPerSpike := 0.0
		if measured.Spikes > 0 {
			hopsPerSpike = measured.Hops / measured.Spikes
		}
		r.Load = energy.Load{
			SynEvents: measured.SynEvents * nf,
			// The reference von-Neumann simulator (and the time-multiplexed
			// neuron circuit) evaluates every neuron of the network each
			// tick; our event-driven kernel's NeuronUpdates counter skips
			// provably quiescent neurons, so the comparison load takes the
			// dense count instead of the measured one.
			NeuronUpdates: float64(pa.neurons),
			Spikes:        measured.Spikes * nf,
			Hops:          measured.Spikes * nf * hopsPerSpike * math.Sqrt(cf),
		}

		r.BGQHosts = (pa.cores + 63) / 64
		if r.BGQHosts > bgq.MaxHosts {
			r.BGQHosts = bgq.MaxHosts
		}
		r.BGQ = vnperf.Compare(tn, r.Load, 1000, 0.75, bgq, vnperf.Config{Hosts: r.BGQHosts, Threads: 32})
		r.X86 = vnperf.Compare(tn, r.Load, 1000, 0.75, x86, vnperf.Config{Hosts: 1, Threads: 24})
		results = append(results, r)
	}
	return results, nil
}

// placementInputs converts a placement's input pins into the analyzer's
// external-injection declarations. Group iteration is sorted by name so
// the result (and any diagnostics downstream) is deterministic.
func placementInputs(p *corelet.Placement) []modelcheck.AxonRef {
	names := make([]string, 0, len(p.Inputs))
	//lint:ignore tnlint/maporder key collection feeding the sort below; order is erased
	for name := range p.Inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	var refs []modelcheck.AxonRef
	for _, name := range names {
		for _, pin := range p.Inputs[name] {
			refs = append(refs, modelcheck.AxonRef{X: pin.X, Y: pin.Y, Axon: pin.Axon})
		}
	}
	return refs
}

// AppTables renders the Section IV-B application table and the Fig. 7
// comparison data.
func AppTables(results []AppResult) []*Table {
	sizes := &Table{
		Title:  "Section IV-B applications: our build (at reduced aperture) vs paper (full aperture)",
		Header: []string{"app", "our neurons", "our cores", "our rate Hz", "paper neurons", "paper cores", "paper rate Hz"},
	}
	fig7a := &Table{
		Title:  "Fig 7a: execution speedup vs x power improvement (paper-scale loads)",
		Header: []string{"app", "system", "relative time (speedup)", "relative power"},
	}
	fig7b := &Table{
		Title:  "Fig 7b: x energy improvement of TrueNorth vs Compass",
		Header: []string{"app", "vs BG/Q (weak-scaled hosts)", "vs x86"},
	}
	for _, r := range results {
		sizes.AddRow(r.Name,
			fmt.Sprintf("%d", r.Neurons), fmt.Sprintf("%d", r.Cores), f1(r.MeasuredRateHz),
			fmt.Sprintf("%d", r.PaperNeurons), fmt.Sprintf("%d", r.PaperCores), f1(r.PaperRateHz))
		fig7a.AddRow(r.Name, fmt.Sprintf("BG/Q x%d", r.BGQHosts), f1(r.BGQ.Speedup), f1(r.BGQ.PowerImprovement))
		fig7a.AddRow(r.Name, "x86", f1(r.X86.Speedup), f1(r.X86.PowerImprovement))
		fig7b.AddRow(r.Name, g2(r.BGQ.EnergyImprovement), g2(r.X86.EnergyImprovement))
	}
	return []*Table{sizes, fig7a, fig7b}
}
