// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections VI and VII). Each driver returns structured rows
// and can print them as an aligned text table; the cmd/ tools are thin
// wrappers. DESIGN.md §4 maps each driver to its figure.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable result table.
type Table struct {
	// Title names the figure or table being reproduced.
	Title string
	// Header labels the columns.
	Header []string
	// Rows hold formatted cells.
	Rows [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint writes the table as aligned text.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "## %s\n", t.Title); err != nil {
		return err
	}
	line := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.Header); err != nil {
		return err
	}
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := line(row); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// f1, f2, f3 format floats at fixed precision; g2 is compact scientific.
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func g2(v float64) string { return fmt.Sprintf("%.2g", v) }
