package experiments

import (
	"fmt"

	"truenorth/internal/core"
	"truenorth/internal/energy"
	"truenorth/internal/modelcheck"
	"truenorth/internal/netgen"
	"truenorth/internal/router"
	"truenorth/internal/sim"
	"truenorth/internal/vnperf"
)

// engineOrDefault maps the zero value of an Engine config field to the
// parallel Compass engine, the historical default of every experiment.
func engineOrDefault(name string) string {
	if name == "" {
		return "compass"
	}
	return name
}

// CharConfig controls the 88-network characterization runs (Figs. 5 & 6).
type CharConfig struct {
	// Grid is the simulated core mesh. The full chip is 64×64; smaller
	// grids run faster and are scaled to full-chip loads (per-neuron
	// activity is grid-independent by construction; hop counts scale with
	// the grid edge).
	Grid router.Mesh
	// Warmup and Ticks are the settling and measurement windows.
	Warmup, Ticks int
	// Workers is the Compass worker count (0 = GOMAXPROCS).
	Workers int
	// Engine names the registered engine expression to run on ("" =
	// compass, the parallel simulator; the characterization suite is
	// engine-agnostic by the one-to-one equivalence property).
	Engine string
	// Seed drives network generation.
	Seed int64
	// Voltage is the supply point for Figs. 5a/5b/5d/5e (paper: 0.75 V).
	Voltage float64
	// Verify statically verifies every generated network (modelcheck) and
	// aborts the characterization on any finding — the same gate a
	// simulation service applies to uploaded models.
	Verify bool
}

// DefaultCharConfig returns a configuration that sweeps all 88 networks in
// seconds on a laptop-class machine.
func DefaultCharConfig() CharConfig {
	return CharConfig{
		Grid:    router.Mesh{W: 16, H: 16},
		Warmup:  40,
		Ticks:   80,
		Seed:    1,
		Voltage: 0.75,
	}
}

// CharPoint is one measured cell of the characterization space.
type CharPoint struct {
	// Point is the sweep coordinate (target rate and synapses/neuron).
	Point netgen.Point
	// MeasuredRateHz and MeasuredSyn are the realized values.
	MeasuredRateHz, MeasuredSyn float64
	// Load is the per-tick activity scaled to a full 4,096-core chip.
	Load energy.Load
	// GSOPS is computation per time at real-time operation (Fig. 5a).
	GSOPS float64
	// MaxTickKHz is the maximum tick frequency (Fig. 5b).
	MaxTickKHz float64
	// EnergyPerTickUJ is total energy per tick in µJ (Fig. 5d).
	EnergyPerTickUJ float64
	// GSOPSPerW is computation per energy (Fig. 5e).
	GSOPSPerW float64
}

// Characterize runs the 88 probabilistically generated recurrent networks
// and measures the Fig. 5 quantities at cfg.Voltage and real-time (1 kHz)
// operation.
func Characterize(cfg CharConfig) ([]CharPoint, error) {
	model := energy.TrueNorth()
	if err := model.CheckVoltage(cfg.Voltage); err != nil {
		return nil, err
	}
	pts := netgen.SweepPoints()
	out := make([]CharPoint, len(pts))
	for i := range pts {
		configs, pt, err := netgen.BuildSweep(cfg.Grid, i, cfg.Seed)
		if err != nil {
			return nil, err
		}
		if cfg.Verify {
			// The characterization networks are closed recurrent systems
			// (every axon has exactly one internal driver), so the full
			// analysis applies with no assumed external inputs.
			if err := modelcheck.Verify(cfg.Grid, configs, modelcheck.Options{}); err != nil {
				return nil, fmt.Errorf("sweep network %d (rate %g Hz, %d syn): %w", i, pt.RateHz, pt.Syn, err)
			}
		}
		eng, err := sim.NewEngine(engineOrDefault(cfg.Engine), cfg.Grid, configs, sim.WithWorkers(cfg.Workers))
		if err != nil {
			return nil, err
		}
		eng.Run(cfg.Warmup)
		l := energy.MeasureLoad(eng, cfg.Ticks)
		scaled := ScaleLoadToChip(l, cfg.Grid)
		simNeurons := float64(cfg.Grid.W * cfg.Grid.H * core.NeuronsPerCore)
		cp := CharPoint{
			Point:          pt,
			MeasuredRateHz: l.Spikes / simNeurons * 1000,
			Load:           scaled,
			GSOPS:          scaled.SOPS(1000) / 1e9,
			MaxTickKHz:     model.MaxTickHz(scaled, cfg.Voltage) / 1000,
			GSOPSPerW:      model.GSOPSPerWatt(scaled, 1000, cfg.Voltage),
		}
		cp.EnergyPerTickUJ = model.EnergyPerTickJ(scaled, 1000, cfg.Voltage) * 1e6
		if l.Spikes > 0 {
			cp.MeasuredSyn = l.SynEvents / l.Spikes
		}
		out[i] = cp
	}
	return out, nil
}

// ScaleLoadToChip converts a load measured on a reduced grid to the
// equivalent full-chip (64×64) load: per-neuron activity is preserved and
// per-spike hop distance grows with the grid edge (uniform-target routing:
// mean hops ∝ edge length).
func ScaleLoadToChip(l energy.Load, grid router.Mesh) energy.Load {
	nf := float64(64*64) / float64(grid.W*grid.H)
	hf := 64.0 / float64(grid.W)
	return energy.Load{
		SynEvents:     l.SynEvents * nf,
		NeuronUpdates: l.NeuronUpdates * nf,
		Spikes:        l.Spikes * nf,
		Hops:          l.Hops * nf * hf,
		Crossings:     l.Crossings * nf,
	}
}

// CharTables renders the Fig. 5a/5b/5d/5e contour data as rate×synapse
// grids (one table per figure, rows = rates, columns = synapse counts).
func CharTables(points []CharPoint) []*Table {
	rates, syns := axes(points)
	mk := func(title, unit string, val func(CharPoint) float64) *Table {
		t := &Table{Title: title, Header: append([]string{"rate\\syn"}, intsToStrings(syns)...)}
		for _, r := range rates {
			row := []string{f0(r)}
			for _, s := range syns {
				cp, ok := lookup(points, r, s)
				if !ok {
					row = append(row, "-")
					continue
				}
				row = append(row, fmt.Sprintf("%.3g", val(cp)))
			}
			t.AddRow(row...)
		}
		t.Title += " [" + unit + "]"
		return t
	}
	return []*Table{
		mk("Fig 5a: computation per time, rate x synapses @0.75V", "GSOPS", func(c CharPoint) float64 { return c.GSOPS }),
		mk("Fig 5b: max tick frequency, rate x synapses @0.75V", "kHz", func(c CharPoint) float64 { return c.MaxTickKHz }),
		mk("Fig 5d: total energy per tick, rate x synapses @0.75V", "uJ", func(c CharPoint) float64 { return c.EnergyPerTickUJ }),
		mk("Fig 5e: computation per energy, rate x synapses @0.75V", "GSOPS/W", func(c CharPoint) float64 { return c.GSOPSPerW }),
	}
}

// VoltageSweep renders Figs. 5c and 5f: voltage × synapses at a 50 Hz mean
// firing rate, from the analytic load model.
func VoltageSweep() []*Table {
	model := energy.TrueNorth()
	volts := []float64{0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00, 1.05}
	syns := []int{0, 26, 51, 77, 102, 128, 154, 179, 205, 230, 256}
	freq := &Table{Title: "Fig 5c: max tick frequency, voltage x synapses @50Hz [kHz]",
		Header: append([]string{"V\\syn"}, intsToStrings(syns)...)}
	eff := &Table{Title: "Fig 5f: computation per energy, voltage x synapses @50Hz [GSOPS/W]",
		Header: append([]string{"V\\syn"}, intsToStrings(syns)...)}
	for _, v := range volts {
		rowF := []string{f2(v)}
		rowE := []string{f2(v)}
		for _, s := range syns {
			l := model.SyntheticLoad(50, float64(s))
			rowF = append(rowF, fmt.Sprintf("%.3g", model.MaxTickHz(l, v)/1000))
			rowE = append(rowE, fmt.Sprintf("%.3g", model.GSOPSPerWatt(l, 1000, v)))
		}
		freq.AddRow(rowF...)
		eff.AddRow(rowE...)
	}
	return []*Table{freq, eff}
}

// ComparePoint is one cell of the Fig. 6 comparison grids.
type ComparePoint struct {
	Point netgen.Point
	// BGQ and X86 are TrueNorth-vs-Compass ratios at this operating point.
	BGQ, X86 vnperf.Comparison
}

// CompareAll computes the Fig. 6 grids from characterization results:
// TrueNorth (real time, 0.75 V) versus Compass on 32 BG/Q compute cards ×
// 64 threads and on the dual-socket x86 × 24 threads.
func CompareAll(points []CharPoint) []ComparePoint {
	tn := energy.TrueNorth()
	bgq, x86 := vnperf.BGQ(), vnperf.X86()
	bgqCfg := vnperf.Config{Hosts: 32, Threads: 64}
	x86Cfg := vnperf.Config{Hosts: 1, Threads: 24}
	out := make([]ComparePoint, len(points))
	for i, cp := range points {
		out[i] = ComparePoint{
			Point: cp.Point,
			BGQ:   vnperf.Compare(tn, cp.Load, 1000, 0.75, bgq, bgqCfg),
			X86:   vnperf.Compare(tn, cp.Load, 1000, 0.75, x86, x86Cfg),
		}
	}
	return out
}

// CompareTables renders Fig. 6(a-d).
func CompareTables(points []CharPoint) []*Table {
	cmp := CompareAll(points)
	rates, syns := axes(points)
	mk := func(title string, val func(ComparePoint) float64) *Table {
		t := &Table{Title: title, Header: append([]string{"rate\\syn"}, intsToStrings(syns)...)}
		for _, r := range rates {
			row := []string{f0(r)}
			for _, s := range syns {
				found := false
				for _, c := range cmp {
					if c.Point.RateHz == r && c.Point.Syn == s {
						row = append(row, fmt.Sprintf("%.3g", val(c)))
						found = true
						break
					}
				}
				if !found {
					row = append(row, "-")
				}
			}
			t.AddRow(row...)
		}
		return t
	}
	return []*Table{
		mk("Fig 6a: x speedup vs Compass on 32-card BG/Q", func(c ComparePoint) float64 { return c.BGQ.Speedup }),
		mk("Fig 6b: x energy improvement vs Compass on 32-card BG/Q", func(c ComparePoint) float64 { return c.BGQ.EnergyImprovement }),
		mk("Fig 6c: x speedup vs Compass on dual-socket x86", func(c ComparePoint) float64 { return c.X86.Speedup }),
		mk("Fig 6d: x energy improvement vs Compass on dual-socket x86", func(c ComparePoint) float64 { return c.X86.EnergyImprovement }),
	}
}

// Headline reproduces the paper's flagship operating points (Sections I
// and VI-B).
func Headline() *Table {
	model := energy.TrueNorth()
	t := &Table{
		Title:  "Headline operating points (paper: 46 GSOPS/W @65mW real-time; 81 @5x; >400 @200Hz/256syn; ~10pJ/synop)",
		Header: []string{"operating point", "tick rate", "power mW", "GSOPS", "GSOPS/W", "active pJ/synop", "mW/cm^2"},
	}
	add := func(name string, rate, syn, tickHz float64) {
		l := model.SyntheticLoad(rate, syn)
		t.AddRow(name,
			fmt.Sprintf("%.0f Hz", tickHz),
			f1(model.PowerW(l, tickHz, 0.75)*1e3),
			f1(l.SOPS(tickHz)/1e9),
			f1(model.GSOPSPerWatt(l, tickHz, 0.75)),
			f1(model.ActivePJPerSynEvent(l, 0.75)),
			f1(model.PowerDensityWPerCM2(l, tickHz, 0.75)*1e3),
		)
	}
	add("20Hz x 128 syn, real time", 20, 128, 1000)
	add("20Hz x 128 syn, 5x real time", 20, 128, 5000)
	add("200Hz x 256 syn, real time", 200, 256, 1000)
	add("64Hz x 128 syn (app regime)", 64, 128, 1000)
	return t
}

// BreakdownTable decomposes chip power into components across operating
// points — the silicon-design view behind the paper's efficiency
// arguments (co-located memory, multiplexed neurons, event-driven cores).
func BreakdownTable() *Table {
	model := energy.TrueNorth()
	t := &Table{
		Title:  "Power breakdown by component at 0.75V, real time [mW]",
		Header: []string{"operating point", "passive", "neuron scan", "synaptic events", "mesh", "total"},
	}
	for _, pt := range []struct {
		name      string
		rate, syn float64
	}{
		{"idle (0 Hz)", 0, 0},
		{"2 Hz x 26 syn", 2, 26},
		{"20 Hz x 128 syn (flagship)", 20, 128},
		{"64 Hz x 128 syn (apps)", 64, 128},
		{"200 Hz x 256 syn (dense)", 200, 256},
	} {
		l := model.SyntheticLoad(pt.rate, pt.syn)
		b := model.PowerBreakdown(l, 1000, 0.75)
		t.AddRow(pt.name, f1(b.PassiveW*1e3), f1(b.NeuronW*1e3), f1(b.SynapseW*1e3),
			f1((b.HopW+b.CrossW)*1e3), f1(b.TotalW()*1e3))
	}
	return t
}

// axes extracts sorted unique rates and synapse counts from points.
func axes(points []CharPoint) ([]float64, []int) {
	var rates []float64
	var syns []int
	seenR := map[float64]bool{}
	seenS := map[int]bool{}
	for _, p := range points {
		if !seenR[p.Point.RateHz] {
			seenR[p.Point.RateHz] = true
			rates = append(rates, p.Point.RateHz)
		}
		if !seenS[p.Point.Syn] {
			seenS[p.Point.Syn] = true
			syns = append(syns, p.Point.Syn)
		}
	}
	return rates, syns
}

func lookup(points []CharPoint, rate float64, syn int) (CharPoint, bool) {
	for _, p := range points {
		if p.Point.RateHz == rate && p.Point.Syn == syn {
			return p, true
		}
	}
	return CharPoint{}, false
}

func intsToStrings(vs []int) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = fmt.Sprintf("%d", v)
	}
	return out
}
