package experiments

import (
	"truenorth/internal/energy"
	"truenorth/internal/multichip"
	"truenorth/internal/netgen"
)

// TopologyConfig controls the communication-locality study: one of
// Compass's stated purposes is "benchmarking inter-core communication on
// different neural network topologies" (Section III-B), and the
// architecture's premise is that cortex-like clustered connectivity keeps
// traffic local ("emulating the clustered hierarchical connectivity of
// the cortex").
type TopologyConfig struct {
	// Board is the simulated multi-chip substrate.
	Board multichip.Board
	// RateHz, Syn pick the workload.
	RateHz float64
	Syn    int
	// Localities are the clustered-connection fractions to sweep.
	Localities []float64
	// Warmup, Ticks are the settle and measurement windows.
	Warmup, Ticks int
	// Seed drives generation.
	Seed int64
}

// DefaultTopologyConfig returns a fast 2×2-board sweep.
func DefaultTopologyConfig() TopologyConfig {
	return TopologyConfig{
		Board:      multichip.Board{ChipsX: 2, ChipsY: 2, TileW: 6, TileH: 6},
		RateHz:     50,
		Syn:        64,
		Localities: []float64{0, 0.5, 0.8, 0.95},
		Warmup:     40,
		Ticks:      120,
		Seed:       1,
	}
}

// TopologyPoint is one locality measurement.
type TopologyPoint struct {
	// Locality is the clustered-connection fraction.
	Locality float64
	// HopsPerSpike is the mean mesh distance travelled.
	HopsPerSpike float64
	// CrossPerSpike is the mean chip-boundary crossings per packet.
	CrossPerSpike float64
	// LinkUtilization is the merge/split load fraction.
	LinkUtilization float64
	// CommEnergyFrac is the share of active energy spent on the mesh
	// (hops + crossings) under the TrueNorth model.
	CommEnergyFrac float64
}

// TopologySweep measures NoC load across connection topologies from
// uniform-random to strongly clustered.
func TopologySweep(cfg TopologyConfig) ([]TopologyPoint, error) {
	mesh := cfg.Board.Mesh()
	model := energy.TrueNorth()
	var out []TopologyPoint
	for _, loc := range cfg.Localities {
		configs, err := netgen.Build(netgen.Params{
			Grid: mesh, RateHz: cfg.RateHz, SynPerNeuron: cfg.Syn,
			Seed: cfg.Seed, Locality: loc,
		})
		if err != nil {
			return nil, err
		}
		eng, err := cfg.Board.New(configs)
		if err != nil {
			return nil, err
		}
		eng.Run(cfg.Warmup)
		l := energy.MeasureLoad(eng, cfg.Ticks)
		noc := eng.NoC()
		pt := TopologyPoint{Locality: loc}
		if noc.RoutedSpikes > 0 {
			pt.HopsPerSpike = float64(noc.Hops) / float64(noc.RoutedSpikes)
			pt.CrossPerSpike = float64(noc.Crossings) / float64(noc.RoutedSpikes)
		}
		pt.LinkUtilization = cfg.Board.Utilization(multichip.DefaultLink(), l.Crossings)
		b := model.PowerBreakdown(l, 1000, 0.75)
		active := b.NeuronW + b.SynapseW + b.HopW + b.CrossW
		if active > 0 {
			pt.CommEnergyFrac = (b.HopW + b.CrossW) / active
		}
		out = append(out, pt)
	}
	return out, nil
}

// TopologyTable renders the sweep.
func TopologyTable(points []TopologyPoint) *Table {
	t := &Table{
		Title:  "Communication topology: clustered (cortex-like) connectivity vs NoC load",
		Header: []string{"locality", "hops/spike", "crossings/spike", "link util %", "comm energy %"},
	}
	for _, p := range points {
		t.AddRow(f2(p.Locality), f2(p.HopsPerSpike), f2(p.CrossPerSpike),
			f2(p.LinkUtilization*100), f1(p.CommEnergyFrac*100))
	}
	return t
}
