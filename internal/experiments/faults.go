package experiments

import (
	"fmt"

	"truenorth/internal/chip"
	"truenorth/internal/energy"
	"truenorth/internal/netgen"
	"truenorth/internal/prng"
	"truenorth/internal/router"
)

// FaultConfig controls the fault-tolerance sweep: the architecture claim
// that "local core failures do not disrupt global usability — if a core
// fails, we disable it and route spike events around it" (Section III-C).
type FaultConfig struct {
	// Grid is the simulated core mesh.
	Grid router.Mesh
	// RateHz, Syn pick the recurrent workload.
	RateHz float64
	Syn    int
	// Fractions are the disabled-core fractions to sweep.
	Fractions []float64
	// Warmup, Ticks are the settle and measurement windows.
	Warmup, Ticks int
	// Seed drives network generation and fault placement.
	Seed int64
}

// DefaultFaultConfig returns a fast sweep.
func DefaultFaultConfig() FaultConfig {
	return FaultConfig{
		Grid:      router.Mesh{W: 8, H: 8},
		RateHz:    50,
		Syn:       64,
		Fractions: []float64{0, 0.01, 0.02, 0.05, 0.10, 0.20},
		Warmup:    40,
		Ticks:     120,
		Seed:      1,
	}
}

// FaultPoint is one sweep measurement.
type FaultPoint struct {
	// Fraction and Disabled describe the injected faults.
	Fraction float64
	Disabled int
	// Delivered is the fraction of emitted packets that reached a live
	// destination (dropped packets targeted dead or enclosed cores).
	Delivered float64
	// DetourFrac is the fraction of delivered packets that deviated from
	// dimension-order routing to avoid dead cores.
	DetourFrac float64
	// MeanHops is the realized mean path length (detours lengthen it).
	MeanHops float64
	// ResidualRate is the surviving mean firing rate of live neurons (Hz).
	ResidualRate float64
}

// FaultSweep disables increasing fractions of cores in the same recurrent
// network and measures delivery, detouring, and surviving activity.
func FaultSweep(cfg FaultConfig) ([]FaultPoint, error) {
	configs, err := netgen.Build(netgen.Params{
		Grid: cfg.Grid, RateHz: cfg.RateHz, SynPerNeuron: cfg.Syn, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	var out []FaultPoint
	for _, frac := range cfg.Fractions {
		eng, err := chip.New(cfg.Grid, configs)
		if err != nil {
			return nil, err
		}
		rng := prng.NewRand(cfg.Seed + int64(frac*1000))
		nCores := cfg.Grid.W * cfg.Grid.H
		disabled := 0
		for _, idx := range rng.Perm(nCores)[:int(frac*float64(nCores))] {
			eng.DisableCore(idx%cfg.Grid.W, idx/cfg.Grid.W)
			disabled++
		}
		eng.Run(cfg.Warmup)
		l := energy.MeasureLoad(eng, cfg.Ticks)
		noc := eng.NoC()
		pt := FaultPoint{Fraction: frac, Disabled: disabled}
		emitted := float64(noc.RoutedSpikes + noc.Dropped)
		if emitted > 0 {
			pt.Delivered = float64(noc.RoutedSpikes) / emitted
		}
		if noc.RoutedSpikes > 0 {
			pt.DetourFrac = float64(noc.Detours) / float64(noc.RoutedSpikes)
			pt.MeanHops = float64(noc.Hops) / float64(noc.RoutedSpikes)
		}
		liveNeurons := float64((nCores - disabled) * 256)
		if liveNeurons > 0 {
			pt.ResidualRate = l.Spikes / liveNeurons * 1000
		}
		out = append(out, pt)
	}
	return out, nil
}

// FaultTable renders the sweep.
func FaultTable(points []FaultPoint) *Table {
	t := &Table{
		Title:  "Fault tolerance: disabled cores vs delivery, detours, and surviving activity (Section III-C claim)",
		Header: []string{"disabled %", "cores", "delivered %", "detoured %", "mean hops", "live rate Hz"},
	}
	for _, p := range points {
		t.AddRow(
			f1(p.Fraction*100),
			fmt.Sprintf("%d", p.Disabled),
			f1(p.Delivered*100),
			f1(p.DetourFrac*100),
			f2(p.MeanHops),
			f1(p.ResidualRate),
		)
	}
	return t
}
