package experiments

import (
	"fmt"

	"truenorth/internal/energy"
	"truenorth/internal/multichip"
	"truenorth/internal/vnperf"
)

// Historic supercomputer rack powers used by the Section VII energy-ratio
// claims. The Blue Gene/L figure is the published ~20 kW/rack; the Blue
// Gene/P figure is the value implied by the paper's own 128,000× claim
// (16 racks × R × 400 slower / 4 kW = 128,000 → R = 80 kW, which matches
// the fully loaded LLNL Dawn installation per-rack draw including cooling
// and I/O).
const (
	bglRackW = 20000.0
	bgpRackW = 80000.0
)

// FutureRow is one Section VII system projection.
type FutureRow struct {
	Spec multichip.SystemSpec
	// ProjectedW is our model's power at the 20 Hz/128-syn per-chip load.
	ProjectedW float64
	// ComputedGain is the energy-to-solution ratio our models produce for
	// the replicated simulation (0 when no comparison applies).
	ComputedGain float64
}

// FutureSystems reproduces the Section VII projections: the 16-chip board,
// the rat-scale quarter rack (6,400× less energy than 32 racks of Blue
// Gene/L running 10× slower than real time), and the 1%-human-scale rack
// (128,000× less energy than 16 racks of Blue Gene/P running 400× slower).
func FutureSystems() []FutureRow {
	pm := multichip.DefaultPower()
	load := pm.Chip.SyntheticLoad(20, 128)
	rows := make([]FutureRow, 0, 3)
	for _, s := range multichip.SectionVIISystems() {
		r := FutureRow{Spec: s, ProjectedW: pm.ProjectedPowerW(s, load, 1000, 0.75)}
		switch s.Chips {
		case 1024: // rat-scale vs 32 racks BG/L, 10x slower than real time
			r.ComputedGain = 32 * bglRackW * 10 / s.BudgetW
		case 4096: // 1% human-scale vs 16 racks BG/P, 400x slower
			r.ComputedGain = 16 * bgpRackW * 400 / s.BudgetW
		}
		rows = append(rows, r)
	}
	return rows
}

// FutureTable renders the Section VII projections.
func FutureTable(rows []FutureRow) *Table {
	t := &Table{
		Title:  "Section VII: projected large-scale systems",
		Header: []string{"system", "chips", "neurons", "synapses", "budget W", "our projected W", "claimed x energy", "computed x energy"},
	}
	for _, r := range rows {
		claimed, computed := "-", "-"
		if r.Spec.EnergyGain > 0 {
			claimed = f0(r.Spec.EnergyGain)
			computed = f0(r.ComputedGain)
		}
		t.AddRow(r.Spec.Name,
			fmt.Sprintf("%d", r.Spec.Chips),
			g2(float64(r.Spec.Neurons)),
			g2(float64(r.Spec.Synapses)),
			f0(r.Spec.BudgetW),
			f1(r.ProjectedW),
			claimed, computed)
	}
	return t
}

// RegressionSummary reproduces the Section VI-A one-to-one equivalence
// summary row: the long-regression wall-clock comparison. TrueNorth ran
// the longest regression (100M ticks) in 27.7 hours at real time; Compass
// on a dual-socket x86 took 74 days — a 64× gap. Our models reproduce the
// ratio from the same per-tick quantities.
func RegressionSummary(load energy.Load) *Table {
	t := &Table{
		Title:  "Section VI-A: longest regression, TrueNorth vs Compass on x86 (paper: 27.7 hours vs 74 days, 64x)",
		Header: []string{"platform", "ticks", "modeled wall clock", "x vs real time"},
	}
	const ticks = 100_000_000.0
	tnHours := ticks * 1e-3 / 3600
	t.AddRow("TrueNorth (1 kHz)", g2(ticks), fmt.Sprintf("%.1f hours", tnHours), "1.0")
	// The 2008-era X7350 server with 8 threads is roughly the modern
	// dual-socket model throttled to 8 threads.
	x86 := ticksToDays(load, ticks)
	t.AddRow("Compass on x86 (8 threads)", g2(ticks), fmt.Sprintf("%.0f days", x86), f1(x86*24/tnHours))
	return t
}

func ticksToDays(load energy.Load, ticks float64) float64 {
	per := vnX86Legacy().TickSeconds(load, vnperf.Config{Hosts: 1, Threads: 8})
	return per * ticks / 86400
}

// vnX86Legacy models the 2008-era regression server (dual-socket Xeon
// X7350 quad-core, 8 threads) as the modern x86 model restricted to 8
// threads.
func vnX86Legacy() vnperf.System {
	s := vnperf.X86()
	s.ThreadsPerHost = 8
	return s
}
