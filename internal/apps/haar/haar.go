// Package haar implements the paper's Haar-like feature-extraction
// application (Section IV-B): box-filter responses "often used in face
// detection" (Viola–Jones), computed as a corelet over streaming video.
//
// The image is tiled into 16×8-pixel patches. Each patch maps to one
// feature core whose 256 axons carry the patch's 128 pixels twice — one
// excitatory (+, type 0) and one inhibitory (−, type 1) axon per pixel —
// because an axon has a single type but different Haar features need the
// same pixel with different signs. Each Haar feature is one neuron per
// patch connecting the feature's +1 pixels through their excitatory axons
// and its −1 pixels through their inhibitory axons; with subtractive reset,
// the neuron's firing rate is proportional to max(0, box response).
//
// Since a TrueNorth neuron drives exactly one axon, feeding every pixel to
// both of its two axons requires a splitter stage (corelet.AddFanout),
// which is why the network is several times larger than the feature neurons
// alone — the same effect that makes the paper's Haar network 617,567
// neurons in 2,605 cores for 100×200 video.
package haar

import (
	"fmt"

	"truenorth/internal/core"
	"truenorth/internal/corelet"
)

// Patch dimensions: 16×8 = 128 pixels, ×2 signed axons = 256 axons.
const (
	PatchW = 16
	PatchH = 8
)

// InputName and OutputName are the placement I/O group names.
const (
	InputName  = "pixels"
	OutputName = "haar"
)

// Params configures the extractor.
type Params struct {
	// ImgW, ImgH are the frame dimensions; they must be multiples of the
	// 16×8 patch.
	ImgW, ImgH int
	// Threshold scales output rate: one output spike per Threshold units
	// of box response. Zero selects the default (16, one full-intensity
	// pixel-frame).
	Threshold int32
}

// App is a built Haar extractor.
type App struct {
	// Net is the corelet network; place it with corelet.Place.
	Net *corelet.Net
	// PatchesX, PatchesY tile the image.
	PatchesX, PatchesY int
	// NumFeatures is the number of Haar features per patch.
	NumFeatures int
	p           Params
}

// Features returns the ten Haar-like masks over a PatchW×PatchH patch:
// +1/-1/0 per pixel (row-major).
func Features() [][]int8 {
	masks := make([][]int8, 0, 10)
	add := func(f func(x, y int) int8) {
		m := make([]int8, PatchW*PatchH)
		for y := 0; y < PatchH; y++ {
			for x := 0; x < PatchW; x++ {
				m[y*PatchW+x] = f(x, y)
			}
		}
		masks = append(masks, m)
	}
	sign := func(b bool) int8 {
		if b {
			return 1
		}
		return -1
	}
	// 1: horizontal edge (top vs bottom).
	add(func(x, y int) int8 { return sign(y < PatchH/2) })
	// 2: vertical edge (left vs right).
	add(func(x, y int) int8 { return sign(x < PatchW/2) })
	// 3: horizontal line (middle band vs outer).
	add(func(x, y int) int8 { return sign(y >= PatchH/4 && y < 3*PatchH/4) })
	// 4: vertical line (middle band vs outer).
	add(func(x, y int) int8 { return sign(x >= PatchW/4 && x < 3*PatchW/4) })
	// 5: checkerboard / diagonal.
	add(func(x, y int) int8 { return sign((x < PatchW/2) == (y < PatchH/2)) })
	// 6: left-half horizontal edge.
	add(func(x, y int) int8 {
		if x >= PatchW/2 {
			return 0
		}
		return sign(y < PatchH/2)
	})
	// 7: right-half horizontal edge.
	add(func(x, y int) int8 {
		if x < PatchW/2 {
			return 0
		}
		return sign(y < PatchH/2)
	})
	// 8: top-half vertical edge.
	add(func(x, y int) int8 {
		if y >= PatchH/2 {
			return 0
		}
		return sign(x < PatchW/2)
	})
	// 9: bottom-half vertical edge.
	add(func(x, y int) int8 {
		if y < PatchH/2 {
			return 0
		}
		return sign(x < PatchW/2)
	})
	// 10: inverted checkerboard — the rectified complement of feature 5
	// (firing rates encode max(0, response), so a filter and its negation
	// carry distinct information).
	add(func(x, y int) int8 { return sign((x < PatchW/2) != (y < PatchH/2)) })
	return masks
}

// Build constructs the extractor network. Input group "pixels" has one pin
// per pixel (row-major); output group "haar" indexes responses as
// patchIndex*NumFeatures + feature.
func Build(p Params) (*App, error) {
	if p.ImgW <= 0 || p.ImgH <= 0 || p.ImgW%PatchW != 0 || p.ImgH%PatchH != 0 {
		return nil, fmt.Errorf("haar: image %dx%d must tile into %dx%d patches", p.ImgW, p.ImgH, PatchW, PatchH)
	}
	if p.Threshold == 0 {
		p.Threshold = 16
	}
	if p.Threshold < 0 {
		return nil, fmt.Errorf("haar: negative threshold %d", p.Threshold)
	}
	masks := Features()
	app := &App{
		Net:         corelet.NewNet(),
		PatchesX:    p.ImgW / PatchW,
		PatchesY:    p.ImgH / PatchH,
		NumFeatures: len(masks),
		p:           p,
	}
	n := app.Net
	pixels := p.ImgW * p.ImgH

	// Stage 1: splitters give every pixel two on-chip copies (+ and −).
	fan, err := corelet.AddFanout(n, pixels, 2)
	if err != nil {
		return nil, err
	}
	for i, pin := range fan.Pins {
		_ = i
		n.AddInput(InputName, pin.Core, pin.Axon)
	}

	// Stage 2: one feature core per patch.
	for py := 0; py < app.PatchesY; py++ {
		for px := 0; px < app.PatchesX; px++ {
			ws := corelet.AddWeightedSum(n)
			fc := ws.Core
			patch := py*app.PatchesX + px
			// Wire the patch's pixels into the core: axon 2k is the
			// excitatory copy of patch pixel k, axon 2k+1 the inhibitory.
			for k := 0; k < PatchW*PatchH; k++ {
				gx := px*PatchW + k%PatchW
				gy := py*PatchH + k/PatchW
				pix := gy*p.ImgW + gx
				n.Connect(fan.Outs[pix][0].Core, fan.Outs[pix][0].Neuron, fc, 2*k, 1)
				n.Connect(fan.Outs[pix][1].Core, fan.Outs[pix][1].Neuron, fc, 2*k+1, 1)
			}
			for f, mask := range masks {
				var excite, inhibit []int
				for k, m := range mask {
					switch m {
					case 1:
						excite = append(excite, 2*k)
					case -1:
						inhibit = append(inhibit, 2*k+1)
					}
				}
				h, err := ws.Unit(excite, inhibit, 1, 1, p.Threshold)
				if err != nil {
					return nil, fmt.Errorf("haar: patch %d feature %d: %w", patch, f, err)
				}
				n.ConnectOutput(h.Core, h.Neuron, OutputName, patch*len(masks)+f)
			}
		}
	}
	return app, nil
}

// NumOutputs returns the size of the "haar" output group.
func (a *App) NumOutputs() int { return a.PatchesX * a.PatchesY * a.NumFeatures }

// Response locates the output index for (patchX, patchY, feature).
func (a *App) Response(px, py, f int) int {
	return (py*a.PatchesX+px)*a.NumFeatures + f
}

// CoresNeeded reports the total cores the placed network occupies.
func (a *App) CoresNeeded() int { return a.Net.NumCores() }

// pixelAxonCheck asserts the patch fits the core (compile-time style check).
var _ = func() struct{} {
	if PatchW*PatchH*2 != core.AxonsPerCore {
		panic("haar: patch must supply exactly 256 signed axons")
	}
	return struct{}{}
}()
