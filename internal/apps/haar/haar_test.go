package haar

import (
	"testing"

	"truenorth/internal/chip"
	"truenorth/internal/corelet"
	"truenorth/internal/router"
	"truenorth/internal/vision"
)

func TestFeaturesMasksBalanced(t *testing.T) {
	masks := Features()
	if len(masks) != 10 {
		t.Fatalf("got %d features, want 10 (the paper uses ten Haar-like features)", len(masks))
	}
	for f, m := range masks {
		if len(m) != PatchW*PatchH {
			t.Fatalf("feature %d mask has %d entries", f, len(m))
		}
		pos, neg := 0, 0
		for _, v := range m {
			switch v {
			case 1:
				pos++
			case -1:
				neg++
			}
		}
		if pos == 0 || neg == 0 {
			t.Fatalf("feature %d has no %+d region", f, 1)
		}
		// Haar filters are zero-mean so flat regions give no response.
		if pos != neg {
			t.Fatalf("feature %d unbalanced: %d positive vs %d negative", f, pos, neg)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Params{ImgW: 17, ImgH: 8}); err == nil {
		t.Error("non-tiling width accepted")
	}
	if _, err := Build(Params{ImgW: 16, ImgH: 9}); err == nil {
		t.Error("non-tiling height accepted")
	}
	if _, err := Build(Params{ImgW: 0, ImgH: 8}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Build(Params{ImgW: 16, ImgH: 8, Threshold: -3}); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestNetworkSize(t *testing.T) {
	app, err := Build(Params{ImgW: 32, ImgH: 16})
	if err != nil {
		t.Fatal(err)
	}
	// 4 patches of feature cores + splitters for 512 pixels at fan 2
	// (128 lines/core → 4 cores).
	if app.PatchesX != 2 || app.PatchesY != 2 {
		t.Fatalf("patches = %d×%d, want 2×2", app.PatchesX, app.PatchesY)
	}
	if got := app.CoresNeeded(); got != 8 {
		t.Fatalf("cores = %d, want 8 (4 splitter + 4 feature)", got)
	}
	// Neurons: 512 pixels × 2 relays + 4 patches × 10 features.
	if got := app.Net.NumNeurons(); got != 512*2+40 {
		t.Fatalf("neurons = %d, want %d", got, 512*2+40)
	}
	if app.NumOutputs() != 40 {
		t.Fatalf("outputs = %d, want 40", app.NumOutputs())
	}
}

// runFrame builds the app on one patch, injects a frame, and returns the
// per-feature response counts.
func runFrame(t *testing.T, f *vision.Frame) []int {
	t.Helper()
	app, err := Build(Params{ImgW: PatchW, ImgH: PatchH})
	if err != nil {
		t.Fatal(err)
	}
	p, err := corelet.Place(app.Net, router.Mesh{W: 4, H: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chip.New(p.Mesh, p.Configs)
	if err != nil {
		t.Fatal(err)
	}
	tr := vision.DefaultTransducer()
	if _, err := tr.InjectFrame(eng, p, InputName, f, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run(tr.TicksPerFrame + 4)
	return vision.CountByName(p, eng.DrainOutputs(), OutputName, app.NumOutputs())
}

func TestFlatFrameGivesNegligibleResponse(t *testing.T) {
	// Haar filters are zero-mean, so a flat field cancels. Under phased
	// rate coding the cancellation is statistical within a frame, so allow
	// at most one stray spike per feature (versus dozens for a real edge).
	f := vision.NewFrame(PatchW, PatchH)
	for i := range f.Pix {
		f.Pix[i] = 200
	}
	counts := runFrame(t, f)
	for fi, c := range counts {
		if c > 1 {
			t.Fatalf("feature %d responded %d to a flat frame (filters are zero-mean)", fi, c)
		}
	}
}

func TestHorizontalEdgeSelectivity(t *testing.T) {
	// Bright top half: feature 0 (horizontal edge) should dominate.
	f := vision.NewFrame(PatchW, PatchH)
	for y := 0; y < PatchH/2; y++ {
		for x := 0; x < PatchW; x++ {
			f.Set(x, y, 255)
		}
	}
	counts := runFrame(t, f)
	if counts[0] == 0 {
		t.Fatal("horizontal-edge feature silent on a horizontal edge")
	}
	if counts[1] != 0 {
		t.Fatalf("vertical-edge feature responded %d to a horizontal edge", counts[1])
	}
	for fi, c := range counts {
		if fi != 0 && c > counts[0] {
			t.Fatalf("feature %d (%d spikes) outran the horizontal-edge feature (%d)", fi, c, counts[0])
		}
	}
}

func TestVerticalEdgeSelectivity(t *testing.T) {
	f := vision.NewFrame(PatchW, PatchH)
	for y := 0; y < PatchH; y++ {
		for x := 0; x < PatchW/2; x++ {
			f.Set(x, y, 255)
		}
	}
	counts := runFrame(t, f)
	if counts[1] == 0 {
		t.Fatal("vertical-edge feature silent on a vertical edge")
	}
	if counts[0] != 0 {
		t.Fatalf("horizontal-edge feature responded %d to a vertical edge", counts[0])
	}
}

func TestResponseScalesWithContrast(t *testing.T) {
	mk := func(v uint8) *vision.Frame {
		f := vision.NewFrame(PatchW, PatchH)
		for y := 0; y < PatchH/2; y++ {
			for x := 0; x < PatchW; x++ {
				f.Set(x, y, v)
			}
		}
		return f
	}
	weak := runFrame(t, mk(100))[0]
	strong := runFrame(t, mk(255))[0]
	if weak >= strong {
		t.Fatalf("response not increasing with contrast: %d !< %d", weak, strong)
	}
}

func TestResponseIndexHelper(t *testing.T) {
	app, err := Build(Params{ImgW: 32, ImgH: 16})
	if err != nil {
		t.Fatal(err)
	}
	if got := app.Response(1, 1, 3); got != (1*2+1)*10+3 {
		t.Fatalf("Response(1,1,3) = %d", got)
	}
}

func TestMultiPatchIndependence(t *testing.T) {
	// Light up only the top-left patch; other patches stay silent.
	app, err := Build(Params{ImgW: 32, ImgH: 16})
	if err != nil {
		t.Fatal(err)
	}
	p, err := corelet.Place(app.Net, router.Mesh{W: 4, H: 4})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chip.New(p.Mesh, p.Configs)
	if err != nil {
		t.Fatal(err)
	}
	f := vision.NewFrame(32, 16)
	for y := 0; y < PatchH/2; y++ {
		for x := 0; x < PatchW; x++ {
			f.Set(x, y, 255)
		}
	}
	tr := vision.DefaultTransducer()
	if _, err := tr.InjectFrame(eng, p, InputName, f, 0); err != nil {
		t.Fatal(err)
	}
	eng.Run(tr.TicksPerFrame + 4)
	counts := vision.CountByName(p, eng.DrainOutputs(), OutputName, app.NumOutputs())
	if counts[app.Response(0, 0, 0)] == 0 {
		t.Fatal("stimulated patch silent")
	}
	for px := 0; px < app.PatchesX; px++ {
		for py := 0; py < app.PatchesY; py++ {
			if px == 0 && py == 0 {
				continue
			}
			for fi := 0; fi < app.NumFeatures; fi++ {
				if c := counts[app.Response(px, py, fi)]; c != 0 {
					t.Fatalf("unstimulated patch (%d,%d) feature %d fired %d times", px, py, fi, c)
				}
			}
		}
	}
}
