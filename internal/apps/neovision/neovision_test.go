package neovision

import (
	"testing"

	"truenorth/internal/chip"
	"truenorth/internal/corelet"
	"truenorth/internal/router"
	"truenorth/internal/vision"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Params{ImgW: 0, ImgH: 16}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Build(Params{ImgW: 18, ImgH: 16}); err == nil {
		t.Error("non-tiling width accepted")
	}
}

func TestBandsOrderedAndDisjoint(t *testing.T) {
	bands := classBands(vision.DefaultTransducer())
	for c := vision.Person; c < vision.NumClasses; c++ {
		b := bands[c]
		if b.lo >= b.hi {
			t.Fatalf("class %v band [%d,%d) empty", c, b.lo, b.hi)
		}
		if c > vision.Person && bands[c-1].lo < b.hi {
			t.Fatalf("bands overlap: %v [%d,%d) vs %v [%d,%d)", c-1, bands[c-1].lo, bands[c-1].hi, c, b.lo, b.hi)
		}
	}
}

type rig struct {
	app *App
	p   *corelet.Placement
	eng *chip.Model
}

func newRig(t *testing.T, w, h int) *rig {
	t.Helper()
	app, err := Build(Params{ImgW: w, ImgH: h})
	if err != nil {
		t.Fatal(err)
	}
	side := 1
	for side*side < app.Net.NumCores() {
		side++
	}
	p, err := corelet.Place(app.Net, router.Mesh{W: side, H: side})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chip.New(p.Mesh, p.Configs)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{app: app, p: p, eng: eng}
}

// frame injects f and returns (where, what) counts.
func (r *rig) frame(t *testing.T, f *vision.Frame) ([]int, []int) {
	t.Helper()
	tr := vision.DefaultTransducer()
	if _, err := tr.InjectFrame(r.eng, r.p, InputName, f, 0); err != nil {
		t.Fatal(err)
	}
	r.eng.Run(tr.TicksPerFrame)
	out := r.eng.DrainOutputs()
	nc := int(vision.NumClasses)
	return vision.CountByName(r.p, out, WhereName, r.app.NumCells()),
		vision.CountByName(r.p, out, WhatName, r.app.NumCells()*nc)
}

// classFrame renders one object of class c at (x0, y0).
func classFrame(w, h int, c vision.Class, x0, y0 int) (*vision.Frame, vision.Box) {
	f := vision.NewFrame(w, h)
	cw, chh, intensity := vision.Shape(c)
	for y := y0; y < y0+chh; y++ {
		for x := x0; x < x0+cw; x++ {
			f.Set(x, y, intensity)
		}
	}
	return f, vision.Box{X0: x0, Y0: y0, X1: x0 + cw, Y1: y0 + chh, Class: c}
}

func TestWhereDetectsObjectSupport(t *testing.T) {
	r := newRig(t, 48, 32)
	f, box := classFrame(48, 32, vision.Car, 8, 8)
	where, _ := r.frame(t, f)
	// Cells inside the car must be active; far-away cells must not.
	inside := r.app.CellsX*(box.Y0/Cell+1) + box.X0/Cell + 1
	if where[inside] < r.app.p.WhereMin {
		t.Fatalf("interior cell count %d below threshold %d", where[inside], r.app.p.WhereMin)
	}
	far := r.app.CellsX*7 + 11
	if where[far] != 0 {
		t.Fatalf("empty cell fired %d times", where[far])
	}
}

func TestDecodeSingleObject(t *testing.T) {
	for _, cls := range []vision.Class{vision.Person, vision.Car, vision.Truck} {
		r := newRig(t, 48, 32)
		f, box := classFrame(48, 32, cls, 12, 8)
		var where, what []int
		for k := 0; k < 2; k++ { // second frame: votes past warmup
			where, what = r.frame(t, f)
		}
		dets := r.app.DecodeFrame(where, what)
		if len(dets) != 1 {
			t.Fatalf("class %v: %d detections, want 1", cls, len(dets))
		}
		if dets[0].Box.Class != cls {
			t.Fatalf("class %v misclassified as %v", cls, dets[0].Box.Class)
		}
		if iou := vision.IoU(dets[0].Box, box); iou < 0.4 {
			t.Fatalf("class %v: IoU %.2f too low (det %+v vs truth %+v)", cls, iou, dets[0].Box, box)
		}
	}
}

func TestDecodeTwoObjects(t *testing.T) {
	r := newRig(t, 64, 32)
	f, boxA := classFrame(64, 32, vision.Person, 4, 8)
	g, boxB := classFrame(64, 32, vision.Bus, 32, 12)
	for y := 0; y < 32; y++ {
		for x := 0; x < 64; x++ {
			if v := g.At(x, y); v > 0 {
				f.Set(x, y, v)
			}
		}
	}
	var where, what []int
	for k := 0; k < 2; k++ {
		where, what = r.frame(t, f)
	}
	dets := r.app.DecodeFrame(where, what)
	if len(dets) != 2 {
		t.Fatalf("%d detections, want 2", len(dets))
	}
	pred := []vision.Box{dets[0].Box, dets[1].Box}
	p, rec := vision.PrecisionRecall(pred, []vision.Box{boxA, boxB}, 0.4)
	if p != 1 || rec != 1 {
		t.Fatalf("precision %.2f recall %.2f, want 1/1 (dets: %+v)", p, rec, dets)
	}
}

func TestBlankSceneNoDetections(t *testing.T) {
	r := newRig(t, 32, 16)
	where, what := r.frame(t, vision.NewFrame(32, 16))
	if dets := r.app.DecodeFrame(where, what); len(dets) != 0 {
		t.Fatalf("blank frame produced %v", dets)
	}
}

func TestEvaluateOnSyntheticTower(t *testing.T) {
	// The headline application result: precision/recall near the paper's
	// 0.85/0.80 on moving+stationary multi-class scenes.
	if testing.Short() {
		t.Skip("multi-frame evaluation in -short mode")
	}
	r := newRig(t, 64, 48)
	scene := vision.NewScene(64, 48, 3, 11)
	score, err := r.app.Evaluate(r.eng, r.p, scene, 10, 2, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if score.Frames != 8 {
		t.Fatalf("scored %d frames, want 8", score.Frames)
	}
	if score.Precision < 0.6 {
		t.Fatalf("precision %.2f below 0.6 (paper: 0.85)", score.Precision)
	}
	if score.Recall < 0.6 {
		t.Fatalf("recall %.2f below 0.6 (paper: 0.80)", score.Recall)
	}
}

func TestDecodeRejectsVotelessSupport(t *testing.T) {
	r := newRig(t, 32, 16)
	where := make([]int, r.app.NumCells())
	what := make([]int, r.app.NumCells()*int(vision.NumClasses))
	where[5] = 100 // support but zero class evidence
	if dets := r.app.DecodeFrame(where, what); len(dets) != 0 {
		t.Fatalf("voteless component accepted: %v", dets)
	}
}

func TestNetworkSize(t *testing.T) {
	app, err := Build(Params{ImgW: 64, ImgH: 48})
	if err != nil {
		t.Fatal(err)
	}
	if app.Net.NumCores() < 50 {
		t.Fatalf("only %d cores; What/Where stages missing?", app.Net.NumCores())
	}
	if app.Net.NumNeurons() < 64*48*2 {
		t.Fatalf("only %d neurons; splitter stage missing?", app.Net.NumNeurons())
	}
}
