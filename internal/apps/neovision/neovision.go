// Package neovision implements the paper's multi-object detection and
// classification system (Section IV-B): "Our system includes a Where
// network to detect objects, a What network to classify objects, and a
// What/Where network to bind these predictions into labeled bounding
// boxes", evaluated on the DARPA Neovision2 Tower classes (person,
// cyclist, car, bus, truck). Our video source is the synthetic scene
// generator in internal/vision (see DESIGN.md §2).
//
// Where network: each 4×4-pixel cell pools its pixels into an "objectness"
// rate; cells above threshold mark object support.
//
// What network: per cell, five class channels perform rate-band detection
// on the pooled pixel rate. Classes render at distinct intensities, so a
// fully covered cell's event rate falls in a class-specific band. Each
// channel is a three-neuron circuit: a low-edge detector (leak −lo cancels
// drive below the band), a high-edge detector (leak −hi), and a vote
// neuron excited by the low detector and strongly inhibited by the high
// detector — a spiking band-pass. Partially covered border cells dilute
// the rate and can vote for a smaller class, which is the system's main
// error source — the reason precision/recall sit near the paper's
// 0.85/0.80 rather than at 1.0.
//
// What/Where binding: the readout clusters active Where cells into
// connected components, takes each component's pixel bounding box, and
// labels it with the class whose votes dominate over the component — the
// merge step of Fig. 4(i).
package neovision

import (
	"fmt"
	"math"

	"truenorth/internal/core"
	"truenorth/internal/corelet"
	"truenorth/internal/neuron"
	"truenorth/internal/sim"
	"truenorth/internal/vision"
)

// Cell is the detection resolution: 4×4 pixels per cell.
const Cell = 4

// I/O group names.
const (
	InputName = "pixels"
	WhereName = "where"
	WhatName  = "what"
)

// Params configures the system.
type Params struct {
	// ImgW, ImgH are the aperture dimensions (multiples of Cell).
	ImgW, ImgH int
	// Transducer must match the one used at runtime (band calibration
	// depends on MaxSpikes and TicksPerFrame). Zero value selects
	// vision.DefaultTransducer.
	Transducer vision.Transducer
	// WhereMin is the per-frame Where spike count that marks a cell
	// active during decoding (default 3).
	WhereMin int
}

// App is a built What/Where system.
type App struct {
	// Net is the corelet network.
	Net *corelet.Net
	// CellsX, CellsY is the detection grid.
	CellsX, CellsY int
	p              Params
	bands          [vision.NumClasses]band
}

// band is a class's expected event-rate band in (3× scaled) events/tick.
type band struct{ lo, hi int32 }

// NumCells returns the detection grid size.
func (a *App) NumCells() int { return a.CellsX * a.CellsY }

// classBands calibrates the per-class rate bands from the rendered class
// intensities and the transducer: the scaled drive of a fully covered cell
// is pixels×spikesPerFrame×weight/ticksPerFrame; band edges sit at the
// midpoints between adjacent classes.
func classBands(tr vision.Transducer) [vision.NumClasses]band {
	const weight = 3
	var center [vision.NumClasses]float64
	for c := vision.Person; c < vision.NumClasses; c++ {
		_, _, intensity := vision.Shape(c)
		center[c] = float64(tr.SpikeCount(intensity)) * Cell * Cell * weight / float64(tr.TicksPerFrame)
	}
	// Classes are ordered bright→dark, so centers are descending.
	var bands [vision.NumClasses]band
	for c := vision.Person; c < vision.NumClasses; c++ {
		hi := center[c] * 1.25
		if c > vision.Person {
			hi = (center[c] + center[c-1]) / 2
		}
		lo := center[c] * 0.75
		if c+1 < vision.NumClasses {
			lo = (center[c] + center[c+1]) / 2
		}
		bands[c] = band{lo: int32(math.Round(lo)), hi: int32(math.Round(hi))}
	}
	return bands
}

// Build constructs the network. Input group "pixels" has one pin per pixel
// (row-major). Output groups: "where" (one sink per cell) and "what"
// (cell×NumClasses + class).
func Build(p Params) (*App, error) {
	if p.Transducer.TicksPerFrame == 0 {
		p.Transducer = vision.DefaultTransducer()
	}
	if p.WhereMin == 0 {
		p.WhereMin = 3
	}
	if p.ImgW <= 0 || p.ImgH <= 0 || p.ImgW%Cell != 0 || p.ImgH%Cell != 0 {
		return nil, fmt.Errorf("neovision: aperture %dx%d must tile into %d×%d cells", p.ImgW, p.ImgH, Cell, Cell)
	}
	app := &App{
		Net:    corelet.NewNet(),
		CellsX: p.ImgW / Cell,
		CellsY: p.ImgH / Cell,
		p:      p,
		bands:  classBands(p.Transducer),
	}
	n := app.Net
	cells := app.NumCells()
	nc := int(vision.NumClasses)

	// Every pixel feeds the Where pool and the What band detectors.
	pixels := p.ImgW * p.ImgH
	fans := make([]int, pixels)
	for i := range fans {
		fans[i] = 2
	}
	fan, err := corelet.AddFanoutVar(n, fans)
	if err != nil {
		return nil, err
	}
	for _, pin := range fan.Pins {
		n.AddInput(InputName, pin.Core, pin.Axon)
	}

	// Where network: 16 cells per core (16 pixel axons each).
	const cellsPerWhereCore = core.AxonsPerCore / (Cell * Cell)
	var wc corelet.CoreID
	inWC := cellsPerWhereCore
	for c := 0; c < cells; c++ {
		if inWC == cellsPerWhereCore {
			wc = n.AddCore()
			inWC = 0
		}
		inWC++
		j := n.AllocNeuron(wc)
		n.SetNeuron(wc, j, neuron.Accumulator(1, 0, 8))
		cx, cy := c%app.CellsX, c/app.CellsX
		for k := 0; k < Cell*Cell; k++ {
			gx, gy := cx*Cell+k%Cell, cy*Cell+k/Cell
			pix := gy*p.ImgW + gx
			a := n.AllocAxon(wc)
			n.SetSynapse(wc, a, j)
			n.Connect(fan.Outs[pix][0].Core, fan.Outs[pix][0].Neuron, wc, a, 1)
		}
		n.ConnectOutput(wc, j, WhereName, c)
	}

	// What network: per cell, 16 shared pixel axons (type 0, weight +3)
	// drive 5 band-pass channels of 3 neurons each. Per-class relay axons
	// carry lo (type 2, +1) and hi (type 3, −4) into the vote neuron.
	// Per cell: 16 + 2×5 = 26 axons, 15 neurons → 9 cells per core.
	const cellsPerWhatCore = 9
	var qc corelet.CoreID
	inQC := cellsPerWhatCore
	for c := 0; c < cells; c++ {
		if inQC == cellsPerWhatCore {
			qc = n.AddCore()
			inQC = 0
		}
		inQC++
		cx, cy := c%app.CellsX, c/app.CellsX
		pixAxons := make([]int, Cell*Cell)
		for k := 0; k < Cell*Cell; k++ {
			gx, gy := cx*Cell+k%Cell, cy*Cell+k/Cell
			pix := gy*p.ImgW + gx
			a := n.AllocAxon(qc)
			n.SetAxonType(qc, a, 0)
			pixAxons[k] = a
			n.Connect(fan.Outs[pix][1].Core, fan.Outs[pix][1].Neuron, qc, a, 1)
		}
		for cls := 0; cls < nc; cls++ {
			b := app.bands[vision.Class(cls)]
			mkDetector := func(edge int32) int {
				j := n.AllocNeuron(qc)
				n.SetNeuron(qc, j, neuron.Params{
					Weights:   [neuron.NumAxonTypes]int32{3, 0, 0, 0},
					Leak:      -edge,
					Threshold: 8,
					Reset:     neuron.ResetSubtract,
					// The negative window lets sub-band drive fluctuations
					// cancel instead of rectifying at a hard zero floor
					// (tick-level burstiness would otherwise accumulate
					// and fire detectors whose band lies above the true
					// rate).
					NegThreshold: 40,
					NegSaturate:  true,
				})
				for _, a := range pixAxons {
					n.SetSynapse(qc, a, j)
				}
				return j
			}
			lo := mkDetector(b.lo)
			hi := mkDetector(b.hi)
			aLo := n.AllocAxon(qc)
			n.SetAxonType(qc, aLo, 2)
			n.Connect(qc, lo, qc, aLo, 1)
			aHi := n.AllocAxon(qc)
			n.SetAxonType(qc, aHi, 3)
			n.Connect(qc, hi, qc, aHi, 1)
			vote := n.AllocNeuron(qc)
			n.SetNeuron(qc, vote, neuron.Params{
				Weights:      [neuron.NumAxonTypes]int32{0, 0, 1, -4},
				Threshold:    2,
				Reset:        neuron.ResetSubtract,
				NegThreshold: 8,
				NegSaturate:  true,
			})
			n.SetSynapse(qc, aLo, vote)
			n.SetSynapse(qc, aHi, vote)
			n.ConnectOutput(qc, vote, WhatName, c*nc+cls)
		}
	}
	return app, nil
}

// Detection is one bound What/Where prediction.
type Detection struct {
	Box vision.Box
	// Votes is the winning class's vote count over the component.
	Votes int
}

// DecodeFrame performs the What/Where binding for one frame: whereCounts
// and whatCounts are the per-sink spike counts of the "where" and "what"
// output groups (lengths NumCells and NumCells×NumClasses).
func (a *App) DecodeFrame(whereCounts, whatCounts []int) []Detection {
	nc := int(vision.NumClasses)
	active := make([]bool, a.NumCells())
	for c, v := range whereCounts {
		active[c] = v >= a.p.WhereMin
	}
	seen := make([]bool, a.NumCells())
	var dets []Detection
	for start := range active {
		if !active[start] || seen[start] {
			continue
		}
		// Flood-fill the connected component (4-connectivity).
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, c)
			cx, cy := c%a.CellsX, c/a.CellsX
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := cx+d[0], cy+d[1]
				if nx < 0 || nx >= a.CellsX || ny < 0 || ny >= a.CellsY {
					continue
				}
				ni := ny*a.CellsX + nx
				if active[ni] && !seen[ni] {
					seen[ni] = true
					stack = append(stack, ni)
				}
			}
		}
		// Bounding box in pixels. Class votes come only from the
		// component's strongest-support cells: fully covered interior
		// cells carry the undiluted class rate, while partially covered
		// border cells dilute toward darker-class bands.
		minX, minY, maxX, maxY := a.CellsX, a.CellsY, -1, -1
		maxWhere := 0
		for _, c := range comp {
			cx, cy := c%a.CellsX, c/a.CellsX
			minX, minY = min(minX, cx), min(minY, cy)
			maxX, maxY = max(maxX, cx), max(maxY, cy)
			if whereCounts[c] > maxWhere {
				maxWhere = whereCounts[c]
			}
		}
		votes := make([]int, nc)
		totalVotes := 0
		for _, c := range comp {
			if whereCounts[c]*4 < maxWhere*3 {
				continue
			}
			for cls := 0; cls < nc; cls++ {
				votes[cls] += whatCounts[c*nc+cls]
				totalVotes += whatCounts[c*nc+cls]
			}
		}
		if totalVotes == 0 {
			continue // support without any class evidence: reject
		}
		// Binding combines Where shape evidence with What appearance
		// evidence: the detection's cell dimensions gate which classes are
		// geometrically plausible (partial cell coverage dilutes the
		// intensity bands toward darker classes, so appearance alone is
		// unreliable at object borders); the intensity votes pick among
		// the plausible shapes, with nearest-shape fallback when the
		// diluted votes all fall outside them.
		wc, hc := maxX-minX+1, maxY-minY+1
		bestCls, bestV := -1, -1
		fallback, fallbackD := 0, 1e9
		for cls := 0; cls < nc; cls++ {
			cw, chh, _ := vision.Shape(vision.Class(cls))
			expW := float64(cw)/Cell + 0.5
			expH := float64(chh)/Cell + 0.5
			d := absf(float64(wc)-expW) + absf(float64(hc)-expH)
			if d < fallbackD {
				fallback, fallbackD = cls, d
			}
			compatible := absf(float64(wc)-expW) <= 1 && absf(float64(hc)-expH) <= 1
			if compatible && votes[cls] > bestV {
				bestCls, bestV = cls, votes[cls]
			}
		}
		if bestCls < 0 {
			bestCls, bestV = fallback, votes[fallback]
		}
		dets = append(dets, Detection{
			Box: vision.Box{
				X0: minX * Cell, Y0: minY * Cell,
				X1: (maxX + 1) * Cell, Y1: (maxY + 1) * Cell,
				Class: vision.Class(bestCls),
			},
			Votes: bestV,
		})
	}
	return dets
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Score aggregates detection quality over a video run.
type Score struct {
	// Precision and Recall at the IoU threshold, pooled over all scored
	// frames (the paper: 0.85 precision, 0.80 recall on the test set).
	Precision, Recall float64
	// Frames is the number of scored frames.
	Frames int
	// Detections is the total prediction count.
	Detections int
}

// Evaluate streams frames of scene through the placed system on eng and
// scores the What/Where detections against ground truth. The first warmup
// frames are run but not scored (transduction and voting pipelines fill).
func (a *App) Evaluate(eng sim.Engine, p *corelet.Placement, scene *vision.Scene, frames, warmup int, iou float64) (Score, error) {
	nc := int(vision.NumClasses)
	var tp, fp, fn, nDet int
	scored := 0
	for k := 0; k < frames; k++ {
		truth := scene.GroundTruth()
		f := scene.Render()
		if _, err := a.p.Transducer.InjectFrame(eng, p, InputName, f, 0); err != nil {
			return Score{}, err
		}
		eng.Run(a.p.Transducer.TicksPerFrame)
		out := eng.DrainOutputs()
		scene.Advance()
		if k < warmup {
			continue
		}
		where := vision.CountByName(p, out, WhereName, a.NumCells())
		what := vision.CountByName(p, out, WhatName, a.NumCells()*nc)
		dets := a.DecodeFrame(where, what)
		pred := make([]vision.Box, len(dets))
		for i, d := range dets {
			pred[i] = d.Box
		}
		prec, rec := vision.PrecisionRecall(pred, truth, iou)
		tp += int(math.Round(prec * float64(len(pred))))
		fp += len(pred) - int(math.Round(prec*float64(len(pred))))
		fn += len(truth) - int(math.Round(rec*float64(len(truth))))
		nDet += len(pred)
		scored++
	}
	s := Score{Frames: scored, Detections: nDet}
	if tp+fp > 0 {
		s.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		s.Recall = float64(tp) / float64(tp+fn)
	}
	return s, nil
}
