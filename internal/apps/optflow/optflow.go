// Package optflow implements spiking optical flow, one of the corelet
// library's listed algorithms ("linear and non-linear signal and image
// processing; spatio-temporal filtering; ... and optical flow" — Section
// IV-A): Reichardt-style elementary motion detectors built from axonal
// delays and coincidence neurons.
//
// An EMD for direction d at pixel p fires when a transduced edge event at
// p−d, delayed by δ ticks through the axonal delay, coincides with an
// event at p: motion at speed |d|/δ in direction d. Per cell, four
// direction channels (±x, ±y) are pooled; reading out the dominant
// channel per cell gives the flow field. The temporal-derivative front
// end (appearing-edge detection via a delayed-inhibition differencer)
// keeps static texture from triggering the correlators.
package optflow

import (
	"fmt"

	"truenorth/internal/core"
	"truenorth/internal/corelet"
	"truenorth/internal/neuron"
)

// Direction channels.
const (
	Right = iota
	Left
	Down
	Up
	NumDirections
)

// DirName returns a channel label.
func DirName(d int) string {
	return [...]string{"right", "left", "down", "up"}[d]
}

// I/O group names.
const (
	InputName  = "pixels"
	OutputName = "flow"
)

// Params configures the detector array.
type Params struct {
	// ImgW, ImgH are the frame dimensions (multiples of Cell).
	ImgW, ImgH int
	// Cell is the flow-field resolution in pixels (default 4).
	Cell int
	// Step is the correlator baseline in pixels (default 2).
	Step int
	// DelayTicks is the correlator delay δ: the EMD is tuned to motion of
	// Step pixels per DelayTicks ticks (default 8).
	DelayTicks int
}

// App is a built optical-flow system.
type App struct {
	// Net is the corelet network.
	Net *corelet.Net
	// CellsX, CellsY is the flow-field size.
	CellsX, CellsY int
	p              Params
}

// NumOutputs returns the output count: cells × directions.
func (a *App) NumOutputs() int { return a.CellsX * a.CellsY * NumDirections }

// Index returns the output index of (cellX, cellY, direction).
func (a *App) Index(cx, cy, dir int) int {
	return (cy*a.CellsX+cx)*NumDirections + dir
}

// Build constructs the network. Input "pixels" (one pin per pixel);
// output "flow" indexed by Index.
func Build(p Params) (*App, error) {
	if p.Cell == 0 {
		p.Cell = 4
	}
	if p.Step == 0 {
		p.Step = 2
	}
	if p.DelayTicks == 0 {
		p.DelayTicks = 8
	}
	if p.ImgW <= 0 || p.ImgH <= 0 || p.ImgW%p.Cell != 0 || p.ImgH%p.Cell != 0 {
		return nil, fmt.Errorf("optflow: image %dx%d must tile into %d-pixel cells", p.ImgW, p.ImgH, p.Cell)
	}
	if p.DelayTicks < 2 || p.DelayTicks > core.MaxDelay-1 {
		return nil, fmt.Errorf("optflow: delay %d outside [2,%d] (the reference path adds one tick)", p.DelayTicks, core.MaxDelay-1)
	}
	if p.Step < 1 || p.Step >= p.ImgW || p.Step >= p.ImgH {
		return nil, fmt.Errorf("optflow: step %d out of range", p.Step)
	}
	app := &App{Net: corelet.NewNet(), CellsX: p.ImgW / p.Cell, CellsY: p.ImgH / p.Cell, p: p}
	n := app.Net
	pixels := p.ImgW * p.ImgH

	// Stage 1: temporal differencer per pixel — an "appearing edge"
	// detector: +now, −(now delayed by 3 ticks); static drive cancels.
	// Each pixel input fans to the + axon and, through the same relay
	// pair, to the − axon with extra delay.
	fan, err := corelet.AddFanout(n, pixels, 2)
	if err != nil {
		return nil, err
	}
	for _, pin := range fan.Pins {
		n.AddInput(InputName, pin.Core, pin.Axon)
	}
	const diffPerCore = core.AxonsPerCore / 2
	edge := make([]corelet.Handle, pixels)
	var dc corelet.CoreID
	inDC := diffPerCore
	for pix := 0; pix < pixels; pix++ {
		if inDC == diffPerCore {
			dc = n.AddCore()
			inDC = 0
		}
		inDC++
		aNow := n.AllocAxon(dc)
		n.SetAxonType(dc, aNow, 0)
		aOld := n.AllocAxon(dc)
		n.SetAxonType(dc, aOld, 1)
		n.Connect(fan.Outs[pix][0].Core, fan.Outs[pix][0].Neuron, dc, aNow, 1)
		n.Connect(fan.Outs[pix][1].Core, fan.Outs[pix][1].Neuron, dc, aOld, 4)
		j := n.AllocNeuron(dc)
		n.SetNeuron(dc, j, neuron.Params{
			Weights:      [neuron.NumAxonTypes]int32{1, -1, 0, 0},
			Threshold:    1,
			Reset:        neuron.ResetToV,
			NegThreshold: 2,
			NegSaturate:  true,
		})
		n.SetSynapse(dc, aNow, j)
		n.SetSynapse(dc, aOld, j)
		edge[pix] = corelet.Handle{Core: dc, Neuron: j}
	}

	// Stage 2: edge fanout — each edge event serves as the delayed
	// reference for up to four EMDs (one per direction) plus the prompt
	// input of up to four EMDs centered on neighbors.
	fans := make([]int, pixels)
	offs := [NumDirections][2]int{{p.Step, 0}, {-p.Step, 0}, {0, p.Step}, {0, -p.Step}}
	inBounds := func(x, y int) bool { return x >= 0 && x < p.ImgW && y >= 0 && y < p.ImgH }
	for pix := range fans {
		x, y := pix%p.ImgW, pix/p.ImgW
		f := 0
		for _, o := range offs {
			if inBounds(x+o[0], y+o[1]) {
				f++ // delayed reference for the EMD at p+o
			}
			if inBounds(x-o[0], y-o[1]) {
				f++ // prompt input for the EMD at p
			}
		}
		if f == 0 {
			f = 1
		}
		fans[pix] = f
	}
	eFan, err := corelet.AddFanoutVar(n, fans)
	if err != nil {
		return nil, err
	}
	for pix := 0; pix < pixels; pix++ {
		n.Connect(edge[pix].Core, edge[pix].Neuron, eFan.Pins[pix].Core, eFan.Pins[pix].Axon, 1)
	}
	next := make([]int, pixels)
	take := func(pix int) corelet.Handle {
		h := eFan.Outs[pix][next[pix]]
		next[pix]++
		return h
	}

	// Stage 3: EMD coincidence cores. Per (pixel, direction) with a valid
	// source pixel: two axons (delayed reference from p−d via δ, prompt
	// from p via 1) and one coincidence neuron (both must arrive within
	// the tick). EMD outputs pool into per-(cell, direction) accumulators.
	const emdsPerCore = core.AxonsPerCore / 2
	var ec corelet.CoreID
	inEC := emdsPerCore
	// Pool cores: 4 directions × cells accumulators.
	poolAxonsPer := p.Cell * p.Cell // max EMDs pooled per (cell, direction)
	poolCellsPerCore := core.AxonsPerCore / (poolAxonsPer * NumDirections)
	if poolCellsPerCore == 0 {
		return nil, fmt.Errorf("optflow: cell %d too large for pooling core", p.Cell)
	}
	var pc corelet.CoreID
	inPC := poolCellsPerCore
	type pool struct {
		core corelet.CoreID
		j    int
	}
	pools := make([]pool, app.CellsX*app.CellsY*NumDirections)
	for c := range pools {
		if inPC == poolCellsPerCore {
			pc = n.AddCore()
			inPC = 0
		}
		if c%NumDirections == 0 {
			inPC++
		}
		j := n.AllocNeuron(pc)
		n.SetNeuron(pc, j, neuron.Accumulator(1, 0, 1))
		n.ConnectOutput(pc, j, OutputName, c)
		pools[c] = pool{core: pc, j: j}
	}
	for pix := 0; pix < pixels; pix++ {
		x, y := pix%p.ImgW, pix/p.ImgW
		for dir, o := range offs {
			sx, sy := x-o[0], y-o[1]
			if !inBounds(sx, sy) {
				continue
			}
			if inEC == emdsPerCore {
				ec = n.AddCore()
				inEC = 0
			}
			inEC++
			src := sy*p.ImgW + sx
			aRef := n.AllocAxon(ec)
			n.SetAxonType(ec, aRef, 0)
			aNow := n.AllocAxon(ec)
			n.SetAxonType(ec, aNow, 0)
			// Path alignment: the reference leaves its edge detector at t,
			// the prompt at t+δ; both pass one relay, so the reference
			// needs axonal delay δ+1 against the prompt's 1 to coincide.
			hRef := take(src)
			n.Connect(hRef.Core, hRef.Neuron, ec, aRef, p.DelayTicks+1)
			hNow := take(pix)
			n.Connect(hNow.Core, hNow.Neuron, ec, aNow, 1)
			j := n.AllocNeuron(ec)
			n.SetNeuron(ec, j, neuron.CoincidenceDetector(2))
			n.SetSynapse(ec, aRef, j)
			n.SetSynapse(ec, aNow, j)
			// Pool into the pixel's cell channel.
			pi := app.Index(x/p.Cell, y/p.Cell, dir)
			pl := &pools[pi]
			a := n.AllocAxon(pl.core)
			if a < 0 {
				return nil, fmt.Errorf("optflow: pool core out of axons")
			}
			n.SetSynapse(pl.core, a, pl.j)
			n.Connect(ec, j, pl.core, a, 1)
		}
	}
	return app, nil
}
