package optflow

import (
	"testing"

	"truenorth/internal/chip"
	"truenorth/internal/corelet"
	"truenorth/internal/router"
)

const imgW, imgH = 16, 8

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Params{ImgW: 0, ImgH: 8}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Build(Params{ImgW: 15, ImgH: 8}); err == nil {
		t.Error("non-tiling width accepted")
	}
	if _, err := Build(Params{ImgW: 16, ImgH: 8, DelayTicks: 15}); err == nil {
		t.Error("delay 15 accepted (reference path adds a tick)")
	}
	if _, err := Build(Params{ImgW: 16, ImgH: 8, DelayTicks: 1}); err == nil {
		t.Error("delay 1 accepted")
	}
	if _, err := Build(Params{ImgW: 16, ImgH: 8, Step: 20}); err == nil {
		t.Error("step beyond image accepted")
	}
	if _, err := Build(Params{ImgW: imgW, ImgH: imgH}); err != nil {
		t.Fatalf("default build failed: %v", err)
	}
}

type rig struct {
	app *App
	p   *corelet.Placement
	eng *chip.Model
}

func newRig(t *testing.T) *rig {
	t.Helper()
	app, err := Build(Params{ImgW: imgW, ImgH: imgH})
	if err != nil {
		t.Fatal(err)
	}
	side := 1
	for side*side < app.Net.NumCores() {
		side++
	}
	p, err := corelet.Place(app.Net, router.Mesh{W: side, H: side})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chip.New(p.Mesh, p.Configs)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{app: app, p: p, eng: eng}
}

// sweepBar injects a vertical bar at column x0 moving dx pixels every
// `period` ticks, for n steps, then runs out the pipeline and returns the
// per-output flow counts. (A moving horizontal bar uses dy.)
func (r *rig) sweepBar(t *testing.T, vertical bool, start, delta, period, steps int) []int {
	t.Helper()
	for s := 0; s < steps; s++ {
		pos := start + s*delta
		if vertical {
			if pos < 0 || pos >= imgW {
				continue
			}
			for y := 0; y < imgH; y++ {
				if err := r.p.Inject(r.eng, InputName, y*imgW+pos, s*period); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			if pos < 0 || pos >= imgH {
				continue
			}
			for x := 0; x < imgW; x++ {
				if err := r.p.Inject(r.eng, InputName, pos*imgW+x, s*period); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	r.eng.Run(steps*period + 24)
	counts := make([]int, r.app.NumOutputs())
	for _, s := range r.eng.DrainOutputs() {
		ref, ok := r.p.Decode(s.ID)
		if !ok || ref.Name != OutputName {
			continue
		}
		counts[ref.Index]++
	}
	return counts
}

// dirTotals sums each direction channel over the whole field.
func (r *rig) dirTotals(counts []int) [NumDirections]int {
	var totals [NumDirections]int
	for i, c := range counts {
		totals[i%NumDirections] += c
	}
	return totals
}

func TestRightwardMotionDetected(t *testing.T) {
	// A bar stepping +2 px every 8 ticks matches the default EMD tuning
	// exactly: the Right channel must dominate and Left stay near zero.
	r := newRig(t)
	counts := r.sweepBar(t, true, 2, 2, 8, 6)
	totals := r.dirTotals(counts)
	if totals[Right] == 0 {
		t.Fatalf("rightward motion undetected: %v", totals)
	}
	if totals[Left]*4 > totals[Right] {
		t.Fatalf("left channel %d not suppressed vs right %d", totals[Left], totals[Right])
	}
}

func TestLeftwardMotionDetected(t *testing.T) {
	r := newRig(t)
	counts := r.sweepBar(t, true, 13, -2, 8, 6)
	totals := r.dirTotals(counts)
	if totals[Left] == 0 {
		t.Fatalf("leftward motion undetected: %v", totals)
	}
	if totals[Right]*4 > totals[Left] {
		t.Fatalf("right channel %d not suppressed vs left %d", totals[Right], totals[Left])
	}
}

func TestVerticalMotionDetected(t *testing.T) {
	r := newRig(t)
	counts := r.sweepBar(t, false, 0, 2, 8, 4)
	totals := r.dirTotals(counts)
	if totals[Down] == 0 {
		t.Fatalf("downward motion undetected: %v", totals)
	}
	if totals[Up]*4 > totals[Down] {
		t.Fatalf("up channel %d not suppressed vs down %d", totals[Up], totals[Down])
	}
}

func TestStaticSceneQuiet(t *testing.T) {
	// A static flickering bar (re-presented at the same place) produces no
	// onset after the first step, so flow output stays near zero.
	r := newRig(t)
	counts := r.sweepBar(t, true, 8, 0, 8, 6)
	totals := r.dirTotals(counts)
	sum := totals[Right] + totals[Left] + totals[Up] + totals[Down]
	if sum > 6 { // allow the initial-onset transient only
		t.Fatalf("static scene produced %d flow spikes: %v", sum, totals)
	}
}

func TestWrongSpeedRejected(t *testing.T) {
	// Motion at half the tuned speed (2 px per 16 ticks) must excite the
	// Right channel far less than tuned motion does.
	r := newRig(t)
	tuned := r.dirTotals(r.sweepBar(t, true, 2, 2, 8, 6))[Right]
	r2 := newRig(t)
	slow := r2.dirTotals(r2.sweepBar(t, true, 2, 2, 16, 6))[Right]
	if slow*2 >= tuned {
		t.Fatalf("untuned speed response %d not well below tuned %d", slow, tuned)
	}
}

func TestFlowFieldLocalized(t *testing.T) {
	// Motion confined to the top half leaves bottom-half cells quiet.
	r := newRig(t)
	for s := 0; s < 6; s++ {
		pos := 2 + s*2
		if pos >= imgW {
			break
		}
		for y := 0; y < 4; y++ { // top half only
			if err := r.p.Inject(r.eng, InputName, y*imgW+pos, s*8); err != nil {
				t.Fatal(err)
			}
		}
	}
	r.eng.Run(6*8 + 24)
	counts := make([]int, r.app.NumOutputs())
	for _, s := range r.eng.DrainOutputs() {
		ref, ok := r.p.Decode(s.ID)
		if ok && ref.Name == OutputName {
			counts[ref.Index]++
		}
	}
	top, bottom := 0, 0
	for cy := 0; cy < r.app.CellsY; cy++ {
		for cx := 0; cx < r.app.CellsX; cx++ {
			s := 0
			for d := 0; d < NumDirections; d++ {
				s += counts[r.app.Index(cx, cy, d)]
			}
			if cy < r.app.CellsY/2 {
				top += s
			} else {
				bottom += s
			}
		}
	}
	if top == 0 {
		t.Fatal("no flow in the moving region")
	}
	if bottom > top/4 {
		t.Fatalf("static half fired %d vs moving half %d", bottom, top)
	}
}
