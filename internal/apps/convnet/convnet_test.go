package convnet

import (
	"math/rand"
	"testing"

	"truenorth/internal/apps/lsm"
)

const imgW, imgH = 14, 14 // conv out 12×12: tiles 2×2, pools 6×6

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Params{ImgW: 3, ImgH: 14}); err == nil {
		t.Error("too-small image accepted")
	}
	if _, err := Build(Params{ImgW: 15, ImgH: 14}); err == nil {
		t.Error("non-tiling conv output accepted")
	}
	bad := []Kernel{{Name: "big", W: [3][3]int8{{3}}}}
	if _, err := Build(Params{ImgW: imgW, ImgH: imgH, Kernels: bad}); err == nil {
		t.Error("weight 3 accepted")
	}
	many := make([]Kernel, 8) // 8×36 = 288 > 256 neurons
	if _, err := Build(Params{ImgW: imgW, ImgH: imgH, Kernels: many}); err == nil {
		t.Error("8 kernels accepted")
	}
	if _, err := Build(Params{ImgW: imgW, ImgH: imgH}); err != nil {
		t.Fatalf("default build failed: %v", err)
	}
}

func TestNetworkStructure(t *testing.T) {
	app, err := Build(Params{ImgW: imgW, ImgH: imgH})
	if err != nil {
		t.Fatal(err)
	}
	if app.OutW != 12 || app.OutH != 12 {
		t.Fatalf("conv output %dx%d, want 12x12", app.OutW, app.OutH)
	}
	if app.PoolW != 6 || app.PoolH != 6 {
		t.Fatalf("pool output %dx%d, want 6x6", app.PoolW, app.PoolH)
	}
	if app.NumOutputs() != 4*36 {
		t.Fatalf("outputs = %d, want 144", app.NumOutputs())
	}
	// Splitters + 4 conv tiles + pooling.
	if app.Net.NumCores() < 6 {
		t.Fatalf("cores = %d; stages missing", app.Net.NumCores())
	}
}

// glyph renders one of five 14×14 binary shape classes with positional
// jitter.
func glyph(class int, rng *rand.Rand) []bool {
	img := make([]bool, imgW*imgH)
	set := func(x, y int) {
		if x >= 0 && x < imgW && y >= 0 && y < imgH {
			img[y*imgW+x] = true
		}
	}
	jx, jy := rng.Intn(3)-1, rng.Intn(3)-1
	switch class {
	case 0: // horizontal bars
		for _, y := range []int{3, 7, 11} {
			for x := 1; x < imgW-1; x++ {
				set(x+jx, y+jy)
			}
		}
	case 1: // vertical bars
		for _, x := range []int{3, 7, 11} {
			for y := 1; y < imgH-1; y++ {
				set(x+jx, y+jy)
			}
		}
	case 2: // main diagonals
		for d := 0; d < imgW; d++ {
			set(d+jx, d+jy)
			set(d+jx+4, d+jy)
		}
	case 3: // cross
		for x := 1; x < imgW-1; x++ {
			set(x+jx, 7+jy)
		}
		for y := 1; y < imgH-1; y++ {
			set(7+jx, y+jy)
		}
	default: // square outline
		for x := 2; x < 12; x++ {
			set(x+jx, 2+jy)
			set(x+jx, 11+jy)
		}
		for y := 2; y < 12; y++ {
			set(2+jx, y+jy)
			set(11+jx, y+jy)
		}
	}
	// Salt noise.
	for i := 0; i < 4; i++ {
		set(rng.Intn(imgW), rng.Intn(imgH))
	}
	return img
}

func TestOrientationSelectivity(t *testing.T) {
	// Horizontal bars drive the horizontal-edge feature maps harder than
	// the vertical ones, and vice versa.
	rig, err := NewRig(Params{ImgW: imgW, ImgH: imgH})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	sumKernel := func(x []float64, k int) float64 {
		s := 0.0
		per := rig.App.PoolW * rig.App.PoolH
		for i := k * per; i < (k+1)*per; i++ {
			s += x[i]
		}
		return s
	}
	h, err := rig.Features(glyph(0, rng))
	if err != nil {
		t.Fatal(err)
	}
	v, err := rig.Features(glyph(1, rng))
	if err != nil {
		t.Fatal(err)
	}
	if sumKernel(h, 0) <= sumKernel(h, 1) {
		t.Fatalf("horizontal bars: horiz kernel %f not above vert %f", sumKernel(h, 0), sumKernel(h, 1))
	}
	if sumKernel(v, 1) <= sumKernel(v, 0) {
		t.Fatalf("vertical bars: vert kernel %f not above horiz %f", sumKernel(v, 1), sumKernel(v, 0))
	}
}

func TestBlankImageSilent(t *testing.T) {
	rig, err := NewRig(Params{ImgW: imgW, ImgH: imgH})
	if err != nil {
		t.Fatal(err)
	}
	x, err := rig.Features(make([]bool, imgW*imgH))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if v != 0 {
			t.Fatalf("pooled unit %d fired %f on a blank image", i, v)
		}
	}
}

func TestFeaturesSizeCheck(t *testing.T) {
	rig, err := NewRig(Params{ImgW: imgW, ImgH: imgH})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rig.Features(make([]bool, 10)); err == nil {
		t.Fatal("wrong image size accepted")
	}
}

func TestGlyphClassification(t *testing.T) {
	// End to end: spiking conv features + off-line perceptron classify
	// five shape classes well above the 0.2 chance level.
	if testing.Short() {
		t.Skip("multi-sample training in -short mode")
	}
	rig, err := NewRig(Params{ImgW: imgW, ImgH: imgH})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	const classes, trainN, testN = 5, 8, 4
	var trainX [][]float64
	var trainY []int
	for c := 0; c < classes; c++ {
		for i := 0; i < trainN; i++ {
			x, err := rig.Features(glyph(c, rng))
			if err != nil {
				t.Fatal(err)
			}
			trainX = append(trainX, x)
			trainY = append(trainY, c)
		}
	}
	clf := lsm.TrainReadout(trainX, trainY, classes, 40)
	correct, total := 0, 0
	for c := 0; c < classes; c++ {
		for i := 0; i < testN; i++ {
			x, err := rig.Features(glyph(c, rng))
			if err != nil {
				t.Fatal(err)
			}
			if clf.Predict(x) == c {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.8 {
		t.Fatalf("accuracy %.2f below 0.8 (chance 0.2)", acc)
	}
}
