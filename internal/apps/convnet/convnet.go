// Package convnet implements a spiking convolutional network, the first
// application class the paper lists among its demonstrations
// ("convolutional networks, liquid state machines, restricted Boltzmann
// machines..."): convolution feature maps, pooling, and an off-line-
// trained linear readout, all running as rate-coded corelets.
//
// Weights live in the axon types, as on real TrueNorth convnets: each
// conv core assigns its four types the values {+1, −1, +2, −2}, and a
// pixel that a kernel needs with weight w arrives on an axon of the
// matching type. Pixels fan out through splitter cores (one relay per
// (tile, weight-class) use), kernels are rectified by the neuron's
// threshold, and pooling sums 2×2 unit blocks. The classifier is trained
// off-line on pooled spike counts — the paper's workflow, with Compass
// standing in for the chip during training.
package convnet

import (
	"fmt"

	"truenorth/internal/chip"
	"truenorth/internal/core"
	"truenorth/internal/corelet"
	"truenorth/internal/neuron"
	"truenorth/internal/router"
)

// Architectural constants.
const (
	// KernelSize is the convolution kernel edge (3×3).
	KernelSize = 3
	// TileOut is the output-tile edge per conv core (6×6 output units).
	TileOut = 6
	// tileIn is the input footprint edge of one tile.
	tileIn = TileOut + KernelSize - 1
	// PoolSize is the pooling block edge.
	PoolSize = 2
)

// I/O group names.
const (
	InputName  = "pixels"
	OutputName = "pool"
)

// Kernel is a 3×3 integer filter with weights in {-2, -1, 0, 1, 2}.
type Kernel struct {
	Name string
	W    [KernelSize][KernelSize]int8
}

// EdgeKernels returns the default filter bank: four oriented edge
// detectors.
func EdgeKernels() []Kernel {
	return []Kernel{
		{Name: "horizontal", W: [3][3]int8{{1, 2, 1}, {0, 0, 0}, {-1, -2, -1}}},
		{Name: "vertical", W: [3][3]int8{{1, 0, -1}, {2, 0, -2}, {1, 0, -1}}},
		{Name: "diag", W: [3][3]int8{{2, 1, 0}, {1, 0, -1}, {0, -1, -2}}},
		{Name: "antidiag", W: [3][3]int8{{0, 1, 2}, {-1, 0, 1}, {-2, -1, 0}}},
	}
}

// Params configures the network.
type Params struct {
	// ImgW, ImgH are the input dimensions; the conv output (Img−2) must
	// tile into TileOut×TileOut blocks and then into PoolSize pools.
	ImgW, ImgH int
	// Kernels is the filter bank (nil selects EdgeKernels; at most 7 fit
	// a conv core's neuron budget).
	Kernels []Kernel
	// Threshold scales conv firing rate (default 8).
	Threshold int32
}

// App is a built convolutional network.
type App struct {
	// Net is the corelet network.
	Net *corelet.Net
	// OutW, OutH is the conv feature-map size; PoolW, PoolH the pooled
	// map size per kernel.
	OutW, OutH, PoolW, PoolH int
	// K is the kernel count.
	K int
	p Params
}

// NumOutputs returns the readout dimensionality: pooled units × kernels.
func (a *App) NumOutputs() int { return a.PoolW * a.PoolH * a.K }

// weightType maps a kernel weight to its axon type on conv cores.
func weightType(w int8) (uint8, bool) {
	switch w {
	case 1:
		return 0, true
	case -1:
		return 1, true
	case 2:
		return 2, true
	case -2:
		return 3, true
	default:
		return 0, false
	}
}

// convTypeWeights are the per-type signed weights of every conv neuron.
var convTypeWeights = [neuron.NumAxonTypes]int32{1, -1, 2, -2}

// Build constructs the network. Input group "pixels" has one pin per
// pixel; output group "pool" indexes (k*PoolH + py)*PoolW + px.
func Build(p Params) (*App, error) {
	if p.Kernels == nil {
		p.Kernels = EdgeKernels()
	}
	if p.Threshold == 0 {
		p.Threshold = 8
	}
	outW, outH := p.ImgW-KernelSize+1, p.ImgH-KernelSize+1
	if p.ImgW <= KernelSize || p.ImgH <= KernelSize {
		return nil, fmt.Errorf("convnet: image %dx%d too small for %d-wide kernels", p.ImgW, p.ImgH, KernelSize)
	}
	if outW%TileOut != 0 || outH%TileOut != 0 {
		return nil, fmt.Errorf("convnet: conv output %dx%d must tile into %d-wide blocks (choose ImgW,ImgH ≡ 2 mod 6)", outW, outH, TileOut)
	}
	if outW%PoolSize != 0 || outH%PoolSize != 0 {
		return nil, fmt.Errorf("convnet: conv output %dx%d must pool into %d-wide blocks", outW, outH, PoolSize)
	}
	k := len(p.Kernels)
	if k < 1 || k*TileOut*TileOut > core.NeuronsPerCore {
		return nil, fmt.Errorf("convnet: %d kernels exceed a conv core's %d neurons", k, core.NeuronsPerCore)
	}
	for _, kn := range p.Kernels {
		for _, row := range kn.W {
			for _, w := range row {
				if _, ok := weightType(w); !ok && w != 0 {
					return nil, fmt.Errorf("convnet: kernel %q weight %d outside {-2..2}", kn.Name, w)
				}
			}
		}
	}
	app := &App{
		Net:  corelet.NewNet(),
		OutW: outW, OutH: outH,
		PoolW: outW / PoolSize, PoolH: outH / PoolSize,
		K: k, p: p,
	}
	n := app.Net
	tilesX, tilesY := outW/TileOut, outH/TileOut

	// Which weight classes does each pixel need, per tile covering it?
	// A pixel may appear at any kernel offset, so conservatively give
	// every pixel every weight class each tile needs: count the distinct
	// classes used by the filter bank.
	classes := map[uint8]bool{}
	for _, kn := range p.Kernels {
		for _, row := range kn.W {
			for _, w := range row {
				if tpe, ok := weightType(w); ok {
					classes[tpe] = true
				}
			}
		}
	}
	nClasses := len(classes)

	// Per-pixel fanout: (tiles covering the pixel) × weight classes.
	fans := make([]int, p.ImgW*p.ImgH)
	tileOfOut := func(ox, oy int) (int, int) { return ox / TileOut, oy / TileOut }
	pixelTiles := make([][]int, p.ImgW*p.ImgH) // tile indices per pixel
	for py := 0; py < p.ImgH; py++ {
		for px := 0; px < p.ImgW; px++ {
			seen := map[int]bool{}
			// Output units whose RF contains (px, py):
			for oy := py - KernelSize + 1; oy <= py; oy++ {
				for ox := px - KernelSize + 1; ox <= px; ox++ {
					if ox < 0 || oy < 0 || ox >= outW || oy >= outH {
						continue
					}
					tx, ty := tileOfOut(ox, oy)
					ti := ty*tilesX + tx
					seen[ti] = true
				}
			}
			idx := py*p.ImgW + px
			for ti := range seen {
				pixelTiles[idx] = append(pixelTiles[idx], ti)
			}
			fans[idx] = len(seen) * nClasses
			if fans[idx] == 0 {
				fans[idx] = 1 // corner pixels outside every RF still get a pin
			}
		}
	}
	fan, err := corelet.AddFanoutVar(n, fans)
	if err != nil {
		return nil, err
	}
	for _, pin := range fan.Pins {
		n.AddInput(InputName, pin.Core, pin.Axon)
	}
	next := make([]int, len(fans))
	takeRelay := func(pix int) corelet.Handle {
		h := fan.Outs[pix][next[pix]]
		next[pix]++
		return h
	}

	// Conv cores: one per tile. Axon layout: for footprint pixel (fx, fy)
	// and class c, axon index = (fy*tileIn+fx)*nClasses + classIdx.
	classList := make([]uint8, 0, nClasses)
	for c := uint8(0); c < neuron.NumAxonTypes; c++ {
		if classes[c] {
			classList = append(classList, c)
		}
	}
	classIdx := map[uint8]int{}
	for i, c := range classList {
		classIdx[c] = i
	}
	convUnit := make([][]corelet.Handle, k) // [kernel][outIdx]
	for ki := range convUnit {
		convUnit[ki] = make([]corelet.Handle, outW*outH)
	}
	for ty := 0; ty < tilesY; ty++ {
		for tx := 0; tx < tilesX; tx++ {
			cc := n.AddCore()
			// Wire the tile's input footprint.
			baseX, baseY := tx*TileOut, ty*TileOut
			for fy := 0; fy < tileIn; fy++ {
				for fx := 0; fx < tileIn; fx++ {
					pix := (baseY+fy)*p.ImgW + baseX + fx
					for _, c := range classList {
						a := (fy*tileIn+fx)*nClasses + classIdx[c]
						n.SetAxonType(cc, a, c)
						h := takeRelay(pix)
						n.Connect(h.Core, h.Neuron, cc, a, 1)
					}
				}
			}
			// Conv neurons: one per (kernel, output unit in tile).
			for ki, kn := range p.Kernels {
				for uy := 0; uy < TileOut; uy++ {
					for ux := 0; ux < TileOut; ux++ {
						j := n.AllocNeuron(cc)
						n.SetNeuron(cc, j, neuron.Params{
							Weights:      convTypeWeights,
							Threshold:    p.Threshold,
							Reset:        neuron.ResetSubtract,
							NegThreshold: 4 * p.Threshold,
							NegSaturate:  true,
						})
						for dy := 0; dy < KernelSize; dy++ {
							for dx := 0; dx < KernelSize; dx++ {
								w := kn.W[dy][dx]
								tpe, ok := weightType(w)
								if !ok {
									continue
								}
								a := ((uy+dy)*tileIn+ux+dx)*nClasses + classIdx[tpe]
								n.SetSynapse(cc, a, j)
							}
						}
						ox, oy := baseX+ux, baseY+uy
						convUnit[ki][oy*outW+ox] = corelet.Handle{Core: cc, Neuron: j}
					}
				}
			}
		}
	}

	// Pooling cores: each pool neuron sums its 2×2 conv units.
	unitsPerPoolCore := core.AxonsPerCore / (PoolSize * PoolSize)
	var pc corelet.CoreID
	inPC := unitsPerPoolCore
	for ki := 0; ki < k; ki++ {
		for py := 0; py < app.PoolH; py++ {
			for px := 0; px < app.PoolW; px++ {
				if inPC == unitsPerPoolCore {
					pc = n.AddCore()
					inPC = 0
				}
				inPC++
				j := n.AllocNeuron(pc)
				n.SetNeuron(pc, j, neuron.Accumulator(1, 0, 2))
				for dy := 0; dy < PoolSize; dy++ {
					for dx := 0; dx < PoolSize; dx++ {
						a := n.AllocAxon(pc)
						n.SetSynapse(pc, a, j)
						u := convUnit[ki][(py*PoolSize+dy)*outW+px*PoolSize+dx]
						n.Connect(u.Core, u.Neuron, pc, a, 1)
					}
				}
				n.ConnectOutput(pc, j, OutputName, (ki*app.PoolH+py)*app.PoolW+px)
			}
		}
	}
	return app, nil
}

// Rig is a placed, runnable convnet with frame-level feature extraction.
type Rig struct {
	App *App
	P   *corelet.Placement
	Eng *chip.Model
	// TicksPerSample is the rate-coding window per presented image.
	TicksPerSample int
	// SpikesPerPixel is the transduction rate for a full-intensity pixel.
	SpikesPerPixel int
}

// NewRig builds, places, and instantiates the network.
func NewRig(p Params) (*Rig, error) {
	app, err := Build(p)
	if err != nil {
		return nil, err
	}
	side := 1
	for side*side < app.Net.NumCores() {
		side++
	}
	pl, err := corelet.PlaceGreedy(app.Net, router.Mesh{W: side, H: side})
	if err != nil {
		return nil, err
	}
	eng, err := chip.New(pl.Mesh, pl.Configs)
	if err != nil {
		return nil, err
	}
	return &Rig{App: app, P: pl, Eng: eng, TicksPerSample: 24, SpikesPerPixel: 8}, nil
}

// Features presents a binary image (row-major, true = lit) to a freshly
// reset network and returns the pooled spike counts.
func (r *Rig) Features(img []bool) ([]float64, error) {
	if len(img) != r.App.p.ImgW*r.App.p.ImgH {
		return nil, fmt.Errorf("convnet: image has %d pixels, want %d", len(img), r.App.p.ImgW*r.App.p.ImgH)
	}
	r.Eng.Reset(true)
	for pix, lit := range img {
		if !lit {
			continue
		}
		phase := (pix * 127) % r.TicksPerSample
		for s := 0; s < r.SpikesPerPixel; s++ {
			off := (s*r.TicksPerSample/r.SpikesPerPixel + phase) % r.TicksPerSample
			if err := r.P.Inject(r.Eng, InputName, pix, off); err != nil {
				return nil, err
			}
		}
	}
	r.Eng.Run(r.TicksPerSample + 8)
	counts := make([]float64, r.App.NumOutputs())
	for _, s := range r.Eng.DrainOutputs() {
		ref, ok := r.P.Decode(s.ID)
		if !ok || ref.Name != OutputName {
			continue
		}
		counts[ref.Index]++
	}
	return counts, nil
}
