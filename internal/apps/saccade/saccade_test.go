package saccade

import (
	"testing"

	"truenorth/internal/chip"
	"truenorth/internal/corelet"
	"truenorth/internal/router"
	"truenorth/internal/vision"
)

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Params{ImgW: 0, ImgH: 8}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Build(Params{ImgW: 9, ImgH: 8}); err == nil {
		t.Error("non-tiling width accepted")
	}
	if _, err := Build(Params{ImgW: 128, ImgH: 64, RegionSize: 8}); err == nil {
		t.Error("128 regions accepted (max 64 channels)")
	}
	if _, err := Build(Params{ImgW: 16, ImgH: 16, IORStrength: 300}); err == nil {
		t.Error("IOR strength 300 accepted (9-bit weights)")
	}
	if _, err := Build(Params{ImgW: 32, ImgH: 32, RegionSize: 32}); err == nil {
		t.Error("region larger than a core's axons accepted")
	}
}

func TestRegionGeometry(t *testing.T) {
	app, err := Build(Params{ImgW: 32, ImgH: 16})
	if err != nil {
		t.Fatal(err)
	}
	if app.RegionsX != 4 || app.RegionsY != 2 {
		t.Fatalf("regions = %d×%d, want 4×2", app.RegionsX, app.RegionsY)
	}
	if app.RegionIndex(3, 1) != 7 {
		t.Fatalf("RegionIndex(3,1) = %d", app.RegionIndex(3, 1))
	}
}

type runner struct {
	app *App
	p   *corelet.Placement
	eng *chip.Model
	tr  vision.Transducer
}

func newRunner(t *testing.T, w, h int, p Params) *runner {
	t.Helper()
	p.ImgW, p.ImgH = w, h
	app, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	side := 1
	for side*side < app.Net.NumCores() {
		side++
	}
	pl, err := corelet.Place(app.Net, router.Mesh{W: side, H: side})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chip.New(pl.Mesh, pl.Configs)
	if err != nil {
		t.Fatal(err)
	}
	return &runner{app: app, p: pl, eng: eng, tr: vision.DefaultTransducer()}
}

func (r *runner) frame(t *testing.T, f *vision.Frame) []int {
	t.Helper()
	if _, err := r.tr.InjectFrame(r.eng, r.p, InputName, f, 0); err != nil {
		t.Fatal(err)
	}
	r.eng.Run(r.tr.TicksPerFrame)
	return vision.CountByName(r.p, r.eng.DrainOutputs(), OutputName, r.app.NumRegions())
}

// blobFrame lights one region fully at the given intensity.
func blobFrame(w, h, regionSize, region, rx int, v uint8) *vision.Frame {
	f := vision.NewFrame(w, h)
	gx0, gy0 := (region%rx)*regionSize, (region/rx)*regionSize
	for y := gy0; y < gy0+regionSize; y++ {
		for x := gx0; x < gx0+regionSize; x++ {
			f.Set(x, y, v)
		}
	}
	return f
}

func TestWinnerIsMostSalientRegion(t *testing.T) {
	// Disable IOR (huge threshold) to observe pure WTA selection.
	r := newRunner(t, 32, 16, Params{IORThreshold: 10000})
	f := blobFrame(32, 16, 8, 2, 4, 255)
	// A weaker distractor in region 5.
	g := blobFrame(32, 16, 8, 5, 4, 90)
	for y := 0; y < 16; y++ {
		for x := 0; x < 32; x++ {
			if v := g.At(x, y); v > 0 {
				f.Set(x, y, v)
			}
		}
	}
	counts := make([]int, r.app.NumRegions())
	for k := 0; k < 4; k++ {
		for i, c := range r.frame(t, f) {
			counts[i] += c
		}
	}
	if counts[2] == 0 {
		t.Fatal("strongest region never selected")
	}
	for i, c := range counts {
		if i != 2 && c >= counts[2] {
			t.Fatalf("region %d (%d) not suppressed below winner region 2 (%d): %v", i, c, counts[2], counts)
		}
	}
}

func TestQuietSceneNoSelection(t *testing.T) {
	r := newRunner(t, 32, 16, Params{})
	blank := vision.NewFrame(32, 16)
	total := 0
	for k := 0; k < 3; k++ {
		for _, c := range r.frame(t, blank) {
			total += c
		}
	}
	if total != 0 {
		t.Fatalf("blank scene produced %d selections", total)
	}
}

func TestInhibitionOfReturnPromotesExploration(t *testing.T) {
	// Two equally salient regions: with IOR active, selection must visit
	// both over time (the paper: IOR "promotes map exploration").
	r := newRunner(t, 32, 16, Params{IORThreshold: 4})
	f := blobFrame(32, 16, 8, 1, 4, 220)
	g := blobFrame(32, 16, 8, 6, 4, 220)
	for y := 0; y < 16; y++ {
		for x := 0; x < 32; x++ {
			if v := g.At(x, y); v > 0 {
				f.Set(x, y, v)
			}
		}
	}
	visited := map[int]bool{}
	for k := 0; k < 12; k++ {
		counts := r.frame(t, f)
		best, bestC := -1, 0
		for i, c := range counts {
			if c > bestC {
				best, bestC = i, c
			}
		}
		if best >= 0 {
			visited[best] = true
		}
	}
	if !visited[1] || !visited[6] {
		t.Fatalf("IOR failed to explore both salient regions: visited %v", visited)
	}
}

func TestIORSuppressesPersistentWinner(t *testing.T) {
	// A single dominant region: with aggressive IOR its selection rate
	// must drop between the first and later frames (attention moves away
	// even with nothing else to see).
	r := newRunner(t, 32, 16, Params{IORThreshold: 3, IORStrength: 120})
	f := blobFrame(32, 16, 8, 3, 4, 255)
	first := r.frame(t, f)[3]
	var later int
	for k := 0; k < 3; k++ {
		later = r.frame(t, f)[3]
	}
	if first == 0 {
		t.Fatal("winner never selected at onset")
	}
	if later >= first {
		t.Fatalf("IOR did not reduce selection: first frame %d, later frame %d", first, later)
	}
}

func TestNetworkSize(t *testing.T) {
	app, err := Build(Params{ImgW: 64, ImgH: 64})
	if err != nil {
		t.Fatal(err)
	}
	// 64 regions → 16 pool cores (4 regions of 64 px each) + 1 WTA core.
	if got := app.Net.NumCores(); got != 17 {
		t.Fatalf("cores = %d, want 17", got)
	}
	if app.NumRegions() != 64 {
		t.Fatalf("regions = %d, want 64", app.NumRegions())
	}
}
