// Package saccade implements the paper's saccade application (Section
// IV-B): "a saccade map selects regions of interest by applying a
// winner-take-all mechanism to the saliency map, followed by temporal
// inhibition-of-return to promote map exploration."
//
// The corelet pools pixel activity into regions, then runs a recurrent
// winner-take-all circuit on a single core: each region channel excites
// itself from its pooled input and, through an on-core relay loop,
// inhibits every rival whenever it fires. A per-channel inhibition-of-
// return (IOR) accumulator counts the winner's spikes and, at threshold,
// delivers a large suppressive kick back to its own channel — knocking the
// current winner out so attention saccades to the next most salient
// region.
//
// The whole competition — mutual inhibition, self-excitation, and IOR —
// is recurrent spiking dynamics on the crossbar; the only off-chip step is
// reading which channel's output sink fired.
package saccade

import (
	"fmt"

	"truenorth/internal/core"
	"truenorth/internal/corelet"
	"truenorth/internal/neuron"
)

// InputName and OutputName are the placement I/O group names.
const (
	InputName  = "pixels"
	OutputName = "saccade"
)

// Params configures the saccade system.
type Params struct {
	// ImgW, ImgH are the frame dimensions.
	ImgW, ImgH int
	// RegionSize is the pooling region edge in pixels (default 8). The
	// region count (ImgW/RegionSize)×(ImgH/RegionSize) must be ≤ 64, the
	// WTA core's channel capacity.
	RegionSize int
	// IORThreshold is the number of winner spikes before inhibition of
	// return strikes (default 6).
	IORThreshold int32
	// IORStrength is the suppressive kick magnitude (default 60).
	IORStrength int32
}

// App is a built saccade system.
type App struct {
	// Net is the corelet network.
	Net *corelet.Net
	// RegionsX, RegionsY is the saccade map size.
	RegionsX, RegionsY int
	p                  Params
}

// NumRegions returns the channel count.
func (a *App) NumRegions() int { return a.RegionsX * a.RegionsY }

// RegionIndex maps region coordinates to the output index.
func (a *App) RegionIndex(rx, ry int) int { return ry*a.RegionsX + rx }

// Build constructs the saccade network. Input group "pixels" has one pin
// per pixel (row-major); output group "saccade" has one sink per region,
// firing when that region is the currently selected focus.
func Build(p Params) (*App, error) {
	if p.RegionSize == 0 {
		p.RegionSize = 8
	}
	if p.IORThreshold == 0 {
		p.IORThreshold = 6
	}
	if p.IORStrength == 0 {
		p.IORStrength = 60
	}
	if p.ImgW <= 0 || p.ImgH <= 0 || p.ImgW%p.RegionSize != 0 || p.ImgH%p.RegionSize != 0 {
		return nil, fmt.Errorf("saccade: image %dx%d must tile into %d-pixel regions", p.ImgW, p.ImgH, p.RegionSize)
	}
	if p.IORThreshold < 1 || p.IORStrength < 1 || p.IORStrength > 255 {
		return nil, fmt.Errorf("saccade: IOR threshold %d / strength %d out of range", p.IORThreshold, p.IORStrength)
	}
	rx, ry := p.ImgW/p.RegionSize, p.ImgH/p.RegionSize
	k := rx * ry
	if k > core.AxonsPerCore/4 {
		return nil, fmt.Errorf("saccade: %d regions exceed the WTA core's %d channels", k, core.AxonsPerCore/4)
	}
	app := &App{Net: corelet.NewNet(), RegionsX: rx, RegionsY: ry, p: p}
	n := app.Net

	// Stage 1: region pooling. Each region accumulator fires once per 8
	// pixel events in its region.
	pixPerRegion := p.RegionSize * p.RegionSize
	regionsPerCore := core.AxonsPerCore / pixPerRegion
	if regionsPerCore == 0 {
		return nil, fmt.Errorf("saccade: region size %d exceeds one core's axons", p.RegionSize)
	}
	pooled := make([]corelet.Handle, k)
	pixelPin := make([]corelet.InputPin, p.ImgW*p.ImgH)
	var pool corelet.CoreID
	inPool := regionsPerCore
	for r := 0; r < k; r++ {
		if inPool == regionsPerCore {
			pool = n.AddCore()
			inPool = 0
		}
		inPool++
		// Pooling threshold keeps the region rate below the one-spike-per-
		// tick ceiling (a fully lit 64-pixel region at 16 spikes/frame is
		// ~31 events/tick → ~0.97 spikes/tick), preserving rank order
		// between regions of different salience.
		j := n.AllocNeuron(pool)
		n.SetNeuron(pool, j, neuron.Accumulator(1, 0, 32))
		pooled[r] = corelet.Handle{Core: pool, Neuron: j}
		gx0, gy0 := (r%rx)*p.RegionSize, (r/rx)*p.RegionSize
		for q := 0; q < pixPerRegion; q++ {
			a := n.AllocAxon(pool)
			n.SetSynapse(pool, a, j)
			px := gx0 + q%p.RegionSize
			py := gy0 + q/p.RegionSize
			pixelPin[py*p.ImgW+px] = corelet.InputPin{Core: pool, Axon: a}
		}
	}
	for _, pin := range pixelPin {
		n.AddInput(InputName, pin.Core, pin.Axon)
	}

	// Stage 2: the WTA core. Per channel: axons IN (type 0), M (type 3,
	// the channel's own spike loop), I (type 1, rival inhibition), R
	// (type 2, IOR kick). Neurons: main, relayOut, relayInhib, IOR.
	wta := n.AddCore()
	axIN := func(ch int) int { return 4 * ch }
	axM := func(ch int) int { return 4*ch + 1 }
	axI := func(ch int) int { return 4*ch + 2 }
	axR := func(ch int) int { return 4*ch + 3 }
	for ch := 0; ch < k; ch++ {
		n.SetAxonType(wta, axIN(ch), 0)
		n.SetAxonType(wta, axM(ch), 3)
		n.SetAxonType(wta, axI(ch), 1)
		n.SetAxonType(wta, axR(ch), 2)
	}
	mains := make([]int, k)
	for ch := 0; ch < k; ch++ {
		// Main channel neuron: excited by its pooled input, inhibited by
		// rivals (−4 per rival spike) and by its own IOR kick.
		main := n.AllocNeuron(wta)
		n.SetNeuron(wta, main, neuron.Params{
			Weights:      [neuron.NumAxonTypes]int32{2, -8, -p.IORStrength, 0},
			Threshold:    8,
			Reset:        neuron.ResetToV,
			NegThreshold: p.IORStrength + 20,
			NegSaturate:  true,
		})
		// Staggered initial potentials break the symmetry between equally
		// salient regions, so exactly one channel wins first and IOR then
		// rotates the focus (otherwise equal channels fire in lockstep).
		n.SetInitV(wta, main, int32(ch*3)%7)
		mains[ch] = main
		n.SetSynapse(wta, axIN(ch), main)
		n.Connect(pooled[ch].Core, pooled[ch].Neuron, wta, axIN(ch), 1)
		// The main's single output feeds its loop axon M.
		n.Connect(wta, main, wta, axM(ch), 1)

		// relayOut: copies the channel's spikes to the external output.
		relayOut := n.AllocNeuron(wta)
		n.SetNeuron(wta, relayOut, neuron.Params{
			Weights:   [neuron.NumAxonTypes]int32{0, 0, 0, 1},
			Threshold: 1,
			Reset:     neuron.ResetToV,
		})
		n.SetSynapse(wta, axM(ch), relayOut)
		n.ConnectOutput(wta, relayOut, OutputName, ch)

		// relayInhib: broadcasts the spike onto the rival-inhibition axon.
		relayInhib := n.AllocNeuron(wta)
		n.SetNeuron(wta, relayInhib, neuron.Params{
			Weights:   [neuron.NumAxonTypes]int32{0, 0, 0, 1},
			Threshold: 1,
			Reset:     neuron.ResetToV,
		})
		n.SetSynapse(wta, axM(ch), relayInhib)
		n.Connect(wta, relayInhib, wta, axI(ch), 1)

		// IOR accumulator: counts the winner's spikes, then kicks back.
		ior := n.AllocNeuron(wta)
		n.SetNeuron(wta, ior, neuron.Params{
			Weights:   [neuron.NumAxonTypes]int32{0, 0, 0, 1},
			Threshold: p.IORThreshold,
			Reset:     neuron.ResetToV,
		})
		n.SetSynapse(wta, axM(ch), ior)
		n.Connect(wta, ior, wta, axR(ch), 1)
	}
	// Rival inhibition: channel ch's I axon hits every other main.
	for ch := 0; ch < k; ch++ {
		for other := 0; other < k; other++ {
			if other != ch {
				n.SetSynapse(wta, axI(ch), mains[other])
			}
		}
		// IOR kick hits only its own main.
		n.SetSynapse(wta, axR(ch), mains[ch])
	}
	return app, nil
}
