package hmm

import (
	"math/rand"
	"testing"
)

// weather returns the classic sticky 2-state HMM: Sunny/Rainy with
// distinct observation profiles (0=walk, 1=shop, 2=clean).
func weather() Model {
	return Model{
		A: [][]float64{
			{0.85, 0.15},
			{0.15, 0.85},
		},
		B: [][]float64{
			{0.7, 0.25, 0.05}, // Sunny: mostly walk
			{0.05, 0.25, 0.7}, // Rainy: mostly clean
		},
		Pi: []float64{0.5, 0.5},
	}
}

func TestModelValidate(t *testing.T) {
	if err := weather().Validate(); err != nil {
		t.Fatalf("weather model invalid: %v", err)
	}
	bad := weather()
	bad.A[0][0] = 0.5 // row no longer sums to 1
	if err := bad.Validate(); err == nil {
		t.Fatal("non-stochastic row accepted")
	}
	neg := weather()
	neg.B[0][0] = -0.1
	if err := neg.Validate(); err == nil {
		t.Fatal("negative probability accepted")
	}
}

func TestForwardReference(t *testing.T) {
	m := weather()
	// After a long run of "clean" observations, Rainy dominates.
	beliefs := m.Forward([]int{2, 2, 2, 2, 2})
	final := beliefs[len(beliefs)-1]
	if final[1] < 0.9 {
		t.Fatalf("P(Rainy) = %.2f after five cleans, want > 0.9", final[1])
	}
	// And a long run of "walk" flips it.
	beliefs = m.Forward([]int{2, 2, 0, 0, 0, 0})
	final = beliefs[len(beliefs)-1]
	if final[0] < 0.9 {
		t.Fatalf("P(Sunny) = %.2f after four walks, want > 0.9", final[0])
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Params{Model: Model{}}); err == nil {
		t.Error("empty model accepted")
	}
	big := Model{A: make([][]float64, 20), B: make([][]float64, 20), Pi: make([]float64, 20)}
	for i := range big.A {
		big.A[i] = make([]float64, 20)
		big.A[i][i] = 1
		big.B[i] = make([]float64, 20)
		big.B[i][i] = 1
	}
	big.Pi[0] = 1
	if _, err := Build(Params{Model: big}); err == nil {
		t.Error("20-state model accepted")
	}
	if _, err := Build(Params{Model: weather()}); err != nil {
		t.Fatalf("weather build failed: %v", err)
	}
}

func TestQuantize(t *testing.T) {
	for _, c := range []struct {
		p float64
		w int32
	}{{0.9, 4}, {0.7, 3}, {0.25, 2}, {0.1, 1}, {0.01, 0}} {
		if got := quantize(c.p); got != c.w {
			t.Errorf("quantize(%.2f) = %d, want %d", c.p, got, c.w)
		}
	}
}

func TestFilterTracksUnambiguousRegimes(t *testing.T) {
	// Alternating regimes of strongly indicative observations: the
	// spiking filter's argmax must match the exact forward filter's.
	rig, err := NewRig(Params{Model: weather(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	obs := []int{0, 0, 0, 0, 2, 2, 2, 2, 0, 0, 0, 0, 2, 2, 2, 2}
	_, est, err := rig.Filter(obs)
	if err != nil {
		t.Fatal(err)
	}
	ref := weather().Forward(obs)
	agree := 0
	for t2 := range obs {
		want := 0
		if ref[t2][1] > ref[t2][0] {
			want = 1
		}
		if est[t2] == want {
			agree++
		}
	}
	if agree < len(obs)*3/4 {
		t.Fatalf("spiking filter agreed with the exact filter on %d/%d steps", agree, len(obs))
	}
}

func TestFilterStickyUnderAmbiguity(t *testing.T) {
	// "shop" (symbol 1) is uninformative; with sticky transitions the
	// belief should persist through a short ambiguous stretch.
	rig, err := NewRig(Params{Model: weather(), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	obs := []int{2, 2, 2, 1, 1, 2}
	_, est, err := rig.Filter(obs)
	if err != nil {
		t.Fatal(err)
	}
	// The rate-coded belief may flip transiently on one ambiguous step
	// (the exact filter holds Rainy throughout); require at most one
	// transient and a Rainy estimate once evidence returns.
	flips := 0
	for t2 := 2; t2 < len(obs); t2++ {
		if est[t2] != 1 {
			flips++
		}
	}
	if flips > 1 {
		t.Fatalf("%d non-Rainy steps in the sticky stretch: %v", flips, est)
	}
	if est[len(obs)-1] != 1 {
		t.Fatalf("final estimate %d, want Rainy: %v", est[len(obs)-1], est)
	}
}

func TestFilterAccuracyOnSampledSequences(t *testing.T) {
	// Sample state/observation paths from the model and compare the
	// spiking filter's estimates against the true hidden states.
	if testing.Short() {
		t.Skip("sampled-sequence accuracy in -short mode")
	}
	m := weather()
	rig, err := NewRig(Params{Model: m, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	correct, total := 0, 0
	for trial := 0; trial < 4; trial++ {
		state := 0
		if rng.Float64() < 0.5 {
			state = 1
		}
		var obs, truth []int
		for t2 := 0; t2 < 12; t2++ {
			truth = append(truth, state)
			o := sample(rng, m.B[state])
			obs = append(obs, o)
			state = sample(rng, m.A[state])
		}
		_, est, err := rig.Filter(obs)
		if err != nil {
			t.Fatal(err)
		}
		for t2 := 1; t2 < len(obs); t2++ { // skip the cold-start step
			if est[t2] == truth[t2] {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.7 {
		t.Fatalf("state-tracking accuracy %.2f below 0.7 (chance 0.5)", acc)
	}
}

func TestFilterRejectsBadSymbol(t *testing.T) {
	rig, err := NewRig(Params{Model: weather(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rig.Filter([]int{0, 5}); err == nil {
		t.Fatal("out-of-range symbol accepted")
	}
}

func sample(rng *rand.Rand, dist []float64) int {
	r := rng.Float64()
	acc := 0.0
	for i, p := range dist {
		acc += p
		if r < acc {
			return i
		}
	}
	return len(dist) - 1
}
