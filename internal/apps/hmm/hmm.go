// Package hmm implements hidden-Markov-model state filtering, another of
// the paper's demonstrated application classes ("hidden Markov models" —
// Section I, Fig. 2): a spiking approximation of the forward recursion
//
//	belief'(j) ∝ Σ_i belief(i)·A[i][j] · B[j][o]
//
// with beliefs rate-coded by a state population, transitions carried by
// recurrent connections whose strengths quantize A to the core's axon-type
// weights, emissions injected per observation symbol with strengths
// quantizing B, and a global inhibitory neuron providing the subtractive
// normalization that keeps total belief bounded. Reading out the most
// active state per observation window gives the filtered state estimate,
// which the tests compare against the exact floating-point forward
// algorithm.
package hmm

import (
	"fmt"

	"truenorth/internal/chip"
	"truenorth/internal/corelet"
	"truenorth/internal/neuron"
	"truenorth/internal/router"
)

// I/O group names.
const (
	ObsName   = "obs"
	StateName = "state"
)

// Model is a discrete HMM.
type Model struct {
	// A is the transition matrix: A[i][j] = P(next=j | cur=i).
	A [][]float64
	// B is the emission matrix: B[j][o] = P(obs=o | state=j).
	B [][]float64
	// Pi is the initial distribution.
	Pi []float64
}

// States and Symbols return the model dimensions.
func (m Model) States() int  { return len(m.A) }
func (m Model) Symbols() int { return len(m.B[0]) }

// Validate checks stochasticity.
func (m Model) Validate() error {
	n := m.States()
	if n == 0 || len(m.B) != n || len(m.Pi) != n {
		return fmt.Errorf("hmm: inconsistent dimensions")
	}
	rows := append(append([][]float64{}, m.A...), m.B...)
	rows = append(rows, m.Pi)
	for _, row := range rows {
		sum := 0.0
		for _, v := range row {
			if v < 0 {
				return fmt.Errorf("hmm: negative probability %f", v)
			}
			sum += v
		}
		if sum < 0.99 || sum > 1.01 {
			return fmt.Errorf("hmm: row sums to %f, want 1", sum)
		}
	}
	return nil
}

// Forward runs the exact floating-point forward recursion and returns the
// filtered distribution after each observation — the reference the spiking
// implementation approximates.
func (m Model) Forward(obs []int) [][]float64 {
	n := m.States()
	belief := append([]float64(nil), m.Pi...)
	out := make([][]float64, len(obs))
	for t, o := range obs {
		next := make([]float64, n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				next[j] += belief[i] * m.A[i][j]
			}
			next[j] *= m.B[j][o]
		}
		norm := 0.0
		for _, v := range next {
			norm += v
		}
		if norm > 0 {
			for j := range next {
				next[j] /= norm
			}
		}
		belief = next
		out[t] = append([]float64(nil), belief...)
	}
	return out
}

// Params configures the spiking filter.
type Params struct {
	// Model is the HMM (≤ 16 states, ≤ 16 symbols).
	Model Model
	// Window is the number of ticks per observation step (default 20).
	Window int
	// Drive is the spikes injected per observation symbol per window
	// (default 12).
	Drive int
	// Seed seeds the core PRNG.
	Seed uint16
}

// App is a built spiking HMM filter.
type App struct {
	// Net is the corelet network.
	Net *corelet.Net
	p   Params
}

// quantize maps a probability to a small integer weight (0..4): the
// axon-type-constrained approximation of A and B.
func quantize(p float64) int32 {
	switch {
	case p >= 0.75:
		return 4
	case p >= 0.4:
		return 3
	case p >= 0.2:
		return 2
	case p >= 0.05:
		return 1
	default:
		return 0
	}
}

// Build constructs the filter. Input "obs" has one pin per symbol; output
// "state" one sink per state.
func Build(p Params) (*App, error) {
	if err := p.Model.Validate(); err != nil {
		return nil, err
	}
	if p.Window == 0 {
		p.Window = 20
	}
	if p.Drive == 0 {
		p.Drive = 12
	}
	n := p.Model.States()
	m := p.Model.Symbols()
	if n > 16 || m > 16 {
		return nil, fmt.Errorf("hmm: %d states / %d symbols exceed the single-core budget (16 each)", n, m)
	}
	app := &App{Net: corelet.NewNet(), p: p}
	net := app.Net

	// Everything lives on one core plus a relay fanout stage.
	// Axon budget: n states × (transition-weight classes ≤ 3) for
	// recurrence + m symbols × (emission classes ≤ 3) + 1 inhibition.
	sc := net.AddCore()
	net.SetSeed(sc, p.Seed|1)

	// Weight classes available on the state core: types 0,1,2 carry +1,
	// +2, +4; type 3 carries the normalizing inhibition −3.
	weights := [neuron.NumAxonTypes]int32{1, 2, 4, -3}
	classOf := func(w int32) uint8 {
		switch w {
		case 1:
			return 0
		case 2:
			return 1
		default:
			return 2 // 3 and 4 share the +4 class; quantize() keeps 3 rare
		}
	}

	// State neurons.
	states := make([]int, n)
	for j := 0; j < n; j++ {
		states[j] = net.AllocNeuron(sc)
		net.SetNeuron(sc, states[j], neuron.Params{
			Weights:       weights,
			Leak:          -1, // beliefs decay between evidence
			Threshold:     6,
			ThresholdMask: 0x03,
			Reset:         neuron.ResetToV,
			NegThreshold:  12,
			NegSaturate:   true,
		})
	}
	// State neurons must both report AND recur: each drives a two-way
	// relay fanout — relay 0 reports, relay 1 recurs.
	fan, err := corelet.AddFanout(net, n, 2)
	if err != nil {
		return nil, err
	}
	for j := 0; j < n; j++ {
		net.Connect(sc, states[j], fan.Pins[j].Core, fan.Pins[j].Axon, 1)
		net.ConnectOutput(fan.Outs[j][0].Core, fan.Outs[j][0].Neuron, StateName, j)
	}

	// Recurrent transition axons: state i's recurrence relay drives one
	// axon per used weight class; the axon connects to the states j with
	// that quantized A[i][j]. A relay has a single target, so classes
	// beyond the first need further relays — chain through a second
	// fanout keyed by (state, class).
	type classUse struct {
		axon int
	}
	var recurLines []int // state index per extra line
	classAxons := make([]map[int32]classUse, n)
	for i := 0; i < n; i++ {
		classAxons[i] = map[int32]classUse{}
		for j := 0; j < n; j++ {
			w := quantize(p.Model.A[i][j])
			if w == 0 {
				continue
			}
			if _, ok := classAxons[i][w]; !ok {
				a := net.AllocAxon(sc)
				if a < 0 {
					return nil, fmt.Errorf("hmm: state core out of axons")
				}
				net.SetAxonType(sc, a, classOf(w))
				classAxons[i][w] = classUse{axon: a}
				recurLines = append(recurLines, i)
			}
			net.SetSynapse(sc, classAxons[i][w].axon, states[j])
		}
	}
	// Fan each state's recurrence relay across its class axons.
	perState := make(map[int]int)
	for _, i := range recurLines {
		perState[i]++
	}
	fans := make([]int, n)
	for i := 0; i < n; i++ {
		fans[i] = perState[i]
		if fans[i] == 0 {
			fans[i] = 1
		}
	}
	rFan, err := corelet.AddFanoutVar(net, fans)
	if err != nil {
		return nil, err
	}
	for j := 0; j < n; j++ {
		net.Connect(fan.Outs[j][1].Core, fan.Outs[j][1].Neuron, rFan.Pins[j].Core, rFan.Pins[j].Axon, 1)
	}
	used := make([]int, n)
	for i := 0; i < n; i++ {
		for _, use := range classAxons[i] {
			h := rFan.Outs[i][used[i]]
			used[i]++
			net.Connect(h.Core, h.Neuron, sc, use.axon, 1)
		}
	}

	// Emission axons: symbol o drives one axon per used weight class.
	obsClassAxons := make([]map[int32]int, m)
	var obsLines [][]int32 // classes per symbol, in allocation order
	for o := 0; o < m; o++ {
		obsClassAxons[o] = map[int32]int{}
		var classes []int32
		for j := 0; j < n; j++ {
			w := quantize(p.Model.B[j][o])
			if w == 0 {
				continue
			}
			if _, ok := obsClassAxons[o][w]; !ok {
				a := net.AllocAxon(sc)
				if a < 0 {
					return nil, fmt.Errorf("hmm: state core out of axons for emissions")
				}
				net.SetAxonType(sc, a, classOf(w))
				obsClassAxons[o][w] = a
				classes = append(classes, w)
			}
			net.SetSynapse(sc, obsClassAxons[o][w], states[j])
		}
		obsLines = append(obsLines, classes)
	}
	// Observation inputs fan to their class axons.
	oFans := make([]int, m)
	for o := 0; o < m; o++ {
		oFans[o] = len(obsLines[o])
		if oFans[o] == 0 {
			oFans[o] = 1
		}
	}
	oFan, err := corelet.AddFanoutVar(net, oFans)
	if err != nil {
		return nil, err
	}
	for o := 0; o < m; o++ {
		net.AddInput(ObsName, oFan.Pins[o].Core, oFan.Pins[o].Axon)
		for k, w := range obsLines[o] {
			h := oFan.Outs[o][k]
			net.Connect(h.Core, h.Neuron, sc, obsClassAxons[o][w], 1)
		}
	}

	// Global normalization: an inhibitory interneuron sums all state
	// spikes (via the report relays' shared axon? — each state's report
	// relay has one target, so add a third fanout way... instead reuse the
	// recurrence relays' class axons by connecting them to the inhibitor
	// too: every recurrent event also excites the inhibitor).
	inhib := net.AllocNeuron(sc)
	net.SetNeuron(sc, inhib, neuron.Params{
		Weights:   [neuron.NumAxonTypes]int32{1, 1, 1, 0},
		Threshold: 5,
		Reset:     neuron.ResetSubtract,
	})
	for i := 0; i < n; i++ {
		for _, use := range classAxons[i] {
			net.SetSynapse(sc, use.axon, inhib)
		}
	}
	aInh := net.AllocAxon(sc)
	if aInh < 0 {
		return nil, fmt.Errorf("hmm: no axon left for inhibition")
	}
	net.SetAxonType(sc, aInh, 3)
	net.Connect(sc, inhib, sc, aInh, 1)
	for j := 0; j < n; j++ {
		net.SetSynapse(sc, aInh, states[j])
	}
	return app, nil
}

// Rig is a placed, runnable filter.
type Rig struct {
	App *App
	P   *corelet.Placement
	Eng *chip.Model
}

// NewRig builds and instantiates the filter.
func NewRig(p Params) (*Rig, error) {
	app, err := Build(p)
	if err != nil {
		return nil, err
	}
	side := 1
	for side*side < app.Net.NumCores() {
		side++
	}
	pl, err := corelet.Place(app.Net, router.Mesh{W: side, H: side})
	if err != nil {
		return nil, err
	}
	eng, err := chip.New(pl.Mesh, pl.Configs)
	if err != nil {
		return nil, err
	}
	return &Rig{App: app, P: pl, Eng: eng}, nil
}

// Filter presents the observation sequence and returns, per step, the
// per-state spike counts and the argmax state estimate.
func (r *Rig) Filter(obs []int) (rates [][]int, estimates []int, err error) {
	p := r.App.p
	m := p.Model.Symbols()
	r.Eng.Reset(true)
	n := p.Model.States()
	rates = make([][]int, len(obs))
	estimates = make([]int, len(obs))
	for t, o := range obs {
		if o < 0 || o >= m {
			return nil, nil, fmt.Errorf("hmm: symbol %d out of range", o)
		}
		for k := 0; k < p.Drive; k++ {
			off := k * p.Window / p.Drive
			if err := r.P.Inject(r.Eng, ObsName, o, off); err != nil {
				return nil, nil, err
			}
		}
		r.Eng.Run(p.Window)
		counts := make([]int, n)
		for _, s := range r.Eng.DrainOutputs() {
			ref, ok := r.P.Decode(s.ID)
			if ok && ref.Name == StateName && ref.Index < n {
				counts[ref.Index]++
			}
		}
		rates[t] = counts
		best := 0
		for j, c := range counts {
			if c > counts[best] {
				best = j
			}
		}
		estimates[t] = best
	}
	return rates, estimates, nil
}
