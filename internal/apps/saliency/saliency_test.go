package saliency

import (
	"testing"

	"truenorth/internal/chip"
	"truenorth/internal/corelet"
	"truenorth/internal/router"
	"truenorth/internal/vision"
)

func TestSplitDelay(t *testing.T) {
	for ticks := 3; ticks <= 45; ticks++ {
		d1, d2, d3 := splitDelay(ticks)
		for _, d := range []int{d1, d2, d3} {
			if d < 1 || d > 15 {
				t.Fatalf("ticks %d: delay component %d out of [1,15]", ticks, d)
			}
		}
		if d1+d2+d3 != ticks {
			t.Fatalf("ticks %d: %d+%d+%d != %d", ticks, d1, d2, d3, ticks)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Params{ImgW: 17, ImgH: 16}); err == nil {
		t.Error("non-tiling width accepted")
	}
	if _, err := Build(Params{ImgW: 0, ImgH: 16}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Build(Params{ImgW: 16, ImgH: 16, TicksPerFrame: 50}); err == nil {
		t.Error("50-tick frame (beyond 3-relay delay line) accepted")
	}
	if _, err := Build(Params{ImgW: 16, ImgH: 16, TicksPerFrame: 2}); err == nil {
		t.Error("2-tick frame accepted")
	}
}

// runner places the app and provides frame-by-frame map readout.
type runner struct {
	app *App
	p   *corelet.Placement
	eng *chip.Model
	tr  vision.Transducer
}

func newRunner(t *testing.T, w, h int) *runner {
	t.Helper()
	app, err := Build(Params{ImgW: w, ImgH: h})
	if err != nil {
		t.Fatal(err)
	}
	side := 1
	for side*side < app.Net.NumCores() {
		side++
	}
	p, err := corelet.Place(app.Net, router.Mesh{W: side, H: side})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chip.New(p.Mesh, p.Configs)
	if err != nil {
		t.Fatal(err)
	}
	return &runner{app: app, p: p, eng: eng, tr: vision.DefaultTransducer()}
}

// frame injects f and returns the per-cell saliency counts for the frame.
func (r *runner) frame(t *testing.T, f *vision.Frame) []int {
	t.Helper()
	if _, err := r.tr.InjectFrame(r.eng, r.p, InputName, f, 0); err != nil {
		t.Fatal(err)
	}
	r.eng.Run(r.tr.TicksPerFrame)
	return vision.CountByName(r.p, r.eng.DrainOutputs(), OutputName, r.app.NumCells())
}

func TestMapDimensions(t *testing.T) {
	app, err := Build(Params{ImgW: 32, ImgH: 16})
	if err != nil {
		t.Fatal(err)
	}
	if app.CellsX != 8 || app.CellsY != 4 {
		t.Fatalf("cells = %d×%d, want 8×4", app.CellsX, app.CellsY)
	}
	if app.CellIndex(2, 1) != 10 {
		t.Fatalf("CellIndex(2,1) = %d, want 10", app.CellIndex(2, 1))
	}
}

func TestBlankSceneNotSalient(t *testing.T) {
	r := newRunner(t, 32, 16)
	blank := vision.NewFrame(32, 16)
	var total int
	for k := 0; k < 3; k++ {
		for _, c := range r.frame(t, blank) {
			total += c
		}
	}
	if total != 0 {
		t.Fatalf("blank video produced %d saliency spikes", total)
	}
}

func TestContrastBlobIsSalient(t *testing.T) {
	// A bright blob on a dark background: its cells out-salient the rest.
	r := newRunner(t, 32, 16)
	f := vision.NewFrame(32, 16)
	for y := 4; y < 8; y++ {
		for x := 12; x < 16; x++ {
			f.Set(x, y, 255)
		}
	}
	var counts []int
	for k := 0; k < 4; k++ { // steady state across a few frames
		counts = r.frame(t, f)
	}
	blob := r.app.CellIndex(3, 1)
	if counts[blob] == 0 {
		t.Fatal("blob cell not salient")
	}
	for c, v := range counts {
		if c != blob && v > counts[blob] {
			t.Fatalf("cell %d (%d) more salient than the blob cell (%d)", c, v, counts[blob])
		}
	}
}

func TestUniformFieldSuppressed(t *testing.T) {
	// Full-field brightness has contrast only at the borders; interior
	// cells are suppressed by their surround. Compare an interior cell's
	// response against the isolated-blob case.
	rBlob := newRunner(t, 32, 16)
	blob := vision.NewFrame(32, 16)
	for y := 4; y < 8; y++ {
		for x := 12; x < 16; x++ {
			blob.Set(x, y, 255)
		}
	}
	rFull := newRunner(t, 32, 16)
	full := vision.NewFrame(32, 16)
	for i := range full.Pix {
		full.Pix[i] = 255
	}
	var blobCounts, fullCounts []int
	for k := 0; k < 4; k++ {
		blobCounts = rBlob.frame(t, blob)
		fullCounts = rFull.frame(t, full)
	}
	cell := rBlob.app.CellIndex(3, 1)
	if fullCounts[cell] >= blobCounts[cell] {
		t.Fatalf("interior cell: uniform field %d ≥ isolated blob %d (surround suppression failed)",
			fullCounts[cell], blobCounts[cell])
	}
}

func TestMotionPopOut(t *testing.T) {
	// Two identical blobs; one moves. After the delay line fills, the
	// moving blob's cells should accumulate more saliency than the static
	// one's.
	r := newRunner(t, 48, 16)
	mk := func(mx int) *vision.Frame {
		f := vision.NewFrame(48, 16)
		for y := 4; y < 8; y++ {
			for x := 4; x < 8; x++ { // static blob at cell (1,1)
				f.Set(x, y, 200)
			}
			for x := mx; x < mx+4; x++ { // moving blob
				f.Set(x, y, 200)
			}
		}
		return f
	}
	staticTotal, movingTotal := 0, 0
	positions := []int{24, 28, 32, 36, 40, 24, 28, 32}
	for k, mx := range positions {
		counts := r.frame(t, mk(mx))
		if k < 2 {
			continue // let the delay line fill
		}
		staticTotal += counts[r.app.CellIndex(1, 1)]
		for cx := 5; cx <= 11; cx++ {
			movingTotal += counts[r.app.CellIndex(cx, 1)]
		}
	}
	if movingTotal <= staticTotal {
		t.Fatalf("moving region saliency %d not above static region %d", movingTotal, staticTotal)
	}
}

func TestAppearanceTransient(t *testing.T) {
	// A blob that appears mid-sequence triggers a temporal-change burst:
	// the appearance frame outranks the steady-state frames that follow.
	r := newRunner(t, 32, 16)
	blank := vision.NewFrame(32, 16)
	blob := vision.NewFrame(32, 16)
	for y := 8; y < 12; y++ {
		for x := 8; x < 12; x++ {
			blob.Set(x, y, 255)
		}
	}
	cell := r.app.CellIndex(2, 2)
	r.frame(t, blank)
	r.frame(t, blank)
	onset := r.frame(t, blob)[cell]
	r.frame(t, blob)
	r.frame(t, blob)
	steady := r.frame(t, blob)[cell]
	if onset <= steady {
		t.Fatalf("appearance burst %d not above steady state %d", onset, steady)
	}
}

func TestNetworkSizeReported(t *testing.T) {
	app, err := Build(Params{ImgW: 32, ImgH: 16})
	if err != nil {
		t.Fatal(err)
	}
	if app.Net.NumCores() == 0 || app.Net.NumNeurons() == 0 {
		t.Fatal("empty network")
	}
	// Multi-stage structure: pooling + fanout + delay + contrast + change
	// + combine must exceed one core even for a small image.
	if app.Net.NumCores() < 6 {
		t.Fatalf("only %d cores; stages missing?", app.Net.NumCores())
	}
}
