// Package saliency implements the paper's saliency application (Section
// IV-B): "a saliency map assigns a measure of interest, or saliency, to
// each pixel in an image, often to select a region for further processing."
//
// The corelet computes a cell-resolution saliency map from two channels:
//
//   - Spatial contrast: each 4×4-pixel cell's population rate is compared
//     against its 8-neighbor surround (center-surround difference, weight
//     +8 center / −1 per surround cell, rectified).
//   - Temporal change: each cell's current rate is compared against its
//     own rate one frame earlier, via a chain of axonal-delay relays
//     (15+15+3 ticks ≈ one 33-tick frame) — both appearing and
//     disappearing polarities.
//
// A combination stage sums the channels (motion weighted 2×) into the
// output map. The structure — pixel pooling, cell fanout through splitter
// relays, delay-line memory, rectified differencing — is the standard
// TrueNorth corelet repertoire the paper's library builds on.
package saliency

import (
	"fmt"

	"truenorth/internal/core"
	"truenorth/internal/corelet"
	"truenorth/internal/neuron"
)

// Cell is the saliency map resolution: 4×4 pixels per cell.
const Cell = 4

// InputName and OutputName are the placement I/O group names.
const (
	InputName  = "pixels"
	OutputName = "saliency"
)

// Params configures the saliency system.
type Params struct {
	// ImgW, ImgH are the frame dimensions; multiples of Cell.
	ImgW, ImgH int
	// TicksPerFrame must match the transducer (delay-line length).
	// Zero selects 33 (30 fps at 1 kHz).
	TicksPerFrame int
}

// App is a built saliency system.
type App struct {
	// Net is the corelet network.
	Net *corelet.Net
	// CellsX, CellsY is the saliency map size.
	CellsX, CellsY int
	p              Params
}

// NumCells returns the saliency map size.
func (a *App) NumCells() int { return a.CellsX * a.CellsY }

// CellIndex maps cell coordinates to the output index.
func (a *App) CellIndex(cx, cy int) int { return cy*a.CellsX + cx }

// Build constructs the saliency network. Input group "pixels" has one pin
// per pixel (row-major); output group "saliency" has one sink per cell.
func Build(p Params) (*App, error) {
	if p.TicksPerFrame == 0 {
		p.TicksPerFrame = 33
	}
	if p.ImgW <= 0 || p.ImgH <= 0 || p.ImgW%Cell != 0 || p.ImgH%Cell != 0 {
		return nil, fmt.Errorf("saliency: image %dx%d must tile into %d×%d cells", p.ImgW, p.ImgH, Cell, Cell)
	}
	if p.TicksPerFrame < 3 || p.TicksPerFrame > 2*core.MaxDelay+core.MaxDelay {
		return nil, fmt.Errorf("saliency: ticks/frame %d outside the 3..45 range reachable with a 3-relay delay line", p.TicksPerFrame)
	}
	app := &App{Net: corelet.NewNet(), CellsX: p.ImgW / Cell, CellsY: p.ImgH / Cell, p: p}
	n := app.Net
	cells := app.NumCells()

	// Stage 1: cell pooling. Each core pools 16 cells (16 pixels each).
	const cellsPerPoolCore = core.AxonsPerCore / (Cell * Cell)
	cellSum := make([]corelet.Handle, cells)
	pixelPin := make([]corelet.InputPin, p.ImgW*p.ImgH)
	var pool corelet.CoreID
	inPool := cellsPerPoolCore
	for c := 0; c < cells; c++ {
		if inPool == cellsPerPoolCore {
			pool = n.AddCore()
			inPool = 0
		}
		inPool++
		j := n.AllocNeuron(pool)
		n.SetNeuron(pool, j, neuron.Accumulator(1, 0, 2))
		cellSum[c] = corelet.Handle{Core: pool, Neuron: j}
		cx, cy := c%app.CellsX, c/app.CellsX
		for k := 0; k < Cell*Cell; k++ {
			gx, gy := cx*Cell+k%Cell, cy*Cell+k/Cell
			a := n.AllocAxon(pool)
			n.SetSynapse(pool, a, j)
			pixelPin[gy*p.ImgW+gx] = corelet.InputPin{Core: pool, Axon: a}
		}
	}
	for _, pin := range pixelPin {
		n.AddInput(InputName, pin.Core, pin.Axon)
	}

	// Stage 2: cell fanout. Each cell rate feeds its own contrast center,
	// up to 8 neighbor contrasts, the change detector, and the delay line.
	fans := make([]int, cells)
	for c := 0; c < cells; c++ {
		fans[c] = 1 + neighborCount(app, c) + 1 + 1 // center + surrounds + change-now + delay head
	}
	fan, err := corelet.AddFanoutVar(n, fans)
	if err != nil {
		return nil, err
	}
	for c := 0; c < cells; c++ {
		n.Connect(cellSum[c].Core, cellSum[c].Neuron, fan.Pins[c].Core, fan.Pins[c].Axon, 1)
	}
	next := make([]int, cells)
	take := func(c int) corelet.Handle {
		h := fan.Outs[c][next[c]]
		next[c]++
		return h
	}

	// Stage 3: delay line (one frame ≈ TicksPerFrame ticks across relays).
	d1, d2, d3 := splitDelay(p.TicksPerFrame)
	delayed := make([]corelet.Handle, cells)
	var dc corelet.CoreID
	inDC := core.NeuronsPerCore / 2
	for c := 0; c < cells; c++ {
		if inDC >= core.NeuronsPerCore/2 {
			dc = n.AddCore()
			inDC = 0
		}
		inDC++
		a1 := n.AllocAxon(dc)
		j1 := n.AllocNeuron(dc)
		n.SetSynapse(dc, a1, j1)
		n.SetNeuron(dc, j1, neuron.Identity())
		a2 := n.AllocAxon(dc)
		j2 := n.AllocNeuron(dc)
		n.SetSynapse(dc, a2, j2)
		n.SetNeuron(dc, j2, neuron.Identity())
		h := take(c)
		n.Connect(h.Core, h.Neuron, dc, a1, d1)
		n.Connect(dc, j1, dc, a2, d2)
		delayed[c] = corelet.Handle{Core: dc, Neuron: j2}
	}

	// Stage 4: contrast. Per cell: center axon (type 0, weight +8) and up
	// to 8 surround axons (type 1, −1).
	const cellsPerContrastCore = core.AxonsPerCore / 9
	contrast := make([]corelet.Handle, cells)
	surroundAxon := make([][]int, cells) // allocated below, wired after
	var cc corelet.CoreID
	inCC := cellsPerContrastCore
	for c := 0; c < cells; c++ {
		if inCC == cellsPerContrastCore {
			cc = n.AddCore()
			inCC = 0
		}
		inCC++
		j := n.AllocNeuron(cc)
		n.SetNeuron(cc, j, neuron.Params{
			Weights:      [neuron.NumAxonTypes]int32{8, -1, 0, 0},
			Threshold:    8,
			Reset:        neuron.ResetSubtract,
			NegThreshold: 16,
			NegSaturate:  true,
		})
		center := n.AllocAxon(cc)
		n.SetAxonType(cc, center, 0)
		n.SetSynapse(cc, center, j)
		h := take(c)
		n.Connect(h.Core, h.Neuron, cc, center, 1)
		contrast[c] = corelet.Handle{Core: cc, Neuron: j}
		// Border cells have fewer than 8 surround neighbors; allocating the
		// full 8 would leave connected-but-undriven axons behind.
		for s := 0; s < neighborCount(app, c); s++ {
			a := n.AllocAxon(cc)
			n.SetAxonType(cc, a, 1)
			n.SetSynapse(cc, a, j)
			surroundAxon[c] = append(surroundAxon[c], a)
		}
	}
	// Wire surround inputs.
	used := make([]int, cells)
	for c := 0; c < cells; c++ {
		cx, cy := c%app.CellsX, c/app.CellsX
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				nx, ny := cx+dx, cy+dy
				if nx < 0 || nx >= app.CellsX || ny < 0 || ny >= app.CellsY {
					continue
				}
				nc := ny*app.CellsX + nx
				h := take(nc) // neighbor's fanout relay drives c's surround
				a := surroundAxon[c][used[c]]
				used[c]++
				n.Connect(h.Core, h.Neuron, contrastCoreOf(contrast[c]), a, 1)
			}
		}
	}

	// Stage 5: temporal change. Per cell: axon 0 now (+), axon 1 delayed
	// (−); appear neuron {+1,−1}, disappear neuron {−1,+1}.
	const cellsPerChangeCore = core.AxonsPerCore / 2
	appear := make([]corelet.Handle, cells)
	disappear := make([]corelet.Handle, cells)
	var ch corelet.CoreID
	inCh := cellsPerChangeCore
	for c := 0; c < cells; c++ {
		if inCh == cellsPerChangeCore {
			ch = n.AddCore()
			inCh = 0
		}
		inCh++
		aNow := n.AllocAxon(ch)
		n.SetAxonType(ch, aNow, 0)
		aOld := n.AllocAxon(ch)
		n.SetAxonType(ch, aOld, 1)
		hNow := take(c)
		n.Connect(hNow.Core, hNow.Neuron, ch, aNow, 1)
		n.Connect(delayed[c].Core, delayed[c].Neuron, ch, aOld, d3)
		jA := n.AllocNeuron(ch)
		n.SetNeuron(ch, jA, neuron.Params{
			Weights:      [neuron.NumAxonTypes]int32{1, -1, 0, 0},
			Threshold:    2,
			Reset:        neuron.ResetSubtract,
			NegThreshold: 8,
			NegSaturate:  true,
		})
		n.SetSynapse(ch, aNow, jA)
		n.SetSynapse(ch, aOld, jA)
		appear[c] = corelet.Handle{Core: ch, Neuron: jA}
		jD := n.AllocNeuron(ch)
		n.SetNeuron(ch, jD, neuron.Params{
			Weights:      [neuron.NumAxonTypes]int32{-1, 1, 0, 0},
			Threshold:    2,
			Reset:        neuron.ResetSubtract,
			NegThreshold: 8,
			NegSaturate:  true,
		})
		n.SetSynapse(ch, aNow, jD)
		n.SetSynapse(ch, aOld, jD)
		disappear[c] = corelet.Handle{Core: ch, Neuron: jD}
	}

	// Stage 6: combination → output map. Contrast weight 1, motion 2.
	const cellsPerOutCore = core.AxonsPerCore / 3
	var oc corelet.CoreID
	inOC := cellsPerOutCore
	for c := 0; c < cells; c++ {
		if inOC == cellsPerOutCore {
			oc = n.AddCore()
			inOC = 0
		}
		inOC++
		j := n.AllocNeuron(oc)
		n.SetNeuron(oc, j, neuron.Params{
			Weights:   [neuron.NumAxonTypes]int32{1, 0, 2, 0},
			Threshold: 2,
			Reset:     neuron.ResetSubtract,
		})
		aC := n.AllocAxon(oc)
		n.SetAxonType(oc, aC, 0)
		n.SetSynapse(oc, aC, j)
		n.Connect(contrast[c].Core, contrast[c].Neuron, oc, aC, 1)
		aM := n.AllocAxon(oc)
		n.SetAxonType(oc, aM, 2)
		n.SetSynapse(oc, aM, j)
		n.Connect(appear[c].Core, appear[c].Neuron, oc, aM, 1)
		aM2 := n.AllocAxon(oc)
		n.SetAxonType(oc, aM2, 2)
		n.SetSynapse(oc, aM2, j)
		n.Connect(disappear[c].Core, disappear[c].Neuron, oc, aM2, 1)
		n.ConnectOutput(oc, j, OutputName, c)
	}
	return app, nil
}

// contrastCoreOf extracts the core id of a contrast handle (readability).
func contrastCoreOf(h corelet.Handle) corelet.CoreID { return h.Core }

// neighborCount returns how many of cell c's 8 surround neighbors lie on the
// map — 8 in the interior, 5 on edges, 3 in corners.
func neighborCount(a *App, c int) int {
	cx, cy := c%a.CellsX, c/a.CellsX
	nb := 0
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			if cx+dx >= 0 && cx+dx < a.CellsX && cy+dy >= 0 && cy+dy < a.CellsY {
				nb++
			}
		}
	}
	return nb
}

// splitDelay decomposes a frame delay into two relay hops plus a final
// axonal delay, each within the 1..15 hardware range. Total latency is
// d1 + d2 + d3 ticks (the relays themselves respond within their arrival
// tick).
func splitDelay(ticks int) (d1, d2, d3 int) {
	a := ticks - 2
	if a > core.MaxDelay {
		a = core.MaxDelay
	}
	rem := ticks - a
	b := rem - 1
	if b > core.MaxDelay {
		b = core.MaxDelay
	}
	return a, b, rem - b
}
