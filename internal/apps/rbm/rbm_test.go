package rbm

import (
	"math/rand"
	"testing"
)

// prototypes returns four 32-bit patterns with distinct support.
func prototypes() [][]bool {
	const v = 32
	mk := func(f func(i int) bool) []bool {
		p := make([]bool, v)
		for i := range p {
			p[i] = f(i)
		}
		return p
	}
	return [][]bool{
		mk(func(i int) bool { return i < 16 }),               // low half
		mk(func(i int) bool { return i >= 16 }),              // high half
		mk(func(i int) bool { return i%2 == 0 }),             // even bits
		mk(func(i int) bool { return i%4 == 0 || i%4 == 1 }), // pairs
	}
}

func defaultParams() Params {
	return Params{Visible: 32, Prototypes: prototypes(), Seed: 7}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Params{Visible: 0, Prototypes: prototypes()}); err == nil {
		t.Error("0 visible accepted")
	}
	if _, err := Build(Params{Visible: 100, Prototypes: prototypes()}); err == nil {
		t.Error("100 visible accepted")
	}
	if _, err := Build(Params{Visible: 32}); err == nil {
		t.Error("no prototypes accepted")
	}
	short := [][]bool{make([]bool, 5)}
	if _, err := Build(Params{Visible: 32, Prototypes: short}); err == nil {
		t.Error("mis-sized prototype accepted")
	}
	if _, err := Build(defaultParams()); err != nil {
		t.Fatalf("default build failed: %v", err)
	}
}

func TestHiddenDetectsOwnPrototype(t *testing.T) {
	rig, err := NewRig(defaultParams())
	if err != nil {
		t.Fatal(err)
	}
	protos := prototypes()
	for hu, proto := range protos {
		res, err := rig.Infer(proto)
		if err != nil {
			t.Fatal(err)
		}
		if res.HiddenRates[hu] < 0.6 {
			t.Fatalf("prototype %d: own detector rate %.2f, want high", hu, res.HiddenRates[hu])
		}
		for other := range protos {
			if other != hu && res.HiddenRates[other] >= res.HiddenRates[hu] {
				t.Fatalf("prototype %d: detector %d (%.2f) outran own detector (%.2f)",
					hu, other, res.HiddenRates[other], res.HiddenRates[hu])
			}
		}
	}
}

func TestPatternCompletion(t *testing.T) {
	// Corrupt 15% of bits; the reconstruction must be closer to the
	// prototype than the corrupted input was — associative completion.
	rig, err := NewRig(defaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	protos := prototypes()
	for hu, proto := range protos {
		corrupted := append([]bool(nil), proto...)
		flips := 5
		for k := 0; k < flips; k++ {
			i := rng.Intn(len(corrupted))
			corrupted[i] = !corrupted[i]
		}
		res, err := rig.Infer(corrupted)
		if err != nil {
			t.Fatal(err)
		}
		dIn := hamming(corrupted, proto)
		dOut := hamming(res.Recon, proto)
		if dOut >= dIn {
			t.Fatalf("prototype %d: reconstruction distance %d not below corruption distance %d", hu, dOut, dIn)
		}
		if dOut > 4 {
			t.Fatalf("prototype %d: reconstruction still %d bits off", hu, dOut)
		}
	}
}

func TestStochasticButCalibrated(t *testing.T) {
	// At an ambiguous input (half of prototype 0), the detector fires at
	// an intermediate rate — the hard-sigmoid band, not a hard threshold.
	rig, err := NewRig(defaultParams())
	if err != nil {
		t.Fatal(err)
	}
	half := make([]bool, 32)
	for i := 0; i < 8; i++ {
		half[i] = true // half of prototype 0's 16 bits
	}
	res, err := rig.Infer(half)
	if err != nil {
		t.Fatal(err)
	}
	r := res.HiddenRates[0]
	if r <= 0.02 || r >= 0.98 {
		t.Fatalf("ambiguous input rate %.2f, want intermediate (stochastic band)", r)
	}
}

func TestBlankInputQuiet(t *testing.T) {
	rig, err := NewRig(defaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := rig.Infer(make([]bool, 32))
	if err != nil {
		t.Fatal(err)
	}
	for hu, r := range res.HiddenRates {
		if r > 0.2 {
			t.Fatalf("hidden %d fired at %.2f on blank input", hu, r)
		}
	}
}

func TestInferSizeCheck(t *testing.T) {
	rig, err := NewRig(defaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rig.Infer(make([]bool, 3)); err == nil {
		t.Fatal("wrong pattern size accepted")
	}
}

func hamming(a, b []bool) int {
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}
