// Package rbm implements restricted-Boltzmann-machine inference, another
// of the paper's demonstrated application classes ("restricted Boltzmann
// machines" — Section I, Fig. 2), built on the hardware's stochastic
// modes: the per-core PRNG and stochastic threshold give each unit a
// hard-sigmoid firing probability, which is how TrueNorth RBMs sample.
//
// Structure. Visible units drive hidden units through quantized weights
// (the axon-type constraint: each core offers four signed weight values,
// so a visible bit arrives on up to four axon copies and each hidden unit
// reads the copy matching its weight); hidden units drive a reconstruction
// layer with the symmetric weights through splitter relays. One up-down
// pass is a Gibbs half-step; rate coding over a sampling window turns
// firing probability into spike counts.
//
// Weights are derived off-line (the paper's workflow — training happens
// off-chip) from class prototypes: hidden unit h detects prototype h
// (+2 on its set bits, −2 elsewhere) and reconstructs it symmetrically,
// yielding associative pattern completion: corrupted inputs settle onto
// the nearest stored prototype.
package rbm

import (
	"fmt"

	"truenorth/internal/chip"
	"truenorth/internal/corelet"
	"truenorth/internal/neuron"
	"truenorth/internal/router"
)

// I/O group names.
const (
	InputName  = "visible"
	HiddenName = "hidden"
	ReconName  = "recon"
)

// Params configures the machine.
type Params struct {
	// Visible is the number of visible units (≤ 64: each needs two axon
	// copies on the hidden core plus reconstruction capacity).
	Visible int
	// Prototypes are the stored binary patterns, one hidden unit each
	// (≤ 32).
	Prototypes [][]bool
	// Window is the sampling window in ticks per presented pattern
	// (default 16).
	Window int
	// HiddenSharpness scales the hidden pre-activation into the 256-wide
	// stochastic threshold band (default 24 per matching bit).
	HiddenSharpness int32
	// Seed seeds the stochastic cores.
	Seed uint16
}

// App is a built RBM.
type App struct {
	// Net is the corelet network.
	Net *corelet.Net
	p   Params
}

// NumHidden returns the hidden-unit count.
func (a *App) NumHidden() int { return len(a.p.Prototypes) }

// Visible returns the visible-layer width.
func (a *App) Visible() int { return a.p.Visible }

// Build constructs the machine. Inputs: "visible" (one pin per unit).
// Outputs: "hidden" (per prototype) and "recon" (per visible unit).
func Build(p Params) (*App, error) {
	if p.Window == 0 {
		p.Window = 16
	}
	if p.HiddenSharpness == 0 {
		p.HiddenSharpness = 24
	}
	if p.Visible < 1 || p.Visible > 64 {
		return nil, fmt.Errorf("rbm: %d visible units out of range [1,64]", p.Visible)
	}
	if len(p.Prototypes) < 1 || len(p.Prototypes) > 32 {
		return nil, fmt.Errorf("rbm: %d prototypes out of range [1,32]", len(p.Prototypes))
	}
	for i, proto := range p.Prototypes {
		if len(proto) != p.Visible {
			return nil, fmt.Errorf("rbm: prototype %d has %d bits, want %d", i, len(proto), p.Visible)
		}
	}
	app := &App{Net: corelet.NewNet(), p: p}
	n := app.Net
	h := len(p.Prototypes)

	// Hidden core. Axon copies per visible unit: type 0 (+sharpness,
	// "this bit belongs to my prototype") and type 1 (−sharpness,
	// "this bit contradicts my prototype"). Each hidden unit connects the
	// copy matching its prototype's bit.
	hc := n.AddCore()
	n.SetSeed(hc, p.Seed|1)
	axPlus := make([]int, p.Visible)
	axMinus := make([]int, p.Visible)
	for v := 0; v < p.Visible; v++ {
		axPlus[v] = n.AllocAxon(hc)
		n.SetAxonType(hc, axPlus[v], 0)
		axMinus[v] = n.AllocAxon(hc)
		n.SetAxonType(hc, axMinus[v], 1)
	}
	// Visible input fanout: each input bit feeds both copies.
	fan, err := corelet.AddFanout(n, p.Visible, 2)
	if err != nil {
		return nil, err
	}
	for v, pin := range fan.Pins {
		n.AddInput(InputName, pin.Core, pin.Axon)
		n.Connect(fan.Outs[v][0].Core, fan.Outs[v][0].Neuron, hc, axPlus[v], 1)
		n.Connect(fan.Outs[v][1].Core, fan.Outs[v][1].Neuron, hc, axMinus[v], 1)
	}
	// Hidden units: stochastic threshold turns the match score into a
	// firing probability (hard sigmoid over the 256-wide jitter band).
	hiddenUnits := make([]corelet.Handle, h)
	for hu := 0; hu < h; hu++ {
		j := n.AllocNeuron(hc)
		proto := p.Prototypes[hu]
		on := 0
		for v, bit := range proto {
			if bit {
				n.SetSynapse(hc, axPlus[v], j)
				on++
			} else {
				n.SetSynapse(hc, axMinus[v], j)
			}
		}
		// Fire probabilistically when the score clears about 40% of the
		// prototype's own bits: clean matches sit well above the jitter
		// band (rate ≈ 0.9), lightly corrupted ones inside it, and
		// half-matches at its lower edge.
		n.SetNeuron(hc, j, neuron.Params{
			Weights:       [neuron.NumAxonTypes]int32{p.HiddenSharpness, -p.HiddenSharpness, 0, 0},
			Threshold:     p.HiddenSharpness * int32(on) * 4 / 10,
			ThresholdMask: 0xFF,
			Reset:         neuron.ResetToV,
			NegThreshold:  p.HiddenSharpness * 4,
			NegSaturate:   true,
		})
		hiddenUnits[hu] = corelet.Handle{Core: hc, Neuron: j}
	}

	// Hidden fanout: each hidden unit reports externally and drives the
	// reconstruction layer.
	hFan, err := corelet.AddFanout(n, h, 2)
	if err != nil {
		return nil, err
	}
	for hu := 0; hu < h; hu++ {
		n.Connect(hiddenUnits[hu].Core, hiddenUnits[hu].Neuron, hFan.Pins[hu].Core, hFan.Pins[hu].Axon, 1)
		n.ConnectOutput(hFan.Outs[hu][0].Core, hFan.Outs[hu][0].Neuron, HiddenName, hu)
	}

	// Reconstruction core: visible' units fire when the active hidden
	// prototypes include their bit. Axon per hidden unit, type by +: the
	// symmetric weight sign is realized per (hidden, visible) pair via
	// two axon copies again — but since every hidden→visible weight for
	// bit v is + when prototype[hu][v] and − otherwise, one axon copy per
	// hidden unit and per sign suffices.
	rc := n.AddCore()
	n.SetSeed(rc, p.Seed|2)
	rFan, err := corelet.AddFanout(n, h, 2)
	if err != nil {
		return nil, err
	}
	rAxPlus := make([]int, h)
	rAxMinus := make([]int, h)
	for hu := 0; hu < h; hu++ {
		n.Connect(hFan.Outs[hu][1].Core, hFan.Outs[hu][1].Neuron, rFan.Pins[hu].Core, rFan.Pins[hu].Axon, 1)
		rAxPlus[hu] = n.AllocAxon(rc)
		n.SetAxonType(rc, rAxPlus[hu], 0)
		rAxMinus[hu] = n.AllocAxon(rc)
		n.SetAxonType(rc, rAxMinus[hu], 1)
		n.Connect(rFan.Outs[hu][0].Core, rFan.Outs[hu][0].Neuron, rc, rAxPlus[hu], 1)
		n.Connect(rFan.Outs[hu][1].Core, rFan.Outs[hu][1].Neuron, rc, rAxMinus[hu], 1)
	}
	for v := 0; v < p.Visible; v++ {
		j := n.AllocNeuron(rc)
		for hu := 0; hu < h; hu++ {
			if p.Prototypes[hu][v] {
				n.SetSynapse(rc, rAxPlus[hu], j)
			} else {
				n.SetSynapse(rc, rAxMinus[hu], j)
			}
		}
		// A single supporting hidden spike clears the band (120 ≥ 30+63),
		// so the reconstruction rate tracks the winning detector's rate;
		// the narrow jitter keeps near-tie mixtures stochastic.
		n.SetNeuron(rc, j, neuron.Params{
			Weights:       [neuron.NumAxonTypes]int32{120, -120, 0, 0},
			Threshold:     30,
			ThresholdMask: 0x3F,
			Reset:         neuron.ResetToV,
			NegThreshold:  240,
			NegSaturate:   true,
		})
		n.ConnectOutput(rc, j, ReconName, v)
	}
	return app, nil
}

// Rig is a placed, runnable RBM.
type Rig struct {
	App *App
	P   *corelet.Placement
	Eng *chip.Model
}

// NewRig builds and instantiates the machine on the canonical engine.
func NewRig(p Params) (*Rig, error) {
	app, err := Build(p)
	if err != nil {
		return nil, err
	}
	side := 1
	for side*side < app.Net.NumCores() {
		side++
	}
	pl, err := corelet.Place(app.Net, router.Mesh{W: side, H: side})
	if err != nil {
		return nil, err
	}
	eng, err := chip.New(pl.Mesh, pl.Configs)
	if err != nil {
		return nil, err
	}
	return &Rig{App: app, P: pl, Eng: eng}, nil
}

// Result is one inference pass.
type Result struct {
	// HiddenRates are per-prototype firing rates in [0,1].
	HiddenRates []float64
	// Recon is the thresholded reconstruction.
	Recon []bool
	// ReconRates are the raw visible' rates in [0,1].
	ReconRates []float64
}

// Infer clamps the visible pattern for the sampling window and returns
// hidden activations and the reconstruction, from a freshly reset machine.
func (r *Rig) Infer(visible []bool) (*Result, error) {
	if len(visible) != r.App.Visible() {
		return nil, fmt.Errorf("rbm: pattern has %d bits, want %d", len(visible), r.App.Visible())
	}
	r.Eng.Reset(true)
	w := r.App.p.Window
	for tick := 0; tick < w; tick++ {
		for v, bit := range visible {
			if bit {
				if err := r.P.Inject(r.Eng, InputName, v, tick); err != nil {
					return nil, err
				}
			}
		}
	}
	r.Eng.Run(w + 8) // drain the pipeline
	res := &Result{
		HiddenRates: make([]float64, r.App.NumHidden()),
		Recon:       make([]bool, r.App.Visible()),
		ReconRates:  make([]float64, r.App.Visible()),
	}
	for _, s := range r.Eng.DrainOutputs() {
		ref, ok := r.P.Decode(s.ID)
		if !ok {
			continue
		}
		switch ref.Name {
		case HiddenName:
			res.HiddenRates[ref.Index] += 1 / float64(w)
		case ReconName:
			res.ReconRates[ref.Index] += 1 / float64(w)
		}
	}
	// Threshold the reconstruction at half the strongest visible rate:
	// robust to the overall rate scale set by the winning detector.
	maxRate := 0.0
	for _, r := range res.ReconRates {
		if r > maxRate {
			maxRate = r
		}
	}
	for v := range res.Recon {
		res.Recon[v] = maxRate > 0 && res.ReconRates[v] >= maxRate/2
	}
	return res, nil
}
