// Package lsm implements a liquid state machine, one of the application
// classes the paper demonstrates on Compass and TrueNorth ("liquid state
// machines" among convolutional networks, RBMs, HMMs, SVMs — Section I and
// Fig. 2): temporal pattern recognition for real-time audio-style analytics.
//
// A reservoir ("liquid") of recurrently connected excitatory and
// inhibitory neurons with random synapses, delays, and initial potentials
// projects input spike trains into a high-dimensional fading-memory state.
// Tap cores observe every reservoir neuron: each tap axon fans to a
// readout relay (an external output sink) and a feedback relay that closes
// the recurrent loop, respecting the one-target-per-neuron constraint.
// The linear readout is trained off-line — exactly the paper's workflow,
// where Compass "facilitate[s] training off-line" and the trained network
// then runs on the chip.
package lsm

import (
	"fmt"
	"math/rand"

	"truenorth/internal/chip"
	"truenorth/internal/core"
	"truenorth/internal/corelet"
	"truenorth/internal/neuron"
	"truenorth/internal/router"
)

// I/O group names.
const (
	InputName  = "in"
	OutputName = "taps"
)

// Params configures the reservoir.
type Params struct {
	// Inputs is the number of input spike channels.
	Inputs int
	// Reservoir is the number of liquid neurons (multiple of 128; each
	// tap core observes 128 of them).
	Reservoir int
	// InDegree is the recurrent fan-in per reservoir neuron.
	InDegree int
	// InputFan is how many reservoir neurons each input channel drives.
	InputFan int
	// Seed drives all random structure.
	Seed int64
}

// DefaultParams returns a laptop-scale reservoir.
func DefaultParams() Params {
	return Params{Inputs: 8, Reservoir: 256, InDegree: 16, InputFan: 24, Seed: 1}
}

// App is a built liquid state machine.
type App struct {
	// Net is the corelet network.
	Net *corelet.Net
	p   Params
	// channelPins records how many physical input pins each channel owns
	// (one per reservoir core the channel projects into).
	channelPins []int
}

// NumTaps returns the readout dimensionality (one tap per reservoir
// neuron).
func (a *App) NumTaps() int { return a.p.Reservoir }

// Build constructs the reservoir. Input group "in" has one pin per
// channel; output group "taps" has one sink per reservoir neuron.
func Build(p Params) (*App, error) {
	if p.Inputs <= 0 || p.Inputs > core.AxonsPerCore {
		return nil, fmt.Errorf("lsm: %d inputs out of range", p.Inputs)
	}
	if p.Reservoir <= 0 || p.Reservoir%128 != 0 {
		return nil, fmt.Errorf("lsm: reservoir size %d must be a positive multiple of 128", p.Reservoir)
	}
	if p.InDegree < 1 || p.InDegree > 128 {
		return nil, fmt.Errorf("lsm: in-degree %d out of range [1,128]", p.InDegree)
	}
	if p.InputFan < 1 || p.InputFan > p.Reservoir {
		return nil, fmt.Errorf("lsm: input fan %d out of range", p.InputFan)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	app := &App{Net: corelet.NewNet(), p: p}
	n := app.Net

	// Reservoir cores: 128 liquid neurons each; axons carry recurrent
	// feedback (types 0 exc / 1 inh) and input projections (type 2).
	resCores := p.Reservoir / 128
	type slot struct {
		core   corelet.CoreID
		neuron int
	}
	liquid := make([]slot, p.Reservoir)
	for rc := 0; rc < resCores; rc++ {
		id := n.AddCore()
		n.SetSeed(id, uint16(rng.Intn(1<<16-1)+1))
		for k := 0; k < 128; k++ {
			j := n.AllocNeuron(id)
			// 80% excitatory / 20% inhibitory dynamics with fading
			// memory: decay leak, moderate threshold, random phase.
			np := neuron.Params{
				Weights:      [neuron.NumAxonTypes]int32{4, -6, 8, 0},
				Leak:         -1,
				Threshold:    14,
				Reset:        neuron.ResetToV,
				NegThreshold: 20,
				NegSaturate:  true,
			}
			n.SetNeuron(id, j, np)
			n.SetInitV(id, j, rng.Int31n(10))
			liquid[rc*128+k] = slot{core: id, neuron: j}
		}
	}

	// Tap cores: one axon per liquid neuron, fanning to a readout relay
	// (output sink) and a feedback relay (recurrence).
	feedback := make([]corelet.Handle, p.Reservoir)
	tapCores := p.Reservoir / 128
	for tc := 0; tc < tapCores; tc++ {
		id := n.AddCore()
		for k := 0; k < 128; k++ {
			g := tc*128 + k
			ax := n.AllocAxon(id)
			jOut := n.AllocNeuron(id)
			n.SetSynapse(id, ax, jOut)
			n.SetNeuron(id, jOut, neuron.Identity())
			n.ConnectOutput(id, jOut, OutputName, g)
			jFb := n.AllocNeuron(id)
			n.SetSynapse(id, ax, jFb)
			n.SetNeuron(id, jFb, neuron.Identity())
			feedback[g] = corelet.Handle{Core: id, Neuron: jFb}
			// The liquid neuron drives its tap axon.
			s := liquid[g]
			n.Connect(s.core, s.neuron, id, ax, 1)
		}
	}

	// Recurrent wiring: each feedback relay targets one random axon on a
	// random reservoir core; that axon's crossbar row spreads it across
	// InDegree random liquid neurons. Excitatory 80% / inhibitory 20%.
	for g := 0; g < p.Reservoir; g++ {
		rc := corelet.CoreID(rng.Intn(resCores)) // reservoir cores are ids 0..resCores-1
		ax := n.AllocAxon(rc)
		if ax < 0 {
			return nil, fmt.Errorf("lsm: reservoir core %d out of axons", rc)
		}
		if rng.Float64() < 0.8 {
			n.SetAxonType(rc, ax, 0) // excitatory
		} else {
			n.SetAxonType(rc, ax, 1) // inhibitory
		}
		for k := 0; k < p.InDegree; k++ {
			n.SetSynapse(rc, ax, rng.Intn(128))
		}
		delay := 1 + rng.Intn(6)
		n.Connect(feedback[g].Core, feedback[g].Neuron, rc, ax, delay)
	}

	// Input projections: each channel gets one axon per reservoir core it
	// touches (type 2, strong drive), spread over InputFan liquid neurons.
	for ch := 0; ch < p.Inputs; ch++ {
		perCore := make(map[corelet.CoreID][]int)
		for k := 0; k < p.InputFan; k++ {
			g := rng.Intn(p.Reservoir)
			perCore[liquid[g].core] = append(perCore[liquid[g].core], liquid[g].neuron)
		}
		for rc, targets := range perCore {
			ax := n.AllocAxon(rc)
			if ax < 0 {
				return nil, fmt.Errorf("lsm: reservoir core %d out of axons for inputs", rc)
			}
			n.SetAxonType(rc, ax, 2)
			for _, j := range targets {
				n.SetSynapse(rc, ax, j)
			}
			n.AddInput(InputName, rc, ax)
		}
		// Record how many pins this channel produced so injection can
		// address all of them: pins are appended in channel order; the
		// channel boundaries are stored below.
		app.channelPins = append(app.channelPins, len(perCore))
	}
	return app, nil
}

// Rig is a placed, runnable LSM.
type Rig struct {
	App *App
	P   *corelet.Placement
	Eng *chip.Model
	// pinStart[ch] is the first pin index of channel ch in the "in" group.
	pinStart []int
}

// NewRig places and instantiates the LSM on the canonical chip engine.
func NewRig(p Params) (*Rig, error) {
	app, err := Build(p)
	if err != nil {
		return nil, err
	}
	side := 1
	for side*side < app.Net.NumCores() {
		side++
	}
	pl, err := corelet.Place(app.Net, router.Mesh{W: side, H: side})
	if err != nil {
		return nil, err
	}
	eng, err := chip.New(pl.Mesh, pl.Configs)
	if err != nil {
		return nil, err
	}
	r := &Rig{App: app, P: pl, Eng: eng}
	start := 0
	for _, nPins := range app.channelPins {
		r.pinStart = append(r.pinStart, start)
		start += nPins
	}
	return r, nil
}

// Pattern is a temporal input: SpikesAt[tick] lists the channels that fire
// on that tick.
type Pattern struct {
	SpikesAt map[int][]int
	Ticks    int
}

// Features injects the pattern into a freshly reset reservoir, runs one
// window, and returns the per-tap spike counts — the liquid state vector
// the readout classifies.
func (r *Rig) Features(pat Pattern) ([]float64, error) {
	r.Eng.Reset(true)
	for tick, chans := range pat.SpikesAt {
		for _, ch := range chans {
			if ch < 0 || ch >= len(r.pinStart) {
				return nil, fmt.Errorf("lsm: channel %d out of range", ch)
			}
			// Drive every pin of the channel (one per reservoir core).
			end := len(r.P.Inputs[InputName])
			if ch+1 < len(r.pinStart) {
				end = r.pinStart[ch+1]
			}
			for pin := r.pinStart[ch]; pin < end; pin++ {
				if err := r.P.Inject(r.Eng, InputName, pin, tick); err != nil {
					return nil, err
				}
			}
		}
	}
	settle := 15 // let reverberation fade into the counts
	r.Eng.Run(pat.Ticks + settle)
	counts := make([]float64, r.App.NumTaps())
	for _, s := range r.Eng.DrainOutputs() {
		ref, ok := r.P.Decode(s.ID)
		if !ok || ref.Name != OutputName {
			continue
		}
		counts[ref.Index]++
	}
	return counts, nil
}

// Classifier is a multi-class linear readout (one weight vector per
// class, plus bias), trained off-line with the perceptron rule.
type Classifier struct {
	W [][]float64 // [class][feature+1]
}

// TrainReadout fits a perceptron readout on liquid states X with labels y.
func TrainReadout(x [][]float64, y []int, classes, epochs int) *Classifier {
	if len(x) == 0 {
		return &Classifier{}
	}
	dim := len(x[0]) + 1
	c := &Classifier{W: make([][]float64, classes)}
	for k := range c.W {
		c.W[k] = make([]float64, dim)
	}
	for e := 0; e < epochs; e++ {
		for i, xi := range x {
			pred := c.Predict(xi)
			if pred == y[i] {
				continue
			}
			lr := 0.1
			for f, v := range xi {
				c.W[y[i]][f] += lr * v
				c.W[pred][f] -= lr * v
			}
			c.W[y[i]][dim-1] += lr
			c.W[pred][dim-1] -= lr
		}
	}
	return c
}

// TrainSVM fits a multi-class linear max-margin readout (one-vs-rest,
// hinge loss with L2 regularization, SGD) — the "support vector machines"
// of the paper's application list are exactly such linear readouts over
// spike-count features, trained off-line.
func TrainSVM(x [][]float64, y []int, classes, epochs int, lambda float64) *Classifier {
	if len(x) == 0 {
		return &Classifier{}
	}
	dim := len(x[0]) + 1
	c := &Classifier{W: make([][]float64, classes)}
	for k := range c.W {
		c.W[k] = make([]float64, dim)
	}
	lr := 0.05
	for e := 0; e < epochs; e++ {
		for i, xi := range x {
			for k := range c.W {
				target := -1.0
				if y[i] == k {
					target = 1
				}
				score := c.W[k][dim-1]
				for f, v := range xi {
					score += c.W[k][f] * v
				}
				// L2 shrinkage.
				for f := range c.W[k] {
					c.W[k][f] *= 1 - lr*lambda
				}
				if target*score < 1 { // inside the margin: hinge gradient
					for f, v := range xi {
						c.W[k][f] += lr * target * v
					}
					c.W[k][dim-1] += lr * target
				}
			}
		}
	}
	return c
}

// Predict returns the argmax class for a liquid state.
func (c *Classifier) Predict(x []float64) int {
	best, bestScore := 0, 0.0
	for k, w := range c.W {
		s := w[len(w)-1]
		for f, v := range x {
			s += w[f] * v
		}
		if k == 0 || s > bestScore {
			best, bestScore = k, s
		}
	}
	return best
}
