package lsm

import (
	"math/rand"
	"testing"
)

func TestBuildValidation(t *testing.T) {
	bad := []Params{
		{Inputs: 0, Reservoir: 128, InDegree: 8, InputFan: 8},
		{Inputs: 8, Reservoir: 100, InDegree: 8, InputFan: 8}, // not ×128
		{Inputs: 8, Reservoir: 128, InDegree: 0, InputFan: 8},
		{Inputs: 8, Reservoir: 128, InDegree: 200, InputFan: 8},
		{Inputs: 8, Reservoir: 128, InDegree: 8, InputFan: 0},
	}
	for i, p := range bad {
		if _, err := Build(p); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
	if _, err := Build(DefaultParams()); err != nil {
		t.Fatalf("default params rejected: %v", err)
	}
}

func TestReservoirStructure(t *testing.T) {
	app, err := Build(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// 2 reservoir cores + 2 tap cores for 256 liquid neurons.
	if got := app.Net.NumCores(); got != 4 {
		t.Fatalf("cores = %d, want 4", got)
	}
	if app.NumTaps() != 256 {
		t.Fatalf("taps = %d, want 256", app.NumTaps())
	}
}

// rhythm builds a pattern where each active channel fires with its own
// period and phase over the window, with optional jitter.
func rhythm(channels []struct{ period, phase int }, ticks int, jitter int, rng *rand.Rand) Pattern {
	p := Pattern{SpikesAt: map[int][]int{}, Ticks: ticks}
	for ch, r := range channels {
		if r.period == 0 {
			continue
		}
		for t := r.phase; t < ticks; t += r.period {
			tt := t
			if jitter > 0 {
				tt += rng.Intn(2*jitter+1) - jitter
			}
			if tt >= 0 && tt < ticks {
				p.SpikesAt[tt] = append(p.SpikesAt[tt], ch)
			}
		}
	}
	return p
}

// classPattern generates a jittered sample of one of three rhythm classes.
func classPattern(class int, rng *rand.Rand) Pattern {
	const ticks = 50
	switch class {
	case 0: // fast beat on channels 0-2
		return rhythm([]struct{ period, phase int }{{3, 0}, {3, 1}, {3, 2}}, ticks, 1, rng)
	case 1: // slow beat on channels 3-5
		return rhythm([]struct{ period, phase int }{{0, 0}, {0, 0}, {0, 0}, {8, 0}, {8, 2}, {8, 4}}, ticks, 1, rng)
	default: // mixed: fast on 6, slow on 1
		return rhythm([]struct{ period, phase int }{{0, 0}, {9, 3}, {0, 0}, {0, 0}, {0, 0}, {0, 0}, {4, 0}}, ticks, 1, rng)
	}
}

func TestLiquidStateSeparability(t *testing.T) {
	rig, err := NewRig(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	a, err := rig.Features(classPattern(0, rng))
	if err != nil {
		t.Fatal(err)
	}
	b, err := rig.Features(classPattern(1, rng))
	if err != nil {
		t.Fatal(err)
	}
	if sum(a) == 0 || sum(b) == 0 {
		t.Fatal("reservoir silent")
	}
	// Distinct inputs must yield distinct liquid states.
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("liquid states identical for different classes")
	}
}

func TestFeaturesResetBetweenPatterns(t *testing.T) {
	rig, err := NewRig(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	pat := classPattern(0, rand.New(rand.NewSource(9)))
	x1, err := rig.Features(pat)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rig.Features(classPattern(1, rng)) // perturb
	if err != nil {
		t.Fatal(err)
	}
	x2, err := rig.Features(pat)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("tap %d: %v vs %v — reservoir state leaked between patterns", i, x1[i], x2[i])
		}
	}
}

func TestTemporalPatternClassification(t *testing.T) {
	// The end-to-end result: a spiking reservoir + off-line-trained linear
	// readout classifies temporal rhythms far above chance.
	if testing.Short() {
		t.Skip("multi-pattern training in -short mode")
	}
	rig, err := NewRig(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const classes, trainN, testN = 3, 10, 5
	var trainX [][]float64
	var trainY []int
	for c := 0; c < classes; c++ {
		for i := 0; i < trainN; i++ {
			x, err := rig.Features(classPattern(c, rng))
			if err != nil {
				t.Fatal(err)
			}
			trainX = append(trainX, x)
			trainY = append(trainY, c)
		}
	}
	clf := TrainReadout(trainX, trainY, classes, 30)
	correct, total := 0, 0
	for c := 0; c < classes; c++ {
		for i := 0; i < testN; i++ {
			x, err := rig.Features(classPattern(c, rng))
			if err != nil {
				t.Fatal(err)
			}
			if clf.Predict(x) == c {
				correct++
			}
			total++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.75 {
		t.Fatalf("accuracy %.2f below 0.75 (chance is 0.33)", acc)
	}
}

func TestSVMReadout(t *testing.T) {
	// The max-margin readout on toy separable data, and on real liquid
	// states (the paper's "support vector machines" are linear readouts
	// over spike features).
	c := TrainSVM([][]float64{{2, 0}, {0, 2}, {2.5, 0.5}, {0.5, 2.5}}, []int{0, 1, 0, 1}, 2, 100, 0.001)
	for _, tc := range []struct {
		x    []float64
		want int
	}{{[]float64{3, 0}, 0}, {[]float64{0, 3}, 1}} {
		if got := c.Predict(tc.x); got != tc.want {
			t.Fatalf("SVM predict(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
	if len(TrainSVM(nil, nil, 2, 5, 0.01).W) != 0 {
		t.Fatal("empty training should produce an empty classifier")
	}

	rig, err := NewRig(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	var trainX [][]float64
	var trainY []int
	for c2 := 0; c2 < 2; c2++ {
		for i := 0; i < 6; i++ {
			x, err := rig.Features(classPattern(c2, rng))
			if err != nil {
				t.Fatal(err)
			}
			trainX = append(trainX, x)
			trainY = append(trainY, c2)
		}
	}
	svm := TrainSVM(trainX, trainY, 2, 40, 0.0005)
	correct := 0
	for c2 := 0; c2 < 2; c2++ {
		for i := 0; i < 3; i++ {
			x, err := rig.Features(classPattern(c2, rng))
			if err != nil {
				t.Fatal(err)
			}
			if svm.Predict(x) == c2 {
				correct++
			}
		}
	}
	if correct < 5 {
		t.Fatalf("SVM readout got %d/6 on liquid states", correct)
	}
}

func TestClassifierEdgeCases(t *testing.T) {
	c := TrainReadout(nil, nil, 3, 5)
	if len(c.W) != 0 {
		t.Fatal("empty training should produce an empty classifier")
	}
	c2 := TrainReadout([][]float64{{1, 0}, {0, 1}}, []int{0, 1}, 2, 50)
	if c2.Predict([]float64{1, 0}) != 0 || c2.Predict([]float64{0, 1}) != 1 {
		t.Fatal("perceptron failed on linearly separable toy data")
	}
}

func sum(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s
}
