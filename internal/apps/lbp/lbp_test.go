package lbp

import (
	"testing"

	"truenorth/internal/chip"
	"truenorth/internal/corelet"
	"truenorth/internal/router"
	"truenorth/internal/vision"
)

func build(t *testing.T, w, h int) *App {
	t.Helper()
	app, err := Build(Params{ImgW: w, ImgH: h})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Params{ImgW: 0, ImgH: 16}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := Build(Params{ImgW: 30, ImgH: 16}); err == nil {
		t.Error("non-tiling width accepted (30 % 4 != 0... 30/4 not integral)")
	}
	if _, err := Build(Params{ImgW: 16, ImgH: 8, SubW: 4, SubH: 2}); err == nil {
		t.Error("subpatch smaller than 2×radius accepted")
	}
	if _, err := Build(Params{ImgW: 32, ImgH: 16, CompareThreshold: -1}); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestTwentyBinsPerSubpatch(t *testing.T) {
	app := build(t, 32, 16)
	if app.Subpatches() != 8 {
		t.Fatalf("subpatches = %d, want 8 (the paper's 8 subpatches)", app.Subpatches())
	}
	if app.NumOutputs() != 8*20 {
		t.Fatalf("outputs = %d, want 160 (20-bin histograms × 8 subpatches)", app.NumOutputs())
	}
	if Bins != 20 {
		t.Fatalf("Bins = %d, want 20", Bins)
	}
}

func run(t *testing.T, app *App, f *vision.Frame, meshW, meshH int) []int {
	t.Helper()
	p, err := corelet.Place(app.Net, router.Mesh{W: meshW, H: meshH})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := chip.New(p.Mesh, p.Configs)
	if err != nil {
		t.Fatal(err)
	}
	tr := vision.DefaultTransducer()
	// Two frames so slow accumulators integrate.
	for k := 0; k < 2; k++ {
		if _, err := tr.InjectFrame(eng, p, InputName, f, 0); err != nil {
			t.Fatal(err)
		}
		eng.Run(tr.TicksPerFrame)
	}
	eng.Run(6)
	return vision.CountByName(p, eng.DrainOutputs(), OutputName, app.NumOutputs())
}

func TestFlatFrameOnlyIntensityBins(t *testing.T) {
	app := build(t, 32, 16)
	f := vision.NewFrame(32, 16)
	for i := range f.Pix {
		f.Pix[i] = 220
	}
	counts := run(t, app, f, 8, 8)
	// No contrast → directional channels silent.
	for sub := 0; sub < app.Subpatches(); sub++ {
		for c := 0; c < Channels; c++ {
			if counts[app.Bin(sub, c)] != 0 {
				t.Fatalf("subpatch %d channel %d fired %d on a flat frame", sub, c, counts[app.Bin(sub, c)])
			}
		}
	}
	// Bright flat frame → intensity thermometer bins active.
	active := 0
	for sub := 0; sub < app.Subpatches(); sub++ {
		for b := Channels; b < Bins; b++ {
			if counts[app.Bin(sub, b)] > 0 {
				active++
			}
		}
	}
	if active == 0 {
		t.Fatal("bright flat frame activated no intensity bins")
	}
}

func TestThermometerMonotone(t *testing.T) {
	// Higher-threshold intensity bins fire no more than lower ones.
	app := build(t, 32, 16)
	f := vision.NewFrame(32, 16)
	for i := range f.Pix {
		f.Pix[i] = 255
	}
	counts := run(t, app, f, 8, 8)
	for sub := 0; sub < app.Subpatches(); sub++ {
		prev := 1 << 30
		for b := Channels; b < Bins; b++ {
			c := counts[app.Bin(sub, b)]
			if c > prev {
				t.Fatalf("subpatch %d: intensity bin %d (%d) exceeds bin %d (%d)", sub, b, c, b-1, prev)
			}
			prev = c
		}
	}
}

func TestEdgeActivatesDirectionalChannels(t *testing.T) {
	// A vertical edge: right half bright. Comparisons along x should fire
	// near the edge; a flat region far from it should not.
	app := build(t, 32, 16)
	f := vision.NewFrame(32, 16)
	for y := 0; y < 16; y++ {
		for x := 16; x < 32; x++ {
			f.Set(x, y, 255)
		}
	}
	counts := run(t, app, f, 8, 8)
	total := 0
	for sub := 0; sub < app.Subpatches(); sub++ {
		for c := 0; c < Channels; c++ {
			total += counts[app.Bin(sub, c)]
		}
	}
	if total == 0 {
		t.Fatal("vertical edge activated no directional channels")
	}
	// For a left-dark/right-bright edge: dark centers see a brighter right
	// neighbor (direction 0, polarity 0 → channel 0), and bright centers
	// outshine their left neighbor (direction 4, polarity 1 → channel 9).
	ch0, ch9 := 0, 0
	for sub := 0; sub < app.Subpatches(); sub++ {
		ch0 += counts[app.Bin(sub, 0)]
		ch9 += counts[app.Bin(sub, 9)]
	}
	if ch0 == 0 || ch9 == 0 {
		t.Fatalf("edge polarities: channel0=%d channel9=%d, want both active", ch0, ch9)
	}
}

func TestTextureBeatsFlat(t *testing.T) {
	// A checkered texture should produce far more directional-channel
	// activity than a flat bright field of the same mean intensity.
	app := build(t, 32, 16)
	flat := vision.NewFrame(32, 16)
	tex := vision.NewFrame(32, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 32; x++ {
			flat.Set(x, y, 128)
			if (x/2+y/2)%2 == 0 {
				tex.Set(x, y, 255)
			} else {
				tex.Set(x, y, 45)
			}
		}
	}
	sum := func(counts []int) int {
		s := 0
		for sub := 0; sub < app.Subpatches(); sub++ {
			for c := 0; c < Channels; c++ {
				s += counts[app.Bin(sub, c)]
			}
		}
		return s
	}
	flatApp := build(t, 32, 16)
	sFlat := sum(run(t, flatApp, flat, 8, 8))
	sTex := sum(run(t, app, tex, 8, 8))
	if sTex <= sFlat*2 {
		t.Fatalf("texture response %d not well above flat response %d", sTex, sFlat)
	}
}

func TestSubpatchLocality(t *testing.T) {
	// Texture only in the left half: right-half subpatches' directional
	// bins stay quiet.
	app := build(t, 32, 16)
	f := vision.NewFrame(32, 16)
	for y := 0; y < 16; y++ {
		for x := 0; x < 12; x++ {
			if (x+y)%2 == 0 {
				f.Set(x, y, 255)
			}
		}
	}
	counts := run(t, app, f, 8, 8)
	left, right := 0, 0
	for sub := 0; sub < app.Subpatches(); sub++ {
		s := 0
		for c := 0; c < Channels; c++ {
			s += counts[app.Bin(sub, c)]
		}
		if sub%app.SubW < app.SubW/2 {
			left += s
		} else {
			right += s
		}
	}
	if left == 0 {
		t.Fatal("textured half produced no channel activity")
	}
	if right > left/4 {
		t.Fatalf("quiet half fired %d vs textured half %d", right, left)
	}
}

func TestNetworkScalesWithImage(t *testing.T) {
	small := build(t, 32, 16)
	large := build(t, 64, 32)
	if large.Net.NumCores() <= small.Net.NumCores() {
		t.Fatalf("cores: %d (64×32) vs %d (32×16)", large.Net.NumCores(), small.Net.NumCores())
	}
	if large.Net.NumNeurons() <= small.Net.NumNeurons() {
		t.Fatalf("neurons: %d vs %d", large.Net.NumNeurons(), small.Net.NumNeurons())
	}
}
