// Package lbp implements the paper's Local Binary Pattern application
// (Section IV-B): texture features "often used in biometrics, robot
// navigation, and brain MRI analysis" (Ojala et al.), computed as 20-bin
// histograms over image subpatches.
//
// Spiking formulation. At every sample point on a stride-2 grid, the
// center pixel is compared against its 8 neighbors at radius 2. A
// comparison neuron per (direction, polarity) fires at a rate proportional
// to max(0, I(neighbor) − I(center)) — or the reverse polarity — giving 16
// directional-contrast channels, the rate-coded analogue of the LBP bit
// pattern. Per subpatch, a histogram core accumulates each channel across
// the subpatch's sample points into 16 bins, and 4 thermometer bins encode
// coarse center intensity, for the paper's 20-bin histograms. (The exact
// binary-pattern binning of classic LBP needs per-pattern decoders; the
// directional-channel histogram preserves the compare→pattern→histogram
// computation structure at the same network scale — see DESIGN.md §2.)
//
// Comparison neurons of one channel share a small set of histogram axons,
// so simultaneous spikes can collide (TrueNorth axons merge same-tick
// packets); rates are low enough that the undercount is small, exactly as
// on the silicon.
package lbp

import (
	"fmt"

	"truenorth/internal/core"
	"truenorth/internal/corelet"
	"truenorth/internal/neuron"
)

// Architectural constants of the corelet.
const (
	// Stride is the sample-point spacing in pixels.
	Stride = 2
	// Radius is the neighbor offset in pixels.
	Radius = 2
	// Channels is the number of directional-polarity comparison channels.
	Channels = 16
	// Bins is the histogram size per subpatch (16 channels + 4 intensity).
	Bins = 20
	// axonsPerChannel stripes each channel across this many histogram
	// axons to reduce same-tick collisions.
	axonsPerChannel = 8
	// intensityAxons stripes the center-intensity feed similarly.
	intensityAxons = 16
)

// InputName and OutputName are the placement I/O group names.
const (
	InputName  = "pixels"
	OutputName = "lbp"
)

// neighbors lists the 8 LBP directions.
var neighbors = [8][2]int{
	{Radius, 0}, {Radius, Radius}, {0, Radius}, {-Radius, Radius},
	{-Radius, 0}, {-Radius, -Radius}, {0, -Radius}, {Radius, -Radius},
}

// Params configures the extractor.
type Params struct {
	// ImgW, ImgH are the frame dimensions.
	ImgW, ImgH int
	// SubW, SubH are the subpatch grid dimensions (paper: 8 subpatches,
	// e.g. 4×2). Zero selects 4×2.
	SubW, SubH int
	// CompareThreshold is the contrast (in transduced spikes per frame)
	// per comparison output spike. Zero selects 4.
	CompareThreshold int32
	// HistThreshold is the number of channel events per histogram-bin
	// output spike. Zero selects 4.
	HistThreshold int32
}

// App is a built LBP extractor.
type App struct {
	// Net is the corelet network.
	Net *corelet.Net
	// SubW, SubH is the subpatch grid; Subpatches = SubW*SubH.
	SubW, SubH int
	// SamplesPerSub counts sample points per subpatch (may vary by ±1
	// between subpatches; this is the first subpatch's count).
	SamplesPerSub int
	p             Params
}

// Subpatches returns the histogram count.
func (a *App) Subpatches() int { return a.SubW * a.SubH }

// NumOutputs returns the size of the "lbp" output group.
func (a *App) NumOutputs() int { return a.Subpatches() * Bins }

// Bin locates the output index for (subpatch, bin).
func (a *App) Bin(sub, bin int) int { return sub*Bins + bin }

// Build constructs the extractor. Input group "pixels" has one pin per
// pixel (row-major); output group "lbp" indexes subpatch*20 + bin.
func Build(p Params) (*App, error) {
	if p.SubW == 0 && p.SubH == 0 {
		p.SubW, p.SubH = 4, 2
	}
	if p.ImgW <= 0 || p.ImgH <= 0 || p.SubW <= 0 || p.SubH <= 0 {
		return nil, fmt.Errorf("lbp: invalid geometry %dx%d in %dx%d subpatches", p.ImgW, p.ImgH, p.SubW, p.SubH)
	}
	if p.ImgW%p.SubW != 0 || p.ImgH%p.SubH != 0 {
		return nil, fmt.Errorf("lbp: image %dx%d must tile into %dx%d subpatches", p.ImgW, p.ImgH, p.SubW, p.SubH)
	}
	if p.ImgW/p.SubW <= 2*Radius || p.ImgH/p.SubH <= 2*Radius {
		return nil, fmt.Errorf("lbp: subpatches %dx%d too small for radius %d", p.ImgW/p.SubW, p.ImgH/p.SubH, Radius)
	}
	if p.CompareThreshold == 0 {
		p.CompareThreshold = 4
	}
	if p.HistThreshold == 0 {
		p.HistThreshold = 4
	}
	if p.CompareThreshold < 0 || p.HistThreshold < 0 {
		return nil, fmt.Errorf("lbp: negative thresholds")
	}

	app := &App{Net: corelet.NewNet(), SubW: p.SubW, SubH: p.SubH, p: p}
	n := app.Net

	// Enumerate sample points per subpatch.
	subPW, subPH := p.ImgW/p.SubW, p.ImgH/p.SubH
	type sample struct{ x, y, sub int }
	var samples []sample
	perSub := make([]int, p.SubW*p.SubH)
	for y := Radius; y < p.ImgH-Radius; y += Stride {
		for x := Radius; x < p.ImgW-Radius; x += Stride {
			sub := (y/subPH)*p.SubW + x/subPW
			samples = append(samples, sample{x, y, sub})
			perSub[sub]++
		}
	}
	app.SamplesPerSub = perSub[0]

	// Per-pixel fanout requirements: 2 center copies when the pixel is a
	// sample point, 2 neighbor copies per sample point it serves.
	fans := make([]int, p.ImgW*p.ImgH)
	isSample := make([]bool, p.ImgW*p.ImgH)
	for _, s := range samples {
		idx := s.y*p.ImgW + s.x
		isSample[idx] = true
		fans[idx] += 2
		for _, d := range neighbors {
			fans[s.x+d[0]+(s.y+d[1])*p.ImgW]++ // one copy per (sample, direction); polarity pairs share it
		}
	}
	// Every neighbor copy is used twice (both polarities need the same
	// pixel on two axon types), so double the neighbor share.
	for i := range fans {
		extra := fans[i]
		if isSample[i] {
			extra -= 2
		}
		fans[i] += extra
	}
	// Pixels serving nothing still need a pin: give them one inert relay.
	for i := range fans {
		if fans[i] == 0 {
			fans[i] = 1
		}
	}
	fan, err := corelet.AddFanoutVar(n, fans)
	if err != nil {
		return nil, err
	}
	for _, pin := range fan.Pins {
		n.AddInput(InputName, pin.Core, pin.Axon)
	}
	next := make([]int, len(fans)) // next unused relay per pixel
	takeRelay := func(pix int) corelet.Handle {
		h := fan.Outs[pix][next[pix]]
		next[pix]++
		return h
	}

	// Histogram cores: one per subpatch.
	histCore := make([]corelet.CoreID, p.SubW*p.SubH)
	for sub := range histCore {
		hc := n.AddCore()
		histCore[sub] = hc
		// Channel axons: channel c occupies axons
		// [c*axonsPerChannel, (c+1)*axonsPerChannel), type 0.
		// Intensity axons follow, type 0 as well.
		for c := 0; c < Channels; c++ {
			j := n.AllocNeuron(hc)
			n.SetNeuron(hc, j, neuron.Accumulator(1, 0, p.HistThreshold))
			for a := c * axonsPerChannel; a < (c+1)*axonsPerChannel; a++ {
				n.SetSynapse(hc, a, j)
			}
			n.ConnectOutput(hc, j, OutputName, app.Bin(sub, c))
		}
		// Intensity thermometer bins: increasing thresholds over the
		// shared intensity feed.
		base := Channels * axonsPerChannel
		for b := 0; b < Bins-Channels; b++ {
			j := n.AllocNeuron(hc)
			n.SetNeuron(hc, j, neuron.Accumulator(1, 0, p.HistThreshold*int32(b+1)))
			for a := base; a < base+intensityAxons; a++ {
				n.SetSynapse(hc, a, j)
			}
			n.ConnectOutput(hc, j, OutputName, app.Bin(sub, Channels+b))
		}
	}

	// Comparison cores: 12 sample points per core (18 axons, 16 neurons
	// each). Axon types: 0 neighbor+, 1 center−, 2 center+, 3 neighbor−.
	const samplesPerCore = 12
	var cc corelet.CoreID
	inCore := samplesPerCore // force allocation
	for si, s := range samples {
		if inCore == samplesPerCore {
			cc = n.AddCore()
			inCore = 0
		}
		inCore++
		pixC := s.y*p.ImgW + s.x
		// Center axons (shared by this sample's 16 comparisons).
		aCneg := n.AllocAxon(cc)
		n.SetAxonType(cc, aCneg, 1)
		hC1 := takeRelay(pixC)
		n.Connect(hC1.Core, hC1.Neuron, cc, aCneg, 1)
		aCpos := n.AllocAxon(cc)
		n.SetAxonType(cc, aCpos, 2)
		hC2 := takeRelay(pixC)
		n.Connect(hC2.Core, hC2.Neuron, cc, aCpos, 1)

		hc := histCore[s.sub]
		for d, off := range neighbors {
			pixN := s.x + off[0] + (s.y+off[1])*p.ImgW
			aNpos := n.AllocAxon(cc)
			n.SetAxonType(cc, aNpos, 0)
			hN1 := takeRelay(pixN)
			n.Connect(hN1.Core, hN1.Neuron, cc, aNpos, 1)
			aNneg := n.AllocAxon(cc)
			n.SetAxonType(cc, aNneg, 3)
			hN2 := takeRelay(pixN)
			n.Connect(hN2.Core, hN2.Neuron, cc, aNneg, 1)

			// Channel 2d: neighbor > center.
			j1 := n.AllocNeuron(cc)
			n.SetNeuron(cc, j1, neuron.Params{
				Weights:      [neuron.NumAxonTypes]int32{1, -1, 0, 0},
				Threshold:    p.CompareThreshold,
				Reset:        neuron.ResetSubtract,
				NegThreshold: p.CompareThreshold,
				NegSaturate:  true,
			})
			n.SetSynapse(cc, aNpos, j1)
			n.SetSynapse(cc, aCneg, j1)
			ch := 2 * d
			n.Connect(cc, j1, hc, ch*axonsPerChannel+si%axonsPerChannel, 1)

			// Channel 2d+1: center > neighbor.
			j2 := n.AllocNeuron(cc)
			n.SetNeuron(cc, j2, neuron.Params{
				Weights:      [neuron.NumAxonTypes]int32{0, 0, 1, -1},
				Threshold:    p.CompareThreshold,
				Reset:        neuron.ResetSubtract,
				NegThreshold: p.CompareThreshold,
				NegSaturate:  true,
			})
			n.SetSynapse(cc, aCpos, j2)
			n.SetSynapse(cc, aNneg, j2)
			ch = 2*d + 1
			n.Connect(cc, j2, hc, ch*axonsPerChannel+si%axonsPerChannel, 1)
		}

		// Intensity feed: a third center relay would exceed the fanout
		// budget; reuse the positive-polarity comparison against a dark
		// virtual neighbor instead — a dedicated intensity neuron driven
		// by the center+ axon alone.
		ji := n.AllocNeuron(cc)
		n.SetNeuron(cc, ji, neuron.Params{
			Weights:   [neuron.NumAxonTypes]int32{0, 0, 1, 0},
			Threshold: p.CompareThreshold,
			Reset:     neuron.ResetSubtract,
		})
		n.SetSynapse(cc, aCpos, ji)
		base := Channels * axonsPerChannel
		n.Connect(cc, ji, hc, base+si%intensityAxons, 1)
	}

	// Relay copies never consumed — the placeholder relays of pixels that
	// serve no sample — would otherwise be identity neurons that fire into
	// nothing on every pixel event. Reprogram them as inert: the pin axon
	// keeps its crossbar bit (deliveries still land somewhere), but the
	// neuron can never reach threshold, so the core keeps its event-driven
	// fast path.
	for pix := range fan.Outs {
		for _, h := range fan.Outs[pix][next[pix]:] {
			n.SetNeuron(h.Core, h.Neuron, core.InertNeuron())
		}
	}
	return app, nil
}
