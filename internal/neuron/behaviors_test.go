package neuron

import (
	"math"
	"testing"

	"truenorth/internal/prng"
)

// runBehavior drives params for `ticks` ticks, applying eventsAt[tick]
// unit events on the given axon type, and returns the firing tick list.
func runBehavior(p Params, ticks int, eventsAt map[int][]uint8, seed uint16) []int {
	rng := prng.New(seed)
	v := p.Leak // not the initial V; placeholder overwritten below
	v = 0
	var fires []int
	for tick := 0; tick < ticks; tick++ {
		for _, g := range eventsAt[tick] {
			v = p.Integrate(v, g, rng)
		}
		v = p.ApplyLeak(v, rng)
		var fired bool
		v, fired = p.ThresholdFire(v, rng)
		if fired {
			fires = append(fires, tick)
		}
	}
	return fires
}

func TestPacemakerPeriods(t *testing.T) {
	for _, period := range []int32{1, 3, 10, 100} {
		fires := runBehavior(Pacemaker(period), int(period)*5, nil, 1)
		if len(fires) != 5 {
			t.Fatalf("period %d: fired %d times in %d ticks, want 5", period, len(fires), period*5)
		}
		for i := 1; i < len(fires); i++ {
			if int32(fires[i]-fires[i-1]) != period {
				t.Fatalf("period %d: irregular intervals %v", period, fires)
			}
		}
	}
}

func TestIntegratorLongMemory(t *testing.T) {
	// Three events spaced 100 ticks apart still sum: the integrator has
	// unbounded memory.
	p := Integrator(3)
	events := map[int][]uint8{0: {0}, 100: {0}, 200: {0}}
	fires := runBehavior(p, 250, events, 1)
	if len(fires) != 1 || fires[0] != 200 {
		t.Fatalf("integrator fired at %v, want exactly [200]", fires)
	}
}

func TestIntegratorInhibitionSubtracts(t *testing.T) {
	p := Integrator(2)
	events := map[int][]uint8{0: {0}, 1: {1}, 2: {0}, 3: {0}}
	// +1, -1, +1, +1 → reaches 2 at tick 3.
	fires := runBehavior(p, 10, events, 1)
	if len(fires) != 1 || fires[0] != 3 {
		t.Fatalf("fired at %v, want [3]", fires)
	}
}

func TestLeakyIntegratorFiltersSlowInput(t *testing.T) {
	p := LeakyIntegrator(4, 1)
	// Slow drive: one event every 3 ticks decays away before reaching 4.
	slow := map[int][]uint8{}
	for tick := 0; tick < 60; tick += 3 {
		slow[tick] = []uint8{0}
	}
	if fires := runBehavior(p, 60, slow, 1); len(fires) != 0 {
		t.Fatalf("slow input fired %v", fires)
	}
	// Fast drive: two events per tick overcome the decay.
	fast := map[int][]uint8{}
	for tick := 0; tick < 10; tick++ {
		fast[tick] = []uint8{0, 0}
	}
	if fires := runBehavior(p, 10, fast, 1); len(fires) == 0 {
		t.Fatal("fast input never fired")
	}
}

func TestCoincidenceDetectorWindow(t *testing.T) {
	p := CoincidenceDetector(3)
	// Three events in one tick → fire.
	if fires := runBehavior(p, 5, map[int][]uint8{2: {0, 0, 0}}, 1); len(fires) != 1 || fires[0] != 2 {
		t.Fatalf("triple coincidence fired %v, want [2]", fires)
	}
	// Three events across consecutive ticks → silence (decay wipes them).
	spread := map[int][]uint8{1: {0}, 2: {0}, 3: {0}}
	if fires := runBehavior(p, 6, spread, 1); len(fires) != 0 {
		t.Fatalf("spread events fired %v", fires)
	}
	// Two simultaneous events → below k.
	if fires := runBehavior(p, 5, map[int][]uint8{2: {0, 0}}, 1); len(fires) != 0 {
		t.Fatalf("double fired %v, want none (k=3)", fires)
	}
}

func TestLatchSetHoldReset(t *testing.T) {
	p := Latch()
	events := map[int][]uint8{2: {0}, 7: {1}}
	fires := runBehavior(p, 12, events, 1)
	// Set at tick 2 → fires ticks 2..6; reset at 7 → silent after.
	want := []int{2, 3, 4, 5, 6}
	if len(fires) != len(want) {
		t.Fatalf("latch fired %v, want %v", fires, want)
	}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("latch fired %v, want %v", fires, want)
		}
	}
}

func TestPoissonSpikerRate(t *testing.T) {
	for _, p256 := range []uint8{16, 64, 192} {
		p := PoissonSpiker(p256)
		fires := runBehavior(p, 1<<14, nil, 0x7A21)
		got := float64(len(fires)) / (1 << 14)
		want := float64(p256) / 256
		if math.Abs(got-want)/want > 0.1 {
			t.Fatalf("p=%d/256: measured rate %.3f, want %.3f", p256, got, want)
		}
	}
}

func TestPoissonSpikerIrregular(t *testing.T) {
	// Interspike intervals must vary (geometric-like), unlike a pacemaker.
	p := PoissonSpiker(64)
	fires := runBehavior(p, 4096, nil, 9)
	if len(fires) < 100 {
		t.Fatalf("too few spikes: %d", len(fires))
	}
	intervals := map[int]bool{}
	for i := 1; i < len(fires); i++ {
		intervals[fires[i]-fires[i-1]] = true
	}
	if len(intervals) < 5 {
		t.Fatalf("only %d distinct interspike intervals; not stochastic", len(intervals))
	}
}

func TestLeakReversalDecaysTowardZero(t *testing.T) {
	p := Params{Leak: -3, LeakReversal: true, Threshold: VMax}
	rng := prng.New(1)
	// From above: 10 → 7 → 4 → 1 → 0 (no overshoot) → 0.
	v := int32(10)
	want := []int32{7, 4, 1, 0, 0}
	for i, w := range want {
		v = p.ApplyLeak(v, rng)
		if v != w {
			t.Fatalf("step %d from +10: v = %d, want %d", i, v, w)
		}
	}
	// From below: -10 → -7 → ... → 0.
	v = -10
	for i := 0; i < 6; i++ {
		v = p.ApplyLeak(v, rng)
		if v > 0 {
			t.Fatalf("step %d from -10: overshot to %d", i, v)
		}
	}
	if v != 0 {
		t.Fatalf("negative potential decayed to %d, want 0", v)
	}
}

func TestLeakReversalPositivePushesApart(t *testing.T) {
	// A positive leak with reversal amplifies away from zero (the IJCNN
	// model's unstable mode).
	p := Params{Leak: 2, LeakReversal: true, Threshold: VMax}
	rng := prng.New(1)
	if got := p.ApplyLeak(5, rng); got != 7 {
		t.Fatalf("+5 → %d, want 7", got)
	}
	if got := p.ApplyLeak(-5, rng); got != -7 {
		t.Fatalf("-5 → %d, want -7", got)
	}
}

func TestLeakReversalStochastic(t *testing.T) {
	// Stochastic decay with reversal steps toward zero from both sides at
	// rate |leak|/256.
	p := Params{Leak: -128, LeakReversal: true, StochLeak: true, Threshold: VMax}
	rng := prng.New(4)
	const n = 2048
	downs, ups := 0, 0
	for i := 0; i < n; i++ {
		if p.ApplyLeak(100, rng) == 99 {
			downs++
		}
		if p.ApplyLeak(-100, rng) == -99 {
			ups++
		}
	}
	if downs < n/3 || downs > 2*n/3 || ups < n/3 || ups > 2*n/3 {
		t.Fatalf("stochastic reversal rates: %d down, %d up of %d, want ≈half each", downs, ups, n)
	}
}

func TestRateScalerDivides(t *testing.T) {
	p := RateScaler(4)
	events := map[int][]uint8{}
	for tick := 0; tick < 40; tick++ {
		events[tick] = []uint8{0}
	}
	fires := runBehavior(p, 40, events, 1)
	if len(fires) != 10 {
		t.Fatalf("rate scaler emitted %d spikes for 40 events, want 10", len(fires))
	}
}

func TestBehaviorsAreValidConfigs(t *testing.T) {
	for name, p := range map[string]Params{
		"pacemaker":   Pacemaker(10),
		"integrator":  Integrator(5),
		"leaky":       LeakyIntegrator(4, 1),
		"coincidence": CoincidenceDetector(3),
		"latch":       Latch(),
		"poisson":     PoissonSpiker(64),
		"ratescaler":  RateScaler(4),
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
